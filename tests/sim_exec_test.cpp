//===- tests/sim_exec_test.cpp - Functional semantics tests --------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The RV32IM data operations, including the division edge cases the
// RISC-V specification pins down, and branch comparisons.
//
//===----------------------------------------------------------------------===//

#include "sim/Exec.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::sim;
using isa::Instr;
using isa::Opcode;

namespace {

uint32_t op(Opcode Op, uint32_t A, uint32_t B, int32_t Imm = 0) {
  Instr I;
  I.Op = Op;
  I.Imm = Imm;
  return evalOp(I, A, B, /*Pc=*/0x1000);
}

TEST(Exec, BasicAlu) {
  EXPECT_EQ(op(Opcode::ADD, 2, 3), 5u);
  EXPECT_EQ(op(Opcode::SUB, 2, 3), 0xFFFFFFFFu);
  EXPECT_EQ(op(Opcode::AND, 0xF0F0, 0xFF00), 0xF000u);
  EXPECT_EQ(op(Opcode::OR, 0xF0F0, 0x0F0F), 0xFFFFu);
  EXPECT_EQ(op(Opcode::XOR, 0xFF, 0x0F), 0xF0u);
  EXPECT_EQ(op(Opcode::SLL, 1, 31), 0x80000000u);
  EXPECT_EQ(op(Opcode::SRL, 0x80000000u, 31), 1u);
  EXPECT_EQ(op(Opcode::SRA, 0x80000000u, 31), 0xFFFFFFFFu);
  EXPECT_EQ(op(Opcode::SLT, 0xFFFFFFFFu, 0), 1u); // -1 < 0 signed
  EXPECT_EQ(op(Opcode::SLTU, 0xFFFFFFFFu, 0), 0u);
}

TEST(Exec, ShiftAmountsUseLowFiveBits) {
  EXPECT_EQ(op(Opcode::SLL, 1, 32), 1u);
  EXPECT_EQ(op(Opcode::SLL, 1, 33), 2u);
}

TEST(Exec, Immediates) {
  EXPECT_EQ(op(Opcode::ADDI, 10, 0, -3), 7u);
  EXPECT_EQ(op(Opcode::SLTI, 0xFFFFFFFEu, 0, -1), 1u);
  EXPECT_EQ(op(Opcode::SLTIU, 5, 0, 6), 1u);
  EXPECT_EQ(op(Opcode::XORI, 0xFF, 0, -1), 0xFFFFFF00u);
  EXPECT_EQ(op(Opcode::SLLI, 3, 0, 4), 48u);
  EXPECT_EQ(op(Opcode::SRAI, 0x80000000u, 0, 4), 0xF8000000u);
}

TEST(Exec, UpperAndLink) {
  EXPECT_EQ(op(Opcode::LUI, 0, 0, 0x20000), 0x20000000u);
  EXPECT_EQ(op(Opcode::AUIPC, 0, 0, 1), 0x1000u + 0x1000u);
  EXPECT_EQ(op(Opcode::JAL, 0, 0, 64), 0x1004u);
  EXPECT_EQ(op(Opcode::JALR, 0, 0, 0), 0x1004u);
}

TEST(Exec, MultiplyFamily) {
  EXPECT_EQ(op(Opcode::MUL, 7, 6), 42u);
  EXPECT_EQ(op(Opcode::MUL, 0x10000, 0x10000), 0u); // low 32 bits
  EXPECT_EQ(op(Opcode::MULH, 0x80000000u, 0x80000000u),
            0x40000000u); // (-2^31)^2 >> 32
  EXPECT_EQ(op(Opcode::MULHU, 0xFFFFFFFFu, 0xFFFFFFFFu), 0xFFFFFFFEu);
  EXPECT_EQ(op(Opcode::MULHSU, 0xFFFFFFFFu, 2), 0xFFFFFFFFu); // -1 * 2
}

TEST(Exec, DivisionEdgeCases) {
  // RISC-V: x / 0 = -1, x % 0 = x.
  EXPECT_EQ(op(Opcode::DIV, 17, 0), 0xFFFFFFFFu);
  EXPECT_EQ(op(Opcode::REM, 17, 0), 17u);
  EXPECT_EQ(op(Opcode::DIVU, 17, 0), 0xFFFFFFFFu);
  EXPECT_EQ(op(Opcode::REMU, 17, 0), 17u);
  // Signed overflow: INT_MIN / -1 = INT_MIN, INT_MIN % -1 = 0.
  EXPECT_EQ(op(Opcode::DIV, 0x80000000u, 0xFFFFFFFFu), 0x80000000u);
  EXPECT_EQ(op(Opcode::REM, 0x80000000u, 0xFFFFFFFFu), 0u);
  // Ordinary signed cases round toward zero.
  EXPECT_EQ(op(Opcode::DIV, static_cast<uint32_t>(-7), 2),
            static_cast<uint32_t>(-3));
  EXPECT_EQ(op(Opcode::REM, static_cast<uint32_t>(-7), 2),
            static_cast<uint32_t>(-1));
}

TEST(Exec, Branches) {
  EXPECT_TRUE(evalBranch(Opcode::BEQ, 5, 5));
  EXPECT_FALSE(evalBranch(Opcode::BEQ, 5, 6));
  EXPECT_TRUE(evalBranch(Opcode::BNE, 5, 6));
  EXPECT_TRUE(evalBranch(Opcode::BLT, 0xFFFFFFFFu, 0)); // -1 < 0
  EXPECT_FALSE(evalBranch(Opcode::BLTU, 0xFFFFFFFFu, 0));
  EXPECT_TRUE(evalBranch(Opcode::BGE, 0, 0));
  EXPECT_TRUE(evalBranch(Opcode::BGEU, 0xFFFFFFFFu, 1));
}

// Property sweep: mul/div identities against 64-bit host arithmetic.
class ExecProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecProperty, DivRemReconstructsDividend) {
  SplitMix64 Rng(GetParam());
  for (unsigned Trial = 0; Trial != 200; ++Trial) {
    uint32_t A = static_cast<uint32_t>(Rng.next());
    uint32_t B = static_cast<uint32_t>(Rng.next());
    if (B == 0)
      continue;
    // a == (a/b)*b + a%b in both signednesses.
    uint32_t Q = op(Opcode::DIV, A, B);
    uint32_t R = op(Opcode::REM, A, B);
    EXPECT_EQ(Q * B + R, A);
    uint32_t Qu = op(Opcode::DIVU, A, B);
    uint32_t Ru = op(Opcode::REMU, A, B);
    EXPECT_EQ(Qu * B + Ru, A);
  }
}

TEST_P(ExecProperty, MulhMatchesWideMultiply) {
  SplitMix64 Rng(GetParam() + 99);
  for (unsigned Trial = 0; Trial != 200; ++Trial) {
    uint32_t A = static_cast<uint32_t>(Rng.next());
    uint32_t B = static_cast<uint32_t>(Rng.next());
    uint64_t WideU = static_cast<uint64_t>(A) * B;
    EXPECT_EQ(op(Opcode::MULHU, A, B), static_cast<uint32_t>(WideU >> 32));
    EXPECT_EQ(op(Opcode::MUL, A, B), static_cast<uint32_t>(WideU));
    int64_t WideS = static_cast<int64_t>(static_cast<int32_t>(A)) *
                    static_cast<int64_t>(static_cast<int32_t>(B));
    EXPECT_EQ(op(Opcode::MULH, A, B),
              static_cast<uint32_t>(static_cast<uint64_t>(WideS) >> 32));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExecProperty,
                         ::testing::Values(1ull, 42ull, 0xDEADBEEFull));

} // namespace
