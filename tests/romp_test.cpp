//===- tests/romp_test.cpp - Deterministic OpenMP runtime tests --------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Exercises the generated LBP_parallel_start launcher: team distribution
// over cores, the in-order p_ret barrier between successive parallel
// regions (paper Fig. 4), reductions over the backward line, and the
// determinism of the whole machinery.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "romp/Runtime.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::sim;

namespace {

constexpr uint32_t OutBase = 0x20000800;
constexpr uint32_t FlagAddr = 0x20000900;

/// Builds a program that runs `Body` between the main prologue/epilogue
/// with the runtime appended.
std::string withRuntime(const std::string &Body,
                        const std::string &Functions) {
  romp::AsmText T;
  romp::emitMainPrologue(T);
  std::string Out = T.str();
  Out += Body;
  romp::AsmText T2;
  romp::emitMainEpilogue(T2);
  romp::emitParallelStart(T2);
  Out += T2.str();
  Out += Functions;
  return Out;
}

Machine runOrDie(const std::string &Source, unsigned Cores,
                 uint64_t MaxCycles = 3000000) {
  assembler::AsmResult R = assembler::assemble(Source);
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  Machine M(SimConfig::lbp(Cores));
  M.load(R.Prog);
  RunStatus S = M.run(MaxCycles);
  EXPECT_EQ(S, RunStatus::Exited) << M.faultMessage();
  return M;
}

/// thread(t, data): OUT[t] = 100 + t.
const char *WriterThread = R"(
thread:
    li a4, 0x20000800
    slli a5, a0, 2
    add a4, a4, a5
    addi a6, a0, 100
    sw a6, 0(a4)
    p_ret
)";

std::string parallelCallBody(unsigned NumHarts) {
  romp::AsmText T;
  romp::emitParallelCall(T, "thread", NumHarts, "0");
  // Post-barrier marker: proves main resumed after the team.
  T.line("li a4, 0x20000900");
  T.line("li a5, 1");
  T.line("sw a5, 0(a4)");
  T.line("p_syncm");
  return T.str();
}

class TeamSizes : public ::testing::TestWithParam<unsigned> {};

TEST_P(TeamSizes, EveryMemberRunsExactlyOnce) {
  unsigned NumHarts = GetParam();
  unsigned Cores = (NumHarts + HartsPerCore - 1) / HartsPerCore;
  Machine M = runOrDie(withRuntime(parallelCallBody(NumHarts),
                                   WriterThread),
                       std::max(Cores, 1u));
  for (unsigned T = 0; T != NumHarts; ++T)
    EXPECT_EQ(M.debugReadWord(OutBase + 4 * T), 100 + T) << "member " << T;
  EXPECT_EQ(M.debugReadWord(FlagAddr), 1u);
}

INSTANTIATE_TEST_SUITE_P(AllShapes, TeamSizes,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 8u, 13u,
                                           16u));

TEST(Romp, TeamFillsCoresInOrder) {
  // With 16 harts on 4 cores, team member t runs on hart t: members
  // write their own hart id next to their index.
  std::string Thread = R"(
thread:
    li a4, 0x20000800
    slli a5, a0, 2
    add a4, a4, a5
    p_set a6
    srli a6, a6, 16
    li a5, 0x7fff
    and a6, a6, a5
    sw a6, 0(a4)
    p_ret
)";
  Machine M = runOrDie(withRuntime(parallelCallBody(16), Thread), 4);
  for (unsigned T = 0; T != 16; ++T)
    EXPECT_EQ(M.debugReadWord(OutBase + 4 * T), T)
        << "member " << T << " placed on the wrong hart";
}

TEST(Romp, TwoPhasesAreSeparatedByTheBarrier) {
  // Paper Fig. 4: a set phase fills v, a get phase consumes it. The
  // hardware barrier (in-order p_ret commits) separates them with no
  // explicit synchronization in the threads.
  std::string Body;
  {
    romp::AsmText T;
    romp::emitParallelCall(T, "thread_set", 8, "0");
    romp::emitParallelCall(T, "thread_get", 8, "0");
    Body = T.str();
  }
  std::string Functions = R"(
    .equ V,   0x20000a00
    .equ OUT, 0x20000800
thread_set:                  # v[4t..4t+3] = t
    li a4, V
    slli a5, a0, 4
    add a4, a4, a5
    li a6, 4
.Lset:
    sw a0, 0(a4)
    addi a4, a4, 4
    addi a6, a6, -1
    bnez a6, .Lset
    p_ret

thread_get:                  # OUT[t] = sum v[4t..4t+3] (= 4t)
    li a4, V
    slli a5, a0, 4
    add a4, a4, a5
    li a6, 4
    li a7, 0
.Lget:
    lw t2, 0(a4)
    add a7, a7, t2
    addi a4, a4, 4
    addi a6, a6, -1
    bnez a6, .Lget
    li a4, OUT
    slli a5, a0, 2
    add a4, a4, a5
    sw a7, 0(a4)
    p_ret
)";
  Machine M = runOrDie(withRuntime(Body, Functions), 2);
  for (unsigned T = 0; T != 8; ++T)
    EXPECT_EQ(M.debugReadWord(OutBase + 4 * T), 4 * T) << "chunk " << T;
}

TEST(Romp, ReductionSumsAllPartials) {
  // Every member sends 10 + t to the head's reduction slot; main folds
  // the 8 partials after the barrier. Sum = 8*10 + 28 = 108.
  std::string Body;
  {
    romp::AsmText T;
    romp::emitParallelCall(T, "thread", 8, "0");
    T.line("li a4, 0");
    romp::emitReduceCollect(T, "a4", 8);
    T.line("li a5, 0x20000900");
    T.line("sw a4, 0(a5)");
    T.line("p_syncm");
    Body = T.str();
  }
  std::string Functions;
  {
    romp::AsmText T;
    T.label("thread");
    T.line("addi a4, a0, 10");
    romp::emitReduceSend(T, "a4");
    T.line("p_ret");
    Functions = T.str();
  }
  Machine M = runOrDie(withRuntime(Body, Functions), 2);
  EXPECT_EQ(M.debugReadWord(FlagAddr), 108u);
}

TEST(Romp, WholeTeamMachineryIsDeterministic) {
  std::string Src = withRuntime(parallelCallBody(16), WriterThread);
  Machine M1 = runOrDie(Src, 4);
  Machine M2 = runOrDie(Src, 4);
  EXPECT_EQ(M1.cycles(), M2.cycles());
  EXPECT_EQ(M1.retired(), M2.retired());
  EXPECT_EQ(M1.traceHash(), M2.traceHash());
}

TEST(Romp, AllHartsAreFreeAfterTheTeamJoins) {
  Machine M = runOrDie(withRuntime(parallelCallBody(16), WriterThread), 4);
  // After exit, every hart but the initial one must have been released.
  for (unsigned H = 1; H != 16; ++H)
    EXPECT_EQ(M.hartState(H), HartState::Free) << "hart " << H;
}

// An oversized (or empty) team would spin the hart allocator forever at
// run time; emitParallelCall must refuse at codegen time with a message
// that names the cause instead of letting the simulator livelock.
TEST(RompDeath, ZeroHartTeamIsRefused) {
  EXPECT_EXIT(
      {
        romp::AsmText T;
        romp::emitParallelCall(T, "thread", 0, "0");
      },
      ::testing::ExitedWithCode(1), "zero harts");
}

TEST(RompDeath, TeamBeyondTheLineMaximumIsRefused) {
  EXPECT_EXIT(
      {
        romp::AsmText T;
        romp::emitParallelCall(T, "thread", romp::MaxTeamHarts + 1, "0");
      },
      ::testing::ExitedWithCode(1), "architectural line maximum");
}

TEST(RompDeath, TeamBeyondTheMachineIsRefused) {
  EXPECT_EXIT(
      {
        romp::AsmText T;
        romp::emitParallelCall(T, "thread", 32, "0",
                               /*MachineHarts=*/16);
      },
      ::testing::ExitedWithCode(1), "spin forever");
}

TEST(Romp, TeamWithinTheMachineIsAccepted) {
  romp::AsmText T;
  romp::emitParallelCall(T, "thread", 16, "0", /*MachineHarts=*/16);
  EXPECT_NE(T.str().find("jal LBP_parallel_start"), std::string::npos);
}

} // namespace
