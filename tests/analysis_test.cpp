//===- tests/analysis_test.cpp - Static determinism analysis tests ------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The lbp_lint subsystem (docs/ANALYSIS.md): the Det-C determinism
// analyzer must flag every racy program in the table below and keep
// quiet on every clean one; the X_PAR verifier must catch hand-made
// protocol violations; and the dynamic oracle must agree with the
// static verdict on both sides.
//
//===----------------------------------------------------------------------===//

#include "analysis/DetRace.h"
#include "analysis/Oracle.h"
#include "analysis/XParVerify.h"
#include "asm/Assembler.h"
#include "dsl/Ast.h"
#include "dsl/CodeGen.h"
#include "frontend/Compiler.h"
#include "romp/Runtime.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::analysis;

namespace {

AnalysisResult analyzeSource(const std::string &Src) {
  frontend::FrontendResult R = frontend::parseDetC(Src);
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  if (!R.M)
    return {};
  return analyzeModule(*R.M);
}

bool hasRule(const AnalysisResult &Res, const std::string &Rule) {
  for (const Diag &D : Res.Diags)
    if (D.Rule == Rule)
      return true;
  return false;
}

/// Wraps a thread body in the canonical parallel-for scaffold.
std::string regionProgram(const std::string &Globals,
                          const std::string &ThreadBody, unsigned Team) {
  std::string Src = Globals + "\n";
  Src += "void worker(int t) {\n" + ThreadBody + "\n}\n";
  Src += "void main() {\n  int t;\n";
  Src += "  #pragma omp parallel for\n";
  Src += "  for (t = 0; t < " + std::to_string(Team) + "; t++)\n";
  Src += "    worker(t);\n}\n";
  return Src;
}

//===----------------------------------------------------------------------===//
// Det-C determinism analyzer: racy programs
//===----------------------------------------------------------------------===//

struct RacyCase {
  const char *Name;
  std::string Src;
  const char *Rule; ///< A diagnostic with this rule tag must appear.
};

std::vector<RacyCase> racyCases() {
  std::vector<RacyCase> C;
  C.push_back({"AllMembersWriteElementZero",
               regionProgram("int v[16];", "  v[0] = t;", 4), "race.ww"});
  C.push_back({"BroadcastReadOfAWrittenElement",
               regionProgram("int v[16];", "  v[t] = v[0] + 1;", 4),
               "race.rw"});
  C.push_back({"NeighbourIndexOverlap",
               regionProgram("int v[16];", "  v[t] = 1;\n  v[t + 1] = 2;", 4),
               "race.ww"});
  C.push_back({"SharedScalarWrite",
               regionProgram("int x;", "  x = t;", 4), "race.ww"});
  C.push_back({"EveryMemberSweepsTheSamePrefix",
               regionProgram("int v[16];",
                             "  int n;\n  for (n = 0; n < 4; n++)\n"
                             "    v[n] = t;",
                             4),
               "race.ww"});
  C.push_back({"ChunksOverlapByOneElement",
               regionProgram("int v[32];",
                             "  int n;\n"
                             "  for (n = t * 4; n < t * 4 + 5; n++)\n"
                             "    v[n] = n;",
                             4),
               "race.ww"});
  C.push_back({"GuardStillAdmitsTwoWriters",
               regionProgram("int v[16];", "  if (t < 2)\n    v[0] = t;", 4),
               "race.ww"});
  C.push_back({"DifferentStridesCollide",
               regionProgram("int v[32];",
                             "  v[2 * t] = 1;\n  v[t + 2] = 2;", 4),
               "race.ww"});
  C.push_back({"RaceHiddenInACallee",
               "int v[16];\n"
               "void helper(int t) {\n  v[0] = t;\n}\n"
               "void worker(int t) {\n  helper(t);\n}\n"
               "void main() {\n  int t;\n"
               "  #pragma omp parallel for\n"
               "  for (t = 0; t < 4; t++)\n    worker(t);\n}\n",
               "race.ww"});
  C.push_back({"DoWhileSweepCollides",
               regionProgram("int v[16];",
                             "  int n;\n  n = 0;\n  do {\n"
                             "    v[n] = t;\n    n = n + 1;\n"
                             "  } while (n < 4);",
                             4),
               "race.ww"});
  C.push_back({"ReductionWithNoSender",
               "void worker(int t) {\n}\n"
               "void main() {\n  int t;\n  int sum;\n  sum = 0;\n"
               "  #pragma omp parallel for reduction(+:sum)\n"
               "  for (t = 0; t < 4; t++)\n    worker(t);\n}\n",
               "reduce.deadlock"});
  C.push_back({"ReductionSendsTwicePerMember",
               "void worker(int t) {\n"
               "  __reduce_send(t);\n  __reduce_send(t);\n}\n"
               "void main() {\n  int t;\n  int sum;\n  sum = 0;\n"
               "  #pragma omp parallel for reduction(+:sum)\n"
               "  for (t = 0; t < 4; t++)\n    worker(t);\n}\n",
               "reduce.arity"});
  C.push_back({"SendOutsideAnyTeam",
               "void main() {\n  __reduce_send(3);\n}\n",
               "reduce.send-outside-team"});
  C.push_back({"SectionsWriteTheSameGlobal",
               "int a;\n"
               "void main() {\n"
               "  #pragma omp parallel sections\n"
               "  {\n"
               "    #pragma omp section\n    { a = 1; }\n"
               "    #pragma omp section\n    { a = 2; }\n"
               "  }\n}\n",
               "race.ww"});
  return C;
}

TEST(DetRace, FlagsEveryRacyProgram) {
  for (const RacyCase &C : racyCases()) {
    SCOPED_TRACE(C.Name);
    AnalysisResult Res = analyzeSource(C.Src);
    EXPECT_TRUE(Res.hasErrors()) << "expected errors for:\n" << C.Src;
    EXPECT_TRUE(hasRule(Res, C.Rule))
        << "expected rule " << C.Rule << ", got:\n" << Res.text();
  }
}

//===----------------------------------------------------------------------===//
// Det-C determinism analyzer: clean programs
//===----------------------------------------------------------------------===//

struct CleanCase {
  const char *Name;
  std::string Src;
};

std::vector<CleanCase> cleanCases() {
  std::vector<CleanCase> C;
  C.push_back({"OwnElementPerMember",
               regionProgram("int v[16];", "  v[t] = t;", 4)});
  C.push_back({"ReadModifyWriteOwnElement",
               regionProgram("int v[16];", "  v[t] = v[t] + 1;", 4)});
  C.push_back({"DisjointChunkSweep",
               regionProgram("int v[32];",
                             "  int n;\n"
                             "  for (n = t * 4; n < (t + 1) * 4; n++)\n"
                             "    v[n] = n;",
                             4)});
  C.push_back({"InterleavedEvenOddPair",
               regionProgram("int v[32];",
                             "  v[2 * t] = 1;\n  v[2 * t + 1] = 2;", 4)});
  C.push_back({"ProperReduction",
               "void worker(int t) {\n  __reduce_send(t * t);\n}\n"
               "void main() {\n  int t;\n  int sum;\n  sum = 0;\n"
               "  #pragma omp parallel for reduction(+:sum)\n"
               "  for (t = 0; t < 4; t++)\n    worker(t);\n}\n"});
  C.push_back({"GuardedWritesStayDisjoint",
               regionProgram("int x;\nint v[16];",
                             "  if (t == 0)\n    x = 1;\n"
                             "  else\n    v[t] = t;",
                             4)});
  C.push_back({"SharedReadsNeverConflict",
               regionProgram("int v[16];\nint c[4] = { 7 };",
                             "  v[t] = c[0] + t;", 4)});
  C.push_back({"PhasedRegionsAreIndependent",
               "int v[16];\nint w[16];\n"
               "void produce(int t) {\n  v[t] = t;\n}\n"
               "void consume(int t) {\n  w[t] = v[t];\n}\n"
               "void main() {\n  int t;\n"
               "  #pragma omp parallel for\n"
               "  for (t = 0; t < 4; t++)\n    produce(t);\n"
               "  #pragma omp parallel for\n"
               "  for (t = 0; t < 4; t++)\n    consume(t);\n}\n"});
  C.push_back({"SingleMemberTeamCannotRace",
               regionProgram("int v[16];", "  v[0] = 5;", 1)});
  C.push_back({"ReversedBijection",
               regionProgram("int v[8];", "  v[7 - t] = t;", 8)});
  C.push_back({"LocalLoopThenOwnElement",
               regionProgram("int v[16];",
                             "  int acc;\n  int n;\n  acc = 0;\n  n = 0;\n"
                             "  while (n < 8) {\n"
                             "    acc = acc + n;\n    n = n + 1;\n  }\n"
                             "  v[t] = acc;",
                             4)});
  C.push_back({"SectionsWriteDifferentGlobals",
               "int a;\nint b;\n"
               "void main() {\n"
               "  #pragma omp parallel sections\n"
               "  {\n"
               "    #pragma omp section\n    { a = 1; }\n"
               "    #pragma omp section\n    { b = 2; }\n"
               "  }\n}\n"});
  return C;
}

TEST(DetRace, AcceptsEveryCleanProgram) {
  for (const CleanCase &C : cleanCases()) {
    SCOPED_TRACE(C.Name);
    AnalysisResult Res = analyzeSource(C.Src);
    EXPECT_TRUE(Res.clean())
        << "expected no findings for:\n" << C.Src << "\ngot:\n"
        << Res.text();
  }
}

//===----------------------------------------------------------------------===//
// Region-shape checks on hand-built modules
//===----------------------------------------------------------------------===//

TEST(DetRace, ZeroTeamIsAnError) {
  dsl::Module M;
  dsl::Function *Th = M.function("worker", dsl::FnKind::Thread);
  Th->param("t");
  dsl::Function *Main = M.function("main", dsl::FnKind::Main);
  Main->append(M.parallelFor("worker", 0));
  EXPECT_TRUE(hasRule(analyzeModule(M), "region.zero-team"));
}

TEST(DetRace, UnknownCalleeIsAnError) {
  dsl::Module M;
  dsl::Function *Main = M.function("main", dsl::FnKind::Main);
  Main->append(M.parallelFor("nosuch", 4));
  EXPECT_TRUE(hasRule(analyzeModule(M), "region.unknown-callee"));
}

TEST(DetRace, TeamBeyondTheLineMaximumIsAnError) {
  dsl::Module M;
  dsl::Function *Th = M.function("worker", dsl::FnKind::Thread);
  Th->param("t");
  dsl::Function *Main = M.function("main", dsl::FnKind::Main);
  Main->append(M.parallelFor("worker", romp::MaxTeamHarts + 1));
  EXPECT_TRUE(hasRule(analyzeModule(M), "region.team-too-big"));
}

TEST(DetRace, TeamBeyondTheMachineIsAnError) {
  dsl::Module M;
  dsl::Function *Th = M.function("worker", dsl::FnKind::Thread);
  Th->param("t");
  dsl::Function *Main = M.function("main", dsl::FnKind::Main);
  Main->append(M.parallelFor("worker", 64));
  DetRaceOptions Opts;
  Opts.MachineHarts = 16;
  EXPECT_TRUE(hasRule(analyzeModule(M, Opts), "region.team-too-big"));
  EXPECT_FALSE(hasRule(analyzeModule(M), "region.team-too-big"));
}

TEST(DetRace, NumThreadsMismatchWarns) {
  std::string Src =
      "int v[16];\n"
      "void worker(int t) {\n  v[t] = t;\n}\n"
      "void main() {\n  int t;\n"
      "  omp_set_num_threads(8);\n"
      "  #pragma omp parallel for\n"
      "  for (t = 0; t < 4; t++)\n    worker(t);\n}\n";
  EXPECT_TRUE(hasRule(analyzeSource(Src), "region.num-threads-mismatch"));
}

//===----------------------------------------------------------------------===//
// X_PAR protocol verifier
//===----------------------------------------------------------------------===//

AnalysisResult verifyAsm(const std::string &Text,
                         const XParVerifyOptions &Opts = {}) {
  assembler::AsmResult R = assembler::assemble(Text);
  EXPECT_TRUE(R.succeeded()) << R.errorText() << "\n" << Text;
  return verifyProgram(R.Prog, Opts);
}

/// A custom `main` body in front of the real LBP_parallel_start
/// launcher and a thread function.
std::string launchProgram(const std::string &MainBody,
                          const std::string &Thread) {
  std::string Src = "main:\n" + MainBody + "    p_ret\n";
  Src += Thread;
  romp::AsmText T;
  romp::emitParallelStart(T);
  Src += T.str();
  return Src;
}

const char *GoodThread = "thread:\n"
                         "    addi a4, a0, 1\n"
                         "    p_ret\n";

TEST(XParVerify, ContinuationSlotOutOfRange) {
  AnalysisResult Res = verifyAsm("f:\n"
                                 "    p_fc t6\n"
                                 "    p_swcv ra, t6, 68\n"
                                 "    p_syncm\n"
                                 "    p_jalr ra, t6, a3\n"
                                 "    p_ret\n");
  EXPECT_TRUE(hasRule(Res, "xpar.cv-slot-range")) << Res.text();
}

TEST(XParVerify, ResultSlotOutOfRange) {
  AnalysisResult Res = verifyAsm("f:\n"
                                 "    p_swre a0, tp, 9\n"
                                 "    p_lwre t2, 8\n"
                                 "    p_ret\n");
  EXPECT_TRUE(hasRule(Res, "xpar.re-slot-range")) << Res.text();
  EXPECT_EQ(Res.Diags.size(), 2u) << Res.text();
}

TEST(XParVerify, StraightLineForkOverwriteLeaks) {
  AnalysisResult Res = verifyAsm("f:\n"
                                 "    p_fc t6\n"
                                 "    p_fn t6\n"
                                 "    p_jalr ra, t6, a3\n"
                                 "    p_ret\n");
  EXPECT_TRUE(hasRule(Res, "xpar.fork-leak")) << Res.text();
}

TEST(XParVerify, ForkNeverStartedLeaks) {
  AnalysisResult Res = verifyAsm("f:\n"
                                 "    p_fc t6\n"
                                 "    p_ret\n");
  EXPECT_TRUE(hasRule(Res, "xpar.fork-leak")) << Res.text();
}

TEST(XParVerify, ForkCallWithoutSyncmAfterStores) {
  AnalysisResult Res = verifyAsm("f:\n"
                                 "    p_fc t6\n"
                                 "    p_swcv a1, t6, 8\n"
                                 "    p_jalr ra, t6, a3\n"
                                 "    p_ret\n");
  EXPECT_TRUE(hasRule(Res, "xpar.fork-before-syncm")) << Res.text();
}

TEST(XParVerify, ContinuationReadOfAnUnwrittenSlot) {
  AnalysisResult Res = verifyAsm("f:\n"
                                 "    p_fc t6\n"
                                 "    p_swcv a1, t6, 8\n"
                                 "    p_syncm\n"
                                 "    p_jalr ra, t6, a3\n"
                                 "    p_lwcv a1, 12\n"
                                 "    p_ret\n");
  EXPECT_TRUE(hasRule(Res, "xpar.lwcv-not-stored")) << Res.text();
}

TEST(XParVerify, TeamOfZeroAtTheLaunchSite) {
  AnalysisResult Res = verifyAsm(launchProgram("    li a1, 0\n"
                                               "    li a2, 0\n"
                                               "    la a3, thread\n"
                                               "    jal LBP_parallel_start\n",
                                               GoodThread));
  EXPECT_TRUE(hasRule(Res, "xpar.team-zero")) << Res.text();
}

TEST(XParVerify, TeamBeyondTheMachineAtTheLaunchSite) {
  std::string Src = launchProgram("    li a1, 0\n"
                                  "    li a2, 64\n"
                                  "    la a3, thread\n"
                                  "    jal LBP_parallel_start\n",
                                  GoodThread);
  XParVerifyOptions Opts;
  Opts.MachineHarts = 16;
  EXPECT_TRUE(hasRule(verifyAsm(Src, Opts), "xpar.team-too-big"));
  EXPECT_FALSE(hasRule(verifyAsm(Src), "xpar.team-too-big"));
}

TEST(XParVerify, ThreadEndingInPlainRet) {
  AnalysisResult Res = verifyAsm(launchProgram(
      "    li a1, 0\n"
      "    li a2, 4\n"
      "    la a3, thread\n"
      "    jal LBP_parallel_start\n",
      "thread:\n"
      "    addi a4, a0, 1\n"
      "    ret\n"));
  EXPECT_TRUE(hasRule(Res, "xpar.thread-plain-ret")) << Res.text();
  EXPECT_TRUE(hasRule(Res, "xpar.thread-missing-pret")) << Res.text();
}

TEST(XParVerify, CollectWithNoSenderDeadlocks) {
  AnalysisResult Res = verifyAsm(launchProgram(
      "    li a1, 0\n"
      "    li a2, 4\n"
      "    la a3, thread\n"
      "    jal LBP_parallel_start\n"
      "    li t3, 4\n"
      ".Lcollect:\n"
      "    p_lwre t2, 7\n"
      "    add a4, a4, t2\n"
      "    addi t3, t3, -1\n"
      "    bnez t3, .Lcollect\n",
      GoodThread));
  EXPECT_TRUE(hasRule(Res, "xpar.reduce-deadlock")) << Res.text();
}

TEST(XParVerify, CollectCountDisagreesWithTheSenders) {
  AnalysisResult Res = verifyAsm(launchProgram(
      "    li a1, 0\n"
      "    li a2, 4\n"
      "    la a3, thread\n"
      "    jal LBP_parallel_start\n"
      "    li t3, 9\n"
      ".Lcollect:\n"
      "    p_lwre t2, 7\n"
      "    add a4, a4, t2\n"
      "    addi t3, t3, -1\n"
      "    bnez t3, .Lcollect\n",
      "thread:\n"
      "    addi a4, a0, 1\n"
      "    p_swre a4, tp, 7\n"
      "    p_ret\n"));
  EXPECT_TRUE(hasRule(Res, "xpar.reduce-arity")) << Res.text();
}

TEST(XParVerify, TheRealLauncherIsClean) {
  romp::AsmText T;
  T.label("main");
  romp::emitParallelCall(T, "thread", 8, "0");
  T.line("p_ret");
  std::string Src = T.str();
  Src += GoodThread;
  romp::AsmText T2;
  romp::emitParallelStart(T2);
  Src += T2.str();
  AnalysisResult Res = verifyAsm(Src);
  EXPECT_TRUE(Res.clean()) << Res.text();
}

TEST(XParVerify, CompiledDetCIsClean) {
  frontend::FrontendResult R = frontend::parseDetC(
      regionProgram("int v[16];", "  v[t] = t;", 4));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  AnalysisResult Res = verifyAsm(dsl::compileModule(*R.M));
  EXPECT_TRUE(Res.clean()) << Res.text();
}

//===----------------------------------------------------------------------===//
// Dynamic oracle agreement
//===----------------------------------------------------------------------===//

OracleResult oracleOn(const dsl::Module &M) {
  assembler::AsmResult R = assembler::assemble(dsl::compileModule(M));
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  return runOracle(R.Prog, &M);
}

TEST(Oracle, ConfirmsTheStaticRaceVerdict) {
  frontend::FrontendResult R = frontend::parseDetC(
      regionProgram("int v[16];", "  v[0] = t;", 4));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  AnalysisResult Static = analyzeModule(*R.M);
  EXPECT_TRUE(hasRule(Static, "race.ww"));
  OracleResult Dyn = oracleOn(*R.M);
  ASSERT_TRUE(Dyn.Ran) << Dyn.RunError;
  EXPECT_TRUE(Dyn.dynamicallyRacy());
  EXPECT_TRUE(verdictsAgree(Static, Dyn));
  // The report names the global the harts fought over.
  ASSERT_FALSE(Dyn.Conflicts.empty());
  EXPECT_EQ(Dyn.Conflicts[0].Symbol, "v");
}

TEST(Oracle, ConfirmsTheStaticCleanVerdict) {
  frontend::FrontendResult R = frontend::parseDetC(
      regionProgram("int v[16];", "  v[t] = t * 3;", 4));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  AnalysisResult Static = analyzeModule(*R.M);
  EXPECT_TRUE(Static.clean()) << Static.text();
  OracleResult Dyn = oracleOn(*R.M);
  ASSERT_TRUE(Dyn.Ran) << Dyn.RunError;
  EXPECT_FALSE(Dyn.dynamicallyRacy());
  EXPECT_TRUE(verdictsAgree(Static, Dyn));
}

TEST(Oracle, DisagreementIsVisible) {
  OracleResult RacyRun;
  RacyRun.Ran = true;
  RacyRun.Conflicts.push_back({0x20000000, 0, 1, 0, true, "v"});
  OracleResult CleanRun;
  CleanRun.Ran = true;

  AnalysisResult CleanVerdict;
  AnalysisResult RacyVerdict;
  RacyVerdict.error(1, "race.ww", "synthetic");

  EXPECT_FALSE(verdictsAgree(CleanVerdict, RacyRun));
  EXPECT_FALSE(verdictsAgree(RacyVerdict, CleanRun));
  EXPECT_TRUE(verdictsAgree(RacyVerdict, RacyRun));
  EXPECT_TRUE(verdictsAgree(CleanVerdict, CleanRun));
}

} // namespace
