//===- tests/analysis_test.cpp - Static determinism analysis tests ------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The lbp_lint subsystem (docs/ANALYSIS.md): the Det-C determinism
// analyzer must flag every racy program in the table below and keep
// quiet on every clean one; the X_PAR verifier must catch hand-made
// protocol violations; and the dynamic oracle must agree with the
// static verdict on both sides.
//
//===----------------------------------------------------------------------===//

#include "analysis/DetRace.h"
#include "analysis/Oracle.h"
#include "analysis/XParVerify.h"
#include "asm/Assembler.h"
#include "dsl/Ast.h"
#include "dsl/CodeGen.h"
#include "frontend/Compiler.h"
#include "romp/Runtime.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::analysis;

namespace {

AnalysisResult analyzeSource(const std::string &Src) {
  frontend::FrontendResult R = frontend::parseDetC(Src);
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  if (!R.M)
    return {};
  return analyzeModule(*R.M);
}

bool hasRule(const AnalysisResult &Res, const std::string &Rule) {
  for (const Diag &D : Res.Diags)
    if (D.Rule == Rule)
      return true;
  return false;
}

/// Wraps a thread body in the canonical parallel-for scaffold.
std::string regionProgram(const std::string &Globals,
                          const std::string &ThreadBody, unsigned Team) {
  std::string Src = Globals + "\n";
  Src += "void worker(int t) {\n" + ThreadBody + "\n}\n";
  Src += "void main() {\n  int t;\n";
  Src += "  #pragma omp parallel for\n";
  Src += "  for (t = 0; t < " + std::to_string(Team) + "; t++)\n";
  Src += "    worker(t);\n}\n";
  return Src;
}

//===----------------------------------------------------------------------===//
// Det-C determinism analyzer: racy programs
//===----------------------------------------------------------------------===//

struct RacyCase {
  const char *Name;
  std::string Src;
  const char *Rule; ///< A diagnostic with this rule tag must appear.
};

std::vector<RacyCase> racyCases() {
  std::vector<RacyCase> C;
  C.push_back({"AllMembersWriteElementZero",
               regionProgram("int v[16];", "  v[0] = t;", 4), "race.ww"});
  C.push_back({"BroadcastReadOfAWrittenElement",
               regionProgram("int v[16];", "  v[t] = v[0] + 1;", 4),
               "race.rw"});
  C.push_back({"NeighbourIndexOverlap",
               regionProgram("int v[16];", "  v[t] = 1;\n  v[t + 1] = 2;", 4),
               "race.ww"});
  C.push_back({"SharedScalarWrite",
               regionProgram("int x;", "  x = t;", 4), "race.ww"});
  C.push_back({"EveryMemberSweepsTheSamePrefix",
               regionProgram("int v[16];",
                             "  int n;\n  for (n = 0; n < 4; n++)\n"
                             "    v[n] = t;",
                             4),
               "race.ww"});
  C.push_back({"ChunksOverlapByOneElement",
               regionProgram("int v[32];",
                             "  int n;\n"
                             "  for (n = t * 4; n < t * 4 + 5; n++)\n"
                             "    v[n] = n;",
                             4),
               "race.ww"});
  C.push_back({"GuardStillAdmitsTwoWriters",
               regionProgram("int v[16];", "  if (t < 2)\n    v[0] = t;", 4),
               "race.ww"});
  C.push_back({"DifferentStridesCollide",
               regionProgram("int v[32];",
                             "  v[2 * t] = 1;\n  v[t + 2] = 2;", 4),
               "race.ww"});
  C.push_back({"RaceHiddenInACallee",
               "int v[16];\n"
               "void helper(int t) {\n  v[0] = t;\n}\n"
               "void worker(int t) {\n  helper(t);\n}\n"
               "void main() {\n  int t;\n"
               "  #pragma omp parallel for\n"
               "  for (t = 0; t < 4; t++)\n    worker(t);\n}\n",
               "race.ww"});
  C.push_back({"DoWhileSweepCollides",
               regionProgram("int v[16];",
                             "  int n;\n  n = 0;\n  do {\n"
                             "    v[n] = t;\n    n = n + 1;\n"
                             "  } while (n < 4);",
                             4),
               "race.ww"});
  C.push_back({"ReductionWithNoSender",
               "void worker(int t) {\n}\n"
               "void main() {\n  int t;\n  int sum;\n  sum = 0;\n"
               "  #pragma omp parallel for reduction(+:sum)\n"
               "  for (t = 0; t < 4; t++)\n    worker(t);\n}\n",
               "reduce.deadlock"});
  C.push_back({"ReductionSendsTwicePerMember",
               "void worker(int t) {\n"
               "  __reduce_send(t);\n  __reduce_send(t);\n}\n"
               "void main() {\n  int t;\n  int sum;\n  sum = 0;\n"
               "  #pragma omp parallel for reduction(+:sum)\n"
               "  for (t = 0; t < 4; t++)\n    worker(t);\n}\n",
               "reduce.arity"});
  C.push_back({"SendOutsideAnyTeam",
               "void main() {\n  __reduce_send(3);\n}\n",
               "reduce.send-outside-team"});
  C.push_back({"SectionsWriteTheSameGlobal",
               "int a;\n"
               "void main() {\n"
               "  #pragma omp parallel sections\n"
               "  {\n"
               "    #pragma omp section\n    { a = 1; }\n"
               "    #pragma omp section\n    { a = 2; }\n"
               "  }\n}\n",
               "race.ww"});
  return C;
}

TEST(DetRace, FlagsEveryRacyProgram) {
  for (const RacyCase &C : racyCases()) {
    SCOPED_TRACE(C.Name);
    AnalysisResult Res = analyzeSource(C.Src);
    EXPECT_TRUE(Res.hasErrors()) << "expected errors for:\n" << C.Src;
    EXPECT_TRUE(hasRule(Res, C.Rule))
        << "expected rule " << C.Rule << ", got:\n" << Res.text();
  }
}

//===----------------------------------------------------------------------===//
// Det-C determinism analyzer: clean programs
//===----------------------------------------------------------------------===//

struct CleanCase {
  const char *Name;
  std::string Src;
};

std::vector<CleanCase> cleanCases() {
  std::vector<CleanCase> C;
  C.push_back({"OwnElementPerMember",
               regionProgram("int v[16];", "  v[t] = t;", 4)});
  C.push_back({"ReadModifyWriteOwnElement",
               regionProgram("int v[16];", "  v[t] = v[t] + 1;", 4)});
  C.push_back({"DisjointChunkSweep",
               regionProgram("int v[32];",
                             "  int n;\n"
                             "  for (n = t * 4; n < (t + 1) * 4; n++)\n"
                             "    v[n] = n;",
                             4)});
  C.push_back({"InterleavedEvenOddPair",
               regionProgram("int v[32];",
                             "  v[2 * t] = 1;\n  v[2 * t + 1] = 2;", 4)});
  C.push_back({"ProperReduction",
               "void worker(int t) {\n  __reduce_send(t * t);\n}\n"
               "void main() {\n  int t;\n  int sum;\n  sum = 0;\n"
               "  #pragma omp parallel for reduction(+:sum)\n"
               "  for (t = 0; t < 4; t++)\n    worker(t);\n}\n"});
  C.push_back({"GuardedWritesStayDisjoint",
               regionProgram("int x;\nint v[16];",
                             "  if (t == 0)\n    x = 1;\n"
                             "  else\n    v[t] = t;",
                             4)});
  C.push_back({"SharedReadsNeverConflict",
               regionProgram("int v[16];\nint c[4] = { 7 };",
                             "  v[t] = c[0] + t;", 4)});
  C.push_back({"PhasedRegionsAreIndependent",
               "int v[16];\nint w[16];\n"
               "void produce(int t) {\n  v[t] = t;\n}\n"
               "void consume(int t) {\n  w[t] = v[t];\n}\n"
               "void main() {\n  int t;\n"
               "  #pragma omp parallel for\n"
               "  for (t = 0; t < 4; t++)\n    produce(t);\n"
               "  #pragma omp parallel for\n"
               "  for (t = 0; t < 4; t++)\n    consume(t);\n}\n"});
  C.push_back({"SingleMemberTeamCannotRace",
               regionProgram("int v[16];", "  v[0] = 5;", 1)});
  C.push_back({"ReversedBijection",
               regionProgram("int v[8];", "  v[7 - t] = t;", 8)});
  C.push_back({"LocalLoopThenOwnElement",
               regionProgram("int v[16];",
                             "  int acc;\n  int n;\n  acc = 0;\n  n = 0;\n"
                             "  while (n < 8) {\n"
                             "    acc = acc + n;\n    n = n + 1;\n  }\n"
                             "  v[t] = acc;",
                             4)});
  C.push_back({"SectionsWriteDifferentGlobals",
               "int a;\nint b;\n"
               "void main() {\n"
               "  #pragma omp parallel sections\n"
               "  {\n"
               "    #pragma omp section\n    { a = 1; }\n"
               "    #pragma omp section\n    { b = 2; }\n"
               "  }\n}\n"});
  return C;
}

TEST(DetRace, AcceptsEveryCleanProgram) {
  for (const CleanCase &C : cleanCases()) {
    SCOPED_TRACE(C.Name);
    AnalysisResult Res = analyzeSource(C.Src);
    EXPECT_TRUE(Res.clean())
        << "expected no findings for:\n" << C.Src << "\ngot:\n"
        << Res.text();
  }
}

//===----------------------------------------------------------------------===//
// Region-shape checks on hand-built modules
//===----------------------------------------------------------------------===//

TEST(DetRace, ZeroTeamIsAnError) {
  dsl::Module M;
  dsl::Function *Th = M.function("worker", dsl::FnKind::Thread);
  Th->param("t");
  dsl::Function *Main = M.function("main", dsl::FnKind::Main);
  Main->append(M.parallelFor("worker", 0));
  EXPECT_TRUE(hasRule(analyzeModule(M), "region.zero-team"));
}

TEST(DetRace, UnknownCalleeIsAnError) {
  dsl::Module M;
  dsl::Function *Main = M.function("main", dsl::FnKind::Main);
  Main->append(M.parallelFor("nosuch", 4));
  EXPECT_TRUE(hasRule(analyzeModule(M), "region.unknown-callee"));
}

TEST(DetRace, TeamBeyondTheLineMaximumIsAnError) {
  dsl::Module M;
  dsl::Function *Th = M.function("worker", dsl::FnKind::Thread);
  Th->param("t");
  dsl::Function *Main = M.function("main", dsl::FnKind::Main);
  Main->append(M.parallelFor("worker", romp::MaxTeamHarts + 1));
  EXPECT_TRUE(hasRule(analyzeModule(M), "region.team-too-big"));
}

TEST(DetRace, TeamBeyondTheMachineIsAnError) {
  dsl::Module M;
  dsl::Function *Th = M.function("worker", dsl::FnKind::Thread);
  Th->param("t");
  dsl::Function *Main = M.function("main", dsl::FnKind::Main);
  Main->append(M.parallelFor("worker", 64));
  DetRaceOptions Opts;
  Opts.MachineHarts = 16;
  EXPECT_TRUE(hasRule(analyzeModule(M, Opts), "region.team-too-big"));
  EXPECT_FALSE(hasRule(analyzeModule(M), "region.team-too-big"));
}

TEST(DetRace, NumThreadsMismatchWarns) {
  std::string Src =
      "int v[16];\n"
      "void worker(int t) {\n  v[t] = t;\n}\n"
      "void main() {\n  int t;\n"
      "  omp_set_num_threads(8);\n"
      "  #pragma omp parallel for\n"
      "  for (t = 0; t < 4; t++)\n    worker(t);\n}\n";
  EXPECT_TRUE(hasRule(analyzeSource(Src), "region.num-threads-mismatch"));
}

//===----------------------------------------------------------------------===//
// X_PAR protocol verifier
//===----------------------------------------------------------------------===//

AnalysisResult verifyAsm(const std::string &Text,
                         const XParVerifyOptions &Opts = {}) {
  assembler::AsmResult R = assembler::assemble(Text);
  EXPECT_TRUE(R.succeeded()) << R.errorText() << "\n" << Text;
  return verifyProgram(R.Prog, Opts);
}

/// A custom `main` body in front of the real LBP_parallel_start
/// launcher and a thread function.
std::string launchProgram(const std::string &MainBody,
                          const std::string &Thread) {
  std::string Src = "main:\n" + MainBody + "    p_ret\n";
  Src += Thread;
  romp::AsmText T;
  romp::emitParallelStart(T);
  Src += T.str();
  return Src;
}

const char *GoodThread = "thread:\n"
                         "    addi a4, a0, 1\n"
                         "    p_ret\n";

TEST(XParVerify, ContinuationSlotOutOfRange) {
  AnalysisResult Res = verifyAsm("f:\n"
                                 "    p_fc t6\n"
                                 "    p_swcv ra, t6, 68\n"
                                 "    p_syncm\n"
                                 "    p_jalr ra, t6, a3\n"
                                 "    p_ret\n");
  EXPECT_TRUE(hasRule(Res, "xpar.cv-slot-range")) << Res.text();
}

TEST(XParVerify, ResultSlotOutOfRange) {
  AnalysisResult Res = verifyAsm("f:\n"
                                 "    p_swre a0, tp, 9\n"
                                 "    p_lwre t2, 8\n"
                                 "    p_ret\n");
  EXPECT_TRUE(hasRule(Res, "xpar.re-slot-range")) << Res.text();
  EXPECT_EQ(Res.Diags.size(), 2u) << Res.text();
}

TEST(XParVerify, StraightLineForkOverwriteLeaks) {
  AnalysisResult Res = verifyAsm("f:\n"
                                 "    p_fc t6\n"
                                 "    p_fn t6\n"
                                 "    p_jalr ra, t6, a3\n"
                                 "    p_ret\n");
  EXPECT_TRUE(hasRule(Res, "xpar.fork-leak")) << Res.text();
}

TEST(XParVerify, ForkNeverStartedLeaks) {
  AnalysisResult Res = verifyAsm("f:\n"
                                 "    p_fc t6\n"
                                 "    p_ret\n");
  EXPECT_TRUE(hasRule(Res, "xpar.fork-leak")) << Res.text();
}

TEST(XParVerify, ForkCallWithoutSyncmAfterStores) {
  AnalysisResult Res = verifyAsm("f:\n"
                                 "    p_fc t6\n"
                                 "    p_swcv a1, t6, 8\n"
                                 "    p_jalr ra, t6, a3\n"
                                 "    p_ret\n");
  EXPECT_TRUE(hasRule(Res, "xpar.fork-before-syncm")) << Res.text();
}

TEST(XParVerify, ContinuationReadOfAnUnwrittenSlot) {
  AnalysisResult Res = verifyAsm("f:\n"
                                 "    p_fc t6\n"
                                 "    p_swcv a1, t6, 8\n"
                                 "    p_syncm\n"
                                 "    p_jalr ra, t6, a3\n"
                                 "    p_lwcv a1, 12\n"
                                 "    p_ret\n");
  EXPECT_TRUE(hasRule(Res, "xpar.lwcv-not-stored")) << Res.text();
}

TEST(XParVerify, TeamOfZeroAtTheLaunchSite) {
  AnalysisResult Res = verifyAsm(launchProgram("    li a1, 0\n"
                                               "    li a2, 0\n"
                                               "    la a3, thread\n"
                                               "    jal LBP_parallel_start\n",
                                               GoodThread));
  EXPECT_TRUE(hasRule(Res, "xpar.team-zero")) << Res.text();
}

TEST(XParVerify, TeamBeyondTheMachineAtTheLaunchSite) {
  std::string Src = launchProgram("    li a1, 0\n"
                                  "    li a2, 64\n"
                                  "    la a3, thread\n"
                                  "    jal LBP_parallel_start\n",
                                  GoodThread);
  XParVerifyOptions Opts;
  Opts.MachineHarts = 16;
  EXPECT_TRUE(hasRule(verifyAsm(Src, Opts), "xpar.team-too-big"));
  EXPECT_FALSE(hasRule(verifyAsm(Src), "xpar.team-too-big"));
}

TEST(XParVerify, ThreadEndingInPlainRet) {
  AnalysisResult Res = verifyAsm(launchProgram(
      "    li a1, 0\n"
      "    li a2, 4\n"
      "    la a3, thread\n"
      "    jal LBP_parallel_start\n",
      "thread:\n"
      "    addi a4, a0, 1\n"
      "    ret\n"));
  EXPECT_TRUE(hasRule(Res, "xpar.thread-plain-ret")) << Res.text();
  EXPECT_TRUE(hasRule(Res, "xpar.thread-missing-pret")) << Res.text();
}

TEST(XParVerify, CollectWithNoSenderDeadlocks) {
  AnalysisResult Res = verifyAsm(launchProgram(
      "    li a1, 0\n"
      "    li a2, 4\n"
      "    la a3, thread\n"
      "    jal LBP_parallel_start\n"
      "    li t3, 4\n"
      ".Lcollect:\n"
      "    p_lwre t2, 7\n"
      "    add a4, a4, t2\n"
      "    addi t3, t3, -1\n"
      "    bnez t3, .Lcollect\n",
      GoodThread));
  EXPECT_TRUE(hasRule(Res, "xpar.reduce-deadlock")) << Res.text();
}

TEST(XParVerify, CollectCountDisagreesWithTheSenders) {
  AnalysisResult Res = verifyAsm(launchProgram(
      "    li a1, 0\n"
      "    li a2, 4\n"
      "    la a3, thread\n"
      "    jal LBP_parallel_start\n"
      "    li t3, 9\n"
      ".Lcollect:\n"
      "    p_lwre t2, 7\n"
      "    add a4, a4, t2\n"
      "    addi t3, t3, -1\n"
      "    bnez t3, .Lcollect\n",
      "thread:\n"
      "    addi a4, a0, 1\n"
      "    p_swre a4, tp, 7\n"
      "    p_ret\n"));
  EXPECT_TRUE(hasRule(Res, "xpar.reduce-arity")) << Res.text();
}

TEST(XParVerify, TheRealLauncherIsClean) {
  romp::AsmText T;
  T.label("main");
  romp::emitParallelCall(T, "thread", 8, "0");
  T.line("p_ret");
  std::string Src = T.str();
  Src += GoodThread;
  romp::AsmText T2;
  romp::emitParallelStart(T2);
  Src += T2.str();
  AnalysisResult Res = verifyAsm(Src);
  EXPECT_TRUE(Res.clean()) << Res.text();
}

TEST(XParVerify, CompiledDetCIsClean) {
  frontend::FrontendResult R = frontend::parseDetC(
      regionProgram("int v[16];", "  v[t] = t;", 4));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  AnalysisResult Res = verifyAsm(dsl::compileModule(*R.M));
  EXPECT_TRUE(Res.clean()) << Res.text();
}

//===----------------------------------------------------------------------===//
// Dynamic oracle agreement
//===----------------------------------------------------------------------===//

OracleResult oracleOn(const dsl::Module &M) {
  assembler::AsmResult R = assembler::assemble(dsl::compileModule(M));
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  return runOracle(R.Prog, &M);
}

TEST(Oracle, ConfirmsTheStaticRaceVerdict) {
  frontend::FrontendResult R = frontend::parseDetC(
      regionProgram("int v[16];", "  v[0] = t;", 4));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  AnalysisResult Static = analyzeModule(*R.M);
  EXPECT_TRUE(hasRule(Static, "race.ww"));
  OracleResult Dyn = oracleOn(*R.M);
  ASSERT_TRUE(Dyn.Ran) << Dyn.RunError;
  EXPECT_TRUE(Dyn.dynamicallyRacy());
  EXPECT_TRUE(verdictsAgree(Static, Dyn));
  // The report names the global the harts fought over.
  ASSERT_FALSE(Dyn.Conflicts.empty());
  EXPECT_EQ(Dyn.Conflicts[0].Symbol, "v");
}

TEST(Oracle, ConfirmsTheStaticCleanVerdict) {
  frontend::FrontendResult R = frontend::parseDetC(
      regionProgram("int v[16];", "  v[t] = t * 3;", 4));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  AnalysisResult Static = analyzeModule(*R.M);
  EXPECT_TRUE(Static.clean()) << Static.text();
  OracleResult Dyn = oracleOn(*R.M);
  ASSERT_TRUE(Dyn.Ran) << Dyn.RunError;
  EXPECT_FALSE(Dyn.dynamicallyRacy());
  EXPECT_TRUE(verdictsAgree(Static, Dyn));
}

TEST(Oracle, DisagreementIsVisible) {
  OracleResult RacyRun;
  RacyRun.Ran = true;
  RacyRun.Conflicts.push_back({0x20000000, 0, 1, 0, true, "v"});
  OracleResult CleanRun;
  CleanRun.Ran = true;

  AnalysisResult CleanVerdict;
  AnalysisResult RacyVerdict;
  RacyVerdict.error(1, "race.ww", "synthetic");

  EXPECT_FALSE(verdictsAgree(CleanVerdict, RacyRun));
  EXPECT_FALSE(verdictsAgree(RacyVerdict, CleanRun));
  EXPECT_TRUE(verdictsAgree(RacyVerdict, RacyRun));
  EXPECT_TRUE(verdictsAgree(CleanVerdict, CleanRun));
}

//===----------------------------------------------------------------------===//
// Non-affine may-race analysis
//===----------------------------------------------------------------------===//

const Diag *findRule(const AnalysisResult &Res, const std::string &Rule) {
  for (const Diag &D : Res.Diags)
    if (D.Rule == Rule)
      return &D;
  return nullptr;
}

TEST(NonAffine, IndirectIndexRaceIsMay) {
  AnalysisResult Res = analyzeSource(regionProgram(
      "int idx[8];\nint out[8];", "  out[idx[t]] = t;", 8));
  const Diag *D = findRule(Res, "race.may");
  ASSERT_NE(D, nullptr) << Res.text();
  EXPECT_EQ(D->Sev, Severity::Warning);
  EXPECT_NE(D->Message.find("imprecise"), std::string::npos);
  // The may tier never masquerades as a proven race.
  EXPECT_FALSE(hasRule(Res, "race.ww")) << Res.text();
  EXPECT_FALSE(hasRule(Res, "race.rw")) << Res.text();
}

TEST(NonAffine, MaskedSharedWriteIsMay) {
  AnalysisResult Res = analyzeSource(regionProgram(
      "int v[16];\nint sel[4];", "  v[sel[t] & 15] = t;", 4));
  EXPECT_TRUE(hasRule(Res, "race.may")) << Res.text();
  EXPECT_FALSE(Res.hasErrors()) << Res.text();
}

TEST(NonAffine, PrivatizedHistogramCleanViaBanks) {
  // hist spans global banks 0 and 1 exactly; member t only touches
  // bank t, so the data-dependent bin index is discharged by the
  // machine's bank geometry.
  std::string Src = regionProgram(
      "int hist[32768];\nint pixels[64];",
      "  int i;\n  int b;\n"
      "  for (i = 0; i < 64; i++) {\n"
      "    b = (t * 16384) + (pixels[i] & 16383);\n"
      "    hist[b] = hist[b] + 1;\n  }",
      2);
  AnalysisResult Res = analyzeSource(Src);
  EXPECT_TRUE(Res.clean()) << Res.text();
  ASSERT_EQ(Res.Certs.size(), 1u);
  const RegionCert &C = Res.Certs[0];
  EXPECT_EQ(C.Banked, 2u) << "hist read and write are bank-private";
  EXPECT_EQ(C.May, 0u);
  EXPECT_GT(C.BankDischarged, 0u);
  EXPECT_EQ(C.MayRaces, 0u);
}

TEST(NonAffine, SharedHistogramIsMayRace) {
  AnalysisResult Res = analyzeSource(regionProgram(
      "int hist[256];\nint pixels[8];",
      "  int b;\n  b = pixels[t] & 255;\n  hist[b] = hist[b] + 1;", 4));
  const Diag *D = findRule(Res, "race.may");
  ASSERT_NE(D, nullptr) << Res.text();
  EXPECT_EQ(D->Sym, "hist");
}

TEST(NonAffine, MaskedBlockScatterCleanViaResidue) {
  // Member stride 8 words, imprecise part bounded to [0, 7]: the
  // difference between two members' footprints never reaches zero, so
  // the residue/interval rule discharges every pair.
  AnalysisResult Res = analyzeSource(regionProgram(
      "int idx[64];\nint out[64];",
      "  int i;\n  int b;\n"
      "  for (i = 0; i < 8; i++) {\n"
      "    b = (t * 8) + (idx[i] & 7);\n"
      "    out[b] = out[b] + 1;\n  }",
      8));
  EXPECT_TRUE(Res.clean()) << Res.text();
  ASSERT_EQ(Res.Certs.size(), 1u);
  EXPECT_GT(Res.Certs[0].ResidueDischarged, 0u);
  EXPECT_EQ(Res.Certs[0].MayRaces, 0u);
}

TEST(NonAffine, CyclicModWriteIsMay) {
  // dst[(t + 1) % 8] is a bijection at run time, but statically only
  // the range [0, 7] survives — a may-race, not a proven one.
  AnalysisResult Res = analyzeSource(regionProgram(
      "int src[8];\nint dst[8];", "  dst[(t + 1) % 8] = src[t];", 8));
  EXPECT_TRUE(hasRule(Res, "race.may")) << Res.text();
  EXPECT_FALSE(Res.hasErrors()) << Res.text();
}

TEST(NonAffine, EveryAccessIsClassified) {
  // The certificate's class counts sum to the region's total access
  // count — nothing is silently skipped, even the unbounded indirect
  // store.
  AnalysisResult Res = analyzeSource(regionProgram(
      "int idx[8];\nint out[8];", "  out[idx[t]] = t;", 8));
  ASSERT_EQ(Res.Certs.size(), 1u);
  const RegionCert &C = Res.Certs[0];
  EXPECT_EQ(C.Affine, 1u) << "the idx[t] read";
  EXPECT_EQ(C.May, 1u) << "the indirect store";
  EXPECT_EQ(C.Banked, 0u);
  EXPECT_EQ(C.Affine + C.Banked + C.May, 2u);
}

TEST(NonAffine, BankGeometryIsConfigurable) {
  // With 256 KiB banks the two 64 KiB halves share bank 0: the
  // accesses stop being "banked" and the bank rule gets no credit
  // (the interval reasoning still discharges the pairs — the members'
  // windows are address-disjoint either way).
  std::string Src = regionProgram(
      "int hist[32768];\nint pixels[64];",
      "  int i;\n  int b;\n"
      "  for (i = 0; i < 64; i++) {\n"
      "    b = (t * 16384) + (pixels[i] & 16383);\n"
      "    hist[b] = hist[b] + 1;\n  }",
      2);
  frontend::FrontendResult R = frontend::parseDetC(Src);
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  DetRaceOptions Wide;
  Wide.GlobalBankSizeLog2 = 18;
  AnalysisResult Res = analyzeModule(*R.M, Wide);
  ASSERT_EQ(Res.Certs.size(), 1u);
  EXPECT_EQ(Res.Certs[0].Banked, 0u);
  EXPECT_EQ(Res.Certs[0].May, 2u);
  EXPECT_EQ(Res.Certs[0].BankDischarged, 0u);
  EXPECT_GT(Res.Certs[0].ResidueDischarged, 0u);
}

//===----------------------------------------------------------------------===//
// Reduction-pattern verification
//===----------------------------------------------------------------------===//

TEST(ReducePattern, FullyPrivatizedReductionIsCertified) {
  std::string Src =
      "int data[32];\n"
      "void worker(int t) {\n"
      "  int acc;\n  int n;\n  acc = 0;\n"
      "  for (n = t * 8; n < (t + 1) * 8; n++)\n"
      "    acc = acc + data[n];\n"
      "  __reduce_send(acc);\n}\n"
      "void main() {\n  int t;\n  int total;\n  total = 0;\n"
      "  #pragma omp parallel for reduction(+:total)\n"
      "  for (t = 0; t < 4; t++)\n    worker(t);\n}\n";
  AnalysisResult Res = analyzeSource(Src);
  EXPECT_TRUE(Res.clean()) << Res.text();
  ASSERT_EQ(Res.Certs.size(), 1u);
  EXPECT_TRUE(Res.Certs[0].ReductionCertified);
}

TEST(ReducePattern, PartialPrivatizationCaught) {
  // The partial is read back from a global every member writes — the
  // value sent is ordered by the race, not by the reduction protocol.
  std::string Src =
      "int scratch[4];\n"
      "void worker(int t) {\n"
      "  scratch[0] = t;\n"
      "  __reduce_send(scratch[0]);\n}\n"
      "void main() {\n  int t;\n  int total;\n  total = 0;\n"
      "  #pragma omp parallel for reduction(+:total)\n"
      "  for (t = 0; t < 4; t++)\n    worker(t);\n}\n";
  AnalysisResult Res = analyzeSource(Src);
  EXPECT_TRUE(hasRule(Res, "reduce.pattern.partial")) << Res.text();
  ASSERT_EQ(Res.Certs.size(), 1u);
  EXPECT_FALSE(Res.Certs[0].ReductionCertified);
}

TEST(ReducePattern, DisjointScratchReductionIsNotPartial) {
  // Per-member scratch slots: the read feeding the send conflicts with
  // nothing, so the partial-privatization rule stays quiet.
  std::string Src =
      "int scratch[4];\n"
      "void worker(int t) {\n"
      "  scratch[t] = t * 3;\n"
      "  __reduce_send(scratch[t]);\n}\n"
      "void main() {\n  int t;\n  int total;\n  total = 0;\n"
      "  #pragma omp parallel for reduction(+:total)\n"
      "  for (t = 0; t < 4; t++)\n    worker(t);\n}\n";
  AnalysisResult Res = analyzeSource(Src);
  EXPECT_FALSE(hasRule(Res, "reduce.pattern.partial")) << Res.text();
  ASSERT_EQ(Res.Certs.size(), 1u);
  EXPECT_TRUE(Res.Certs[0].ReductionCertified);
}

TEST(ReducePattern, OrderSensitiveMergeCaught) {
  // total = total - p_lwre: subtraction makes the merged value depend
  // on the members' arrival order. Only expressible through the DSL —
  // the Det-C reduction pragma always merges with the builtin sum.
  dsl::Module M;
  dsl::Function *Th = M.function("worker", dsl::FnKind::Thread);
  Th->param("t");
  dsl::Function *Main = M.function("main", dsl::FnKind::Main);
  const dsl::Local *Tot = Main->local("total");
  Main->append(M.assign(Tot, M.c(100)));
  Main->append(M.parallelFor("worker", 4));
  Main->append(M.assign(
      Tot, M.bin(dsl::BinOp::Sub, M.v(Tot), M.recvResult(0))));
  AnalysisResult Res = analyzeModule(M);
  EXPECT_TRUE(hasRule(Res, "reduce.pattern.order-sensitive"))
      << Res.text();
}

TEST(ReducePattern, CommutativeMergeIsNotOrderSensitive) {
  dsl::Module M;
  dsl::Function *Th = M.function("worker", dsl::FnKind::Thread);
  Th->param("t");
  dsl::Function *Main = M.function("main", dsl::FnKind::Main);
  const dsl::Local *Tot = Main->local("total");
  Main->append(M.assign(Tot, M.c(0)));
  Main->append(M.parallelFor("worker", 4));
  Main->append(M.assign(
      Tot, M.bin(dsl::BinOp::Add, M.v(Tot), M.recvResult(0))));
  AnalysisResult Res = analyzeModule(M);
  EXPECT_FALSE(hasRule(Res, "reduce.pattern.order-sensitive"))
      << Res.text();
}

//===----------------------------------------------------------------------===//
// Oracle-backed refinement of race.may findings
//===----------------------------------------------------------------------===//

TEST(OracleRefine, UpgradesMayToConfirmedWithWitness) {
  // Zero-filled idx sends every member to out[0]: the static race.may
  // has a dynamic witness and becomes a race.confirmed error carrying
  // the harts and the address.
  frontend::FrontendResult R = frontend::parseDetC(regionProgram(
      "int idx[8];\nint out[8];", "  out[idx[t]] = t;", 8));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  AnalysisResult Static = analyzeModule(*R.M);
  ASSERT_TRUE(hasRule(Static, "race.may")) << Static.text();
  OracleResult Dyn = oracleOn(*R.M);
  ASSERT_TRUE(Dyn.Ran) << Dyn.RunError;
  ASSERT_TRUE(Dyn.dynamicallyRacy());
  unsigned Upgraded = refineWithOracle(Static, Dyn);
  EXPECT_GE(Upgraded, 1u);
  const Diag *D = findRule(Static, "race.confirmed");
  ASSERT_NE(D, nullptr) << Static.text();
  EXPECT_EQ(D->Sev, Severity::Error);
  EXPECT_EQ(D->Oracle, "confirmed");
  EXPECT_NE(D->Message.find("harts"), std::string::npos);
  EXPECT_NE(D->Message.find("cycles"), std::string::npos);
  EXPECT_TRUE(verdictsAgree(Static, Dyn));
}

TEST(OracleRefine, AnnotatesUnwitnessedMayAsUnconfirmed) {
  // The rotation is dynamically a bijection: no conflict, so the
  // race.may stays a warning and is marked unconfirmed-on-corpus.
  frontend::FrontendResult R = frontend::parseDetC(regionProgram(
      "int src[8];\nint dst[8];", "  dst[(t + 1) % 8] = src[t];", 8));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  AnalysisResult Static = analyzeModule(*R.M);
  ASSERT_TRUE(hasRule(Static, "race.may")) << Static.text();
  OracleResult Dyn = oracleOn(*R.M);
  ASSERT_TRUE(Dyn.Ran) << Dyn.RunError;
  EXPECT_FALSE(Dyn.dynamicallyRacy());
  EXPECT_EQ(refineWithOracle(Static, Dyn), 0u);
  EXPECT_FALSE(hasRule(Static, "race.confirmed"));
  const Diag *D = findRule(Static, "race.may");
  ASSERT_NE(D, nullptr);
  EXPECT_EQ(D->Sev, Severity::Warning);
  EXPECT_EQ(D->Oracle, "unconfirmed-on-corpus");
  EXPECT_TRUE(verdictsAgree(Static, Dyn));
}

TEST(OracleRefine, MayAgreesWithEitherDynamicOutcome) {
  AnalysisResult MayVerdict;
  MayVerdict.warning(3, "race.may", "possible");
  OracleResult RacyRun;
  RacyRun.Ran = true;
  RacyRun.Conflicts.push_back({0x20000000, 0, 1, 0, true, "v"});
  OracleResult CleanRun;
  CleanRun.Ran = true;
  EXPECT_TRUE(verdictsAgree(MayVerdict, RacyRun));
  EXPECT_TRUE(verdictsAgree(MayVerdict, CleanRun));
}

TEST(OracleRefine, WitnessMatchesOnSymbol) {
  AnalysisResult Static;
  Static.warning(3, "race.may", "possible").Sym = "a";
  Static.warning(4, "race.may", "possible").Sym = "b";
  OracleResult Dyn;
  Dyn.Ran = true;
  Dyn.Conflicts.push_back({0x20000000, 0, 1, 0, true, "b"});
  EXPECT_EQ(refineWithOracle(Static, Dyn), 1u);
  EXPECT_EQ(Static.Diags[0].Rule, "race.may");
  EXPECT_EQ(Static.Diags[0].Oracle, "unconfirmed-on-corpus");
  EXPECT_EQ(Static.Diags[1].Rule, "race.confirmed");
  EXPECT_EQ(Static.Diags[1].Oracle, "confirmed");
}

//===----------------------------------------------------------------------===//
// Canonical JSON serialization (lbp_lint --json)
//===----------------------------------------------------------------------===//

TEST(LintJson, DiagSchemaIsCanonical) {
  Diag D;
  D.Sev = Severity::Warning;
  D.Line = 12;
  D.Rule = "race.may";
  D.Sym = "hist";
  D.Oracle = "unconfirmed-on-corpus";
  D.Message = "maybe";
  EXPECT_EQ(diagToJson(D),
            "{\"rule\":\"race.may\",\"severity\":\"warning\",\"line\":12,"
            "\"symbol\":\"hist\",\"oracle\":\"unconfirmed-on-corpus\","
            "\"message\":\"maybe\"}");
}

TEST(LintJson, EscapesQuotesAndBackslashes) {
  Diag D;
  D.Sev = Severity::Error;
  D.Line = 1;
  D.Rule = "race.ww";
  D.Message = "touch 'v' \"twice\" a\\b\nend";
  std::string S = diagToJson(D);
  EXPECT_NE(S.find("\\\"twice\\\""), std::string::npos) << S;
  EXPECT_NE(S.find("a\\\\b"), std::string::npos) << S;
  EXPECT_NE(S.find("\\n"), std::string::npos) << S;
  // No raw control characters or unescaped interior quotes survive.
  EXPECT_EQ(S.find('\n'), std::string::npos);
}

TEST(LintJson, CertSchemaIsCanonical) {
  RegionCert C;
  C.Region = "bin_pixels";
  C.Line = 23;
  C.Team = 2;
  C.Affine = 1;
  C.Banked = 2;
  C.BankDischarged = 3;
  C.ReductionCertified = true;
  EXPECT_EQ(certToJson(C),
            "{\"region\":\"bin_pixels\",\"line\":23,\"team\":2,"
            "\"accesses\":{\"affine\":1,\"banked\":2,\"may\":0},"
            "\"discharged\":{\"bank\":3,\"residue\":0},"
            "\"may_races\":0,\"reduction_certified\":true}");
}

TEST(LintJson, ResultWrapsDiagnosticsAndCertificates) {
  AnalysisResult Res;
  EXPECT_EQ(resultToJson(Res),
            "{\"diagnostics\":[],\"certificates\":[]}");
  Res.warning(2, "race.may", "m");
  Res.Certs.push_back({});
  std::string S = resultToJson(Res);
  EXPECT_EQ(S.find("{\"diagnostics\":[{"), 0u) << S;
  EXPECT_NE(S.find("\"certificates\":[{"), std::string::npos) << S;
  // Byte-identical for identical findings: serialization is a pure
  // function of the result.
  EXPECT_EQ(S, resultToJson(Res));
}

} // namespace
