//===- tests/asm_more_test.cpp - Assembler corner cases --------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "isa/Encoding.h"
#include "isa/Reg.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::assembler;

namespace {

std::string firstError(const std::string &Src) {
  AsmResult R = assemble(Src);
  return R.Errors.empty() ? "" : R.Errors[0].Message;
}

Program assembleOk(const std::string &Src) {
  AsmResult R = assemble(Src);
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  return std::move(R.Prog);
}

TEST(AsmMore, InstructionOutsideTextIsAnError) {
  EXPECT_NE(firstError(".data 0x20000000\n  addi a0, a0, 1\n")
                .find("outside .text"),
            std::string::npos);
}

TEST(AsmMore, OperandKindMismatchesAreDiagnosed) {
  EXPECT_NE(firstError("main: add a0, 5, a1\n").find("register"),
            std::string::npos);
  EXPECT_NE(firstError("main: addi a0, a1\n").find("expression"),
            std::string::npos);
  EXPECT_NE(firstError("main: sw a0, a1, 4\n").find("sw rs2"),
            std::string::npos);
}

TEST(AsmMore, ShiftAmountRangeIsChecked) {
  EXPECT_NE(firstError("main: slli a0, a1, 32\n").find("out of range"),
            std::string::npos);
  AsmResult Ok = assemble("main: slli a0, a1, 31\n");
  EXPECT_TRUE(Ok.succeeded());
}

TEST(AsmMore, HiLoPairsBuildFullAddresses) {
  Program P = assembleOk(R"(
    .equ TARGET, 0x2000abcd
main:
    lui a0, %hi(TARGET)
    addi a0, a0, %lo(TARGET)
)");
  isa::Instr Lui = isa::decode(P.readWord(0));
  isa::Instr Addi = isa::decode(P.readWord(4));
  uint32_t Addr = (static_cast<uint32_t>(Lui.Imm) << 12) +
                  static_cast<uint32_t>(Addi.Imm);
  EXPECT_EQ(Addr, 0x2000abcdu);
}

TEST(AsmMore, HiAccountsForLowSignBit) {
  // %lo of 0x...0800 is negative; %hi must compensate.
  Program P = assembleOk(R"(
    .equ TARGET, 0x20000800
main:
    lui a0, %hi(TARGET)
    addi a0, a0, %lo(TARGET)
)");
  isa::Instr Lui = isa::decode(P.readWord(0));
  isa::Instr Addi = isa::decode(P.readWord(4));
  EXPECT_LT(Addi.Imm, 0);
  uint32_t Addr = (static_cast<uint32_t>(Lui.Imm) << 12) +
                  static_cast<uint32_t>(Addi.Imm);
  EXPECT_EQ(Addr, 0x20000800u);
}

TEST(AsmMore, NegativeAndCompoundExpressions) {
  Program P = assembleOk(R"(
    .equ A, 16
    .equ B, A + 0x10 - 8
main:
    addi a0, zero, B
    addi a1, zero, -A
)");
  isa::Instr I0 = isa::decode(P.readWord(0));
  EXPECT_EQ(I0.Imm, 24);
  isa::Instr I1 = isa::decode(P.readWord(4));
  EXPECT_EQ(I1.Imm, -16);
}

TEST(AsmMore, MemOperandWithSymbolicOffset) {
  Program P = assembleOk(R"(
    .equ OFF, 12
main:
    lw a0, OFF(sp)
    sw a0, OFF+4(sp)
)");
  EXPECT_EQ(isa::decode(P.readWord(0)).Imm, 12);
  isa::Instr St = isa::decode(P.readWord(4));
  EXPECT_EQ(St.Imm, 16);
}

TEST(AsmMore, EmptyMemOffsetMeansZero) {
  Program P = assembleOk("main: lw a0, (sp)\n");
  EXPECT_EQ(isa::decode(P.readWord(0)).Imm, 0);
}

TEST(AsmMore, CounterReadsAssemble) {
  Program P = assembleOk("main:\n  rdcycle a0\n  rdinstret t5\n");
  isa::Instr C = isa::decode(P.readWord(0));
  EXPECT_EQ(C.Op, isa::Opcode::RDCYCLE);
  EXPECT_EQ(C.Rd, isa::RegA0);
  isa::Instr R = isa::decode(P.readWord(4));
  EXPECT_EQ(R.Op, isa::Opcode::RDINSTRET);
  EXPECT_EQ(R.Rd, isa::RegT5);
}

TEST(AsmMore, SymbolTableExposesEverything) {
  Program P = assembleOk(R"(
    .equ K, 7
main:
    nop
after:
    nop
)");
  EXPECT_EQ(*P.lookup("K"), 7u);
  EXPECT_EQ(*P.lookup("main"), 0u);
  EXPECT_EQ(*P.lookup("after"), 4u);
  EXPECT_FALSE(P.lookup("nothere").has_value());
}

TEST(AsmMore, JumpRangeIsEnforced) {
  // A jal cannot span more than +/-1 MiB.
  std::string Src = "main: j far\n  .space 1100000\nfar: nop\n";
  AsmResult R = assemble(Src);
  ASSERT_FALSE(R.succeeded());
  EXPECT_NE(R.Errors[0].Message.find("out of range"), std::string::npos);
}

TEST(AsmMore, TextSizeSumsSegments) {
  Program P = assembleOk(R"(
main:
    nop
    nop
    .data 0x20000000
    .word 1
    .text
    nop
)");
  EXPECT_EQ(P.textSize(), 12u);
}

} // namespace
