//===- tests/stress_test.cpp - Runtime stress tests -------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Long-haul exercises of the Deterministic OpenMP machinery: dozens of
// back-to-back teams, alternating shapes, wide reductions, and the whole
// thing replaying cycle-identically.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "dsl/Ast.h"
#include "dsl/CodeGen.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::dsl;
using namespace lbp::sim;

namespace {

Machine compileAndRun(const Module &M, unsigned Cores,
                      uint64_t MaxCycles = 50000000) {
  assembler::AsmResult R = assembler::assemble(compileModule(M));
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  Machine Mach(SimConfig::lbp(Cores));
  Mach.load(R.Prog);
  EXPECT_EQ(Mach.run(MaxCycles), RunStatus::Exited)
      << Mach.faultMessage();
  return Mach;
}

TEST(Stress, FiftyBackToBackTeams) {
  // 50 teams of 16 launched from a loop in main; each adds into a
  // per-member accumulator; the harts are recycled every round.
  Module M;
  constexpr uint32_t Out = 0x20000000;
  M.global("acc", Out, 16);

  Function *T = M.function("thread", FnKind::Thread);
  const Local *I = T->param("t");
  const Expr *Slot = M.add(M.addrOf("acc"), M.shl(M.v(I), 2));
  T->append(M.store(Slot, 0, M.add(M.load(Slot), M.c(1))));

  Function *Main = M.function("main", FnKind::Main);
  const Local *R = Main->local("round");
  Main->append(M.assign(R, M.c(50)));
  Main->append(M.doWhile({M.parallelFor("thread", 16),
                          M.assign(R, M.sub(M.v(R), M.c(1)))},
                         CmpOp::Ne, M.v(R), M.c(0)));

  Machine Mach = compileAndRun(M, 4);
  for (unsigned K = 0; K != 16; ++K)
    EXPECT_EQ(Mach.debugReadWord(Out + 4 * K), 50u) << K;
  for (unsigned H = 1; H != 16; ++H)
    EXPECT_EQ(Mach.hartState(H), HartState::Free) << H;
}

TEST(Stress, AlternatingTeamShapes) {
  // Teams of different sizes in sequence: each phase marks its size.
  Module M;
  constexpr uint32_t Out = 0x20000100;
  M.global("marks", Out, 13);

  Function *T = M.function("thread", FnKind::Thread);
  const Local *I = T->param("t");
  const Local *N = T->local("n"); // a2 = team size per the ABI
  (void)N;
  T->append(M.store(M.add(M.addrOf("marks"), M.shl(M.v(I), 2)), 0,
                    M.add(M.v(I), M.c(100))));

  Function *Main = M.function("main", FnKind::Main);
  for (unsigned Size : {1u, 5u, 13u, 2u, 8u})
    Main->append(M.parallelFor("thread", Size));

  Machine Mach = compileAndRun(M, 4);
  for (unsigned K = 0; K != 13; ++K)
    EXPECT_EQ(Mach.debugReadWord(Out + 4 * K), 100 + K) << K;
}

TEST(Stress, WideReductionAcrossSixteenCores) {
  // 64 members send squares; main folds all 64 partials: sum of t^2
  // for t = 0..63 = 85344.
  Module M;
  constexpr uint32_t Out = 0x20000200;
  M.global("sum", Out, 1);

  Function *T = M.function("thread", FnKind::Thread);
  const Local *I = T->param("t");
  T->append(M.reduceSend(M.mul(M.v(I), M.v(I))));

  Function *Main = M.function("main", FnKind::Main);
  const Local *Acc = Main->local("acc");
  Main->append(M.assign(Acc, M.c(0)));
  Main->append(M.parallelFor("thread", 64));
  Main->append(M.reduceCollect(Acc, 64));
  Main->append(M.store(M.addrOf("sum"), 0, M.v(Acc)));
  Main->append(M.syncm());

  Machine Mach = compileAndRun(M, 16);
  EXPECT_EQ(Mach.debugReadWord(Out), 85344u);
}

TEST(Stress, TheWholeThingReplaysExactly) {
  Module M;
  M.global("acc", 0x20000300, 8);
  Function *T = M.function("thread", FnKind::Thread);
  const Local *I = T->param("t");
  const Expr *Slot = M.add(M.addrOf("acc"), M.shl(M.v(I), 2));
  T->append(M.store(Slot, 0, M.add(M.load(Slot), M.mul(M.v(I), M.c(3)))));
  Function *Main = M.function("main", FnKind::Main);
  const Local *R = Main->local("round");
  Main->append(M.assign(R, M.c(20)));
  Main->append(M.doWhile({M.parallelFor("thread", 8),
                          M.assign(R, M.sub(M.v(R), M.c(1)))},
                         CmpOp::Ne, M.v(R), M.c(0)));

  Machine A = compileAndRun(M, 2);
  Machine B = compileAndRun(M, 2);
  EXPECT_EQ(A.cycles(), B.cycles());
  EXPECT_EQ(A.traceHash(), B.traceHash());
  EXPECT_EQ(A.debugReadWord(0x20000300 + 4 * 7), 20u * 21u);
}

} // namespace
