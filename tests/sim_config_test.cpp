//===- tests/sim_config_test.cpp - Configuration-space invariants ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Properties that must hold across the configuration space: recording a
// trace never changes the run, latencies move cycle counts in the right
// direction, stall collection is observation-only, and machine sizes
// leave results (not timings) invariant.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "sim/Machine.h"
#include "workloads/MatMul.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::sim;
using namespace lbp::workloads;

namespace {

struct Outcome {
  uint64_t Cycles;
  uint64_t Retired;
  uint64_t Hash;
  uint32_t Z00;
};

Outcome run(const MatMulSpec &Spec, SimConfig Cfg) {
  assembler::AsmResult R = assembler::assemble(buildMatMulProgram(Spec));
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  Machine M(Cfg);
  M.load(R.Prog);
  EXPECT_EQ(M.run(100000000), RunStatus::Exited) << M.faultMessage();
  return {M.cycles(), M.retired(), M.traceHash(),
          M.debugReadWord(zElementAddress(Spec, 0, 0))};
}

SimConfig cfgFor(const MatMulSpec &Spec) {
  SimConfig C = SimConfig::lbp(Spec.cores());
  C.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  return C;
}

TEST(SimConfig_, ObservationKnobsDoNotPerturbTheRun) {
  MatMulSpec Spec = MatMulSpec::paper(16, MatMulVersion::Base);
  SimConfig Plain = cfgFor(Spec);
  SimConfig Observed = Plain;
  Observed.RecordTrace = true;
  Observed.CollectStallStats = true;
  Outcome A = run(Spec, Plain);
  Outcome B = run(Spec, Observed);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Hash, B.Hash) << "observation must not change the machine";
}

TEST(SimConfig_, SlowerMemoryMeansMoreCyclesNeverFewer) {
  MatMulSpec Spec = MatMulSpec::paper(16, MatMulVersion::Base);
  SimConfig Fast = cfgFor(Spec);
  SimConfig Slow = Fast;
  Slow.RouterHopLatency = 4;
  Slow.GlobalLocalPortLatency = 8;
  Slow.LocalMemLatency = 6;
  Outcome A = run(Spec, Fast);
  Outcome B = run(Spec, Slow);
  EXPECT_GT(B.Cycles, A.Cycles);
  EXPECT_EQ(A.Retired, B.Retired)
      << "latency changes timing, never the instruction stream";
  EXPECT_EQ(A.Z00, B.Z00) << "and never the results";
}

TEST(SimConfig_, NarrowerLinksMeanMoreCyclesNeverFewer) {
  MatMulSpec Spec = MatMulSpec::paper(64, MatMulVersion::Copy);
  SimConfig Wide = cfgFor(Spec);
  Wide.RouterLinkCapacity = 4;
  SimConfig Narrow = cfgFor(Spec);
  Narrow.RouterLinkCapacity = 1;
  Outcome A = run(Spec, Wide);
  Outcome B = run(Spec, Narrow);
  EXPECT_GE(B.Cycles, A.Cycles);
}

TEST(SimConfig_, SlowerDividersOnlyHurtDivHeavyCode) {
  // The matmul has no divisions in its inner loop: a 10x divider
  // latency must leave its cycle count identical.
  MatMulSpec Spec = MatMulSpec::paper(16, MatMulVersion::Tiled);
  SimConfig Fast = cfgFor(Spec);
  SimConfig SlowDiv = Fast;
  SlowDiv.DivLatency = 160;
  Outcome A = run(Spec, Fast);
  Outcome B = run(Spec, SlowDiv);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.Hash, B.Hash);
}

TEST(SimConfig_, ResultsAreMachineSizeInvariant) {
  // The same 16-hart program computes the same Z on machines with spare
  // cores (the team just does not use them).
  MatMulSpec Spec = MatMulSpec::paper(16, MatMulVersion::Base);
  for (unsigned Cores : {4u, 8u, 16u}) {
    SimConfig C = SimConfig::lbp(Cores);
    C.GlobalBankSizeLog2 = Spec.BankSizeLog2;
    Outcome O = run(Spec, C);
    EXPECT_EQ(O.Z00, 8u) << Cores << " cores";
  }
}

} // namespace
