//===- tests/obs_test.cpp - Observability layer invariants -------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Hand-computed checks of the deterministic counter set
// (obs::PerfCounters), the bounded trace-line recording, and the
// hash-neutrality guarantee: enabling any part of the observability
// layer must leave the run's fingerprint untouched
// (docs/OBSERVABILITY.md). Engine/thread-count bit-identity of the same
// counters is swept separately in tests/thread_sweep_test.cpp.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "obs/Report.h"
#include "sim/Machine.h"
#include "workloads/Phases.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <numeric>
#include <sstream>

using namespace lbp;
using namespace lbp::sim;

namespace {

assembler::Program assembleOrDie(const std::string &Source) {
  assembler::AsmResult R = assembler::assemble(Source);
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  return std::move(R.Prog);
}

RunStatus runOn(Machine &M, const std::string &Source,
                uint64_t MaxCycles = 2000000) {
  M.load(assembleOrDie(Source));
  return M.run(MaxCycles);
}

uint64_t sum(const std::vector<uint64_t> &V) {
  return std::accumulate(V.begin(), V.end(), uint64_t(0));
}

// The standard exit idiom: main is entered with ra = 0, t0 = -1.
const char *Epilogue = R"(
exit:
    li ra, 0
    li t0, -1
    p_ret
)";

/// Single-hart straight-line program with exactly one global store and
/// one global load — every counter value below is computable by hand.
const char *MicroSrc = R"(
    .equ RESULT, 0x20000000
main:
    li a0, 21
    li a1, 2
    mul a2, a0, a1
    la a3, RESULT
    sw a2, 0(a3)
    p_syncm
    lw a4, 0(a3)
)";

TEST(Obs, ExactCountsOnMicroProgram) {
  SimConfig Cfg = SimConfig::lbp(4);
  Cfg.CollectCounters = true;
  Machine M(Cfg);
  ASSERT_EQ(runOn(M, std::string(MicroSrc) + Epilogue), RunStatus::Exited)
      << M.faultMessage();

  const obs::PerfCounters &PC = M.counters();
  ASSERT_TRUE(PC.enabled());

  // Every retired instruction is a Commit event on hart 0.
  EXPECT_EQ(sum(PC.CommitsPerHart), M.retired());
  EXPECT_EQ(PC.CommitsPerHart[0], M.retired());
  EXPECT_EQ(PC.CommitsPerCore[0], M.retired());

  // One sw and one lw to RESULT = GlobalBase, which lives in bank 0.
  EXPECT_EQ(PC.BankWrites[0], 1u);
  EXPECT_EQ(sum(PC.BankWrites), 1u);
  EXPECT_EQ(PC.BankReads[0], 1u);
  EXPECT_EQ(sum(PC.BankReads), 1u);
  EXPECT_EQ(PC.LocalReads, 0u);
  EXPECT_EQ(PC.LocalWrites, 0u);
  EXPECT_EQ(PC.IoReads, 0u);
  EXPECT_EQ(PC.IoWrites, 0u);

  // No X_PAR activity beyond the boot hart's start.
  EXPECT_EQ(PC.Forks, 0u);
  EXPECT_EQ(PC.HartStarts, 1u);
  EXPECT_EQ(PC.TokenPasses, 0u);
  EXPECT_EQ(PC.Joins, 0u);
  EXPECT_EQ(PC.TokenLatency.Count, 0u);
  EXPECT_EQ(PC.FaultsInjected, 0u);
  EXPECT_EQ(PC.MachineChecks, 0u);
}

TEST(Obs, XParProtocolIdentities) {
  // The phases workload forks a full team twice (two parallel regions).
  // On a clean run the protocol counters obey exact identities: every
  // fork starts exactly one hart and every forked hart ends by passing
  // the token on, while the boot hart accounts for the extra start.
  workloads::PhasesSpec Spec;
  Spec.NumHarts = 16;
  SimConfig Cfg = SimConfig::lbp(4);
  Cfg.CollectCounters = true;
  Machine M(Cfg);
  ASSERT_EQ(runOn(M, workloads::buildPhasesProgram(Spec)),
            RunStatus::Exited)
      << M.faultMessage();

  const obs::PerfCounters &PC = M.counters();
  EXPECT_GT(PC.Forks, 0u);
  EXPECT_EQ(PC.HartStarts, PC.Forks + 1);
  EXPECT_EQ(PC.HartEnds, PC.Forks);
  EXPECT_EQ(PC.TokenPasses, PC.Forks);
  EXPECT_EQ(PC.Joins, 2u); // one per parallel region

  // Every token injection completes on a clean run, and the histogram
  // is internally consistent.
  EXPECT_EQ(PC.TokenLatency.Count, PC.TokenPasses);
  EXPECT_EQ(sum(std::vector<uint64_t>(
                std::begin(PC.TokenLatency.Buckets),
                std::end(PC.TokenLatency.Buckets))),
            PC.TokenLatency.Count);
  EXPECT_GE(PC.TokenLatency.Max, 1u);
  EXPECT_GE(PC.TokenLatency.Sum, PC.TokenLatency.Count);

  // The phase profiler splits the run at the joins: two parallel
  // regions plus the serial tail.
  Machine M2(Cfg);
  obs::PhaseProfiler Prof;
  M2.addTraceSink(&Prof);
  ASSERT_EQ(runOn(M2, workloads::buildPhasesProgram(Spec)),
            RunStatus::Exited);
  EXPECT_GE(Prof.phases(M2.cycles()).size(), 2u);
}

TEST(Obs, RobHighWaterReachesFullDepth) {
  // A 16-cycle div at the ROB head while decode keeps inserting one
  // instruction per cycle behind it: in-order commit cannot drain, so
  // hart 0's ROB occupancy must peak at the full RobEntries depth.
  std::string Src = R"(
main:
    li a0, 100
    li a1, 3
    div a2, a0, a1
    addi a3, a0, 1
    addi a4, a0, 2
    addi a5, a0, 3
    addi a6, a0, 4
    addi a7, a0, 5
    addi t1, a0, 6
    addi t2, a0, 7
    addi t3, a0, 8
    addi t4, a0, 9
)";
  SimConfig Cfg = SimConfig::lbp(4);
  Cfg.CollectCounters = true;
  Machine M(Cfg);
  ASSERT_EQ(runOn(M, Src + Epilogue), RunStatus::Exited)
      << M.faultMessage();
  EXPECT_EQ(M.counters().robHighWater(0), RobEntries);
}

TEST(Obs, SlotHighWaterSeesProducedValue) {
  // p_swre sends 1234 into hart 0's result slot 2 while hart 0's child
  // code waits in p_lwre — the slot occupancy high-water mark on hart 0
  // must record the landed value.
  std::string Src = R"(
    .equ OUT, 0x20000300
main:
    li t0, -1
    addi sp, sp, -8
    sw ra, 0(sp)
    sw t0, 4(sp)
    p_set t0
    la ra, rp
    p_fc t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    la a0, child
    p_jalr ra, t0, a0
    p_lwcv ra, 0            # continuation (hart 1)
    p_lwcv t0, 4
    li a2, 1234
    srli a3, t0, 16         # extract the join hart id from t0
    li a4, 0x7fff
    and a3, a3, a4
    p_swre a2, a3, 2        # send 1234 to the join hart's slot 2
    p_ret                   # join back to rp on hart 0

rp: lw ra, 0(sp)
    lw t0, 4(sp)
    addi sp, sp, 8
    p_ret                   # exit

child:                      # runs on hart 0
    p_lwre a5, 2            # blocks until the value arrives
    la a6, OUT
    sw a5, 0(a6)
    p_syncm
    p_ret                   # head waits for the join
)";
  SimConfig Cfg = SimConfig::lbp(4);
  Cfg.CollectCounters = true;
  Machine M(Cfg);
  ASSERT_EQ(runOn(M, Src), RunStatus::Exited) << M.faultMessage();
  EXPECT_EQ(M.debugReadWord(0x20000300), 1234u);
  EXPECT_GE(M.counters().slotHighWater(0), 1u);
}

TEST(Obs, StallAccountingCoversEveryCoreCycle) {
  // On a one-core machine the stall/issue tallies partition the core's
  // cycles: every cycle either issued or was classified. The first and
  // last cycle of a run can fall outside the classified window, hence
  // the two-cycle tolerance.
  SimConfig Cfg = SimConfig::lbp(1);
  Cfg.CollectStallStats = true;
  Machine M(Cfg);
  ASSERT_EQ(runOn(M, std::string(MicroSrc) + Epilogue), RunStatus::Exited)
      << M.faultMessage();

  uint64_t Classified = M.issuedCoreCycles();
  for (unsigned C = 0;
       C != static_cast<unsigned>(Machine::StallCause::NumCauses); ++C)
    Classified += M.stallCycles(static_cast<Machine::StallCause>(C));
  EXPECT_LE(Classified, M.cycles());
  EXPECT_GE(Classified + 2, M.cycles());
}

TEST(Obs, CountersAreHashNeutral) {
  // The sinks run after hashing, so flipping CollectCounters (and stall
  // stats with it) must not move the fingerprint by a single bit.
  workloads::PhasesSpec Spec;
  Spec.NumHarts = 16;
  std::string Src = workloads::buildPhasesProgram(Spec);

  SimConfig Plain = SimConfig::lbp(4);
  Machine A(Plain);
  ASSERT_EQ(runOn(A, Src), RunStatus::Exited);

  SimConfig Instrumented = Plain;
  Instrumented.CollectCounters = true;
  Instrumented.CollectStallStats = true;
  Machine B(Instrumented);
  ASSERT_EQ(runOn(B, Src), RunStatus::Exited);

  EXPECT_EQ(A.traceHash(), B.traceHash());
  EXPECT_EQ(A.cycles(), B.cycles());
  EXPECT_EQ(A.retired(), B.retired());
}

TEST(Obs, LineCapBoundsMemoryNotTheFingerprint) {
  workloads::PhasesSpec Spec;
  Spec.NumHarts = 16;
  std::string Src = workloads::buildPhasesProgram(Spec);

  SimConfig Unbounded = SimConfig::lbp(4);
  Unbounded.RecordTrace = true;
  Unbounded.TraceLineCap = 0;
  Machine A(Unbounded);
  ASSERT_EQ(runOn(A, Src), RunStatus::Exited);
  ASSERT_GT(A.trace().lines().size(), 10u);
  EXPECT_EQ(A.trace().droppedLines(), 0u);

  SimConfig Capped = Unbounded;
  Capped.TraceLineCap = 10;
  Machine B(Capped);
  ASSERT_EQ(runOn(B, Src), RunStatus::Exited);
  EXPECT_EQ(B.trace().lines().size(), 10u);
  EXPECT_EQ(B.trace().droppedLines(), A.trace().lines().size() - 10u);
  EXPECT_EQ(A.traceHash(), B.traceHash());
}

TEST(Obs, LineFileStreamsInsteadOfAccumulating) {
  const char *Path = "obs_test_trace_lines.tmp";
  std::remove(Path);
  {
    SimConfig Cfg = SimConfig::lbp(4);
    Cfg.RecordTrace = true;
    Cfg.TraceLineFile = Path;
    Machine M(Cfg);
    ASSERT_EQ(runOn(M, std::string(MicroSrc) + Epilogue),
              RunStatus::Exited);
    EXPECT_TRUE(M.trace().lines().empty());
    EXPECT_EQ(M.trace().droppedLines(), 0u);
  } // ~Machine closes the file
  std::ifstream In(Path);
  ASSERT_TRUE(In.good());
  std::ostringstream SS;
  SS << In.rdbuf();
  EXPECT_NE(SS.str().find("commit"), std::string::npos);
  std::remove(Path);
}

TEST(Obs, CounterJsonAndReportAreWellFormed) {
  workloads::PhasesSpec Spec;
  Spec.NumHarts = 16;
  SimConfig Cfg = SimConfig::lbp(4);
  Cfg.CollectCounters = true;
  Cfg.CollectStallStats = true;
  Machine M(Cfg);
  obs::PhaseProfiler Prof;
  M.addTraceSink(&Prof);
  ASSERT_EQ(runOn(M, workloads::buildPhasesProgram(Spec)),
            RunStatus::Exited);

  std::string Json = obs::countersToJson(M);
  EXPECT_NE(Json.find("\"trace_hash\""), std::string::npos);
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
  EXPECT_NE(Json.find("\"commits_per_core\""), std::string::npos);
  EXPECT_NE(Json.find("\"token_latency\""), std::string::npos);
  EXPECT_NE(Json.find("\"stall\""), std::string::npos);

  std::string Report = obs::buildReport(M, &Prof, {});
  EXPECT_NE(Report.find("engine"), std::string::npos);
  EXPECT_NE(Report.find("x_par"), std::string::npos);
}

} // namespace
