//===- tests/frontend_test.cpp - Deterministic OpenMP translator tests ----------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// End-to-end tests of the Det-C translator: paper-style OpenMP sources
// compile through the kernel language to LBP assembly and run correctly
// on the simulated machine.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "frontend/Compiler.h"
#include "frontend/Lexer.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::frontend;
using namespace lbp::sim;

namespace {

Machine compileAndRun(const std::string &Source, unsigned Cores,
                      uint64_t MaxCycles = 10000000) {
  std::string Errors;
  std::string Asm = compileDetCToAsm(Source, Errors);
  EXPECT_TRUE(Errors.empty()) << Errors;
  assembler::AsmResult R = assembler::assemble(Asm);
  EXPECT_TRUE(R.succeeded()) << R.errorText() << "\n" << Asm;
  Machine M(SimConfig::lbp(Cores));
  M.load(R.Prog);
  EXPECT_EQ(M.run(MaxCycles), RunStatus::Exited)
      << M.faultMessage() << "\n" << Asm;
  return M;
}

//===----------------------------------------------------------------------===//
// Lexer
//===----------------------------------------------------------------------===//

TEST(Lexer, TokensAndComments) {
  LexResult R = tokenize("int x = 0x10; // comment\n/* block */ x += 2;");
  ASSERT_TRUE(R.succeeded());
  ASSERT_GE(R.Tokens.size(), 9u);
  EXPECT_EQ(R.Tokens[0].Kind, Tok::KwInt);
  EXPECT_EQ(R.Tokens[1].Text, "x");
  EXPECT_EQ(R.Tokens[3].Value, 16);
  EXPECT_EQ(R.Tokens[6].Kind, Tok::PlusAssign);
}

TEST(Lexer, DefinesExpandRecursively) {
  LexResult R = tokenize("#define A 4\n#define B (A + 1)\nint v[B];");
  ASSERT_TRUE(R.succeeded());
  // B expands to ( 4 + 1 ).
  std::vector<Tok> Kinds;
  for (const Token &T : R.Tokens)
    Kinds.push_back(T.Kind);
  EXPECT_NE(std::find(Kinds.begin(), Kinds.end(), Tok::LParen),
            Kinds.end());
}

TEST(Lexer, PragmaAndIncludeHandling) {
  LexResult R = tokenize(
      "#include <det_omp.h>\n#pragma omp parallel for\nint x;");
  ASSERT_TRUE(R.succeeded());
  EXPECT_EQ(R.Tokens[0].Kind, Tok::Pragma);
  EXPECT_EQ(R.Tokens[0].Text, "omp parallel for");
}

//===----------------------------------------------------------------------===//
// Whole-program translation
//===----------------------------------------------------------------------===//

// The paper's Fig. 1 shape, nearly verbatim.
TEST(Frontend, PaperFigureOneProgram) {
  const char *Src = R"(
#include <det_omp.h>
#define NUM_HART 8

int out[NUM_HART] at 0x20000400;

void thread(int t) {
  out[t] = 100 + t;
}

void main() {
  int t;
  omp_set_num_threads(NUM_HART);
  #pragma omp parallel for
  for (t = 0; t < NUM_HART; t++) thread(t);
}
)";
  Machine M = compileAndRun(Src, 2);
  for (unsigned T = 0; T != 8; ++T)
    EXPECT_EQ(M.debugReadWord(0x20000400 + 4 * T), 100 + T) << T;
}

TEST(Frontend, ControlFlowAndArithmetic) {
  const char *Src = R"(
int out[8] at 0x20000400;

int collatz_steps(int n) {
  int steps = 0;
  while (n != 1) {
    if (n % 2 == 0) n = n / 2;
    else n = 3 * n + 1;
    steps++;
  }
  return steps;
}

void main() {
  int i;
  for (i = 0; i < 8; i++) {
    int s;
    s = collatz_steps(i + 2);
    out[i] = s;
  }
  __syncm();
}
)";
  Machine M = compileAndRun(Src, 1);
  // collatz steps for 2..9: 1,7,2,5,8,16,3,19.
  const uint32_t Expect[8] = {1, 7, 2, 5, 8, 16, 3, 19};
  for (unsigned K = 0; K != 8; ++K)
    EXPECT_EQ(M.debugReadWord(0x20000400 + 4 * K), Expect[K]) << K;
}

TEST(Frontend, ReductionClause) {
  const char *Src = R"(
#define N 16

void thread(int t) {
  __reduce_send(t * t);
}

void main() {
  int total = 0;
  #pragma omp parallel for reduction(+:total)
  for (int_t = 0; int_t < N; int_t++) thread(int_t);
  __syncm();
}
)";
  // Note: the loop variable must be declared; rewrite with a proper
  // declaration.
  const char *Src2 = R"(
#define N 16
int result at 0x20000500;

void thread(int t) {
  __reduce_send(t * t);
}

void main() {
  int total = 0;
  int t;
  #pragma omp parallel for reduction(+:total)
  for (t = 0; t < N; t++) thread(t);
  result = total;
  __syncm();
}
)";
  (void)Src;
  Machine M = compileAndRun(Src2, 4);
  // sum t^2, t=0..15 = 1240.
  EXPECT_EQ(M.debugReadWord(0x20000500), 1240u);
}

TEST(Frontend, TwoPhaseProgramLikeFigFour) {
  const char *Src = R"(
#define NH 8
#define CHUNK 4
int v[32] at 0x20000600;
int out[NH] at 0x20000700;

void thread_set(int t) {
  int j;
  for (j = 0; j < CHUNK; j++) v[t * CHUNK + j] = t;
}

void thread_get(int t) {
  int j;
  int acc = 0;
  for (j = 0; j < CHUNK; j++) acc += v[t * CHUNK + j];
  out[t] = acc;
}

void main() {
  int t;
  #pragma omp parallel for
  for (t = 0; t < NH; t++) thread_set(t);
  #pragma omp parallel for
  for (t = 0; t < NH; t++) thread_get(t);
}
)";
  Machine M = compileAndRun(Src, 2);
  for (unsigned T = 0; T != 8; ++T)
    EXPECT_EQ(M.debugReadWord(0x20000700 + 4 * T), 4 * T) << T;
}

TEST(Frontend, GlobalScalarsAndInitializers) {
  const char *Src = R"(
int ones[6] = { 1 };
int table[3] = { 10, 20, 30 };
int sum at 0x20000800;

void main() {
  int i;
  int acc = 0;
  for (i = 0; i < 6; i++) acc += ones[i];
  for (i = 0; i < 3; i++) acc += table[i];
  sum = acc;
  __syncm();
}
)";
  Machine M = compileAndRun(Src, 1);
  EXPECT_EQ(M.debugReadWord(0x20000800), 66u);
}

TEST(Frontend, PointerLocalsAndAddressOf) {
  const char *Src = R"(
int v[8] at 0x20000900;
int out at 0x20000940;

void main() {
  int p = &v[2];
  int i;
  for (i = 0; i < 4; i++) p[i] = i + 1;
  __syncm();
  out = v[2] + v[3] + v[4] + v[5];
  __syncm();
}
)";
  Machine M = compileAndRun(Src, 1);
  EXPECT_EQ(M.debugReadWord(0x20000940), 10u);
}

TEST(Frontend, ComparisonValuesAndLogicalOps) {
  const char *Src = R"(
int out[6] at 0x20000a00;

void main() {
  int a = 5;
  int b = 7;
  out[0] = a < b;
  out[1] = a > b;
  out[2] = (a < b) && (b < 10);
  out[3] = (a > b) || (b == 7);
  out[4] = !(a == 5);
  out[5] = (a <= 5) + (b >= 8);
  __syncm();
}
)";
  Machine M = compileAndRun(Src, 1);
  const uint32_t Expect[6] = {1, 0, 1, 1, 0, 1};
  for (unsigned K = 0; K != 6; ++K)
    EXPECT_EQ(M.debugReadWord(0x20000a00 + 4 * K), Expect[K]) << K;
}

TEST(Frontend, HartIdBuiltin) {
  const char *Src = R"(
int out[4] at 0x20000b00;

void thread(int t) {
  out[t] = __hart_id();
}

void main() {
  int t;
  #pragma omp parallel for
  for (t = 0; t < 4; t++) thread(t);
}
)";
  Machine M = compileAndRun(Src, 1);
  for (unsigned T = 0; T != 4; ++T)
    EXPECT_EQ(M.debugReadWord(0x20000b00 + 4 * T), T) << T;
}

TEST(Frontend, CycleCounterBuiltins) {
  // Self-timing Det-C (paper Sec. 6: precise internal timers): elapsed
  // cycles are positive, plausible and exactly reproducible.
  const char *Src = R"(
int out[2] at 0x20000e40;

void main() {
  int t0 = __cycles();
  int i;
  int acc = 0;
  for (i = 0; i < 50; i++) acc += i;
  int t1 = __cycles();
  out[0] = t1 - t0;
  out[1] = __instret();
  __syncm();
}
)";
  Machine M1 = compileAndRun(Src, 1);
  Machine M2 = compileAndRun(Src, 1);
  uint32_t Elapsed = M1.debugReadWord(0x20000e40);
  EXPECT_GT(Elapsed, 50u) << "a 50-iteration loop costs > 50 cycles";
  EXPECT_LT(Elapsed, 2000u);
  EXPECT_EQ(Elapsed, M2.debugReadWord(0x20000e40))
      << "self-measured timing must be reproducible";
  EXPECT_GT(M1.debugReadWord(0x20000e44), 100u) << "instret is counting";
}

TEST(Frontend, BreakAndContinue) {
  const char *Src = R"(
int out[3] at 0x20000f00;

void main() {
  int i;
  int sum = 0;
  for (i = 0; i < 100; i++) {
    if (i == 10) break;
    sum += i;
  }
  out[0] = sum;                 /* 0+..+9 = 45 */

  int evens = 0;
  for (i = 0; i < 10; i++) {
    if (i % 2 == 1) continue;   /* the step still runs */
    evens += i;
  }
  out[1] = evens;               /* 0+2+4+6+8 = 20 */

  int n = 0;
  while (1 == 1) {
    n++;
    if (n >= 7) break;
  }
  out[2] = n;
  __syncm();
}
)";
  Machine M = compileAndRun(Src, 1);
  EXPECT_EQ(M.debugReadWord(0x20000f00), 45u);
  EXPECT_EQ(M.debugReadWord(0x20000f04), 20u);
  EXPECT_EQ(M.debugReadWord(0x20000f08), 7u);
}

TEST(Frontend, ParallelSectionsLikeFigSixteen) {
  // Four sections each poll "their sensor" (here plain globals standing
  // in for device registers) and publish a sample; main fuses after the
  // barrier, like the paper's Fig. 16.
  const char *Src = R"(
int s[4] at 0x20000c00;
int fused at 0x20000c40;

void get0() { s[0] = 10; }
void get1() { s[1] = 20; }
void get2() { s[2] = 30; }
void get3() { s[3] = 40; }

void main() {
  #pragma omp parallel sections
  {
    #pragma omp section
    { get0(); }
    #pragma omp section
    { get1(); }
    #pragma omp section
    { get2(); }
    #pragma omp section
    { get3(); }
  }
  fused = (s[0] + s[1] + s[2] + s[3]) / 4;
  __syncm();
}
)";
  Machine M = compileAndRun(Src, 1);
  EXPECT_EQ(M.debugReadWord(0x20000c40), 25u);
}

TEST(Frontend, SectionsMayDeclareTheirOwnLocals) {
  const char *Src = R"(
int out[2] at 0x20000d00;

void main() {
  #pragma omp parallel sections
  {
    #pragma omp section
    {
      int i;
      int acc = 0;
      for (i = 1; i <= 10; i++) acc += i;
      out[0] = acc;
    }
    #pragma omp section
    {
      int p = 1;
      int k;
      for (k = 0; k < 10; k++) p = p * 2;
      out[1] = p;
    }
  }
  __syncm();
}
)";
  Machine M = compileAndRun(Src, 1);
  EXPECT_EQ(M.debugReadWord(0x20000d00), 55u);
  EXPECT_EQ(M.debugReadWord(0x20000d04), 1024u);
}

TEST(Frontend, PointerLocalsReachDeviceRegisters) {
  // Det-C can poll memory-mapped devices through pointer-valued locals,
  // the software side of the paper's Fig. 17.
  const char *Src = R"(
int sample at 0x20000e00;

void main() {
  int dev = 0x30000000;
  dev[0] = 1;                 /* arm the sensor */
  __syncm();
  while (dev[0] == 0) { }     /* active wait: LBP has no interrupts */
  sample = dev[1];
  __syncm();
}
)";
  std::string Errors;
  std::string Asm = compileDetCToAsm(Src, Errors);
  ASSERT_TRUE(Errors.empty()) << Errors;
  assembler::AsmResult R = assembler::assemble(Asm);
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  Machine M(SimConfig::lbp(1));
  M.addDevice(0x30000000, 0x100,
              std::make_unique<SensorDevice>(
                  std::vector<uint32_t>{777}, /*Seed=*/3, 50, 120));
  M.load(R.Prog);
  ASSERT_EQ(M.run(100000), RunStatus::Exited) << M.faultMessage();
  EXPECT_EQ(M.debugReadWord(0x20000e00), 777u);
}

//===----------------------------------------------------------------------===//
// Diagnostics
//===----------------------------------------------------------------------===//

TEST(Frontend, ReportsUnknownIdentifiers) {
  FrontendResult R = parseDetC("void main() { x = 1; }");
  EXPECT_FALSE(R.succeeded());
  EXPECT_NE(R.errorText().find("unknown identifier"), std::string::npos);
}

TEST(Frontend, ReportsBadParallelLoops) {
  FrontendResult R = parseDetC(R"(
void thread(int t) {}
void main() {
  int t;
  #pragma omp parallel for
  for (t = 1; t < 8; t++) thread(t);
}
)");
  EXPECT_FALSE(R.succeeded());
  EXPECT_NE(R.errorText().find("start at 0"), std::string::npos);
}

TEST(Frontend, ReportsCallsInExpressions) {
  FrontendResult R = parseDetC(R"(
int f(int x) { return x; }
void main() { int y = f(1) + 2; }
)");
  EXPECT_FALSE(R.succeeded());
  EXPECT_NE(R.errorText().find("statements"), std::string::npos);
}

} // namespace
