//===- tests/fault_injection_test.cpp - Fault injection & machine checks --------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The robustness layer's contract (docs/ROBUSTNESS.md): injected faults
// are never a silent wrong answer — every perturbed run either completes
// with the correct result (benign timing faults) or is converted into a
// structured, reproducible failure; and the same seed produces the same
// failure at the same cycle on every rerun, on every machine size.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "romp/AsmText.h"
#include "romp/Runtime.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::sim;

namespace {

constexpr uint32_t OutBase = 0x20000200;

/// A fork/join team program: NumThreads harts across the line each store
/// t*t into OUT[t]. Exercises every protocol delivery class the fault
/// plan can target (starts, tokens, joins, rb-fills from the
/// continuation loads, bank traffic).
std::string teamProgram(unsigned NumThreads) {
  romp::AsmText Head;
  romp::emitMainPrologue(Head);
  romp::emitParallelCall(Head, "worker", NumThreads, "0");
  romp::AsmText Tail;
  romp::emitMainEpilogue(Tail);
  romp::emitParallelStart(Tail);
  return Head.str() + Tail.str() + R"(
    .equ OUT, 0x20000200
worker:
    slli a4, a0, 2
    la a5, OUT
    add a4, a4, a5
    mul a6, a0, a0
    sw a6, 0(a4)
    p_syncm
    p_ret
)";
}

struct Outcome {
  RunStatus Status;
  uint64_t Cycles = 0;
  uint64_t Hash = 0;
  std::string Message;
  unsigned FaultsFired = 0;
  size_t ChecksSeen = 0;
  bool OutputCorrect = false;
};

Outcome runTeam(SimConfig Cfg, unsigned NumThreads,
                uint64_t MaxCycles = 2000000) {
  assembler::AsmResult R = assembler::assemble(teamProgram(NumThreads));
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  Machine M(Cfg);
  M.load(R.Prog);
  Outcome O;
  O.Status = M.run(MaxCycles);
  O.Cycles = M.cycles();
  O.Hash = M.traceHash();
  O.Message = M.faultMessage();
  O.FaultsFired = M.faultPlan().firedCount();
  O.ChecksSeen = M.machineChecks().size();
  O.OutputCorrect = true;
  for (unsigned T = 0; T != NumThreads; ++T)
    O.OutputCorrect &= M.debugReadWord(OutBase + 4 * T) == T * T;
  return O;
}

SimConfig faultConfig(unsigned Cores, uint64_t Seed) {
  SimConfig Cfg = SimConfig::lbp(Cores);
  Cfg.ProgressGuard = 20000; // keep undetected-loss livelocks fast
  Cfg.Faults.Seed = Seed;
  Cfg.Faults.WindowBegin = 1;
  Cfg.Faults.WindowEnd = 600; // the fault-free run lasts ~680 cycles
  return Cfg;
}

void expectIdentical(const Outcome &A, const Outcome &B,
                     const std::string &What) {
  EXPECT_EQ(A.Status, B.Status) << What;
  EXPECT_EQ(A.Cycles, B.Cycles) << What;
  EXPECT_EQ(A.Hash, B.Hash) << What;
  EXPECT_EQ(A.Message, B.Message) << What;
  EXPECT_EQ(A.FaultsFired, B.FaultsFired) << What;
}

// The acceptance gate: with no faults, the checkers are pure observers —
// the trace hash matches the unchecked machine bit for bit.
TEST(FaultInjection, CheckersPreserveTheFaultFreeTraceHash) {
  SimConfig On = SimConfig::lbp(4);
  On.EnableCheckers = true;
  SimConfig Off = SimConfig::lbp(4);
  Off.EnableCheckers = false;
  Outcome A = runTeam(On, 16);
  Outcome B = runTeam(Off, 16);
  ASSERT_EQ(A.Status, RunStatus::Exited) << A.Message;
  ASSERT_EQ(B.Status, RunStatus::Exited) << B.Message;
  EXPECT_TRUE(A.OutputCorrect);
  EXPECT_EQ(A.Hash, B.Hash);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.ChecksSeen, 0u);
}

// Dropped protocol deliveries (token / join / start / rb-fill /
// slot-fill) must never yield a silent wrong answer: either the class
// never occurred (clean exit, correct output) or the loss is detected as
// a machine-check fault or a diagnosed livelock.
TEST(FaultInjection, DroppedDeliveriesAreDetectedDeterministically) {
  unsigned Detected = 0;
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    SimConfig Cfg = faultConfig(4, Seed);
    Cfg.Faults.Drops = 1;
    Outcome A = runTeam(Cfg, 16, 200000);
    Outcome B = runTeam(Cfg, 16, 200000);
    expectIdentical(A, B, "drop seed " + std::to_string(Seed));
    if (A.FaultsFired == 0) {
      EXPECT_EQ(A.Status, RunStatus::Exited);
      EXPECT_TRUE(A.OutputCorrect);
      continue;
    }
    ++Detected;
    EXPECT_TRUE(A.Status == RunStatus::Fault ||
                A.Status == RunStatus::Livelock)
        << "seed " << Seed << " fired a drop but exited silently";
    EXPECT_FALSE(A.Message.empty()) << "seed " << Seed;
  }
  EXPECT_GE(Detected, 3u) << "the fault window missed the team phase";
}

// A flipped payload bit is caught by the link parity check before the
// corrupted value is consumed: always RunStatus::Fault, never a wrong
// result, and the failure cycle is seed-reproducible.
TEST(FaultInjection, BitFlipsAreCaughtByLinkParity) {
  unsigned Detected = 0;
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    SimConfig Cfg = faultConfig(4, Seed);
    Cfg.Faults.BitFlips = 1;
    Outcome A = runTeam(Cfg, 16, 200000);
    Outcome B = runTeam(Cfg, 16, 200000);
    expectIdentical(A, B, "flip seed " + std::to_string(Seed));
    if (A.FaultsFired == 0) {
      EXPECT_EQ(A.Status, RunStatus::Exited);
      EXPECT_TRUE(A.OutputCorrect);
      continue;
    }
    ++Detected;
    EXPECT_EQ(A.Status, RunStatus::Fault) << "seed " << Seed;
    EXPECT_NE(A.Message.find("link-parity"), std::string::npos)
        << A.Message;
    EXPECT_GE(A.ChecksSeen, 1u);
  }
  EXPECT_GE(Detected, 3u);
}

// Delays only target FIFO-safe delivery classes, so a delayed run still
// produces the correct answer — later, but cycle-reproducibly.
TEST(FaultInjection, DelaysAreBenignAndReproducible) {
  unsigned Fired = 0;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    SimConfig Cfg = faultConfig(4, Seed);
    Cfg.Faults.Delays = 3;
    Outcome A = runTeam(Cfg, 16, 200000);
    Outcome B = runTeam(Cfg, 16, 200000);
    expectIdentical(A, B, "delay seed " + std::to_string(Seed));
    EXPECT_EQ(A.Status, RunStatus::Exited) << A.Message;
    EXPECT_TRUE(A.OutputCorrect) << "seed " << Seed;
    Fired += A.FaultsFired;
  }
  EXPECT_GE(Fired, 1u);
}

// A stuck global bank stalls its traffic for the window but the machine
// drains it afterwards: correct answer, reproducible timing.
TEST(FaultInjection, StuckBankStallsButCompletes) {
  SimConfig Clean = SimConfig::lbp(4);
  Outcome Base = runTeam(Clean, 16);
  unsigned Fired = 0;
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    SimConfig Cfg = faultConfig(4, Seed);
    Cfg.Faults.StuckBanks = 2;
    Cfg.Faults.StuckDuration = 300;
    Outcome A = runTeam(Cfg, 16, 200000);
    Outcome B = runTeam(Cfg, 16, 200000);
    expectIdentical(A, B, "stuck seed " + std::to_string(Seed));
    EXPECT_EQ(A.Status, RunStatus::Exited) << A.Message;
    EXPECT_TRUE(A.OutputCorrect) << "seed " << Seed;
    if (A.FaultsFired) {
      ++Fired;
      EXPECT_GE(A.Cycles, Base.Cycles) << "a stall cannot speed things up";
    }
  }
  EXPECT_GE(Fired, 1u);
}

// The same seed reproduces the same failure on reruns at every machine
// size the paper evaluates at the small end (4 and 16 cores).
TEST(FaultInjection, SameSeedSameFailureAcrossMachineSizes) {
  for (unsigned Cores : {4u, 16u}) {
    SimConfig Cfg = faultConfig(Cores, 42);
    Cfg.Faults.Drops = 2;
    Cfg.Faults.BitFlips = 2;
    unsigned Threads = 4 * Cores;
    Outcome A = runTeam(Cfg, Threads, 400000);
    Outcome B = runTeam(Cfg, Threads, 400000);
    expectIdentical(A, B, "cores " + std::to_string(Cores));
    EXPECT_GE(A.FaultsFired, 1u) << Cores << " cores";
    EXPECT_TRUE(A.Status == RunStatus::Fault ||
                A.Status == RunStatus::Livelock)
        << Cores << " cores: " << A.Message;
    EXPECT_FALSE(A.Message.empty());
  }
}

// Every machine check carries its cycle/core/hart coordinates and is
// visible through machineChecks(), not just the flattened message.
TEST(FaultInjection, MachineChecksCarryStructuredCoordinates) {
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    SimConfig Cfg = faultConfig(4, Seed);
    Cfg.Faults.BitFlips = 1;
    Outcome A = runTeam(Cfg, 16, 200000);
    if (A.ChecksSeen == 0)
      continue;
    assembler::AsmResult R = assembler::assemble(teamProgram(16));
    Machine M(Cfg);
    M.load(R.Prog);
    M.run(200000);
    ASSERT_GE(M.machineChecks().size(), 1u);
    const sim::MachineCheck &C = M.machineChecks().front();
    EXPECT_EQ(C.Kind, CheckKind::LinkParity);
    EXPECT_LT(C.Hart, Cfg.numHarts());
    EXPECT_EQ(C.Core, C.Hart / HartsPerCore);
    EXPECT_GT(C.Cycle, 0u);
    EXPECT_EQ(M.faultMessage(), C.format());
    return; // one structured sample is enough
  }
  FAIL() << "no seed produced a parity machine check";
}

// A lost ending-signal token is reported as token conservation breakage
// (a machine check), not as an anonymous hang: force a drop on the
// token class by scanning seeds for a plan whose drop hits it.
TEST(FaultInjection, TokenLossIsDiagnosedByConservation) {
  for (uint64_t Seed = 1; Seed <= 64; ++Seed) {
    SimConfig Cfg = faultConfig(4, Seed);
    Cfg.Faults.Drops = 1;
    assembler::AsmResult R = assembler::assemble(teamProgram(16));
    Machine M(Cfg);
    // The plan is drawn at construction: only bother running plans
    // whose single drop targets the token class.
    if (M.faultPlan().events()[0].ClassMask != FaultClassToken)
      continue;
    M.load(R.Prog);
    RunStatus S = M.run(200000);
    if (M.faultPlan().firedCount() == 0)
      continue; // armed after the last token passed
    ASSERT_EQ(S, RunStatus::Fault) << M.faultMessage();
    EXPECT_NE(M.faultMessage().find("token"), std::string::npos)
        << M.faultMessage();
    return;
  }
  FAIL() << "no seed dropped a token inside the run";
}

// The livelock path now explains itself: a hart blocked forever on an
// empty result slot produces a per-hart wait report naming the
// instruction and the slot.
TEST(FaultInjection, LivelockReportNamesTheStuckHart) {
  // The trailing loop keeps fetch from running past the stalled load
  // into zeroed memory (which would fault before the guard trips).
  assembler::AsmResult R =
      assembler::assemble("main:\n  p_lwre a0, 3\nhang:\n  j hang\n");
  ASSERT_TRUE(R.succeeded());
  SimConfig Cfg = SimConfig::lbp(1);
  Cfg.ProgressGuard = 5000;
  Machine M(Cfg);
  M.load(R.Prog);
  ASSERT_EQ(M.run(100000), RunStatus::Livelock);
  const std::string &Msg = M.faultMessage();
  EXPECT_NE(Msg.find("livelock"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("hart 0"), std::string::npos) << Msg;
  EXPECT_NE(Msg.find("slot 3"), std::string::npos) << Msg;
}

//===----------------------------------------------------------------------===//
// FastPath interaction: the fast engine (SimConfig::FastPath) skips
// quiescent cycles and sleeping cores, but faults, machine checks, the
// livelock guard and the MaxCycles budget must all fire at exactly the
// same cycle numbers with exactly the same diagnostics as the reference
// loop. Fault delivery is cycle-triggered (the plan perturbs scheduled
// deliveries, which the fast path never skips over), so any divergence
// here means a wake rule or clamp is missing. See docs/PERFORMANCE.md.
//===----------------------------------------------------------------------===//

void expectFastPathAgrees(SimConfig Cfg, unsigned Threads,
                          uint64_t MaxCycles, const std::string &What) {
  SimConfig Ref = Cfg, Fast = Cfg;
  Ref.FastPath = false;
  Fast.FastPath = true;
  Outcome A = runTeam(Ref, Threads, MaxCycles);
  Outcome B = runTeam(Fast, Threads, MaxCycles);
  expectIdentical(A, B, What);
  EXPECT_EQ(A.ChecksSeen, B.ChecksSeen) << What;
  EXPECT_EQ(A.OutputCorrect, B.OutputCorrect) << What;
}

// Every fault class, over a spread of seeds: perturbed runs — clean
// exits, parity faults, diagnosed livelocks alike — are bit-identical
// between the two engines.
TEST(FastPathFaultInteraction, AllFaultClassesIdenticalOnAndOff) {
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    SimConfig Drops = faultConfig(4, Seed);
    Drops.Faults.Drops = 1;
    expectFastPathAgrees(Drops, 16, 200000,
                         "drop seed " + std::to_string(Seed));

    SimConfig Flips = faultConfig(4, Seed);
    Flips.Faults.BitFlips = 1;
    expectFastPathAgrees(Flips, 16, 200000,
                         "flip seed " + std::to_string(Seed));
  }
  for (uint64_t Seed = 1; Seed <= 4; ++Seed) {
    SimConfig Delays = faultConfig(4, Seed);
    Delays.Faults.Delays = 3;
    expectFastPathAgrees(Delays, 16, 200000,
                         "delay seed " + std::to_string(Seed));

    SimConfig Stuck = faultConfig(4, Seed);
    Stuck.Faults.StuckBanks = 2;
    Stuck.Faults.StuckDuration = 300;
    expectFastPathAgrees(Stuck, 16, 200000,
                         "stuck seed " + std::to_string(Seed));
  }
}

// The hardest case for cycle skipping: an undetected token loss leaves
// the machine completely frozen — no pending deliveries, no timers —
// so the fast path would skip forever if the livelock guard were not a
// skip clamp. It must fire at LastProgress + ProgressGuard + 1 with the
// same per-hart wait report as the reference loop.
TEST(FastPathFaultInteraction, LivelockFiresAtSameCycleWhileSkipping) {
  for (uint64_t Seed = 1; Seed <= 64; ++Seed) {
    SimConfig Cfg = faultConfig(4, Seed);
    Cfg.Faults.Drops = 1;
    Cfg.EnableCheckers = false; // leave the loss for the guard to find
    {
      Machine Probe(Cfg);
      if (Probe.faultPlan().events()[0].ClassMask != FaultClassToken)
        continue;
    }
    SimConfig Ref = Cfg, Fast = Cfg;
    Ref.FastPath = false;
    Fast.FastPath = true;
    Outcome A = runTeam(Ref, 16, 200000);
    if (A.FaultsFired == 0)
      continue; // armed after the last token passed
    Outcome B = runTeam(Fast, 16, 200000);
    ASSERT_EQ(A.Status, RunStatus::Livelock) << A.Message;
    expectIdentical(A, B, "token-loss seed " + std::to_string(Seed));
    EXPECT_NE(A.Message.find("livelock"), std::string::npos) << A.Message;
    return;
  }
  FAIL() << "no seed dropped a token inside the run";
}

// A budget that expires mid-skip: the fast path charges every skipped
// cycle against MaxCycles, so truncation lands on the same cycle.
TEST(FastPathFaultInteraction, MaxCyclesTruncationIdenticalOnAndOff) {
  for (uint64_t MaxCycles : {50ull, 333ull, 650ull}) {
    SimConfig Cfg = SimConfig::lbp(4);
    expectFastPathAgrees(Cfg, 16, MaxCycles,
                         "truncation at " + std::to_string(MaxCycles));
  }
}

// The livelock report is itself deterministic (it is part of the
// failure's identity for replay debugging).
TEST(FaultInjection, LivelockReportIsDeterministic) {
  auto Run = [] {
    assembler::AsmResult R =
        assembler::assemble("main:\n  p_lwre a0, 3\nhang:\n  j hang\n");
    SimConfig Cfg = SimConfig::lbp(1);
    Cfg.ProgressGuard = 5000;
    Machine M(Cfg);
    M.load(R.Prog);
    RunStatus S = M.run(100000);
    EXPECT_EQ(S, RunStatus::Livelock);
    return std::make_pair(M.cycles(), M.faultMessage());
  };
  auto A = Run(), B = Run();
  EXPECT_EQ(A.first, B.first);
  EXPECT_EQ(A.second, B.second);
  EXPECT_FALSE(A.second.empty());
}

} // namespace
