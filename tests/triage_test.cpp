//===- tests/triage_test.cpp - Divergence triage invariants ------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Interval trace digests and the bisecting divergence triager
// (docs/OBSERVABILITY.md "Divergence triage"): digesting must be
// hash-neutral and boundary-exact, the bounded ring must keep the
// newest entries across wraparound, digest/perturb state must survive
// snapshot round trips, and on a seeded divergence the triager must
// isolate the exact first divergent event with a byte-identical report.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "obs/Triage.h"
#include "sim/Machine.h"
#include "workloads/Phases.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::sim;

namespace {

std::string phasesSrc(unsigned Cores = 4) {
  workloads::PhasesSpec Spec;
  Spec.NumHarts = Cores * HartsPerCore;
  return workloads::buildPhasesProgram(Spec);
}

assembler::Program assembleOrDie(const std::string &Source) {
  assembler::AsmResult R = assembler::assemble(Source);
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  return std::move(R.Prog);
}

RunStatus runOn(Machine &M, const std::string &Source,
                uint64_t MaxCycles = 2000000) {
  M.load(assembleOrDie(Source));
  return M.run(MaxCycles);
}

/// Counts canonical events below a cycle threshold — used to aim the
/// line cap exactly at a digest interval edge.
struct CountBelowSink : TraceSink {
  uint64_t Threshold;
  uint64_t Count = 0;
  explicit CountBelowSink(uint64_t T) : Threshold(T) {}
  void onEvent(uint64_t Cycle, EventKind, uint64_t, uint64_t) override {
    if (Cycle < Threshold)
      ++Count;
  }
};

} // namespace

TEST(Triage, DigestsAreHashNeutralAndBoundaryExact) {
  std::string Src = phasesSrc();

  SimConfig Off = SimConfig::lbp(4);
  Off.DigestInterval = 0;
  Machine A(Off);
  ASSERT_EQ(runOn(A, Src), RunStatus::Exited);
  EXPECT_EQ(A.trace().digestCount(), 0u);

  SimConfig On = Off;
  On.DigestInterval = 512;
  Machine B(On);
  ASSERT_EQ(runOn(B, Src), RunStatus::Exited);

  // Hash-neutral: digesting only reads the hash accumulator.
  EXPECT_EQ(A.traceHash(), B.traceHash());
  EXPECT_EQ(A.cycles(), B.cycles());
  EXPECT_EQ(A.retired(), B.retired());

  // Boundary-exact: one digest per whole interval the run crossed,
  // each at a multiple of the stride, strictly increasing.
  EXPECT_EQ(B.trace().digestCount(), B.cycles() / 512);
  std::vector<TraceDigest> Ring = B.trace().digestEntries();
  for (size_t I = 0; I != Ring.size(); ++I)
    EXPECT_EQ(Ring[I].Boundary, 512 * (I + 1));
}

TEST(Triage, InterruptedRunDigestsMatchStraightRun) {
  std::string Src = phasesSrc();
  SimConfig Cfg = SimConfig::lbp(4);
  Cfg.DigestInterval = 512;

  Machine Straight(Cfg);
  ASSERT_EQ(runOn(Straight, Src), RunStatus::Exited);

  // A budget expiry mid-interval must not fabricate or skip a
  // boundary: the resumed run's digest sequence is the same bytes.
  Machine Chunked(Cfg);
  Chunked.load(assembleOrDie(Src));
  ASSERT_EQ(Chunked.run(1300), RunStatus::MaxCycles);
  ASSERT_EQ(Chunked.run(2000000), RunStatus::Exited);

  EXPECT_EQ(Straight.traceHash(), Chunked.traceHash());
  std::vector<TraceDigest> SR = Straight.trace().digestEntries();
  std::vector<TraceDigest> CR = Chunked.trace().digestEntries();
  ASSERT_EQ(SR.size(), CR.size());
  for (size_t I = 0; I != SR.size(); ++I) {
    EXPECT_EQ(SR[I].Boundary, CR[I].Boundary);
    EXPECT_EQ(SR[I].Hash, CR[I].Hash);
  }
}

TEST(Triage, DigestRingWrapsKeepingNewest) {
  std::string Src = phasesSrc();
  SimConfig Cfg = SimConfig::lbp(4);
  Cfg.DigestInterval = 256;
  Cfg.DigestRingCap = 4;
  Machine M(Cfg);
  ASSERT_EQ(runOn(M, Src), RunStatus::Exited);

  uint64_t Total = M.trace().digestCount();
  ASSERT_GT(Total, 4u) << "workload too short to wrap the ring";

  // The ring holds exactly the newest cap entries, oldest first.
  std::vector<TraceDigest> Ring = M.trace().digestEntries();
  ASSERT_EQ(Ring.size(), 4u);
  for (size_t I = 0; I != Ring.size(); ++I)
    EXPECT_EQ(Ring[I].Boundary, 256 * (Total - 3 + I));
}

TEST(Triage, LineCapHitExactlyAtIntervalEdge) {
  std::string Src = phasesSrc();

  // Count the events strictly below the first boundary; capping the
  // line budget to exactly that count exhausts it on the same event
  // that crosses the digest edge.
  SimConfig Probe = SimConfig::lbp(4);
  Probe.DigestInterval = 512;
  Machine A(Probe);
  CountBelowSink Below(512);
  A.addTraceSink(&Below);
  ASSERT_EQ(runOn(A, Src), RunStatus::Exited);
  ASSERT_GT(Below.Count, 0u);

  SimConfig Capped = Probe;
  Capped.RecordTrace = true;
  Capped.TraceLineCap = Below.Count;
  Machine B(Capped);
  ASSERT_EQ(runOn(B, Src), RunStatus::Exited);

  // The cap bounds memory only: the fingerprint and every digest are
  // those of the uncapped run.
  EXPECT_EQ(B.trace().lines().size(), Below.Count);
  EXPECT_GT(B.trace().droppedLines(), 0u);
  EXPECT_EQ(A.traceHash(), B.traceHash());
  std::vector<TraceDigest> AR = A.trace().digestEntries();
  std::vector<TraceDigest> BR = B.trace().digestEntries();
  ASSERT_EQ(AR.size(), BR.size());
  for (size_t I = 0; I != AR.size(); ++I) {
    EXPECT_EQ(AR[I].Boundary, BR[I].Boundary);
    EXPECT_EQ(AR[I].Hash, BR[I].Hash);
  }
}

TEST(Triage, PerturbSeedsReproducibleDivergence) {
  std::string Src = phasesSrc();
  SimConfig Ref = SimConfig::lbp(4);
  Ref.FastPath = false;
  Ref.PerturbForTest = 2000;
  SimConfig Fast = Ref;
  Fast.FastPath = true;

  Machine A1(Ref), A2(Ref), B(Fast);
  ASSERT_EQ(runOn(A1, Src), RunStatus::Exited);
  ASSERT_EQ(runOn(A2, Src), RunStatus::Exited);
  ASSERT_EQ(runOn(B, Src), RunStatus::Exited);

  // Deterministic per config, divergent across engine payloads.
  EXPECT_EQ(A1.traceHash(), A2.traceHash());
  EXPECT_NE(A1.traceHash(), B.traceHash());

  // And with the seed off the engines still agree.
  SimConfig RefOff = Ref, FastOff = Fast;
  RefOff.PerturbForTest = FastOff.PerturbForTest = 0;
  Machine C(RefOff), D(FastOff);
  ASSERT_EQ(runOn(C, Src), RunStatus::Exited);
  ASSERT_EQ(runOn(D, Src), RunStatus::Exited);
  EXPECT_EQ(C.traceHash(), D.traceHash());
}

TEST(Triage, SnapshotRoundTripsDigestAndPerturbState) {
  std::string Src = phasesSrc();
  SimConfig Cfg = SimConfig::lbp(4);
  Cfg.DigestInterval = 512;
  Cfg.DigestRingCap = 4;
  Cfg.PerturbForTest = 700; // fires before the snapshot point

  Machine M(Cfg);
  M.load(assembleOrDie(Src));
  ASSERT_EQ(M.run(1300), RunStatus::MaxCycles);
  ASSERT_TRUE(M.trace().perturbFired());

  std::vector<uint8_t> Blob;
  M.saveSnapshot(Blob);

  // The blob carries the code image: the restore target is not loaded.
  Machine R(Cfg);
  std::string Err;
  ASSERT_TRUE(R.restoreSnapshot(Blob, Err)) << Err;

  // Restored digest state is bit-equal, including the ring layout: a
  // second save of the restored machine is the same bytes.
  std::vector<uint8_t> Blob2;
  R.saveSnapshot(Blob2);
  EXPECT_EQ(Blob, Blob2);

  // And both continuations finish with identical fingerprints and
  // digest sequences — the perturb must not fire a second time.
  ASSERT_EQ(M.run(2000000), RunStatus::Exited);
  ASSERT_EQ(R.run(2000000), RunStatus::Exited);
  EXPECT_EQ(M.traceHash(), R.traceHash());
  EXPECT_EQ(M.trace().digestCount(), R.trace().digestCount());
  std::vector<TraceDigest> MR = M.trace().digestEntries();
  std::vector<TraceDigest> RR = R.trace().digestEntries();
  ASSERT_EQ(MR.size(), RR.size());
  for (size_t I = 0; I != MR.size(); ++I) {
    EXPECT_EQ(MR[I].Boundary, RR[I].Boundary);
    EXPECT_EQ(MR[I].Hash, RR[I].Hash);
  }
}

TEST(Triage, FindsSeededFirstDivergentEvent) {
  assembler::Program Prog = assembleOrDie(phasesSrc());

  sim::SimConfig Base = SimConfig::lbp(4);
  Base.DigestInterval = 512;
  Base.PerturbForTest = 2000;

  obs::TriageRunSpec A{"reference", Base}, B{"fast", Base};
  A.Cfg.FastPath = false;
  B.Cfg.FastPath = true;

  obs::TriageResult R = obs::triageDivergence(Prog, A, B);
  ASSERT_TRUE(R.Ran) << R.Error;
  EXPECT_TRUE(R.Diverged);
  ASSERT_TRUE(R.Found);

  // The replay window is bounded by the digest stride.
  EXPECT_LE(R.WindowCycles, 2 * 512u);
  EXPECT_LE(R.SnapshotCycle, 2000u);

  // Both sides' first divergent event is the seeded perturb marker:
  // same cycle and hart, engine-distinct payload.
  for (int S = 0; S != 2; ++S) {
    const obs::TriageSideResult &Side = R.Side[S];
    uint64_t Rel = R.FirstIndex - Side.ContextBase;
    ASSERT_LT(Rel, Side.Context.size());
    const obs::TriageEvent &E = Side.Context[Rel];
    EXPECT_EQ(E.Cycle, 2000u);
    EXPECT_EQ(E.Kind, EventKind::Perturb);
    EXPECT_EQ(obs::triageEventHart(E), 0);
  }
  uint64_t RelA = R.FirstIndex - R.Side[0].ContextBase;
  uint64_t RelB = R.FirstIndex - R.Side[1].ContextBase;
  EXPECT_NE(R.Side[0].Context[RelA].B, R.Side[1].Context[RelB].B);

  // The canonical report is byte-identical across independent runs.
  obs::TriageResult R2 = obs::triageDivergence(Prog, A, B);
  EXPECT_EQ(obs::triageReportToJson(R, "phases"),
            obs::triageReportToJson(R2, "phases"));
}

TEST(Triage, ParallelThreadSweepDivergenceIsTriaged) {
  assembler::Program Prog = assembleOrDie(phasesSrc());

  sim::SimConfig Base = SimConfig::lbp(4);
  Base.DigestInterval = 512;
  Base.PerturbForTest = 1500;
  Base.OversubscribeHost = true; // t4 even on a small host

  // The perturb payload records the *requested* thread count, so a
  // t1-vs-t4 sweep diverges regardless of the host's core count.
  obs::TriageRunSpec A{"fast-t1", Base}, B{"parallel-t4", Base};
  A.Cfg.FastPath = true;
  A.Cfg.HostThreads = 1;
  B.Cfg.FastPath = true;
  B.Cfg.HostThreads = 4;

  obs::TriageResult R = obs::triageDivergence(Prog, A, B);
  ASSERT_TRUE(R.Ran) << R.Error;
  EXPECT_TRUE(R.Diverged);
  ASSERT_TRUE(R.Found);
  uint64_t Rel = R.FirstIndex - R.Side[0].ContextBase;
  ASSERT_LT(Rel, R.Side[0].Context.size());
  EXPECT_EQ(R.Side[0].Context[Rel].Cycle, 1500u);
  EXPECT_EQ(R.Side[0].Context[Rel].Kind, EventKind::Perturb);
}

TEST(Triage, CleanPairReportsNoDivergence) {
  assembler::Program Prog = assembleOrDie(phasesSrc());

  sim::SimConfig Base = SimConfig::lbp(4);
  obs::TriageRunSpec A{"reference", Base}, B{"fast", Base};
  A.Cfg.FastPath = false;
  B.Cfg.FastPath = true;

  obs::TriageResult R = obs::triageDivergence(Prog, A, B);
  ASSERT_TRUE(R.Ran) << R.Error;
  EXPECT_FALSE(R.Diverged);
  EXPECT_EQ(R.Side[0].TraceHash, R.Side[1].TraceHash);

  std::string Json = obs::triageReportToJson(R, "phases");
  EXPECT_NE(Json.find("\"diverged\":false"), std::string::npos);
  EXPECT_EQ(Json.find("first_divergence"), std::string::npos);
}
