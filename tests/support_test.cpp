//===- tests/support_test.cpp - Support utilities tests ------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "support/EventHash.h"
#include "support/SplitMix64.h"
#include "support/StringUtils.h"

#include <gtest/gtest.h>

using namespace lbp;

namespace {

TEST(StringUtils, Trim) {
  EXPECT_EQ(trim("  abc \t"), "abc");
  EXPECT_EQ(trim(""), "");
  EXPECT_EQ(trim(" \t "), "");
  EXPECT_EQ(trim("x"), "x");
  EXPECT_EQ(trim("a b"), "a b");
  EXPECT_EQ(trim("abc\r"), "abc") << "carriage returns are stripped";
}

TEST(StringUtils, Split) {
  auto P = split("a,b,,c", ',');
  ASSERT_EQ(P.size(), 4u);
  EXPECT_EQ(P[0], "a");
  EXPECT_EQ(P[2], "");
  EXPECT_EQ(split("abc", ',').size(), 1u);
}

TEST(StringUtils, SplitLines) {
  auto L = splitLines("one\ntwo\nthree");
  ASSERT_EQ(L.size(), 3u);
  EXPECT_EQ(L[2], "three");
  EXPECT_EQ(splitLines("x\n").size(), 1u);
  EXPECT_TRUE(splitLines("").empty());
}

TEST(StringUtils, ParseInteger) {
  EXPECT_EQ(parseInteger("42"), 42);
  EXPECT_EQ(parseInteger("-42"), -42);
  EXPECT_EQ(parseInteger("+7"), 7);
  EXPECT_EQ(parseInteger("0x10"), 16);
  EXPECT_EQ(parseInteger("-0x10"), -16);
  EXPECT_EQ(parseInteger("0b101"), 5);
  EXPECT_EQ(parseInteger(" 9 "), 9);
  EXPECT_FALSE(parseInteger("").has_value());
  EXPECT_FALSE(parseInteger("12x").has_value());
  EXPECT_FALSE(parseInteger("0x").has_value());
  EXPECT_FALSE(parseInteger("-").has_value());
  EXPECT_FALSE(parseInteger("0b2").has_value());
}

TEST(StringUtils, FormatString) {
  EXPECT_EQ(formatString("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(formatString("%08x", 0x1234), "00001234");
  EXPECT_EQ(formatString("plain"), "plain");
}

TEST(SplitMix64, IsDeterministicAndSeedSensitive) {
  SplitMix64 A(1), B(1), C(2);
  for (unsigned I = 0; I != 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    EXPECT_NE(VA, C.next());
  }
}

TEST(SplitMix64, RangesAreRespected) {
  SplitMix64 R(99);
  for (unsigned I = 0; I != 1000; ++I) {
    uint64_t V = R.nextInRange(10, 20);
    EXPECT_GE(V, 10u);
    EXPECT_LE(V, 20u);
  }
}

TEST(EventHash, OrderSensitive) {
  EventHash A, B;
  A.addEvent(1, 2);
  A.addEvent(3, 4);
  B.addEvent(3, 4);
  B.addEvent(1, 2);
  EXPECT_NE(A.value(), B.value());
}

TEST(EventHash, EqualStreamsHashEqual) {
  EventHash A, B;
  for (uint64_t I = 0; I != 100; ++I) {
    A.addEvent(I, I * 3, I * 7);
    B.addEvent(I, I * 3, I * 7);
  }
  EXPECT_EQ(A.value(), B.value());
}

} // namespace
