//===- tests/thread_sweep_test.cpp - Parallel-engine invariance -------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Thread-count invariance of the sharded parallel engine
// (sim/ParallelEngine.cpp): for every workload, every fault-injection
// class and mid-epoch MaxCycles truncation, a run with HostThreads in
// {1, 2, 4, 8} must produce the very same observable fingerprint —
// RunStatus, final cycle count, retired count, trace hash, fault
// message, and the full machine-check list — as the serial reference
// engine. This is the contract docs/PERFORMANCE.md ("Parallel engine")
// states; any divergence here is a parallel-engine bug by definition.
//
// The CI ThreadSanitizer job runs this binary under TSan, which turns
// the same sweep into a data-race check on the barrier protocol.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "frontend/Compiler.h"
#include "obs/Perfetto.h"
#include "obs/Report.h"
#include "romp/AsmText.h"
#include "romp/Runtime.h"
#include "sim/Machine.h"
#include "sim/ParallelEngine.h"
#include "support/SplitMix64.h"
#include "support/StringUtils.h"
#include "workloads/MatMul.h"
#include "workloads/Phases.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

using namespace lbp;
using namespace lbp::sim;

namespace {

/// Everything a run can tell the outside world. Two engine/thread
/// configurations agree iff their fingerprints compare equal. Counters
/// is the full canonical snapshot (obs::countersToJson), so every cell
/// of the sweep also proves counter bit-identity.
struct Fingerprint {
  RunStatus Status;
  uint64_t Cycles;
  uint64_t Retired;
  uint64_t Hash;
  std::string Message;
  std::vector<MachineCheck> Checks;
  std::string Counters;
};

Fingerprint runWith(const assembler::Program &Prog, SimConfig Cfg,
                    unsigned Threads, uint64_t MaxCycles) {
  Cfg.HostThreads = Threads;
  // Spawn real shard workers even on a small CI host — the sweep's
  // whole point is exercising actual cross-thread interleaving.
  Cfg.OversubscribeHost = true;
  Cfg.CollectCounters = true;
  Machine M(Cfg);
  M.load(Prog);
  RunStatus S = M.run(MaxCycles);
  return {S,
          M.cycles(),
          M.retired(),
          M.traceHash(),
          M.faultMessage(),
          M.machineChecks(),
          obs::countersToJson(M)};
}

void expectSame(const Fingerprint &Ref, const Fingerprint &Got,
                const std::string &What) {
  EXPECT_EQ(static_cast<int>(Ref.Status), static_cast<int>(Got.Status))
      << What;
  EXPECT_EQ(Ref.Cycles, Got.Cycles) << What;
  EXPECT_EQ(Ref.Retired, Got.Retired) << What;
  EXPECT_EQ(Ref.Hash, Got.Hash) << What;
  EXPECT_EQ(Ref.Message, Got.Message) << What;
  EXPECT_EQ(Ref.Counters, Got.Counters) << What;
  ASSERT_EQ(Ref.Checks.size(), Got.Checks.size()) << What;
  for (size_t I = 0; I != Ref.Checks.size(); ++I) {
    EXPECT_EQ(Ref.Checks[I].Cycle, Got.Checks[I].Cycle) << What;
    EXPECT_EQ(static_cast<int>(Ref.Checks[I].Kind),
              static_cast<int>(Got.Checks[I].Kind))
        << What;
    EXPECT_EQ(Ref.Checks[I].Hart, Got.Checks[I].Hart) << What;
    EXPECT_EQ(Ref.Checks[I].Message, Got.Checks[I].Message) << What;
  }
}

/// Assembles \p Src and compares every engine/thread cell against the
/// serial reference, counter snapshots included. Two sub-sweeps because
/// the engines split on CollectStallStats: with it on the fast path
/// yields to the reference loop (it must observe every core-cycle), so
/// covering all three engines needs a stalls-on sweep (reference vs
/// sharded) and a stalls-off sweep (reference vs fast path vs sharded).
void expectThreadInvariant(const std::string &Src, SimConfig Cfg,
                           const std::string &What,
                           uint64_t MaxCycles = 2000000) {
  assembler::AsmResult R = assembler::assemble(Src);
  ASSERT_TRUE(R.succeeded()) << What << ":\n" << R.errorText();

  SimConfig SCfg = Cfg;
  SCfg.CollectStallStats = true;
  Fingerprint Ref = runWith(R.Prog, SCfg, /*Threads=*/1, MaxCycles);
  for (unsigned T : {2u, 4u, 8u}) {
    Fingerprint Par = runWith(R.Prog, SCfg, T, MaxCycles);
    expectSame(Ref, Par, What + formatString(" [stalls threads=%u]", T));
  }

  SimConfig FCfg = Cfg;
  FCfg.CollectStallStats = false;
  FCfg.FastPath = false;
  Fingerprint FRef = runWith(R.Prog, FCfg, /*Threads=*/1, MaxCycles);
  FCfg.FastPath = true;
  expectSame(FRef, runWith(R.Prog, FCfg, /*Threads=*/1, MaxCycles),
             What + " [fastpath]");
  expectSame(FRef, runWith(R.Prog, FCfg, /*Threads=*/4, MaxCycles),
             What + " [fast threads=4]");
}

/// The fault matrix every workload below is swept through: clean, one
/// plan per fault class, and a mixed plan. Window/seed values chosen so
/// each class actually fires on these workloads.
struct FaultCase {
  const char *Name;
  unsigned Drops, Delays, BitFlips, StuckBanks;
};
constexpr FaultCase FaultCases[] = {
    {"clean", 0, 0, 0, 0},       {"drops", 2, 0, 0, 0},
    {"delays", 0, 2, 0, 0},      {"bitflips", 0, 0, 2, 0},
    {"stuckbanks", 0, 0, 0, 2},  {"mixed", 1, 1, 1, 1},
};

SimConfig withFaults(SimConfig Cfg, const FaultCase &F, uint64_t Seed) {
  Cfg.Faults.Seed = Seed;
  Cfg.Faults.Drops = F.Drops;
  Cfg.Faults.Delays = F.Delays;
  Cfg.Faults.BitFlips = F.BitFlips;
  Cfg.Faults.StuckBanks = F.StuckBanks;
  Cfg.Faults.WindowBegin = 50;
  Cfg.Faults.WindowEnd = 4000;
  return Cfg;
}

void sweepFaults(const std::string &Src, SimConfig Cfg,
                 const std::string &What) {
  for (const FaultCase &F : FaultCases)
    expectThreadInvariant(Src, withFaults(Cfg, F, 0xF00Dull), What + "/" +
                                                                  F.Name);
}

/// The barrier-heavy shape from bench_simspeed: back-to-back parallel
/// regions whose workers do almost nothing, so the fork/join protocol
/// and the ending-token chain dominate — the traffic with the most
/// cross-shard deliveries per simulated cycle.
std::string barrierProgram(unsigned NumHarts, unsigned Rounds) {
  romp::AsmText Head;
  romp::emitMainPrologue(Head);
  Head.line("li s1, %u", Rounds);
  Head.label("round");
  romp::emitParallelCall(Head, "worker", NumHarts, "0");
  Head.line("addi s1, s1, -1");
  Head.line("bnez s1, round");
  romp::AsmText Tail;
  romp::emitMainEpilogue(Tail);
  romp::emitParallelStart(Tail);
  return Head.str() + Tail.str() + R"(
    .equ OUT, 0x20000200
worker:
    slli a4, a0, 2
    la a5, OUT
    add a4, a4, a5
    sw a0, 0(a4)
    p_syncm
    p_ret
)";
}

TEST(ThreadSweep, BarrierWorkload) {
  sweepFaults(barrierProgram(/*NumHarts=*/16, /*Rounds=*/6),
              SimConfig::lbp(4), "barrier");
}

/// Long quiescent stretches: each hart spins in a private ALU loop with
/// no memory traffic at all between the fork and the join, which is
/// exactly the shape the adaptive multi-cycle window planner exists for
/// (no deliveries due, no gate/send ops in flight).
std::string quiescentProgram(unsigned NumHarts, unsigned Rounds,
                             unsigned SpinIters) {
  romp::AsmText Head;
  romp::emitMainPrologue(Head);
  Head.line("li s1, %u", Rounds);
  Head.label("round");
  romp::emitParallelCall(Head, "worker", NumHarts, "0");
  Head.line("addi s1, s1, -1");
  Head.line("bnez s1, round");
  romp::AsmText Tail;
  romp::emitMainEpilogue(Tail);
  romp::emitParallelStart(Tail);
  return Head.str() + Tail.str() +
         formatString(R"(
    .equ OUT, 0x20000200
worker:
    li a2, %u
spin:
    addi a2, a2, -1
    bnez a2, spin
    slli a4, a0, 2
    la a5, OUT
    add a4, a4, a5
    sw a0, 0(a4)
    p_syncm
    p_ret
)",
                      SpinIters);
}

TEST(ThreadSweep, QuiescentStretchesWorkload) {
  sweepFaults(quiescentProgram(/*NumHarts=*/16, /*Rounds=*/3,
                               /*SpinIters=*/300),
              SimConfig::lbp(4), "quiescent");
}

TEST(ThreadSweep, QuiescentStretchesUseMultiCycleEpochs) {
  // Beyond fingerprint invariance, prove the window machinery actually
  // engages on this shape: some epochs must span more than one cycle.
  assembler::AsmResult R = assembler::assemble(
      quiescentProgram(/*NumHarts=*/16, /*Rounds=*/3, /*SpinIters=*/300));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  SimConfig Cfg = SimConfig::lbp(4);
  Cfg.HostThreads = 4;
  Cfg.OversubscribeHost = true;
  Machine M(Cfg);
  M.load(R.Prog);
  ASSERT_EQ(static_cast<int>(M.run(2000000)),
            static_cast<int>(RunStatus::Exited));

  ASSERT_EQ(static_cast<int>(M.engineUsed()),
            static_cast<int>(Machine::EngineKind::Parallel));
  const Machine::EngineStats &ES = M.engineStats();
  EXPECT_GT(ES.EpochsMerged, 0u);
  EXPECT_GT(ES.WindowCycles, 0u) << "no multi-cycle epoch ever ran";
  uint64_t MultiCycleEpochs = 0;
  for (unsigned W = 2; W <= MaxEpochWindow; ++W)
    MultiCycleEpochs += ES.WindowHist[W];
  EXPECT_GT(MultiCycleEpochs, 0u);
}

/// Dense cross-shard traffic: every hart hammers the *next* core's
/// global bank, so nearly every delivery crosses a shard boundary and
/// the window planner must keep clipping back to per-cycle epochs —
/// the adversarial case for the window due-scan.
std::string crossBankProgram(unsigned NumHarts, unsigned Rounds,
                             unsigned Iters) {
  romp::AsmText Head;
  romp::emitMainPrologue(Head);
  Head.line("li s1, %u", Rounds);
  Head.label("round");
  romp::emitParallelCall(Head, "worker", NumHarts, "0");
  Head.line("addi s1, s1, -1");
  Head.line("bnez s1, round");
  romp::AsmText Tail;
  romp::emitMainEpilogue(Tail);
  romp::emitParallelStart(Tail);
  return Head.str() + Tail.str() +
         formatString(R"(
worker:
    srli a4, a0, 2          # core id (4 harts per core)
    addi a4, a4, 1
    andi a4, a4, 3          # (core + 1) %% NumCores: always remote
    slli a4, a4, 16         # << GlobalBankSizeLog2 (64 KiB banks)
    li a5, 0x20000000
    add a4, a4, a5
    slli a6, a0, 2
    add a4, a4, a6          # per-hart word in the remote bank
    li a2, %u
loop:
    sw a0, 0(a4)
    p_syncm
    lw a6, 0(a4)
    p_syncm
    addi a2, a2, -1
    bnez a2, loop
    p_ret
)",
                      Iters);
}

TEST(ThreadSweep, DenseCrossShardTraffic) {
  sweepFaults(crossBankProgram(/*NumHarts=*/16, /*Rounds=*/2,
                               /*Iters=*/25),
              SimConfig::lbp(4), "crossbank");
}

TEST(ThreadSweep, RebalancingIsPlacementInvariant) {
  // The deterministic-rebalancing contract: neither the initial shard
  // partition nor the rebalance cadence may leave any observable mark.
  // Sweep both knobs against the serial reference on workloads with
  // skewed per-core load (quiescent spin) and heavy traffic (barrier).
  struct Cell {
    const char *Name;
    std::string Src;
  } Cells[] = {
      {"quiescent", quiescentProgram(16, 2, 200)},
      {"barrier", barrierProgram(16, 4)},
  };
  for (const Cell &C : Cells) {
    assembler::AsmResult R = assembler::assemble(C.Src);
    ASSERT_TRUE(R.succeeded()) << C.Name << ":\n" << R.errorText();
    SimConfig Cfg = SimConfig::lbp(4);
    Fingerprint Ref = runWith(R.Prog, Cfg, /*Threads=*/1, 2000000);
    for (unsigned Skew : {0u, 1u, 3u})
      for (uint64_t Interval : {0ull, 256ull, 4096ull}) {
        SimConfig PCfg = Cfg;
        PCfg.InitialShardSkew = Skew;
        PCfg.ShardRebalanceInterval = Interval;
        expectSame(Ref, runWith(R.Prog, PCfg, /*Threads=*/4, 2000000),
                   formatString("%s skew=%u interval=%llu", C.Name, Skew,
                                static_cast<unsigned long long>(Interval)));
      }
  }
}

TEST(ThreadSweep, PhasesWorkload) {
  workloads::PhasesSpec Spec;
  Spec.NumHarts = 16;
  SimConfig Cfg = SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  sweepFaults(workloads::buildPhasesProgram(Spec), Cfg, "phases");
}

TEST(ThreadSweep, MatMulTiled) {
  workloads::MatMulSpec Spec =
      workloads::MatMulSpec::paper(16, workloads::MatMulVersion::Tiled);
  SimConfig Cfg = SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  sweepFaults(workloads::buildMatMulProgram(Spec), Cfg, "matmul-tiled");
}

TEST(ThreadSweep, DetCCorpus) {
  for (const char *Name :
       {"vector_scale", "chunked_sum", "phased_stencil"}) {
    std::string Path =
        std::string(LBP_SOURCE_DIR "/examples/detc/") + Name + ".c";
    std::ifstream In(Path);
    ASSERT_TRUE(In.good()) << "cannot open " << Path;
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Errors;
    std::string Asm = frontend::compileDetCToAsm(Buf.str(), Errors);
    ASSERT_FALSE(Asm.empty()) << Name << ":\n" << Errors;
    sweepFaults(Asm, SimConfig::lbp(4), std::string("detc-") + Name);
  }
}

/// Random well-formed single-hart programs (same generator family as
/// tests/differential_test.cpp, inlined in reduced form): ALU soup plus
/// global store/load traffic, exercising the memory-intent staging.
std::string randomProgram(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::string S = "main:\n";
  const char *Work[] = {"a0", "a1", "a2", "a3", "s0", "s1", "s2", "s3"};
  auto R = [&] { return Work[Rng.nextBelow(8)]; };
  for (unsigned K = 0; K != 8; ++K)
    S += formatString("  li %s, %d\n", Work[K],
                      static_cast<int32_t>(Rng.next()));
  for (unsigned Step = 0; Step != 60; ++Step) {
    switch (Rng.nextBelow(4)) {
    case 0: {
      static const char *Ops[] = {"add", "sub", "xor", "or", "and", "mul"};
      S += formatString("  %s %s, %s, %s\n", Ops[Rng.nextBelow(6)], R(),
                        R(), R());
      break;
    }
    case 1:
      S += formatString("  addi %s, %s, %d\n", R(), R(),
                        static_cast<int>(Rng.nextBelow(4096)) - 2048);
      break;
    case 2: {
      unsigned Slot = static_cast<unsigned>(Rng.nextBelow(16));
      S += formatString("  li t1, 0x20000%03x\n", Slot * 4);
      S += formatString("  sw %s, 0(t1)\n", R());
      S += "  p_syncm\n";
      S += formatString("  lw %s, 0(t1)\n", R());
      S += "  p_syncm\n";
      break;
    }
    default: {
      std::string Label = formatString("skip_%u", Step);
      S += formatString("  bne %s, %s, %s\n", R(), R(), Label.c_str());
      S += formatString("  add %s, %s, %s\n", R(), R(), R());
      S += Label + ":\n";
      break;
    }
    }
  }
  S += "  li ra, 0\n  li t0, -1\n  p_ret\n";
  return S;
}

TEST(ThreadSweep, RandomPrograms) {
  for (uint64_t Seed : {3ull, 77ull, 0xABCDull})
    expectThreadInvariant(randomProgram(Seed), SimConfig::lbp(4),
                          formatString("random seed %llu",
                                       static_cast<unsigned long long>(
                                           Seed)));
}

TEST(ThreadSweep, MaxCyclesTruncationMidEpoch) {
  // Cutting the budget mid-run must stop every thread count at the same
  // cycle with the same trace — including budgets that land inside a
  // parallel cycle's two-phase sequence.
  workloads::PhasesSpec Spec;
  Spec.NumHarts = 16;
  SimConfig Cfg = SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  std::string Src = workloads::buildPhasesProgram(Spec);
  for (uint64_t MaxCycles : {100ull, 777ull, 2048ull})
    expectThreadInvariant(Src, Cfg,
                          formatString("phases truncated at %llu",
                                       static_cast<unsigned long long>(
                                           MaxCycles)),
                          MaxCycles);
}

TEST(ThreadSweep, TruncationUnderFaults) {
  std::string Src = barrierProgram(/*NumHarts=*/16, /*Rounds=*/6);
  for (const FaultCase &F : FaultCases)
    expectThreadInvariant(Src, withFaults(SimConfig::lbp(4), F, 0xD1CEull),
                          std::string("barrier truncated/") + F.Name, 777);
}

/// Perfetto + JSONL bytes for one run; the sinks observe the canonical
/// stream, so these must be identical for every engine.
struct TimelineCapture {
  std::string Perfetto;
  std::string Jsonl;
};

TimelineCapture captureTimelines(const assembler::Program &Prog,
                                 SimConfig Cfg, unsigned Threads) {
  Cfg.HostThreads = Threads;
  Cfg.OversubscribeHost = true;
  std::ostringstream POut, JOut;
  Machine M(Cfg);
  obs::PerfettoSink Perfetto(POut, Cfg);
  obs::JsonlSink Jsonl(JOut);
  M.addTraceSink(&Perfetto);
  M.addTraceSink(&Jsonl);
  M.load(Prog);
  M.run(2000000);
  Perfetto.finish(M.cycles());
  return {POut.str(), JOut.str()};
}

TEST(ThreadSweep, TimelineExportsAreEngineInvariant) {
  std::string Src = barrierProgram(/*NumHarts=*/16, /*Rounds=*/3);
  assembler::AsmResult R = assembler::assemble(Src);
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  for (const FaultCase &F : {FaultCases[0], FaultCases[5]}) {
    SimConfig Cfg = withFaults(SimConfig::lbp(4), F, 0xBEEFull);
    Cfg.FastPath = false;
    TimelineCapture Ref = captureTimelines(R.Prog, Cfg, 1);
    EXPECT_FALSE(Ref.Perfetto.empty());
    EXPECT_EQ(Ref.Perfetto.substr(Ref.Perfetto.size() - 3), "]}\n");
    Cfg.FastPath = true;
    TimelineCapture Fast = captureTimelines(R.Prog, Cfg, 1);
    EXPECT_EQ(Ref.Perfetto, Fast.Perfetto) << F.Name;
    EXPECT_EQ(Ref.Jsonl, Fast.Jsonl) << F.Name;
    for (unsigned T : {2u, 8u}) {
      TimelineCapture Par = captureTimelines(R.Prog, Cfg, T);
      EXPECT_EQ(Ref.Perfetto, Par.Perfetto) << F.Name << " T=" << T;
      EXPECT_EQ(Ref.Jsonl, Par.Jsonl) << F.Name << " T=" << T;
    }
  }
}

TEST(ThreadSweep, StallStatsNoLongerDowngradeTheEngine) {
  // Stall tallies are staged per shard now, so CollectStallStats plus
  // HostThreads > 1 must select the sharded engine — and say nothing.
  assembler::AsmResult R =
      assembler::assemble(barrierProgram(/*NumHarts=*/16, /*Rounds=*/2));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  SimConfig Cfg = SimConfig::lbp(4);
  Cfg.CollectStallStats = true;
  Cfg.HostThreads = 4;
  Cfg.OversubscribeHost = true;
  Machine M(Cfg);
  M.load(R.Prog);
  ASSERT_EQ(static_cast<int>(M.run(2000000)),
            static_cast<int>(RunStatus::Exited));
  EXPECT_EQ(static_cast<int>(M.engineUsed()),
            static_cast<int>(Machine::EngineKind::Parallel));
  EXPECT_TRUE(M.engineNote().empty()) << M.engineNote();
  EXPECT_GT(M.issuedCoreCycles(), 0u);
}

TEST(ThreadSweep, MemLogDowngradeIsDiagnosed) {
  // The one remaining forced downgrade: the mem-log needs the serial
  // reference access order. It must still happen — and now explain
  // itself through engineNote().
  assembler::AsmResult R =
      assembler::assemble(barrierProgram(/*NumHarts=*/16, /*Rounds=*/2));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  SimConfig Cfg = SimConfig::lbp(4);
  Cfg.CollectMemLog = true;
  Cfg.HostThreads = 4;
  Cfg.OversubscribeHost = true;
  Machine M(Cfg);
  M.load(R.Prog);
  ASSERT_EQ(static_cast<int>(M.run(2000000)),
            static_cast<int>(RunStatus::Exited));
  EXPECT_NE(static_cast<int>(M.engineUsed()),
            static_cast<int>(Machine::EngineKind::Parallel));
  EXPECT_FALSE(M.engineNote().empty());
  // The note must name the exact knob that forced the downgrade.
  EXPECT_NE(M.engineNote().find("CollectMemLog"), std::string::npos)
      << M.engineNote();

  // With one host thread nothing is downgraded, so nothing is noted.
  Cfg.HostThreads = 1;
  Machine S(Cfg);
  S.load(R.Prog);
  ASSERT_EQ(static_cast<int>(S.run(2000000)),
            static_cast<int>(RunStatus::Exited));
  EXPECT_TRUE(S.engineNote().empty()) << S.engineNote();
}

} // namespace
