//===- tests/scaling_test.cpp - Multi-chip scaling and machine properties -------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's Fig. 15 extension: the core line continues across chips
// (128 cores = two 64-core chips; the top router layer plays Fig. 15's
// r4). Teams, placement and determinism must keep working unchanged.
// Plus whole-machine invariants: per-hart retired counts add up, IPC is
// bounded by the core count, and different programs produce different
// event streams.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "dsl/Ast.h"
#include "dsl/CodeGen.h"
#include "sim/Machine.h"
#include "workloads/Phases.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::dsl;
using namespace lbp::sim;

namespace {

std::string indexWriterProgram(unsigned Harts, uint32_t OutAddr) {
  Module M;
  M.global("out", OutAddr, Harts);
  Function *T = M.function("thread", FnKind::Thread);
  const Local *I = T->param("t");
  T->append(M.store(M.add(M.addrOf("out"), M.shl(M.v(I), 2)), 0,
                    M.add(M.v(I), M.c(1))));
  Function *Main = M.function("main", FnKind::Main);
  Main->append(M.parallelFor("thread", Harts));
  return compileModule(M);
}

TEST(Scaling, TwoChipLineRunsA512HartTeam) {
  // 128 cores: the line spans two 64-core chips (Fig. 15).
  constexpr unsigned Cores = 128;
  constexpr unsigned Harts = 4 * Cores;
  SimConfig Cfg = SimConfig::lbp(Cores);
  Cfg.GlobalBankSizeLog2 = 14; // 16 KiB banks: out spans several banks
  assembler::AsmResult R =
      assembler::assemble(indexWriterProgram(Harts, 0x20000000));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  Machine M(Cfg);
  M.load(R.Prog);
  ASSERT_EQ(M.run(10000000), RunStatus::Exited) << M.faultMessage();
  for (unsigned T = 0; T != Harts; ++T)
    ASSERT_EQ(M.debugReadWord(0x20000000 + 4 * T), T + 1) << T;
  // Everything joined back: only hart 0 survives.
  for (unsigned H = 1; H != Harts; ++H)
    ASSERT_EQ(M.hartState(H), HartState::Free) << H;
}

TEST(Scaling, PhasesStayLocalOnTwoChips) {
  workloads::PhasesSpec Spec;
  Spec.NumHarts = 512;
  Spec.WordsPerChunk = 16;
  Spec.BankSizeLog2 = 12;
  assembler::AsmResult R =
      assembler::assemble(workloads::buildPhasesProgram(Spec));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  SimConfig Cfg = SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  Machine M(Cfg);
  M.load(R.Prog);
  ASSERT_EQ(M.run(10000000), RunStatus::Exited) << M.faultMessage();
  EXPECT_EQ(M.remoteAccesses(), 0u);
  for (unsigned T = 0; T < Spec.NumHarts; T += 37)
    EXPECT_EQ(M.debugReadWord(workloads::phasesOutAddress(Spec, T)),
              T * Spec.WordsPerChunk)
        << T;
}

TEST(Scaling, MachineInvariantsHold) {
  constexpr unsigned Cores = 16;
  assembler::AsmResult R =
      assembler::assemble(indexWriterProgram(64, 0x20000000));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  SimConfig Cfg = SimConfig::lbp(Cores);
  Machine M(Cfg);
  M.load(R.Prog);
  ASSERT_EQ(M.run(1000000), RunStatus::Exited);

  uint64_t Sum = 0;
  for (unsigned H = 0; H != Cfg.numHarts(); ++H)
    Sum += M.retiredOnHart(H);
  EXPECT_EQ(Sum, M.retired()) << "per-hart counters must add up";
  EXPECT_LE(M.ipc(), static_cast<double>(Cores))
      << "IPC cannot exceed one per core";
  EXPECT_GT(M.retired(), 64u * 3) << "every member did its work";
}

TEST(Scaling, DifferentProgramsProduceDifferentTraces) {
  auto RunOne = [](uint32_t Value) {
    Module M;
    M.global("out", 0x20000000, 1);
    Function *Main = M.function("main", FnKind::Main);
    Main->append(M.store(M.addrOf("out"), 0,
                         M.c(static_cast<int32_t>(Value))));
    Main->append(M.syncm());
    assembler::AsmResult R = assembler::assemble(compileModule(M));
    Machine Mach(SimConfig::lbp(1));
    Mach.load(R.Prog);
    Mach.run(100000);
    return Mach.traceHash();
  };
  EXPECT_NE(RunOne(1), RunOne(2))
      << "the event hash must reflect program behaviour";
}

TEST(Scaling, TeamsCannotGrowPastTheLastCore) {
  // A 513-member team on 128 cores needs a 129th core: the machine
  // reports the paper's structural limit as a fault, deterministically.
  assembler::AsmResult R =
      assembler::assemble(indexWriterProgram(20, 0x20000000));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  Machine M(SimConfig::lbp(4)); // 16 harts only
  M.load(R.Prog);
  EXPECT_EQ(M.run(1000000), RunStatus::Fault);
  EXPECT_NE(M.faultMessage().find("last core"), std::string::npos)
      << M.faultMessage();
}

} // namespace
