//===- tests/isa_test.cpp - ISA encode/decode/print tests ----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Round-trip properties of the RV32IM + X_PAR binary encoding, register
// naming, hart-reference packing and the disassembler.
//
//===----------------------------------------------------------------------===//

#include "isa/Disasm.h"
#include "isa/Encoding.h"
#include "isa/HartRef.h"
#include "isa/Reg.h"
#include "support/SplitMix64.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::isa;

namespace {

//===----------------------------------------------------------------------===//
// Registers
//===----------------------------------------------------------------------===//

TEST(Reg, NamesRoundTrip) {
  for (unsigned R = 0; R != NumRegs; ++R) {
    std::optional<uint8_t> Back = parseRegName(regName(R));
    ASSERT_TRUE(Back.has_value()) << R;
    EXPECT_EQ(*Back, R);
  }
}

TEST(Reg, NumericAndAliasForms) {
  EXPECT_EQ(parseRegName("x0"), RegZero);
  EXPECT_EQ(parseRegName("x31"), RegT6);
  EXPECT_EQ(parseRegName("fp"), RegS0);
  EXPECT_FALSE(parseRegName("x32").has_value());
  EXPECT_FALSE(parseRegName("y1").has_value());
  EXPECT_FALSE(parseRegName("").has_value());
}

//===----------------------------------------------------------------------===//
// Instruction metadata
//===----------------------------------------------------------------------===//

TEST(InstrInfo, MnemonicLookupCoversEveryOpcode) {
  for (unsigned Op = 1;
       Op != static_cast<unsigned>(Opcode::NumOpcodes); ++Op) {
    const InstrInfo &Info = instrInfo(static_cast<Opcode>(Op));
    std::optional<Opcode> Back = opcodeByMnemonic(Info.Mnemonic);
    ASSERT_TRUE(Back.has_value()) << Info.Mnemonic;
    EXPECT_EQ(*Back, static_cast<Opcode>(Op));
  }
}

TEST(InstrInfo, ControlFlowClassification) {
  Instr Branch{Opcode::BEQ, 0, 1, 2, 16};
  EXPECT_FALSE(Branch.nextPcKnownAtDecode());
  Instr Jal{Opcode::JAL, 1, 0, 0, 16};
  EXPECT_TRUE(Jal.nextPcKnownAtDecode());
  Instr Jalr{Opcode::JALR, 1, 5, 0, 0};
  EXPECT_FALSE(Jalr.nextPcKnownAtDecode());
  Instr PJalr{Opcode::P_JALR, 1, 5, 10, 0};
  EXPECT_FALSE(PJalr.nextPcKnownAtDecode());
  Instr Add{Opcode::ADD, 1, 2, 3, 0};
  EXPECT_TRUE(Add.nextPcKnownAtDecode());
}

TEST(InstrInfo, LoadStoreClassification) {
  EXPECT_TRUE((Instr{Opcode::LW, 1, 2, 0, 0}).isLoad());
  EXPECT_TRUE((Instr{Opcode::P_LWCV, 1, 0, 0, 0}).isLoad());
  EXPECT_TRUE((Instr{Opcode::SW, 0, 2, 3, 0}).isStore());
  EXPECT_TRUE((Instr{Opcode::P_SWCV, 0, 2, 3, 0}).isStore());
  EXPECT_FALSE((Instr{Opcode::P_LWRE, 1, 0, 0, 0}).isLoad());
  EXPECT_FALSE((Instr{Opcode::ADD, 1, 2, 3, 0}).isLoad());
}

//===----------------------------------------------------------------------===//
// Encode/decode round trips
//===----------------------------------------------------------------------===//

/// Returns a legal random instruction for the opcode.
Instr randomInstr(Opcode Op, SplitMix64 &Rng) {
  const InstrInfo &Info = instrInfo(Op);
  Instr I;
  I.Op = Op;
  I.Rd = static_cast<uint8_t>(Rng.nextBelow(32));
  I.Rs1 = static_cast<uint8_t>(Rng.nextBelow(32));
  I.Rs2 = static_cast<uint8_t>(Rng.nextBelow(32));
  switch (Info.Form) {
  case Format::R:
  case Format::XParR:
    break;
  case Format::I:
  case Format::XParI:
    if (Op == Opcode::SLLI || Op == Opcode::SRLI || Op == Opcode::SRAI)
      I.Imm = static_cast<int32_t>(Rng.nextBelow(32));
    else if (Op == Opcode::RDCYCLE || Op == Opcode::RDINSTRET)
      I.Imm = I.Rs1 = 0; // the CSR number is part of the opcode
    else
      I.Imm = static_cast<int32_t>(Rng.nextBelow(4096)) - 2048;
    break;
  case Format::S:
  case Format::XParS:
    I.Imm = static_cast<int32_t>(Rng.nextBelow(4096)) - 2048;
    break;
  case Format::B:
    I.Imm = (static_cast<int32_t>(Rng.nextBelow(4096)) - 2048) * 2;
    break;
  case Format::U:
    I.Imm = static_cast<int32_t>(Rng.nextBelow(1 << 20));
    break;
  case Format::J:
    I.Imm = (static_cast<int32_t>(Rng.nextBelow(1 << 20)) -
             (1 << 19)) *
            2;
    break;
  }
  return I;
}

/// Fields the decoder is expected to reproduce for a format.
void expectSameInstr(const Instr &A, const Instr &B) {
  const InstrInfo &Info = instrInfo(A.Op);
  EXPECT_EQ(A.Op, B.Op);
  if (Info.WritesRd)
    EXPECT_EQ(A.Rd, B.Rd);
  if (Info.ReadsRs1 || Info.Form == Format::I || Info.Form == Format::S ||
      Info.Form == Format::B || Info.Form == Format::XParS)
    EXPECT_EQ(A.Rs1, B.Rs1) << instrInfo(A.Op).Mnemonic;
  if (Info.ReadsRs2)
    EXPECT_EQ(A.Rs2, B.Rs2) << instrInfo(A.Op).Mnemonic;
  if (Info.Form != Format::R && Info.Form != Format::XParR)
    EXPECT_EQ(A.Imm, B.Imm) << instrInfo(A.Op).Mnemonic;
}

class EncodingRoundTrip : public ::testing::TestWithParam<unsigned> {};

TEST_P(EncodingRoundTrip, EveryOpcodeSurvives) {
  Opcode Op = static_cast<Opcode>(GetParam());
  SplitMix64 Rng(GetParam() * 7919 + 1);
  for (unsigned Trial = 0; Trial != 64; ++Trial) {
    Instr I = randomInstr(Op, Rng);
    uint32_t Word = encode(I);
    Instr Back = decode(Word);
    ASSERT_TRUE(Back.isValid())
        << instrInfo(Op).Mnemonic << " word 0x" << std::hex << Word;
    expectSameInstr(I, Back);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllOpcodes, EncodingRoundTrip,
    ::testing::Range(1u, static_cast<unsigned>(Opcode::NumOpcodes)),
    [](const ::testing::TestParamInfo<unsigned> &Info) {
      std::string N(
          instrInfo(static_cast<Opcode>(Info.param)).Mnemonic);
      for (char &C : N)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return N;
    });

TEST(Encoding, InvalidWordsDecodeAsInvalid) {
  EXPECT_FALSE(decode(0x00000000).isValid());
  EXPECT_FALSE(decode(0xFFFFFFFF).isValid());
  // Unused funct3 in the branch major opcode.
  EXPECT_FALSE(decode(0x00002063).isValid());
  // X_PAR register form with out-of-range funct7.
  EXPECT_FALSE(decode((0x3Fu << 25) | XParMajorOpcode).isValid());
}

TEST(Encoding, KnownGoldenWords) {
  // addi sp, sp, -8 == 0xff810113 (standard RISC-V encoding).
  Instr I{Opcode::ADDI, RegSP, RegSP, 0, -8};
  EXPECT_EQ(encode(I), 0xff810113u);
  // jalr x0, 0(ra) == 0x00008067 (ret).
  Instr Ret{Opcode::JALR, RegZero, RegRA, 0, 0};
  EXPECT_EQ(encode(Ret), 0x00008067u);
  // lui a0, 0x20000 == 0x20000537.
  Instr Lui{Opcode::LUI, RegA0, 0, 0, 0x20000};
  EXPECT_EQ(encode(Lui), 0x20000537u);
}

//===----------------------------------------------------------------------===//
// Hart reference word
//===----------------------------------------------------------------------===//

TEST(HartRef, PackAndUnpack) {
  uint32_t Ref = hartRefSet(0xFFFFFFFFu, 13);
  EXPECT_TRUE(hartRefIsValid(Ref));
  EXPECT_EQ(hartRefJoin(Ref), 13u);
  uint32_t Merged = hartRefMerge(Ref, 14);
  EXPECT_EQ(hartRefJoin(Merged), 13u);
  EXPECT_EQ(hartRefSuccessor(Merged), 14u);
}

TEST(HartRef, ExitSentinelIsNotAValidRef) {
  EXPECT_FALSE(hartRefIsValid(HartRefExit));
  EXPECT_FALSE(hartRefIsValid(0));
}

//===----------------------------------------------------------------------===//
// Disassembler
//===----------------------------------------------------------------------===//

TEST(Disasm, PrintsCanonicalSyntax) {
  EXPECT_EQ(printInstr({Opcode::ADDI, RegSP, RegSP, 0, -8}),
            "addi sp, sp, -8");
  EXPECT_EQ(printInstr({Opcode::LW, RegRA, RegSP, 0, 4}),
            "lw ra, 4(sp)");
  EXPECT_EQ(printInstr({Opcode::SW, 0, RegSP, RegRA, 0}),
            "sw ra, 0(sp)");
  EXPECT_EQ(printInstr({Opcode::P_FC, RegT6, 0, 0, 0}), "p_fc t6");
  EXPECT_EQ(printInstr({Opcode::P_JALR, RegRA, RegT0, RegA0, 0}),
            "p_jalr ra, t0, a0");
  EXPECT_EQ(printInstr({Opcode::P_SWCV, 0, RegT6, RegRA, 4}),
            "p_swcv ra, t6, 4");
}

TEST(Disasm, InvalidWordsPrintAsData) {
  EXPECT_EQ(disassembleWord(0), ".word 0x00000000");
}

} // namespace
