//===- tests/fleet_test.cpp - Fleet runner robustness -----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The fleet contract (fleet/Fleet.h; docs/ROBUSTNESS.md "Fleet failure
// taxonomy"): a campaign with crashing and hanging workers terminates,
// retries per policy, resumes from checkpoints bit-identically, and
// emits a canonical aggregate report that is byte-identical across
// repeat invocations. Worker death is real here — children fork() and
// abort() — so this test also exercises the reaping, pipe-drain and
// watchdog paths end to end.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "fleet/Fleet.h"
#include "workloads/Phases.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>

#include <dirent.h>
#include <unistd.h>

using namespace lbp;
using namespace lbp::fleet;

namespace {

/// A private checkpoint directory per test, so parallel test processes
/// can never reap each other's checkpoints.
std::string makeCheckpointDir() {
  std::string Templ = ::testing::TempDir() + "lbp-fleet-XXXXXX";
  std::vector<char> Buf(Templ.begin(), Templ.end());
  Buf.push_back('\0');
  const char *Dir = mkdtemp(Buf.data());
  EXPECT_NE(Dir, nullptr);
  return Dir ? std::string(Dir) : ::testing::TempDir();
}

/// Counts *.ckpt (and .ckpt.tmp) entries left behind in \p Dir.
unsigned countCheckpointFiles(const std::string &Dir) {
  DIR *D = opendir(Dir.c_str());
  if (!D)
    return 0;
  unsigned N = 0;
  while (dirent *E = readdir(D))
    if (std::strstr(E->d_name, ".ckpt"))
      ++N;
  closedir(D);
  return N;
}

std::vector<assembler::Program> sharedImages() {
  workloads::PhasesSpec Spec;
  Spec.NumHarts = 16;
  assembler::AsmResult R =
      assembler::assemble(workloads::buildPhasesProgram(Spec));
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  std::vector<assembler::Program> Images;
  Images.push_back(std::move(R.Prog));
  return Images;
}

std::vector<RunSpec> seedSweep(unsigned Runs, unsigned Delays = 1) {
  std::vector<RunSpec> Specs;
  for (unsigned I = 0; I != Runs; ++I) {
    RunSpec S;
    S.Name = "phases-seed" + std::to_string(I + 1);
    S.Cfg = sim::SimConfig::lbp(4);
    S.Cfg.Faults.Seed = I + 1;
    S.Cfg.Faults.Delays = Delays;
    S.Cfg.Faults.WindowBegin = 1;
    S.Cfg.Faults.WindowEnd = 2000;
    S.DeadlineCycles = 2000000;
    Specs.push_back(std::move(S));
  }
  return Specs;
}

TEST(Fleet, CleanCampaignAllPass) {
  auto Images = sharedImages();
  auto Specs = seedSweep(4);
  FleetConfig FC;
  FC.Workers = 4;

  CampaignResult R = runCampaign(Images, Specs, FC);
  ASSERT_EQ(R.Runs.size(), 4u);
  EXPECT_TRUE(R.Complete);
  for (const RunResult &Run : R.Runs) {
    EXPECT_EQ(static_cast<int>(Run.V), static_cast<int>(Verdict::Pass))
        << Run.Name << ": " << Run.Message;
    EXPECT_GT(Run.Cycles, 0u);
    EXPECT_NE(Run.TraceHash, 0u);
    ASSERT_EQ(Run.Attempts.size(), 1u);
    EXPECT_EQ(static_cast<int>(Run.Attempts[0]),
              static_cast<int>(AttemptOutcome::Completed));
  }
  // Identical config + program => per-run results are a pure function
  // of the seed; spot-check two different seeds diverge in hash or not
  // at all deterministically (reports below pin the exact bytes).
  std::string Json = campaignToJson(R);
  EXPECT_NE(Json.find("\"schema\": \"lbp-fleet-report-v1\""),
            std::string::npos);
  EXPECT_NE(Json.find("\"complete\": true"), std::string::npos);
}

TEST(Fleet, CrashedWorkerRetriesFromCheckpointBitIdentically) {
  auto Images = sharedImages();
  auto Specs = seedSweep(3);

  // Baseline: no injection, no checkpointing.
  FleetConfig Clean;
  Clean.Workers = 3;
  CampaignResult Want = runCampaign(Images, Specs, Clean);
  ASSERT_TRUE(Want.Complete);

  // Run 1's first attempt aborts right after its first checkpoint; the
  // retry restores it and must land on the uninterrupted trace hash.
  FleetConfig FC;
  FC.Workers = 3;
  FC.MaxAttempts = 2;
  FC.CheckpointInterval = 500;
  FC.CheckpointDir = makeCheckpointDir();
  FC.InjectCrashRun = 1;
  CampaignResult Got = runCampaign(Images, Specs, FC);

  ASSERT_TRUE(Got.Complete);
  for (size_t I = 0; I != Got.Runs.size(); ++I) {
    EXPECT_EQ(Got.Runs[I].TraceHash, Want.Runs[I].TraceHash)
        << Got.Runs[I].Name;
    EXPECT_EQ(Got.Runs[I].Cycles, Want.Runs[I].Cycles);
    EXPECT_EQ(Got.Runs[I].Retired, Want.Runs[I].Retired);
  }
  const RunResult &Crashed = Got.Runs[1];
  ASSERT_EQ(Crashed.Attempts.size(), 2u);
  EXPECT_EQ(static_cast<int>(Crashed.Attempts[0]),
            static_cast<int>(AttemptOutcome::Crashed));
  EXPECT_EQ(static_cast<int>(Crashed.Attempts[1]),
            static_cast<int>(AttemptOutcome::Completed));
  EXPECT_TRUE(Crashed.ResumedFromCheckpoint);
  // No checkpoint survives a resolved campaign.
  EXPECT_EQ(countCheckpointFiles(FC.CheckpointDir), 0u)
      << "stale checkpoint in " << FC.CheckpointDir;
  rmdir(FC.CheckpointDir.c_str());
}

TEST(Fleet, HungWorkerIsKilledAndRetried) {
  auto Images = sharedImages();
  auto Specs = seedSweep(2);
  FleetConfig FC;
  FC.Workers = 2;
  FC.MaxAttempts = 2;
  FC.WallTimeoutMs = 300; // host backstop; the retry is uninjected
  FC.BackoffBaseMs = 1;
  FC.InjectHangRun = 0;
  CampaignResult R = runCampaign(Images, Specs, FC);

  ASSERT_TRUE(R.Complete);
  const RunResult &Hung = R.Runs[0];
  EXPECT_EQ(static_cast<int>(Hung.V), static_cast<int>(Verdict::Pass))
      << Hung.Message;
  ASSERT_EQ(Hung.Attempts.size(), 2u);
  EXPECT_EQ(static_cast<int>(Hung.Attempts[0]),
            static_cast<int>(AttemptOutcome::Hung));
  EXPECT_EQ(static_cast<int>(Hung.Attempts[1]),
            static_cast<int>(AttemptOutcome::Completed));
}

TEST(Fleet, ExhaustedRetriesDegradeToIncomplete) {
  auto Images = sharedImages();
  auto Specs = seedSweep(2);
  FleetConfig FC;
  FC.Workers = 2;
  FC.MaxAttempts = 1; // the injected crash has no retry to recover in
  FC.InjectCrashRun = 0;
  CampaignResult R = runCampaign(Images, Specs, FC);

  EXPECT_FALSE(R.Complete);
  EXPECT_EQ(static_cast<int>(R.Runs[0].V),
            static_cast<int>(Verdict::Incomplete));
  ASSERT_EQ(R.Runs[0].Attempts.size(), 1u);
  EXPECT_EQ(static_cast<int>(R.Runs[0].Attempts[0]),
            static_cast<int>(AttemptOutcome::Crashed));
  // The other run is unaffected: crash isolation.
  EXPECT_EQ(static_cast<int>(R.Runs[1].V),
            static_cast<int>(Verdict::Pass));
  std::string Json = campaignToJson(R);
  EXPECT_NE(Json.find("\"verdict\": \"incomplete\""), std::string::npos);
  EXPECT_NE(Json.find("\"status\": null"), std::string::npos);
  EXPECT_NE(Json.find("\"complete\": false"), std::string::npos);
}

TEST(Fleet, DeadlineIsDeterministicTimeoutDistinctFromLivelock) {
  auto Images = sharedImages();
  auto Specs = seedSweep(1, /*Delays=*/0);
  Specs[0].DeadlineCycles = 64; // far too few cycles to finish
  FleetConfig FC;
  FC.Workers = 1;
  CampaignResult R = runCampaign(Images, Specs, FC);

  ASSERT_TRUE(R.Complete);
  EXPECT_EQ(static_cast<int>(R.Runs[0].V),
            static_cast<int>(Verdict::Deadline));
  EXPECT_EQ(static_cast<int>(R.Runs[0].Status),
            static_cast<int>(sim::RunStatus::Deadline));
  EXPECT_EQ(R.Runs[0].Cycles, 64u);
  std::string Json = campaignToJson(R);
  EXPECT_NE(Json.find("\"verdict\": \"deadline\""), std::string::npos);
}

TEST(Fleet, RepeatCampaignsEmitByteIdenticalReports) {
  auto Images = sharedImages();
  auto Specs = seedSweep(3);
  FleetConfig FC;
  FC.Workers = 3;
  FC.MaxAttempts = 2;
  FC.CheckpointInterval = 700;
  FC.CheckpointDir = makeCheckpointDir();
  FC.BackoffBaseMs = 1;
  FC.InjectCrashRun = 2;

  std::string First = campaignToJson(runCampaign(Images, Specs, FC));
  std::string Second = campaignToJson(runCampaign(Images, Specs, FC));
  EXPECT_EQ(First, Second)
      << "aggregate report not deterministic across invocations";
  rmdir(FC.CheckpointDir.c_str());
}

} // namespace
