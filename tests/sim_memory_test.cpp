//===- tests/sim_memory_test.cpp - Banks and interconnect tests ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Unit tests of the bank storage and of the link-reservation timing
// model: latencies, per-link bandwidth, router-tree path lengths and
// determinism of the arbitration.
//
//===----------------------------------------------------------------------===//

#include "sim/Memory.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::sim;

namespace {

//===----------------------------------------------------------------------===//
// MemorySystem
//===----------------------------------------------------------------------===//

TEST(MemorySystem, ByteHalfWordAccess) {
  MemorySystem M(SimConfig::lbp(4));
  M.writeGlobal(1, 0x100, 0xDEADBEEF, 4);
  EXPECT_EQ(M.readGlobal(1, 0x100, 4), 0xDEADBEEFu);
  EXPECT_EQ(M.readGlobal(1, 0x100, 2), 0xBEEFu);
  EXPECT_EQ(M.readGlobal(1, 0x102, 2), 0xDEADu);
  EXPECT_EQ(M.readGlobal(1, 0x103, 1), 0xDEu);
  M.writeGlobal(1, 0x101, 0x42, 1);
  EXPECT_EQ(M.readGlobal(1, 0x100, 4), 0xDEAD42EFu);
}

TEST(MemorySystem, BanksAreIndependent) {
  MemorySystem M(SimConfig::lbp(4));
  M.writeGlobal(0, 0, 1, 4);
  M.writeGlobal(1, 0, 2, 4);
  M.writeLocal(0, 0, 3, 4);
  M.writeLocal(1, 0, 4, 4);
  EXPECT_EQ(M.readGlobal(0, 0, 4), 1u);
  EXPECT_EQ(M.readGlobal(1, 0, 4), 2u);
  EXPECT_EQ(M.readLocal(0, 0, 4), 3u);
  EXPECT_EQ(M.readLocal(1, 0, 4), 4u);
}

TEST(MemorySystem, CodeImageGrowsAndReadsBack) {
  MemorySystem M(SimConfig::lbp(1));
  M.writeCode(0, 0x13);
  M.writeCode(1, 0x01);
  EXPECT_EQ(M.fetchWord(0), 0x113u);
  EXPECT_EQ(M.fetchWord(100), 0u) << "reads beyond the image are zero";
}

//===----------------------------------------------------------------------===//
// Interconnect timing
//===----------------------------------------------------------------------===//

SimConfig cfg(unsigned Cores) {
  SimConfig C = SimConfig::lbp(Cores);
  return C;
}

TEST(Interconnect, OwnBankUsesTheLocalPort) {
  Interconnect N(cfg(4));
  auto P = N.routeGlobal(2, 2, 100);
  EXPECT_EQ(P.BankCycle, 100 + cfg(4).GlobalLocalPortLatency);
  EXPECT_EQ(P.ResponseCycle, P.BankCycle);
  EXPECT_EQ(N.contentionCycles(), 0u);
}

TEST(Interconnect, PathLengthGrowsWithTreeDistance) {
  SimConfig C = cfg(64);
  Interconnect N(C);
  // Same r1 group (core 0 -> bank 2).
  uint64_t SameGroup = N.routeGlobal(0, 2, 1000).ResponseCycle - 1000;
  // Same r2 quad, different group (core 0 -> bank 6).
  uint64_t SameQuad = N.routeGlobal(0, 6, 2000).ResponseCycle - 2000;
  // Cross r3 (core 0 -> bank 63).
  uint64_t CrossR3 = N.routeGlobal(0, 63, 3000).ResponseCycle - 3000;
  EXPECT_LT(SameGroup, SameQuad);
  EXPECT_LT(SameQuad, CrossR3);
}

TEST(Interconnect, BankPortServesOneRequestPerCycle) {
  SimConfig C = cfg(16);
  Interconnect N(C);
  // Eight different cores hit bank 9's port at the same cycle.
  uint64_t Last = 0;
  std::vector<uint64_t> ServeCycles;
  for (unsigned Core = 0; Core != 8; ++Core) {
    if (Core == 9)
      continue;
    ServeCycles.push_back(N.routeGlobal(Core, 9, 500).BankCycle);
  }
  std::sort(ServeCycles.begin(), ServeCycles.end());
  for (size_t I = 1; I != ServeCycles.size(); ++I) {
    EXPECT_GE(ServeCycles[I], ServeCycles[I - 1] + 1)
        << "bank port double-booked";
    Last = ServeCycles[I];
  }
  (void)Last;
}

TEST(Interconnect, LinkCapacityBoundsConcurrentTraffic) {
  // With capacity 1 the same-cycle requests through one down-link
  // serialize fully; with capacity 4 they pack four per cycle.
  for (unsigned Cap : {1u, 4u}) {
    SimConfig C = cfg(16);
    C.RouterLinkCapacity = Cap;
    Interconnect N(C);
    // Cores 0..3 (group 0) all target bank 8 (group 2): every request
    // crosses the r2 and descends into group 2 through one link.
    std::vector<uint64_t> Served;
    for (unsigned Core = 0; Core != 4; ++Core)
      Served.push_back(N.routeGlobal(Core, 8, 100).BankCycle);
    std::sort(Served.begin(), Served.end());
    uint64_t Spread = Served.back() - Served.front();
    if (Cap == 1)
      EXPECT_GE(Spread, 3u);
    else
      EXPECT_LE(Spread, 3u);
  }
}

TEST(Interconnect, ForwardLinkIsOnePerCycle) {
  Interconnect N(cfg(4));
  uint64_t A = N.routeForward(1, 2, 50);
  uint64_t B = N.routeForward(1, 2, 50);
  uint64_t C = N.routeForward(1, 2, 50);
  EXPECT_EQ(B, A + 1);
  EXPECT_EQ(C, B + 1);
  // Same-core "hop" does not use the link.
  EXPECT_EQ(N.routeForward(3, 3, 50), 51u);
}

TEST(Interconnect, BackwardLineAccumulatesPerHop) {
  SimConfig C = cfg(8);
  Interconnect N(C);
  uint64_t OneHop = N.routeBackward(3, 2, 100) - 100;
  uint64_t FiveHops = N.routeBackward(7, 2, 200) - 200;
  EXPECT_EQ(OneHop, C.BackwardHopLatency);
  EXPECT_EQ(FiveHops, 5 * C.BackwardHopLatency);
}

TEST(Interconnect, IdenticalRequestSequencesTimeIdentically) {
  auto Run = [] {
    Interconnect N(cfg(16));
    std::vector<uint64_t> Times;
    for (unsigned I = 0; I != 100; ++I)
      Times.push_back(
          N.routeGlobal(I % 16, (I * 7) % 16, 10 + I / 3).ResponseCycle);
    return Times;
  };
  EXPECT_EQ(Run(), Run());
}

TEST(Interconnect, ContentionCounterTracksQueueing) {
  SimConfig C = cfg(16);
  Interconnect N(C);
  EXPECT_EQ(N.contentionCycles(), 0u);
  for (unsigned I = 0; I != 32; ++I)
    N.routeGlobal(0, 9, 1000);
  EXPECT_GT(N.contentionCycles(), 0u);
}

} // namespace
