//===- tests/sim_machine_test.cpp - Machine pipeline behaviour --------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// End-to-end pipeline tests driven by hand-written assembly: sequential
// semantics, memory, control flow, the X_PAR fork/join protocol, p_syncm,
// p_swre/p_lwre synchronization and the determinism guarantee.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "isa/AddressMap.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::sim;

namespace {

/// Assembles \p Source or fails the test with the diagnostics.
assembler::Program assembleOrDie(const std::string &Source) {
  assembler::AsmResult R = assembler::assemble(Source);
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  return std::move(R.Prog);
}

/// Builds a machine, loads \p Source and runs it to completion.
struct RunResult {
  RunStatus Status;
  uint64_t Cycles;
  uint64_t Retired;
  uint64_t Hash;
};

RunResult runProgram(const std::string &Source, Machine &M,
                     uint64_t MaxCycles = 2000000) {
  M.load(assembleOrDie(Source));
  RunStatus S = M.run(MaxCycles);
  return {S, M.cycles(), M.retired(), M.traceHash()};
}

RunResult runProgram(const std::string &Source, unsigned Cores = 4,
                     uint64_t MaxCycles = 2000000) {
  Machine M(SimConfig::lbp(Cores));
  return runProgram(Source, M, MaxCycles);
}

// The standard exit idiom: main must have been entered with ra=0, t0=-1.
const char *Epilogue = R"(
exit:
    li ra, 0
    li t0, -1
    p_ret
)";

TEST(Machine, ExitsImmediately) {
  RunResult R = runProgram(std::string("main:\n") + Epilogue);
  EXPECT_EQ(R.Status, RunStatus::Exited);
  EXPECT_EQ(R.Retired, 3u);
}

TEST(Machine, ArithmeticAndStore) {
  std::string Src = R"(
    .equ RESULT, 0x20000000
main:
    li a0, 21
    li a1, 2
    mul a2, a0, a1
    la a3, RESULT
    sw a2, 0(a3)
    p_syncm
)" + std::string(Epilogue);
  Machine M(SimConfig::lbp(4));
  RunResult R = runProgram(Src, M);
  ASSERT_EQ(R.Status, RunStatus::Exited) << M.faultMessage();
  EXPECT_EQ(M.debugReadWord(0x20000000), 42u);
}

TEST(Machine, LoadStoreRoundTripAllWidths) {
  std::string Src = R"(
    .equ BUF, 0x20000100
main:
    la a0, BUF
    li a1, -2
    sw a1, 0(a0)
    sh a1, 4(a0)
    sb a1, 8(a0)
    p_syncm
    lw a2, 0(a0)
    lh a3, 4(a0)
    lb a4, 8(a0)
    lhu a5, 4(a0)
    lbu a6, 8(a0)
    la t1, BUF+12
    sw a2, 0(t1)
    sw a3, 4(t1)
    sw a4, 8(t1)
    sw a5, 12(t1)
    sw a6, 16(t1)
    p_syncm
)" + std::string(Epilogue);
  Machine M(SimConfig::lbp(4));
  RunResult R = runProgram(Src, M);
  ASSERT_EQ(R.Status, RunStatus::Exited) << M.faultMessage();
  EXPECT_EQ(M.debugReadWord(0x2000010c), 0xFFFFFFFEu);
  EXPECT_EQ(M.debugReadWord(0x20000110), 0xFFFFFFFEu);
  EXPECT_EQ(M.debugReadWord(0x20000114), 0xFFFFFFFEu);
  EXPECT_EQ(M.debugReadWord(0x20000118), 0x0000FFFEu);
  EXPECT_EQ(M.debugReadWord(0x2000011c), 0x000000FEu);
}

TEST(Machine, LoopSumsIntegers) {
  // sum 1..10 = 55.
  std::string Src = R"(
main:
    li a0, 0
    li a1, 1
    li a2, 11
loop:
    add a0, a0, a1
    addi a1, a1, 1
    bne a1, a2, loop
    la a3, 0x20000040
    sw a0, 0(a3)
    p_syncm
)" + std::string(Epilogue);
  Machine M(SimConfig::lbp(4));
  RunResult R = runProgram(Src, M);
  ASSERT_EQ(R.Status, RunStatus::Exited) << M.faultMessage();
  EXPECT_EQ(M.debugReadWord(0x20000040), 55u);
}

TEST(Machine, FunctionCallAndReturn) {
  std::string Src = R"(
main:
    addi sp, sp, -8
    sw ra, 0(sp)
    sw t0, 4(sp)
    li a0, 5
    call double_it
    la a1, 0x20000080
    sw a0, 0(a1)
    p_syncm
    lw ra, 0(sp)
    lw t0, 4(sp)
    addi sp, sp, 8
    p_ret

double_it:
    add a0, a0, a0
    ret
)";
  // main is entered with ra=0, t0=-1, so its final p_ret exits.
  Machine M(SimConfig::lbp(4));
  RunResult R = runProgram(Src, M);
  ASSERT_EQ(R.Status, RunStatus::Exited) << M.faultMessage();
  EXPECT_EQ(M.debugReadWord(0x20000080), 10u);
}

// The full fork protocol of paper Fig. 8: fork a hart on the current
// core, run `child` on the forking hart, continue on the new hart.
TEST(Machine, ForkOnCurrentRunsChildAndContinuation) {
  // Hart 0 is the team head (p_set names it), runs `child` and parks at
  // child's p_ret; the continuation hart's p_ret carries ra = rp back.
  std::string Src2 = R"(
    .equ CHILD_FLAG, 0x20000200
    .equ CONT_FLAG,  0x20000204
main:
    li t0, -1
    addi sp, sp, -8
    sw ra, 0(sp)
    sw t0, 4(sp)
    p_set t0
    la ra, rp               # join address for the team
    p_fc t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    la a0, child
    p_jalr ra, t0, a0
    p_lwcv ra, 0            # continuation hart starts here
    p_lwcv t0, 4
    la a1, CONT_FLAG
    li a2, 7
    sw a2, 0(a1)
    p_syncm
    p_ret                   # ra = rp, join = hart 0: send join, end hart

rp: lw ra, 0(sp)
    lw t0, 4(sp)
    addi sp, sp, 8
    p_ret                   # ra == 0 && t0 == -1: exit

child:
    la a1, CHILD_FLAG
    li a2, 9
    sw a2, 0(a1)
    p_syncm
    p_ret                   # ra == 0, join == current: head waits
)";
  Machine M(SimConfig::lbp(4));
  RunResult R = runProgram(Src2, M);
  ASSERT_EQ(R.Status, RunStatus::Exited) << M.faultMessage();
  EXPECT_EQ(M.debugReadWord(0x20000200), 9u);
  EXPECT_EQ(M.debugReadWord(0x20000204), 7u);
}

TEST(Machine, SwreLwreProducerConsumer) {
  // Hart 0 forks hart 1; hart 1 (the continuation) produces a value with
  // p_swre into hart 0's result slot 2; hart 0's child code consumes it
  // with p_lwre before parking.
  std::string Src = R"(
    .equ OUT, 0x20000300
main:
    li t0, -1
    addi sp, sp, -8
    sw ra, 0(sp)
    sw t0, 4(sp)
    p_set t0
    la ra, rp
    p_fc t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    la a0, child
    p_jalr ra, t0, a0
    p_lwcv ra, 0            # continuation (hart 1)
    p_lwcv t0, 4
    li a2, 1234
    srli a3, t0, 16         # extract the join hart id from t0
    li a4, 0x7fff
    and a3, a3, a4
    p_swre a2, a3, 2        # send 1234 to the join hart's slot 2
    p_ret                   # join back to rp on hart 0

rp: lw ra, 0(sp)
    lw t0, 4(sp)
    addi sp, sp, 8
    p_ret                   # exit

child:                      # runs on hart 0
    p_lwre a5, 2            # blocks until the value arrives
    la a6, OUT
    sw a5, 0(a6)
    p_syncm
    p_ret                   # head waits for the join
)";
  Machine M(SimConfig::lbp(4));
  RunResult R = runProgram(Src, M);
  ASSERT_EQ(R.Status, RunStatus::Exited) << M.faultMessage();
  EXPECT_EQ(M.debugReadWord(0x20000300), 1234u);
}

TEST(Machine, CycleDeterminism) {
  std::string Src = R"(
main:
    li a0, 0
    li a1, 1
    li a2, 101
loop:
    add a0, a0, a1
    addi a1, a1, 1
    mul a3, a0, a1
    la a4, 0x20000400
    sw a3, 0(a4)
    bne a1, a2, loop
    p_syncm
)" + std::string(Epilogue);
  RunResult R1 = runProgram(Src);
  RunResult R2 = runProgram(Src);
  ASSERT_EQ(R1.Status, RunStatus::Exited);
  EXPECT_EQ(R1.Cycles, R2.Cycles);
  EXPECT_EQ(R1.Retired, R2.Retired);
  EXPECT_EQ(R1.Hash, R2.Hash);
}

TEST(Machine, FaultsOnInvalidInstruction) {
  // Jumping into zeroed memory decodes an invalid instruction.
  std::string Src = R"(
main:
    la a0, 0x1000
    jr a0
)";
  Machine M(SimConfig::lbp(4));
  RunResult R = runProgram(Src, M);
  EXPECT_EQ(R.Status, RunStatus::Fault);
  EXPECT_FALSE(M.faultMessage().empty());
}

TEST(Machine, LivelockIsDetected) {
  // p_lwre on a slot nobody fills can never issue.
  std::string Src = R"(
main:
    p_lwre a0, 0
    p_ret
)";
  SimConfig Cfg = SimConfig::lbp(4);
  Cfg.ProgressGuard = 5000;
  Machine M(Cfg);
  RunResult R = runProgram(Src, M);
  EXPECT_EQ(R.Status, RunStatus::Livelock);
}

TEST(Machine, SyncmOrdersStoreLoadThroughMemory) {
  // Without p_syncm the load could be reordered before the store; the
  // conservative same-word stall plus p_syncm make the value visible.
  std::string Src = R"(
main:
    la a0, 0x20000500
    li a1, 77
    sw a1, 0(a0)
    p_syncm
    lw a2, 0(a0)
    la a3, 0x20000504
    sw a2, 0(a3)
    p_syncm
)" + std::string(Epilogue);
  Machine M(SimConfig::lbp(4));
  RunResult R = runProgram(Src, M);
  ASSERT_EQ(R.Status, RunStatus::Exited) << M.faultMessage();
  EXPECT_EQ(M.debugReadWord(0x20000504), 77u);
}

} // namespace
