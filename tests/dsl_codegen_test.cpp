//===- tests/dsl_codegen_test.cpp - Code-quality golden checks -------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Checks the *shape* of emitted code: constant folding, immediate-form
// selection, loop structure, register-save discipline. The goal is to
// keep the compiler honest about instruction counts — the currency every
// paper number is denominated in.
//
//===----------------------------------------------------------------------===//

#include "dsl/Ast.h"
#include "dsl/CodeGen.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::dsl;

namespace {

/// Number of instruction lines in a function's body (between its label
/// and the closing control transfer), excluding labels and comments.
unsigned countInstructions(const std::string &Asm,
                           const std::string &FnLabel) {
  size_t Start = Asm.find(FnLabel + ":");
  EXPECT_NE(Start, std::string::npos) << Asm;
  unsigned Count = 0;
  size_t Pos = Asm.find('\n', Start) + 1;
  while (Pos < Asm.size()) {
    size_t End = Asm.find('\n', Pos);
    std::string Line = Asm.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Line.empty() || Line.back() == ':')
      continue;
    std::string Trimmed = Line.substr(Line.find_first_not_of(' '));
    if (Trimmed.rfind("#", 0) == 0)
      continue;
    ++Count;
    if (Trimmed.rfind("ret", 0) == 0 || Trimmed.rfind("p_ret", 0) == 0)
      break;
  }
  return Count;
}

TEST(DslCodeGen, ConstantsFoldAtBuildTime) {
  Module M;
  // (3 + 4) * 8 - (64 >> 2) folds to a single li.
  const Expr *E = M.sub(M.mul(M.add(M.c(3), M.c(4)), M.c(8)),
                        M.bin(BinOp::Shr, M.c(64), M.c(2)));
  EXPECT_EQ(E->K, Expr::Kind::Const);
  EXPECT_EQ(E->IVal, 40);
}

TEST(DslCodeGen, AddZeroIsElided) {
  Module M;
  Function *F = M.function("f");
  const Local *X = F->param("x");
  // x + 0 folds to x itself (the identical node).
  const Expr *V = M.v(X);
  EXPECT_EQ(M.add(V, M.c(0)), V);
  EXPECT_EQ(M.bin(BinOp::Shl, V, M.c(0)), V);
}

TEST(DslCodeGen, DivisionByZeroIsNotFolded) {
  Module M;
  const Expr *E = M.bin(BinOp::Div, M.c(7), M.c(0));
  EXPECT_EQ(E->K, Expr::Kind::Bin) << "runtime semantics preserved";
}

TEST(DslCodeGen, ImmediateFormsAreSelected) {
  Module M;
  Function *F = M.function("f", FnKind::Normal);
  const Local *X = F->param("x");
  F->append(M.ret(M.add(M.v(X), M.c(5))));
  Function *Main = M.function("main", FnKind::Main);
  (void)Main;
  std::string Asm = compileModule(M);
  EXPECT_NE(Asm.find("addi a0, a0, 5"), std::string::npos) << Asm;
  EXPECT_EQ(Asm.find("li t1, 5"), std::string::npos)
      << "no needless materialization:\n" << Asm;
}

TEST(DslCodeGen, LeafFunctionsSaveNothing) {
  Module M;
  Function *F = M.function("leaf", FnKind::Normal);
  const Local *X = F->param("x");
  F->append(M.ret(M.mul(M.v(X), M.v(X))));
  Function *Main = M.function("main", FnKind::Main);
  (void)Main;
  std::string Asm = compileModule(M);
  // leaf: mul + ret and nothing else.
  EXPECT_EQ(countInstructions(Asm, "leaf"), 2u) << Asm;
}

TEST(DslCodeGen, CallersSaveCalleeSavedRegisters) {
  Module M;
  Function *F = M.function("caller", FnKind::Normal);
  const Local *A = F->local("a");
  F->append(M.assign(A, M.c(1)));
  F->append(M.call("leaf", {M.v(A)}, A));
  F->append(M.ret(M.v(A)));
  Function *Leaf = M.function("leaf", FnKind::Normal);
  const Local *X = Leaf->param("x");
  Leaf->append(M.ret(M.v(X)));
  Function *Main = M.function("main", FnKind::Main);
  (void)Main;
  std::string Asm = compileModule(M);
  // caller keeps `a` in s0, so it must spill ra and s0.
  EXPECT_NE(Asm.find("sw ra, 0(sp)"), std::string::npos) << Asm;
  EXPECT_NE(Asm.find("sw s0, 4(sp)"), std::string::npos) << Asm;
  EXPECT_NE(Asm.find("lw s0, 4(sp)"), std::string::npos) << Asm;
}

TEST(DslCodeGen, WhileLoopsAreBottomTested) {
  Module M;
  Function *F = M.function("f", FnKind::Normal);
  const Local *I = F->param("i");
  F->append(
      M.whileStmt(CmpOp::Ne, M.v(I), M.c(0),
                  {M.assign(I, M.sub(M.v(I), M.c(1)))}));
  F->append(M.ret(M.v(I)));
  Function *Main = M.function("main", FnKind::Main);
  (void)Main;
  std::string Asm = compileModule(M);
  // One conditional branch, one entry jump — no unconditional
  // back-branch in the loop body.
  size_t FirstBne = Asm.find("bne");
  EXPECT_NE(FirstBne, std::string::npos);
  EXPECT_EQ(Asm.find("bne", FirstBne + 1), std::string::npos)
      << "exactly one branch per loop:\n" << Asm;
}

TEST(DslCodeGen, ComparisonsAgainstZeroUseTheZeroRegister) {
  Module M;
  Function *F = M.function("f", FnKind::Normal);
  const Local *I = F->param("i");
  F->append(M.ifStmt(CmpOp::Eq, M.v(I), M.c(0), {M.ret(M.c(1))}));
  F->append(M.ret(M.c(2)));
  Function *Main = M.function("main", FnKind::Main);
  (void)Main;
  std::string Asm = compileModule(M);
  EXPECT_NE(Asm.find("bne a0, zero"), std::string::npos) << Asm;
}

} // namespace
