//===- tests/asm_test.cpp - Assembler tests --------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Directives, labels, expressions, pseudo-instructions, branch offsets,
// error reporting, and the print->assemble round trip.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "isa/Disasm.h"
#include "isa/Encoding.h"
#include "isa/Reg.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::assembler;

namespace {

Program assembleOk(const std::string &Src) {
  AsmResult R = assemble(Src);
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  return std::move(R.Prog);
}

std::vector<std::string> errorsOf(const std::string &Src) {
  AsmResult R = assemble(Src);
  std::vector<std::string> Msgs;
  for (const AsmError &E : R.Errors)
    Msgs.push_back(E.Message);
  return Msgs;
}

TEST(Asm, EmptyAndCommentsOnly) {
  Program P = assembleOk("# nothing\n\n  // also nothing\n");
  EXPECT_TRUE(P.segments().empty());
}

TEST(Asm, SimpleInstructionEncoding) {
  Program P = assembleOk("main:\n  addi sp, sp, -8\n  ret\n");
  EXPECT_EQ(P.readWord(0), 0xff810113u);
  EXPECT_EQ(P.readWord(4), 0x00008067u);
  EXPECT_EQ(P.entry(), 0u);
}

TEST(Asm, LabelsAndBranchOffsets) {
  Program P = assembleOk(R"(
main:
loop:
    addi a0, a0, 1
    bne a0, a1, loop
    j main
)");
  isa::Instr B = isa::decode(P.readWord(4));
  EXPECT_EQ(B.Op, isa::Opcode::BNE);
  EXPECT_EQ(B.Imm, -4);
  isa::Instr J = isa::decode(P.readWord(8));
  EXPECT_EQ(J.Op, isa::Opcode::JAL);
  EXPECT_EQ(J.Rd, 0);
  EXPECT_EQ(J.Imm, -8);
}

TEST(Asm, LiExpansionSizes) {
  // Small immediates take one instruction, large ones two, lui-only
  // values one.
  Program P1 = assembleOk("main: li a0, 42\n");
  EXPECT_EQ(P1.textSize(), 4u);
  Program P2 = assembleOk("main: li a0, 0x12345\n");
  EXPECT_EQ(P2.textSize(), 8u);
  Program P3 = assembleOk("main: li a0, 0x20000000\n");
  EXPECT_EQ(P3.textSize(), 4u);
}

TEST(Asm, LiLoadsExactValues) {
  struct Case {
    int64_t Value;
  } Cases[] = {{0},      {1},          {-1},      {2047},      {-2048},
               {2048},   {-2049},      {0x7FFF},  {0x12345678}, {-559038737},
               {INT32_MAX}, {INT32_MIN}, {0x800},  {0xFFF},     {0x1000}};
  for (const Case &C : Cases) {
    Program P = assembleOk("main: li a0, " + std::to_string(C.Value) +
                           "\n");
    // Interpret the expansion by hand.
    isa::Instr I1 = isa::decode(P.readWord(0));
    int32_t Result;
    if (I1.Op == isa::Opcode::ADDI) {
      Result = I1.Imm;
    } else {
      ASSERT_EQ(I1.Op, isa::Opcode::LUI);
      Result = static_cast<int32_t>(static_cast<uint32_t>(I1.Imm) << 12);
      if (P.textSize() == 8) {
        isa::Instr I2 = isa::decode(P.readWord(4));
        ASSERT_EQ(I2.Op, isa::Opcode::ADDI);
        // Wraparound add, as the hardware does it: lui 0x80000 plus a
        // negative addi overflows int32.
        Result = static_cast<int32_t>(static_cast<uint32_t>(Result) +
                                      static_cast<uint32_t>(I2.Imm));
      }
    }
    EXPECT_EQ(Result, static_cast<int32_t>(C.Value)) << C.Value;
  }
}

TEST(Asm, LaResolvesSymbols) {
  Program P = assembleOk(R"(
    .data 0x20001234
value:
    .word 7
    .text
main:
    la a0, value
)");
  isa::Instr Lui = isa::decode(P.readWord(0));
  isa::Instr Addi = isa::decode(P.readWord(4));
  uint32_t Addr = (static_cast<uint32_t>(Lui.Imm) << 12) +
                  static_cast<uint32_t>(Addi.Imm);
  EXPECT_EQ(Addr, 0x20001234u);
}

TEST(Asm, EquAndExpressions) {
  Program P = assembleOk(R"(
    .equ BASE, 0x1000
    .equ OFF, BASE + 16
main:
    li a0, OFF
    lw a1, OFF-4096(a0)
)");
  isa::Instr Li = isa::decode(P.readWord(0));
  EXPECT_EQ(Li.Imm << 12 | 0, 0x1000); // lui form of 0x1010? see below
  // OFF = 0x1010 needs lui+addi; just check the load offset.
  isa::Instr Lw = isa::decode(P.readWord(P.textSize() - 4));
  EXPECT_EQ(Lw.Op, isa::Opcode::LW);
  EXPECT_EQ(Lw.Imm, 0x1010 - 4096);
}

TEST(Asm, DataDirectives) {
  Program P = assembleOk(R"(
    .data 0x20000000
a:  .word 1, 2, 3
b:  .space 8
c:  .fill 3, -1
d:  .word 9
)");
  EXPECT_EQ(P.readWord(0x20000000), 1u);
  EXPECT_EQ(P.readWord(0x20000004), 2u);
  EXPECT_EQ(P.readWord(0x20000008), 3u);
  EXPECT_EQ(P.readWord(0x2000000c), 0u);
  EXPECT_EQ(P.readWord(0x20000014), 0xFFFFFFFFu);
  EXPECT_EQ(P.readWord(0x20000020), 9u);
  EXPECT_EQ(*P.lookup("b"), 0x2000000cu);
  EXPECT_EQ(*P.lookup("d"), 0x20000020u);
}

TEST(Asm, AlignDirective) {
  Program P = assembleOk(R"(
    .data 0x20000000
    .space 5
    .align 3
x:  .word 1
)");
  EXPECT_EQ(*P.lookup("x"), 0x20000008u);
}

TEST(Asm, SectionsInterleave) {
  Program P = assembleOk(R"(
    .text
main:
    nop
    .data 0x20000100
v:  .word 5
    .text
    ret
)");
  // The second .text continues after the nop.
  isa::Instr Ret = isa::decode(P.readWord(4));
  EXPECT_EQ(Ret.Op, isa::Opcode::JALR);
  EXPECT_EQ(P.readWord(0x20000100), 5u);
}

TEST(Asm, BranchPseudos) {
  Program P = assembleOk(R"(
main:
    beqz a0, main
    bnez a1, main
    bgt a2, a3, main
    bleu a4, a5, main
)");
  isa::Instr I0 = isa::decode(P.readWord(0));
  EXPECT_EQ(I0.Op, isa::Opcode::BEQ);
  EXPECT_EQ(I0.Rs2, 0);
  isa::Instr I2 = isa::decode(P.readWord(8));
  EXPECT_EQ(I2.Op, isa::Opcode::BLT); // swapped operands
  EXPECT_EQ(I2.Rs1, isa::RegA3);
  EXPECT_EQ(I2.Rs2, isa::RegA2);
  isa::Instr I3 = isa::decode(P.readWord(12));
  EXPECT_EQ(I3.Op, isa::Opcode::BGEU);
  EXPECT_EQ(I3.Rs1, isa::RegA5);
}

TEST(Asm, PRetPseudo) {
  Program P = assembleOk("main: p_ret\n");
  isa::Instr I = isa::decode(P.readWord(0));
  EXPECT_EQ(I.Op, isa::Opcode::P_JALR);
  EXPECT_EQ(I.Rd, 0);
  EXPECT_EQ(I.Rs1, isa::RegRA);
  EXPECT_EQ(I.Rs2, isa::RegT0);
}

TEST(Asm, ErrorsAreReportedWithLines) {
  AsmResult R = assemble("main:\n  nop\n  frobnicate a0\n");
  ASSERT_EQ(R.Errors.size(), 1u);
  EXPECT_EQ(R.Errors[0].Line, 3u);
  EXPECT_NE(R.Errors[0].Message.find("frobnicate"), std::string::npos);

  // Range problems surface in the second pass with their line.
  AsmResult R2 = assemble("main:\n  addi a0, a0, 99999\n");
  ASSERT_EQ(R2.Errors.size(), 1u);
  EXPECT_EQ(R2.Errors[0].Line, 2u);
  EXPECT_NE(R2.Errors[0].Message.find("out of range"), std::string::npos);
}

TEST(Asm, UndefinedSymbolIsAnError) {
  std::vector<std::string> Msgs = errorsOf("main: j nowhere\n");
  ASSERT_FALSE(Msgs.empty());
  EXPECT_NE(Msgs[0].find("nowhere"), std::string::npos);
}

TEST(Asm, DuplicateLabelIsAnError) {
  std::vector<std::string> Msgs = errorsOf("a:\n nop\na:\n nop\n");
  ASSERT_FALSE(Msgs.empty());
  EXPECT_NE(Msgs[0].find("redefinition"), std::string::npos);
}

TEST(Asm, BranchOutOfRangeIsAnError) {
  std::string Src = "main: beq a0, a1, far\n";
  Src += "  .space 8192\n";
  Src += "far: nop\n";
  std::vector<std::string> Msgs = errorsOf(Src);
  ASSERT_FALSE(Msgs.empty());
  EXPECT_NE(Msgs[0].find("out of range"), std::string::npos);
}

TEST(Asm, EntryPrefersStartThenMain) {
  Program P1 = assembleOk("foo:\n nop\nmain:\n nop\n");
  EXPECT_EQ(P1.entry(), 4u);
  Program P2 = assembleOk("main:\n nop\n_start:\n nop\n");
  EXPECT_EQ(P2.entry(), 4u);
}

// Property: disassembling an encoded instruction and re-assembling it
// reproduces the same word, for a corpus of representative instructions.
TEST(Asm, PrintAssembleRoundTrip) {
  const char *Corpus[] = {
      "addi sp, sp, -8", "add a0, a1, a2",   "sub s0, s1, s2",
      "mul t1, t2, a0",  "divu a3, a4, a5",  "lw ra, 4(sp)",
      "sw ra, 0(sp)",    "lbu a0, -1(a1)",   "sh a2, 6(a3)",
      "lui a0, 524288",  "auipc a1, 4",      "slli a2, a3, 7",
      "srai a4, a5, 31", "sltiu a6, a7, 1",  "p_fc t6",
      "p_fn t5",         "p_set t0, t0",     "p_merge t0, t0, t6",
      "p_syncm",         "p_jalr ra, t0, a0","p_swcv ra, t6, 0",
      "p_lwcv ra, 0",    "p_swre a0, a1, 7", "p_lwre a2, 3",
  };
  for (const char *Line : Corpus) {
    Program P = assembleOk(std::string("main: ") + Line + "\n");
    uint32_t Word = P.readWord(0);
    std::string Printed = isa::printInstr(isa::decode(Word));
    Program P2 = assembleOk("main: " + Printed + "\n");
    EXPECT_EQ(P2.readWord(0), Word) << Line << " -> " << Printed;
  }
}

} // namespace
