//===- tests/frontend_diag_test.cpp - Translator diagnostics ----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The translator must reject malformed Det-C with pointed messages —
// diagnostics are part of the tool's contract.
//
//===----------------------------------------------------------------------===//

#include "frontend/Compiler.h"
#include "frontend/Lexer.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::frontend;

namespace {

std::string errorOf(const std::string &Src) {
  FrontendResult R = parseDetC(Src);
  EXPECT_FALSE(R.succeeded()) << "expected a diagnostic for:\n" << Src;
  return R.errorText();
}

TEST(FrontendDiag, LexerRejectsStrayCharacters) {
  LexResult R = tokenize("int x = @;");
  EXPECT_FALSE(R.succeeded());
  EXPECT_NE(R.Errors[0].Message.find("unexpected character"),
            std::string::npos);
}

TEST(FrontendDiag, LexerRejectsUnknownDirectives) {
  LexResult R = tokenize("#ifdef FOO\n");
  EXPECT_FALSE(R.succeeded());
}

TEST(FrontendDiag, MalformedDefine) {
  LexResult R = tokenize("#define 123 4\n");
  EXPECT_FALSE(R.succeeded());
}

TEST(FrontendDiag, MissingSemicolon) {
  EXPECT_NE(errorOf("void main() { int x = 1 }").find("expected"),
            std::string::npos);
}

TEST(FrontendDiag, WrongInitializerLength) {
  EXPECT_NE(errorOf("int v[4] = { 1, 2 };\nvoid main() {}")
                .find("wrong number"),
            std::string::npos);
}

TEST(FrontendDiag, NonConstantArraySize) {
  EXPECT_NE(errorOf("void f(int n) { }\nint v[n];\nvoid main() {}")
                .find("constant"),
            std::string::npos);
}

TEST(FrontendDiag, ParallelLoopMustUseOneVariable) {
  EXPECT_NE(errorOf(R"(
void th(int t) {}
void main() {
  int t;
  int u;
  #pragma omp parallel for
  for (t = 0; u < 8; t++) th(t);
}
)")
                .find("different variable"),
            std::string::npos);
}

TEST(FrontendDiag, ParallelCallMustPassTheLoopVariable) {
  EXPECT_NE(errorOf(R"(
void th(int t) {}
void main() {
  int t;
  int z;
  #pragma omp parallel for
  for (t = 0; t < 8; t++) th(z);
}
)")
                .find("loop variable"),
            std::string::npos);
}

TEST(FrontendDiag, ReductionVariableMustExist) {
  EXPECT_NE(errorOf(R"(
void th(int t) {}
void main() {
  int t;
  #pragma omp parallel for reduction(+:ghost)
  for (t = 0; t < 4; t++) th(t);
}
)")
                .find("ghost"),
            std::string::npos);
}

TEST(FrontendDiag, EmptyParallelSections) {
  EXPECT_NE(errorOf(R"(
void main() {
  #pragma omp parallel sections
  {
  }
}
)")
                .find("without sections"),
            std::string::npos);
}

TEST(FrontendDiag, AddressOfNonGlobal) {
  EXPECT_NE(errorOf("void main() { int x; int p = &x; }")
                .find("address"),
            std::string::npos);
}

TEST(FrontendDiag, UnsupportedPragma) {
  EXPECT_NE(errorOf(R"(
void main() {
  #pragma omp critical
  { }
}
)")
                .find("unsupported pragma"),
            std::string::npos);
}

std::string warningOf(const std::string &Src) {
  FrontendResult R = parseDetC(Src);
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  return R.warningText();
}

TEST(FrontendDiag, ShortCircuitRhsBuiltinCallWarns) {
  std::string W = warningOf(R"(
int flag;
void main() {
  int x;
  x = 0;
  if (flag && __hart_id())
    x = 1;
}
)");
  EXPECT_NE(W.find("both sides"), std::string::npos) << W;
  EXPECT_NE(W.find("line 6"), std::string::npos) << W;
}

TEST(FrontendDiag, ShortCircuitRhsBuiltinCallWarnsForOr) {
  std::string W = warningOf(R"(
int flag;
void main() {
  int x;
  x = flag || __cycles();
}
)");
  EXPECT_NE(W.find("'||'"), std::string::npos) << W;
}

TEST(FrontendDiag, WarningsCarryRuleIds) {
  // Findings forwarded from the analyzer and the parser's own
  // deviations print a grep-able "[rule]" tag.
  std::string W = warningOf(R"(
int flag;
void main() {
  int x;
  if (flag && __hart_id())
    x = 1;
}
)");
  EXPECT_NE(W.find("[detc.no-short-circuit]"), std::string::npos) << W;

  std::string R = warningOf(R"(
int v[16];
void worker(int t) {
  v[0] = t;
}
void main() {
  int t;
  #pragma omp parallel for
  for (t = 0; t < 4; t++)
    worker(t);
}
)");
  EXPECT_NE(R.find("[race.ww]"), std::string::npos) << R;
}

TEST(FrontendDiag, ShortCircuitPureRhsIsSilent) {
  std::string W = warningOf(R"(
int a;
int b;
void main() {
  int x;
  x = a && b + 1;
}
)");
  EXPECT_EQ(W.find("both sides"), std::string::npos) << W;
}

TEST(FrontendDiag, ErrorsCarryLineNumbers) {
  FrontendResult R = parseDetC("int a;\nint b;\nvoid main() { c = 1; }");
  ASSERT_FALSE(R.succeeded());
  EXPECT_EQ(R.Errors[0].Line, 3u);
}

} // namespace
