//===- tests/sim_device_test.cpp - Memory-mapped device tests ------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sim/Device.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::sim;

namespace {

TEST(SensorDevice, ArmsAndRipensAfterLatency) {
  SensorDevice S({11, 22, 33}, /*Seed=*/1, /*Min=*/10, /*Max=*/10);
  EXPECT_EQ(S.read(DevStatusReg, 0), 0u) << "unarmed sensor is not ready";
  S.write(DevStatusReg, 1, 100);
  EXPECT_EQ(S.read(DevStatusReg, 105), 0u);
  EXPECT_EQ(S.read(DevStatusReg, 110), 1u);
  EXPECT_EQ(S.read(DevDataReg, 110), 11u);
}

TEST(SensorDevice, WalksItsSampleSequenceAndSticksAtTheEnd) {
  SensorDevice S({5, 6}, 1, 1, 1);
  S.write(DevStatusReg, 1, 0);
  EXPECT_EQ(S.read(DevDataReg, 10), 5u);
  S.write(DevStatusReg, 1, 10);
  EXPECT_EQ(S.read(DevDataReg, 20), 6u);
  S.write(DevStatusReg, 1, 20);
  EXPECT_EQ(S.read(DevDataReg, 30), 6u) << "last sample repeats";
}

TEST(SensorDevice, LatencyIsSeededButBounded) {
  for (uint64_t Seed : {1ull, 2ull, 999ull}) {
    SensorDevice S({1}, Seed, 20, 50);
    S.write(DevStatusReg, 1, 0);
    EXPECT_EQ(S.read(DevStatusReg, 19), 0u) << Seed;
    EXPECT_EQ(S.read(DevStatusReg, 50), 1u) << Seed;
  }
}

TEST(SensorDevice, RearmingResetsReadiness) {
  SensorDevice S({1, 2}, 7, 100, 100);
  S.write(DevStatusReg, 1, 0);
  EXPECT_EQ(S.read(DevStatusReg, 100), 1u);
  S.write(DevStatusReg, 1, 100);
  EXPECT_EQ(S.read(DevStatusReg, 150), 0u);
  EXPECT_EQ(S.read(DevStatusReg, 200), 1u);
}

TEST(ActuatorDevice, RecordsWritesWithCycles) {
  ActuatorDevice A;
  EXPECT_EQ(A.read(DevStatusReg, 0), 1u) << "actuators are always ready";
  A.write(DevDataReg, 42, 10);
  A.write(DevDataReg, 43, 20);
  ASSERT_EQ(A.records().size(), 2u);
  EXPECT_EQ(A.records()[0].Cycle, 10u);
  EXPECT_EQ(A.records()[0].Value, 42u);
  EXPECT_EQ(A.records()[1].Value, 43u);
  EXPECT_EQ(A.read(DevDataReg, 30), 43u) << "reads back the last value";
}

TEST(TimerDevice, ReadsTheCurrentCycle) {
  TimerDevice T;
  EXPECT_EQ(T.read(DevDataReg, 1234), 1234u);
  EXPECT_EQ(T.read(DevStatusReg, 1234), 1u);
}

TEST(StreamDevices, PopAndAppend) {
  StreamInDevice In({7, 8, 9});
  EXPECT_EQ(In.read(DevStatusReg, 0), 1u);
  EXPECT_EQ(In.read(DevDataReg, 0), 7u);
  EXPECT_EQ(In.read(DevDataReg, 1), 8u);
  EXPECT_EQ(In.read(DevDataReg, 2), 9u);
  EXPECT_EQ(In.read(DevStatusReg, 3), 0u) << "drained stream not ready";

  StreamOutDevice Out;
  Out.write(DevDataReg, 1, 0);
  Out.write(DevDataReg, 2, 1);
  EXPECT_EQ(Out.data(), (std::vector<uint32_t>{1, 2}));
}

} // namespace
