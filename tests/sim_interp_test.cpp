//===- tests/sim_interp_test.cpp - Reference interpreter tests ------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The sequential reference interpreter: basic execution, the X_PAR
// sequential semantics (the paper's "referential sequential order"),
// and agreement with the Machine on sequential programs.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "sim/Interp.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::sim;

namespace {

assembler::Program assembleOk(const std::string &Src) {
  assembler::AsmResult R = assembler::assemble(Src);
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  return std::move(R.Prog);
}

TEST(Interp, RunsArithmeticToExit) {
  assembler::Program P = assembleOk(R"(
main:
    li a0, 6
    li a1, 7
    mul a2, a0, a1
    la a3, 0x20000000
    sw a2, 0(a3)
    p_ret
)");
  Interp I(P);
  EXPECT_EQ(I.run(1000), InterpStatus::Exited);
  EXPECT_EQ(I.readWord(0x20000000), 42u);
  EXPECT_EQ(I.steps(), 7u); // li, li, mul, lui, addi, sw, p_ret
}

TEST(Interp, StopsOnBadInstruction) {
  assembler::Program P = assembleOk("main:\n  jr zero\n");
  Interp I(P);
  // Jumps to address 0 which is `jr zero` itself? No: jr zero jumps to
  // 0; the word at 0 is the jr itself, looping; budget runs out.
  EXPECT_EQ(I.run(100), InterpStatus::MaxSteps);
}

TEST(Interp, BudgetIsHonored) {
  assembler::Program P = assembleOk(R"(
main:
loop:
    addi a0, a0, 1
    j loop
)");
  Interp I(P);
  EXPECT_EQ(I.run(500), InterpStatus::MaxSteps);
  EXPECT_EQ(I.steps(), 500u);
}

TEST(Interp, SequentialForkRunsFunctionThenContinuation) {
  // The referential order: p_jalr runs the "thread" first, then the
  // continuation, in one stream.
  assembler::Program P = assembleOk(R"(
main:
    p_set t0
    li t6, 0
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    la a0, child
    p_jalr ra, t0, a0
    p_lwcv ra, 0
    p_lwcv t0, 4
    la a1, 0x20000004
    li a2, 2
    sw a2, 0(a1)
    li ra, 0
    li t0, -1
    p_ret

child:
    la a1, 0x20000000
    li a2, 1
    sw a2, 0(a1)
    p_ret
)");
  Interp I(P);
  ASSERT_EQ(I.run(1000), InterpStatus::Exited);
  EXPECT_EQ(I.readWord(0x20000000), 1u);
  EXPECT_EQ(I.readWord(0x20000004), 2u);
}

TEST(Interp, AgreesWithTheMachineOnSequentialCode) {
  const char *Src = R"(
main:
    li a0, 0
    li a1, 1
    li a2, 500
loop:
    add a0, a0, a1
    addi a1, a1, 1
    mul a3, a1, a1
    rem a4, a3, a2
    bne a1, a2, loop
    la a5, 0x20000000
    sw a0, 0(a5)
    sw a4, 4(a5)
    p_syncm
    li ra, 0
    li t0, -1
    p_ret
)";
  assembler::Program P = assembleOk(Src);
  Interp I(P);
  ASSERT_EQ(I.run(100000), InterpStatus::Exited);

  Machine M(SimConfig::lbp(1));
  M.load(assembleOk(Src));
  ASSERT_EQ(M.run(1000000), RunStatus::Exited);

  EXPECT_EQ(M.debugReadWord(0x20000000), I.readWord(0x20000000));
  EXPECT_EQ(M.debugReadWord(0x20000004), I.readWord(0x20000004));
  // The sequential step count equals the machine's retired count: the
  // machine reorders execution, never the instruction stream.
  EXPECT_EQ(I.steps(), M.retired());
}

} // namespace
