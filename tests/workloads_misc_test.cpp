//===- tests/workloads_misc_test.cpp - Phases, fusion, refmodel ---------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The Fig. 4 phases program (locality + barrier), the Fig. 16 sensor
// fusion loop (deterministic results under non-deterministic device
// timing) and the Fig. 21 vector-core reference model.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "refmodel/VectorCore.h"
#include "sim/Machine.h"
#include "workloads/Dma.h"
#include "workloads/Phases.h"
#include "workloads/Pipeline.h"
#include "workloads/SensorFusion.h"

#include <algorithm>

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::sim;
using namespace lbp::workloads;

namespace {

//===----------------------------------------------------------------------===//
// Phases (Fig. 4)
//===----------------------------------------------------------------------===//

TEST(Phases, BarrierSeparatesPhasesAndResultsAreRight) {
  PhasesSpec Spec;
  Spec.NumHarts = 16;
  assembler::AsmResult R = assembler::assemble(buildPhasesProgram(Spec));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  SimConfig Cfg = SimConfig::lbp(4);
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  Machine M(Cfg);
  M.load(R.Prog);
  ASSERT_EQ(M.run(2000000), RunStatus::Exited) << M.faultMessage();
  for (unsigned T = 0; T != 16; ++T)
    EXPECT_EQ(M.debugReadWord(phasesOutAddress(Spec, T)),
              T * Spec.WordsPerChunk)
        << "member " << T;
}

TEST(Phases, AllVectorAccessesAreLocal) {
  // The paper's Fig. 4 claim: with the team's stable placement, every
  // chunk access hits the core's own bank.
  PhasesSpec Spec;
  Spec.NumHarts = 16;
  assembler::AsmResult R = assembler::assemble(buildPhasesProgram(Spec));
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  SimConfig Cfg = SimConfig::lbp(4);
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  Machine M(Cfg);
  M.load(R.Prog);
  ASSERT_EQ(M.run(2000000), RunStatus::Exited) << M.faultMessage();
  EXPECT_EQ(M.remoteAccesses(), 0u);
}

//===----------------------------------------------------------------------===//
// Sensor fusion (Figs. 16/17)
//===----------------------------------------------------------------------===//

struct FusionRun {
  std::vector<uint32_t> Values;
  std::vector<uint64_t> Cycles;
  uint64_t TotalCycles;
  uint64_t Hash;
};

FusionRun runFusion(uint64_t Seed, unsigned Rounds) {
  SensorFusionSpec Spec;
  Spec.Rounds = Rounds;
  assembler::AsmResult R =
      assembler::assemble(buildSensorFusionProgram(Spec));
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  Machine M(SimConfig::lbp(1));
  M.load(R.Prog);
  // Four sensors with distinct sample streams and non-deterministic
  // (seeded) response latencies between 20 and 400 cycles.
  ActuatorDevice *Act = nullptr;
  for (unsigned S = 0; S != 4; ++S) {
    std::vector<uint32_t> Samples;
    for (unsigned K = 0; K != Rounds; ++K)
      Samples.push_back(100 * (S + 1) + K);
    M.addDevice(SensorBase(S), 0x100,
                std::make_unique<SensorDevice>(Samples, Seed + S, 20,
                                               400));
  }
  auto ActPtr = std::make_unique<ActuatorDevice>();
  Act = ActPtr.get();
  M.addDevice(ActuatorBase, 0x100, std::move(ActPtr));
  EXPECT_EQ(M.run(10000000), RunStatus::Exited) << M.faultMessage();

  FusionRun Out;
  for (const ActuatorDevice::Record &Rec : Act->records()) {
    Out.Values.push_back(Rec.Value);
    Out.Cycles.push_back(Rec.Cycle);
  }
  Out.TotalCycles = M.cycles();
  Out.Hash = M.traceHash();
  return Out;
}

TEST(SensorFusion, FusesEveryRoundInOrder) {
  FusionRun R = runFusion(/*Seed=*/1, /*Rounds=*/6);
  ASSERT_EQ(R.Values.size(), 6u);
  for (unsigned K = 0; K != 6; ++K) {
    // (100+k + 200+k + 300+k + 400+k) / 4 = 250 + k.
    EXPECT_EQ(R.Values[K], 250 + K) << "round " << K;
  }
}

TEST(SensorFusion, ResultsAreSeedIndependent) {
  // The fused VALUES are fixed by the static code order even though the
  // sensors answer after different delays per seed (paper Sec. 6).
  FusionRun A = runFusion(7, 5);
  FusionRun B = runFusion(1234567, 5);
  EXPECT_EQ(A.Values, B.Values);
  EXPECT_NE(A.TotalCycles, B.TotalCycles)
      << "seeds should actually change the timing";
}

TEST(SensorFusion, IdenticalSeedsAreCycleIdentical) {
  FusionRun A = runFusion(42, 5);
  FusionRun B = runFusion(42, 5);
  EXPECT_EQ(A.Hash, B.Hash);
  EXPECT_EQ(A.Cycles, B.Cycles);
  EXPECT_EQ(A.TotalCycles, B.TotalCycles);
}

TEST(SensorFusion, ActuationFollowsSlowestSensorQuickly) {
  // Bounded response: each actuation happens within a small number of
  // cycles after its round's team joined (no interrupt machinery).
  FusionRun R = runFusion(3, 4);
  ASSERT_EQ(R.Cycles.size(), 4u);
  for (unsigned K = 1; K != 4; ++K)
    EXPECT_GT(R.Cycles[K], R.Cycles[K - 1]);
}

//===----------------------------------------------------------------------===//
// DMA / controller-hart streaming (Fig. 17)
//===----------------------------------------------------------------------===//

struct DmaRun {
  std::vector<uint32_t> Output;
  uint64_t Hash;
};

DmaRun runDma(const DmaSpec &Spec) {
  assembler::AsmResult R =
      assembler::assemble(buildDmaStreamProgram(Spec));
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  Machine M(SimConfig::lbp(Spec.cores()));
  auto In = std::make_unique<StreamInDevice>(dmaInputStream(Spec));
  auto Out = std::make_unique<StreamOutDevice>();
  StreamOutDevice *OutPtr = Out.get();
  M.addDevice(DmaInDeviceBase, 0x100, std::move(In));
  M.addDevice(DmaOutDeviceBase, 0x100, std::move(Out));
  M.load(R.Prog);
  EXPECT_EQ(M.run(20000000), RunStatus::Exited) << M.faultMessage();
  return {OutPtr->data(), M.traceHash()};
}

class DmaShapes
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(DmaShapes, StreamsEveryItemThroughTheControllers) {
  DmaSpec Spec;
  Spec.Workers = GetParam().first;
  Spec.ItemsPerWorker = GetParam().second;
  DmaRun R = runDma(Spec);
  ASSERT_EQ(R.Output.size(), Spec.Workers);
  std::vector<uint32_t> Sorted = R.Output;
  std::sort(Sorted.begin(), Sorted.end());
  EXPECT_EQ(Sorted, dmaExpectedSums(Spec));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, DmaShapes,
    ::testing::Values(std::make_pair(1u, 4u), std::make_pair(2u, 8u),
                      std::make_pair(6u, 16u), std::make_pair(14u, 8u)));

TEST(Dma, IsCycleDeterministic) {
  DmaSpec Spec;
  Spec.Workers = 6;
  Spec.ItemsPerWorker = 8;
  DmaRun A = runDma(Spec);
  DmaRun B = runDma(Spec);
  EXPECT_EQ(A.Hash, B.Hash);
  EXPECT_EQ(A.Output, B.Output) << "even the arrival order replays";
}

//===----------------------------------------------------------------------===//
// Deterministic message-passing pipeline (Sec. 8 perspective)
//===----------------------------------------------------------------------===//

Machine runPipeline(const PipelineSpec &Spec) {
  assembler::AsmResult R =
      assembler::assemble(buildPipelineProgram(Spec));
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  SimConfig Cfg = SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  Machine M(Cfg);
  M.load(R.Prog);
  EXPECT_EQ(M.run(20000000), RunStatus::Exited) << M.faultMessage();
  return M;
}

class PipelineShapes
    : public ::testing::TestWithParam<std::pair<unsigned, unsigned>> {};

TEST_P(PipelineShapes, DeliversEveryItemInOrder) {
  PipelineSpec Spec;
  Spec.Stages = GetParam().first;
  Spec.Items = GetParam().second;
  Machine M = runPipeline(Spec);
  for (unsigned I = 0; I != Spec.Items; ++I)
    EXPECT_EQ(M.debugReadWord(pipelineOutAddress(Spec, I)),
              pipelineExpectedValue(Spec, I))
        << "item " << I;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PipelineShapes,
    ::testing::Values(std::make_pair(2u, 16u), std::make_pair(3u, 32u),
                      std::make_pair(4u, 64u), std::make_pair(8u, 64u),
                      std::make_pair(16u, 32u)));

TEST(Pipeline, IsCycleDeterministic) {
  PipelineSpec Spec;
  Spec.Stages = 8;
  Spec.Items = 32;
  Machine A = runPipeline(Spec);
  Machine B = runPipeline(Spec);
  EXPECT_EQ(A.cycles(), B.cycles());
  EXPECT_EQ(A.traceHash(), B.traceHash());
}

//===----------------------------------------------------------------------===//
// Reference model (Fig. 21's Xeon Phi 2 stand-in)
//===----------------------------------------------------------------------===//

TEST(RefModel, ReproducesThePaperAnchorsAtH256) {
  refmodel::VectorCoreConfig Cfg;
  refmodel::VectorCoreResult R = refmodel::evaluateTiledMatMul(Cfg, 256);
  // Paper: 32M instructions, 391K cycles, 81.86 total IPC (1.28/core).
  EXPECT_NEAR(static_cast<double>(R.Instructions), 32.0e6, 2.5e6);
  EXPECT_NEAR(static_cast<double>(R.Cycles), 391.0e3, 40.0e3);
  EXPECT_NEAR(R.IpcPerCore, 1.28, 0.1);
}

TEST(RefModel, ScalesWithProblemSize) {
  refmodel::VectorCoreConfig Cfg;
  auto Small = refmodel::evaluateTiledMatMul(Cfg, 64);
  auto Large = refmodel::evaluateTiledMatMul(Cfg, 256);
  EXPECT_LT(Small.Instructions, Large.Instructions);
  EXPECT_LT(Small.Cycles, Large.Cycles);
  // h^3 scaling dominates: 4x h is ~64x instructions.
  EXPECT_NEAR(static_cast<double>(Large.Instructions) /
                  static_cast<double>(Small.Instructions),
              64.0, 16.0);
}

} // namespace
