//===- tests/frontend_apps_test.cpp - Det-C application suite --------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Complete Det-C programs from the paper's target domain (embedded,
// real-time, data-parallel), compiled by the Deterministic OpenMP
// translator and validated against host-computed results: a parallel
// FIR filter, a parallel histogram, a matrix-vector product with a
// reduction, and the paper's own matmul written in Det-C.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "frontend/Compiler.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::frontend;
using namespace lbp::sim;

namespace {

Machine compileAndRun(const std::string &Source, unsigned Cores,
                      uint64_t MaxCycles = 50000000) {
  std::string Errors;
  std::string Asm = compileDetCToAsm(Source, Errors);
  EXPECT_TRUE(Errors.empty()) << Errors;
  assembler::AsmResult R = assembler::assemble(Asm);
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  Machine M(SimConfig::lbp(Cores));
  M.load(R.Prog);
  EXPECT_EQ(M.run(MaxCycles), RunStatus::Exited) << M.faultMessage();
  return M;
}

//===----------------------------------------------------------------------===//
// Parallel FIR filter
//===----------------------------------------------------------------------===//

TEST(DetCApps, ParallelFirFilter) {
  // y[n] = sum_k h[k] * x[n+k], 4 taps, outputs split over 8 harts.
  const char *Src = R"(
#include <det_omp.h>
#define NH 8
#define TAPS 4
#define OUT_N 64
#define CHUNK 8

int x[67] at 0x20004000;            /* OUT_N + TAPS - 1 inputs */
int h[TAPS] = { 3, -1, 2, 5 };
int y[OUT_N] at 0x20004200;

void fir_chunk(int t) {
  int n;
  for (n = t * CHUNK; n < (t + 1) * CHUNK; n++) {
    int acc = 0;
    int k;
    for (k = 0; k < TAPS; k++) acc += h[k] * x[n + k];
    y[n] = acc;
  }
}

void main() {
  int i;
  for (i = 0; i < 67; i++) x[i] = (i * 7) % 13 - 6;
  __syncm();
  int t;
  #pragma omp parallel for
  for (t = 0; t < NH; t++) fir_chunk(t);
}
)";
  Machine M = compileAndRun(Src, 2);

  // Host reference.
  int32_t X[67], H[4] = {3, -1, 2, 5};
  for (int I = 0; I != 67; ++I)
    X[I] = (I * 7) % 13 - 6;
  for (unsigned N = 0; N != 64; ++N) {
    int32_t Acc = 0;
    for (unsigned K = 0; K != 4; ++K)
      Acc += H[K] * X[N + K];
    EXPECT_EQ(static_cast<int32_t>(M.debugReadWord(0x20004200 + 4 * N)),
              Acc)
        << "y[" << N << "]";
  }
}

//===----------------------------------------------------------------------===//
// Parallel histogram (per-member bins merged sequentially)
//===----------------------------------------------------------------------===//

TEST(DetCApps, ParallelHistogram) {
  const char *Src = R"(
#include <det_omp.h>
#define NH 4
#define N 256
#define BINS 8

int data[N] at 0x20005000;
int partial[32] at 0x20005800;      /* NH x BINS private bins */
int hist[BINS] at 0x20005900;

void count_chunk(int t) {
  int i;
  for (i = t * 64; i < (t + 1) * 64; i++) {
    int b = data[i] & 7;
    partial[t * BINS + b] += 1;
  }
}

void main() {
  int i;
  for (i = 0; i < N; i++) data[i] = (i * 31) % 97;
  __syncm();
  int t;
  #pragma omp parallel for
  for (t = 0; t < NH; t++) count_chunk(t);
  int b;
  for (b = 0; b < BINS; b++) {
    int sum = 0;
    for (t = 0; t < NH; t++) sum += partial[t * BINS + b];
    hist[b] = sum;
  }
  __syncm();
}
)";
  Machine M = compileAndRun(Src, 1);

  uint32_t Ref[8] = {0};
  for (unsigned I = 0; I != 256; ++I)
    ++Ref[((I * 31) % 97) & 7];
  for (unsigned B = 0; B != 8; ++B)
    EXPECT_EQ(M.debugReadWord(0x20005900 + 4 * B), Ref[B]) << "bin " << B;
}

//===----------------------------------------------------------------------===//
// Matrix-vector product with the reduction clause
//===----------------------------------------------------------------------===//

TEST(DetCApps, MatVecWithReductionChecksum) {
  // Each hart computes rows of A*v; the checksum of all entries comes
  // back through the reduction clause.
  const char *Src = R"(
#include <det_omp.h>
#define NH 8
#define N 32

int A[1024] at 0x20006000;          /* N x N */
int v[N] at 0x20007000;
int y[N] at 0x20007100;
int checksum at 0x20007200;

void rows(int t) {
  int r;
  for (r = t * 4; r < (t + 1) * 4; r++) {
    int acc = 0;
    int c;
    for (c = 0; c < N; c++) acc += A[r * N + c] * v[c];
    y[r] = acc;
    __reduce_send(acc);
  }
}

void main() {
  int i;
  for (i = 0; i < 1024; i++) A[i] = (i % 7) - 3;
  for (i = 0; i < N; i++) v[i] = i + 1;
  __syncm();
  int sum = 0;
  int t;
  #pragma omp parallel for reduction(+:sum)
  for (t = 0; t < NH; t++) rows(t);
  /* each member sent 4 partials: collect the remaining 3 rounds */
  __reduce_collect(sum, 8);
  __reduce_collect(sum, 8);
  __reduce_collect(sum, 8);
  checksum = sum;
  __syncm();
}
)";
  // __reduce_collect is only reachable through the pragma clause in
  // Det-C; rewrite with one send per member instead.
  const char *Src2 = R"(
#include <det_omp.h>
#define NH 8
#define N 32

int A[1024] at 0x20006000;
int v[N] at 0x20007000;
int y[N] at 0x20007100;
int checksum at 0x20007200;

void rows(int t) {
  int total = 0;
  int r;
  for (r = t * 4; r < (t + 1) * 4; r++) {
    int acc = 0;
    int c;
    for (c = 0; c < N; c++) acc += A[r * N + c] * v[c];
    y[r] = acc;
    total += acc;
  }
  __reduce_send(total);
}

void main() {
  int i;
  for (i = 0; i < 1024; i++) A[i] = (i % 7) - 3;
  for (i = 0; i < N; i++) v[i] = i + 1;
  __syncm();
  int sum = 0;
  int t;
  #pragma omp parallel for reduction(+:sum)
  for (t = 0; t < NH; t++) rows(t);
  checksum = sum;
  __syncm();
}
)";
  (void)Src;
  Machine M = compileAndRun(Src2, 2);

  int32_t A[1024], V[32], Sum = 0;
  for (int I = 0; I != 1024; ++I)
    A[I] = (I % 7) - 3;
  for (int I = 0; I != 32; ++I)
    V[I] = I + 1;
  for (unsigned R = 0; R != 32; ++R) {
    int32_t Acc = 0;
    for (unsigned C = 0; C != 32; ++C)
      Acc += A[R * 32 + C] * V[C];
    EXPECT_EQ(static_cast<int32_t>(M.debugReadWord(0x20007100 + 4 * R)),
              Acc)
        << "y[" << R << "]";
    Sum += Acc;
  }
  EXPECT_EQ(static_cast<int32_t>(M.debugReadWord(0x20007200)), Sum);
}

//===----------------------------------------------------------------------===//
// The paper's matmul, written in Det-C
//===----------------------------------------------------------------------===//

TEST(DetCApps, PaperMatmulBaseInDetC) {
  // The Fig. 18 program, nearly verbatim (h = 16): every Z element must
  // be h/2 = 8, like the DSL-built version the benches run.
  const char *Src = R"(
#include <det_omp.h>
#define NUM_HART 16
#define COLUMN_X 8
#define COLUMN_Y 16
#define COLUMN_Z 16
#define LINE_Z 16

int X[128] = { 1 };
int Y[128] = { 1 };
int Z[256] at 0x20008000;

void thread(int t) {
  int j;
  for (j = 0; j < COLUMN_Z; j++) {
    int tmp = 0;
    int k;
    for (k = 0; k < COLUMN_X; k++)
      tmp += X[t * COLUMN_X + k] * Y[k * COLUMN_Y + j];
    Z[t * COLUMN_Z + j] = tmp;
  }
}

void main() {
  int t;
  omp_set_num_threads(NUM_HART);
  #pragma omp parallel for
  for (t = 0; t < NUM_HART; t++) thread(t);
}
)";
  Machine M = compileAndRun(Src, 4);
  for (unsigned K = 0; K != 256; ++K)
    ASSERT_EQ(M.debugReadWord(0x20008000 + 4 * K), 8u) << "Z[" << K << "]";
}

TEST(DetCApps, SuiteProgramsAreDeterministic) {
  const char *Src = R"(
#include <det_omp.h>
int out[16] at 0x20009000;
void thread(int t) { out[t] = t * 5 + 1; }
void main() {
  int t;
  #pragma omp parallel for
  for (t = 0; t < 16; t++) thread(t);
}
)";
  Machine A = compileAndRun(Src, 4);
  Machine B = compileAndRun(Src, 4);
  EXPECT_EQ(A.cycles(), B.cycles());
  EXPECT_EQ(A.traceHash(), B.traceHash());
}

} // namespace
