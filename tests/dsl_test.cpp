//===- tests/dsl_test.cpp - Kernel compiler tests ------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Compiles kernel-language modules and runs them on the simulated LBP:
// expressions, loops, calls, parallel-for teams, reductions, and the
// instruction-count anchor for the matmul inner loop (exactly seven
// instructions per iteration, paper Sec. 7).
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "dsl/Ast.h"
#include "dsl/CodeGen.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::dsl;
using namespace lbp::sim;

namespace {

constexpr uint32_t OutAddr = 0x20000c00;

Machine compileAndRun(const Module &M, unsigned Cores,
                      uint64_t MaxCycles = 3000000) {
  std::string Asm = compileModule(M);
  assembler::AsmResult R = assembler::assemble(Asm);
  EXPECT_TRUE(R.succeeded()) << R.errorText() << "\n" << Asm;
  Machine Mach(SimConfig::lbp(Cores));
  Mach.load(R.Prog);
  RunStatus S = Mach.run(MaxCycles);
  EXPECT_EQ(S, RunStatus::Exited) << Mach.faultMessage() << "\n" << Asm;
  return Mach;
}

TEST(Dsl, ConstantStore) {
  Module M;
  M.global("out", OutAddr, 1);
  Function *Main = M.function("main", FnKind::Main);
  Main->append(M.store(M.addrOf("out"), 0, M.c(42)));
  Main->append(M.syncm());
  Machine Mach = compileAndRun(M, 1);
  EXPECT_EQ(Mach.debugReadWord(OutAddr), 42u);
}

TEST(Dsl, ArithmeticExpressionTree) {
  // out = (3 + 4) * (10 - 2) - (20 / 5) = 56 - 4 = 52.
  Module M;
  M.global("out", OutAddr, 1);
  Function *Main = M.function("main", FnKind::Main);
  const Expr *E =
      M.sub(M.mul(M.add(M.c(3), M.c(4)), M.sub(M.c(10), M.c(2))),
            M.bin(BinOp::Div, M.c(20), M.c(5)));
  Main->append(M.store(M.addrOf("out"), 0, E));
  Main->append(M.syncm());
  Machine Mach = compileAndRun(M, 1);
  EXPECT_EQ(Mach.debugReadWord(OutAddr), 52u);
}

TEST(Dsl, WhileLoopSum) {
  // out = sum(1..100) = 5050.
  Module M;
  M.global("out", OutAddr, 1);
  Function *Main = M.function("main", FnKind::Main);
  const Local *Acc = Main->local("acc");
  const Local *I = Main->local("i");
  Main->append(M.assign(Acc, M.c(0)));
  Main->append(M.assign(I, M.c(1)));
  Main->append(M.whileStmt(CmpOp::Le, M.v(I), M.c(100),
                           {M.assign(Acc, M.add(M.v(Acc), M.v(I))),
                            M.assign(I, M.add(M.v(I), M.c(1)))}));
  Main->append(M.store(M.addrOf("out"), 0, M.v(Acc)));
  Main->append(M.syncm());
  Machine Mach = compileAndRun(M, 1);
  EXPECT_EQ(Mach.debugReadWord(OutAddr), 5050u);
}

TEST(Dsl, IfElse) {
  // out[i] = i < 3 ? 10+i : 20+i for i in 0..5.
  Module M;
  M.global("out", OutAddr, 8);
  Function *Main = M.function("main", FnKind::Main);
  const Local *I = Main->local("i");
  const Local *P = Main->local("p");
  Main->append(M.assign(I, M.c(0)));
  Main->append(M.assign(P, M.addrOf("out")));
  Main->append(M.whileStmt(
      CmpOp::Lt, M.v(I), M.c(6),
      {M.ifStmt(CmpOp::Lt, M.v(I), M.c(3),
                {M.store(M.v(P), 0, M.add(M.v(I), M.c(10)))},
                {M.store(M.v(P), 0, M.add(M.v(I), M.c(20)))}),
       M.assign(P, M.add(M.v(P), M.c(4))),
       M.assign(I, M.add(M.v(I), M.c(1)))}));
  Main->append(M.syncm());
  Machine Mach = compileAndRun(M, 1);
  uint32_t Expect[6] = {10, 11, 12, 23, 24, 25};
  for (unsigned K = 0; K != 6; ++K)
    EXPECT_EQ(Mach.debugReadWord(OutAddr + 4 * K), Expect[K]) << K;
}

TEST(Dsl, FunctionCallWithResult) {
  // square(x) = x*x; out = square(12) + square(5) = 169.
  Module M;
  M.global("out", OutAddr, 1);

  Function *Sq = M.function("square");
  const Local *X = Sq->param("x");
  Sq->append(M.ret(M.mul(M.v(X), M.v(X))));

  Function *Main = M.function("main", FnKind::Main);
  const Local *A = Main->local("a");
  const Local *B = Main->local("b");
  Main->append(M.call("square", {M.c(12)}, A));
  Main->append(M.call("square", {M.c(5)}, B));
  Main->append(M.store(M.addrOf("out"), 0, M.add(M.v(A), M.v(B))));
  Main->append(M.syncm());
  Machine Mach = compileAndRun(M, 1);
  EXPECT_EQ(Mach.debugReadWord(OutAddr), 169u);
}

TEST(Dsl, LoadWidths) {
  Module M;
  M.globalData("in", 0x20000d00, {0xFFFFFF80u});
  M.global("out", OutAddr, 3);
  Function *Main = M.function("main", FnKind::Main);
  const Local *P = Main->local("p");
  Main->append(M.assign(P, M.addrOf("in")));
  Main->append(
      M.store(M.addrOf("out"), 0, M.load(M.v(P), 0, 1, true)));  // -128
  Main->append(
      M.store(M.addrOf("out"), 4, M.load(M.v(P), 0, 1, false))); // 128
  Main->append(
      M.store(M.addrOf("out"), 8, M.load(M.v(P), 0, 2, false))); // 0xFF80
  Main->append(M.syncm());
  Machine Mach = compileAndRun(M, 1);
  EXPECT_EQ(Mach.debugReadWord(OutAddr), 0xFFFFFF80u);
  EXPECT_EQ(Mach.debugReadWord(OutAddr + 4), 0x80u);
  EXPECT_EQ(Mach.debugReadWord(OutAddr + 8), 0xFF80u);
}

TEST(Dsl, ParallelForTeamOf16) {
  // thread(t): out[t] = t * t.
  Module M;
  M.global("out", OutAddr, 16);

  Function *Thread = M.function("thread", FnKind::Thread);
  const Local *T = Thread->param("t");
  const Local *P = Thread->local("p");
  Thread->append(
      M.assign(P, M.add(M.addrOf("out"), M.shl(M.v(T), 2))));
  Thread->append(M.store(M.v(P), 0, M.mul(M.v(T), M.v(T))));

  Function *Main = M.function("main", FnKind::Main);
  Main->append(M.parallelFor("thread", 16));

  Machine Mach = compileAndRun(M, 4);
  for (unsigned K = 0; K != 16; ++K)
    EXPECT_EQ(Mach.debugReadWord(OutAddr + 4 * K), K * K) << K;
}

TEST(Dsl, ParallelReduction) {
  // Every member sends t*2; main folds 8 partials: 2*(0+..+7) = 56.
  Module M;
  M.global("out", OutAddr, 1);

  Function *Thread = M.function("thread", FnKind::Thread);
  const Local *T = Thread->param("t");
  Thread->append(M.reduceSend(M.mul(M.v(T), M.c(2))));

  Function *Main = M.function("main", FnKind::Main);
  const Local *Acc = Main->local("acc");
  Main->append(M.assign(Acc, M.c(0)));
  Main->append(M.parallelFor("thread", 8));
  Main->append(M.reduceCollect(Acc, 8));
  Main->append(M.store(M.addrOf("out"), 0, M.v(Acc)));
  Main->append(M.syncm());

  Machine Mach = compileAndRun(M, 2);
  EXPECT_EQ(Mach.debugReadWord(OutAddr), 56u);
}

TEST(Dsl, MainLocalsSurviveParallelRegions) {
  // Locals of main live in s-registers; thread bodies that use
  // s-registers save and restore them, so main's state survives the
  // team that ran member 0 on main's hart.
  Module M;
  M.global("out", OutAddr, 1);

  Function *Thread = M.function("thread", FnKind::Thread);
  const Local *T = Thread->param("t");
  // Force many locals so the thread spills into s-registers.
  const Local *L[10];
  for (unsigned K = 0; K != 10; ++K)
    L[K] = Thread->local("l" + std::to_string(K));
  std::vector<const Stmt *> Body;
  for (unsigned K = 0; K != 10; ++K)
    Body.push_back(M.assign(L[K], M.add(M.v(T), M.c(K))));
  const Expr *Sum = M.v(L[0]);
  for (unsigned K = 1; K != 10; ++K)
    Sum = M.add(Sum, M.v(L[K]));
  Body.push_back(M.store(M.add(M.addrOf("out"), M.c(0)), 0, Sum));
  for (const Stmt *S : Body)
    Thread->append(S);

  Function *Main = M.function("main", FnKind::Main);
  const Local *Keep = Main->local("keep");
  Main->append(M.assign(Keep, M.c(31415)));
  Main->append(M.parallelFor("thread", 4));
  Main->append(M.store(M.addrOf("out"), 0, M.v(Keep)));
  Main->append(M.syncm());

  Machine Mach = compileAndRun(M, 1);
  EXPECT_EQ(Mach.debugReadWord(OutAddr), 31415u);
}

// The fidelity anchor: the matmul inner loop must be exactly the
// paper's seven instructions (2 loads, mul, add, 2 increments, branch).
TEST(Dsl, MatmulInnerLoopIsSevenInstructions) {
  Module M;
  Function *F = M.function("kernel", FnKind::Thread);
  const Local *Px = F->param("px");
  const Local *Py = F->param("py");
  const Local *End = F->param("end");
  const Local *Acc = F->local("acc");
  F->append(M.assign(Acc, M.c(0)));
  F->append(M.doWhile(
      {M.assign(Acc, M.add(M.v(Acc),
                           M.mul(M.load(M.v(Px)), M.load(M.v(Py))))),
       M.assign(Px, M.add(M.v(Px), M.c(4))),
       M.assign(Py, M.add(M.v(Py), M.c(64)))},
      CmpOp::Ne, M.v(Px), M.v(End)));
  F->append(M.reduceSend(M.v(Acc)));
  Function *Main = M.function("main", FnKind::Main);
  Main->append(M.parallelFor("kernel", 1));

  std::string Asm = compileModule(M);
  // Count the instructions between the loop label and the branch.
  size_t Loop = Asm.find(".Ldw");
  ASSERT_NE(Loop, std::string::npos) << Asm;
  size_t BodyStart = Asm.find('\n', Loop) + 1;
  size_t Branch = Asm.find("bne", BodyStart);
  ASSERT_NE(Branch, std::string::npos) << Asm;
  size_t BranchEnd = Asm.find('\n', Branch);
  unsigned Instrs = 0;
  for (size_t P = BodyStart; P < BranchEnd;
       P = Asm.find('\n', P) + 1) {
    size_t LineEnd = Asm.find('\n', P);
    std::string Line = Asm.substr(P, LineEnd - P);
    if (!Line.empty() && Line.back() == ':')
      continue; // labels are free
    ++Instrs;
  }
  EXPECT_EQ(Instrs, 7u) << Asm;
}

TEST(Dsl, CompiledProgramsAreDeterministic) {
  Module M;
  M.global("out", OutAddr, 16);
  Function *Thread = M.function("thread", FnKind::Thread);
  const Local *T = Thread->param("t");
  Thread->append(M.store(M.add(M.addrOf("out"), M.shl(M.v(T), 2)), 0,
                         M.mul(M.v(T), M.c(3))));
  Function *Main = M.function("main", FnKind::Main);
  Main->append(M.parallelFor("thread", 16));

  Machine M1 = compileAndRun(M, 4);
  Machine M2 = compileAndRun(M, 4);
  EXPECT_EQ(M1.cycles(), M2.cycles());
  EXPECT_EQ(M1.traceHash(), M2.traceHash());
}

} // namespace
