//===- tests/sim_machine_edge_test.cpp - Pipeline corner cases ------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Corner cases of the machine: the WAW-through-memory scenario that
// renaming must absorb, p_fc stalling until a hart frees, nested
// parallel teams, the direct p_jal fork, result-slot backlog ordering,
// alignment faults, ROB pressure, and the recorded text trace.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "romp/Runtime.h"
#include "sim/Machine.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::sim;

namespace {

Machine runSrc(const std::string &Src, unsigned Cores,
               RunStatus Expect = RunStatus::Exited,
               uint64_t MaxCycles = 2000000) {
  assembler::AsmResult R = assembler::assemble(Src);
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  Machine M(SimConfig::lbp(Cores));
  M.load(R.Prog);
  EXPECT_EQ(M.run(MaxCycles), Expect) << M.faultMessage();
  return M;
}

// The differential-test discovery, as a pinned regression: an older
// load stalled behind a same-word store must not clobber a younger
// result when it finally writes back.
TEST(MachineEdge, OlderLoadCannotClobberYoungerResult) {
  std::string Src = R"(
main:
    li s0, 0x12345678
    li a5, 1
    li t1, 0x20000010
    sw a5, 0(t1)        # in flight when the load issues
    lw a2, 0(t1)        # stalls on the same-word store
    srli a2, s0, 24     # younger writer of a2: must win
    li t3, 0x20000400
    sw a2, 0(t3)
    p_syncm
    li ra, 0
    li t0, -1
    p_ret
)";
  Machine M = runSrc(Src, 1);
  EXPECT_EQ(M.debugReadWord(0x20000400), 0x12u);
}

TEST(MachineEdge, SerialForkJoinLoopReusesHarts) {
  // Hart 0 repeatedly forks, runs a child, and joins: the allocator
  // hands out freed harts again and the token returns every round.
  std::string Src = R"(
    .equ COUNTER, 0x20000040
main:
    li t5, 4              # children to spawn
    la a5, COUNTER
spawn:
    p_set t0
    la ra, back
    p_fc t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    la a0, child
    p_jalr ra, t0, a0
    p_lwcv ra, 0          # continuation: same hart numbering dance
    p_lwcv t0, 4
    p_ret                 # join back to the head
back:
    addi t5, t5, -1
    bnez t5, spawn
    li ra, 0
    li t0, -1
    p_ret

child:                    # the head runs this; bump the counter
    la a4, COUNTER
    lw a3, 0(a4)
    addi a3, a3, 1
    sw a3, 0(a4)
    p_syncm
    p_ret                 # head: waits for the join
)";
  Machine M = runSrc(Src, 1);
  EXPECT_EQ(M.debugReadWord(0x20000040), 4u);
}

TEST(MachineEdge, NestedTeamsJoinInsideAnOuterTeam) {
  // An outer 2-member team whose members each launch an inner 2-member
  // team: the token chain nests (the outer member's token arrives while
  // the inner team runs, releasing the inner head's commit).
  std::string Body;
  {
    romp::AsmText T;
    romp::emitParallelCall(T, "outer", 2, "0");
    Body = T.str();
  }
  std::string Fns = R"(
    .equ OUT, 0x20000080
outer:
    # Callers of a parallel region save ra AND t0 (the romp convention).
    addi sp, sp, -12
    sw ra, 0(sp)
    sw t0, 4(sp)
    sw a0, 8(sp)
    slli a1, a0, 3        # data: 2-word slot area per outer member
    la t2, OUT
    add a1, a1, t2        # a1 = &OUT[2*t]
    li a2, 2
    la a3, inner
    jal LBP_parallel_start
    lw ra, 0(sp)
    lw t0, 4(sp)
    lw a0, 8(sp)
    addi sp, sp, 12
    p_ret

inner:                    # a0 = inner index, a1 = slot base
    slli a4, a0, 2
    add a4, a4, a1
    addi a5, a0, 40
    sw a5, 0(a4)
    p_ret
)";
  std::string Src;
  {
    romp::AsmText T;
    romp::emitMainPrologue(T);
    Src = T.str() + Body;
    romp::AsmText T2;
    romp::emitMainEpilogue(T2);
    romp::emitParallelStart(T2);
    Src += T2.str() + Fns;
  }
  Machine M = runSrc(Src, 2);
  for (unsigned K = 0; K != 4; ++K)
    EXPECT_EQ(M.debugReadWord(0x20000080 + 4 * K), 40 + K % 2) << K;
}

TEST(MachineEdge, PJalForksDirectly) {
  // The direct-call fork: p_jal runs `child` locally while the new hart
  // continues at pc+4.
  std::string Src = R"(
    .equ FLAGS, 0x200000c0
main:
    p_set t0
    la ra, rp
    p_fc t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    p_jal ra, t0, child   # local: child; remote: next line
    p_lwcv ra, 0
    p_lwcv t0, 4
    la a1, FLAGS
    li a2, 2
    sw a2, 4(a1)
    p_syncm
    p_ret

rp: li ra, 0
    li t0, -1
    p_ret

child:
    la a1, FLAGS
    li a2, 1
    sw a2, 0(a1)
    p_syncm
    p_ret
)";
  Machine M = runSrc(Src, 1);
  EXPECT_EQ(M.debugReadWord(0x200000c0), 1u);
  EXPECT_EQ(M.debugReadWord(0x200000c4), 2u);
}

TEST(MachineEdge, ResultSlotBacklogPreservesArrivalOrder) {
  // Three values sent to the same slot before any consumption must be
  // received in arrival order.
  std::string Src = R"(
    .equ OUT, 0x20000100
main:
    p_set t0
    la ra, rp
    p_fc t6
    p_swcv ra, t6, 0
    p_swcv t0, t6, 4
    p_merge t0, t0, t6
    p_syncm
    la a0, consumer
    p_jalr ra, t0, a0
    p_lwcv ra, 0          # producer hart (hart 1)
    p_lwcv t0, 4
    li a2, 11
    li a3, 0              # target: hart 0
    p_swre a2, a3, 5
    li a2, 22
    p_swre a2, a3, 5
    li a2, 33
    p_swre a2, a3, 5
    p_ret

rp: li ra, 0
    li t0, -1
    p_ret

consumer:                 # hart 0
    la a4, OUT
    p_lwre a5, 5
    sw a5, 0(a4)
    p_lwre a5, 5
    sw a5, 4(a4)
    p_lwre a5, 5
    sw a5, 8(a4)
    p_syncm
    p_ret
)";
  Machine M = runSrc(Src, 1);
  EXPECT_EQ(M.debugReadWord(0x20000100), 11u);
  EXPECT_EQ(M.debugReadWord(0x20000104), 22u);
  EXPECT_EQ(M.debugReadWord(0x20000108), 33u);
}

TEST(MachineEdge, MisalignedAccessFaults) {
  Machine M = runSrc(R"(
main:
    li a0, 0x20000001
    lw a1, 0(a0)
)",
                     1, RunStatus::Fault);
  EXPECT_NE(M.faultMessage().find("misaligned"), std::string::npos);
}

TEST(MachineEdge, RobPressureWithDependentLongOps) {
  // A chain of divisions (16-cycle latency) longer than the 8-entry
  // ROB: the window fills and drains correctly.
  std::string Src = R"(
main:
    li a0, 1000000000
    li a1, 3
    div a2, a0, a1
    div a2, a2, a1
    div a2, a2, a1
    div a2, a2, a1
    div a2, a2, a1
    div a2, a2, a1
    div a2, a2, a1
    div a2, a2, a1
    div a2, a2, a1
    div a2, a2, a1
    la a3, 0x20000140
    sw a2, 0(a3)
    p_syncm
    li ra, 0
    li t0, -1
    p_ret
)";
  Machine M = runSrc(Src, 1);
  uint32_t V = 1000000000;
  for (int K = 0; K != 10; ++K)
    V /= 3;
  EXPECT_EQ(M.debugReadWord(0x20000140), V);
  // Each division serializes on the single result buffer.
  EXPECT_GE(M.cycles(), 10u * 16u);
}

TEST(MachineEdge, RecordedTraceTellsThePaperStory) {
  // RecordTrace reproduces statements like the paper's "at cycle C,
  // core X, hart H sends a memory request...".
  SimConfig Cfg = SimConfig::lbp(1);
  Cfg.RecordTrace = true;
  assembler::AsmResult R = assembler::assemble(R"(
main:
    li a0, 9
    la a1, 0x20000000
    sw a0, 0(a1)
    p_syncm
    li ra, 0
    li t0, -1
    p_ret
)");
  ASSERT_TRUE(R.succeeded());
  Machine M(Cfg);
  M.load(R.Prog);
  ASSERT_EQ(M.run(10000), RunStatus::Exited);
  bool SawCommit = false, SawWrite = false, SawExit = false;
  for (const std::string &Line : M.trace().lines()) {
    if (Line.find("commit") != std::string::npos)
      SawCommit = true;
    if (Line.find("bank-write") != std::string::npos)
      SawWrite = true;
    if (Line.find("exit") != std::string::npos)
      SawExit = true;
    EXPECT_EQ(Line.rfind("cycle ", 0), 0u) << Line;
  }
  EXPECT_TRUE(SawCommit);
  EXPECT_TRUE(SawWrite);
  EXPECT_TRUE(SawExit);
}

TEST(MachineEdge, StallStatisticsAccountForEveryIssueSlot) {
  SimConfig Cfg = SimConfig::lbp(1);
  Cfg.CollectStallStats = true;
  assembler::AsmResult R = assembler::assemble(R"(
main:
    li a0, 1000000000
    li a1, 3
    div a2, a0, a1
    div a2, a2, a1
    div a2, a2, a1
    li ra, 0
    li t0, -1
    p_ret
)");
  ASSERT_TRUE(R.succeeded());
  Machine M(Cfg);
  M.load(R.Prog);
  ASSERT_EQ(M.run(10000), RunStatus::Exited);

  uint64_t Accounted = M.issuedCoreCycles();
  for (unsigned C = 0;
       C != static_cast<unsigned>(Machine::StallCause::NumCauses); ++C)
    Accounted += M.stallCycles(static_cast<Machine::StallCause>(C));
  // The exit commit halts the machine before that cycle's issue stage,
  // so the last cycle may be unclassified.
  EXPECT_GE(Accounted + 1, M.cycles());
  EXPECT_LE(Accounted, M.cycles());
  // The dependent divisions spend most slots on the busy result buffer.
  EXPECT_GT(M.stallCycles(Machine::StallCause::RbBusy), 3u * 10u);
}

TEST(MachineEdge, RdcycleMeasuresElapsedTimeExactly) {
  std::string Src = R"(
main:
    rdcycle a0
    li a2, 50
    li a3, 0
tl: addi a3, a3, 1
    bne a3, a2, tl
    rdcycle a1
    sub a1, a1, a0
    rdinstret a4
    la a5, 0x20000180
    sw a1, 0(a5)
    sw a4, 4(a5)
    p_syncm
    li ra, 0
    li t0, -1
    p_ret
)";
  Machine M1 = runSrc(Src, 1);
  Machine M2 = runSrc(Src, 1);
  uint32_t Elapsed = M1.debugReadWord(0x20000180);
  // A 50-iteration 2-instruction loop on one hart: branch-resolution
  // bubbles put it well above 100 cycles but below 400.
  EXPECT_GT(Elapsed, 100u);
  EXPECT_LT(Elapsed, 400u);
  EXPECT_EQ(Elapsed, M2.debugReadWord(0x20000180));
  // instret at its read is below the final retired count but counting.
  EXPECT_GT(M1.debugReadWord(0x20000184), 100u);
}

TEST(MachineEdge, SlotIndexOutOfRangeFaults) {
  Machine M = runSrc("main:\n  p_lwre a0, 99\n", 1, RunStatus::Fault);
  EXPECT_NE(M.faultMessage().find("slot"), std::string::npos);
}

// run(MaxCycles) pauses a healthy machine without losing state: resuming
// completes the program with the same answer a single run produces.
TEST(MachineEdge, MaxCyclesPausesAndResumesLosslessly) {
  std::string Src = R"(
main:
    li a0, 0
    li a1, 1000
loop:
    addi a0, a0, 1
    bne a0, a1, loop
    li a5, 0x20000100
    sw a0, 0(a5)
    p_syncm
    li ra, 0
    li t0, -1
    p_ret
)";
  assembler::AsmResult R = assembler::assemble(Src);
  ASSERT_TRUE(R.succeeded()) << R.errorText();
  Machine M(SimConfig::lbp(1));
  M.load(R.Prog);
  ASSERT_EQ(M.run(100), RunStatus::MaxCycles);
  EXPECT_EQ(M.cycles(), 100u);
  EXPECT_TRUE(M.faultMessage().empty());
  ASSERT_EQ(M.run(2000000), RunStatus::Exited) << M.faultMessage();
  EXPECT_EQ(M.debugReadWord(0x20000100), 1000u);

  Machine One = runSrc(Src, 1);
  EXPECT_EQ(M.cycles(), One.cycles());
  EXPECT_EQ(M.traceHash(), One.traceHash());
}

// The progress guard turns an unsatisfiable wait into RunStatus::Livelock
// rather than spinning until MaxCycles.
TEST(MachineEdge, LivelockIsDistinguishedFromMaxCycles) {
  assembler::AsmResult R =
      assembler::assemble("main:\n  p_lwre a0, 3\nhang:\n  j hang\n");
  ASSERT_TRUE(R.succeeded());
  SimConfig Cfg = SimConfig::lbp(1);
  Cfg.ProgressGuard = 4000;
  Machine M(Cfg);
  M.load(R.Prog);
  EXPECT_EQ(M.run(1000000), RunStatus::Livelock);
  EXPECT_LT(M.cycles(), 1000000u);
  EXPECT_FALSE(M.faultMessage().empty());
}

} // namespace
