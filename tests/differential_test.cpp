//===- tests/differential_test.cpp - Random differential testing ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Property test of the whole pipeline against a tiny reference ISS:
// random (seeded) programs of ALU work, bounded loops and memory traffic
// must leave exactly the same architectural memory state on the
// out-of-order LBP core as on a plain sequential interpreter. This
// checks operand capture, the wakeup logic, store/load ordering under
// p_syncm, and the in-order commit machinery all at once.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "frontend/Compiler.h"
#include "isa/AddressMap.h"
#include "isa/Encoding.h"
#include "isa/HartRef.h"
#include "isa/Reg.h"
#include "sim/Interp.h"
#include "sim/Machine.h"
#include "support/SplitMix64.h"
#include "support/StringUtils.h"
#include "workloads/MatMul.h"
#include "workloads/Phases.h"
#include "workloads/Pipeline.h"

#include <gtest/gtest.h>

#include <fstream>
#include <map>
#include <sstream>

using namespace lbp;
using namespace lbp::isa;
using namespace lbp::sim;

namespace {

/// Generates a random but well-formed program: ALU soup over registers
/// a0-a7/s0-s7, bounded counted loops, global stores/loads separated by
/// p_syncm, finishing with a register dump to memory and the exit.
std::string generateProgram(uint64_t Seed) {
  SplitMix64 Rng(Seed);
  std::string S = "main:\n";
  const char *Work[] = {"a0", "a1", "a2", "a3", "a4", "a5", "a6", "a7",
                        "s0", "s1", "s2", "s3", "s4", "s5", "s6", "s7"};
  constexpr unsigned NumWork = 16;
  auto R = [&] { return Work[Rng.nextBelow(NumWork)]; };

  // Seed registers with values.
  for (unsigned K = 0; K != NumWork; ++K)
    S += formatString("  li %s, %d\n", Work[K],
                      static_cast<int32_t>(Rng.next()));

  unsigned NumLoops = 0;
  for (unsigned Step = 0; Step != 120; ++Step) {
    switch (Rng.nextBelow(8)) {
    case 0:
    case 1:
    case 2: { // register-register ALU
      static const char *Ops[] = {"add", "sub", "xor", "or",  "and",
                                  "sll", "srl", "sra", "slt", "sltu",
                                  "mul", "mulh", "div", "rem"};
      S += formatString("  %s %s, %s, %s\n", Ops[Rng.nextBelow(14)], R(),
                        R(), R());
      break;
    }
    case 3: { // immediate ALU
      static const char *Ops[] = {"addi", "xori", "ori", "andi", "slti"};
      S += formatString("  %s %s, %s, %d\n", Ops[Rng.nextBelow(5)], R(),
                        R(), static_cast<int>(Rng.nextBelow(4096)) - 2048);
      break;
    }
    case 4: { // shift immediate
      static const char *Ops[] = {"slli", "srli", "srai"};
      S += formatString("  %s %s, %s, %u\n", Ops[Rng.nextBelow(3)], R(),
                        R(), static_cast<unsigned>(Rng.nextBelow(32)));
      break;
    }
    case 5: { // store + syncm + load through a scratch slot
      unsigned Slot = static_cast<unsigned>(Rng.nextBelow(16));
      S += formatString("  li t1, 0x20000%03x\n", Slot * 4);
      S += formatString("  sw %s, 0(t1)\n", R());
      S += "  p_syncm\n";
      S += formatString("  lw %s, 0(t1)\n", R());
      // LBP loads and stores are unordered within a hart (paper
      // Sec. 4): a conforming program must drain this load before a
      // later store may target the same slot.
      S += "  p_syncm\n";
      break;
    }
    case 6: { // bounded counted loop of small ALU work
      if (NumLoops == 8)
        break; // keep total work bounded
      unsigned Count = 1 + static_cast<unsigned>(Rng.nextBelow(6));
      std::string Label = formatString("loop_%u", NumLoops++);
      S += formatString("  li t2, %u\n", Count);
      S += Label + ":\n";
      S += formatString("  add %s, %s, %s\n", R(), R(), R());
      S += formatString("  addi %s, %s, %d\n", R(), R(),
                        static_cast<int>(Rng.nextBelow(64)));
      S += "  addi t2, t2, -1\n";
      S += formatString("  bnez t2, %s\n", Label.c_str());
      break;
    }
    default: { // conditional skip (forward branch)
      std::string Label = formatString("skip_%u", Step);
      static const char *Br[] = {"beq", "bne", "blt", "bge", "bltu",
                                 "bgeu"};
      S += formatString("  %s %s, %s, %s\n", Br[Rng.nextBelow(6)], R(),
                        R(), Label.c_str());
      S += formatString("  add %s, %s, %s\n", R(), R(), R());
      S += Label + ":\n";
      break;
    }
    }
  }

  // Dump every working register into the result area.
  S += "  li t1, 0x20000400\n";
  for (unsigned K = 0; K != NumWork; ++K)
    S += formatString("  sw %s, %u(t1)\n", Work[K], 4 * K);
  S += "  p_syncm\n  li ra, 0\n  li t0, -1\n  p_ret\n";
  return S;
}

class Differential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Differential, MachineMatchesReferenceIss) {
  for (uint64_t Sub = 0; Sub != 10; ++Sub) {
    uint64_t Seed = GetParam() * 1000 + Sub;
    std::string Src = generateProgram(Seed);
    assembler::AsmResult R = assembler::assemble(Src);
    ASSERT_TRUE(R.succeeded()) << R.errorText() << "\n" << Src;

    Interp Iss(R.Prog);
    ASSERT_EQ(Iss.run(100000), InterpStatus::Exited)
        << "oracle did not finish, seed " << Seed;

    Machine M(SimConfig::lbp(1));
    M.load(R.Prog);
    ASSERT_EQ(M.run(1000000), RunStatus::Exited)
        << M.faultMessage() << " seed " << Seed;

    for (unsigned K = 0; K != 16; ++K) {
      uint32_t Addr = 0x20000400 + 4 * K;
      EXPECT_EQ(M.debugReadWord(Addr), Iss.readWord(Addr))
          << "register dump slot " << K << ", seed " << Seed;
    }
    for (unsigned Slot = 0; Slot != 16; ++Slot) {
      uint32_t Addr = 0x20000000 + 4 * Slot;
      EXPECT_EQ(M.debugReadWord(Addr), Iss.readWord(Addr))
          << "scratch slot " << Slot << ", seed " << Seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Values(1ull, 7ull, 42ull, 1234ull,
                                           0xC0FFEEull));

//===----------------------------------------------------------------------===//
// FastPath differential: the fast engine (SimConfig::FastPath — cycle
// skipping, active-set scheduling, pre-decoded text) must be an exact
// no-op on the observable run: same RunStatus, same final cycle count,
// same retired count, same cycle-by-cycle trace hash as the reference
// every-core-every-cycle loop. docs/PERFORMANCE.md states the contract;
// these tests enforce it over every paper workload plus the Det-C
// corpus and the random-program generator above.
//===----------------------------------------------------------------------===//

/// The observable fingerprint of a run; any divergence between the two
/// engines is a fast-path bug by definition.
struct RunFingerprint {
  RunStatus Status;
  uint64_t Cycles;
  uint64_t Retired;
  uint64_t Hash;
  std::string Message;
};

RunFingerprint runWith(const assembler::Program &Prog, SimConfig Cfg,
                       bool FastPath, uint64_t MaxCycles) {
  Cfg.FastPath = FastPath;
  Machine M(Cfg);
  M.load(Prog);
  RunStatus S = M.run(MaxCycles);
  return {S, M.cycles(), M.retired(), M.traceHash(), M.faultMessage()};
}

/// Assembles \p Src and runs it twice, FastPath off then on, expecting
/// identical fingerprints. Programs that fault or hit MaxCycles are
/// compared too — truncated and failed runs must also be bit-identical.
void expectFastPathIdentical(const std::string &Src, SimConfig Cfg,
                             const std::string &What,
                             uint64_t MaxCycles = 2000000) {
  assembler::AsmResult R = assembler::assemble(Src);
  ASSERT_TRUE(R.succeeded()) << What << ":\n" << R.errorText();
  RunFingerprint Ref = runWith(R.Prog, Cfg, /*FastPath=*/false, MaxCycles);
  RunFingerprint Fast = runWith(R.Prog, Cfg, /*FastPath=*/true, MaxCycles);
  EXPECT_EQ(static_cast<int>(Ref.Status), static_cast<int>(Fast.Status))
      << What;
  EXPECT_EQ(Ref.Cycles, Fast.Cycles) << What;
  EXPECT_EQ(Ref.Retired, Fast.Retired) << What;
  EXPECT_EQ(Ref.Hash, Fast.Hash) << What;
  EXPECT_EQ(Ref.Message, Fast.Message) << What;
}

TEST(FastPathDifferential, RandomPrograms) {
  for (uint64_t Seed : {11ull, 23ull, 99ull, 4242ull, 0xBEEFull})
    expectFastPathIdentical(generateProgram(Seed), SimConfig::lbp(1),
                            formatString("random program seed %llu",
                                         static_cast<unsigned long long>(
                                             Seed)));
}

TEST(FastPathDifferential, MatMulAllVersions) {
  using workloads::MatMulSpec;
  using workloads::MatMulVersion;
  for (MatMulVersion V :
       {MatMulVersion::Base, MatMulVersion::Copy, MatMulVersion::Distributed,
        MatMulVersion::DistCopy, MatMulVersion::Tiled}) {
    MatMulSpec Spec = MatMulSpec::paper(16, V);
    SimConfig Cfg = SimConfig::lbp(Spec.cores());
    Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
    expectFastPathIdentical(workloads::buildMatMulProgram(Spec), Cfg,
                            std::string("matmul-") +
                                workloads::matMulVersionName(V));
  }
}

TEST(FastPathDifferential, PhasesAndPipeline) {
  workloads::PhasesSpec PSpec;
  PSpec.NumHarts = 16;
  SimConfig PCfg = SimConfig::lbp(PSpec.cores());
  PCfg.GlobalBankSizeLog2 = PSpec.BankSizeLog2;
  expectFastPathIdentical(workloads::buildPhasesProgram(PSpec), PCfg,
                          "phases");

  workloads::PipelineSpec LSpec;
  SimConfig LCfg = SimConfig::lbp(LSpec.cores());
  LCfg.GlobalBankSizeLog2 = LSpec.BankSizeLog2;
  expectFastPathIdentical(workloads::buildPipelineProgram(LSpec), LCfg,
                          "pipeline");
}

TEST(FastPathDifferential, DetCCorpus) {
  for (const char *Name :
       {"vector_scale", "chunked_sum", "phased_stencil"}) {
    std::string Path =
        std::string(LBP_SOURCE_DIR "/examples/detc/") + Name + ".c";
    std::ifstream In(Path);
    ASSERT_TRUE(In.good()) << "cannot open " << Path;
    std::ostringstream Buf;
    Buf << In.rdbuf();
    std::string Errors;
    std::string Asm = frontend::compileDetCToAsm(Buf.str(), Errors);
    ASSERT_FALSE(Asm.empty()) << Name << ":\n" << Errors;
    expectFastPathIdentical(Asm, SimConfig::lbp(4),
                            std::string("detc ") + Name);
  }
}

TEST(FastPathDifferential, MaxCyclesTruncation) {
  // A run cut off mid-flight must stop at the same cycle with the same
  // trace whether or not the engine was skipping quiescent spans: the
  // fast path charges every skipped cycle against the budget.
  workloads::PhasesSpec Spec;
  Spec.NumHarts = 16;
  SimConfig Cfg = SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  std::string Src = workloads::buildPhasesProgram(Spec);
  for (uint64_t MaxCycles : {100ull, 777ull, 2048ull, 5000ull}) {
    expectFastPathIdentical(
        Src, Cfg,
        formatString("phases truncated at %llu",
                     static_cast<unsigned long long>(MaxCycles)),
        MaxCycles);
  }
}

} // namespace
