//===- tests/workloads_matmul_test.cpp - Matmul workload correctness ----------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Every one of the paper's five matmul versions must compute Z = X * Y
// exactly (X = Y = all ones, so Z = h/2 everywhere), at the 4-core and
// 16-core machine sizes, and the base version's retired-instruction
// count must sit at the paper's anchor (7 * h^3/2 plus small overhead).
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "sim/Machine.h"
#include "workloads/MatMul.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::sim;
using namespace lbp::workloads;

namespace {

Machine runSpec(const MatMulSpec &Spec, uint64_t MaxCycles = 30000000) {
  std::string Asm = buildMatMulProgram(Spec);
  assembler::AsmResult R = assembler::assemble(Asm);
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  Machine M(SimConfig::lbp(Spec.cores()));
  M.load(R.Prog);
  RunStatus S = M.run(MaxCycles);
  EXPECT_EQ(S, RunStatus::Exited) << M.faultMessage();
  return M;
}

void expectCorrectZ(Machine &M, const MatMulSpec &Spec) {
  unsigned H = Spec.h();
  unsigned Bad = 0;
  for (unsigned I = 0; I != H && Bad < 8; ++I) {
    for (unsigned J = 0; J != H && Bad < 8; ++J) {
      uint32_t Got = M.debugReadWord(zElementAddress(Spec, I, J));
      if (Got != H / 2) {
        ADD_FAILURE() << "Z[" << I << "][" << J << "] = " << Got
                      << ", want " << H / 2;
        ++Bad;
      }
    }
  }
}

struct Param {
  unsigned NumHarts;
  MatMulVersion V;
};

class MatMulAll : public ::testing::TestWithParam<Param> {};

TEST_P(MatMulAll, ComputesTheProduct) {
  MatMulSpec Spec;
  Spec.NumHarts = GetParam().NumHarts;
  Spec.Version = GetParam().V;
  Machine M = runSpec(Spec);
  expectCorrectZ(M, Spec);
}

std::string paramName(const ::testing::TestParamInfo<Param> &Info) {
  std::string N = matMulVersionName(Info.param.V);
  for (char &C : N)
    if (C == '+')
      C = '_';
  return N + "_h" + std::to_string(Info.param.NumHarts);
}

INSTANTIATE_TEST_SUITE_P(
    Versions, MatMulAll,
    ::testing::Values(Param{16, MatMulVersion::Base},
                      Param{16, MatMulVersion::Copy},
                      Param{16, MatMulVersion::Distributed},
                      Param{16, MatMulVersion::DistCopy},
                      Param{16, MatMulVersion::Tiled},
                      Param{64, MatMulVersion::Base},
                      Param{64, MatMulVersion::Copy},
                      Param{64, MatMulVersion::Distributed},
                      Param{64, MatMulVersion::DistCopy},
                      Param{64, MatMulVersion::Tiled}),
    paramName);

TEST(MatMulAnchors, BaseRetiredCountMatchesThePaperShape) {
  // Paper Fig. 19: the 4-core base version retires ~16.7K instructions:
  // 7 * h^3/2 = 14336 from the inner loop plus ~2.4K of outer loops and
  // parallelization control.
  MatMulSpec Spec;
  Spec.NumHarts = 16;
  Spec.Version = MatMulVersion::Base;
  Machine M = runSpec(Spec);
  uint64_t Inner = 7ull * 16 * 16 * 8;
  EXPECT_GE(M.retired(), Inner);
  EXPECT_LE(M.retired(), Inner + 4000) << "outer-loop overhead too large";
}

TEST(MatMulAnchors, TiledRetiresMoreInstructionsThanBase) {
  // Paper Fig. 21: tiling costs extra instructions (+23% at h=256).
  MatMulSpec Base{64, MatMulVersion::Base, 16};
  MatMulSpec Tiled{64, MatMulVersion::Tiled, 16};
  Machine MB = runSpec(Base);
  Machine MT = runSpec(Tiled);
  EXPECT_GT(MT.retired(), MB.retired());
  EXPECT_LT(MT.retired(), MB.retired() * 3 / 2);
}

TEST(MatMulAnchors, RunsAreDeterministic) {
  MatMulSpec Spec{16, MatMulVersion::Tiled, 16};
  Machine M1 = runSpec(Spec);
  Machine M2 = runSpec(Spec);
  EXPECT_EQ(M1.cycles(), M2.cycles());
  EXPECT_EQ(M1.retired(), M2.retired());
  EXPECT_EQ(M1.traceHash(), M2.traceHash());
}

} // namespace
