//===- tests/snapshot_test.cpp - Checkpoint/restore determinism -------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The restore guarantee of sim/Snapshot.h (docs/ROBUSTNESS.md "Restore
// guarantees"): a run that is snapshotted at an arbitrary cycle and
// resumed on a *fresh* machine finishes with the exact observable
// fingerprint — RunStatus, cycle count, retired count, trace hash chain,
// fault message, machine-check list and the canonical counter snapshot —
// of the run that was never interrupted. Swept across all three engines
// (reference, fast path, sharded parallel), across host thread counts,
// through open fault-injection windows and through the X_PAR fork/join
// handshake, because those are exactly the states a fleet worker dies
// in. Also: save -> restore -> save is byte-identical (the blob is a
// pure function of machine state), and malformed blobs are rejected
// without crashing.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "obs/Report.h"
#include "romp/AsmText.h"
#include "romp/Runtime.h"
#include "sim/Interp.h"
#include "sim/Machine.h"
#include "sim/Snapshot.h"
#include "support/StringUtils.h"
#include "workloads/Phases.h"
#include "workloads/Pipeline.h"
#include "workloads/SensorFusion.h"

#include <gtest/gtest.h>

using namespace lbp;
using namespace lbp::sim;

namespace {

/// One engine/thread cell of the sweep.
struct EngineCell {
  const char *Name;
  bool FastPath;
  unsigned Threads;
};
constexpr EngineCell Cells[] = {
    {"reference", false, 1},
    {"fastpath", true, 1},
    {"parallel-2", true, 2},
    {"parallel-4", true, 4},
};

SimConfig cellConfig(SimConfig Cfg, const EngineCell &C) {
  Cfg.FastPath = C.FastPath;
  Cfg.HostThreads = C.Threads;
  // Real shard workers even on a small CI host, so the parallel cells
  // checkpoint actual sharded runs.
  Cfg.OversubscribeHost = true;
  Cfg.CollectCounters = true;
  return Cfg;
}

/// The full observable outcome of a finished run.
struct Fingerprint {
  RunStatus Status;
  uint64_t Cycles;
  uint64_t Retired;
  uint64_t Hash;
  std::string Message;
  size_t NumChecks;
  std::string Counters;

  bool operator==(const Fingerprint &O) const {
    return Status == O.Status && Cycles == O.Cycles &&
           Retired == O.Retired && Hash == O.Hash && Message == O.Message &&
           NumChecks == O.NumChecks && Counters == O.Counters;
  }
};

Fingerprint fingerprint(const Machine &M, RunStatus S) {
  return {S,
          M.cycles(),
          M.retired(),
          M.traceHash(),
          M.faultMessage(),
          M.machineChecks().size(),
          obs::countersToJson(M)};
}

assembler::Program assembleOrDie(const std::string &Src) {
  assembler::AsmResult R = assembler::assemble(Src);
  EXPECT_TRUE(R.succeeded()) << R.errorText();
  return R.Prog;
}

/// Runs \p Prog uninterrupted under \p Cfg; then re-runs it snapshotting
/// at \p SnapAt cycles, restores the blob into a fresh machine built
/// with \p ResumeCfg (never load()ed — the blob carries the code image),
/// finishes there, and expects the identical fingerprint. Also checks
/// save -> restore -> save byte-identity on the way through.
void expectResumeIdentical(const assembler::Program &Prog, SimConfig Cfg,
                           SimConfig ResumeCfg, uint64_t SnapAt,
                           const std::string &What,
                           uint64_t Budget = 4000000) {
  Machine Full(Cfg);
  Full.load(Prog);
  Fingerprint Want = fingerprint(Full, Full.run(Budget));

  Machine First(Cfg);
  First.load(Prog);
  First.run(SnapAt);
  std::vector<uint8_t> Blob;
  First.saveSnapshot(Blob);

  Machine Second(ResumeCfg);
  std::string Err;
  ASSERT_TRUE(Second.restoreSnapshot(Blob, Err)) << What << ": " << Err;

  // The blob is a pure function of the state it captured.
  std::vector<uint8_t> Blob2;
  Second.saveSnapshot(Blob2);
  EXPECT_EQ(Blob, Blob2) << What << ": save/restore/save not byte-identical";

  Fingerprint Got = fingerprint(Second, Second.run(Budget));
  EXPECT_TRUE(Want == Got)
      << What << formatString(" (snapshot at %llu cycles): resumed run "
                              "diverged from the uninterrupted one",
                              static_cast<unsigned long long>(SnapAt))
      << "\n  status " << runStatusName(Want.Status) << " vs "
      << runStatusName(Got.Status) << "\n  cycles " << Want.Cycles << " vs "
      << Got.Cycles << "\n  hash " << Want.Hash << " vs " << Got.Hash;
}

std::string phasesSrc() {
  workloads::PhasesSpec Spec;
  Spec.NumHarts = 16;
  return workloads::buildPhasesProgram(Spec);
}

std::string pipelineSrc() {
  workloads::PipelineSpec Spec;
  Spec.Stages = 8;
  Spec.Items = 32;
  return workloads::buildPipelineProgram(Spec);
}

//===----------------------------------------------------------------------===//
// Engine x thread-count sweep at assorted snapshot cycles
//===----------------------------------------------------------------------===//

TEST(Snapshot, ResumeMatchesUninterruptedAcrossEnginesPhases) {
  assembler::Program Prog = assembleOrDie(phasesSrc());
  for (const EngineCell &C : Cells) {
    SimConfig Cfg = cellConfig(SimConfig::lbp(4), C);
    for (uint64_t SnapAt : {1ull, 37ull, 200ull, 1000ull})
      expectResumeIdentical(Prog, Cfg, Cfg, SnapAt,
                            std::string("phases/") + C.Name);
  }
}

TEST(Snapshot, ResumeMatchesUninterruptedAcrossEnginesPipeline) {
  assembler::Program Prog = assembleOrDie(pipelineSrc());
  for (const EngineCell &C : Cells) {
    SimConfig Cfg = cellConfig(SimConfig::lbp(4), C);
    for (uint64_t SnapAt : {5ull, 333ull, 2048ull})
      expectResumeIdentical(Prog, Cfg, Cfg, SnapAt,
                            std::string("pipeline/") + C.Name);
  }
}

/// The fork/join handshake window: the phases team forks within the
/// first couple hundred cycles, so a dense sweep over that range lands
/// snapshots between p_fc allocation, start-message flight, token
/// passes and the join — the protocol states a checkpoint must carry.
TEST(Snapshot, ResumeMidXParHandshake) {
  assembler::Program Prog = assembleOrDie(phasesSrc());
  for (const EngineCell &C : Cells) {
    SimConfig Cfg = cellConfig(SimConfig::lbp(4), C);
    for (uint64_t SnapAt = 2; SnapAt < 160; SnapAt += 13)
      expectResumeIdentical(Prog, Cfg, Cfg, SnapAt,
                            std::string("handshake/") + C.Name);
  }
}

//===----------------------------------------------------------------------===//
// Cross-engine restore (host-only knobs may differ between save/resume)
//===----------------------------------------------------------------------===//

TEST(Snapshot, BlobIsPortableAcrossEngines) {
  assembler::Program Prog = assembleOrDie(phasesSrc());
  for (const EngineCell &From : Cells) {
    for (const EngineCell &To : Cells) {
      SimConfig FromCfg = cellConfig(SimConfig::lbp(4), From);
      SimConfig ToCfg = cellConfig(SimConfig::lbp(4), To);
      expectResumeIdentical(Prog, FromCfg, ToCfg, /*SnapAt=*/97,
                            std::string("cross/") + From.Name + "->" +
                                To.Name);
    }
  }
}

//===----------------------------------------------------------------------===//
// Mid multi-cycle-epoch stretch
//===----------------------------------------------------------------------===//

/// Harts spinning in private ALU loops: the shape where the parallel
/// engine's adaptive planner runs multi-cycle epochs nearly all the
/// time (see ThreadSweep.QuiescentStretchesUseMultiCycleEpochs).
std::string spinSrc() {
  romp::AsmText Head;
  romp::emitMainPrologue(Head);
  Head.line("li s1, 3");
  Head.label("round");
  romp::emitParallelCall(Head, "worker", 16, "0");
  Head.line("addi s1, s1, -1");
  Head.line("bnez s1, round");
  romp::AsmText Tail;
  romp::emitMainEpilogue(Tail);
  romp::emitParallelStart(Tail);
  return Head.str() + Tail.str() + R"(
    .equ OUT, 0x20000200
worker:
    li a2, 250
spin:
    addi a2, a2, -1
    bnez a2, spin
    slli a4, a0, 2
    la a5, OUT
    add a4, a4, a5
    sw a0, 0(a4)
    p_syncm
    p_ret
)";
}

TEST(Snapshot, ResumeMidMultiCycleEpochStretch) {
  // Snapshot budgets landing inside the long windowed stretches. The
  // engine clips every window to the remaining budget, so run(N) always
  // stops on a fully merged epoch boundary and the blob is an ordinary
  // between-cycles state — portable to every engine, including back to
  // a windowed parallel run that re-plans from the restored wheel.
  assembler::Program Prog = assembleOrDie(spinSrc());
  SimConfig Par = cellConfig(SimConfig::lbp(4), Cells[3]); // parallel-4
  for (const EngineCell &To : Cells) {
    SimConfig ToCfg = cellConfig(SimConfig::lbp(4), To);
    for (uint64_t SnapAt : {150ull, 731ull, 1500ull})
      expectResumeIdentical(Prog, Par, ToCfg, SnapAt,
                            std::string("midwindow/parallel-4->") +
                                To.Name);
  }
}

//===----------------------------------------------------------------------===//
// Mid fault-injection window
//===----------------------------------------------------------------------===//

TEST(Snapshot, ResumeInsideOpenFaultWindow) {
  assembler::Program Prog = assembleOrDie(phasesSrc());
  SimConfig Base = SimConfig::lbp(4);
  Base.Faults.Seed = 7;
  Base.Faults.Drops = 1;
  Base.Faults.Delays = 2;
  Base.Faults.StuckBanks = 1;
  Base.Faults.WindowBegin = 20;
  Base.Faults.WindowEnd = 600;
  Base.Faults.StuckDuration = 256;
  for (const EngineCell &C : Cells) {
    SimConfig Cfg = cellConfig(Base, C);
    // Snapshots straddle the window: before it opens, inside it (some
    // events fired, some armed, a stuck-bank window possibly mid-flight)
    // and after it closes.
    for (uint64_t SnapAt : {10ull, 64ull, 300ull, 900ull})
      expectResumeIdentical(Prog, Cfg, Cfg, SnapAt,
                            std::string("faults/") + C.Name);
  }
}

TEST(Snapshot, FaultCursorSurvivesRestore) {
  assembler::Program Prog = assembleOrDie(phasesSrc());
  SimConfig Cfg = SimConfig::lbp(4);
  Cfg.Faults.Seed = 11;
  Cfg.Faults.Delays = 3;
  Cfg.Faults.WindowBegin = 1;
  Cfg.Faults.WindowEnd = 400;

  Machine M(Cfg);
  M.load(Prog);
  M.run(4000000);
  unsigned WantFired = M.faultPlan().firedCount();
  ASSERT_GT(WantFired, 0u) << "plan never fired; pick another seed";

  Machine First(Cfg);
  First.load(Prog);
  First.run(200);
  std::vector<uint8_t> Blob;
  First.saveSnapshot(Blob);
  Machine Second(Cfg);
  std::string Err;
  ASSERT_TRUE(Second.restoreSnapshot(Blob, Err)) << Err;
  EXPECT_EQ(Second.faultPlan().firedCount(), First.faultPlan().firedCount());
  Second.run(4000000);
  EXPECT_EQ(Second.faultPlan().firedCount(), WantFired);
}

//===----------------------------------------------------------------------===//
// Devices
//===----------------------------------------------------------------------===//

/// Builds the sensor-fusion machine (4 seeded sensors + actuator).
/// Device state — RNG cursors, armed samples, the actuator log — is
/// part of the snapshot, so a mid-round resume must not replay or skip
/// an actuation.
void addFusionDevices(Machine &M, uint64_t Seed, unsigned Rounds) {
  for (unsigned S = 0; S != 4; ++S) {
    std::vector<uint32_t> Samples;
    for (unsigned K = 0; K != Rounds; ++K)
      Samples.push_back(100 * (S + 1) + K);
    M.addDevice(workloads::SensorBase(S), 0x100,
                std::make_unique<SensorDevice>(Samples, Seed + S, 20, 400));
  }
  M.addDevice(workloads::ActuatorBase, 0x100,
              std::make_unique<ActuatorDevice>());
}

TEST(Snapshot, DeviceStateRoundTrips) {
  workloads::SensorFusionSpec Spec;
  Spec.Rounds = 6;
  assembler::Program Prog =
      assembleOrDie(workloads::buildSensorFusionProgram(Spec));
  SimConfig Cfg = SimConfig::lbp(1);
  Cfg.CollectCounters = true;

  Machine Full(Cfg);
  Full.load(Prog);
  addFusionDevices(Full, /*Seed=*/5, Spec.Rounds);
  Fingerprint Want = fingerprint(Full, Full.run(10000000));
  ASSERT_EQ(Want.Status, RunStatus::Exited) << Full.faultMessage();

  for (uint64_t SnapAt : {50ull, 777ull, 3000ull}) {
    Machine First(Cfg);
    First.load(Prog);
    addFusionDevices(First, /*Seed=*/5, Spec.Rounds);
    First.run(SnapAt);
    std::vector<uint8_t> Blob;
    First.saveSnapshot(Blob);

    Machine Second(Cfg);
    addFusionDevices(Second, /*Seed=*/5, Spec.Rounds);
    std::string Err;
    ASSERT_TRUE(Second.restoreSnapshot(Blob, Err)) << Err;
    Fingerprint Got = fingerprint(Second, Second.run(10000000));
    EXPECT_TRUE(Want == Got) << "sensor-fusion resume at " << SnapAt
                             << " diverged (cycles " << Want.Cycles << " vs "
                             << Got.Cycles << ")";
  }
}

TEST(Snapshot, DeviceCountMismatchRejected) {
  workloads::SensorFusionSpec Spec;
  assembler::Program Prog =
      assembleOrDie(workloads::buildSensorFusionProgram(Spec));
  SimConfig Cfg = SimConfig::lbp(1);
  Machine First(Cfg);
  First.load(Prog);
  addFusionDevices(First, /*Seed=*/5, Spec.Rounds);
  First.run(100);
  std::vector<uint8_t> Blob;
  First.saveSnapshot(Blob);

  Machine Second(Cfg); // no devices added
  std::string Err;
  EXPECT_FALSE(Second.restoreSnapshot(Blob, Err));
  EXPECT_NE(Err.find("device count"), std::string::npos) << Err;
}

//===----------------------------------------------------------------------===//
// Terminal states and rejection paths
//===----------------------------------------------------------------------===//

TEST(Snapshot, FinishedRunStatePersists) {
  assembler::Program Prog = assembleOrDie(phasesSrc());
  SimConfig Cfg = SimConfig::lbp(4);
  Machine M(Cfg);
  M.load(Prog);
  ASSERT_EQ(M.run(4000000), RunStatus::Exited) << M.faultMessage();
  std::vector<uint8_t> Blob;
  M.saveSnapshot(Blob);

  Machine R(Cfg);
  std::string Err;
  ASSERT_TRUE(R.restoreSnapshot(Blob, Err)) << Err;
  EXPECT_EQ(R.status(), RunStatus::Exited);
  EXPECT_EQ(R.cycles(), M.cycles());
  EXPECT_EQ(R.traceHash(), M.traceHash());
  EXPECT_EQ(R.retired(), M.retired());
}

TEST(Snapshot, RejectsBadMagicVersionDigestAndTruncation) {
  assembler::Program Prog = assembleOrDie(phasesSrc());
  SimConfig Cfg = SimConfig::lbp(4);
  Machine M(Cfg);
  M.load(Prog);
  M.run(100);
  std::vector<uint8_t> Blob;
  M.saveSnapshot(Blob);
  std::string Err;

  { // Bad magic.
    std::vector<uint8_t> B = Blob;
    B[0] ^= 0xff;
    Machine R(Cfg);
    EXPECT_FALSE(R.restoreSnapshot(B, Err));
    EXPECT_NE(Err.find("magic"), std::string::npos) << Err;
  }
  { // Wrong format version.
    std::vector<uint8_t> B = Blob;
    B[4] ^= 0xff;
    Machine R(Cfg);
    EXPECT_FALSE(R.restoreSnapshot(B, Err));
    EXPECT_NE(Err.find("version"), std::string::npos) << Err;
  }
  { // Behaviorally different config: digest must refuse.
    SimConfig Other = Cfg;
    Other.AluLatency += 1;
    Machine R(Other);
    EXPECT_FALSE(R.restoreSnapshot(Blob, Err));
    EXPECT_NE(Err.find("digest"), std::string::npos) << Err;
  }
  { // Host-only knobs do NOT change the digest.
    SimConfig Host = Cfg;
    Host.FastPath = !Host.FastPath;
    Host.HostThreads = 8;
    Host.RecordTrace = true;
    EXPECT_EQ(snapshotConfigDigest(Host), snapshotConfigDigest(Cfg));
  }
  { // Truncation at every prefix length of the tail must fail cleanly.
    for (size_t Cut : {Blob.size() - 1, Blob.size() / 2, size_t(12)}) {
      std::vector<uint8_t> B(Blob.begin(), Blob.begin() + Cut);
      Machine R(Cfg);
      EXPECT_FALSE(R.restoreSnapshot(B, Err)) << "cut=" << Cut;
    }
  }
}

//===----------------------------------------------------------------------===//
// Interp checkpointing
//===----------------------------------------------------------------------===//

TEST(Snapshot, InterpRoundTrip) {
  // A loop with enough memory traffic to populate the page overlay.
  assembler::Program Prog = assembleOrDie(R"(
      .text
  main:
      li t0, -1
      li sp, 0x00110000
      li a0, 0            # i
      li a1, 200          # n
      li a2, 0x10000000   # base
  loop:
      slli a3, a0, 2
      add a3, a3, a2
      sw a0, 0(a3)
      lw a4, 0(a3)
      add a5, a5, a4
      addi a0, a0, 1
      blt a0, a1, loop
      p_ret
  )");

  Interp Full(Prog);
  InterpStatus WantStatus = Full.run(100000);
  uint64_t WantSteps = Full.steps();

  Interp First(Prog);
  First.run(137);
  std::vector<uint8_t> Blob;
  First.saveSnapshot(Blob);

  Interp Second(Prog);
  std::string Err;
  ASSERT_TRUE(Second.restoreSnapshot(Blob, Err)) << Err;
  EXPECT_EQ(Second.pc(), First.pc());
  EXPECT_EQ(Second.steps(), First.steps());

  InterpStatus GotStatus = Second.run(100000);
  EXPECT_EQ(static_cast<int>(GotStatus), static_cast<int>(WantStatus));
  EXPECT_EQ(Second.steps(), WantSteps);
  for (unsigned R = 0; R != 32; ++R)
    EXPECT_EQ(Second.reg(R), Full.reg(R)) << "x" << R;
  for (unsigned I = 0; I != 200; ++I)
    EXPECT_EQ(Second.readWord(0x10000000 + 4 * I),
              Full.readWord(0x10000000 + 4 * I))
        << "word " << I;

  std::vector<uint8_t> Bad(Blob.begin(), Blob.begin() + Blob.size() / 3);
  Interp Third(Prog);
  EXPECT_FALSE(Third.restoreSnapshot(Bad, Err));
}

} // namespace
