//===- examples/sensor_fusion.cpp - Non-interruptible real-time I/O -------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's Section 6 scenario (Figs. 16/17): a single-core LBP
// microcontroller polls four sensors with a 4-hart team, fuses the
// samples and drives an actuator — no interrupts anywhere. The sensors
// answer after pseudo-random delays; run the example with different
// seeds to see the timing move while the actuated values stay identical:
//
//   ./sensor_fusion [seed]
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "sim/Machine.h"
#include "workloads/SensorFusion.h"

#include <cstdio>
#include <cstdlib>
#include <memory>

using namespace lbp;
using namespace lbp::sim;
using namespace lbp::workloads;

int main(int argc, char **argv) {
  uint64_t Seed = argc > 1 ? std::strtoull(argv[1], nullptr, 0) : 1;
  constexpr unsigned Rounds = 6;

  SensorFusionSpec Spec;
  Spec.Rounds = Rounds;
  assembler::AsmResult R =
      assembler::assemble(buildSensorFusionProgram(Spec));
  if (!R.succeeded()) {
    std::fprintf(stderr, "assembly failed:\n%s", R.errorText().c_str());
    return 1;
  }

  Machine M(SimConfig::lbp(1));
  M.load(R.Prog);

  // Four sensors: temperature-ish streams, 20..500 cycle response times.
  for (unsigned S = 0; S != 4; ++S) {
    std::vector<uint32_t> Samples;
    for (unsigned K = 0; K != Rounds; ++K)
      Samples.push_back(20 + 5 * S + K);
    M.addDevice(SensorBase(S), 0x100,
                std::make_unique<SensorDevice>(Samples, Seed + 31 * S, 20,
                                               500));
  }
  auto Act = std::make_unique<ActuatorDevice>();
  ActuatorDevice *ActPtr = Act.get();
  M.addDevice(ActuatorBase, 0x100, std::move(Act));

  if (M.run(10000000) != RunStatus::Exited) {
    std::fprintf(stderr, "run failed: %s\n", M.faultMessage().c_str());
    return 1;
  }

  std::printf("sensor fusion on a 1-core / 4-hart LBP, seed %llu\n\n",
              static_cast<unsigned long long>(Seed));
  std::printf("%8s %12s   (fused = (s0+s1+s2+s3)/4)\n", "round",
              "actuated");
  for (unsigned K = 0; K != ActPtr->records().size(); ++K) {
    const ActuatorDevice::Record &Rec = ActPtr->records()[K];
    std::printf("%8u %12u   at cycle %llu\n", K, Rec.Value,
                static_cast<unsigned long long>(Rec.Cycle));
  }
  std::printf("\ntotal: %llu cycles, %llu instructions\n",
              static_cast<unsigned long long>(M.cycles()),
              static_cast<unsigned long long>(M.retired()));
  std::printf("Try another seed: the cycles change, the values do "
              "not.\n");
  return 0;
}
