//===- examples/quickstart.cpp - First steps with the LBP library ---------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Builds a small Deterministic OpenMP program with the kernel-language
// API, runs it on a simulated 4-core LBP, and demonstrates the headline
// property: the run is cycle-deterministic.
//
// The program is the paper's introductory shape (Fig. 1): a parallel for
// over 16 harts, each computing into its own slot of a shared vector,
// followed by a reduction.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "dsl/Ast.h"
#include "dsl/CodeGen.h"
#include "sim/Machine.h"

#include <cstdio>

using namespace lbp;

int main() {
  // --- 1. Describe the program. --------------------------------------
  dsl::Module M;
  constexpr uint32_t OutAddr = 0x20000100;
  M.global("out", OutAddr, 16);

  // thread(t): out[t] = t^2, and send 3*t to the team head's reduction
  // slot.
  dsl::Function *Thread = M.function("thread", dsl::FnKind::Thread);
  const dsl::Local *T = Thread->param("t");
  Thread->append(M.store(M.add(M.addrOf("out"), M.shl(M.v(T), 2)), 0,
                         M.mul(M.v(T), M.v(T))));
  Thread->append(M.reduceSend(M.mul(M.v(T), M.c(3))));

  // main: launch the 16-hart team, fold the 16 partials, store the sum.
  constexpr uint32_t SumAddr = 0x20000140;
  M.global("sum", SumAddr, 1);
  dsl::Function *Main = M.function("main", dsl::FnKind::Main);
  const dsl::Local *Acc = Main->local("acc");
  Main->append(M.assign(Acc, M.c(0)));
  Main->append(M.parallelFor("thread", 16));
  Main->append(M.reduceCollect(Acc, 16));
  Main->append(M.store(M.addrOf("sum"), 0, M.v(Acc)));
  Main->append(M.syncm());

  // --- 2. Compile and assemble. ---------------------------------------
  std::string Asm = dsl::compileModule(M);
  assembler::AsmResult R = assembler::assemble(Asm);
  if (!R.succeeded()) {
    std::fprintf(stderr, "assembly failed:\n%s", R.errorText().c_str());
    return 1;
  }
  std::printf("compiled to %u bytes of RV32IM+X_PAR text\n",
              R.Prog.textSize());

  // --- 3. Run twice on a 4-core LBP and compare. -----------------------
  auto Run = [&R] {
    sim::Machine M(sim::SimConfig::lbp(4));
    M.load(R.Prog);
    sim::RunStatus S = M.run(1000000);
    if (S != sim::RunStatus::Exited) {
      std::fprintf(stderr, "run failed: %s\n", M.faultMessage().c_str());
      std::exit(1);
    }
    return M.traceHash();
  };

  sim::Machine Mach(sim::SimConfig::lbp(4));
  Mach.load(R.Prog);
  if (Mach.run(1000000) != sim::RunStatus::Exited) {
    std::fprintf(stderr, "run failed: %s\n", Mach.faultMessage().c_str());
    return 1;
  }

  std::printf("\nout[t] = t^2 computed by 16 harts on 4 cores:\n  ");
  for (unsigned K = 0; K != 16; ++K)
    std::printf("%u ", Mach.debugReadWord(OutAddr + 4 * K));
  std::printf("\nreduction sum(3t) = %u (expected 360)\n",
              Mach.debugReadWord(SumAddr));
  std::printf("\nrun took %llu cycles, retired %llu instructions, "
              "IPC %.2f\n",
              static_cast<unsigned long long>(Mach.cycles()),
              static_cast<unsigned long long>(Mach.retired()),
              Mach.ipc());

  uint64_t H1 = Run(), H2 = Run();
  std::printf("cycle-determinism: trace hashes %016llx and %016llx %s\n",
              static_cast<unsigned long long>(H1),
              static_cast<unsigned long long>(H2),
              H1 == H2 ? "MATCH" : "DIFFER (bug!)");
  return H1 == H2 ? 0 : 1;
}
