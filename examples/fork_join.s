# fork_join.s — the paper's Fig. 8 fork protocol, by hand.
#
# Hart 0 (holding the token) forks a hart on its own core, runs `child`
# itself while the new hart executes the continuation, and the two join
# back through the ending-signal chain. Run it with:
#
#   ./run_asm fork_join.s 1 --trace
#
# and watch the hart-reserve / hart-start / token-pass / join events.

    .equ CHILD_OUT, 0x20000000
    .equ CONT_OUT,  0x20000004

main:
    p_set t0                  # t0 = hart-reference: join = this hart
    la ra, rp                 # the team's join address
    p_fc t6                   # allocate a hart on this core
    p_swcv ra, t6, 0          # fill its continuation frame ...
    p_swcv t0, t6, 4
    p_merge t0, t0, t6        # record the successor for the token chain
    p_syncm                   # frame writes must land before the start
    la a0, child
    p_jalr ra, t0, a0         # call child here; start pc+4 over there

    # ---- the forked hart starts here ----
    p_lwcv ra, 0              # restore the join address
    p_lwcv t0, 4              # and the team reference
    la a1, CONT_OUT
    li a2, 2026
    sw a2, 0(a1)
    p_syncm
    p_ret                     # ra != 0: carry ra and the token to the head

rp: # ---- hart 0 resumes here after the join ----
    li ra, 0
    li t0, -1
    p_ret                     # ra == 0, t0 == -1: exit the process

child:                        # runs on hart 0 (the team head)
    la a1, CHILD_OUT
    li a2, 1234
    sw a2, 0(a1)
    p_syncm
    p_ret                     # ra == 0, join == me: pass the token, park
