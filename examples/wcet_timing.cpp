//===- examples/wcet_timing.cpp - Exact timing on a deterministic machine -------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's motivation: "parallelization can hardly benefit real time
// critical applications as a precise timing cannot be ensured" — unless
// the machine is cycle-deterministic. This example measures a control
// kernel with the machine's own cycle counter (rdcycle, the "internal
// timer" of Sec. 6), sweeps the input space, and reports *exact*
// per-input timings with a worst case that is a guarantee, not an
// estimate: re-running any input reproduces its cycle count bit for bit.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "frontend/Compiler.h"
#include "sim/Machine.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace lbp;
using namespace lbp::sim;

namespace {

// A clamped PID-style step with an input-dependent branch: timing
// varies with the input, which is exactly what a WCET bound must cover.
const char *Kernel = R"(
int input at 0x20000000;
int out_cycles at 0x20000010;
int out_value at 0x20000014;

int pid_step(int err) {
  int p = err * 3;
  int i = err / 4;
  int d = err - (err >> 2);
  int u = p + i + d;
  if (u > 1000) u = 1000;        /* actuator saturation */
  if (u < 0 - 1000) u = 0 - 1000;
  return u;
}

void main() {
  int e = input;
  int t0 = __cycles();
  int u;
  u = pid_step(e);
  int t1 = __cycles();
  out_cycles = t1 - t0;
  out_value = u;
  __syncm();
}
)";

struct Sample {
  int32_t Input;
  uint32_t Cycles;
  uint32_t Value;
};

Sample runOnce(const assembler::Program &P, int32_t Input) {
  Machine M(SimConfig::lbp(1));
  M.load(P);
  M.debugWriteWord(0x20000000, static_cast<uint32_t>(Input));
  if (M.run(100000) != RunStatus::Exited) {
    std::fprintf(stderr, "run failed: %s\n", M.faultMessage().c_str());
    std::exit(1);
  }
  return {Input, M.debugReadWord(0x20000010), M.debugReadWord(0x20000014)};
}

} // namespace

int main() {
  std::string Errors;
  std::string Asm = frontend::compileDetCToAsm(Kernel, Errors);
  if (!Errors.empty()) {
    std::fprintf(stderr, "%s", Errors.c_str());
    return 1;
  }
  assembler::AsmResult R = assembler::assemble(Asm);
  if (!R.succeeded()) {
    std::fprintf(stderr, "%s", R.errorText().c_str());
    return 1;
  }

  std::vector<Sample> Samples;
  for (int32_t E = -600; E <= 600; E += 60)
    Samples.push_back(runOnce(R.Prog, E));

  std::printf("pid_step timing sweep (measured with rdcycle on the "
              "hart itself):\n\n%8s %10s %10s\n", "input", "cycles",
              "output");
  for (const Sample &S : Samples)
    std::printf("%8d %10u %10u\n", S.Input, S.Cycles, S.Value);

  auto Worst = std::max_element(
      Samples.begin(), Samples.end(),
      [](const Sample &A, const Sample &B) { return A.Cycles < B.Cycles; });
  std::printf("\nworst case: input %d -> %u cycles\n", Worst->Input,
              Worst->Cycles);

  // The WCET property: re-measuring the worst case gives the same
  // number, exactly, every time.
  bool Stable = true;
  for (unsigned K = 0; K != 5; ++K)
    Stable &= runOnce(R.Prog, Worst->Input).Cycles == Worst->Cycles;
  std::printf("re-measured 5x: %s\n",
              Stable ? "identical every time (a guarantee, not an "
                       "estimate)"
                     : "UNSTABLE (bug!)");
  return Stable ? 0 : 1;
}
