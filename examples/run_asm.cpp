//===- examples/run_asm.cpp - Assemble-and-run command-line tool ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// A small tool over the public API: assembles an RV32IM+X_PAR source
// file, runs it on a simulated LBP and reports statistics. Useful for
// experimenting with the PISC instructions directly.
//
//   ./run_asm program.s [cores] [--trace] [--fast] [--disasm]
//
// With --trace, the recorded event stream is printed ("at cycle C,
// ..."), the style of the paper's Section 1 example statements. With
// --fast the program runs on the sequential reference interpreter (the
// paper's referential order) instead of the cycle model. --disasm dumps
// the assembled text section and exits.
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "isa/Disasm.h"
#include "sim/Interp.h"
#include "sim/Machine.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace lbp;
using namespace lbp::sim;

int main(int argc, char **argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s program.s [cores] [--trace]\n",
                 argv[0]);
    return 1;
  }
  std::ifstream In(argv[1]);
  if (!In) {
    std::fprintf(stderr, "error: cannot open %s\n", argv[1]);
    return 1;
  }
  std::ostringstream Buffer;
  Buffer << In.rdbuf();

  unsigned Cores = 4;
  bool TraceOn = false, Fast = false, Disasm = false;
  for (int A = 2; A < argc; ++A) {
    if (std::strcmp(argv[A], "--trace") == 0)
      TraceOn = true;
    else if (std::strcmp(argv[A], "--fast") == 0)
      Fast = true;
    else if (std::strcmp(argv[A], "--disasm") == 0)
      Disasm = true;
    else
      Cores = static_cast<unsigned>(std::atoi(argv[A]));
  }

  assembler::AsmResult R = assembler::assemble(Buffer.str());
  if (!R.succeeded()) {
    std::fprintf(stderr, "%s", R.errorText().c_str());
    return 1;
  }

  if (Disasm) {
    for (const assembler::Segment &S : R.Prog.segments()) {
      if (!S.IsText)
        continue;
      for (uint32_t Off = 0; Off + 4 <= S.Bytes.size(); Off += 4) {
        uint32_t Addr = S.Base + Off;
        // Label any symbol that points here.
        for (const auto &[Name, Value] : R.Prog.symbols())
          if (Value == Addr)
            std::printf("%s:\n", Name.c_str());
        std::printf("  %08x: %s\n", Addr,
                    isa::disassembleWord(R.Prog.readWord(Addr)).c_str());
      }
    }
    return 0;
  }

  if (Fast) {
    Interp I(R.Prog);
    InterpStatus S = I.run(1000000000ull);
    const char *Why = S == InterpStatus::Exited     ? "exited"
                      : S == InterpStatus::MaxSteps ? "budget exhausted"
                      : S == InterpStatus::BadInstr ? "bad instruction"
                                                    : "unsupported op";
    std::printf("[fast] %s after %llu instructions (sequential "
                "reference order)\n",
                Why, static_cast<unsigned long long>(I.steps()));
    return S == InterpStatus::Exited ? 0 : 1;
  }

  SimConfig Cfg = SimConfig::lbp(Cores);
  Cfg.RecordTrace = TraceOn;
  Machine M(Cfg);
  M.load(R.Prog);
  RunStatus S = M.run(1000000000ull);

  const char *Why = S == RunStatus::Exited     ? "exited"
                    : S == RunStatus::MaxCycles ? "cycle budget exhausted"
                    : S == RunStatus::Livelock  ? "livelock detected"
                                                : "fault";
  std::printf("%s after %llu cycles, %llu instructions retired, "
              "IPC %.2f\n",
              Why, static_cast<unsigned long long>(M.cycles()),
              static_cast<unsigned long long>(M.retired()), M.ipc());
  if (S == RunStatus::Fault)
    std::printf("fault: %s\n", M.faultMessage().c_str());
  else if (S == RunStatus::Livelock)
    std::printf("%s\n", M.faultMessage().c_str());
  std::printf("trace hash: %016llx\n",
              static_cast<unsigned long long>(M.traceHash()));

  if (TraceOn)
    for (const std::string &Line : M.trace().lines())
      std::printf("%s\n", Line.c_str());
  return S == RunStatus::Exited ? 0 : 1;
}
