//===- examples/vector_phases.cpp - Placement and the hardware barrier ----------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// The paper's Fig. 4: a producing team fills a vector, the in-order
// p_ret commit chain forms a hardware barrier, a consuming team reads it
// back — and because each chunk lives in the bank of the core that
// processes it, not a single access leaves its core.
//
//   ./vector_phases [harts] [words_per_chunk]
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "sim/Machine.h"
#include "workloads/Phases.h"

#include <cstdio>
#include <cstdlib>

using namespace lbp;
using namespace lbp::sim;
using namespace lbp::workloads;

int main(int argc, char **argv) {
  PhasesSpec Spec;
  if (argc > 1)
    Spec.NumHarts = static_cast<unsigned>(std::atoi(argv[1]));
  if (argc > 2)
    Spec.WordsPerChunk = static_cast<unsigned>(std::atoi(argv[2]));
  if (Spec.NumHarts == 0 || Spec.NumHarts % 4 != 0 ||
      Spec.NumHarts > 256) {
    std::fprintf(stderr, "harts must be a multiple of 4 up to 256\n");
    return 1;
  }

  assembler::AsmResult R = assembler::assemble(buildPhasesProgram(Spec));
  if (!R.succeeded()) {
    std::fprintf(stderr, "assembly failed:\n%s", R.errorText().c_str());
    return 1;
  }

  SimConfig Cfg = SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  Machine M(Cfg);
  M.load(R.Prog);
  if (M.run(100000000) != RunStatus::Exited) {
    std::fprintf(stderr, "run failed: %s\n", M.faultMessage().c_str());
    return 1;
  }

  std::printf("set/get phases: %u harts, %u words per chunk\n",
              Spec.NumHarts, Spec.WordsPerChunk);
  unsigned Errors = 0;
  for (unsigned T = 0; T != Spec.NumHarts; ++T)
    if (M.debugReadWord(phasesOutAddress(Spec, T)) !=
        T * Spec.WordsPerChunk)
      ++Errors;
  std::printf("verification: %s\n", Errors == 0 ? "PASS" : "FAIL");
  std::printf("cycles %llu, IPC %.2f\n",
              static_cast<unsigned long long>(M.cycles()), M.ipc());
  std::printf("bank accesses: %llu local, %llu remote%s\n",
              static_cast<unsigned long long>(M.localAccesses()),
              static_cast<unsigned long long>(M.remoteAccesses()),
              M.remoteAccesses() == 0
                  ? "  <- placement kept everything core-local"
                  : "");
  return Errors == 0 ? 0 : 1;
}
