//===- examples/omp_translate.cpp - The Deterministic OpenMP translator ---------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the paper's workflow end to end: a standard-looking
// OpenMP C source (the paper: "replace omp.h by det_omp.h") is
// translated to RV32IM+X_PAR assembly and executed on the simulated
// LBP. Run with a file argument to translate your own program:
//
//   ./omp_translate [program.c] [cores] [--emit-asm]
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "frontend/Compiler.h"
#include "sim/Machine.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

using namespace lbp;
using namespace lbp::sim;

namespace {

// A Deterministic OpenMP program in the paper's style: a parallel dot
// product with a reduction, then a parallel scale of the result vector.
const char *DemoProgram = R"(
#include <det_omp.h>
#define NUM_HART 16
#define CHUNK 8
#define N 128

int a[N] = { 3 };
int b[N] = { 4 };
int scaled[N] at 0x20002000;
int dot at 0x20002400;

void thread_dot(int t) {
  int k;
  int acc = 0;
  for (k = 0; k < CHUNK; k++)
    acc += a[t * CHUNK + k] * b[t * CHUNK + k];
  __reduce_send(acc);
}

void thread_scale(int t) {
  int k;
  for (k = 0; k < CHUNK; k++)
    scaled[t * CHUNK + k] = a[t * CHUNK + k] * 10;
}

void main() {
  int t;
  int total = 0;
  omp_set_num_threads(NUM_HART);
  #pragma omp parallel for reduction(+:total)
  for (t = 0; t < NUM_HART; t++) thread_dot(t);
  dot = total;
  #pragma omp parallel for
  for (t = 0; t < NUM_HART; t++) thread_scale(t);
  __syncm();
}
)";

} // namespace

int main(int argc, char **argv) {
  std::string Source = DemoProgram;
  unsigned Cores = 4;
  bool EmitAsm = false;
  for (int A = 1; A < argc; ++A) {
    if (std::strcmp(argv[A], "--emit-asm") == 0) {
      EmitAsm = true;
    } else if (isdigit(static_cast<unsigned char>(argv[A][0]))) {
      Cores = static_cast<unsigned>(std::atoi(argv[A]));
    } else {
      std::ifstream In(argv[A]);
      if (!In) {
        std::fprintf(stderr, "error: cannot open %s\n", argv[A]);
        return 1;
      }
      std::ostringstream Buf;
      Buf << In.rdbuf();
      Source = Buf.str();
    }
  }

  std::string Errors;
  std::string Asm = frontend::compileDetCToAsm(Source, Errors);
  if (!Errors.empty()) {
    std::fprintf(stderr, "translation failed:\n%s", Errors.c_str());
    return 1;
  }
  if (EmitAsm) {
    std::fputs(Asm.c_str(), stdout);
    return 0;
  }

  assembler::AsmResult R = assembler::assemble(Asm);
  if (!R.succeeded()) {
    std::fprintf(stderr, "internal: generated assembly rejected:\n%s",
                 R.errorText().c_str());
    return 1;
  }
  std::printf("translated %zu bytes of Det-C into %u bytes of "
              "RV32IM+X_PAR text\n",
              Source.size(), R.Prog.textSize());

  Machine M(SimConfig::lbp(Cores));
  M.load(R.Prog);
  if (M.run(100000000) != RunStatus::Exited) {
    std::fprintf(stderr, "run failed: %s\n", M.faultMessage().c_str());
    return 1;
  }

  std::printf("run: %llu cycles, %llu instructions, IPC %.2f on %u "
              "cores\n",
              static_cast<unsigned long long>(M.cycles()),
              static_cast<unsigned long long>(M.retired()), M.ipc(),
              Cores);
  if (Source == DemoProgram) {
    std::printf("dot(a, b) = %u (expected 128 * 3 * 4 = 1536)\n",
                M.debugReadWord(0x20002400));
    std::printf("scaled[0], scaled[127] = %u, %u (expected 30, 30)\n",
                M.debugReadWord(0x20002000),
                M.debugReadWord(0x20002000 + 127 * 4));
  }
  return 0;
}
