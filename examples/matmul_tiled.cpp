//===- examples/matmul_tiled.cpp - The paper's headline workload ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Runs the tiled matrix multiplication (the Fig. 21 winner) on an LBP
// size chosen on the command line, verifies the product, and prints the
// paper-style statistics. Pass a different version name to compare:
//
//   ./matmul_tiled [base|copy|distributed|d+c|tiled] [16|64|256]
//
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "sim/Machine.h"
#include "workloads/MatMul.h"

#include <cstdio>
#include <cstring>

using namespace lbp;
using namespace lbp::workloads;

int main(int argc, char **argv) {
  MatMulVersion Version = MatMulVersion::Tiled;
  unsigned Harts = 64;
  if (argc > 1) {
    bool Found = false;
    for (MatMulVersion V :
         {MatMulVersion::Base, MatMulVersion::Copy,
          MatMulVersion::Distributed, MatMulVersion::DistCopy,
          MatMulVersion::Tiled}) {
      if (std::strcmp(argv[1], matMulVersionName(V)) == 0) {
        Version = V;
        Found = true;
      }
    }
    if (!Found) {
      std::fprintf(stderr, "unknown version '%s'\n", argv[1]);
      return 1;
    }
  }
  if (argc > 2)
    Harts = static_cast<unsigned>(std::atoi(argv[2]));
  if (Harts != 16 && Harts != 64 && Harts != 256) {
    std::fprintf(stderr, "harts must be 16, 64 or 256\n");
    return 1;
  }

  MatMulSpec Spec = MatMulSpec::paper(Harts, Version);
  std::printf("matmul '%s': X %ux%u times Y %ux%u on a %u-core LBP\n",
              matMulVersionName(Version), Harts, Harts / 2, Harts / 2,
              Harts, Spec.cores());

  assembler::AsmResult R = assembler::assemble(buildMatMulProgram(Spec));
  if (!R.succeeded()) {
    std::fprintf(stderr, "assembly failed:\n%s", R.errorText().c_str());
    return 1;
  }

  sim::SimConfig Cfg = sim::SimConfig::lbp(Spec.cores());
  Cfg.GlobalBankSizeLog2 = Spec.BankSizeLog2;
  Cfg.CollectStallStats = true;
  sim::Machine M(Cfg);
  M.load(R.Prog);
  if (M.run() != sim::RunStatus::Exited) {
    std::fprintf(stderr, "run failed: %s\n", M.faultMessage().c_str());
    return 1;
  }

  // Verify: X = Y = all ones, so Z must be h/2 everywhere.
  unsigned Errors = 0;
  for (unsigned I = 0; I != Harts; ++I)
    for (unsigned J = 0; J != Harts; ++J)
      if (M.debugReadWord(zElementAddress(Spec, I, J)) != Harts / 2)
        ++Errors;
  std::printf("verification: %s (%u wrong elements)\n",
              Errors == 0 ? "PASS" : "FAIL", Errors);

  std::printf("\n%-22s %llu\n", "cycles:",
              static_cast<unsigned long long>(M.cycles()));
  std::printf("%-22s %llu\n", "retired instructions:",
              static_cast<unsigned long long>(M.retired()));
  std::printf("%-22s %.2f of a %u peak (%.0f%%)\n", "IPC:", M.ipc(),
              Spec.cores(), 100.0 * M.ipc() / Spec.cores());
  std::printf("%-22s %llu local, %llu remote\n", "bank accesses:",
              static_cast<unsigned long long>(M.localAccesses()),
              static_cast<unsigned long long>(M.remoteAccesses()));
  std::printf("%-22s %llu\n", "queueing cycles:",
              static_cast<unsigned long long>(M.contentionCycles()));

  using SC = sim::Machine::StallCause;
  uint64_t TotalSlots = M.cycles() * Spec.cores();
  auto Pct = [&](SC C) {
    return 100.0 * static_cast<double>(M.stallCycles(C)) /
           static_cast<double>(TotalSlots);
  };
  std::printf("\nissue-slot usage (what limits the IPC):\n");
  std::printf("  issued             %5.1f%%\n",
              100.0 * static_cast<double>(M.issuedCoreCycles()) /
                  static_cast<double>(TotalSlots));
  std::printf("  result-buffer busy %5.1f%%\n", Pct(SC::RbBusy));
  std::printf("  operands in flight %5.1f%%\n",
              Pct(SC::OperandsNotReady));
  std::printf("  awaiting responses %5.1f%%\n",
              Pct(SC::WaitingResponse));
  std::printf("  idle (no work)     %5.1f%%\n", Pct(SC::NoActiveWork));
  return Errors == 0 ? 0 : 1;
}
