// Det-C: privatized histogram. The bin index is data-dependent
// (pixels[i] & 16383 is non-affine), but each member's bins live in
// its own 64 KiB global bank: hist spans banks 0 and 1 exactly and
// member t only touches bank t. The analyzer cannot know the word
// index, yet the bank-disjointness rule proves the members private —
// the accesses are certified "banked" and the region is clean.
// Part of the lbp_lint clean corpus (see docs/ANALYSIS.md).

int hist[32768];
int pixels[64] = { 7 };

void bin_pixels(int t) {
  int i;
  int b;
  for (i = 0; i < 64; i++) {
    b = (t * 16384) + (pixels[i] & 16383);
    hist[b] = hist[b] + 1;
  }
}

void main() {
  int t;
  #pragma omp parallel for
  for (t = 0; t < 2; t++)
    bin_pixels(t);
}
