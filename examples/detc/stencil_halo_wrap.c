// Det-C: rotating stencil — dst[(t + 1) % 8] = src[t]. The modulo
// makes the write index non-affine, so the analyzer cannot prove the
// members disjoint and reports race.may. Dynamically the rotation is a
// bijection: every member lands on a different word, so the oracle
// observes no conflict and --oracle-refine annotates the finding
// unconfirmed-on-corpus instead of upgrading it. This is exactly the
// imprecision gap the race.may tier exists for.
// Part of the lbp_lint flagged corpus (see docs/ANALYSIS.md).

int src[8] = { 9 };
int dst[8];

void rotate(int t) {
  dst[(t + 1) % 8] = src[t];
}

void main() {
  int t;
  #pragma omp parallel for
  for (t = 0; t < 8; t++)
    rotate(t);
}
