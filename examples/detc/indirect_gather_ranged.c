// Det-C: indirect scatter, masked into a member-private block. The
// low bits of the index are data-dependent (idx[i] & 7), but each
// member writes inside its own 8-word slice of out: the imprecise
// part is bounded to [0, 7] and the member stride is 8 words, so the
// difference between two members' footprints can never reach zero.
// The residue/interval rule discharges every pair — clean, with the
// writes certified "may" in class but raceless.
// Part of the lbp_lint clean corpus (see docs/ANALYSIS.md).

int idx[64];
int out[64];

void gather(int t) {
  int i;
  int b;
  for (i = 0; i < 8; i++) {
    b = (t * 8) + (idx[i] & 7);
    out[b] = out[b] + 1;
  }
}

void main() {
  int t;
  #pragma omp parallel for
  for (t = 0; t < 8; t++)
    gather(t);
}
