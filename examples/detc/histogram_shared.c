// Det-C: shared histogram — the classic non-affine race. Both members
// increment hist[pixels[..] & 255]; the bin index is data-dependent and
// the whole table is visible to every member, so nothing discharges
// the write-write pair. The analyzer reports race.may, and because the
// pixel buffer is zero-filled every member really does hammer bin 0:
// --oracle-refine upgrades the finding to race.confirmed with the
// concrete hart/address/cycle witness.
// Part of the lbp_lint flagged corpus (see docs/ANALYSIS.md).

int hist[256];
int pixels[64];

void bin_pixels(int t) {
  int i;
  int b;
  for (i = 0; i < 32; i++) {
    b = pixels[(t * 32) + i] & 255;
    hist[b] = hist[b] + 1;
  }
}

void main() {
  int t;
  #pragma omp parallel for
  for (t = 0; t < 2; t++)
    bin_pixels(t);
}
