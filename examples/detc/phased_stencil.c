// Det-C: two back-to-back parallel regions. The first fills a vector,
// the second reads neighbouring elements the *previous* region wrote —
// fine, because the team barrier between regions orders the phases.
// The analyzer checks each region in isolation, so the cross-member
// reads in phase two never pair with a same-region write.
// Part of the lbp_lint clean corpus (see docs/ANALYSIS.md).

int src[18];
int dst[16];

void fill(int t) {
  src[t + 1] = t * t;
}

void smooth(int t) {
  dst[t] = src[t] + src[t + 1] + src[t + 2];
}

void main() {
  int t;
  #pragma omp parallel for
  for (t = 0; t < 16; t++)
    fill(t);
  #pragma omp parallel for
  for (t = 0; t < 16; t++)
    smooth(t);
}
