// Det-C: every team member scales its own element — the canonical
// disjoint-write pattern the determinism analyzer certifies.
// Part of the lbp_lint clean corpus (see docs/ANALYSIS.md).

int v[16] = { 3 };
int out[16];

void scale(int t) {
  out[t] = v[t] * 5;
}

void main() {
  int t;
  omp_set_num_threads(16);
  #pragma omp parallel for
  for (t = 0; t < 16; t++)
    scale(t);
}
