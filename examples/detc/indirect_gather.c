// Det-C: indirect scatter through an index array. out[idx[t]] is as
// non-affine as it gets — the target word is whatever idx holds at run
// time, so no static rule can separate the members. The analyzer
// reports race.may; the zero-filled index array sends every member to
// out[0], so --oracle-refine upgrades it to race.confirmed with the
// observed harts, address and cycles.
// Part of the lbp_lint flagged corpus (see docs/ANALYSIS.md).

int idx[8];
int out[8];

void scatter(int t) {
  out[idx[t]] = t;
}

void main() {
  int t;
  #pragma omp parallel for
  for (t = 0; t < 8; t++)
    scatter(t);
}
