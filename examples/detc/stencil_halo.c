// Det-C: stencil with a data-dependent halo read. Each member writes
// only its own dst[t] (exact affine), but reads src at an offset taken
// from a table (off[t] & 15 is non-affine). The reads are imprecise —
// classified "may" — yet src is never written inside the region, and
// the interval reasoning proves the imprecise reads cannot reach dst:
// no pair survives, the region is clean.
// Part of the lbp_lint clean corpus (see docs/ANALYSIS.md).

int src[32] = { 5 };
int off[16];
int dst[16];

void smooth(int t) {
  dst[t] = src[t + (off[t] & 15)] + src[t];
}

void main() {
  int t;
  #pragma omp parallel for
  for (t = 0; t < 16; t++)
    smooth(t);
}
