// Det-C: each member sums a private chunk of the input and sends its
// partial over the reduction line (paper Fig. 9 shape). The analyzer
// proves the chunk writes disjoint and the send/collect arity matched.
// Part of the lbp_lint clean corpus (see docs/ANALYSIS.md).

int data[32] = { 2 };

void partial_sum(int t) {
  int acc;
  int n;
  acc = 0;
  for (n = t * 8; n < (t + 1) * 8; n++)
    acc = acc + data[n];
  __reduce_send(acc);
}

void main() {
  int t;
  int total;
  total = 0;
  #pragma omp parallel for reduction(+:total)
  for (t = 0; t < 4; t++)
    partial_sum(t);
}
