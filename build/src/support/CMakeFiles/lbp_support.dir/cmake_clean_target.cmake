file(REMOVE_RECURSE
  "liblbp_support.a"
)
