# Empty dependencies file for lbp_support.
# This may be replaced when dependencies are built.
