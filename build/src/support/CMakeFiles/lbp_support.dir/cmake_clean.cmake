file(REMOVE_RECURSE
  "CMakeFiles/lbp_support.dir/Error.cpp.o"
  "CMakeFiles/lbp_support.dir/Error.cpp.o.d"
  "CMakeFiles/lbp_support.dir/StringUtils.cpp.o"
  "CMakeFiles/lbp_support.dir/StringUtils.cpp.o.d"
  "liblbp_support.a"
  "liblbp_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
