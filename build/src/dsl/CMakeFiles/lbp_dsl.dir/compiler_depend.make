# Empty compiler generated dependencies file for lbp_dsl.
# This may be replaced when dependencies are built.
