file(REMOVE_RECURSE
  "liblbp_dsl.a"
)
