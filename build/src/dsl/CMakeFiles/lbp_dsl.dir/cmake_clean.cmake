file(REMOVE_RECURSE
  "CMakeFiles/lbp_dsl.dir/Ast.cpp.o"
  "CMakeFiles/lbp_dsl.dir/Ast.cpp.o.d"
  "CMakeFiles/lbp_dsl.dir/CodeGen.cpp.o"
  "CMakeFiles/lbp_dsl.dir/CodeGen.cpp.o.d"
  "liblbp_dsl.a"
  "liblbp_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
