
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/Device.cpp" "src/sim/CMakeFiles/lbp_sim.dir/Device.cpp.o" "gcc" "src/sim/CMakeFiles/lbp_sim.dir/Device.cpp.o.d"
  "/root/repo/src/sim/Exec.cpp" "src/sim/CMakeFiles/lbp_sim.dir/Exec.cpp.o" "gcc" "src/sim/CMakeFiles/lbp_sim.dir/Exec.cpp.o.d"
  "/root/repo/src/sim/Interp.cpp" "src/sim/CMakeFiles/lbp_sim.dir/Interp.cpp.o" "gcc" "src/sim/CMakeFiles/lbp_sim.dir/Interp.cpp.o.d"
  "/root/repo/src/sim/Machine.cpp" "src/sim/CMakeFiles/lbp_sim.dir/Machine.cpp.o" "gcc" "src/sim/CMakeFiles/lbp_sim.dir/Machine.cpp.o.d"
  "/root/repo/src/sim/Memory.cpp" "src/sim/CMakeFiles/lbp_sim.dir/Memory.cpp.o" "gcc" "src/sim/CMakeFiles/lbp_sim.dir/Memory.cpp.o.d"
  "/root/repo/src/sim/Trace.cpp" "src/sim/CMakeFiles/lbp_sim.dir/Trace.cpp.o" "gcc" "src/sim/CMakeFiles/lbp_sim.dir/Trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/asm/CMakeFiles/lbp_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/lbp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lbp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
