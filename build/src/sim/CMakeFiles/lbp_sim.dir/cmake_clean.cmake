file(REMOVE_RECURSE
  "CMakeFiles/lbp_sim.dir/Device.cpp.o"
  "CMakeFiles/lbp_sim.dir/Device.cpp.o.d"
  "CMakeFiles/lbp_sim.dir/Exec.cpp.o"
  "CMakeFiles/lbp_sim.dir/Exec.cpp.o.d"
  "CMakeFiles/lbp_sim.dir/Interp.cpp.o"
  "CMakeFiles/lbp_sim.dir/Interp.cpp.o.d"
  "CMakeFiles/lbp_sim.dir/Machine.cpp.o"
  "CMakeFiles/lbp_sim.dir/Machine.cpp.o.d"
  "CMakeFiles/lbp_sim.dir/Memory.cpp.o"
  "CMakeFiles/lbp_sim.dir/Memory.cpp.o.d"
  "CMakeFiles/lbp_sim.dir/Trace.cpp.o"
  "CMakeFiles/lbp_sim.dir/Trace.cpp.o.d"
  "liblbp_sim.a"
  "liblbp_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
