
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frontend/Compiler.cpp" "src/frontend/CMakeFiles/lbp_frontend.dir/Compiler.cpp.o" "gcc" "src/frontend/CMakeFiles/lbp_frontend.dir/Compiler.cpp.o.d"
  "/root/repo/src/frontend/Lexer.cpp" "src/frontend/CMakeFiles/lbp_frontend.dir/Lexer.cpp.o" "gcc" "src/frontend/CMakeFiles/lbp_frontend.dir/Lexer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsl/CMakeFiles/lbp_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lbp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/romp/CMakeFiles/lbp_romp.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/lbp_isa.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
