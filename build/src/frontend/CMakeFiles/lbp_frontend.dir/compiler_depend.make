# Empty compiler generated dependencies file for lbp_frontend.
# This may be replaced when dependencies are built.
