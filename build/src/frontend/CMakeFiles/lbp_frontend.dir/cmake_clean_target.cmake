file(REMOVE_RECURSE
  "liblbp_frontend.a"
)
