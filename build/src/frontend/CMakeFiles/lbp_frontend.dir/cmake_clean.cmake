file(REMOVE_RECURSE
  "CMakeFiles/lbp_frontend.dir/Compiler.cpp.o"
  "CMakeFiles/lbp_frontend.dir/Compiler.cpp.o.d"
  "CMakeFiles/lbp_frontend.dir/Lexer.cpp.o"
  "CMakeFiles/lbp_frontend.dir/Lexer.cpp.o.d"
  "liblbp_frontend.a"
  "liblbp_frontend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_frontend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
