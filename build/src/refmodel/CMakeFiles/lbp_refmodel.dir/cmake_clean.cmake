file(REMOVE_RECURSE
  "CMakeFiles/lbp_refmodel.dir/VectorCore.cpp.o"
  "CMakeFiles/lbp_refmodel.dir/VectorCore.cpp.o.d"
  "liblbp_refmodel.a"
  "liblbp_refmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_refmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
