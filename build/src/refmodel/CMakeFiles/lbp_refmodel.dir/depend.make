# Empty dependencies file for lbp_refmodel.
# This may be replaced when dependencies are built.
