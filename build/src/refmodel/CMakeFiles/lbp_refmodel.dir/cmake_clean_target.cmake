file(REMOVE_RECURSE
  "liblbp_refmodel.a"
)
