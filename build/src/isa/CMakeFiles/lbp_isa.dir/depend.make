# Empty dependencies file for lbp_isa.
# This may be replaced when dependencies are built.
