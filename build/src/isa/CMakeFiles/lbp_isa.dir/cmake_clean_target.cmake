file(REMOVE_RECURSE
  "liblbp_isa.a"
)
