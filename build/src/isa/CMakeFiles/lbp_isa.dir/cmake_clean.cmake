file(REMOVE_RECURSE
  "CMakeFiles/lbp_isa.dir/Disasm.cpp.o"
  "CMakeFiles/lbp_isa.dir/Disasm.cpp.o.d"
  "CMakeFiles/lbp_isa.dir/Encoding.cpp.o"
  "CMakeFiles/lbp_isa.dir/Encoding.cpp.o.d"
  "CMakeFiles/lbp_isa.dir/Instr.cpp.o"
  "CMakeFiles/lbp_isa.dir/Instr.cpp.o.d"
  "CMakeFiles/lbp_isa.dir/Reg.cpp.o"
  "CMakeFiles/lbp_isa.dir/Reg.cpp.o.d"
  "liblbp_isa.a"
  "liblbp_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
