file(REMOVE_RECURSE
  "CMakeFiles/lbp_asm.dir/Assembler.cpp.o"
  "CMakeFiles/lbp_asm.dir/Assembler.cpp.o.d"
  "CMakeFiles/lbp_asm.dir/Program.cpp.o"
  "CMakeFiles/lbp_asm.dir/Program.cpp.o.d"
  "liblbp_asm.a"
  "liblbp_asm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_asm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
