file(REMOVE_RECURSE
  "liblbp_asm.a"
)
