# Empty compiler generated dependencies file for lbp_asm.
# This may be replaced when dependencies are built.
