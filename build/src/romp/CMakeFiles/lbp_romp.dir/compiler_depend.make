# Empty compiler generated dependencies file for lbp_romp.
# This may be replaced when dependencies are built.
