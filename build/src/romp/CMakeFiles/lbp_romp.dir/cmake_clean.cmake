file(REMOVE_RECURSE
  "CMakeFiles/lbp_romp.dir/AsmText.cpp.o"
  "CMakeFiles/lbp_romp.dir/AsmText.cpp.o.d"
  "CMakeFiles/lbp_romp.dir/Runtime.cpp.o"
  "CMakeFiles/lbp_romp.dir/Runtime.cpp.o.d"
  "liblbp_romp.a"
  "liblbp_romp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_romp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
