file(REMOVE_RECURSE
  "liblbp_romp.a"
)
