file(REMOVE_RECURSE
  "liblbp_workloads.a"
)
