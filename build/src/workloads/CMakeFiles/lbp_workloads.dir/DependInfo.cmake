
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/Dma.cpp" "src/workloads/CMakeFiles/lbp_workloads.dir/Dma.cpp.o" "gcc" "src/workloads/CMakeFiles/lbp_workloads.dir/Dma.cpp.o.d"
  "/root/repo/src/workloads/MatMul.cpp" "src/workloads/CMakeFiles/lbp_workloads.dir/MatMul.cpp.o" "gcc" "src/workloads/CMakeFiles/lbp_workloads.dir/MatMul.cpp.o.d"
  "/root/repo/src/workloads/Phases.cpp" "src/workloads/CMakeFiles/lbp_workloads.dir/Phases.cpp.o" "gcc" "src/workloads/CMakeFiles/lbp_workloads.dir/Phases.cpp.o.d"
  "/root/repo/src/workloads/Pipeline.cpp" "src/workloads/CMakeFiles/lbp_workloads.dir/Pipeline.cpp.o" "gcc" "src/workloads/CMakeFiles/lbp_workloads.dir/Pipeline.cpp.o.d"
  "/root/repo/src/workloads/SensorFusion.cpp" "src/workloads/CMakeFiles/lbp_workloads.dir/SensorFusion.cpp.o" "gcc" "src/workloads/CMakeFiles/lbp_workloads.dir/SensorFusion.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dsl/CMakeFiles/lbp_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/romp/CMakeFiles/lbp_romp.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/lbp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lbp_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
