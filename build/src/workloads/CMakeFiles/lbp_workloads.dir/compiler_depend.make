# Empty compiler generated dependencies file for lbp_workloads.
# This may be replaced when dependencies are built.
