file(REMOVE_RECURSE
  "CMakeFiles/lbp_workloads.dir/Dma.cpp.o"
  "CMakeFiles/lbp_workloads.dir/Dma.cpp.o.d"
  "CMakeFiles/lbp_workloads.dir/MatMul.cpp.o"
  "CMakeFiles/lbp_workloads.dir/MatMul.cpp.o.d"
  "CMakeFiles/lbp_workloads.dir/Phases.cpp.o"
  "CMakeFiles/lbp_workloads.dir/Phases.cpp.o.d"
  "CMakeFiles/lbp_workloads.dir/Pipeline.cpp.o"
  "CMakeFiles/lbp_workloads.dir/Pipeline.cpp.o.d"
  "CMakeFiles/lbp_workloads.dir/SensorFusion.cpp.o"
  "CMakeFiles/lbp_workloads.dir/SensorFusion.cpp.o.d"
  "liblbp_workloads.a"
  "liblbp_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lbp_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
