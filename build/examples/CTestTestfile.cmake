# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_omp_translate "/root/repo/build/examples/omp_translate")
set_tests_properties(example_omp_translate PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;15;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_matmul_small "/root/repo/build/examples/matmul_tiled" "tiled" "16")
set_tests_properties(example_matmul_small PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_vector_phases "/root/repo/build/examples/vector_phases" "16" "64")
set_tests_properties(example_vector_phases PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;17;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_sensor_fusion "/root/repo/build/examples/sensor_fusion" "5")
set_tests_properties(example_sensor_fusion PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_wcet_timing "/root/repo/build/examples/wcet_timing")
set_tests_properties(example_wcet_timing PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;19;add_test;/root/repo/examples/CMakeLists.txt;0;")
