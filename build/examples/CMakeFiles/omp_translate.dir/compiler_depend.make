# Empty compiler generated dependencies file for omp_translate.
# This may be replaced when dependencies are built.
