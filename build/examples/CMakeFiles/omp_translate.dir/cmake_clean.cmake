file(REMOVE_RECURSE
  "CMakeFiles/omp_translate.dir/omp_translate.cpp.o"
  "CMakeFiles/omp_translate.dir/omp_translate.cpp.o.d"
  "omp_translate"
  "omp_translate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/omp_translate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
