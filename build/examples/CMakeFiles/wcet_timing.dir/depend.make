# Empty dependencies file for wcet_timing.
# This may be replaced when dependencies are built.
