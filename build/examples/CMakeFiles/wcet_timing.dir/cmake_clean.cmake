file(REMOVE_RECURSE
  "CMakeFiles/wcet_timing.dir/wcet_timing.cpp.o"
  "CMakeFiles/wcet_timing.dir/wcet_timing.cpp.o.d"
  "wcet_timing"
  "wcet_timing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcet_timing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
