# Empty compiler generated dependencies file for matmul_tiled.
# This may be replaced when dependencies are built.
