file(REMOVE_RECURSE
  "CMakeFiles/matmul_tiled.dir/matmul_tiled.cpp.o"
  "CMakeFiles/matmul_tiled.dir/matmul_tiled.cpp.o.d"
  "matmul_tiled"
  "matmul_tiled.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/matmul_tiled.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
