# Empty compiler generated dependencies file for vector_phases.
# This may be replaced when dependencies are built.
