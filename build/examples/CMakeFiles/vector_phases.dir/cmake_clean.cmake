file(REMOVE_RECURSE
  "CMakeFiles/vector_phases.dir/vector_phases.cpp.o"
  "CMakeFiles/vector_phases.dir/vector_phases.cpp.o.d"
  "vector_phases"
  "vector_phases.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_phases.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
