file(REMOVE_RECURSE
  "CMakeFiles/bench_realtime.dir/bench_realtime.cpp.o"
  "CMakeFiles/bench_realtime.dir/bench_realtime.cpp.o.d"
  "bench_realtime"
  "bench_realtime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_realtime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
