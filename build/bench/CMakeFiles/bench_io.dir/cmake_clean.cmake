file(REMOVE_RECURSE
  "CMakeFiles/bench_io.dir/bench_io.cpp.o"
  "CMakeFiles/bench_io.dir/bench_io.cpp.o.d"
  "bench_io"
  "bench_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
