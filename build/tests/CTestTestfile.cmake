# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/isa_test[1]_include.cmake")
include("/root/repo/build/tests/asm_test[1]_include.cmake")
include("/root/repo/build/tests/asm_more_test[1]_include.cmake")
include("/root/repo/build/tests/sim_exec_test[1]_include.cmake")
include("/root/repo/build/tests/sim_memory_test[1]_include.cmake")
include("/root/repo/build/tests/sim_device_test[1]_include.cmake")
include("/root/repo/build/tests/sim_interp_test[1]_include.cmake")
include("/root/repo/build/tests/sim_machine_test[1]_include.cmake")
include("/root/repo/build/tests/sim_machine_edge_test[1]_include.cmake")
include("/root/repo/build/tests/romp_test[1]_include.cmake")
include("/root/repo/build/tests/dsl_test[1]_include.cmake")
include("/root/repo/build/tests/dsl_codegen_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_matmul_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_misc_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_apps_test[1]_include.cmake")
include("/root/repo/build/tests/frontend_diag_test[1]_include.cmake")
include("/root/repo/build/tests/differential_test[1]_include.cmake")
include("/root/repo/build/tests/scaling_test[1]_include.cmake")
include("/root/repo/build/tests/sim_config_test[1]_include.cmake")
include("/root/repo/build/tests/stress_test[1]_include.cmake")
