
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/sim_config_test.cpp" "tests/CMakeFiles/sim_config_test.dir/sim_config_test.cpp.o" "gcc" "tests/CMakeFiles/sim_config_test.dir/sim_config_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/lbp_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/asm/CMakeFiles/lbp_asm.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/lbp_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/lbp_support.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/lbp_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/dsl/CMakeFiles/lbp_dsl.dir/DependInfo.cmake"
  "/root/repo/build/src/romp/CMakeFiles/lbp_romp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
