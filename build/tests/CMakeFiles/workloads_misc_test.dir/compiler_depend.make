# Empty compiler generated dependencies file for workloads_misc_test.
# This may be replaced when dependencies are built.
