file(REMOVE_RECURSE
  "CMakeFiles/workloads_misc_test.dir/workloads_misc_test.cpp.o"
  "CMakeFiles/workloads_misc_test.dir/workloads_misc_test.cpp.o.d"
  "workloads_misc_test"
  "workloads_misc_test.pdb"
  "workloads_misc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_misc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
