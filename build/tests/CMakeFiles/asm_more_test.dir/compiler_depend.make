# Empty compiler generated dependencies file for asm_more_test.
# This may be replaced when dependencies are built.
