file(REMOVE_RECURSE
  "CMakeFiles/asm_more_test.dir/asm_more_test.cpp.o"
  "CMakeFiles/asm_more_test.dir/asm_more_test.cpp.o.d"
  "asm_more_test"
  "asm_more_test.pdb"
  "asm_more_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/asm_more_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
