# Empty dependencies file for frontend_diag_test.
# This may be replaced when dependencies are built.
