file(REMOVE_RECURSE
  "CMakeFiles/frontend_diag_test.dir/frontend_diag_test.cpp.o"
  "CMakeFiles/frontend_diag_test.dir/frontend_diag_test.cpp.o.d"
  "frontend_diag_test"
  "frontend_diag_test.pdb"
  "frontend_diag_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_diag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
