# Empty compiler generated dependencies file for frontend_apps_test.
# This may be replaced when dependencies are built.
