file(REMOVE_RECURSE
  "CMakeFiles/frontend_apps_test.dir/frontend_apps_test.cpp.o"
  "CMakeFiles/frontend_apps_test.dir/frontend_apps_test.cpp.o.d"
  "frontend_apps_test"
  "frontend_apps_test.pdb"
  "frontend_apps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/frontend_apps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
