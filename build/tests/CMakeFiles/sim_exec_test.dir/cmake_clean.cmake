file(REMOVE_RECURSE
  "CMakeFiles/sim_exec_test.dir/sim_exec_test.cpp.o"
  "CMakeFiles/sim_exec_test.dir/sim_exec_test.cpp.o.d"
  "sim_exec_test"
  "sim_exec_test.pdb"
  "sim_exec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_exec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
