# Empty dependencies file for workloads_matmul_test.
# This may be replaced when dependencies are built.
