file(REMOVE_RECURSE
  "CMakeFiles/workloads_matmul_test.dir/workloads_matmul_test.cpp.o"
  "CMakeFiles/workloads_matmul_test.dir/workloads_matmul_test.cpp.o.d"
  "workloads_matmul_test"
  "workloads_matmul_test.pdb"
  "workloads_matmul_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workloads_matmul_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
