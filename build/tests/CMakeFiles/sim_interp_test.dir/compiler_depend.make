# Empty compiler generated dependencies file for sim_interp_test.
# This may be replaced when dependencies are built.
