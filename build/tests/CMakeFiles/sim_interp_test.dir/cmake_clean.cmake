file(REMOVE_RECURSE
  "CMakeFiles/sim_interp_test.dir/sim_interp_test.cpp.o"
  "CMakeFiles/sim_interp_test.dir/sim_interp_test.cpp.o.d"
  "sim_interp_test"
  "sim_interp_test.pdb"
  "sim_interp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sim_interp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
