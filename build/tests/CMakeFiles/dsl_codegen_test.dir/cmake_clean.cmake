file(REMOVE_RECURSE
  "CMakeFiles/dsl_codegen_test.dir/dsl_codegen_test.cpp.o"
  "CMakeFiles/dsl_codegen_test.dir/dsl_codegen_test.cpp.o.d"
  "dsl_codegen_test"
  "dsl_codegen_test.pdb"
  "dsl_codegen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dsl_codegen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
