# Empty dependencies file for romp_test.
# This may be replaced when dependencies are built.
