file(REMOVE_RECURSE
  "CMakeFiles/romp_test.dir/romp_test.cpp.o"
  "CMakeFiles/romp_test.dir/romp_test.cpp.o.d"
  "romp_test"
  "romp_test.pdb"
  "romp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/romp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
