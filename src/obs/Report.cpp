//===- obs/Report.cpp - Profiling reports and counter snapshots ------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "obs/Report.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <iterator>

using namespace lbp;
using namespace lbp::obs;
using sim::EventKind;
using sim::Machine;

namespace {

const char *linkClassName(sim::Interconnect::LinkClass C) {
  using LC = sim::Interconnect::LinkClass;
  switch (C) {
  case LC::CoreUp:
    return "core-up";
  case LC::CoreDown:
    return "core-down";
  case LC::BankIn:
    return "bank-in";
  case LC::BankOut:
    return "bank-out";
  case LC::BankPort:
    return "bank-port";
  case LC::R1Up:
    return "r1-up";
  case LC::R1Down:
    return "r1-down";
  case LC::R2Up:
    return "r2-up";
  case LC::R2Down:
    return "r2-down";
  case LC::Forward:
    return "forward";
  case LC::Backward:
    return "backward";
  case LC::NumClasses:
    break;
  }
  return "?";
}

void appendU64(std::string &Out, uint64_t V) {
  Out += formatString("%llu", static_cast<unsigned long long>(V));
}

template <typename Vec> void appendArray(std::string &Out, const Vec &V) {
  Out += '[';
  for (size_t I = 0; I != std::size(V); ++I) {
    if (I)
      Out += ',';
    appendU64(Out, V[I]);
  }
  Out += ']';
}

void appendField(std::string &Out, const char *Key, uint64_t V) {
  Out += formatString("\"%s\":", Key);
  appendU64(Out, V);
}

template <typename Vec>
void appendArrayField(std::string &Out, const char *Key, const Vec &V) {
  Out += formatString("\"%s\":", Key);
  appendArray(Out, V);
}

} // namespace

std::string obs::countersToJson(const Machine &M) {
  const sim::SimConfig &Cfg = M.config();
  const sim::Interconnect &Net = M.interconnect();
  unsigned Cores = Cfg.NumCores;

  std::string J = "{";
  appendField(J, "cycles", M.cycles());
  J += ',';
  appendField(J, "retired", M.retired());
  J += formatString(",\"status\":\"%s\"", sim::runStatusName(M.status()));
  J += formatString(",\"trace_hash\":\"0x%016llx\"",
                    static_cast<unsigned long long>(M.traceHash()));
  J += ',';
  appendField(J, "machine_checks", M.machineChecks().size());

  // Stall accounting (all zero unless CollectStallStats ran).
  J += ",\"stall\":{";
  for (unsigned C = 0;
       C != static_cast<unsigned>(Machine::StallCause::NumCauses); ++C) {
    std::vector<uint64_t> PerCore(Cores);
    for (unsigned Core = 0; Core != Cores; ++Core)
      PerCore[Core] =
          M.stallCycles(static_cast<Machine::StallCause>(C), Core);
    appendArrayField(J, stallCauseName(static_cast<Machine::StallCause>(C)),
                     PerCore);
    J += ',';
  }
  {
    std::vector<uint64_t> Issued(Cores);
    for (unsigned Core = 0; Core != Cores; ++Core)
      Issued[Core] = M.issuedCoreCycles(Core);
    appendArrayField(J, "issued", Issued);
  }
  J += '}';

  // Interconnect traffic (always on; routed serially, so deterministic).
  J += ",\"interconnect\":{";
  appendField(J, "contention", M.contentionCycles());
  {
    using LC = sim::Interconnect::LinkClass;
    for (unsigned C = 0; C != static_cast<unsigned>(LC::NumClasses); ++C) {
      J += formatString(",\"contention_%s\":",
                        linkClassName(static_cast<LC>(C)));
      appendU64(J, Net.contentionOn(static_cast<LC>(C)));
    }
  }
  std::vector<uint64_t> Fwd(Cores), Bwd(Cores), BReq(Cores), BWait(Cores);
  for (unsigned Core = 0; Core != Cores; ++Core) {
    Fwd[Core] = Net.forwardPackets(Core);
    Bwd[Core] = Net.backwardPackets(Core);
    BReq[Core] = Net.bankPortRequests(Core);
    BWait[Core] = Net.bankPortWaitCycles(Core);
  }
  J += ',';
  appendArrayField(J, "forward_packets", Fwd);
  J += ',';
  appendArrayField(J, "backward_packets", Bwd);
  J += ',';
  appendArrayField(J, "bank_port_requests", BReq);
  J += ',';
  appendArrayField(J, "bank_port_wait", BWait);
  J += '}';

  // Interval digests (docs/OBSERVABILITY.md "Divergence triage").
  // Omitted entirely when digesting is off so pre-digest consumers see
  // an unchanged document.
  const sim::Trace &Tr = M.trace();
  if (Tr.digestInterval() != 0) {
    J += ",\"digests\":{";
    appendField(J, "interval", Tr.digestInterval());
    J += ',';
    appendField(J, "ring_cap", Tr.digestRingCap());
    J += ',';
    appendField(J, "count", Tr.digestCount());
    J += ",\"ring\":[";
    bool First = true;
    for (const sim::TraceDigest &D : Tr.digestEntries()) {
      if (!First)
        J += ',';
      First = false;
      J += formatString("{\"boundary\":%llu,\"hash\":\"0x%016llx\"}",
                        static_cast<unsigned long long>(D.Boundary),
                        static_cast<unsigned long long>(D.Hash));
    }
    J += "]}";
  }

  const PerfCounters &PC = M.counters();
  if (PC.enabled()) {
    J += ",\"counters\":{";
    appendArrayField(J, "commits_per_core", PC.CommitsPerCore);
    J += ',';
    appendArrayField(J, "commits_per_hart", PC.CommitsPerHart);
    J += ',';
    appendArrayField(J, "bank_reads", PC.BankReads);
    J += ',';
    appendArrayField(J, "bank_writes", PC.BankWrites);
    J += ',';
    appendField(J, "local_reads", PC.LocalReads);
    J += ',';
    appendField(J, "local_writes", PC.LocalWrites);
    J += ',';
    appendField(J, "io_reads", PC.IoReads);
    J += ',';
    appendField(J, "io_writes", PC.IoWrites);
    J += ',';
    appendField(J, "forks", PC.Forks);
    J += ',';
    appendField(J, "hart_starts", PC.HartStarts);
    J += ',';
    appendField(J, "hart_ends", PC.HartEnds);
    J += ',';
    appendField(J, "token_passes", PC.TokenPasses);
    J += ',';
    appendField(J, "joins", PC.Joins);
    J += ',';
    appendField(J, "faults_injected", PC.FaultsInjected);
    J += ',';
    appendField(J, "machine_check_events", PC.MachineChecks);
    J += ",\"token_latency\":{";
    appendField(J, "count", PC.TokenLatency.Count);
    J += ',';
    appendField(J, "sum", PC.TokenLatency.Sum);
    J += ',';
    appendField(J, "max", PC.TokenLatency.Max);
    J += ',';
    appendArrayField(J, "buckets", PC.TokenLatency.Buckets);
    J += '}';
    J += ',';
    appendArrayField(J, "rob_high", PC.RobHigh);
    J += ',';
    appendArrayField(J, "slot_high", PC.SlotHigh);
    J += '}';
  }
  J += '}';
  return J;
}

//===----------------------------------------------------------------------===//
// PhaseProfiler
//===----------------------------------------------------------------------===//

void PhaseProfiler::onEvent(uint64_t Cycle, EventKind Kind, uint64_t A,
                            uint64_t B) {
  (void)B;
  switch (Kind) {
  case EventKind::Commit:
    ++Cur.Commits;
    return;
  case EventKind::HartReserve:
    ++Cur.Forks;
    return;
  case EventKind::BankRead:
  case EventKind::BankWrite:
    ++Cur.BankAccesses;
    return;
  case EventKind::Join:
    if (A == 0) {
      // Hart 0 resuming closes the barrier and the phase.
      Cur.EndCycle = Cycle;
      Done.push_back(Cur);
      Cur = Phase();
      Cur.BeginCycle = Cycle;
    }
    return;
  default:
    return;
  }
}

std::vector<PhaseProfiler::Phase>
PhaseProfiler::phases(uint64_t FinalCycle) const {
  std::vector<Phase> All = Done;
  if (Cur.Commits || Cur.Forks || Cur.BankAccesses) {
    Phase Tail = Cur;
    Tail.EndCycle = FinalCycle;
    All.push_back(Tail);
  }
  return All;
}

//===----------------------------------------------------------------------===//
// buildReport
//===----------------------------------------------------------------------===//

namespace {

/// Indices 0..N-1 sorted descending by Weight, ties by lower index.
std::vector<unsigned> rankDescending(const std::vector<uint64_t> &Weight) {
  std::vector<unsigned> Idx(Weight.size());
  for (unsigned I = 0; I != Idx.size(); ++I)
    Idx[I] = I;
  std::stable_sort(Idx.begin(), Idx.end(), [&](unsigned L, unsigned R) {
    return Weight[L] > Weight[R];
  });
  return Idx;
}

double pct(uint64_t Part, uint64_t Whole) {
  return Whole == 0 ? 0.0
                    : 100.0 * static_cast<double>(Part) /
                          static_cast<double>(Whole);
}

} // namespace

std::string obs::buildReport(const Machine &M, const PhaseProfiler *Prof,
                             const ReportOptions &Opts) {
  const sim::SimConfig &Cfg = M.config();
  const sim::Interconnect &Net = M.interconnect();
  unsigned Cores = Cfg.NumCores;
  uint64_t Cycles = M.cycles();

  std::string R;
  R += formatString("run: %s after %llu cycles, %llu retired (ipc %.3f), "
                    "engine %s\n",
                    sim::runStatusName(M.status()),
                    static_cast<unsigned long long>(Cycles),
                    static_cast<unsigned long long>(M.retired()), M.ipc(),
                    M.engineName());
  R += formatString("trace hash: 0x%016llx\n",
                    static_cast<unsigned long long>(M.traceHash()));
  if (!M.engineNote().empty())
    R += formatString("engine note: %s\n", M.engineNote().c_str());
  if (!M.faultMessage().empty())
    R += formatString("fault: %s\n", M.faultMessage().c_str());

  // Occupancy and stall breakdown (CollectStallStats).
  uint64_t Issued = M.issuedCoreCycles();
  uint64_t TotalStalls = 0;
  for (unsigned C = 0;
       C != static_cast<unsigned>(Machine::StallCause::NumCauses); ++C)
    TotalStalls += M.stallCycles(static_cast<Machine::StallCause>(C));
  if (Issued + TotalStalls != 0) {
    uint64_t CoreCycles = Issued + TotalStalls;
    R += formatString("\nissue occupancy: %.1f%% (%llu of %llu observed "
                      "core-cycles issued)\n",
                      pct(Issued, CoreCycles),
                      static_cast<unsigned long long>(Issued),
                      static_cast<unsigned long long>(CoreCycles));
    R += "stall breakdown:\n";
    for (unsigned C = 0;
         C != static_cast<unsigned>(Machine::StallCause::NumCauses); ++C) {
      auto Cause = static_cast<Machine::StallCause>(C);
      uint64_t N = M.stallCycles(Cause);
      if (N == 0)
        continue;
      R += formatString("  %-18s %10llu core-cycles  %5.1f%%\n",
                        stallCauseName(Cause),
                        static_cast<unsigned long long>(N),
                        pct(N, CoreCycles));
    }
    R += "per-core occupancy:\n";
    for (unsigned Core = 0; Core != Cores; ++Core) {
      uint64_t CoreIssued = M.issuedCoreCycles(Core);
      uint64_t CoreTotal = CoreIssued;
      for (unsigned C = 0;
           C != static_cast<unsigned>(Machine::StallCause::NumCauses); ++C)
        CoreTotal +=
            M.stallCycles(static_cast<Machine::StallCause>(C), Core);
      R += formatString("  core %-3u %5.1f%% issued\n", Core,
                        pct(CoreIssued, CoreTotal));
    }
  }

  // Protocol traffic and memory counters (CollectCounters).
  const PerfCounters &PC = M.counters();
  if (PC.enabled()) {
    R += formatString("\nx_par protocol: %llu forks, %llu hart-starts, "
                      "%llu hart-ends, %llu token-passes, %llu joins\n",
                      static_cast<unsigned long long>(PC.Forks),
                      static_cast<unsigned long long>(PC.HartStarts),
                      static_cast<unsigned long long>(PC.HartEnds),
                      static_cast<unsigned long long>(PC.TokenPasses),
                      static_cast<unsigned long long>(PC.Joins));
    if (PC.TokenLatency.Count != 0)
      R += formatString("token latency: mean %.1f cycles, max %llu "
                        "(%llu measured)\n",
                        PC.TokenLatency.mean(),
                        static_cast<unsigned long long>(PC.TokenLatency.Max),
                        static_cast<unsigned long long>(
                            PC.TokenLatency.Count));
    if (PC.FaultsInjected + PC.MachineChecks != 0)
      R += formatString("robustness: %llu faults injected, %llu machine "
                        "checks\n",
                        static_cast<unsigned long long>(PC.FaultsInjected),
                        static_cast<unsigned long long>(PC.MachineChecks));

    std::vector<uint64_t> BankTraffic(Cores);
    for (unsigned B = 0; B != Cores; ++B)
      BankTraffic[B] = PC.BankReads[B] + PC.BankWrites[B];
    std::vector<unsigned> Rank = rankDescending(BankTraffic);
    R += "hottest banks (reads+writes, incl. local-port traffic):\n";
    for (unsigned I = 0; I != Rank.size() && I != Opts.TopN; ++I) {
      unsigned B = Rank[I];
      if (BankTraffic[B] == 0)
        break;
      R += formatString("  bank %-3u %10llu accesses (%llu via router "
                        "port, %llu wait cycles)\n",
                        B, static_cast<unsigned long long>(BankTraffic[B]),
                        static_cast<unsigned long long>(
                            Net.bankPortRequests(B)),
                        static_cast<unsigned long long>(
                            Net.bankPortWaitCycles(B)));
    }

    uint32_t RobPeak = 0, SlotPeak = 0;
    for (uint32_t V : PC.RobHigh)
      RobPeak = std::max(RobPeak, V);
    for (uint32_t V : PC.SlotHigh)
      SlotPeak = std::max(SlotPeak, V);
    R += formatString("high-water marks: rob %u of %u, result slots %u "
                      "of %u\n",
                      RobPeak, sim::RobEntries, SlotPeak, sim::ResultSlots);
  }

  // Link traffic is collected unconditionally.
  {
    std::vector<uint64_t> Fwd(Cores), Bwd(Cores);
    uint64_t FwdTotal = 0, BwdTotal = 0;
    for (unsigned Core = 0; Core != Cores; ++Core) {
      Fwd[Core] = Net.forwardPackets(Core);
      Bwd[Core] = Net.backwardPackets(Core);
      FwdTotal += Fwd[Core];
      BwdTotal += Bwd[Core];
    }
    R += formatString("\nlinks: %llu forward packets, %llu backward "
                      "hops, %llu total contention cycles\n",
                      static_cast<unsigned long long>(FwdTotal),
                      static_cast<unsigned long long>(BwdTotal),
                      static_cast<unsigned long long>(
                          M.contentionCycles()));
    std::vector<unsigned> Rank = rankDescending(Fwd);
    for (unsigned I = 0; I != Rank.size() && I != Opts.TopN; ++I) {
      unsigned Core = Rank[I];
      if (Fwd[Core] + Bwd[Core] == 0)
        break;
      R += formatString("  core %-3u %8llu fwd  %8llu bwd\n", Core,
                        static_cast<unsigned long long>(Fwd[Core]),
                        static_cast<unsigned long long>(Bwd[Core]));
    }
  }

  if (Prof) {
    std::vector<PhaseProfiler::Phase> Phases = Prof->phases(Cycles);
    if (!Phases.empty()) {
      R += "\nbarrier phases (split at joins reaching hart 0):\n";
      for (size_t I = 0; I != Phases.size(); ++I) {
        const PhaseProfiler::Phase &P = Phases[I];
        uint64_t Span = P.EndCycle - P.BeginCycle;
        R += formatString("  phase %-3zu cycles %8llu..%-8llu (%7llu) "
                          "%9llu commits  %5llu forks  %9llu bank "
                          "accesses\n",
                          I, static_cast<unsigned long long>(P.BeginCycle),
                          static_cast<unsigned long long>(P.EndCycle),
                          static_cast<unsigned long long>(Span),
                          static_cast<unsigned long long>(P.Commits),
                          static_cast<unsigned long long>(P.Forks),
                          static_cast<unsigned long long>(P.BankAccesses));
      }
    }
  }
  return R;
}
