//===- obs/Triage.cpp - Divergence triage pipeline --------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "obs/Triage.h"
#include "asm/Assembler.h"
#include "isa/AddressMap.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace lbp;
using namespace lbp::obs;
using sim::EventKind;
using sim::Machine;
using sim::SimConfig;

namespace {

/// Captures every digest boundary of a run — the bounded ring keeps
/// only the newest entries, but a sink sees them all.
struct DigestCaptureSink : sim::TraceSink {
  std::vector<sim::TraceDigest> All;
  void onEvent(uint64_t, EventKind, uint64_t, uint64_t) override {}
  void onDigest(uint64_t Boundary, uint64_t Hash) override {
    All.push_back({Boundary, Hash});
  }
};

/// Captures the canonical event stream of a replayed window.
struct EventCaptureSink : sim::TraceSink {
  std::vector<TriageEvent> Events;
  void onEvent(uint64_t Cycle, EventKind Kind, uint64_t A,
               uint64_t B) override {
    Events.push_back({Cycle, Kind, A, B});
  }
};

void fillSide(TriageSideResult &Out, const TriageRunSpec &Spec,
              const Machine &M, sim::RunStatus St) {
  Out.Name = Spec.Name;
  Out.EngineName = M.engineName();
  Out.HostThreads = Spec.Cfg.HostThreads;
  Out.Status = St;
  Out.Cycles = M.cycles();
  Out.Retired = M.retired();
  Out.TraceHash = M.traceHash();
  Out.DigestCount = M.trace().digestCount();
}

} // namespace

int obs::triageEventHart(const TriageEvent &E) {
  // Operand conventions from sim/Trace.h (mirrors obs/Perfetto.cpp).
  switch (E.Kind) {
  case EventKind::Commit:
  case EventKind::HartStart:
  case EventKind::HartEnd:
  case EventKind::HartReserve:
  case EventKind::TokenPass:
  case EventKind::Join:
  case EventKind::Exit:
  case EventKind::Perturb:
    return static_cast<int>(E.A);
  case EventKind::FaultInject:
  case EventKind::MachineCheck:
    return static_cast<int>(E.B);
  case EventKind::BankRead:
  case EventKind::BankWrite:
  case EventKind::IoRead:
  case EventKind::IoWrite:
    return -1;
  }
  return -1;
}

int obs::triageEventCore(const TriageEvent &E, unsigned BankSizeLog2) {
  switch (E.Kind) {
  case EventKind::BankRead:
  case EventKind::BankWrite: {
    uint32_t Addr = static_cast<uint32_t>(E.A);
    if (isa::isGlobalAddr(Addr))
      return static_cast<int>((Addr - isa::GlobalBase) >> BankSizeLog2);
    return -1;
  }
  default: {
    int Hart = triageEventHart(E);
    return Hart < 0 ? -1 : Hart / static_cast<int>(sim::HartsPerCore);
  }
  }
}

TriageResult obs::triageDivergence(const assembler::Program &Prog,
                                   const TriageRunSpec &A,
                                   const TriageRunSpec &B,
                                   const TriageOptions &Opts) {
  TriageResult R;

  // Both sides must digest at the same stride for the bisection to
  // compare like with like; default it in when a side has it off.
  TriageRunSpec Sides[2] = {A, B};
  uint64_t D = Sides[0].Cfg.DigestInterval != 0 ? Sides[0].Cfg.DigestInterval
               : Sides[1].Cfg.DigestInterval != 0
                   ? Sides[1].Cfg.DigestInterval
                   : 4096;
  Sides[0].Cfg.DigestInterval = D;
  Sides[1].Cfg.DigestInterval = D;
  R.DigestInterval = D;
  R.BankSizeLog2 = Sides[0].Cfg.GlobalBankSizeLog2;

  // -- Phase 1: full runs with complete digest capture -----------------
  std::vector<sim::TraceDigest> Digests[2];
  for (int S = 0; S != 2; ++S) {
    Machine M(Sides[S].Cfg);
    DigestCaptureSink DS;
    M.addTraceSink(&DS);
    M.load(Prog);
    sim::RunStatus St = M.run(Opts.MaxCycles);
    fillSide(R.Side[S], Sides[S], M, St);
    Digests[S] = std::move(DS.All);
  }

  R.Diverged = R.Side[0].TraceHash != R.Side[1].TraceHash ||
               R.Side[0].Cycles != R.Side[1].Cycles ||
               R.Side[0].Status != R.Side[1].Status;
  if (!R.Diverged) {
    R.Ran = true;
    return R;
  }

  // -- Phase 2: last agreeing digest boundary --------------------------
  size_t Common = std::min(Digests[0].size(), Digests[1].size());
  size_t Agree = 0; // boundaries agreed on so far
  while (Agree != Common &&
         Digests[0][Agree].Boundary == Digests[1][Agree].Boundary &&
         Digests[0][Agree].Hash == Digests[1][Agree].Hash)
    ++Agree;
  if (Agree != 0) {
    R.LastAgreeBoundary = Digests[0][Agree - 1].Boundary;
    R.LastAgreeHash = Digests[0][Agree - 1].Hash;
  }

  // The first divergent event lies at a cycle >= LastAgreeBoundary and
  // (when the next boundary's digests disagree) < LastAgreeBoundary + D.
  // Snapshot one cycle earlier so events at the boundary cycle itself
  // are still replayed, and give the window 2 * D so there is up to an
  // interval of trailing context.
  R.SnapshotCycle = R.LastAgreeBoundary == 0 ? 0 : R.LastAgreeBoundary - 1;
  R.WindowCycles = 2 * D;

  // -- Phase 3: snapshot-anchored replay with event capture ------------
  std::vector<TriageEvent> Streams[2];
  for (int S = 0; S != 2; ++S) {
    Machine M1(Sides[S].Cfg);
    M1.load(Prog);
    if (R.SnapshotCycle != 0) {
      sim::RunStatus St = M1.run(R.SnapshotCycle);
      if (St != sim::RunStatus::MaxCycles ||
          M1.cycles() != R.SnapshotCycle) {
        R.Error = formatString(
            "side '%s' could not reach the snapshot anchor (cycle %llu): "
            "run stopped at %llu (%s)",
            Sides[S].Name.c_str(),
            static_cast<unsigned long long>(R.SnapshotCycle),
            static_cast<unsigned long long>(M1.cycles()),
            sim::runStatusName(St));
        return R;
      }
    }
    std::vector<uint8_t> Blob;
    M1.saveSnapshot(Blob);

    // The blob carries the code image, so the replay machine is never
    // load()ed — the capture sink sees exactly the post-anchor stream.
    Machine M2(Sides[S].Cfg);
    EventCaptureSink Cap;
    M2.addTraceSink(&Cap);
    std::string Err;
    if (!M2.restoreSnapshot(Blob, Err)) {
      R.Error = formatString("side '%s' snapshot restore failed: %s",
                             Sides[S].Name.c_str(), Err.c_str());
      return R;
    }
    M2.run(R.WindowCycles);
    Streams[S] = std::move(Cap.Events);
  }
  R.Ran = true;

  // -- Phase 4: first divergent event + context ------------------------
  size_t N = std::min(Streams[0].size(), Streams[1].size());
  size_t I = 0;
  while (I != N && Streams[0][I] == Streams[1][I])
    ++I;
  R.FirstIndex = I;
  R.Found = I < std::max(Streams[0].size(), Streams[1].size());

  uint64_t K = Opts.ContextEvents;
  for (int S = 0; S != 2; ++S) {
    const std::vector<TriageEvent> &Ev = Streams[S];
    uint64_t Lo = I > K ? I - K : 0;
    uint64_t Hi = std::min<uint64_t>(Ev.size(), I + K + 1);
    R.Side[S].ContextBase = Lo;
    for (uint64_t J = Lo; J < Hi; ++J)
      R.Side[S].Context.push_back(Ev[J]);
  }
  return R;
}

namespace {

void appendEventJson(std::string &J, const TriageEvent &E,
                     unsigned BankSizeLog2) {
  J += formatString("{\"cycle\":%llu,\"kind\":\"%s\",\"core\":%d,"
                    "\"hart\":%d,\"a\":%llu,\"b\":%llu}",
                    static_cast<unsigned long long>(E.Cycle),
                    sim::eventKindName(E.Kind),
                    triageEventCore(E, BankSizeLog2), triageEventHart(E),
                    static_cast<unsigned long long>(E.A),
                    static_cast<unsigned long long>(E.B));
}

void appendSideJson(std::string &J, const TriageSideResult &S) {
  J += formatString(
      "{\"name\":\"%s\",\"engine\":\"%s\",\"host_threads\":%u,"
      "\"status\":\"%s\",\"cycles\":%llu,\"retired\":%llu,"
      "\"trace_hash\":\"0x%016llx\",\"digest_count\":%llu}",
      jsonEscape(S.Name).c_str(), jsonEscape(S.EngineName).c_str(),
      S.HostThreads, sim::runStatusName(S.Status),
      static_cast<unsigned long long>(S.Cycles),
      static_cast<unsigned long long>(S.Retired),
      static_cast<unsigned long long>(S.TraceHash),
      static_cast<unsigned long long>(S.DigestCount));
}

} // namespace

std::string obs::triageReportToJson(const TriageResult &R,
                                    const std::string &Workload) {
  // The report derives only from deterministic run state, so identical
  // inputs render a byte-identical document (CI diffs it across runs).
  unsigned BankLog2 = R.BankSizeLog2;
  std::string J = "{\"schema\":\"lbp-triage-report-v1\"";
  J += formatString(",\"workload\":\"%s\"", jsonEscape(Workload).c_str());
  J += formatString(",\"ran\":%s", R.Ran ? "true" : "false");
  if (!R.Error.empty())
    J += formatString(",\"error\":\"%s\"", jsonEscape(R.Error).c_str());
  J += formatString(",\"digest_interval\":%llu",
                    static_cast<unsigned long long>(R.DigestInterval));
  J += ",\"sides\":[";
  appendSideJson(J, R.Side[0]);
  J += ',';
  appendSideJson(J, R.Side[1]);
  J += ']';
  J += formatString(",\"diverged\":%s", R.Diverged ? "true" : "false");
  if (R.Diverged) {
    J += formatString(
        ",\"last_agree\":{\"boundary\":%llu,\"hash\":\"0x%016llx\"}",
        static_cast<unsigned long long>(R.LastAgreeBoundary),
        static_cast<unsigned long long>(R.LastAgreeHash));
    J += formatString(
        ",\"replay\":{\"snapshot_cycle\":%llu,\"window_cycles\":%llu}",
        static_cast<unsigned long long>(R.SnapshotCycle),
        static_cast<unsigned long long>(R.WindowCycles));
    J += formatString(",\"found\":%s", R.Found ? "true" : "false");
    J += formatString(",\"first_divergence\":{\"index\":%llu",
                      static_cast<unsigned long long>(R.FirstIndex));
    for (int S = 0; S != 2; ++S) {
      const TriageSideResult &Side = R.Side[S];
      J += formatString(",\"%s\":", S == 0 ? "a" : "b");
      uint64_t Rel = R.FirstIndex - Side.ContextBase;
      if (R.Found && Rel < Side.Context.size())
        appendEventJson(J, Side.Context[Rel], BankLog2);
      else
        J += "null"; // this side's stream ended before the divergence
    }
    J += '}';
    J += ",\"context\":{";
    for (int S = 0; S != 2; ++S) {
      const TriageSideResult &Side = R.Side[S];
      J += formatString("%s\"%s\":{\"base\":%llu,\"events\":[",
                        S == 0 ? "" : ",", S == 0 ? "a" : "b",
                        static_cast<unsigned long long>(Side.ContextBase));
      for (size_t I = 0; I != Side.Context.size(); ++I) {
        if (I)
          J += ',';
        appendEventJson(J, Side.Context[I], BankLog2);
      }
      J += "]}";
    }
    J += '}';
  }
  J += '}';
  return J;
}
