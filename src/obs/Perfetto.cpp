//===- obs/Perfetto.cpp - Timeline export of the canonical event stream ----===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "obs/Perfetto.h"
#include "support/StringUtils.h"

using namespace lbp;
using namespace lbp::obs;
using sim::EventKind;

PerfettoSink::PerfettoSink(std::ostream &OS, const sim::SimConfig &Cfg,
                           uint64_t CounterInterval)
    : OS(OS), NumCores(Cfg.NumCores), Interval(CounterInterval),
      NextSample(CounterInterval), SpanOpen(Cfg.numHarts(), false),
      CommitsByCore(Cfg.NumCores, 0) {
  OS << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  // Name the lanes: one "process" per core, one "thread" per hart.
  for (unsigned C = 0; C != NumCores; ++C) {
    emitJson(formatString("{\"name\":\"process_name\",\"ph\":\"M\","
                          "\"pid\":%u,\"args\":{\"name\":\"core %u\"}}",
                          C, C)
                 .c_str());
    emitJson(formatString("{\"name\":\"process_sort_index\",\"ph\":\"M\","
                          "\"pid\":%u,\"args\":{\"sort_index\":%u}}",
                          C, C)
                 .c_str());
    for (unsigned H = 0; H != sim::HartsPerCore; ++H) {
      unsigned Hart = C * sim::HartsPerCore + H;
      emitJson(formatString("{\"name\":\"thread_name\",\"ph\":\"M\","
                            "\"pid\":%u,\"tid\":%u,"
                            "\"args\":{\"name\":\"hart %u\"}}",
                            C, Hart, Hart)
                   .c_str());
    }
  }
}

void PerfettoSink::emitJson(const char *Json) {
  if (!First)
    OS << ",\n";
  First = false;
  OS << Json;
}

void PerfettoSink::beginSpan(uint64_t Cycle, unsigned Hart, uint64_t Pc) {
  // A start on an already-open lane (join resume after a drop fault
  // replay, say) would unbalance the B/E nesting; close it first.
  if (SpanOpen[Hart])
    endSpan(Cycle, Hart);
  SpanOpen[Hart] = true;
  emitJson(formatString(
               "{\"name\":\"active\",\"cat\":\"hart\",\"ph\":\"B\","
               "\"ts\":%llu,\"pid\":%u,\"tid\":%u,"
               "\"args\":{\"pc\":%llu}}",
               static_cast<unsigned long long>(Cycle),
               Hart / sim::HartsPerCore, Hart,
               static_cast<unsigned long long>(Pc))
               .c_str());
}

void PerfettoSink::endSpan(uint64_t Cycle, unsigned Hart) {
  if (!SpanOpen[Hart])
    return;
  SpanOpen[Hart] = false;
  emitJson(formatString("{\"ph\":\"E\",\"ts\":%llu,\"pid\":%u,\"tid\":%u}",
                        static_cast<unsigned long long>(Cycle),
                        Hart / sim::HartsPerCore, Hart)
               .c_str());
}

void PerfettoSink::instant(uint64_t Cycle, unsigned Hart, const char *Name,
                           uint64_t Arg) {
  emitJson(formatString(
               "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\","
               "\"s\":\"t\",\"ts\":%llu,\"pid\":%u,\"tid\":%u,"
               "\"args\":{\"v\":%llu}}",
               Name, static_cast<unsigned long long>(Cycle),
               Hart / sim::HartsPerCore, Hart,
               static_cast<unsigned long long>(Arg))
               .c_str());
}

void PerfettoSink::sampleCounters(uint64_t Cycle) {
  for (unsigned C = 0; C != NumCores; ++C)
    emitJson(formatString("{\"name\":\"commits\",\"ph\":\"C\","
                          "\"ts\":%llu,\"pid\":%u,"
                          "\"args\":{\"retired\":%llu}}",
                          static_cast<unsigned long long>(Cycle), C,
                          static_cast<unsigned long long>(CommitsByCore[C]))
                 .c_str());
}

void PerfettoSink::onEvent(uint64_t Cycle, EventKind Kind, uint64_t A,
                           uint64_t B) {
  if (Interval != 0 && Cycle >= NextSample) {
    // Stamp the sample at the first event past the boundary; events
    // arrive in canonical order, so this point is deterministic.
    sampleCounters(Cycle);
    NextSample = (Cycle / Interval + 1) * Interval;
  }
  switch (Kind) {
  case EventKind::Commit:
    ++CommitsByCore[A / sim::HartsPerCore];
    return; // counter tracks only; one instant per commit would drown
            // the timeline
  case EventKind::BankRead:
  case EventKind::BankWrite:
    return; // likewise: visible through the bank counters in lbp_prof
  case EventKind::HartStart:
    beginSpan(Cycle, static_cast<unsigned>(A), B);
    return;
  case EventKind::HartEnd:
    endSpan(Cycle, static_cast<unsigned>(A));
    return;
  case EventKind::HartReserve:
    instant(Cycle, static_cast<unsigned>(B), "fork", A);
    return;
  case EventKind::TokenPass:
    instant(Cycle, static_cast<unsigned>(B), "token", A);
    return;
  case EventKind::Join:
    instant(Cycle, static_cast<unsigned>(A), "join", B);
    return;
  case EventKind::IoRead:
    instant(Cycle, 0, "io-read", A);
    return;
  case EventKind::IoWrite:
    instant(Cycle, 0, "io-write", A);
    return;
  case EventKind::Exit:
    instant(Cycle, static_cast<unsigned>(A), "exit", 0);
    return;
  case EventKind::FaultInject:
    instant(Cycle, static_cast<unsigned>(B), "fault-inject", A);
    return;
  case EventKind::MachineCheck:
    instant(Cycle, static_cast<unsigned>(B), "machine-check", A);
    return;
  case EventKind::Perturb:
    instant(Cycle, static_cast<unsigned>(A), "perturb", B);
    return;
  }
}

void PerfettoSink::finish(uint64_t FinalCycle) {
  if (Finished)
    return;
  Finished = true;
  for (unsigned Hart = 0; Hart != SpanOpen.size(); ++Hart)
    endSpan(FinalCycle, Hart);
  if (Interval != 0)
    sampleCounters(FinalCycle);
  OS << "]}\n";
}

void JsonlSink::onEvent(uint64_t Cycle, EventKind Kind, uint64_t A,
                        uint64_t B) {
  OS << formatString("{\"cycle\":%llu,\"kind\":\"%s\",\"a\":%llu,"
                     "\"b\":%llu}\n",
                     static_cast<unsigned long long>(Cycle),
                     sim::eventKindName(Kind),
                     static_cast<unsigned long long>(A),
                     static_cast<unsigned long long>(B));
}
