//===- obs/Report.h - Profiling reports and counter snapshots --------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Turns a finished Machine into observability artifacts
/// (docs/OBSERVABILITY.md):
///
///  * countersToJson() — the canonical counter snapshot. Every field in
///    it is deterministic across engines and host thread counts, which
///    is exactly why the snapshot exists: the differential tests compare
///    the string byte-for-byte between the serial reference, the fast
///    path and the sharded runs. Host-only observables (engine choice,
///    HostThreads, the commutatively-folded local/remote access tallies
///    whose post-halt truncation differs by engine) are deliberately
///    *not* in it.
///  * PhaseProfiler — a TraceSink that splits the run into barrier
///    phases: a Join delivered to hart 0 ends a phase (hart 0 resuming
///    is the paper's `p_syncm`-then-join barrier completion).
///  * buildReport() — the human-readable profile lbp_prof prints:
///    occupancy, stall breakdown, hottest banks and links, protocol
///    traffic, per-phase summary.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_OBS_REPORT_H
#define LBP_OBS_REPORT_H

#include "sim/Machine.h"

#include <string>
#include <vector>

namespace lbp {
namespace obs {

/// Canonical JSON snapshot of everything deterministic a run counted.
/// Field order and formatting are fixed (integers only, no floats), so
/// equal runs produce byte-equal strings.
std::string countersToJson(const sim::Machine &M);

/// Splits a run into barrier phases on the canonical event stream. A
/// phase ends when a Join reaches hart 0 (the fork/join barrier hands
/// control back to the team leader); the tail after the last join is
/// its own phase.
class PhaseProfiler : public sim::TraceSink {
public:
  struct Phase {
    uint64_t BeginCycle = 0;
    uint64_t EndCycle = 0; ///< Cycle of the closing join (or run end).
    uint64_t Commits = 0;
    uint64_t Forks = 0;
    uint64_t BankAccesses = 0;
  };

  void onEvent(uint64_t Cycle, sim::EventKind Kind, uint64_t A,
               uint64_t B) override;

  /// Closes the tail phase at \p FinalCycle and returns the list. The
  /// tail is kept only if anything happened in it.
  std::vector<Phase> phases(uint64_t FinalCycle) const;

private:
  std::vector<Phase> Done;
  Phase Cur;
};

struct ReportOptions {
  unsigned TopN = 8; ///< Rows in the "hottest" tables.
};

/// The human-readable profile. \p Prof may be null (no per-phase
/// section). Stall and occupancy sections appear when the run collected
/// them (SimConfig::CollectStallStats / CollectCounters).
std::string buildReport(const sim::Machine &M, const PhaseProfiler *Prof,
                        const ReportOptions &Opts);

} // namespace obs
} // namespace lbp

#endif // LBP_OBS_REPORT_H
