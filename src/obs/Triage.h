//===- obs/Triage.h - Divergence triage: bisect to the first bad event -----===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Localizes a determinism violation to its first observable cause
/// (docs/OBSERVABILITY.md "Divergence triage"). Given two run
/// configurations of the same program whose fingerprints diverge —
/// engine, host-thread count or fault plan may differ — the triager:
///
///   1. runs both sides once, capturing the full interval-digest
///      sequence (Trace::configureDigests) through a TraceSink;
///   2. compares the digest sequences to find the last boundary at
///      which the hash chains still agree;
///   3. re-runs each side to one cycle before that boundary, snapshots
///      it (sim/Snapshot), restores the snapshot into a fresh machine
///      with full event capture attached, and replays a window of at
///      most 2 * DigestInterval cycles;
///   4. compares the captured canonical event streams index by index
///      and reports the first divergent trace event — cycle, core,
///      hart, kind, operands — plus a K-event context window from each
///      side.
///
/// The report (triageReportToJson) is canonical: the same two configs
/// on the same program produce a byte-identical document, which is what
/// lets CI diff reports across runs. bench_simspeed and lbp_fleet embed
/// it in their own JSON payloads when a divergence gate trips.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_OBS_TRIAGE_H
#define LBP_OBS_TRIAGE_H

#include "sim/Config.h"
#include "sim/Machine.h"
#include "sim/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lbp {
namespace assembler {
class Program;
}

namespace obs {

/// One side of a divergence: a label plus the full machine config.
/// Host-side knobs (FastPath, HostThreads, ...) are the usual suspects;
/// behavior knobs (fault plan, PerturbForTest) are allowed to differ
/// too — triage then explains what the difference did.
struct TriageRunSpec {
  std::string Name; ///< e.g. "reference", "parallel-t4".
  sim::SimConfig Cfg;
};

struct TriageOptions {
  /// Events of leading and trailing context captured around the first
  /// divergent event, per side.
  unsigned ContextEvents = 8;

  /// Cycle budget for the phase-1 full runs.
  uint64_t MaxCycles = 20000000;
};

/// One canonical trace event as captured during replay.
struct TriageEvent {
  uint64_t Cycle = 0;
  sim::EventKind Kind = sim::EventKind::Commit;
  uint64_t A = 0;
  uint64_t B = 0;

  bool operator==(const TriageEvent &O) const {
    return Cycle == O.Cycle && Kind == O.Kind && A == O.A && B == O.B;
  }
};

/// Hart an event is attributed to, from the operand conventions in
/// sim/Trace.h; -1 when the kind carries no hart (bank/io traffic).
int triageEventHart(const TriageEvent &E);

/// Core an event is attributed to: the hart's core, the owning bank's
/// core for bank traffic (derived with \p BankSizeLog2), -1 otherwise.
int triageEventCore(const TriageEvent &E, unsigned BankSizeLog2);

/// Phase-1 outcome of one side.
struct TriageSideResult {
  std::string Name;
  std::string EngineName;
  unsigned HostThreads = 1;
  sim::RunStatus Status = sim::RunStatus::MaxCycles;
  uint64_t Cycles = 0;
  uint64_t Retired = 0;
  uint64_t TraceHash = 0;
  uint64_t DigestCount = 0;

  /// Replay capture: events from the restored window, and the slice
  /// around the first divergent index kept for the report.
  std::vector<TriageEvent> Context;
  /// Index (into the replayed stream) of the first context event.
  uint64_t ContextBase = 0;
};

struct TriageResult {
  /// False only on an internal failure (snapshot refused, ...); see
  /// Error. A clean "no divergence" outcome still has Ran == true.
  bool Ran = false;
  std::string Error;

  /// Final fingerprints (hash, cycles, status) differ between sides.
  bool Diverged = false;

  /// The replay isolated a first divergent event (FirstIndex valid).
  bool Found = false;

  uint64_t DigestInterval = 0;

  /// Bank geometry used for core attribution of bank events in the
  /// report (side 0's GlobalBankSizeLog2; the same on both sides of a
  /// comparable pair).
  unsigned BankSizeLog2 = 16;

  /// Last digest boundary at which both hash chains agreed; 0 when the
  /// sides disagree from the very first interval.
  uint64_t LastAgreeBoundary = 0;
  uint64_t LastAgreeHash = 0;

  /// Replay anchoring: machines were snapshotted at SnapshotCycle and
  /// replayed for WindowCycles (<= 2 * DigestInterval).
  uint64_t SnapshotCycle = 0;
  uint64_t WindowCycles = 0;

  /// Index into the replayed event streams of the first divergence.
  uint64_t FirstIndex = 0;

  TriageSideResult Side[2];
};

/// Runs the whole pipeline. \p Prog must already be assembled; both
/// sides load it unmodified. Digesting is forced on for triage: a side
/// whose config has DigestInterval == 0 gets the default interval.
TriageResult triageDivergence(const assembler::Program &Prog,
                              const TriageRunSpec &A,
                              const TriageRunSpec &B,
                              const TriageOptions &Opts = TriageOptions());

/// Canonical lbp-triage-report-v1 JSON document; byte-identical for
/// identical inputs. \p Workload is an arbitrary label echoed into the
/// report.
std::string triageReportToJson(const TriageResult &R,
                               const std::string &Workload);

} // namespace obs
} // namespace lbp

#endif // LBP_OBS_TRIAGE_H
