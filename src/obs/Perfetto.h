//===- obs/Perfetto.h - Timeline export of the canonical event stream ------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Streams the canonical trace-event sequence to timeline formats
/// (docs/OBSERVABILITY.md):
///
///  * PerfettoSink writes Chrome/Perfetto `trace_event` JSON — open the
///    file in ui.perfetto.dev (or chrome://tracing) and every core shows
///    up as a process with one thread lane per hart. Hart activity spans
///    (HartStart..HartEnd) become duration events, the X_PAR protocol
///    messages become instants, and cumulative per-core commit counters
///    are sampled onto counter tracks.
///  * JsonlSink writes one compact JSON object per event, for ad-hoc
///    scripting (jq etc.) without a trace viewer.
///
/// Both sinks observe the stream through sim::TraceSink, i.e. strictly
/// after hashing, and both derive their output from the canonical event
/// sequence only — no wall-clock, no pointers — so the exported bytes
/// are identical for every engine and host thread count (asserted by
/// tests/thread_sweep_test.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef LBP_OBS_PERFETTO_H
#define LBP_OBS_PERFETTO_H

#include "sim/Config.h"
#include "sim/Trace.h"

#include <ostream>
#include <vector>

namespace lbp {
namespace obs {

/// Chrome `trace_event` JSON exporter. One simulated cycle maps to one
/// display microsecond. Register with Machine::addTraceSink() before
/// load() (the boot HartStart is an event), run, then call finish().
class PerfettoSink : public sim::TraceSink {
public:
  /// \p CounterInterval is the cycle stride of the commit counter
  /// samples (0 disables the counter tracks).
  PerfettoSink(std::ostream &OS, const sim::SimConfig &Cfg,
               uint64_t CounterInterval = 64);

  void onEvent(uint64_t Cycle, sim::EventKind Kind, uint64_t A,
               uint64_t B) override;

  /// Closes still-open hart spans at \p FinalCycle (normally
  /// Machine::cycles()), flushes a last counter sample and terminates
  /// the JSON document. Must be called exactly once.
  void finish(uint64_t FinalCycle);

private:
  void emitJson(const char *Json);
  void beginSpan(uint64_t Cycle, unsigned Hart, uint64_t Pc);
  void endSpan(uint64_t Cycle, unsigned Hart);
  void instant(uint64_t Cycle, unsigned Hart, const char *Name,
               uint64_t Arg);
  void sampleCounters(uint64_t Cycle);

  std::ostream &OS;
  unsigned NumCores;
  uint64_t Interval;
  uint64_t NextSample;
  bool First = true;
  bool Finished = false;
  std::vector<bool> SpanOpen;          ///< Per hart.
  std::vector<uint64_t> CommitsByCore; ///< Cumulative, for the samples.
};

/// One JSON object per event:
///   {"cycle":12,"kind":"commit","a":3,"b":4096}
class JsonlSink : public sim::TraceSink {
public:
  explicit JsonlSink(std::ostream &OS) : OS(OS) {}
  void onEvent(uint64_t Cycle, sim::EventKind Kind, uint64_t A,
               uint64_t B) override;

private:
  std::ostream &OS;
};

} // namespace obs
} // namespace lbp

#endif // LBP_OBS_PERFETTO_H
