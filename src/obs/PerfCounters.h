//===- obs/PerfCounters.h - Deterministic performance counters --------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The counter pillar of the observability layer (docs/OBSERVABILITY.md).
/// Almost every counter here is derived from the canonical trace-event
/// stream through the sim::TraceSink interface: the serial loop, the
/// fast path and the sharded parallel engine all hand the sink the exact
/// event sequence the trace hash sees (staged events replay at the epoch
/// merge in the reference loop's order), so the values are bit-identical
/// across engines and host thread counts *by construction*. The ROB and
/// result-slot high-water marks are not events; the Machine raises them
/// through the same per-shard staging path (StagedOp::K::RobHigh /
/// SlotHigh), which gives them the identical canonical-order guarantee —
/// including the truncation-on-halt behavior of the serial loop.
///
/// Nothing in this header feeds back into the event hash: sinks run
/// after hashing, so enabling counters provably leaves every trace hash
/// unchanged (asserted by tests/obs_test.cpp).
///
/// This header is intentionally self-contained (no .cpp in lbp_sim):
/// sim/Machine.h owns a PerfCounters through a unique_ptr, while the
/// report / export code that needs the full Machine lives in lbp_obs,
/// which links lbp_sim — the dependency stays acyclic.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_OBS_PERFCOUNTERS_H
#define LBP_OBS_PERFCOUNTERS_H

#include "isa/AddressMap.h"
#include "sim/Config.h"
#include "sim/Trace.h"

#include <cstdint>
#include <vector>

namespace lbp {
namespace sim {
struct SnapshotAccess; // checkpoint serializer (sim/Snapshot.cpp)
} // namespace sim
namespace obs {

/// Log-scaled latency histogram: bucket B counts samples whose latency
/// lies in [2^B, 2^(B+1)) cycles (bucket 0 also takes latency 0).
struct LatencyHistogram {
  static constexpr unsigned NumBuckets = 16;
  uint64_t Buckets[NumBuckets] = {};
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Max = 0;

  void add(uint64_t Lat) {
    unsigned B = 0;
    for (uint64_t V = Lat; V > 1 && B + 1 < NumBuckets; V >>= 1)
      ++B;
    ++Buckets[B];
    ++Count;
    Sum += Lat;
    if (Lat > Max)
      Max = Lat;
  }
  double mean() const {
    return Count == 0 ? 0.0
                      : static_cast<double>(Sum) / static_cast<double>(Count);
  }
};

/// The deterministic counter set. Disabled instances (the default) cost
/// one inlined boolean test at each hook site and are never registered
/// as a trace sink, so a run with SimConfig::CollectCounters off pays
/// nothing on the event path.
class PerfCounters : public sim::TraceSink {
public:
  // -- Commits ---------------------------------------------------------
  std::vector<uint64_t> CommitsPerCore;
  std::vector<uint64_t> CommitsPerHart;

  // -- Memory traffic --------------------------------------------------
  // Global banks are attributed individually (the event carries the
  // address); local-bank events carry a per-core-relative address, so
  // local traffic aggregates.
  std::vector<uint64_t> BankReads;  ///< Per global bank.
  std::vector<uint64_t> BankWrites; ///< Per global bank.
  uint64_t LocalReads = 0;
  uint64_t LocalWrites = 0;
  uint64_t IoReads = 0;
  uint64_t IoWrites = 0;

  // -- X_PAR protocol --------------------------------------------------
  uint64_t Forks = 0; ///< HartReserve events (p_fc / p_fn allocations).
  uint64_t HartStarts = 0;
  uint64_t HartEnds = 0;
  uint64_t TokenPasses = 0;
  uint64_t Joins = 0;
  /// Token injection (Machine::schedule) to TokenPass arrival. Dropped
  /// tokens never complete a measurement; fault delays are included.
  LatencyHistogram TokenLatency;

  // -- Robustness ------------------------------------------------------
  uint64_t FaultsInjected = 0;
  uint64_t MachineChecks = 0;

  // -- High-water marks (per hart; raised via the staged hook path) ----
  std::vector<uint32_t> RobHigh;  ///< Peak ROB occupancy.
  std::vector<uint32_t> SlotHigh; ///< Peak result-slot occupancy
                                  ///< (full slots + backlog).

  bool enabled() const { return En; }

  void init(const sim::SimConfig &Cfg) {
    En = true;
    unsigned Harts = Cfg.numHarts();
    CommitsPerCore.assign(Cfg.NumCores, 0);
    CommitsPerHart.assign(Harts, 0);
    BankReads.assign(Cfg.NumCores, 0);
    BankWrites.assign(Cfg.NumCores, 0);
    RobHigh.assign(Harts, 0);
    SlotHigh.assign(Harts, 0);
    TokenSendCycle.assign(Harts, UINT64_MAX);
    BankShift = Cfg.GlobalBankSizeLog2;
  }

  /// Machine::schedule() records the injection cycle of a token so the
  /// TokenPass arrival event can close the latency measurement.
  /// schedule() only ever runs at the canonical cycle (serially or at
  /// the epoch merge), so the recorded send cycles are deterministic.
  void noteTokenSend(unsigned TargetHart, uint64_t Cycle) {
    TokenSendCycle[TargetHart] = Cycle;
  }

  uint32_t robHighWater(unsigned HartId) const { return RobHigh[HartId]; }
  void raiseRobHighWater(unsigned HartId, uint32_t Depth) {
    if (Depth > RobHigh[HartId])
      RobHigh[HartId] = Depth;
  }
  uint32_t slotHighWater(unsigned HartId) const { return SlotHigh[HartId]; }
  void raiseSlotHighWater(unsigned HartId, uint32_t Depth) {
    if (Depth > SlotHigh[HartId])
      SlotHigh[HartId] = Depth;
  }

  void onEvent(uint64_t Cycle, sim::EventKind Kind, uint64_t A,
               uint64_t B) override;

private:
  friend struct sim::SnapshotAccess;
  bool En = false;
  unsigned BankShift = 16;
  /// Per target hart: cycle of the last token injection, UINT64_MAX
  /// when no measurement is open.
  std::vector<uint64_t> TokenSendCycle;
};

inline void PerfCounters::onEvent(uint64_t Cycle, sim::EventKind Kind,
                                  uint64_t A, uint64_t B) {
  using sim::EventKind;
  switch (Kind) {
  case EventKind::Commit:
    ++CommitsPerHart[A];
    ++CommitsPerCore[A / sim::HartsPerCore];
    return;
  case EventKind::BankRead:
  case EventKind::BankWrite: {
    bool W = Kind == EventKind::BankWrite;
    uint32_t Addr = static_cast<uint32_t>(A);
    if (isa::isGlobalAddr(Addr)) {
      unsigned Bank = (Addr - isa::GlobalBase) >> BankShift;
      ++(W ? BankWrites : BankReads)[Bank];
    } else {
      ++(W ? LocalWrites : LocalReads);
    }
    return;
  }
  case EventKind::HartStart:
    ++HartStarts;
    return;
  case EventKind::HartEnd:
    ++HartEnds;
    return;
  case EventKind::HartReserve:
    ++Forks;
    return;
  case EventKind::TokenPass: {
    ++TokenPasses;
    uint64_t &Sent = TokenSendCycle[B];
    if (Sent != UINT64_MAX && Cycle >= Sent)
      TokenLatency.add(Cycle - Sent);
    Sent = UINT64_MAX;
    return;
  }
  case EventKind::Join:
    ++Joins;
    return;
  case EventKind::IoRead:
    ++IoReads;
    return;
  case EventKind::IoWrite:
    ++IoWrites;
    return;
  case EventKind::Exit:
    return;
  case EventKind::FaultInject:
    ++FaultsInjected;
    return;
  case EventKind::MachineCheck:
    ++MachineChecks;
    return;
  case EventKind::Perturb:
    return; // Test-only divergence seed; nothing to count.
  }
}

} // namespace obs
} // namespace lbp

#endif // LBP_OBS_PERFCOUNTERS_H
