//===- obs/ProfMain.cpp - lbp_prof driver -------------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lbp_prof command-line profiler (docs/OBSERVABILITY.md): loads a
/// program (Det-C source, LBP assembly, or a built-in workload), runs it
/// under a chosen engine and configuration with the deterministic
/// counters on, and reports.
///
///   lbp_prof [options] file.c | file.s | -
///     --workload NAME      phases | matmul | pipeline | dma |
///                          sensor-fusion (instead of a file)
///     --cores N            machine size (default 4)
///     --threads N          host threads (>= 2 selects the sharded
///                          parallel engine)
///     --engine E           reference | fast (serial engine choice;
///                          default fast)
///     --max-cycles N       cycle budget (default 100000000)
///     --seed N             fault-plan seed; --drops/--delays/
///     --drops N            --flips add that many injected faults
///     --delays N
///     --flips N
///     --no-stalls          skip the stall-cause classification
///     --top N              rows in the "hottest" tables (default 8)
///     --perfetto OUT.json  write a Chrome/Perfetto timeline
///     --jsonl OUT.jsonl    write the raw event stream as JSON lines
///     --counters OUT.json  write the canonical counter snapshot
///     --digests            print the interval-digest ring (newest
///                          entries of the running trace-hash chain;
///                          docs/OBSERVABILITY.md "Divergence triage")
///     --digest-interval N  override the digest stride (0 disables)
///
/// Exit status: 0 = run exited cleanly, 1 = run failed (fault, livelock,
/// cycle budget), 2 = usage/input error.
///
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "frontend/Compiler.h"
#include "obs/Perfetto.h"
#include "obs/Report.h"
#include "sim/Machine.h"
#include "support/StringUtils.h"
#include "workloads/Dma.h"
#include "workloads/MatMul.h"
#include "workloads/Phases.h"
#include "workloads/Pipeline.h"
#include "workloads/SensorFusion.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

using namespace lbp;

namespace {

struct Options {
  std::string Input;
  std::string Workload;
  std::string PerfettoOut;
  std::string JsonlOut;
  std::string CountersOut;
  unsigned Cores = 4;
  unsigned Threads = 1;
  bool FastPath = true;
  bool Stalls = true;
  unsigned TopN = 8;
  uint64_t MaxCycles = 100000000;
  uint64_t Seed = 0;
  unsigned Drops = 0, Delays = 0, Flips = 0;
  bool Oversubscribe = false;
  bool Digests = false;          ///< Print the interval-digest ring.
  uint64_t DigestInterval = 0;   ///< Override stride; 0 keeps default.
};

int usage() {
  std::fprintf(
      stderr,
      "usage: lbp_prof [options] file.c|file.s|-\n"
      "       lbp_prof [options] --workload "
      "phases|matmul|pipeline|dma|sensor-fusion\n"
      "  --cores N  --threads N  --oversubscribe  --engine reference|fast\n"
      "  --max-cycles N  --seed N  --drops N  --delays N  --flips N\n"
      "  --no-stalls  --top N\n"
      "  --perfetto OUT.json  --jsonl OUT.jsonl  --counters OUT.json\n"
      "  --digests  --digest-interval N\n"
      "See docs/OBSERVABILITY.md.\n");
  return 2;
}

bool endsWith(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

/// Program text for the chosen input; empty + message on failure.
std::string loadAsmText(const Options &Opts, std::string &Err) {
  if (!Opts.Workload.empty()) {
    if (Opts.Workload == "phases") {
      workloads::PhasesSpec S;
      S.NumHarts = Opts.Cores * sim::HartsPerCore;
      return workloads::buildPhasesProgram(S);
    }
    if (Opts.Workload == "matmul")
      return workloads::buildMatMulProgram(workloads::MatMulSpec::paper(
          Opts.Cores * sim::HartsPerCore,
          workloads::MatMulVersion::Distributed));
    if (Opts.Workload == "pipeline")
      return workloads::buildPipelineProgram({});
    if (Opts.Workload == "dma")
      return workloads::buildDmaStreamProgram({});
    if (Opts.Workload == "sensor-fusion")
      return workloads::buildSensorFusionProgram({});
    Err = "unknown workload '" + Opts.Workload + "'";
    return std::string();
  }

  std::string Text;
  if (Opts.Input == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Text = SS.str();
  } else {
    std::ifstream In(Opts.Input);
    if (!In) {
      Err = "cannot open '" + Opts.Input + "'";
      return std::string();
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Text = SS.str();
  }
  if (endsWith(Opts.Input, ".s") || endsWith(Opts.Input, ".asm"))
    return Text;
  // Det-C goes through the frontend.
  std::string FrontErr;
  std::string Asm = frontend::compileDetCToAsm(Text, FrontErr);
  if (Asm.empty())
    Err = FrontErr.empty() ? "compilation produced no code" : FrontErr;
  return Asm;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto NextU64 = [&](uint64_t &Out) {
      if (I + 1 >= Argc)
        return false;
      char *End = nullptr;
      unsigned long long V = std::strtoull(Argv[++I], &End, 0);
      if (!End || *End)
        return false;
      Out = V;
      return true;
    };
    auto NextUnsigned = [&](unsigned &Out) {
      uint64_t V;
      if (!NextU64(V) || V > 1u << 20)
        return false;
      Out = static_cast<unsigned>(V);
      return true;
    };
    auto NextString = [&](std::string &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    if (A == "--workload") {
      if (!NextString(Opts.Workload))
        return usage();
    } else if (A == "--cores") {
      if (!NextUnsigned(Opts.Cores) || Opts.Cores == 0)
        return usage();
    } else if (A == "--threads") {
      if (!NextUnsigned(Opts.Threads) || Opts.Threads == 0)
        return usage();
    } else if (A == "--engine") {
      std::string E;
      if (!NextString(E))
        return usage();
      if (E == "reference")
        Opts.FastPath = false;
      else if (E == "fast")
        Opts.FastPath = true;
      else
        return usage();
    } else if (A == "--max-cycles") {
      if (!NextU64(Opts.MaxCycles))
        return usage();
    } else if (A == "--seed") {
      if (!NextU64(Opts.Seed))
        return usage();
    } else if (A == "--drops") {
      if (!NextUnsigned(Opts.Drops))
        return usage();
    } else if (A == "--delays") {
      if (!NextUnsigned(Opts.Delays))
        return usage();
    } else if (A == "--flips") {
      if (!NextUnsigned(Opts.Flips))
        return usage();
    } else if (A == "--oversubscribe") {
      Opts.Oversubscribe = true;
    } else if (A == "--no-stalls") {
      Opts.Stalls = false;
    } else if (A == "--top") {
      if (!NextUnsigned(Opts.TopN))
        return usage();
    } else if (A == "--perfetto") {
      if (!NextString(Opts.PerfettoOut))
        return usage();
    } else if (A == "--jsonl") {
      if (!NextString(Opts.JsonlOut))
        return usage();
    } else if (A == "--counters") {
      if (!NextString(Opts.CountersOut))
        return usage();
    } else if (A == "--digests") {
      Opts.Digests = true;
    } else if (A == "--digest-interval") {
      if (!NextU64(Opts.DigestInterval))
        return usage();
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (A.size() > 1 && A[0] == '-' && A != "-") {
      std::fprintf(stderr, "lbp_prof: unknown option '%s'\n", A.c_str());
      return usage();
    } else if (Opts.Input.empty()) {
      Opts.Input = A;
    } else {
      return usage();
    }
  }
  if (Opts.Input.empty() == Opts.Workload.empty())
    return usage(); // exactly one program source

  std::string Err;
  std::string Asm = loadAsmText(Opts, Err);
  if (Asm.empty()) {
    std::fprintf(stderr, "lbp_prof: %s\n", Err.c_str());
    return 2;
  }
  assembler::AsmResult AR = assembler::assemble(Asm);
  if (!AR.succeeded()) {
    std::fprintf(stderr, "lbp_prof: assembly failed:\n%s",
                 AR.errorText().c_str());
    return 2;
  }

  sim::SimConfig Cfg = sim::SimConfig::lbp(Opts.Cores);
  Cfg.FastPath = Opts.FastPath;
  Cfg.HostThreads = Opts.Threads;
  Cfg.OversubscribeHost = Opts.Oversubscribe;
  Cfg.CollectCounters = true;
  Cfg.CollectStallStats = Opts.Stalls;
  if (Opts.DigestInterval != 0)
    Cfg.DigestInterval = Opts.DigestInterval;
  Cfg.Faults.Seed = Opts.Seed;
  Cfg.Faults.Drops = Opts.Drops;
  Cfg.Faults.Delays = Opts.Delays;
  Cfg.Faults.BitFlips = Opts.Flips;

  sim::Machine M(Cfg);

  // Sinks must attach before load(): the boot HartStart is an event.
  std::ofstream PerfettoFile, JsonlFile;
  std::unique_ptr<obs::PerfettoSink> Perfetto;
  std::unique_ptr<obs::JsonlSink> Jsonl;
  obs::PhaseProfiler Phases;
  M.addTraceSink(&Phases);
  if (!Opts.PerfettoOut.empty()) {
    PerfettoFile.open(Opts.PerfettoOut);
    if (!PerfettoFile) {
      std::fprintf(stderr, "lbp_prof: cannot open '%s'\n",
                   Opts.PerfettoOut.c_str());
      return 2;
    }
    Perfetto = std::make_unique<obs::PerfettoSink>(PerfettoFile, Cfg);
    M.addTraceSink(Perfetto.get());
  }
  if (!Opts.JsonlOut.empty()) {
    JsonlFile.open(Opts.JsonlOut);
    if (!JsonlFile) {
      std::fprintf(stderr, "lbp_prof: cannot open '%s'\n",
                   Opts.JsonlOut.c_str());
      return 2;
    }
    Jsonl = std::make_unique<obs::JsonlSink>(JsonlFile);
    M.addTraceSink(Jsonl.get());
  }

  M.load(AR.Prog);
  sim::RunStatus St = M.run(Opts.MaxCycles);
  if (Perfetto)
    Perfetto->finish(M.cycles());

  obs::ReportOptions ROpts;
  ROpts.TopN = Opts.TopN;
  std::fputs(obs::buildReport(M, &Phases, ROpts).c_str(), stdout);

  if (Opts.Digests) {
    const sim::Trace &Tr = M.trace();
    std::printf("\ninterval digests (interval %llu, ring cap %u, "
                "%llu recorded):\n",
                static_cast<unsigned long long>(Tr.digestInterval()),
                Tr.digestRingCap(),
                static_cast<unsigned long long>(Tr.digestCount()));
    if (Tr.digestInterval() == 0)
      std::printf("  digesting disabled (interval 0)\n");
    else if (Tr.digestCount() == 0)
      std::printf("  no boundary crossed (run shorter than the "
                  "interval)\n");
    for (const sim::TraceDigest &D : Tr.digestEntries())
      std::printf("  @%-12llu 0x%016llx\n",
                  static_cast<unsigned long long>(D.Boundary),
                  static_cast<unsigned long long>(D.Hash));
  }

  if (!Opts.CountersOut.empty()) {
    std::ofstream Out(Opts.CountersOut);
    if (!Out) {
      std::fprintf(stderr, "lbp_prof: cannot open '%s'\n",
                   Opts.CountersOut.c_str());
      return 2;
    }
    // The counter snapshot, wrapped with run metadata: which engine
    // actually executed (engineNote() records fallbacks, e.g. the
    // sharded engine declining an odd topology) and the terminal
    // message — for a livelock, the per-hart wait report.
    Out << "{\n  \"meta\": {\"engine\": \"" << jsonEscape(M.engineName())
        << "\", \"engine_note\": \"" << jsonEscape(M.engineNote())
        << "\", \"status\": \"" << sim::runStatusName(St)
        << "\", \"message\": \"" << jsonEscape(M.faultMessage())
        << "\",\n           \"digest_interval\": "
        << M.trace().digestInterval()
        << ", \"digest_ring_cap\": " << M.trace().digestRingCap()
        << ", \"digest_count\": " << M.trace().digestCount();
    // Host-side epoch statistics for the sharded engine: how often the
    // adaptive windows engaged and where the wall time went (shard
    // execution vs serial merge). Host-only — never part of the
    // deterministic counter set below.
    if (std::string(M.engineName()) == "parallel") {
      const sim::Machine::EngineStats &S = M.engineStats();
      Out << ",\n           \"engine_stats\": {\"workers_used\": "
          << S.WorkersUsed << ", \"epochs_merged\": " << S.EpochsMerged
          << ", \"window_cycles\": " << S.WindowCycles
          << ", \"gated_cycles\": " << S.GatedCycles
          << ", \"skipped_cycles\": " << S.SkippedCycles
          << ", \"rebalances\": " << S.Rebalances
          << ", \"shard_seconds\": " << (double)S.ShardNanos / 1e9
          << ", \"merge_seconds\": " << (double)S.MergeNanos / 1e9
          << ", \"window_hist\": [";
      for (size_t K = 0; K != sizeof(S.WindowHist) / sizeof(uint64_t); ++K)
        Out << (K ? ", " : "") << S.WindowHist[K];
      Out << "]}";
    }
    Out << "},\n  \"counters\": " << obs::countersToJson(M) << "}\n";
  }
  return St == sim::RunStatus::Exited ? 0 : 1;
}
