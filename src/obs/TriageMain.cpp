//===- obs/TriageMain.cpp - lbp_triage driver ---------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lbp_triage command-line divergence triager
/// (docs/OBSERVABILITY.md "Divergence triage"): runs one program under
/// two configurations, bisects their interval-digest sequences to the
/// last agreeing boundary, replays both sides from a snapshot anchored
/// there, and reports the first divergent trace event as a canonical
/// lbp-triage-report-v1 JSON document.
///
///   lbp_triage [options] file.c | file.s | -
///     --workload NAME      phases | matmul | pipeline | dma |
///                          sensor-fusion (instead of a file)
///     --cores N            machine size (default 4)
///     --side-a SPEC        engine spec: reference | fast |
///     --side-b SPEC        parallel[:threads]   (defaults:
///                          side-a reference, side-b fast)
///     --seed-a N           per-side fault-plan seed (with --drops /
///     --seed-b N           --delays / --flips event counts)
///     --drops N  --delays N  --flips N
///     --perturb N          arm SimConfig::PerturbForTest at cycle N on
///                          both sides (seeded divergence for tests)
///     --digest-interval N  digest stride (default 4096)
///     --context K          events of context around the divergence
///                          (default 8)
///     --max-cycles N       cycle budget (default 20000000)
///     --oversubscribe      don't clamp worker counts to the host
///     --out FILE           write the report there instead of stdout
///
/// Exit status: 0 = no divergence, 1 = divergence reported,
/// 2 = usage/input error, 3 = triage failure (snapshot refused, ...).
///
//===----------------------------------------------------------------------===//

#include "asm/Assembler.h"
#include "frontend/Compiler.h"
#include "obs/Triage.h"
#include "support/StringUtils.h"
#include "workloads/Dma.h"
#include "workloads/MatMul.h"
#include "workloads/Phases.h"
#include "workloads/Pipeline.h"
#include "workloads/SensorFusion.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

using namespace lbp;

namespace {

struct Options {
  std::string Input;
  std::string Workload;
  std::string Out;
  std::string SideA = "reference";
  std::string SideB = "fast";
  unsigned Cores = 4;
  uint64_t SeedA = 0, SeedB = 0;
  unsigned Drops = 0, Delays = 0, Flips = 0;
  uint64_t Perturb = 0;
  uint64_t DigestInterval = 4096;
  unsigned Context = 8;
  uint64_t MaxCycles = 20000000;
  bool Oversubscribe = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: lbp_triage [options] file.c|file.s|-\n"
      "       lbp_triage [options] --workload "
      "phases|matmul|pipeline|dma|sensor-fusion\n"
      "  --cores N  --side-a SPEC  --side-b SPEC   (SPEC = reference | "
      "fast | parallel[:threads])\n"
      "  --seed-a N  --seed-b N  --drops N  --delays N  --flips N\n"
      "  --perturb N  --digest-interval N  --context K  --max-cycles N\n"
      "  --oversubscribe  --out FILE\n"
      "See docs/OBSERVABILITY.md, \"Divergence triage\".\n");
  return 2;
}

bool endsWith(const std::string &S, const char *Suffix) {
  size_t N = std::strlen(Suffix);
  return S.size() >= N && S.compare(S.size() - N, N, Suffix) == 0;
}

std::string loadAsmText(const Options &Opts, std::string &Err) {
  if (!Opts.Workload.empty()) {
    if (Opts.Workload == "phases") {
      workloads::PhasesSpec S;
      S.NumHarts = Opts.Cores * sim::HartsPerCore;
      return workloads::buildPhasesProgram(S);
    }
    if (Opts.Workload == "matmul")
      return workloads::buildMatMulProgram(workloads::MatMulSpec::paper(
          Opts.Cores * sim::HartsPerCore,
          workloads::MatMulVersion::Distributed));
    if (Opts.Workload == "pipeline")
      return workloads::buildPipelineProgram({});
    if (Opts.Workload == "dma")
      return workloads::buildDmaStreamProgram({});
    if (Opts.Workload == "sensor-fusion")
      return workloads::buildSensorFusionProgram({});
    Err = "unknown workload '" + Opts.Workload + "'";
    return std::string();
  }

  std::string Text;
  if (Opts.Input == "-") {
    std::ostringstream SS;
    SS << std::cin.rdbuf();
    Text = SS.str();
  } else {
    std::ifstream In(Opts.Input);
    if (!In) {
      Err = "cannot open '" + Opts.Input + "'";
      return std::string();
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    Text = SS.str();
  }
  if (endsWith(Opts.Input, ".s") || endsWith(Opts.Input, ".asm"))
    return Text;
  std::string FrontErr;
  std::string Asm = frontend::compileDetCToAsm(Text, FrontErr);
  if (Asm.empty())
    Err = FrontErr.empty() ? "compilation produced no code" : FrontErr;
  return Asm;
}

/// Parses an engine spec ("reference", "fast", "parallel", or
/// "parallel:N") into \p Cfg; false on a malformed spec.
bool applyEngineSpec(const std::string &Spec, sim::SimConfig &Cfg) {
  std::string Engine = Spec;
  unsigned Threads = 1;
  size_t Colon = Spec.find(':');
  if (Colon != std::string::npos) {
    Engine = Spec.substr(0, Colon);
    std::optional<int64_t> T = parseInteger(Spec.substr(Colon + 1));
    if (!T || *T < 1 || *T > 1024)
      return false;
    Threads = static_cast<unsigned>(*T);
  }
  if (Engine == "reference")
    Cfg.FastPath = false;
  else if (Engine == "fast")
    Cfg.FastPath = true;
  else if (Engine == "parallel") {
    Cfg.FastPath = true;
    if (Colon == std::string::npos)
      Threads = 4;
  } else
    return false;
  if ((Engine == "parallel") != (Threads > 1))
    return false; // "parallel:1" and "fast:4" would silently lie
  Cfg.HostThreads = Threads;
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    auto NextU64 = [&](uint64_t &Out) {
      if (I + 1 >= Argc)
        return false;
      char *End = nullptr;
      unsigned long long V = std::strtoull(Argv[++I], &End, 0);
      if (!End || *End)
        return false;
      Out = V;
      return true;
    };
    auto NextUnsigned = [&](unsigned &Out) {
      uint64_t V;
      if (!NextU64(V) || V > 1u << 20)
        return false;
      Out = static_cast<unsigned>(V);
      return true;
    };
    auto NextString = [&](std::string &Out) {
      if (I + 1 >= Argc)
        return false;
      Out = Argv[++I];
      return true;
    };
    if (A == "--workload") {
      if (!NextString(Opts.Workload))
        return usage();
    } else if (A == "--cores") {
      if (!NextUnsigned(Opts.Cores) || Opts.Cores == 0)
        return usage();
    } else if (A == "--side-a") {
      if (!NextString(Opts.SideA))
        return usage();
    } else if (A == "--side-b") {
      if (!NextString(Opts.SideB))
        return usage();
    } else if (A == "--seed-a") {
      if (!NextU64(Opts.SeedA))
        return usage();
    } else if (A == "--seed-b") {
      if (!NextU64(Opts.SeedB))
        return usage();
    } else if (A == "--drops") {
      if (!NextUnsigned(Opts.Drops))
        return usage();
    } else if (A == "--delays") {
      if (!NextUnsigned(Opts.Delays))
        return usage();
    } else if (A == "--flips") {
      if (!NextUnsigned(Opts.Flips))
        return usage();
    } else if (A == "--perturb") {
      if (!NextU64(Opts.Perturb))
        return usage();
    } else if (A == "--digest-interval") {
      if (!NextU64(Opts.DigestInterval) || Opts.DigestInterval == 0)
        return usage();
    } else if (A == "--context") {
      if (!NextUnsigned(Opts.Context))
        return usage();
    } else if (A == "--max-cycles") {
      if (!NextU64(Opts.MaxCycles))
        return usage();
    } else if (A == "--oversubscribe") {
      Opts.Oversubscribe = true;
    } else if (A == "--out") {
      if (!NextString(Opts.Out))
        return usage();
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (A.size() > 1 && A[0] == '-' && A != "-") {
      std::fprintf(stderr, "lbp_triage: unknown option '%s'\n", A.c_str());
      return usage();
    } else if (Opts.Input.empty()) {
      Opts.Input = A;
    } else {
      return usage();
    }
  }
  if (Opts.Input.empty() == Opts.Workload.empty())
    return usage(); // exactly one program source

  std::string Err;
  std::string Asm = loadAsmText(Opts, Err);
  if (Asm.empty()) {
    std::fprintf(stderr, "lbp_triage: %s\n", Err.c_str());
    return 2;
  }
  assembler::AsmResult AR = assembler::assemble(Asm);
  if (!AR.succeeded()) {
    std::fprintf(stderr, "lbp_triage: assembly failed:\n%s",
                 AR.errorText().c_str());
    return 2;
  }

  sim::SimConfig Base = sim::SimConfig::lbp(Opts.Cores);
  Base.OversubscribeHost = Opts.Oversubscribe;
  Base.DigestInterval = Opts.DigestInterval;
  Base.PerturbForTest = Opts.Perturb;
  Base.Faults.Drops = Opts.Drops;
  Base.Faults.Delays = Opts.Delays;
  Base.Faults.BitFlips = Opts.Flips;

  obs::TriageRunSpec A{Opts.SideA, Base}, B{Opts.SideB, Base};
  A.Cfg.Faults.Seed = Opts.SeedA;
  B.Cfg.Faults.Seed = Opts.SeedB;
  if (!applyEngineSpec(Opts.SideA, A.Cfg) ||
      !applyEngineSpec(Opts.SideB, B.Cfg)) {
    std::fprintf(stderr,
                 "lbp_triage: bad engine spec (want reference | fast | "
                 "parallel[:threads])\n");
    return usage();
  }

  obs::TriageOptions TOpts;
  TOpts.ContextEvents = Opts.Context;
  TOpts.MaxCycles = Opts.MaxCycles;
  obs::TriageResult R = obs::triageDivergence(AR.Prog, A, B, TOpts);

  std::string Label =
      !Opts.Workload.empty() ? Opts.Workload : Opts.Input;
  std::string Report = obs::triageReportToJson(R, Label) + "\n";
  if (!Opts.Out.empty()) {
    std::ofstream OutFile(Opts.Out);
    if (!OutFile) {
      std::fprintf(stderr, "lbp_triage: cannot open '%s'\n",
                   Opts.Out.c_str());
      return 2;
    }
    OutFile << Report;
  } else {
    std::fputs(Report.c_str(), stdout);
  }

  if (!R.Ran) {
    std::fprintf(stderr, "lbp_triage: %s\n", R.Error.c_str());
    return 3;
  }
  return R.Diverged ? 1 : 0;
}
