//===- isa/Instr.h - RV32IM + X_PAR instruction definitions ---------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The instruction set executed by LBP cores: the RV32IM base plus the
/// paper's PISC extension X_PAR (Fig. 5) — twelve instructions that fork,
/// join and send/receive values directly in hardware.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ISA_INSTR_H
#define LBP_ISA_INSTR_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace lbp {
namespace isa {

/// Every instruction an LBP core can execute.
enum class Opcode : uint8_t {
  Invalid = 0,

  // RV32I upper-immediate and control transfer.
  LUI,
  AUIPC,
  JAL,
  JALR,
  BEQ,
  BNE,
  BLT,
  BGE,
  BLTU,
  BGEU,

  // RV32I loads and stores.
  LB,
  LH,
  LW,
  LBU,
  LHU,
  SB,
  SH,
  SW,

  // RV32I register-immediate ALU.
  ADDI,
  SLTI,
  SLTIU,
  XORI,
  ORI,
  ANDI,
  SLLI,
  SRLI,
  SRAI,

  // RV32I register-register ALU.
  ADD,
  SUB,
  SLL,
  SLT,
  SLTU,
  XOR,
  SRL,
  SRA,
  OR,
  AND,

  // RV32M multiply/divide.
  MUL,
  MULH,
  MULHSU,
  MULHU,
  DIV,
  DIVU,
  REM,
  REMU,

  // Counter reads (Zicntr subset): the paper's "internal timers".
  RDCYCLE,   ///< rd = current cycle (csrrs rd, cycle, x0).
  RDINSTRET, ///< rd = instructions retired by this hart.

  // X_PAR (PISC) extension, Fig. 5 of the paper.
  P_FC,    ///< Allocate a free hart on the current core; rd = hart id.
  P_FN,    ///< Allocate a free hart on the next core; rd = hart id.
  P_SET,   ///< rd = hart-reference word naming the current hart as join.
  P_MERGE, ///< rd = join field of rs1 | successor field of rs2.
  P_SYNCM, ///< Block fetch until the hart's in-flight memory ops drain.
  P_JAL,   ///< Fork-call: start rs1 hart at pc+4; rd = 0; pc += imm.
  P_JALR,  ///< Fork-call/return: see the five ending types in DESIGN.md.
  P_SWCV,  ///< Store rs2 to the allocated hart rs1's frame at offset imm.
  P_LWCV,  ///< Load rd from the hart's own continuation frame at imm.
  P_SWRE,  ///< Send rs2 to prior hart rs1's result buffer number imm.
  P_LWRE,  ///< Receive rd from the hart's own result buffer number imm.

  NumOpcodes
};

/// Binary encoding shape of an instruction.
enum class Format : uint8_t {
  R,     ///< rd, rs1, rs2 (funct7/funct3 select the operation)
  I,     ///< rd, rs1, imm12
  S,     ///< rs1, rs2, imm12 (stores)
  B,     ///< rs1, rs2, imm13 branch offset
  U,     ///< rd, imm20 upper
  J,     ///< rd, imm21 jump offset
  XParR, ///< X_PAR register form (funct7 selects among P_FC..P_JALR)
  XParI, ///< X_PAR immediate form (P_LWCV, P_LWRE, P_JAL)
  XParS, ///< X_PAR store form (P_SWCV, P_SWRE)
};

/// Functional unit class; the simulator assigns latencies per class.
enum class ExecClass : uint8_t {
  Alu,    ///< Single-cycle integer operation.
  Mul,    ///< Multi-cycle multiply.
  Div,    ///< Multi-cycle divide/remainder.
  Load,   ///< Memory read (latency depends on the bank reached).
  Store,  ///< Memory write (fire-and-forget, acknowledged for p_syncm).
  Branch, ///< Conditional branch (resolves the suspended fetch).
  Jump,   ///< Unconditional control transfer.
  XPar,   ///< X_PAR fork/join/communication instruction.
};

/// Static properties of one opcode.
struct InstrInfo {
  std::string_view Mnemonic;
  Format Form;
  ExecClass Class;
  bool WritesRd;  ///< The instruction has a destination register field.
  bool ReadsRs1;
  bool ReadsRs2;
};

/// Returns the static properties of \p Op.
const InstrInfo &instrInfo(Opcode Op);

/// Looks an opcode up by mnemonic ("addi", "p_fc", ...).
std::optional<Opcode> opcodeByMnemonic(std::string_view Mnemonic);

/// A decoded (or not yet encoded) instruction.
struct Instr {
  Opcode Op = Opcode::Invalid;
  uint8_t Rd = 0;
  uint8_t Rs1 = 0;
  uint8_t Rs2 = 0;
  int32_t Imm = 0;

  bool isValid() const { return Op != Opcode::Invalid; }

  /// True when the instruction architecturally writes a register (has a
  /// destination field and it is not x0).
  bool writesReg() const { return instrInfo(Op).WritesRd && Rd != 0; }

  /// True for memory reads, including the continuation-value load.
  bool isLoad() const {
    ExecClass C = instrInfo(Op).Class;
    return C == ExecClass::Load || Op == Opcode::P_LWCV;
  }

  /// True for memory writes, including the continuation-value store.
  bool isStore() const {
    ExecClass C = instrInfo(Op).Class;
    return C == ExecClass::Store || Op == Opcode::P_SWCV;
  }

  /// True when the next pc is already known at decode: anything that is
  /// not a control transfer, plus direct jumps (jal, p_jal).
  bool nextPcKnownAtDecode() const {
    ExecClass C = instrInfo(Op).Class;
    if (C == ExecClass::Branch)
      return false;
    if (Op == Opcode::JALR || Op == Opcode::P_JALR)
      return false;
    return true;
  }
};

} // namespace isa
} // namespace lbp

#endif // LBP_ISA_INSTR_H
