//===- isa/Reg.h - RISC-V integer register file names ---------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Architectural register indices and ABI names for RV32I. The
/// Deterministic OpenMP runtime gives `ra` (x1) and `t0` (x5) the special
/// roles described in the paper's Section 4: `ra` carries the team join
/// address and `t0` the hart-reference word.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ISA_REG_H
#define LBP_ISA_REG_H

#include <cstdint>
#include <optional>
#include <string_view>

namespace lbp {
namespace isa {

/// Number of architectural integer registers.
constexpr unsigned NumRegs = 32;

/// Well-known ABI register indices.
enum : uint8_t {
  RegZero = 0,
  RegRA = 1,
  RegSP = 2,
  RegGP = 3,
  RegTP = 4,
  RegT0 = 5,
  RegT1 = 6,
  RegT2 = 7,
  RegS0 = 8,
  RegS1 = 9,
  RegA0 = 10,
  RegA1 = 11,
  RegA2 = 12,
  RegA3 = 13,
  RegA4 = 14,
  RegA5 = 15,
  RegA6 = 16,
  RegA7 = 17,
  RegS2 = 18,
  RegS3 = 19,
  RegS4 = 20,
  RegS5 = 21,
  RegS6 = 22,
  RegS7 = 23,
  RegS8 = 24,
  RegS9 = 25,
  RegS10 = 26,
  RegS11 = 27,
  RegT3 = 28,
  RegT4 = 29,
  RegT5 = 30,
  RegT6 = 31,
};

/// Returns the ABI name ("zero", "ra", "sp", ...) of register \p Reg.
std::string_view regName(uint8_t Reg);

/// Parses an ABI name or "xN" form. Returns std::nullopt on failure.
std::optional<uint8_t> parseRegName(std::string_view Name);

} // namespace isa
} // namespace lbp

#endif // LBP_ISA_REG_H
