//===- isa/Instr.cpp - RV32IM + X_PAR instruction definitions -------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "isa/Instr.h"
#include "support/Compiler.h"

#include <array>

using namespace lbp;
using namespace lbp::isa;

namespace {

constexpr unsigned NumOps = static_cast<unsigned>(Opcode::NumOpcodes);

constexpr InstrInfo makeInfo(std::string_view Mnemonic, Format Form,
                             ExecClass Class, bool WritesRd, bool ReadsRs1,
                             bool ReadsRs2) {
  return InstrInfo{Mnemonic, Form, Class, WritesRd, ReadsRs1, ReadsRs2};
}

constexpr std::array<InstrInfo, NumOps> buildTable() {
  std::array<InstrInfo, NumOps> T{};
  auto Set = [&T](Opcode Op, InstrInfo Info) {
    T[static_cast<unsigned>(Op)] = Info;
  };

  Set(Opcode::Invalid,
      makeInfo("<invalid>", Format::R, ExecClass::Alu, false, false, false));

  Set(Opcode::LUI, makeInfo("lui", Format::U, ExecClass::Alu, true, false,
                            false));
  Set(Opcode::AUIPC, makeInfo("auipc", Format::U, ExecClass::Alu, true, false,
                              false));
  Set(Opcode::JAL, makeInfo("jal", Format::J, ExecClass::Jump, true, false,
                            false));
  Set(Opcode::JALR, makeInfo("jalr", Format::I, ExecClass::Jump, true, true,
                             false));

  Set(Opcode::BEQ, makeInfo("beq", Format::B, ExecClass::Branch, false, true,
                            true));
  Set(Opcode::BNE, makeInfo("bne", Format::B, ExecClass::Branch, false, true,
                            true));
  Set(Opcode::BLT, makeInfo("blt", Format::B, ExecClass::Branch, false, true,
                            true));
  Set(Opcode::BGE, makeInfo("bge", Format::B, ExecClass::Branch, false, true,
                            true));
  Set(Opcode::BLTU, makeInfo("bltu", Format::B, ExecClass::Branch, false, true,
                             true));
  Set(Opcode::BGEU, makeInfo("bgeu", Format::B, ExecClass::Branch, false, true,
                             true));

  Set(Opcode::LB, makeInfo("lb", Format::I, ExecClass::Load, true, true,
                           false));
  Set(Opcode::LH, makeInfo("lh", Format::I, ExecClass::Load, true, true,
                           false));
  Set(Opcode::LW, makeInfo("lw", Format::I, ExecClass::Load, true, true,
                           false));
  Set(Opcode::LBU, makeInfo("lbu", Format::I, ExecClass::Load, true, true,
                            false));
  Set(Opcode::LHU, makeInfo("lhu", Format::I, ExecClass::Load, true, true,
                            false));
  Set(Opcode::SB, makeInfo("sb", Format::S, ExecClass::Store, false, true,
                           true));
  Set(Opcode::SH, makeInfo("sh", Format::S, ExecClass::Store, false, true,
                           true));
  Set(Opcode::SW, makeInfo("sw", Format::S, ExecClass::Store, false, true,
                           true));

  Set(Opcode::ADDI, makeInfo("addi", Format::I, ExecClass::Alu, true, true,
                             false));
  Set(Opcode::SLTI, makeInfo("slti", Format::I, ExecClass::Alu, true, true,
                             false));
  Set(Opcode::SLTIU, makeInfo("sltiu", Format::I, ExecClass::Alu, true, true,
                              false));
  Set(Opcode::XORI, makeInfo("xori", Format::I, ExecClass::Alu, true, true,
                             false));
  Set(Opcode::ORI, makeInfo("ori", Format::I, ExecClass::Alu, true, true,
                            false));
  Set(Opcode::ANDI, makeInfo("andi", Format::I, ExecClass::Alu, true, true,
                             false));
  Set(Opcode::SLLI, makeInfo("slli", Format::I, ExecClass::Alu, true, true,
                             false));
  Set(Opcode::SRLI, makeInfo("srli", Format::I, ExecClass::Alu, true, true,
                             false));
  Set(Opcode::SRAI, makeInfo("srai", Format::I, ExecClass::Alu, true, true,
                             false));

  Set(Opcode::ADD, makeInfo("add", Format::R, ExecClass::Alu, true, true,
                            true));
  Set(Opcode::SUB, makeInfo("sub", Format::R, ExecClass::Alu, true, true,
                            true));
  Set(Opcode::SLL, makeInfo("sll", Format::R, ExecClass::Alu, true, true,
                            true));
  Set(Opcode::SLT, makeInfo("slt", Format::R, ExecClass::Alu, true, true,
                            true));
  Set(Opcode::SLTU, makeInfo("sltu", Format::R, ExecClass::Alu, true, true,
                             true));
  Set(Opcode::XOR, makeInfo("xor", Format::R, ExecClass::Alu, true, true,
                            true));
  Set(Opcode::SRL, makeInfo("srl", Format::R, ExecClass::Alu, true, true,
                            true));
  Set(Opcode::SRA, makeInfo("sra", Format::R, ExecClass::Alu, true, true,
                            true));
  Set(Opcode::OR, makeInfo("or", Format::R, ExecClass::Alu, true, true,
                           true));
  Set(Opcode::AND, makeInfo("and", Format::R, ExecClass::Alu, true, true,
                            true));

  Set(Opcode::MUL, makeInfo("mul", Format::R, ExecClass::Mul, true, true,
                            true));
  Set(Opcode::MULH, makeInfo("mulh", Format::R, ExecClass::Mul, true, true,
                             true));
  Set(Opcode::MULHSU, makeInfo("mulhsu", Format::R, ExecClass::Mul, true, true,
                               true));
  Set(Opcode::MULHU, makeInfo("mulhu", Format::R, ExecClass::Mul, true, true,
                              true));
  Set(Opcode::DIV, makeInfo("div", Format::R, ExecClass::Div, true, true,
                            true));
  Set(Opcode::DIVU, makeInfo("divu", Format::R, ExecClass::Div, true, true,
                             true));
  Set(Opcode::REM, makeInfo("rem", Format::R, ExecClass::Div, true, true,
                            true));
  Set(Opcode::REMU, makeInfo("remu", Format::R, ExecClass::Div, true, true,
                             true));

  Set(Opcode::RDCYCLE, makeInfo("rdcycle", Format::I, ExecClass::Alu,
                                true, false, false));
  Set(Opcode::RDINSTRET, makeInfo("rdinstret", Format::I, ExecClass::Alu,
                                  true, false, false));

  Set(Opcode::P_FC, makeInfo("p_fc", Format::XParR, ExecClass::XPar, true,
                             false, false));
  Set(Opcode::P_FN, makeInfo("p_fn", Format::XParR, ExecClass::XPar, true,
                             false, false));
  Set(Opcode::P_SET, makeInfo("p_set", Format::XParR, ExecClass::XPar, true,
                              true, false));
  Set(Opcode::P_MERGE, makeInfo("p_merge", Format::XParR, ExecClass::XPar,
                                true, true, true));
  Set(Opcode::P_SYNCM, makeInfo("p_syncm", Format::XParR, ExecClass::XPar,
                                false, false, false));
  Set(Opcode::P_JAL, makeInfo("p_jal", Format::XParI, ExecClass::XPar, true,
                              true, false));
  Set(Opcode::P_JALR, makeInfo("p_jalr", Format::XParR, ExecClass::XPar, true,
                               true, true));
  Set(Opcode::P_SWCV, makeInfo("p_swcv", Format::XParS, ExecClass::XPar, false,
                               true, true));
  Set(Opcode::P_LWCV, makeInfo("p_lwcv", Format::XParI, ExecClass::XPar, true,
                               false, false));
  Set(Opcode::P_SWRE, makeInfo("p_swre", Format::XParS, ExecClass::XPar, false,
                               true, true));
  Set(Opcode::P_LWRE, makeInfo("p_lwre", Format::XParI, ExecClass::XPar, true,
                               false, false));
  return T;
}

constexpr std::array<InstrInfo, NumOps> InfoTable = buildTable();

} // namespace

const InstrInfo &isa::instrInfo(Opcode Op) {
  unsigned Index = static_cast<unsigned>(Op);
  assert(Index < NumOps && "opcode out of range");
  return InfoTable[Index];
}

std::optional<Opcode> isa::opcodeByMnemonic(std::string_view Mnemonic) {
  for (unsigned I = 1; I != NumOps; ++I)
    if (InfoTable[I].Mnemonic == Mnemonic)
      return static_cast<Opcode>(I);
  return std::nullopt;
}
