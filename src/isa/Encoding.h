//===- isa/Encoding.h - Binary encoding of RV32IM + X_PAR ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// 32-bit binary encoding and decoding. RV32IM uses the standard RISC-V
/// formats; X_PAR lives in the custom-0 major opcode (0x0B) with funct3
/// selecting the sub-format and funct7 the register-form operation, as
/// documented in DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ISA_ENCODING_H
#define LBP_ISA_ENCODING_H

#include "isa/Instr.h"

#include <cstdint>

namespace lbp {
namespace isa {

/// Major opcode reserved for the X_PAR extension (RISC-V custom-0).
constexpr uint32_t XParMajorOpcode = 0x0B;

/// Encodes \p I into its 32-bit machine form.
///
/// Immediates out of range for the instruction's format are a caller bug
/// (the assembler range-checks first); they trip an assertion.
uint32_t encode(const Instr &I);

/// Decodes a 32-bit word. Returns an Instr with Opcode::Invalid when the
/// word is not a recognized instruction.
Instr decode(uint32_t Word);

/// Returns true when \p Imm fits the signed 12-bit immediate field.
constexpr bool fitsImm12(int64_t Imm) { return Imm >= -2048 && Imm <= 2047; }

/// Returns true when \p Imm is a valid B-format branch offset.
constexpr bool fitsBranchOffset(int64_t Imm) {
  return Imm >= -4096 && Imm <= 4094 && (Imm & 1) == 0;
}

/// Returns true when \p Imm is a valid J-format jump offset.
constexpr bool fitsJumpOffset(int64_t Imm) {
  return Imm >= -(1 << 20) && Imm < (1 << 20) && (Imm & 1) == 0;
}

} // namespace isa
} // namespace lbp

#endif // LBP_ISA_ENCODING_H
