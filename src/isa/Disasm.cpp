//===- isa/Disasm.cpp - Instruction printing --------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "isa/Disasm.h"
#include "isa/Encoding.h"
using lbp::isa::Opcode;
#include "isa/Reg.h"
#include "support/StringUtils.h"

using namespace lbp;
using namespace lbp::isa;

std::string isa::printInstr(const Instr &I) {
  const InstrInfo &Info = instrInfo(I.Op);
  const char *M = Info.Mnemonic.data();
  auto R = [](uint8_t Reg) { return regName(Reg).data(); };

  if (I.Op == Opcode::RDCYCLE || I.Op == Opcode::RDINSTRET)
    return formatString("%s %s", M, R(I.Rd));

  switch (Info.Form) {
  case Format::R:
    return formatString("%s %s, %s, %s", M, R(I.Rd), R(I.Rs1), R(I.Rs2));
  case Format::I:
    if (Info.Class == ExecClass::Load || I.Op == Opcode::JALR)
      return formatString("%s %s, %d(%s)", M, R(I.Rd), I.Imm, R(I.Rs1));
    return formatString("%s %s, %s, %d", M, R(I.Rd), R(I.Rs1), I.Imm);
  case Format::S:
    return formatString("%s %s, %d(%s)", M, R(I.Rs2), I.Imm, R(I.Rs1));
  case Format::B:
    return formatString("%s %s, %s, %d", M, R(I.Rs1), R(I.Rs2), I.Imm);
  case Format::U:
    return formatString("%s %s, %d", M, R(I.Rd), I.Imm);
  case Format::J:
    return formatString("%s %s, %d", M, R(I.Rd), I.Imm);
  case Format::XParR:
    switch (I.Op) {
    case Opcode::P_FC:
    case Opcode::P_FN:
      return formatString("%s %s", M, R(I.Rd));
    case Opcode::P_SET:
      return formatString("%s %s, %s", M, R(I.Rd), R(I.Rs1));
    case Opcode::P_SYNCM:
      return M;
    default:
      return formatString("%s %s, %s, %s", M, R(I.Rd), R(I.Rs1), R(I.Rs2));
    }
  case Format::XParI:
    if (I.Op == Opcode::P_JAL)
      return formatString("%s %s, %s, %d", M, R(I.Rd), R(I.Rs1), I.Imm);
    return formatString("%s %s, %d", M, R(I.Rd), I.Imm);
  case Format::XParS:
    // Value first, target hart second (the Fig. 8 reading).
    return formatString("%s %s, %s, %d", M, R(I.Rs2), R(I.Rs1), I.Imm);
  }
  return "<unknown>";
}

std::string isa::disassembleWord(uint32_t Word) {
  Instr I = decode(Word);
  if (!I.isValid())
    return formatString(".word 0x%08x", Word);
  return printInstr(I);
}
