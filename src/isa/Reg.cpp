//===- isa/Reg.cpp - RISC-V integer register file names --------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "isa/Reg.h"

#include <array>
#include <cassert>

using namespace lbp;
using namespace lbp::isa;

static constexpr std::array<std::string_view, NumRegs> AbiNames = {
    "zero", "ra", "sp", "gp", "tp",  "t0",  "t1", "t2", "s0", "s1", "a0",
    "a1",   "a2", "a3", "a4", "a5",  "a6",  "a7", "s2", "s3", "s4", "s5",
    "s6",   "s7", "s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6"};

std::string_view isa::regName(uint8_t Reg) {
  assert(Reg < NumRegs && "register index out of range");
  return AbiNames[Reg];
}

std::optional<uint8_t> isa::parseRegName(std::string_view Name) {
  for (unsigned I = 0; I != NumRegs; ++I)
    if (AbiNames[I] == Name)
      return static_cast<uint8_t>(I);

  // "fp" is an alias for s0.
  if (Name == "fp")
    return RegS0;

  // "xN" numeric form.
  if (Name.size() >= 2 && Name.size() <= 3 && Name[0] == 'x') {
    unsigned Value = 0;
    for (char C : Name.substr(1)) {
      if (C < '0' || C > '9')
        return std::nullopt;
      Value = Value * 10 + static_cast<unsigned>(C - '0');
    }
    if (Value < NumRegs)
      return static_cast<uint8_t>(Value);
  }
  return std::nullopt;
}
