//===- isa/Encoding.cpp - Binary encoding of RV32IM + X_PAR ---------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "isa/Encoding.h"
#include "support/Compiler.h"

using namespace lbp;
using namespace lbp::isa;

namespace {

// Standard RISC-V major opcodes.
constexpr uint32_t OpcLui = 0x37;
constexpr uint32_t OpcAuipc = 0x17;
constexpr uint32_t OpcJal = 0x6F;
constexpr uint32_t OpcJalr = 0x67;
constexpr uint32_t OpcBranch = 0x63;
constexpr uint32_t OpcLoad = 0x03;
constexpr uint32_t OpcStore = 0x23;
constexpr uint32_t OpcOpImm = 0x13;
constexpr uint32_t OpcOp = 0x33;
constexpr uint32_t OpcSystem = 0x73;
constexpr uint32_t CsrCycle = 0xC00;
constexpr uint32_t CsrInstret = 0xC02;

// X_PAR funct3 values within the custom-0 major opcode.
constexpr uint32_t XParF3Reg = 0;  // P_FC/P_FN/P_SET/P_MERGE/P_SYNCM/P_JALR
constexpr uint32_t XParF3Swcv = 1;
constexpr uint32_t XParF3Lwcv = 2;
constexpr uint32_t XParF3Swre = 3;
constexpr uint32_t XParF3Lwre = 4;
constexpr uint32_t XParF3Jal = 5;

// X_PAR funct7 values for the register form.
constexpr uint32_t XParF7Fc = 0x00;
constexpr uint32_t XParF7Fn = 0x01;
constexpr uint32_t XParF7Set = 0x02;
constexpr uint32_t XParF7Merge = 0x03;
constexpr uint32_t XParF7Syncm = 0x04;
constexpr uint32_t XParF7Jalr = 0x05;

struct BaseFields {
  uint32_t Major;
  uint32_t Funct3;
  uint32_t Funct7;
};

/// Major/funct fields of every opcode, in a switch the compiler checks
/// for full enum coverage.
BaseFields fieldsFor(Opcode Op) {
  switch (Op) {
  case Opcode::LUI:
    return {OpcLui, 0, 0};
  case Opcode::AUIPC:
    return {OpcAuipc, 0, 0};
  case Opcode::JAL:
    return {OpcJal, 0, 0};
  case Opcode::JALR:
    return {OpcJalr, 0, 0};
  case Opcode::BEQ:
    return {OpcBranch, 0, 0};
  case Opcode::BNE:
    return {OpcBranch, 1, 0};
  case Opcode::BLT:
    return {OpcBranch, 4, 0};
  case Opcode::BGE:
    return {OpcBranch, 5, 0};
  case Opcode::BLTU:
    return {OpcBranch, 6, 0};
  case Opcode::BGEU:
    return {OpcBranch, 7, 0};
  case Opcode::LB:
    return {OpcLoad, 0, 0};
  case Opcode::LH:
    return {OpcLoad, 1, 0};
  case Opcode::LW:
    return {OpcLoad, 2, 0};
  case Opcode::LBU:
    return {OpcLoad, 4, 0};
  case Opcode::LHU:
    return {OpcLoad, 5, 0};
  case Opcode::SB:
    return {OpcStore, 0, 0};
  case Opcode::SH:
    return {OpcStore, 1, 0};
  case Opcode::SW:
    return {OpcStore, 2, 0};
  case Opcode::ADDI:
    return {OpcOpImm, 0, 0};
  case Opcode::SLTI:
    return {OpcOpImm, 2, 0};
  case Opcode::SLTIU:
    return {OpcOpImm, 3, 0};
  case Opcode::XORI:
    return {OpcOpImm, 4, 0};
  case Opcode::ORI:
    return {OpcOpImm, 6, 0};
  case Opcode::ANDI:
    return {OpcOpImm, 7, 0};
  case Opcode::SLLI:
    return {OpcOpImm, 1, 0x00};
  case Opcode::SRLI:
    return {OpcOpImm, 5, 0x00};
  case Opcode::SRAI:
    return {OpcOpImm, 5, 0x20};
  case Opcode::ADD:
    return {OpcOp, 0, 0x00};
  case Opcode::SUB:
    return {OpcOp, 0, 0x20};
  case Opcode::SLL:
    return {OpcOp, 1, 0x00};
  case Opcode::SLT:
    return {OpcOp, 2, 0x00};
  case Opcode::SLTU:
    return {OpcOp, 3, 0x00};
  case Opcode::XOR:
    return {OpcOp, 4, 0x00};
  case Opcode::SRL:
    return {OpcOp, 5, 0x00};
  case Opcode::SRA:
    return {OpcOp, 5, 0x20};
  case Opcode::OR:
    return {OpcOp, 6, 0x00};
  case Opcode::AND:
    return {OpcOp, 7, 0x00};
  case Opcode::MUL:
    return {OpcOp, 0, 0x01};
  case Opcode::MULH:
    return {OpcOp, 1, 0x01};
  case Opcode::MULHSU:
    return {OpcOp, 2, 0x01};
  case Opcode::MULHU:
    return {OpcOp, 3, 0x01};
  case Opcode::DIV:
    return {OpcOp, 4, 0x01};
  case Opcode::DIVU:
    return {OpcOp, 5, 0x01};
  case Opcode::REM:
    return {OpcOp, 6, 0x01};
  case Opcode::REMU:
    return {OpcOp, 7, 0x01};
  case Opcode::RDCYCLE:
  case Opcode::RDINSTRET:
    return {OpcSystem, 2 /*csrrs*/, 0};
  case Opcode::P_FC:
    return {XParMajorOpcode, XParF3Reg, XParF7Fc};
  case Opcode::P_FN:
    return {XParMajorOpcode, XParF3Reg, XParF7Fn};
  case Opcode::P_SET:
    return {XParMajorOpcode, XParF3Reg, XParF7Set};
  case Opcode::P_MERGE:
    return {XParMajorOpcode, XParF3Reg, XParF7Merge};
  case Opcode::P_SYNCM:
    return {XParMajorOpcode, XParF3Reg, XParF7Syncm};
  case Opcode::P_JALR:
    return {XParMajorOpcode, XParF3Reg, XParF7Jalr};
  case Opcode::P_SWCV:
    return {XParMajorOpcode, XParF3Swcv, 0};
  case Opcode::P_LWCV:
    return {XParMajorOpcode, XParF3Lwcv, 0};
  case Opcode::P_SWRE:
    return {XParMajorOpcode, XParF3Swre, 0};
  case Opcode::P_LWRE:
    return {XParMajorOpcode, XParF3Lwre, 0};
  case Opcode::P_JAL:
    return {XParMajorOpcode, XParF3Jal, 0};
  case Opcode::Invalid:
  case Opcode::NumOpcodes:
    break;
  }
  LBP_UNREACHABLE("encoding an invalid opcode");
}

uint32_t bits(uint32_t Value, unsigned Hi, unsigned Lo) {
  return (Value >> Lo) & ((1u << (Hi - Lo + 1)) - 1u);
}

int32_t signExtend(uint32_t Value, unsigned Bits) {
  uint32_t Shift = 32 - Bits;
  return static_cast<int32_t>(Value << Shift) >> Shift;
}

} // namespace

uint32_t isa::encode(const Instr &I) {
  const InstrInfo &Info = instrInfo(I.Op);
  BaseFields F = fieldsFor(I.Op);
  uint32_t Imm = static_cast<uint32_t>(I.Imm);
  uint32_t Rd = I.Rd, Rs1 = I.Rs1, Rs2 = I.Rs2;
  assert(Rd < 32 && Rs1 < 32 && Rs2 < 32 && "register index out of range");

  // Counter reads carry their CSR number, not a signed immediate.
  if (I.Op == Opcode::RDCYCLE || I.Op == Opcode::RDINSTRET) {
    uint32_t Csr = I.Op == Opcode::RDCYCLE ? CsrCycle : CsrInstret;
    return (Csr << 20) | (F.Funct3 << 12) | (Rd << 7) | F.Major;
  }

  switch (Info.Form) {
  case Format::R:
  case Format::XParR:
    return (F.Funct7 << 25) | (Rs2 << 20) | (Rs1 << 15) | (F.Funct3 << 12) |
           (Rd << 7) | F.Major;
  case Format::I:
  case Format::XParI:
    if (I.Op == Opcode::SLLI || I.Op == Opcode::SRLI || I.Op == Opcode::SRAI) {
      assert(I.Imm >= 0 && I.Imm < 32 && "shift amount out of range");
      return (F.Funct7 << 25) | (bits(Imm, 4, 0) << 20) | (Rs1 << 15) |
             (F.Funct3 << 12) | (Rd << 7) | F.Major;
    }
    assert(fitsImm12(I.Imm) && "I-format immediate out of range");
    return (bits(Imm, 11, 0) << 20) | (Rs1 << 15) | (F.Funct3 << 12) |
           (Rd << 7) | F.Major;
  case Format::S:
  case Format::XParS:
    assert(fitsImm12(I.Imm) && "S-format immediate out of range");
    return (bits(Imm, 11, 5) << 25) | (Rs2 << 20) | (Rs1 << 15) |
           (F.Funct3 << 12) | (bits(Imm, 4, 0) << 7) | F.Major;
  case Format::B:
    assert(fitsBranchOffset(I.Imm) && "branch offset out of range");
    return (bits(Imm, 12, 12) << 31) | (bits(Imm, 10, 5) << 25) | (Rs2 << 20) |
           (Rs1 << 15) | (F.Funct3 << 12) | (bits(Imm, 4, 1) << 8) |
           (bits(Imm, 11, 11) << 7) | F.Major;
  case Format::U:
    return (Imm << 12) | (Rd << 7) | F.Major;
  case Format::J:
    assert(fitsJumpOffset(I.Imm) && "jump offset out of range");
    return (bits(Imm, 20, 20) << 31) | (bits(Imm, 10, 1) << 21) |
           (bits(Imm, 11, 11) << 20) | (bits(Imm, 19, 12) << 12) | (Rd << 7) |
           F.Major;
  }
  LBP_UNREACHABLE("unknown format");
}

Instr isa::decode(uint32_t Word) {
  Instr I;
  uint32_t Major = bits(Word, 6, 0);
  uint32_t Rd = bits(Word, 11, 7);
  uint32_t Funct3 = bits(Word, 14, 12);
  uint32_t Rs1 = bits(Word, 19, 15);
  uint32_t Rs2 = bits(Word, 24, 20);
  uint32_t Funct7 = bits(Word, 31, 25);

  auto makeR = [&](Opcode Op) {
    I.Op = Op;
    I.Rd = static_cast<uint8_t>(Rd);
    I.Rs1 = static_cast<uint8_t>(Rs1);
    I.Rs2 = static_cast<uint8_t>(Rs2);
  };
  auto makeI = [&](Opcode Op) {
    I.Op = Op;
    I.Rd = static_cast<uint8_t>(Rd);
    I.Rs1 = static_cast<uint8_t>(Rs1);
    I.Imm = signExtend(bits(Word, 31, 20), 12);
  };
  auto makeS = [&](Opcode Op) {
    I.Op = Op;
    I.Rs1 = static_cast<uint8_t>(Rs1);
    I.Rs2 = static_cast<uint8_t>(Rs2);
    I.Imm = signExtend((bits(Word, 31, 25) << 5) | bits(Word, 11, 7), 12);
  };

  switch (Major) {
  case OpcLui:
  case OpcAuipc:
    I.Op = Major == OpcLui ? Opcode::LUI : Opcode::AUIPC;
    I.Rd = static_cast<uint8_t>(Rd);
    I.Imm = static_cast<int32_t>(bits(Word, 31, 12));
    return I;

  case OpcJal: {
    I.Op = Opcode::JAL;
    I.Rd = static_cast<uint8_t>(Rd);
    uint32_t Imm = (bits(Word, 31, 31) << 20) | (bits(Word, 19, 12) << 12) |
                   (bits(Word, 20, 20) << 11) | (bits(Word, 30, 21) << 1);
    I.Imm = signExtend(Imm, 21);
    return I;
  }

  case OpcJalr:
    if (Funct3 != 0)
      return Instr();
    makeI(Opcode::JALR);
    return I;

  case OpcBranch: {
    static constexpr Opcode Map[8] = {Opcode::BEQ,     Opcode::BNE,
                                      Opcode::Invalid, Opcode::Invalid,
                                      Opcode::BLT,     Opcode::BGE,
                                      Opcode::BLTU,    Opcode::BGEU};
    Opcode Op = Map[Funct3];
    if (Op == Opcode::Invalid)
      return Instr();
    I.Op = Op;
    I.Rs1 = static_cast<uint8_t>(Rs1);
    I.Rs2 = static_cast<uint8_t>(Rs2);
    uint32_t Imm = (bits(Word, 31, 31) << 12) | (bits(Word, 7, 7) << 11) |
                   (bits(Word, 30, 25) << 5) | (bits(Word, 11, 8) << 1);
    I.Imm = signExtend(Imm, 13);
    return I;
  }

  case OpcLoad: {
    static constexpr Opcode Map[8] = {Opcode::LB,      Opcode::LH,
                                      Opcode::LW,      Opcode::Invalid,
                                      Opcode::LBU,     Opcode::LHU,
                                      Opcode::Invalid, Opcode::Invalid};
    Opcode Op = Map[Funct3];
    if (Op == Opcode::Invalid)
      return Instr();
    makeI(Op);
    return I;
  }

  case OpcStore: {
    static constexpr Opcode Map[8] = {Opcode::SB,      Opcode::SH,
                                      Opcode::SW,      Opcode::Invalid,
                                      Opcode::Invalid, Opcode::Invalid,
                                      Opcode::Invalid, Opcode::Invalid};
    Opcode Op = Map[Funct3];
    if (Op == Opcode::Invalid)
      return Instr();
    makeS(Op);
    return I;
  }

  case OpcOpImm:
    switch (Funct3) {
    case 0:
      makeI(Opcode::ADDI);
      return I;
    case 1:
      if (Funct7 != 0)
        return Instr();
      makeR(Opcode::SLLI);
      I.Imm = static_cast<int32_t>(Rs2);
      I.Rs2 = 0;
      return I;
    case 2:
      makeI(Opcode::SLTI);
      return I;
    case 3:
      makeI(Opcode::SLTIU);
      return I;
    case 4:
      makeI(Opcode::XORI);
      return I;
    case 5:
      if (Funct7 != 0x00 && Funct7 != 0x20)
        return Instr();
      makeR(Funct7 == 0x20 ? Opcode::SRAI : Opcode::SRLI);
      I.Imm = static_cast<int32_t>(Rs2);
      I.Rs2 = 0;
      return I;
    case 6:
      makeI(Opcode::ORI);
      return I;
    case 7:
      makeI(Opcode::ANDI);
      return I;
    default:
      return Instr();
    }

  case OpcOp: {
    if (Funct7 == 0x01) {
      static constexpr Opcode Map[8] = {Opcode::MUL,  Opcode::MULH,
                                        Opcode::MULHSU, Opcode::MULHU,
                                        Opcode::DIV,  Opcode::DIVU,
                                        Opcode::REM,  Opcode::REMU};
      makeR(Map[Funct3]);
      return I;
    }
    if (Funct7 == 0x00) {
      static constexpr Opcode Map[8] = {Opcode::ADD, Opcode::SLL, Opcode::SLT,
                                        Opcode::SLTU, Opcode::XOR, Opcode::SRL,
                                        Opcode::OR,  Opcode::AND};
      makeR(Map[Funct3]);
      return I;
    }
    if (Funct7 == 0x20) {
      if (Funct3 == 0) {
        makeR(Opcode::SUB);
        return I;
      }
      if (Funct3 == 5) {
        makeR(Opcode::SRA);
        return I;
      }
    }
    return Instr();
  }

  case OpcSystem: {
    if (Funct3 != 2 || Rs1 != 0)
      return Instr();
    uint32_t Csr = bits(Word, 31, 20);
    if (Csr != CsrCycle && Csr != CsrInstret)
      return Instr();
    I.Op = Csr == CsrCycle ? Opcode::RDCYCLE : Opcode::RDINSTRET;
    I.Rd = static_cast<uint8_t>(Rd);
    return I;
  }

  case XParMajorOpcode:
    switch (Funct3) {
    case XParF3Reg: {
      static constexpr Opcode Map[6] = {Opcode::P_FC,    Opcode::P_FN,
                                        Opcode::P_SET,   Opcode::P_MERGE,
                                        Opcode::P_SYNCM, Opcode::P_JALR};
      if (Funct7 >= 6)
        return Instr();
      makeR(Map[Funct7]);
      return I;
    }
    case XParF3Swcv:
      makeS(Opcode::P_SWCV);
      return I;
    case XParF3Lwcv:
      makeI(Opcode::P_LWCV);
      I.Rs1 = 0;
      return I;
    case XParF3Swre:
      makeS(Opcode::P_SWRE);
      return I;
    case XParF3Lwre:
      makeI(Opcode::P_LWRE);
      I.Rs1 = 0;
      return I;
    case XParF3Jal:
      makeI(Opcode::P_JAL);
      return I;
    default:
      return Instr();
    }

  default:
    return Instr();
  }
}
