//===- isa/AddressMap.h - LBP platform memory map ---------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The byte-addressed memory map shared by the assembler, the runtime
/// code generators and the simulator (paper Fig. 13: three banks per
/// core — code, local data, shared global — plus the I/O registers of
/// Fig. 17):
///
///   0x0000_0000  code        one bank per core, all cores see the image
///   0x1000_0000  local       per-core private scratchpad (hart stacks
///                            and continuation frames); every core maps
///                            the same range onto its own bank
///   0x2000_0000  global      shared banks; bank b of size GlobalBankSize
///                            (a SimConfig parameter) is owned by core b
///   0x3000_0000  I/O         device registers (input/output controllers)
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ISA_ADDRESSMAP_H
#define LBP_ISA_ADDRESSMAP_H

#include <cstdint>

namespace lbp {
namespace isa {

constexpr uint32_t CodeBase = 0x00000000u;
constexpr uint32_t CodeLimit = 0x10000000u;

constexpr uint32_t LocalBase = 0x10000000u;
constexpr uint32_t LocalLimit = 0x20000000u;
/// Private scratchpad bytes per core (4 hart stacks + frames).
constexpr uint32_t LocalSize = 1u << 16;

constexpr uint32_t GlobalBase = 0x20000000u;
constexpr uint32_t GlobalLimit = 0x30000000u;

constexpr uint32_t IoBase = 0x30000000u;
constexpr uint32_t IoLimit = 0x40000000u;

constexpr bool isCodeAddr(uint32_t A) { return A < CodeLimit; }
constexpr bool isLocalAddr(uint32_t A) {
  return A >= LocalBase && A < LocalLimit;
}
constexpr bool isGlobalAddr(uint32_t A) {
  return A >= GlobalBase && A < GlobalLimit;
}
constexpr bool isIoAddr(uint32_t A) { return A >= IoBase && A < IoLimit; }

/// Size in bytes of one hart's stack area within the local scratchpad.
constexpr uint32_t HartStackSize = LocalSize / 4;

/// Bytes reserved at each allocation for the continuation frame the
/// forking hart fills with p_swcv (DESIGN.md: sp starts frame-sized
/// below the stack top).
constexpr uint32_t ContFrameSize = 64;

/// Top-of-stack local address for hart \p HartInCore (0..3). The first
/// word below the top is at stackTop - 4.
constexpr uint32_t hartStackTop(uint32_t HartInCore) {
  return LocalBase + (HartInCore + 1) * HartStackSize;
}

} // namespace isa
} // namespace lbp

#endif // LBP_ISA_ADDRESSMAP_H
