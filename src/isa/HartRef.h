//===- isa/HartRef.h - Hart-reference word packing -------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The hart-reference word manipulated by p_set / p_merge and consumed by
/// p_jalr / p_ret (paper Figs. 5-8). Layout (our documented
/// reconstruction, see DESIGN.md):
///
///   bit  31     valid flag (set by p_set)
///   bits 30..16 join hart id (the team head a join returns to)
///   bits 15..0  successor hart id (the next team member, from p_fc/p_fn)
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ISA_HARTREF_H
#define LBP_ISA_HARTREF_H

#include <cstdint>

namespace lbp {
namespace isa {

/// Flag bit p_set ors into the reference word.
constexpr uint32_t HartRefValidBit = 0x80000000u;

/// Result of `p_set rd, rs1` on hart \p CurrentHart: keep the successor
/// field of \p Prior, name the current hart as join target.
constexpr uint32_t hartRefSet(uint32_t Prior, uint32_t CurrentHart) {
  return (Prior & 0xFFFFu) | ((CurrentHart & 0x7FFFu) << 16) |
         HartRefValidBit;
}

/// Result of `p_merge rd, rs1, rs2`: join field of \p JoinRef, successor
/// field of \p SuccessorId.
constexpr uint32_t hartRefMerge(uint32_t JoinRef, uint32_t SuccessorId) {
  return (JoinRef & 0xFFFF0000u) | (SuccessorId & 0xFFFFu);
}

/// Join hart id carried by \p Ref.
constexpr uint32_t hartRefJoin(uint32_t Ref) { return (Ref >> 16) & 0x7FFFu; }

/// Successor hart id carried by \p Ref.
constexpr uint32_t hartRefSuccessor(uint32_t Ref) { return Ref & 0xFFFFu; }

/// True when \p Ref was produced by p_set/p_merge rather than holding a
/// sentinel such as the -1 exit code.
constexpr bool hartRefIsValid(uint32_t Ref) {
  return (Ref & HartRefValidBit) != 0 && Ref != 0xFFFFFFFFu;
}

/// Sentinel in t0 meaning "exit the process" (paper: `li t0, -1`).
constexpr uint32_t HartRefExit = 0xFFFFFFFFu;

} // namespace isa
} // namespace lbp

#endif // LBP_ISA_HARTREF_H
