//===- isa/Disasm.h - Instruction printing ---------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Textual rendering of decoded instructions, in the same syntax the
/// assembler accepts so that print -> assemble round-trips.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ISA_DISASM_H
#define LBP_ISA_DISASM_H

#include "isa/Instr.h"

#include <string>

namespace lbp {
namespace isa {

/// Renders \p I as assembly text (e.g. "addi sp, sp, -8").
std::string printInstr(const Instr &I);

/// Decodes and renders \p Word; invalid words render as ".word 0x...".
std::string disassembleWord(uint32_t Word);

} // namespace isa
} // namespace lbp

#endif // LBP_ISA_DISASM_H
