//===- sim/ParallelEngine.h - Sharded engine staging buffers ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-shard staging for the parallel engine (docs/PERFORMANCE.md,
/// "Parallel engine"). A shard worker simulates a contiguous range of
/// cores; every side effect whose *order* is globally observable — trace
/// events, schedule() calls, interconnect reservations, checker counter
/// updates, faults — is appended to the shard's StagedOp stream instead
/// of being applied, and the epoch merge replays the streams in the
/// serial loop's canonical order (delivery index for the delivery
/// phase, core id for the stage phase; program order within a unit).
/// Hart/bank state owned by the shard is mutated directly, which is
/// race-free because ownership is disjoint and the phases are separated
/// by barriers.
///
/// Epochs are adaptive and multi-cycle: when the delivery wheel and the
/// per-hart hazard scan show no cross-shard traffic due inside a
/// lookahead window, a shard runs every cycle of the window between two
/// barriers, tagging each replay unit with its cycle so the merge can
/// walk the window cycle by cycle and replay the exact serial
/// interleaving (see ParEngine::planWindow in ParallelEngine.cpp).
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SIM_PARALLELENGINE_H
#define LBP_SIM_PARALLELENGINE_H

#include "sim/Checker.h"
#include "sim/Machine.h"
#include "sim/Trace.h"

#include <cassert>
#include <cstdint>
#include <string>
#include <vector>

namespace lbp {
namespace sim {

/// Hard cap on the adaptive epoch window, in cycles. The sound bound
/// derived from the latency table (ParEngine::WindowMax) is 3 with the
/// calibrated defaults; the cap only sizes the per-offset vectors.
constexpr unsigned MaxEpochWindow = 8;

/// One deferred side effect, replayed at the epoch merge. Kept small —
/// a payload union plus an index into the shard's string table — since
/// the staging streams are the parallel engine's main memory traffic.
struct StagedOp {
  enum class K : uint8_t {
    Event,    ///< Tr.event(M.Cycle, EvK, EvA, EvB).
    Schedule, ///< schedule(At, D) — arrival precomputed (no routing).
    Mem,      ///< routeAndScheduleMem(MI): reserve path, schedule.
    Forward,  ///< routeForward(A, B) then schedule(arrival, D).
    Backward, ///< routeBackward(A, B) then schedule(arrival, D).
    Account,  ///< Checker::accountDelivered(D); when B != 0 a validation
              ///< violation (CheckK, hart A, Msg) is reported right
              ///< after, mirroring the serial onDelivered.
    Fault,    ///< Machine::fault(Msg).
    Exit,     ///< p_ret exit: Status, Halted, Exit event for hart A.
    Wake,     ///< wakeCore(A, At) — cross-shard wake.
    Retire,   ///< ++TotalRetired (paired with the Commit event).
    Stall,    ///< ++StallByCore[A * NumStallSlots + B] (stall/issued
              ///< tallies; docs/OBSERVABILITY.md).
    RobHigh,  ///< Obs.raiseRobHighWater(hart A, depth B) — max-update,
              ///< so replay order and stale worker reads are harmless.
    SlotHigh, ///< Obs.raiseSlotHighWater(hart A, depth B); same
              ///< max-update semantics as RobHigh.
    LocalSched, ///< A delivery the worker scheduled *and will consume*
                ///< inside the current multi-cycle window (local memory
                ///< response to its own shard). The worker already ran
                ///< the wheel insert locally; the merge replays only the
                ///< checker's onScheduled accounting and records the
                ///< shard in the window's canonical due order at cycle
                ///< At (ParEngine::noteLocalSched).
  };
  K Kind = K::Event;
  /// Replay stops (if Machine::Halted) only after ops carrying this
  /// flag. It marks exactly the serial loop's halt checkpoints — after
  /// onDelivered, after each delivery, after each pipeline stage —
  /// because serial code *continues* past a fault everywhere else
  /// (e.g. commitRet still frees the hart after a faulting sendToken),
  /// and the merge must reproduce that.
  bool Check = false;
  CheckKind CheckK = CheckKind::LinkParity;
  EventKind EvK = EventKind::Commit;
  uint32_t A = 0;
  uint32_t B = 0;
  uint64_t At = 0;
  /// Index into ShardBuf::Msgs for Fault / Account-violation text;
  /// UINT32_MAX when the op carries no message.
  uint32_t MsgIdx = UINT32_MAX;
  /// Payload. All members are trivially copyable; Kind selects.
  union {
    Delivery D;                     ///< Schedule/Forward/Backward/
                                    ///< Account/LocalSched.
    MemIntent MI;                   ///< Mem.
    struct {
      uint64_t A, B;
    } Ev;                           ///< Event operands (cycle is the
                                    ///< unit's merge cycle).
  };
  StagedOp() : Ev{0, 0} {}
};

/// One shard's per-epoch staging state. Reused across epochs (the op
/// and range vectors keep their capacity), so the steady state stages
/// without allocating.
struct alignas(64) ShardBuf {
  unsigned CoreBegin = 0; ///< Owned core range [CoreBegin, CoreEnd).
  unsigned CoreEnd = 0;

  /// The shard-local simulated cycle. Equal to Machine::Cycle on the
  /// per-cycle path; inside a multi-cycle window it walks the window
  /// while Machine::Cycle still holds the epoch base. Machine::now()
  /// reads it, so every latency/wake/event computation in the machine
  /// is window-correct without the hooks knowing about windows.
  uint64_t Now = 0;

  /// Multi-cycle window bounds: the window covers simulated cycles
  /// (WindowBase, WindowEnd]. WindowEnd == 0 means per-cycle mode.
  uint64_t WindowBase = 0;
  uint64_t WindowEnd = 0;

  std::vector<StagedOp> Ops;
  /// Message text referenced by StagedOp::MsgIdx.
  std::vector<std::string> Msgs;
  /// Half-open index range into Ops for one replay unit (one delivery
  /// in the delivery phase, one core in the stage phase), tagged with
  /// the simulated cycle it ran at so a multi-cycle merge can walk the
  /// window cycle by cycle.
  struct Range {
    uint32_t Begin = 0;
    uint32_t End = 0;
    uint64_t Cyc = 0;
  };
  std::vector<Range> DueRanges;  ///< Delivery units, shard-serial order.
  std::vector<Range> CoreRanges; ///< Stage units, cycle-major core order.

  /// Deliveries to apply inside the open window, indexed by offset from
  /// WindowBase (1..window length). Seeded from the global wheel at
  /// window setup; grows during the window when a core's local memory
  /// response lands back inside it (Machine::stageOrSchedule). Within
  /// one offset the order is canonical by construction: wheel-seeded
  /// entries first (their global slot order), then local insertions in
  /// shard-serial order.
  std::vector<std::vector<Delivery>> WinDue;

  // Deltas folded commutatively at the barrier (their exact in-cycle
  // order is unobservable).
  int64_t GateDelta = 0;
  int64_t SendDelta = 0;
  uint64_t JoinEpochDelta = 0;
  uint64_t LocalAcc = 0;
  uint64_t RemoteAcc = 0;
  /// Latest cycle at which this shard advanced progress (0 = none);
  /// folded into Machine::LastProgress with max, which reproduces the
  /// serial loop's "cycle of the last progress event".
  uint64_t ProgressCycle = 0;
  bool Acted = false;  ///< A core of this shard acted (fast path).
  bool Halted = false; ///< A staged fault/exit: stop this shard's work.

  uint32_t UnitBegin = 0;
  void beginUnit() { UnitBegin = static_cast<uint32_t>(Ops.size()); }
  void endDueUnit(uint64_t Cyc) {
    DueRanges.push_back({UnitBegin, static_cast<uint32_t>(Ops.size()), Cyc});
  }
  void endCoreUnit(uint64_t Cyc) {
    CoreRanges.push_back({UnitBegin, static_cast<uint32_t>(Ops.size()), Cyc});
  }
  StagedOp &push() {
    Ops.emplace_back();
    return Ops.back();
  }
  uint32_t internMsg(std::string S) {
    Msgs.push_back(std::move(S));
    return static_cast<uint32_t>(Msgs.size() - 1);
  }
  void clearEpoch() {
    Ops.clear();
    Msgs.clear();
    DueRanges.clear();
    CoreRanges.clear();
    if (WinDue.size() != MaxEpochWindow + 1)
      WinDue.resize(MaxEpochWindow + 1);
    for (std::vector<Delivery> &V : WinDue)
      V.clear();
    WindowBase = 0;
    WindowEnd = 0;
    GateDelta = 0;
    SendDelta = 0;
    JoinEpochDelta = 0;
    LocalAcc = 0;
    RemoteAcc = 0;
    ProgressCycle = 0;
    Acted = false;
    Halted = false;
  }
};

/// The staging sink of the worker currently running on this thread;
/// null on the serial engines and during merges, which is what turns
/// the Machine's side-effect hooks into direct calls.
extern thread_local ShardBuf *TlStage;

} // namespace sim
} // namespace lbp

#endif // LBP_SIM_PARALLELENGINE_H
