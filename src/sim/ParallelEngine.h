//===- sim/ParallelEngine.h - Sharded engine staging buffers ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-shard staging for the parallel engine (docs/PERFORMANCE.md,
/// "Parallel engine"). A shard worker simulates a contiguous range of
/// cores; every side effect whose *order* is globally observable — trace
/// events, schedule() calls, interconnect reservations, checker counter
/// updates, faults — is appended to the shard's StagedOp stream instead
/// of being applied, and the epoch merge replays the streams in the
/// serial loop's canonical order (delivery index for the delivery
/// phase, core id for the stage phase; program order within a unit).
/// Hart/bank state owned by the shard is mutated directly, which is
/// race-free because ownership is disjoint and the phases are separated
/// by barriers.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SIM_PARALLELENGINE_H
#define LBP_SIM_PARALLELENGINE_H

#include "sim/Checker.h"
#include "sim/Machine.h"
#include "sim/Trace.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lbp {
namespace sim {

/// One deferred side effect, replayed at the epoch merge.
struct StagedOp {
  enum class K : uint8_t {
    Event,    ///< Tr.replay(Ev).
    Schedule, ///< schedule(At, D) — arrival precomputed (no routing).
    Mem,      ///< routeAndScheduleMem(MI): reserve path, schedule.
    Forward,  ///< routeForward(A, B) then schedule(arrival, D).
    Backward, ///< routeBackward(A, B) then schedule(arrival, D).
    Account,  ///< Checker::accountDelivered(D); when B != 0 a validation
              ///< violation (CheckK, hart A, Msg) is reported right
              ///< after, mirroring the serial onDelivered.
    Fault,    ///< Machine::fault(Msg).
    Exit,     ///< p_ret exit: Status, Halted, Exit event for hart A.
    Wake,     ///< wakeCore(A, At) — cross-shard wake.
    Retire,   ///< ++TotalRetired (paired with the Commit event).
    Stall,    ///< ++StallByCore[A * NumStallSlots + B] (stall/issued
              ///< tallies; docs/OBSERVABILITY.md).
    RobHigh,  ///< Obs.raiseRobHighWater(hart A, depth B) — max-update,
              ///< so replay order and stale worker reads are harmless.
    SlotHigh, ///< Obs.raiseSlotHighWater(hart A, depth B); same
              ///< max-update semantics as RobHigh.
  };
  K Kind = K::Event;
  /// Replay stops (if Machine::Halted) only after ops carrying this
  /// flag. It marks exactly the serial loop's halt checkpoints — after
  /// onDelivered, after each delivery, after each pipeline stage —
  /// because serial code *continues* past a fault everywhere else
  /// (e.g. commitRet still frees the hart after a faulting sendToken),
  /// and the merge must reproduce that.
  bool Check = false;
  CheckKind CheckK = CheckKind::LinkParity;
  uint32_t A = 0;
  uint32_t B = 0;
  uint64_t At = 0;
  StagedEvent Ev;
  Delivery D;
  MemIntent MI;
  std::string Msg;
};

/// One shard's per-phase staging state. Reused across cycles (the op
/// and range vectors keep their capacity), so the steady state stages
/// without allocating.
struct ShardBuf {
  unsigned CoreBegin = 0; ///< Owned core range [CoreBegin, CoreEnd).
  unsigned CoreEnd = 0;

  std::vector<StagedOp> Ops;
  /// Half-open index range into Ops for one replay unit (one delivery
  /// in the delivery phase, one core in the stage phase).
  struct Range {
    uint32_t Begin = 0;
    uint32_t End = 0;
  };
  std::vector<Range> DueRanges;  ///< Delivery phase, in due-index order.
  std::vector<Range> CoreRanges; ///< Stage phase, in core order.

  // Deltas folded commutatively at the barrier (their exact in-cycle
  // order is unobservable).
  int64_t GateDelta = 0;
  uint64_t JoinEpochDelta = 0;
  uint64_t LocalAcc = 0;
  uint64_t RemoteAcc = 0;
  bool Progress = false; ///< Something advanced LastProgress this cycle.
  bool Acted = false;    ///< A core of this shard acted (fast path).
  bool Halted = false;   ///< A staged fault/exit: stop this shard's work.

  uint32_t UnitBegin = 0;
  void beginUnit() { UnitBegin = static_cast<uint32_t>(Ops.size()); }
  void endDueUnit() {
    DueRanges.push_back({UnitBegin, static_cast<uint32_t>(Ops.size())});
  }
  void endCoreUnit() {
    CoreRanges.push_back({UnitBegin, static_cast<uint32_t>(Ops.size())});
  }
  StagedOp &push() {
    Ops.emplace_back();
    return Ops.back();
  }
  void clearPhase() {
    Ops.clear();
    DueRanges.clear();
    CoreRanges.clear();
    GateDelta = 0;
    JoinEpochDelta = 0;
    LocalAcc = 0;
    RemoteAcc = 0;
    Progress = false;
    Acted = false;
    Halted = false;
  }
};

/// The staging sink of the worker currently running on this thread;
/// null on the serial engines and during merges, which is what turns
/// the Machine's side-effect hooks into direct calls.
extern thread_local ShardBuf *TlStage;

} // namespace sim
} // namespace lbp

#endif // LBP_SIM_PARALLELENGINE_H
