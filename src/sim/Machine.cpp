//===- sim/Machine.cpp - The LBP manycore machine ----------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sim/Machine.h"
#include "isa/AddressMap.h"
#include "isa/Disasm.h"
#include "isa/Encoding.h"
#include "isa/HartRef.h"
#include "isa/Reg.h"
#include "sim/Exec.h"
#include "sim/ParallelEngine.h"
#include "support/Compiler.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <thread>

using namespace lbp;
using namespace lbp::sim;
using namespace lbp::isa;

thread_local ShardBuf *lbp::sim::TlStage = nullptr;

uint64_t Machine::now() const {
  if (const ShardBuf *S = TlStage)
    return S->Now;
  return Cycle;
}

//===----------------------------------------------------------------------===//
// Side-effect hooks
//
// Every mutation whose global order is observable funnels through one of
// these. On the serial engines TlStage is null and each hook is a direct
// call, so reference and fast-path behavior are untouched by
// construction. Under a shard worker the effect is appended to the
// shard's staging buffer and replayed at the epoch merge in the serial
// loop's canonical order.
//===----------------------------------------------------------------------===//

void Machine::emit(EventKind K, uint64_t A, uint64_t B) {
  if (ShardBuf *S = TlStage) {
    // The event's cycle is not stored: replay stamps it with the unit's
    // merge cycle, which equals now() here by construction.
    StagedOp &Op = S->push();
    Op.Kind = StagedOp::K::Event;
    Op.EvK = K;
    Op.Ev = {A, B};
    return;
  }
  Tr.event(Cycle, K, A, B);
}

void Machine::stageOrSchedule(uint64_t At, const Delivery &D) {
  if (ShardBuf *S = TlStage) {
    if (S->WindowEnd != 0 && At <= S->WindowEnd) {
      // The arrival lands inside the open multi-cycle window. The
      // window planner guaranteed every in-window source targets its
      // own shard (only local memory responses get here: BankAccess on
      // the requesting core, and the RbFill/MemAck it produces), so the
      // worker can run the wheel insert locally and consume the
      // delivery itself at offset At - WindowBase. The merge replays
      // the checker's schedule accounting and records the shard in the
      // window's canonical due order via the LocalSched op.
      assert(At > S->Now && "local schedule must be in the future");
      assert(D.K == Delivery::Kind::BankAccess ||
             D.K == Delivery::Kind::RbFill || D.K == Delivery::Kind::MemAck);
      Delivery Sealed = D;
      Sealed.Parity = deliveryParity(Sealed);
      S->WinDue[At - S->WindowBase].push_back(Sealed);
      StagedOp &Op = S->push();
      Op.Kind = StagedOp::K::LocalSched;
      Op.At = At;
      Op.D = Sealed;
      return;
    }
    StagedOp &Op = S->push();
    Op.Kind = StagedOp::K::Schedule;
    Op.At = At;
    Op.D = D;
    return;
  }
  schedule(At, D);
}

void Machine::routeForwardAndSchedule(unsigned FromCore, unsigned ToCore,
                                      const Delivery &D) {
  if (ShardBuf *S = TlStage) {
    StagedOp &Op = S->push();
    Op.Kind = StagedOp::K::Forward;
    Op.A = FromCore;
    Op.B = ToCore;
    Op.D = D;
    return;
  }
  schedule(Net.routeForward(FromCore, ToCore, Cycle), D);
}

void Machine::routeBackwardAndSchedule(unsigned FromCore, unsigned ToCore,
                                       const Delivery &D) {
  if (ShardBuf *S = TlStage) {
    StagedOp &Op = S->push();
    Op.Kind = StagedOp::K::Backward;
    Op.A = FromCore;
    Op.B = ToCore;
    Op.D = D;
    return;
  }
  schedule(Net.routeBackward(FromCore, ToCore, Cycle), D);
}

void Machine::noteProgress() {
  if (ShardBuf *S = TlStage) {
    // S->Now is monotone within an epoch, so assignment keeps the max:
    // the latest shard-local cycle that made progress.
    S->ProgressCycle = S->Now;
    return;
  }
  LastProgress = Cycle;
}

void Machine::noteGate(int Delta) {
  if (ShardBuf *S = TlStage) {
    S->GateDelta += Delta;
    return;
  }
  GateCount = static_cast<uint64_t>(static_cast<int64_t>(GateCount) + Delta);
}

void Machine::noteSend(int Delta) {
  if (ShardBuf *S = TlStage) {
    S->SendDelta += Delta;
    return;
  }
  SendCount = static_cast<uint64_t>(static_cast<int64_t>(SendCount) + Delta);
}

void Machine::noteAccess(bool Local) {
  if (ShardBuf *S = TlStage) {
    ++(Local ? S->LocalAcc : S->RemoteAcc);
    return;
  }
  ++(Local ? LocalAccesses : RemoteAccesses);
}

void Machine::noteStall(unsigned CoreId, unsigned Slot) {
  if (ShardBuf *S = TlStage) {
    StagedOp &Op = S->push();
    Op.Kind = StagedOp::K::Stall;
    Op.A = CoreId;
    Op.B = Slot;
    return;
  }
  ++StallByCore[CoreId * NumStallSlots + Slot];
}

void Machine::noteRobHigh(unsigned HartId, unsigned Depth) {
  if (Depth <= Obs->robHighWater(HartId))
    return; // the merged high-water already covers this depth
  if (ShardBuf *S = TlStage) {
    StagedOp &Op = S->push();
    Op.Kind = StagedOp::K::RobHigh;
    Op.A = HartId;
    Op.B = Depth;
    return;
  }
  Obs->raiseRobHighWater(HartId, Depth);
}

void Machine::noteSlotHigh(unsigned HartId, unsigned Depth) {
  if (Depth <= Obs->slotHighWater(HartId))
    return;
  if (ShardBuf *S = TlStage) {
    StagedOp &Op = S->push();
    Op.Kind = StagedOp::K::SlotHigh;
    Op.A = HartId;
    Op.B = Depth;
    return;
  }
  Obs->raiseSlotHighWater(HartId, Depth);
}

bool Machine::runHalted() const {
  if (const ShardBuf *S = TlStage)
    if (S->Halted)
      return true;
  return Halted;
}

void Machine::wake(unsigned CoreId, uint64_t At) {
  ShardBuf *S = TlStage;
  if (S && (CoreId < S->CoreBegin || CoreId >= S->CoreEnd)) {
    StagedOp &Op = S->push();
    Op.Kind = StagedOp::K::Wake;
    Op.A = CoreId;
    Op.At = At;
    return;
  }
  wakeCore(CoreId, At);
}

//===----------------------------------------------------------------------===//
// Construction and loading
//===----------------------------------------------------------------------===//

Machine::Machine(const SimConfig &Config)
    : Cfg(Config), Mem(Config), Net(Config),
      FPlan(Config.Faults, Config.NumCores), Cores(Config.NumCores),
      Wheel(WheelSize) {
  Tr.setRecording(Cfg.RecordTrace);
  Tr.setLineCap(Cfg.TraceLineCap);
  Tr.configureDigests(Cfg.DigestInterval, Cfg.DigestRingCap);
  if (!Cfg.TraceLineFile.empty() && !Tr.setLineFile(Cfg.TraceLineFile))
    fault(formatString("cannot open trace line file '%s'",
                       Cfg.TraceLineFile.c_str()));
  StallByCore.assign(Cfg.NumCores * NumStallSlots, 0);
  CoreWake.assign(Cfg.NumCores, 0);
  if (Cfg.CollectCounters) {
    Obs = std::make_unique<obs::PerfCounters>();
    Obs->init(Cfg);
    Tr.addSink(Obs.get());
  }
  // Stall-cause classification observes every core-cycle (including the
  // idle ones), so it forces the reference scheduling loop.
  FastRun = Cfg.FastPath && !Cfg.CollectStallStats;
  // Pre-size the delivery plumbing so the steady state never allocates:
  // a few entries per wheel slot covers the common fan-in, and slots
  // that burst beyond it keep their grown capacity across laps.
  for (std::vector<Delivery> &Slot : Wheel)
    Slot.reserve(4);
  DueBuf.reserve(64);
}

void Machine::load(const assembler::Program &Prog) {
  for (const assembler::Segment &S : Prog.segments()) {
    for (uint32_t Off = 0; Off != S.Bytes.size(); ++Off) {
      uint32_t Addr = S.Base + Off;
      uint8_t Byte = S.Bytes[Off];
      if (isCodeAddr(Addr)) {
        Mem.writeCode(Addr, Byte);
      } else if (isGlobalAddr(Addr)) {
        uint32_t Rel = Addr - GlobalBase;
        uint32_t Bank = Rel >> Cfg.GlobalBankSizeLog2;
        if (Bank >= Cfg.NumCores) {
          fault(formatString("data segment byte at 0x%08x is beyond the "
                             "last global bank",
                             Addr));
          return;
        }
        Mem.writeGlobal(Bank, Rel & (Cfg.globalBankSize() - 1), Byte, 1);
      } else if (isLocalAddr(Addr)) {
        // Local-bank initialized data replicates into every core's
        // private scratchpad.
        uint32_t Rel = Addr - LocalBase;
        if (Rel >= LocalSize) {
          fault(formatString("local data byte at 0x%08x is out of range",
                             Addr));
          return;
        }
        for (unsigned C = 0; C != Cfg.NumCores; ++C)
          Mem.writeLocal(C, Rel, Byte, 1);
      } else {
        fault(formatString("cannot load bytes into the I/O region "
                           "(0x%08x)",
                           Addr));
        return;
      }
    }
  }

  // Decode the text segment once (FastPath): the code banks are
  // read-only after load — stores into the code region fault and
  // debugWriteWord asserts — so the per-fetch decode in stageDecode can
  // become a table lookup keyed by word address. Built from the same
  // fetchWord the fetch stage uses, so table and fallback agree bit for
  // bit (including the trailing partial word and data words in text,
  // which decode as invalid and fault exactly as on the slow path).
  if (FastRun) {
    uint32_t Words = (Mem.codeSize() + 3) / 4;
    DecodedText.resize(Words);
    for (uint32_t W = 0; W != Words; ++W) {
      isa::Instr I = decode(Mem.fetchWord(W * 4));
      // Bake in stageDecode's p_lwcv operand fixup (sp-relative
      // continuation-frame access).
      if (I.Op == Opcode::P_LWCV)
        I.Rs1 = RegSP;
      DecodedText[W] = I;
    }
  }

  buildWindowClass();

  // Hart 0 of core 0 boots at the entry point holding the token, with
  // ra = 0 and t0 = -1 so a bare `p_ret` in main exits (Fig. 6's
  // convention).
  Hart &H0 = Cores[0].Harts[0];
  H0.State = HartState::Running;
  H0.StateSince = Cycle;
  H0.Pc = Prog.entry();
  H0.PcValid = true;
  H0.Regs[RegSP] = hartStackTop(0);
  H0.Regs[RegT0] = HartRefExit;
  H0.Token = true;
  Tr.event(Cycle, EventKind::HartStart, 0, H0.Pc);
}

void Machine::buildWindowClass() {
  // Hazard-lookahead table for the parallel engine's adaptive window
  // planner (see Machine.h WinClass). Hazard-class instructions are the
  // gate ops (whose issue reads cross-core state the same cycle) and
  // p_swre (whose issue sends a cross-shard delivery that could arrive
  // inside a window). Invalid words count as hazardous — conservative,
  // and they only appear where the program is about to fault anyway.
  // Skipped when the parallel engine can never run (the table is only
  // read by its window planner).
  if (Cfg.HostThreads <= 1)
    return;
  uint32_t Words = (Mem.codeSize() + 3) / 4;
  auto Hazard = [](const isa::Instr &I) {
    return !I.isValid() || isGateOp(I) || I.Op == Opcode::P_SWRE;
  };
  auto At = [&](uint32_t W) { return decode(Mem.fetchWord(W * 4)); };
  WinClass.assign(Words, 0);
  for (uint32_t W = 0; W != Words; ++W) {
    isa::Instr I = At(W);
    if (Hazard(I))
      continue; // 0
    uint32_t Next;
    if (I.Op == Opcode::JAL)
      Next = (W * 4 + static_cast<uint32_t>(I.Imm)) / 4;
    else if (I.nextPcKnownAtDecode())
      Next = W + 1;
    else {
      // A branch/jalr publishes its target at issue or later; the
      // successor's decode is then too late to issue inside any window
      // this table admits.
      WinClass[W] = 2;
      continue;
    }
    bool NextBad = (I.Op == Opcode::JAL && (W * 4 + I.Imm) % 4 != 0) ||
                   Next >= Words || Hazard(At(Next));
    WinClass[W] = NextBad ? 1 : 2;
  }
}

void Machine::addDevice(uint32_t Base, uint32_t Size,
                        std::unique_ptr<IoDevice> Device) {
  assert(isIoAddr(Base) && "devices live in the I/O region");
  Devices.push_back({Base, Size, std::move(Device)});
}

IoDevice *Machine::findDevice(uint32_t Addr, uint32_t &Offset) {
  for (DeviceMapping &M : Devices) {
    if (Addr >= M.Base && Addr < M.Base + M.Size) {
      Offset = Addr - M.Base;
      return M.Dev.get();
    }
  }
  return nullptr;
}

void Machine::fault(std::string Msg) {
  if (ShardBuf *S = TlStage) {
    // A worker-observed fault: stage it (the merge decides whether it is
    // reached in canonical order) and stop this shard's work.
    StagedOp &Op = S->push();
    Op.Kind = StagedOp::K::Fault;
    Op.MsgIdx = S->internMsg(std::move(Msg));
    S->Halted = true;
    return;
  }
  if (Status == RunStatus::Fault)
    return; // keep the first message
  Status = RunStatus::Fault;
  Halted = true;
  FaultMsg = std::move(Msg);
}

//===----------------------------------------------------------------------===//
// Delivery machinery
//===----------------------------------------------------------------------===//

/// Fault-plan class bit of a delivery kind (0 = not injectable).
static uint8_t faultClassOf(Delivery::Kind K) {
  switch (K) {
  case Delivery::Kind::Token:
    return FaultClassToken;
  case Delivery::Kind::JoinMsg:
    return FaultClassJoin;
  case Delivery::Kind::StartHart:
    return FaultClassStart;
  case Delivery::Kind::RbFill:
    return FaultClassRbFill;
  case Delivery::Kind::SlotFill:
    return FaultClassSlotFill;
  default:
    return 0;
  }
}

void Machine::schedule(uint64_t At, Delivery D) {
  // The parity seals the delivery as it enters the link; anything the
  // fault plan corrupts below is caught by the checker at arrival.
  D.Parity = deliveryParity(D);

  // Token-latency measurement opens here, at the canonical send cycle
  // (schedule() only runs serially or at a merge). Delay faults below
  // lengthen the measured latency; drops leave the entry open until the
  // retried token closes it — deterministic either way.
  if (D.K == Delivery::Kind::Token && Obs)
    Obs->noteTokenSend(D.HartId, Cycle);

  if (FPlan.enabled()) {
    if (uint8_t Class = faultClassOf(D.K)) {
      if (FaultEvent *E = FPlan.match(Cycle, Class)) {
        Tr.event(Cycle, EventKind::FaultInject,
                 static_cast<uint64_t>(E->Kind), D.HartId);
        switch (E->Kind) {
        case FaultKind::DropDelivery:
          return; // the message vanishes on the link
        case FaultKind::DelayDelivery:
          At += E->Param;
          break;
        case FaultKind::BitFlip:
          D.Value ^= 1u << (E->Param & 31u);
          break;
        case FaultKind::StuckBank:
          break; // applied at the bank port, not here
        }
      }
    }
  }

  if (Cfg.EnableCheckers) {
    Ck.onScheduled(*this, At, D);
    if (Halted)
      return;
  } else {
    assert(At > Cycle && "deliveries must land in the future");
  }

  if (At - Cycle >= WheelSize) {
    // Far future: flat min-heap ordered by (At, Seq). The insertion
    // sequence number makes the pop order of equal-cycle entries match
    // their insertion order, which is what the old ordered-multimap
    // backing guaranteed.
    Overflow.push_back({At, OverflowSeq++, D});
    std::push_heap(Overflow.begin(), Overflow.end(), overflowLater);
    return;
  }
  Wheel[At % WheelSize].push_back(D);
  ++WheelCount;
}

void Machine::collectDue() {
  // The due wheel slot is swapped into a reused staging buffer (no
  // per-cycle allocation, and the slot keeps its grown capacity for the
  // next lap); due far-future deliveries append behind it, preserving
  // the wheel-before-overflow arrival order of the reference loop.
  DueBuf.clear();
  std::vector<Delivery> &Slot = Wheel[Cycle % WheelSize];
  if (!Slot.empty()) {
    WheelCount -= Slot.size();
    std::swap(DueBuf, Slot);
  }
  while (!Overflow.empty() && Overflow.front().At == Cycle) {
    DueBuf.push_back(Overflow.front().D);
    std::pop_heap(Overflow.begin(), Overflow.end(), overflowLater);
    Overflow.pop_back();
  }
}

void Machine::fillSlot(Hart &H, unsigned Slot, uint32_t Value) {
  if (!H.SlotFull[Slot]) {
    H.SlotFull[Slot] = true;
    H.SlotVal[Slot] = Value;
    return;
  }
  H.SlotBacklog.emplace_back(static_cast<uint8_t>(Slot), Value);
}

/// Result-slot values held by \p H right now: occupied slots plus the
/// backlog queued behind them.
static unsigned slotOccupancy(const Hart &H) {
  unsigned N = static_cast<unsigned>(H.SlotBacklog.size());
  for (bool Full : H.SlotFull)
    N += Full;
  return N;
}

void Machine::finishRb(Hart &H, uint32_t Value, uint64_t ReadyCycle) {
  assert(H.RbBusy && "result arrived with no result buffer allocated");
  H.RbReady = true;
  H.RbValue = Value;
  H.RbReadyCycle = ReadyCycle;
}

void Machine::deliver(const Delivery &D) {
  const uint64_t Now = now();
  // Whatever this delivery enables, the target core can act on it this
  // very cycle (deliveries precede the stages), so wake it now.
  wake(D.HartId / HartsPerCore, Now);
  if (Cfg.EnableCheckers) {
    if (ShardBuf *S = TlStage) {
      // Split checker: the global accounting is staged (its counters
      // are shared), the per-delivery validation reads only the target
      // hart — owned by this shard — and its verdict rides on the same
      // op, so the merge replays accounting + report as one unit,
      // exactly like the serial onDelivered.
      StagedOp &Op = S->push();
      Op.Kind = StagedOp::K::Account;
      Op.Check = true; // serial checks Halted right after onDelivered
      Op.D = D;
      Checker::Violation V;
      if (Ck.validateDelivered(*this, D, V)) {
        Op.B = 1; // violation attached
        Op.CheckK = V.Kind;
        Op.A = V.Hart;
        Op.MsgIdx = S->internMsg(std::move(V.Message));
        S->Halted = true;
        return; // a machine check stops the delivery from applying
      }
    } else {
      Ck.onDelivered(*this, D);
      if (Halted)
        return; // a machine check stops the delivery from applying
    }
  }
  noteProgress();
  Hart &H = hart(D.HartId);

  switch (D.K) {
  case Delivery::Kind::RbFill:
    finishRb(H, D.Value, Now);
    if (D.CountsMem) {
      assert(H.OutstandingMem > 0 && "memory op count underflow");
      --H.OutstandingMem;
    }
    return;

  case Delivery::Kind::MemAck: {
    assert(H.OutstandingMem > 0 && "memory op count underflow");
    --H.OutstandingMem;
    auto It = std::find(H.PendingStoreWords.begin(),
                        H.PendingStoreWords.end(), D.StoreWord);
    if (It != H.PendingStoreWords.end())
      H.PendingStoreWords.erase(It);
    return;
  }

  case Delivery::Kind::BankAccess: {
    uint32_t Addr = D.Addr;
    uint32_t Value = 0;
    // The event stream carries the data values too, so the fingerprint
    // distinguishes runs that differ only in computed data.
    if (isLocalAddr(Addr)) {
      uint32_t Rel = Addr - LocalBase;
      unsigned Core = D.Value; // carries the owning core for local ops
      if (D.IsWrite) {
        Mem.writeLocal(Core, Rel, D.StoreWord, D.Width);
        emit(EventKind::BankWrite, Addr, D.StoreWord);
        stageOrSchedule(D.RespCycle,
                        {Delivery::Kind::MemAck, D.HartId, 0, 0, 0,
                         Addr & ~3u, 4, 0, false, false, false});
      } else {
        Value = Mem.readLocal(Core, Rel, D.Width);
        emit(EventKind::BankRead, Addr, Value);
      }
    } else {
      assert(isGlobalAddr(Addr) && "bank access outside banked memory");
      if (Cfg.CollectMemLog)
        MemLog.push_back({Now, JoinEpoch, D.HartId, Addr, D.Width,
                          D.IsWrite, D.HartId != 0 || Hart0InTeam});
      uint32_t Rel = Addr - GlobalBase;
      unsigned Bank = Rel >> Cfg.GlobalBankSizeLog2;
      uint32_t Off = Rel & (Cfg.globalBankSize() - 1);
      if (D.IsWrite) {
        Mem.writeGlobal(Bank, Off, D.StoreWord, D.Width);
        emit(EventKind::BankWrite, Addr, D.StoreWord);
        stageOrSchedule(D.RespCycle,
                        {Delivery::Kind::MemAck, D.HartId, 0, 0, 0,
                         Addr & ~3u, 4, 0, false, false, false});
      } else {
        Value = Mem.readGlobal(Bank, Off, D.Width);
        emit(EventKind::BankRead, Addr, Value);
      }
    }
    if (!D.IsWrite) {
      if (D.SignExt) {
        unsigned Shift = 32 - 8 * D.Width;
        Value = static_cast<uint32_t>(
            static_cast<int32_t>(Value << Shift) >> Shift);
      }
      stageOrSchedule(D.RespCycle,
                      {Delivery::Kind::RbFill, D.HartId, Value, 0, 0, 0, 4,
                       0, false, false, true});
    }
    return;
  }

  case Delivery::Kind::IoAccess: {
    uint32_t Offset = 0;
    IoDevice *Dev = findDevice(D.Addr, Offset);
    if (!Dev) {
      fault(formatString("access to unmapped I/O address 0x%08x", D.Addr));
      return;
    }
    if (D.IsWrite) {
      Dev->write(Offset, D.StoreWord, Cycle);
      Tr.event(Cycle, EventKind::IoWrite, D.Addr, D.StoreWord);
      schedule(D.RespCycle, {Delivery::Kind::MemAck, D.HartId, 0, 0, 0,
                             D.Addr & ~3u, 4, 0, false, false, false});
    } else {
      uint32_t Value = Dev->read(Offset, Cycle);
      Tr.event(Cycle, EventKind::IoRead, D.Addr, Value);
      schedule(D.RespCycle, {Delivery::Kind::RbFill, D.HartId, Value, 0, 0,
                             0, 4, 0, false, false, true});
    }
    return;
  }

  case Delivery::Kind::StartHart:
    startHart(D.HartId, D.Value);
    return;

  case Delivery::Kind::Token:
    H.Token = true;
    emit(EventKind::TokenPass, D.Value, D.HartId);
    return;

  case Delivery::Kind::JoinMsg:
    if (H.State != HartState::WaitingJoin) {
      fault(formatString("join message reached hart %u which is not "
                         "waiting for a join",
                         D.HartId));
      return;
    }
    H.State = HartState::Running;
    H.StateSince = Now;
    H.Pc = D.Value;
    H.PcValid = true;
    H.NoFetchUntil = Now + 1;
    H.Token = true;
    emit(EventKind::Join, D.HartId, D.Value);
    // A join completes a team barrier: accesses on opposite sides can
    // never race, which is what the mem-log epoch encodes.
    if (ShardBuf *S = TlStage)
      ++S->JoinEpochDelta;
    else
      ++JoinEpoch;
    if (D.HartId == 0)
      Hart0InTeam = false;
    return;

  case Delivery::Kind::SlotFill:
    fillSlot(H, D.Slot, D.Value);
    if (Obs)
      noteSlotHigh(D.HartId, slotOccupancy(H));
    return;
  }
  LBP_UNREACHABLE("unknown delivery kind");
}

//===----------------------------------------------------------------------===//
// Hart lifecycle
//===----------------------------------------------------------------------===//

int Machine::allocateHart(unsigned CoreId, unsigned ByHart) {
  // Only the gate ops (p_fc/p_fn/fork-calls) allocate, so this always
  // runs in reference order — never under a shard worker.
  assert(!TlStage && "hart allocation under a shard worker");
  Core &C = Cores[CoreId];
  for (unsigned K = 0; K != HartsPerCore; ++K) {
    unsigned H = (C.AllocRR + K) % HartsPerCore;
    if (C.Harts[H].State != HartState::Free)
      continue;
    C.AllocRR = static_cast<uint8_t>((H + 1) % HartsPerCore);
    Hart &Target = C.Harts[H];
    Target.State = HartState::Reserved;
    Target.StateSince = Cycle;
    Target.Regs[RegSP] = hartStackTop(H) - ContFrameSize;
    unsigned Id = hartId(CoreId, H);
    Tr.event(Cycle, EventKind::HartReserve, Id, ByHart);
    // Hart 0 forking means it entered a parallel region (it will run as
    // the team's last member until the join returns to it).
    if (ByHart == 0)
      Hart0InTeam = true;
    return static_cast<int>(Id);
  }
  return -1;
}

void Machine::startHart(unsigned HartId, uint32_t StartPc) {
  const uint64_t Now = now();
  Hart &H = hart(HartId);
  if (H.State != HartState::Reserved) {
    fault(formatString("start message reached hart %u which is not "
                       "reserved",
                       HartId));
    return;
  }
  uint32_t Sp = H.Regs[RegSP];
  for (uint32_t &R : H.Regs)
    R = 0;
  H.Regs[RegSP] = Sp;
  H.State = HartState::Running;
  H.StateSince = Now;
  H.Pc = StartPc;
  H.PcValid = true;
  H.NoFetchUntil = Now + 1;
  noteProgress();
  emit(EventKind::HartStart, HartId, StartPc);
}

void Machine::freeHart(unsigned HartId) {
  const uint64_t Now = now();
  Hart &H = hart(HartId);
  emit(EventKind::HartEnd, HartId);
  // Gate and send ops decoded but never performed die with the hart;
  // settle their contribution to the global counts before the reset
  // wipes them.
  if (H.PendingGateOps != 0)
    noteGate(-static_cast<int>(H.PendingGateOps));
  if (H.PendingSendOps != 0)
    noteSend(-static_cast<int>(H.PendingSendOps));
  H.clearForFree();
  // A freed hart un-blocks p_fc retries on this core and p_fn retries
  // on the previous one. This core's own issue stage runs later this
  // same cycle (commit precedes issue), but the previous core's issue
  // already ran, so its retry lands next cycle — exactly when the
  // reference path would succeed.
  unsigned CoreId = HartId / HartsPerCore;
  wake(CoreId, Now + 1);
  if (CoreId != 0)
    wake(CoreId - 1, Now + 1);
}

void Machine::sendToken(unsigned FromHart, unsigned ToHart) {
  unsigned FromCore = FromHart / HartsPerCore;
  unsigned ToCore = ToHart / HartsPerCore;
  if (ToHart >= Cfg.numHarts()) {
    fault(formatString("ending signal targets nonexistent hart %u",
                       ToHart));
    return;
  }
  if (ToCore != FromCore && ToCore != FromCore + 1) {
    fault(formatString("ending signal from hart %u to hart %u does not "
                       "follow the core line",
                       FromHart, ToHart));
    return;
  }
  routeForwardAndSchedule(FromCore, ToCore,
                          {Delivery::Kind::Token,
                           static_cast<uint16_t>(ToHart), FromHart, 0, 0, 0,
                           4, 0, false, false, false});
}

//===----------------------------------------------------------------------===//
// Commit stage
//===----------------------------------------------------------------------===//

/// The five p_ret ending types (DESIGN.md). Returns true when the entry
/// is allowed to commit this cycle.
static bool retCommittable(const Hart &H, uint32_t Ra, uint32_t T0,
                           unsigned SelfId) {
  if (H.OutstandingMem != 0)
    return false; // p_ret drains the hart's memory accesses
  bool ReturnToSelf = Ra != 0 && hartRefJoin(T0) == SelfId;
  if (ReturnToSelf)
    return true;
  return H.Token;
}

void Machine::commitRet(unsigned CoreId, unsigned HartInCore, Hart &H,
                        RobEntry &E) {
  const uint64_t Now = now();
  unsigned SelfId = hartId(CoreId, HartInCore);
  uint32_t Ra = E.SrcVal[0];
  uint32_t T0 = E.SrcVal[1];

  // The ret's send (token / join / exit) happens here: it no longer
  // holds a window open.
  assert(H.PendingSendOps != 0 && "p_ret commit without a pending send");
  --H.PendingSendOps;
  noteSend(-1);

  // Type 1: exit the process.
  if (Ra == 0 && T0 == HartRefExit) {
    if (ShardBuf *S = TlStage) {
      // Status flip + Exit event replay as one op, so the merge's
      // stop-on-halt never separates them.
      StagedOp &Op = S->push();
      Op.Kind = StagedOp::K::Exit;
      Op.A = SelfId;
      S->Halted = true;
      return;
    }
    Halted = true;
    Status = RunStatus::Exited;
    Tr.event(Cycle, EventKind::Exit, SelfId);
    return;
  }

  if (!hartRefIsValid(T0)) {
    fault(formatString("p_ret on hart %u with invalid hart reference "
                       "0x%08x",
                       SelfId, T0));
    return;
  }

  unsigned Join = hartRefJoin(T0);
  unsigned Succ = hartRefSuccessor(T0);

  if (Ra == 0 && Join == SelfId) {
    // Type 2: team head — pass the token on and wait for the join.
    H.Token = false;
    sendToken(SelfId, Succ);
    H.State = HartState::WaitingJoin;
    H.StateSince = Now;
    H.PcValid = false;
    return;
  }

  if (Ra == 0) {
    // Type 3: team member — pass the token on and end.
    H.Token = false;
    sendToken(SelfId, Succ);
    freeHart(SelfId);
    return;
  }

  if (Join == SelfId) {
    // Type 4: sequential return-to-self (keeps the token if any).
    H.Pc = Ra;
    H.PcValid = true;
    H.NoFetchUntil = Now + 1;
    return;
  }

  // Type 5: last team member — carry the join address and the token back
  // to the team head over the backward line.
  unsigned JoinCore = Join / HartsPerCore;
  if (Join >= Cfg.numHarts() || JoinCore > CoreId) {
    fault(formatString("join from hart %u targets hart %u which does not "
                       "precede it",
                       SelfId, Join));
    return;
  }
  routeBackwardAndSchedule(CoreId, JoinCore,
                           {Delivery::Kind::JoinMsg,
                            static_cast<uint16_t>(Join), Ra, 0, 0, 0, 4, 0,
                            false, false, false});
  H.Token = false;
  freeHart(SelfId);
}

bool Machine::stageCommit(unsigned CoreId) {
  const uint64_t Now = now();
  Core &C = Cores[CoreId];
  for (unsigned K = 0; K != HartsPerCore; ++K) {
    unsigned HIdx = (C.CommitRR + K) % HartsPerCore;
    Hart &H = C.Harts[HIdx];
    if (H.RobCount == 0)
      continue;
    RobEntry &E = H.Rob[H.RobHead];
    if (E.State != RobEntry::St::Done || E.DoneCycle > Now)
      continue;

    bool IsRet = E.I.Op == Opcode::P_JALR && E.I.Rd == 0;
    if (IsRet &&
        !retCommittable(H, E.SrcVal[0], E.SrcVal[1],
                        hartId(CoreId, HIdx)))
      continue;

    C.CommitRR = (HIdx + 1) % HartsPerCore;
    noteProgress();
    ++H.Retired;
    if (ShardBuf *S = TlStage) {
      // TotalRetired is a fingerprint observable: staged next to its
      // Commit event so retirements canonically after a fault/exit are
      // discarded with it, exactly like the serial loop.
      StagedOp &Op = S->push();
      Op.Kind = StagedOp::K::Retire;
    } else {
      ++TotalRetired;
    }
    emit(EventKind::Commit, hartId(CoreId, HIdx), E.Pc);

    // Pop before the ret actions: freeing or parking the hart resets or
    // abandons the ROB.
    RobEntry Entry = E;
    H.RobHead = (H.RobHead + 1) % RobEntries;
    --H.RobCount;

    if (IsRet)
      commitRet(CoreId, HIdx, H, Entry);
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Writeback stage
//===----------------------------------------------------------------------===//

bool Machine::stageWriteback(unsigned CoreId) {
  const uint64_t Now = now();
  Core &C = Cores[CoreId];
  for (unsigned K = 0; K != HartsPerCore; ++K) {
    unsigned HIdx = (C.WbRR + K) % HartsPerCore;
    Hart &H = C.Harts[HIdx];
    if (!H.RbBusy || !H.RbReady || H.RbReadyCycle > Now)
      continue;

    C.WbRR = (HIdx + 1) % HartsPerCore;
    unsigned Idx = static_cast<unsigned>(H.RbEntry);
    RobEntry &E = H.Rob[Idx];
    uint8_t Rd = E.I.Rd;
    if (Rd != 0) {
      // Only the register's newest renamer updates the architectural
      // file; an older writer completing late (e.g. a load that was
      // stalled before issue) must not clobber a younger result.
      if (H.LastRenameSeq[Rd] == E.RenameSeq)
        H.Regs[Rd] = H.RbValue;
      if (H.RegProducer[Rd] == static_cast<int8_t>(Idx))
        H.RegProducer[Rd] = -1;
    }

    // Wake every entry of this hart captured on this producer.
    for (unsigned P = 0; P != H.RobCount; ++P) {
      RobEntry &W = H.Rob[H.robIndex(P)];
      if (W.State != RobEntry::St::Waiting)
        continue;
      for (unsigned S = 0; S != 2; ++S) {
        if (!W.SrcReady[S] &&
            W.SrcProducer[S] == static_cast<int8_t>(Idx)) {
          W.SrcReady[S] = true;
          W.SrcVal[S] = H.RbValue;
          W.SrcProducer[S] = -1;
        }
      }
    }

    E.State = RobEntry::St::Done;
    E.DoneCycle = Now;
    H.RbBusy = false;
    H.RbReady = false;
    H.RbEntry = -1;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Issue stage
//===----------------------------------------------------------------------===//

static unsigned latencyFor(const SimConfig &Cfg, ExecClass Class) {
  switch (Class) {
  case ExecClass::Mul:
    return Cfg.MulLatency;
  case ExecClass::Div:
    return Cfg.DivLatency;
  default:
    return Cfg.AluLatency;
  }
}

bool Machine::loadBlockedByStore(const Hart &H, uint32_t Addr) const {
  uint32_t Word = Addr & ~3u;
  return std::find(H.PendingStoreWords.begin(), H.PendingStoreWords.end(),
                   Word) != H.PendingStoreWords.end();
}

/// Checks the conditions that gate issuing \p E beyond source readiness.
static bool extraIssueConditions(const Machine &, const Hart &H,
                                 const RobEntry &E) {
  const isa::Instr &I = E.I;
  // Loads always occupy the result buffer, even toward x0.
  bool NeedsRb =
      I.writesReg() || I.isLoad() || I.Op == Opcode::P_LWRE;
  if (NeedsRb && H.RbBusy)
    return false;
  if (I.Op == Opcode::P_LWRE) {
    uint32_t Slot = static_cast<uint32_t>(I.Imm);
    if (Slot >= ResultSlots)
      return true; // let tryIssue report the fault
    return H.SlotFull[Slot];
  }
  return true;
}

bool Machine::stageIssue(unsigned CoreId) {
  Core &C = Cores[CoreId];
  for (unsigned K = 0; K != HartsPerCore; ++K) {
    unsigned HIdx = (C.IssueRR + K) % HartsPerCore;
    Hart &H = C.Harts[HIdx];
    if (H.RobCount == 0)
      continue;
    for (unsigned P = 0; P != H.RobCount; ++P) {
      unsigned Idx = H.robIndex(P);
      RobEntry &E = H.Rob[Idx];
      if (E.State != RobEntry::St::Waiting || !E.SrcReady[0] ||
          !E.SrcReady[1])
        continue;
      if (!extraIssueConditions(*this, H, E))
        continue;
      bool WasGate = isGateOp(E.I);
      if (tryIssue(CoreId, HIdx, Idx)) {
        if (WasGate) {
          assert(H.PendingGateOps != 0 && "gate count underflow");
          --H.PendingGateOps;
          noteGate(-1);
        }
        C.IssueRR = (HIdx + 1) % HartsPerCore;
        if (Cfg.CollectStallStats)
          noteStall(CoreId, IssuedSlot);
        return true;
      }
      if (runHalted())
        return false;
    }
  }
  if (Cfg.CollectStallStats)
    classifyIssueStall(CoreId);
  return false;
}

void Machine::classifyIssueStall(unsigned CoreId) {
  // Rank causes by how close the work was to issuing.
  Core &C = Cores[CoreId];
  bool SawInFlight = false, SawWaitingOps = false, SawRbBusy = false,
       SawSlotEmpty = false;
  for (Hart &H : C.Harts) {
    for (unsigned P = 0; P != H.RobCount; ++P) {
      RobEntry &E = H.Rob[H.robIndex(P)];
      if (E.State != RobEntry::St::Waiting) {
        SawInFlight = true;
        continue;
      }
      if (!E.SrcReady[0] || !E.SrcReady[1]) {
        SawWaitingOps = true;
        continue;
      }
      // Sources ready but blocked: result buffer or an empty slot.
      if (E.I.Op == Opcode::P_LWRE && !H.RbBusy)
        SawSlotEmpty = true;
      else
        SawRbBusy = true;
    }
  }
  StallCause Cause = StallCause::NoActiveWork;
  if (SawRbBusy)
    Cause = StallCause::RbBusy;
  else if (SawSlotEmpty)
    Cause = StallCause::SlotEmpty;
  else if (SawWaitingOps)
    Cause = StallCause::OperandsNotReady;
  else if (SawInFlight)
    Cause = StallCause::WaitingResponse;
  noteStall(CoreId, static_cast<unsigned>(Cause));
}

bool Machine::tryIssue(unsigned CoreId, unsigned HartInCore,
                       unsigned RobIdx) {
  const uint64_t Now = now();
  Hart &H = Cores[CoreId].Harts[HartInCore];
  RobEntry &E = H.Rob[RobIdx];
  const isa::Instr &I = E.I;
  const InstrInfo &Info = instrInfo(I.Op);
  uint32_t A = E.SrcVal[0];
  uint32_t B = E.SrcVal[1];

  auto GrabRb = [&](uint32_t Value, uint64_t ReadyAt) {
    assert(!H.RbBusy && "double result-buffer allocation");
    H.RbBusy = true;
    H.RbReady = true;
    H.RbValue = Value;
    H.RbReadyCycle = ReadyAt;
    H.RbEntry = static_cast<int>(RobIdx);
    E.State = RobEntry::St::Issued;
  };
  auto FinishNoResult = [&](unsigned Lat) {
    E.State = RobEntry::St::Done;
    E.DoneCycle = Now + Lat;
  };

  switch (Info.Class) {
  case ExecClass::Alu:
  case ExecClass::Mul:
  case ExecClass::Div: {
    // Counter reads are handled here: they sample machine state the
    // pure evaluator cannot see. Reading at issue keeps them
    // deterministic (issue timing is deterministic).
    if (I.Op == Opcode::RDCYCLE) {
      GrabRb(static_cast<uint32_t>(Now), Now + Cfg.AluLatency);
      return true;
    }
    if (I.Op == Opcode::RDINSTRET) {
      GrabRb(static_cast<uint32_t>(H.Retired), Now + Cfg.AluLatency);
      return true;
    }
    uint32_t Value = evalOp(I, A, B, E.Pc);
    if (I.writesReg())
      GrabRb(Value, Now + latencyFor(Cfg, Info.Class));
    else
      FinishNoResult(latencyFor(Cfg, Info.Class));
    return true;
  }

  case ExecClass::Branch: {
    bool Taken = evalBranch(I.Op, A, B);
    H.Pc = E.Pc + (Taken ? static_cast<uint32_t>(I.Imm) : 4u);
    H.PcValid = true;
    H.NoFetchUntil = Now + Cfg.AluLatency;
    FinishNoResult(Cfg.AluLatency);
    return true;
  }

  case ExecClass::Jump: {
    if (I.Op == Opcode::JALR) {
      H.Pc = (A + static_cast<uint32_t>(I.Imm)) & ~1u;
      H.PcValid = true;
      H.NoFetchUntil = Now + Cfg.AluLatency;
    }
    // JAL resolved its target at decode; both produce the link value.
    if (I.writesReg())
      GrabRb(E.Pc + 4, Now + Cfg.AluLatency);
    else
      FinishNoResult(Cfg.AluLatency);
    return true;
  }

  case ExecClass::Load:
  case ExecClass::Store:
    return issueMemOp(CoreId, HartInCore, H, E, RobIdx);

  case ExecClass::XPar:
    if (I.Op == Opcode::P_SWCV || I.Op == Opcode::P_LWCV)
      return issueMemOp(CoreId, HartInCore, H, E, RobIdx);
    return issueXPar(CoreId, HartInCore, H, E, RobIdx);
  }
  LBP_UNREACHABLE("unknown exec class");
}

bool Machine::issueMemOp(unsigned CoreId, unsigned HartInCore, Hart &H,
                         RobEntry &E, unsigned RobIdx) {
  const isa::Instr &I = E.I;
  unsigned SelfId = hartId(CoreId, HartInCore);
  const uint64_t Now = now();

  // Decode access shape.
  unsigned Width = 4;
  bool SignExt = false;
  bool IsWrite = false;
  switch (I.Op) {
  case Opcode::LB:
    Width = 1;
    SignExt = true;
    break;
  case Opcode::LH:
    Width = 2;
    SignExt = true;
    break;
  case Opcode::LBU:
    Width = 1;
    break;
  case Opcode::LHU:
    Width = 2;
    break;
  case Opcode::LW:
  case Opcode::P_LWCV:
    break;
  case Opcode::SB:
    Width = 1;
    IsWrite = true;
    break;
  case Opcode::SH:
    Width = 2;
    IsWrite = true;
    break;
  case Opcode::SW:
  case Opcode::P_SWCV:
    IsWrite = true;
    break;
  default:
    LBP_UNREACHABLE("not a memory op");
  }

  // Effective address and (for writes) data.
  uint32_t Addr;
  uint32_t Data = E.SrcVal[1];
  unsigned LocalCore = CoreId; // whose local bank a local address means
  if (I.Op == Opcode::P_SWCV) {
    uint32_t Target = hartRefSuccessor(E.SrcVal[0]);
    if (Target >= Cfg.numHarts()) {
      fault(formatString("p_swcv on hart %u targets nonexistent hart %u",
                         SelfId, Target));
      return false;
    }
    unsigned TargetCore = Target / HartsPerCore;
    if (TargetCore != CoreId && TargetCore != CoreId + 1) {
      fault(formatString("p_swcv on hart %u targets hart %u beyond the "
                         "next core",
                         SelfId, Target));
      return false;
    }
    Hart &T = hart(Target);
    if (T.State == HartState::Free) {
      fault(formatString("p_swcv on hart %u targets free hart %u", SelfId,
                         Target));
      return false;
    }
    Addr = T.Regs[RegSP] + static_cast<uint32_t>(I.Imm);
    LocalCore = TargetCore;
  } else {
    Addr = E.SrcVal[0] + static_cast<uint32_t>(I.Imm);
  }

  if (!IsWrite && loadBlockedByStore(H, Addr))
    return false; // conservative same-word RAW stall

  if (Addr % Width != 0) {
    fault(formatString("misaligned %u-byte access at 0x%08x (hart %u, pc "
                       "0x%x)",
                       Width, Addr, SelfId, E.Pc));
    return false;
  }

  // Classify the destination. Local accesses have a closed-form timing;
  // global and I/O accesses need a path reservation, which is deferred
  // behind a MemIntent: the hart-visible transition below never depends
  // on the route outcome (routing decides only when the delivery
  // fires), so a shard worker can apply the hart effects now and leave
  // the reservation to the canonical-order merge.
  uint64_t AccessCycle = 0, RespCycle = 0;
  bool IsIo = false;
  bool IsLocal = false;
  unsigned Bank = 0;
  if (isLocalAddr(Addr)) {
    // p_swcv to the next core rides the forward link; it is a gate op,
    // so this reservation always runs in reference order.
    assert((I.Op != Opcode::P_SWCV || !TlStage) &&
           "p_swcv issued under a shard worker");
    uint64_t Extra =
        I.Op == Opcode::P_SWCV && LocalCore != CoreId
            ? Net.routeForward(CoreId, LocalCore, Now) - Now
            : 0;
    AccessCycle = Now + Extra + 1;
    RespCycle = Now + Extra + Cfg.LocalMemLatency;
    IsLocal = true;
    noteAccess(true);
  } else if (isGlobalAddr(Addr)) {
    uint32_t Rel = Addr - GlobalBase;
    Bank = Rel >> Cfg.GlobalBankSizeLog2;
    if (Bank >= Cfg.NumCores) {
      fault(formatString("access at 0x%08x is beyond the last global bank "
                         "(hart %u, pc 0x%x)",
                         Addr, SelfId, E.Pc));
      return false;
    }
    noteAccess(Bank == CoreId);
  } else if (isIoAddr(Addr)) {
    IsIo = true;
  } else if (isCodeAddr(Addr) && !IsWrite) {
    // Constant data in the code bank: served locally, read immediately
    // (the image is immutable).
    uint32_t Value = Mem.fetchWord(Addr & ~3u);
    Value >>= 8 * (Addr & 3u);
    if (Width < 4)
      Value &= (1u << (8 * Width)) - 1u;
    if (SignExt) {
      unsigned Shift = 32 - 8 * Width;
      Value =
          static_cast<uint32_t>(static_cast<int32_t>(Value << Shift) >>
                                Shift);
    }
    H.RbBusy = true;
    H.RbReady = true;
    H.RbValue = Value;
    H.RbReadyCycle = Now + Cfg.LocalMemLatency;
    H.RbEntry = static_cast<int>(RobIdx);
    E.State = RobEntry::St::Issued;
    return true;
  } else {
    fault(formatString("store into the code bank at 0x%08x (hart %u, pc "
                       "0x%x)",
                       Addr, SelfId, E.Pc));
    return false;
  }

  // Hart-side effects (identical for every destination class).
  if (IsWrite) {
    ++H.OutstandingMem;
    H.PendingStoreWords.push_back(Addr & ~3u);
    E.State = RobEntry::St::Done;
    E.DoneCycle = Now + Cfg.AluLatency;
  } else {
    H.RbBusy = true;
    H.RbReady = false;
    H.RbEntry = static_cast<int>(RobIdx);
    ++H.OutstandingMem;
    E.State = RobEntry::St::Issued;
  }

  if (IsLocal) {
    RespCycle = std::max(RespCycle, AccessCycle + 1);
    Delivery D;
    D.K = Delivery::Kind::BankAccess;
    D.HartId = static_cast<uint16_t>(SelfId);
    D.Addr = Addr;
    D.Width = static_cast<uint8_t>(Width);
    D.SignExt = SignExt;
    D.IsWrite = IsWrite;
    D.RespCycle = RespCycle;
    D.Value = LocalCore; // owning core for local-bank accesses
    if (IsWrite)
      D.StoreWord = Data;
    stageOrSchedule(AccessCycle, D);
    return true;
  }

  MemIntent In;
  In.Addr = Addr;
  In.Data = Data;
  In.SelfId = static_cast<uint16_t>(SelfId);
  In.CoreId = static_cast<uint16_t>(CoreId);
  In.Bank = static_cast<uint16_t>(Bank);
  In.Width = static_cast<uint8_t>(Width);
  In.SignExt = SignExt;
  In.IsWrite = IsWrite;
  In.IsIo = IsIo;
  if (ShardBuf *S = TlStage) {
    StagedOp &Op = S->push();
    Op.Kind = StagedOp::K::Mem;
    Op.MI = In;
  } else {
    routeAndScheduleMem(In);
  }
  return true;
}

void Machine::routeAndScheduleMem(const MemIntent &In) {
  uint64_t AccessCycle, RespCycle;
  if (In.IsIo) {
    Interconnect::GlobalPath Path = Net.routeIo(Cycle);
    AccessCycle = Path.BankCycle;
    RespCycle = Path.ResponseCycle;
  } else {
    Interconnect::GlobalPath Path =
        Net.routeGlobal(In.CoreId, In.Bank, Cycle);
    AccessCycle = Path.BankCycle;
    RespCycle = Path.ResponseCycle;
    if (FPlan.enabled()) {
      bool NewlyFired = false;
      uint64_t Stall =
          FPlan.stuckBankStall(In.Bank, AccessCycle, NewlyFired);
      if (NewlyFired)
        Tr.event(Cycle, EventKind::FaultInject,
                 static_cast<uint64_t>(FaultKind::StuckBank), In.Bank);
      AccessCycle += Stall;
      RespCycle += Stall;
    }
  }
  RespCycle = std::max(RespCycle, AccessCycle + 1);

  Delivery D;
  D.K = In.IsIo ? Delivery::Kind::IoAccess : Delivery::Kind::BankAccess;
  D.HartId = In.SelfId;
  D.Addr = In.Addr;
  D.Width = In.Width;
  D.SignExt = In.SignExt;
  D.IsWrite = In.IsWrite;
  D.RespCycle = RespCycle;
  D.Value = In.CoreId; // == the owning core only for local accesses
  if (In.IsWrite)
    D.StoreWord = In.Data;
  schedule(AccessCycle, D);
}

bool Machine::issueXPar(unsigned CoreId, unsigned HartInCore, Hart &H,
                        RobEntry &E, unsigned RobIdx) {
  const isa::Instr &I = E.I;
  unsigned SelfId = hartId(CoreId, HartInCore);
  const uint64_t Now = now();
  uint32_t A = E.SrcVal[0];
  uint32_t B = E.SrcVal[1];

  auto GrabRb = [&](uint32_t Value, uint64_t ReadyAt) {
    assert(!H.RbBusy && "double result-buffer allocation");
    H.RbBusy = true;
    H.RbReady = true;
    H.RbValue = Value;
    H.RbReadyCycle = ReadyAt;
    H.RbEntry = static_cast<int>(RobIdx);
    E.State = RobEntry::St::Issued;
  };

  switch (I.Op) {
  case Opcode::P_SET:
    GrabRb(hartRefSet(A, SelfId), Now + Cfg.AluLatency);
    return true;

  case Opcode::P_MERGE:
    GrabRb(hartRefMerge(A, B), Now + Cfg.AluLatency);
    return true;

  case Opcode::P_SYNCM:
    // The fetch block was raised at decode; the instruction itself is a
    // one-cycle no-op in the window.
    E.State = RobEntry::St::Done;
    E.DoneCycle = Now + Cfg.AluLatency;
    return true;

  case Opcode::P_FC: {
    int Target = allocateHart(CoreId, SelfId);
    if (Target < 0)
      return false; // retry when a hart frees up
    GrabRb(static_cast<uint32_t>(Target), Now + Cfg.AluLatency);
    return true;
  }

  case Opcode::P_FN: {
    if (CoreId + 1 >= Cfg.NumCores) {
      fault(formatString("p_fn on the last core (hart %u): teams cannot "
                         "extend past the end of the line",
                         SelfId));
      return false;
    }
    int Target = allocateHart(CoreId + 1, SelfId);
    if (Target < 0)
      return false;
    GrabRb(static_cast<uint32_t>(Target),
           Now + 1 + 2 * Cfg.ForwardLinkLatency);
    return true;
  }

  case Opcode::P_JAL:
  case Opcode::P_JALR: {
    bool IsRet = I.Rd == 0 && I.Op == Opcode::P_JALR;
    if (IsRet) {
      // Ending protocol: values captured, decision at commit.
      E.State = RobEntry::St::Done;
      E.DoneCycle = Now + Cfg.AluLatency;
      return true;
    }
    // Fork-calls read the target hart's state (possibly on the next
    // core); they are gate ops, so this always runs in reference order.
    assert(!TlStage && "fork-call issued under a shard worker");
    uint32_t Target = hartRefSuccessor(A);
    if (Target >= Cfg.numHarts()) {
      fault(formatString("fork-call on hart %u targets nonexistent hart "
                         "%u",
                         SelfId, Target));
      return false;
    }
    unsigned TargetCore = Target / HartsPerCore;
    if (TargetCore != CoreId && TargetCore != CoreId + 1) {
      fault(formatString("fork-call on hart %u targets hart %u beyond the "
                         "next core",
                         SelfId, Target));
      return false;
    }
    if (hart(Target).State != HartState::Reserved) {
      fault(formatString("fork-call on hart %u targets hart %u which is "
                         "not reserved",
                         SelfId, Target));
      return false;
    }
    uint64_t Arrive = Net.routeForward(CoreId, TargetCore, Now);
    schedule(Arrive,
             {Delivery::Kind::StartHart, static_cast<uint16_t>(Target),
              E.Pc + 4, 0, 0, 0, 4, 0, false, false, false});
    // Local control transfer: p_jal jumped at decode, p_jalr jumps now.
    if (I.Op == Opcode::P_JALR) {
      H.Pc = B;
      H.PcValid = true;
      H.NoFetchUntil = Now + Cfg.AluLatency;
    }
    GrabRb(0, Now + Cfg.AluLatency); // "clear rd"
    return true;
  }

  case Opcode::P_SWRE: {
    uint32_t Target = A & 0xFFFFu;
    uint32_t Slot = static_cast<uint32_t>(I.Imm);
    if (Target >= Cfg.numHarts() || Slot >= ResultSlots) {
      fault(formatString("p_swre on hart %u with bad target %u or slot "
                         "%u",
                         SelfId, Target, Slot));
      return false;
    }
    unsigned TargetCore = Target / HartsPerCore;
    if (TargetCore > CoreId) {
      fault(formatString("p_swre on hart %u targets hart %u: results may "
                         "only travel to prior harts",
                         SelfId, Target));
      return false;
    }
    Delivery D;
    D.K = Delivery::Kind::SlotFill;
    D.HartId = static_cast<uint16_t>(Target);
    D.Value = B;
    D.Slot = static_cast<uint8_t>(Slot);
    routeBackwardAndSchedule(CoreId, TargetCore, D);
    // The send happened: this p_swre no longer blocks multi-cycle
    // windows (decode armed the counter, see stageDecode).
    assert(H.PendingSendOps != 0 && "p_swre issue without a pending send");
    --H.PendingSendOps;
    noteSend(-1);
    E.State = RobEntry::St::Done;
    E.DoneCycle = Now + Cfg.AluLatency;
    return true;
  }

  case Opcode::P_LWRE: {
    uint32_t Slot = static_cast<uint32_t>(I.Imm);
    if (Slot >= ResultSlots) {
      fault(formatString("p_lwre on hart %u with bad slot %u", SelfId,
                         Slot));
      return false;
    }
    assert(H.SlotFull[Slot] && "issue condition checked slot fullness");
    uint32_t Value = H.SlotVal[Slot];
    H.SlotFull[Slot] = false;
    // Refill from the backlog in arrival order.
    for (auto It = H.SlotBacklog.begin(); It != H.SlotBacklog.end(); ++It) {
      if (It->first == Slot) {
        H.SlotFull[Slot] = true;
        H.SlotVal[Slot] = It->second;
        H.SlotBacklog.erase(It);
        break;
      }
    }
    GrabRb(Value, Now + Cfg.AluLatency);
    return true;
  }

  default:
    LBP_UNREACHABLE("not an X_PAR opcode");
  }
}

//===----------------------------------------------------------------------===//
// Decode/rename stage
//===----------------------------------------------------------------------===//

bool Machine::stageDecode(unsigned CoreId) {
  Core &C = Cores[CoreId];
  for (unsigned K = 0; K != HartsPerCore; ++K) {
    unsigned HIdx = (C.DecodeRR + K) % HartsPerCore;
    Hart &H = C.Harts[HIdx];
    if (!H.IbFull || H.RobCount == RobEntries)
      continue;

    C.DecodeRR = (HIdx + 1) % HartsPerCore;
    // Fast path: the text segment was decoded once at load (with the
    // p_lwcv fixup baked in); fall back to live decode for unaligned
    // pcs (p_jalr only clears bit 0) and fetches beyond the table.
    isa::Instr I;
    uint32_t WordIdx = H.IbPc >> 2;
    if (FastRun && (H.IbPc & 3u) == 0 && WordIdx < DecodedText.size()) {
      I = DecodedText[WordIdx];
    } else {
      I = decode(H.IbWord);
      // p_lwcv addresses the hart's own continuation frame through sp.
      if (I.Op == Opcode::P_LWCV)
        I.Rs1 = RegSP;
    }
    if (!I.isValid()) {
      fault(formatString("invalid instruction 0x%08x at pc 0x%x (hart "
                         "%u)",
                         H.IbWord, H.IbPc, hartId(CoreId, HIdx)));
      return true;
    }

    unsigned Idx = H.robIndex(H.RobCount);
    RobEntry &E = H.Rob[Idx];
    E = RobEntry();
    E.I = I;
    E.Pc = H.IbPc;

    const InstrInfo &Info = instrInfo(I.Op);
    bool Reads[2] = {Info.ReadsRs1 || I.Op == Opcode::P_LWCV,
                     Info.ReadsRs2};
    uint8_t SrcReg[2] = {I.Rs1, I.Rs2};
    for (unsigned S = 0; S != 2; ++S) {
      if (!Reads[S] || SrcReg[S] == 0) {
        E.SrcReady[S] = true;
        E.SrcVal[S] = 0;
        continue;
      }
      int8_t Producer = H.RegProducer[SrcReg[S]];
      if (Producer < 0) {
        E.SrcReady[S] = true;
        E.SrcVal[S] = H.Regs[SrcReg[S]];
      } else {
        E.SrcReady[S] = false;
        E.SrcProducer[S] = Producer;
      }
    }

    if (I.writesReg()) {
      H.RegProducer[I.Rd] = static_cast<int8_t>(Idx);
      E.RenameSeq = H.NextRenameSeq++;
      H.LastRenameSeq[I.Rd] = E.RenameSeq;
    }

    ++H.RobCount;
    if (Obs)
      noteRobHigh(hartId(CoreId, HIdx), H.RobCount);
    H.IbFull = false;

    // Decoding a cross-core-sensitive op arms the serial gate for the
    // next cycle: issue precedes decode in the stage order, so this op
    // cannot issue before the gate is merged at the coming barrier.
    if (isGateOp(I)) {
      ++H.PendingGateOps;
      noteGate(+1);
    }

    // Send-class ops (p_swre, p_ret) arm the multi-cycle window block
    // the same way: until the send is performed (p_swre issue / p_ret
    // commit) a cross-shard arrival could land inside a window, so the
    // parallel engine stays on per-cycle epochs while any is in flight.
    if (I.Op == Opcode::P_SWRE ||
        (I.Op == Opcode::P_JALR && I.Rd == 0)) {
      ++H.PendingSendOps;
      noteSend(+1);
    }

    // Resolve the next pc when it is known at decode.
    if (I.Op == Opcode::JAL || I.Op == Opcode::P_JAL) {
      H.Pc = E.Pc + static_cast<uint32_t>(I.Imm);
      H.PcValid = true;
    } else if (I.nextPcKnownAtDecode()) {
      H.Pc = E.Pc + 4;
      H.PcValid = true;
    }

    if (I.Op == Opcode::P_SYNCM)
      H.SyncmWait = true;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Fetch stage
//===----------------------------------------------------------------------===//

bool Machine::stageFetch(unsigned CoreId) {
  Core &C = Cores[CoreId];
  const uint64_t Now = now();

  // Clear satisfied p_syncm fetch blocks first. Not an "action" for the
  // fast path: the enabling edge (OutstandingMem hitting zero) is a
  // delivery, which woke this core for the same cycle, and the clear
  // runs before the eligibility scan below re-evaluates the hart.
  for (Hart &H : C.Harts)
    if (H.SyncmWait && H.OutstandingMem == 0)
      H.SyncmWait = false;

  for (unsigned K = 0; K != HartsPerCore; ++K) {
    unsigned HIdx = (C.FetchRR + K) % HartsPerCore;
    Hart &H = C.Harts[HIdx];
    if (H.State != HartState::Running || !H.PcValid || H.IbFull ||
        H.SyncmWait || H.NoFetchUntil > Now)
      continue;
    if (!isCodeAddr(H.Pc)) {
      fault(formatString("fetch outside the code bank at 0x%08x (hart "
                         "%u)",
                         H.Pc, hartId(CoreId, HIdx)));
      return true;
    }

    C.FetchRR = (HIdx + 1) % HartsPerCore;
    H.IbWord = Mem.fetchWord(H.Pc);
    H.IbPc = H.Pc;
    H.IbFull = true;
    // The hart is suspended after every fetch until decode (or the
    // execute of a control transfer) publishes the next pc.
    H.PcValid = false;
    return true;
  }
  return false;
}

//===----------------------------------------------------------------------===//
// Cycle loop
//===----------------------------------------------------------------------===//

uint64_t Machine::coreWakeCycle(const Core &C, uint64_t Now) const {
  // The only stage conditions that depend on the cycle number are the
  // three timers below; everything else a stage tests is machine state
  // that can only change through a stage action or a delivery. So with
  // no action this cycle, the earliest of these timers is the earliest
  // cycle at which the core could possibly act again on its own.
  uint64_t Wake = UINT64_MAX;
  for (const Hart &H : C.Harts) {
    if (H.State == HartState::Free)
      continue;
    if (H.State == HartState::Running && H.NoFetchUntil > Now &&
        H.NoFetchUntil < Wake)
      Wake = H.NoFetchUntil; // fetch unblocks
    if (H.RbBusy && H.RbReady && H.RbReadyCycle > Now &&
        H.RbReadyCycle < Wake)
      Wake = H.RbReadyCycle; // writeback becomes possible
    for (unsigned P = 0; P != H.RobCount; ++P) {
      const RobEntry &E = H.Rob[H.robIndex(P)];
      if (E.State == RobEntry::St::Done && E.DoneCycle > Now &&
          E.DoneCycle < Wake)
        Wake = E.DoneCycle; // commit becomes possible
    }
  }
  return Wake;
}

uint64_t Machine::nextDeliveryCycle() const {
  uint64_t Next = Overflow.empty() ? UINT64_MAX : Overflow.front().At;
  if (WheelCount != 0) {
    // Every wheel entry lands within WheelSize cycles of now, so the
    // first populated slot on the walk forward is the earliest one.
    for (uint64_t K = 1; K <= WheelSize; ++K) {
      if (!Wheel[(Cycle + K) % WheelSize].empty()) {
        if (Cycle + K < Next)
          Next = Cycle + K;
        break;
      }
    }
  }
  return Next;
}

bool Machine::cycleStagesSerial() {
  bool Acted = false;
  for (unsigned CoreId = 0; CoreId != Cfg.NumCores; ++CoreId) {
    Core &C = Cores[CoreId];
    // Active-set scheduling: a sleeping core provably cannot act
    // before its WakeAt (deliveries and hart frees pull it forward),
    // and the round-robin pointers only advance on actions, so
    // skipping its stages is invisible to the event stream.
    if (FastRun && Cycle < CoreWake[CoreId])
      continue;
    bool CoreActed = stageCommit(CoreId);
    if (Halted)
      break;
    CoreActed |= stageWriteback(CoreId);
    CoreActed |= stageIssue(CoreId);
    if (Halted)
      break;
    CoreActed |= stageDecode(CoreId);
    if (Halted)
      break;
    CoreActed |= stageFetch(CoreId);
    if (Halted)
      break;
    if (FastRun) {
      if (CoreActed) {
        CoreWake[CoreId] = Cycle; // stay hot: more work next cycle
        Acted = true;
      } else {
        // Later same-cycle wakeCore calls still pull this forward.
        CoreWake[CoreId] = coreWakeCycle(C, Cycle);
      }
    }
  }
  return Acted;
}

unsigned Machine::effectiveHostThreads() const {
  if (Cfg.OversubscribeHost)
    return Cfg.HostThreads;
  unsigned Hw = std::thread::hardware_concurrency();
  if (Hw == 0) // unknown host: trust the configuration
    return Cfg.HostThreads;
  return std::min(Cfg.HostThreads, Hw);
}

RunStatus Machine::run(uint64_t MaxCycles) {
  if (Status == RunStatus::Fault)
    return Status;
  if (parallelEligible()) {
    Engine = EngineKind::Parallel;
    armPerturb();
    RunStatus S = runParallel(MaxCycles);
    Tr.flushDigests(Cycle);
    return S;
  }
  Engine = FastRun ? EngineKind::FastPath : EngineKind::Reference;
  armPerturb();
  if (Cfg.HostThreads > 1 && EngineNote.empty()) {
    if (Cfg.CollectMemLog)
      EngineNote =
          "HostThreads > 1 ignored: SimConfig::CollectMemLog forces the "
          "single-threaded reference access order; clear CollectMemLog "
          "to re-enable the parallel engine";
    else
      EngineNote = formatString(
          "HostThreads = %u clamped to the host's hardware concurrency "
          "(%u); set SimConfig::OversubscribeHost to force real shard "
          "workers anyway",
          Cfg.HostThreads, std::thread::hardware_concurrency());
  }
  Status = RunStatus::MaxCycles;
  Halted = false;
  uint64_t Budget = MaxCycles;
  const bool Sweeps = Cfg.EnableCheckers && Cfg.CheckInterval != 0;

  while (!Halted && Budget-- != 0) {
    ++Cycle;

    // Deliveries first: responses, starts and tokens scheduled for this
    // cycle are visible to the stages below.
    collectDue();
    for (const Delivery &D : DueBuf) {
      deliver(D);
      if (Halted)
        break;
    }
    if (Halted)
      break;

    bool Acted = cycleStagesSerial();
    if (Halted)
      break;

    if (Sweeps && Cycle % Cfg.CheckInterval == 0) {
      Ck.sweep(*this);
      if (Halted)
        break;
    }

    if (Cycle - LastProgress > Cfg.ProgressGuard) {
      Status = RunStatus::Livelock;
      FaultMsg = livelockReport();
      break;
    }

    // Quiescence fast-forward: with every core asleep the machine is
    // frozen until the earliest of (a) a core's own timer, (b) the next
    // pending delivery, (c) the cycle the livelock guard would fire,
    // (d) the first checker sweep that could report on the frozen
    // state. Jump to just before that cycle; the skipped cycles are
    // exactly the ones on which the reference loop does nothing
    // observable, so the event stream is bit-identical.
    if (FastRun && !Acted) {
      uint64_t Target = nextDeliveryCycle();
      for (uint64_t W : CoreWake)
        if (W < Target)
          Target = W;
      uint64_t LivelockAt = Cfg.ProgressGuard >= UINT64_MAX - LastProgress
                                ? UINT64_MAX
                                : LastProgress + Cfg.ProgressGuard + 1;
      if (LivelockAt < Target)
        Target = LivelockAt;
      if (Sweeps) {
        uint64_t Concern = Ck.nextSweepConcern(*this);
        if (Concern < Target)
          Target = Concern;
      }
      if (Target > Cycle + 1) {
        // Land on Target itself next iteration; each skipped cycle
        // consumes budget so a MaxCycles exit reports the same cycles()
        // as the reference loop.
        uint64_t Span = Target - Cycle - 1;
        if (Span > Budget)
          Span = Budget;
        if (Span != 0) {
          if (Sweeps)
            Ck.onSkip(Cycle, Cycle + Span, Cfg.CheckInterval);
          Cycle += Span;
          Budget -= Span;
        }
      }
    }
  }
  Tr.flushDigests(Cycle);
  return Status;
}

/// Arms the PerturbForTest divergence seed for this run. The payload
/// encodes the *host-side* identity of the run — selected engine and
/// requested HostThreads — so two runs that the determinism guarantee
/// would make bit-identical diverge at exactly Cfg.PerturbForTest.
/// Requested (not effective) threads, so parallel t1 x t4 diverges even
/// on a host whose concurrency clamps both to the same worker count.
void Machine::armPerturb() {
  if (Cfg.PerturbForTest == 0 || Tr.perturbFired())
    return;
  uint64_t Payload = (static_cast<uint64_t>(Engine) << 16) |
                     (Cfg.HostThreads & 0xffff);
  Tr.setPerturb(Cfg.PerturbForTest, Payload);
}

//===----------------------------------------------------------------------===//
// Livelock diagnosis
//===----------------------------------------------------------------------===//

unsigned Machine::pendingDeliveriesFor(unsigned HartId) const {
  unsigned N = 0;
  for (const std::vector<Delivery> &Slot : Wheel)
    for (const Delivery &D : Slot)
      N += D.HartId == HartId;
  for (const OverflowEntry &Entry : Overflow)
    N += Entry.D.HartId == HartId;
  return N;
}

static const char *hartStateName(HartState S) {
  switch (S) {
  case HartState::Free:
    return "free";
  case HartState::Reserved:
    return "reserved";
  case HartState::Running:
    return "running";
  case HartState::WaitingJoin:
    return "waiting-join";
  }
  return "?";
}

/// Best single-line explanation of what a stalled hart is waiting for.
static std::string hartWaitCause(const Hart &H, unsigned Pending) {
  if (H.State == HartState::Reserved)
    return Pending ? "start message still in flight"
                   : "reserved but no start message pending (lost?)";
  if (H.State == HartState::WaitingJoin)
    return Pending ? "join message still in flight"
                   : "waiting for a join that is not in flight";
  if (H.SyncmWait)
    return formatString("p_syncm draining %u outstanding accesses",
                        H.OutstandingMem);
  if (H.RobCount != 0) {
    const RobEntry &E = H.Rob[H.RobHead];
    std::string Head = isa::printInstr(E.I);
    if (E.I.Op == Opcode::P_LWRE && E.State == RobEntry::St::Waiting)
      return formatString("`%s` waiting for result slot %d to fill",
                          Head.c_str(), static_cast<int>(E.I.Imm));
    bool IsRet = E.I.Op == Opcode::P_JALR && E.I.Rd == 0;
    if (IsRet && E.State == RobEntry::St::Done && !H.Token)
      return formatString("`%s` waiting for the ending-signal token",
                          Head.c_str());
    if (H.RbBusy && !H.RbReady)
      return formatString("`%s` awaiting a memory/link response",
                          Head.c_str());
    return formatString("`%s` (%s) at the head of the rob", Head.c_str(),
                        E.State == RobEntry::St::Waiting ? "waiting"
                        : E.State == RobEntry::St::Issued ? "issued"
                                                          : "done");
  }
  if (!H.PcValid && !H.IbFull)
    return "no pc and nothing buffered";
  return "idle front end";
}

std::string Machine::livelockReport() const {
  std::string Report = formatString(
      "livelock: no commit, delivery or hart start since cycle %llu "
      "(guard %llu cycles). Hart wait report:",
      static_cast<unsigned long long>(LastProgress),
      static_cast<unsigned long long>(Cfg.ProgressGuard));
  unsigned Stuck = 0;
  for (unsigned HartId = 0; HartId != Cfg.numHarts(); ++HartId) {
    const Hart &H = hart(HartId);
    if (H.State == HartState::Free)
      continue;
    ++Stuck;
    unsigned Pending = pendingDeliveriesFor(HartId);
    Report += formatString(
        "\n  hart %u (core %u): state=%s pc=0x%x rob=%u outMem=%u "
        "token=%d pending-deliveries=%u — %s",
        HartId, HartId / HartsPerCore, hartStateName(H.State), H.Pc,
        H.RobCount, H.OutstandingMem, static_cast<int>(H.Token), Pending,
        hartWaitCause(H, Pending).c_str());
  }
  if (Stuck == 0)
    Report += "\n  (no hart is live; every delivery has drained)";
  return Report;
}

//===----------------------------------------------------------------------===//
// Observation helpers
//===----------------------------------------------------------------------===//

uint64_t Machine::retiredOnHart(unsigned HartId) const {
  return hart(HartId).Retired;
}

uint64_t Machine::stallCycles(StallCause C) const {
  uint64_t N = 0;
  for (unsigned Core = 0; Core != Cfg.NumCores; ++Core)
    N += stallCycles(C, Core);
  return N;
}

uint64_t Machine::issuedCoreCycles() const {
  uint64_t N = 0;
  for (unsigned Core = 0; Core != Cfg.NumCores; ++Core)
    N += issuedCoreCycles(Core);
  return N;
}

const char *Machine::engineName() const {
  switch (Engine) {
  case EngineKind::Reference:
    return "reference";
  case EngineKind::FastPath:
    return "fastpath";
  case EngineKind::Parallel:
    return "parallel";
  }
  return "?";
}

const char *lbp::sim::stallCauseName(Machine::StallCause C) {
  switch (C) {
  case Machine::StallCause::NoActiveWork:
    return "no-active-work";
  case Machine::StallCause::WaitingResponse:
    return "waiting-response";
  case Machine::StallCause::RbBusy:
    return "rb-busy";
  case Machine::StallCause::SlotEmpty:
    return "slot-empty";
  case Machine::StallCause::OperandsNotReady:
    return "operands-not-ready";
  case Machine::StallCause::NumCauses:
    break;
  }
  return "?";
}

uint32_t Machine::debugReadWord(uint32_t Addr, unsigned Core) const {
  if (isCodeAddr(Addr))
    return Mem.fetchWord(Addr);
  if (isLocalAddr(Addr))
    return Mem.readLocal(Core, Addr - LocalBase, 4);
  if (isGlobalAddr(Addr)) {
    uint32_t Rel = Addr - GlobalBase;
    return Mem.readGlobal(Rel >> Cfg.GlobalBankSizeLog2,
                          Rel & (Cfg.globalBankSize() - 1), 4);
  }
  // Mirrors debugWriteWord: silently answering 0 for an unmapped
  // address hides test bugs (I/O registers are only reachable through
  // the simulated timing path).
  assert(false && "debug reads reach only code and data memory");
  return 0;
}

void Machine::debugWriteWord(uint32_t Addr, uint32_t Value, unsigned Core) {
  if (isLocalAddr(Addr)) {
    Mem.writeLocal(Core, Addr - LocalBase, Value, 4);
    return;
  }
  if (isGlobalAddr(Addr)) {
    uint32_t Rel = Addr - GlobalBase;
    Mem.writeGlobal(Rel >> Cfg.GlobalBankSizeLog2,
                    Rel & (Cfg.globalBankSize() - 1), Value, 4);
    return;
  }
  assert(false && "debug writes reach only data memory");
}

uint32_t Machine::debugReadReg(unsigned HartId, unsigned Reg) const {
  assert(Reg < NumRegs && "register index out of range");
  return hart(HartId).Regs[Reg];
}

HartState Machine::hartState(unsigned HartId) const {
  return hart(HartId).State;
}
