//===- sim/Checker.cpp - Machine-check invariant checkers -------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sim/Checker.h"
#include "sim/Machine.h"
#include "support/StringUtils.h"

using namespace lbp;
using namespace lbp::sim;

const char *lbp::sim::checkKindName(CheckKind K) {
  switch (K) {
  case CheckKind::LinkParity:
    return "link-parity";
  case CheckKind::TokenLost:
    return "token-lost";
  case CheckKind::TokenDuplicated:
    return "token-duplicated";
  case CheckKind::BadDeliveryTarget:
    return "bad-delivery-target";
  case CheckKind::RbFillWithoutBuffer:
    return "rb-fill-without-buffer";
  case CheckKind::MemAckUnderflow:
    return "mem-ack-underflow";
  case CheckKind::SlotBacklogOverflow:
    return "slot-backlog-overflow";
  case CheckKind::HartLeak:
    return "hart-leak";
  case CheckKind::WheelImbalance:
    return "wheel-imbalance";
  case CheckKind::SchedulePast:
    return "schedule-past";
  }
  return "?";
}

std::string MachineCheck::format() const {
  return formatString("machine check [%s] at cycle %llu (core %u, hart "
                      "%u): %s",
                      checkKindName(Kind),
                      static_cast<unsigned long long>(Cycle), Core, Hart,
                      Message.c_str());
}

static const char *deliveryKindName(Delivery::Kind K) {
  switch (K) {
  case Delivery::Kind::RbFill:
    return "rb-fill";
  case Delivery::Kind::MemAck:
    return "mem-ack";
  case Delivery::Kind::BankAccess:
    return "bank-access";
  case Delivery::Kind::IoAccess:
    return "io-access";
  case Delivery::Kind::StartHart:
    return "start-hart";
  case Delivery::Kind::Token:
    return "token";
  case Delivery::Kind::JoinMsg:
    return "join";
  case Delivery::Kind::SlotFill:
    return "slot-fill";
  }
  return "?";
}

uint8_t lbp::sim::deliveryParity(const Delivery &D) {
  // Every field except the parity byte itself, folded through a small
  // multiplicative mix so any single-bit flip changes the result.
  uint64_t W = static_cast<uint8_t>(D.K);
  W = W * 131 + D.HartId;
  W = W * 131 + D.Value;
  W = W * 131 + D.Addr;
  W = W * 131 + D.RespCycle;
  W = W * 131 + D.StoreWord;
  W = W * 131 + D.Width;
  W = W * 131 + D.Slot;
  W = W * 131 + (static_cast<unsigned>(D.IsWrite) |
                 static_cast<unsigned>(D.SignExt) << 1 |
                 static_cast<unsigned>(D.CountsMem) << 2);
  W ^= W >> 32;
  W ^= W >> 16;
  W ^= W >> 8;
  return static_cast<uint8_t>(W);
}

void Checker::report(Machine &M, CheckKind Kind, unsigned HartId,
                     std::string Message) {
  MachineCheck C;
  C.Cycle = M.Cycle;
  C.Core = HartId / HartsPerCore;
  C.Hart = HartId;
  C.Kind = Kind;
  C.Message = std::move(Message);
  M.Tr.event(M.Cycle, EventKind::MachineCheck,
             static_cast<uint64_t>(Kind), HartId);
  M.fault(C.format());
  Checks.push_back(std::move(C));
}

void Checker::onScheduled(Machine &M, uint64_t At, const Delivery &D) {
  if (At <= M.Cycle) {
    report(M, CheckKind::SchedulePast, D.HartId,
           formatString("delivery scheduled for cycle %llu which is not "
                        "in the future",
                        static_cast<unsigned long long>(At)));
    return;
  }
  if (D.HartId >= M.Cfg.numHarts()) {
    report(M, CheckKind::BadDeliveryTarget, 0,
           formatString("delivery targets nonexistent hart %u",
                        static_cast<unsigned>(D.HartId)));
    return;
  }
  ++PendingDeliveries;
  if (D.K == Delivery::Kind::Token || D.K == Delivery::Kind::JoinMsg)
    ++TokensInFlight;
}

void Checker::accountDelivered(Machine &M, const Delivery &D) {
  // Accounting first: even a faulting delivery left its link.
  if (PendingDeliveries == 0)
    report(M, CheckKind::WheelImbalance, D.HartId,
           "a delivery arrived that was never scheduled");
  else
    --PendingDeliveries;
  if (D.K == Delivery::Kind::Token || D.K == Delivery::Kind::JoinMsg) {
    if (TokensInFlight)
      --TokensInFlight;
  }
}

bool Checker::validateDelivered(const Machine &M, const Delivery &D,
                                Violation &V) const {
  V.Hart = D.HartId;

  // The link parity computed at injection must survive the flight.
  if (deliveryParity(D) != D.Parity) {
    V.Kind = CheckKind::LinkParity;
    V.Message = formatString("payload of a %s delivery (value 0x%08x, "
                             "addr 0x%08x) was corrupted in flight",
                             deliveryKindName(D.K), D.Value, D.Addr);
    return true;
  }

  const Hart &H = M.hart(D.HartId);
  switch (D.K) {
  case Delivery::Kind::Token:
    if (H.State == HartState::Free) {
      V.Kind = CheckKind::BadDeliveryTarget;
      V.Message = "ending-signal token reached a free hart";
      return true;
    }
    if (H.Token) {
      V.Kind = CheckKind::TokenDuplicated;
      V.Message = "hart received the ending-signal token twice";
      return true;
    }
    return false;

  case Delivery::Kind::RbFill:
    if (!H.RbBusy) {
      V.Kind = CheckKind::RbFillWithoutBuffer;
      V.Message = "result arrived with no result buffer allocated";
      return true;
    }
    if (D.CountsMem && H.OutstandingMem == 0) {
      V.Kind = CheckKind::MemAckUnderflow;
      V.Message = "memory result arrived with no outstanding access";
      return true;
    }
    return false;

  case Delivery::Kind::MemAck:
    if (H.OutstandingMem == 0) {
      V.Kind = CheckKind::MemAckUnderflow;
      V.Message =
          "store acknowledgement arrived with no outstanding access";
      return true;
    }
    return false;

  case Delivery::Kind::SlotFill:
    if (H.State == HartState::Free) {
      V.Kind = CheckKind::BadDeliveryTarget;
      V.Message =
          formatString("remote result for slot %u reached a free hart",
                       static_cast<unsigned>(D.Slot));
      return true;
    }
    if (H.SlotBacklog.size() > 8 * M.Cfg.numHarts()) {
      V.Kind = CheckKind::SlotBacklogOverflow;
      V.Message = formatString("slot backlog reached %zu entries",
                               H.SlotBacklog.size());
      return true;
    }
    return false;

  default:
    // StartHart/JoinMsg state mismatches and Bank/IoAccess address
    // errors already fault with precise messages in the delivery path.
    return false;
  }
}

void Checker::onDelivered(Machine &M, const Delivery &D) {
  accountDelivered(M, D);
  Violation V;
  if (validateDelivered(M, D, V))
    report(M, V.Kind, V.Hart, std::move(V.Message));
}

void Checker::sweep(Machine &M) {
  ++SweepCount;

  // Ending-token conservation: while the machine is live, exactly one
  // token exists — held by a hart or in flight on a link. A dropped
  // token or join message shows up here as a lost token; a protocol bug
  // that forges one shows up as a duplicate.
  uint64_t Held = 0;
  bool Live = TokensInFlight != 0;
  for (const Core &C : M.Cores) {
    for (const Hart &H : C.Harts) {
      Held += H.Token;
      if (H.State != HartState::Free)
        Live = true;
    }
  }
  if (Live) {
    uint64_t Total = Held + TokensInFlight;
    if (Total == 0) {
      report(M, CheckKind::TokenLost, 0,
             "the ending-signal token vanished (no hart holds it and "
             "none is in flight)");
      return;
    }
    if (Total > 1) {
      report(M, CheckKind::TokenDuplicated, 0,
             formatString("%llu ending-signal tokens exist (%llu held, "
                          "%llu in flight)",
                          static_cast<unsigned long long>(Total),
                          static_cast<unsigned long long>(Held),
                          static_cast<unsigned long long>(TokensInFlight)));
      return;
    }
  }

  // Allocation-leak detection: a hart must leave Reserved once its start
  // message arrives; the reserve-to-start gap is bounded by the forking
  // hart's code path, so a Reserved hart older than half the progress
  // guard means the start was lost.
  uint64_t LeakThreshold = M.Cfg.ProgressGuard / 2;
  if (LeakThreshold < M.Cfg.CheckInterval)
    LeakThreshold = M.Cfg.CheckInterval;
  for (unsigned HartId = 0; HartId != M.Cfg.numHarts(); ++HartId) {
    const Hart &H = M.hart(HartId);
    if (H.State == HartState::Reserved &&
        M.Cycle - H.StateSince > LeakThreshold) {
      report(M, CheckKind::HartLeak, HartId,
             formatString("hart reserved at cycle %llu never received "
                          "its start message",
                          static_cast<unsigned long long>(H.StateSince)));
      return;
    }
  }

  // Delivery-wheel audit (amortized: a full wheel recount every 64
  // sweeps): the incremental pending counter must match the wheel plus
  // the far-future overflow map.
  if (SweepCount % 64 == 0) {
    uint64_t OnWheel = M.Overflow.size();
    for (const std::vector<Delivery> &Slot : M.Wheel)
      OnWheel += Slot.size();
    if (OnWheel != PendingDeliveries)
      report(M, CheckKind::WheelImbalance, 0,
             formatString("delivery wheel holds %llu entries but %llu "
                          "are accounted",
                          static_cast<unsigned long long>(OnWheel),
                          static_cast<unsigned long long>(
                              PendingDeliveries)));
  }
}

uint64_t Checker::nextSweepConcern(const Machine &M) const {
  const uint64_t I = M.Cfg.CheckInterval;
  // The next sweep boundary strictly after the current cycle.
  const uint64_t Next = (M.Cycle / I + 1) * I;
  uint64_t Concern = UINT64_MAX;

  // Token conservation: Held and TokensInFlight cannot change while the
  // machine is frozen, so an imbalance that exists now is reported by
  // the very next sweep (and nothing can fire earlier than that).
  uint64_t Held = 0;
  bool Live = TokensInFlight != 0;
  for (const Core &C : M.Cores) {
    for (const Hart &H : C.Harts) {
      Held += H.Token;
      if (H.State != HartState::Free)
        Live = true;
    }
  }
  if (Live && Held + TokensInFlight != 1)
    return Next;

  // Reserved-hart leak: a frozen Reserved hart keeps aging across the
  // skip and trips the threshold at a known cycle; the report lands on
  // the first sweep boundary at or past that cycle.
  uint64_t LeakThreshold = M.Cfg.ProgressGuard / 2;
  if (LeakThreshold < I)
    LeakThreshold = I;
  for (const Core &C : M.Cores) {
    for (const Hart &H : C.Harts) {
      if (H.State != HartState::Reserved)
        continue;
      uint64_t Fires = H.StateSince + LeakThreshold + 1;
      uint64_t Boundary = (Fires + I - 1) / I * I;
      if (Boundary < Next)
        Boundary = Next;
      if (Boundary < Concern)
        Concern = Boundary;
    }
  }

  // Wheel audit: the wheel contents and the pending counter are both
  // constant while frozen, so a divergence that exists now surfaces at
  // the next every-64th-sweep recount.
  if (M.WheelCount + M.Overflow.size() != PendingDeliveries) {
    uint64_t SweepsUntilAudit = 64 - SweepCount % 64;
    uint64_t Audit = Next + (SweepsUntilAudit - 1) * I;
    if (Audit < Concern)
      Concern = Audit;
  }
  return Concern;
}

void Checker::onSkip(uint64_t FromCycle, uint64_t ToCycle,
                     uint64_t Interval) {
  SweepCount += ToCycle / Interval - FromCycle / Interval;
}
