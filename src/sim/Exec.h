//===- sim/Exec.h - Functional instruction semantics ------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Pure-function evaluation of RV32IM data operations, separated from the
/// pipeline so it can be unit-tested exhaustively (including the RISC-V
/// division edge cases).
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SIM_EXEC_H
#define LBP_SIM_EXEC_H

#include "isa/Instr.h"

#include <cstdint>

namespace lbp {
namespace sim {

/// Computes the register result of an ALU / mul / div / upper-immediate /
/// link-producing instruction. \p A and \p B are the rs1/rs2 source
/// values, \p Pc the instruction's own address.
uint32_t evalOp(const isa::Instr &I, uint32_t A, uint32_t B, uint32_t Pc);

/// Returns true when the conditional branch \p I is taken given sources
/// \p A and \p B.
bool evalBranch(isa::Opcode Op, uint32_t A, uint32_t B);

} // namespace sim
} // namespace lbp

#endif // LBP_SIM_EXEC_H
