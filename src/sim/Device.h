//===- sim/Device.h - Memory-mapped I/O devices ------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's Section 6 I/O model: LBP is non-interruptible, so devices
/// are memory-mapped registers that harts poll (active wait). Devices may
/// respond after *non-deterministic* (seeded) latencies — the point of the
/// sensor-fusion experiment is that the program's result stays
/// deterministic even then, because the static code order fixes the
/// evaluation order.
///
/// Register layout convention (word offsets from the device base):
///   +0  STATUS  read: 1 when a value is ready, else 0
///               write: arm / trigger the device
///   +4  DATA    read: the current value; write: output a value
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SIM_DEVICE_H
#define LBP_SIM_DEVICE_H

#include "support/Serialize.h"
#include "support/SplitMix64.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace lbp {
namespace sim {

/// Offsets of the two device registers.
constexpr uint32_t DevStatusReg = 0;
constexpr uint32_t DevDataReg = 4;

/// Interface of everything mapped into the I/O address range.
class IoDevice {
public:
  virtual ~IoDevice();

  /// Register read at \p Offset served at \p Cycle.
  virtual uint32_t read(uint32_t Offset, uint64_t Cycle) = 0;

  /// Register write at \p Offset served at \p Cycle.
  virtual void write(uint32_t Offset, uint32_t Value, uint64_t Cycle) = 0;

  /// Checkpoint hooks (sim/Snapshot.h): serialize the device's mutable
  /// state (not its construction parameters — a restore targets a
  /// machine whose devices were constructed identically). The defaults
  /// cover stateless devices.
  virtual void saveState(ByteWriter &W) const { (void)W; }
  virtual void restoreState(ByteReader &R) { (void)R; }
};

/// An input sensor: arming it (a STATUS write) schedules the next sample
/// after a seeded pseudo-random latency in [MinLatency, MaxLatency].
/// Samples come from a caller-provided sequence (repeating its last value
/// when exhausted).
class SensorDevice : public IoDevice {
  std::vector<uint32_t> Samples;
  size_t NextSample = 0;
  SplitMix64 Rng;
  uint64_t MinLatency, MaxLatency;
  uint64_t ReadyCycle = 0;
  uint32_t Current = 0;
  bool Armed = false;

public:
  SensorDevice(std::vector<uint32_t> Samples, uint64_t Seed,
               uint64_t MinLatency, uint64_t MaxLatency);

  uint32_t read(uint32_t Offset, uint64_t Cycle) override;
  void write(uint32_t Offset, uint32_t Value, uint64_t Cycle) override;
  void saveState(ByteWriter &W) const override;
  void restoreState(ByteReader &R) override;
};

/// An output actuator: DATA writes are recorded with their service cycle.
class ActuatorDevice : public IoDevice {
public:
  struct Record {
    uint64_t Cycle;
    uint32_t Value;
  };

  uint32_t read(uint32_t Offset, uint64_t Cycle) override;
  void write(uint32_t Offset, uint32_t Value, uint64_t Cycle) override;
  void saveState(ByteWriter &W) const override;
  void restoreState(ByteReader &R) override;

  const std::vector<Record> &records() const { return Log; }

private:
  std::vector<Record> Log;
};

/// A free-running cycle counter readable as an external timer.
class TimerDevice : public IoDevice {
public:
  uint32_t read(uint32_t Offset, uint64_t Cycle) override;
  void write(uint32_t Offset, uint32_t Value, uint64_t Cycle) override;
};

/// A stream source for DMA-style input: STATUS reads 1 while data
/// remains; each DATA read pops the next element.
class StreamInDevice : public IoDevice {
  std::vector<uint32_t> Data;
  size_t Next = 0;

public:
  explicit StreamInDevice(std::vector<uint32_t> Data)
      : Data(std::move(Data)) {}

  uint32_t read(uint32_t Offset, uint64_t Cycle) override;
  void write(uint32_t Offset, uint32_t Value, uint64_t Cycle) override;
  void saveState(ByteWriter &W) const override;
  void restoreState(ByteReader &R) override;
};

/// A stream sink: DATA writes append to a buffer readable by the host.
class StreamOutDevice : public IoDevice {
  std::vector<uint32_t> Data;

public:
  uint32_t read(uint32_t Offset, uint64_t Cycle) override;
  void write(uint32_t Offset, uint32_t Value, uint64_t Cycle) override;
  void saveState(ByteWriter &W) const override;
  void restoreState(ByteReader &R) override;

  const std::vector<uint32_t> &data() const { return Data; }
};

} // namespace sim
} // namespace lbp

#endif // LBP_SIM_DEVICE_H
