//===- sim/Checker.h - Machine-check invariant checkers ---------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Always-available "machine check" logic for the simulator: a set of
/// invariant checkers wired into the machine's delivery path and cycle
/// loop that convert silent protocol divergence — a lost ending-signal
/// token, a corrupted link payload, a hart that was reserved but never
/// started — into a structured MachineCheck record and a
/// RunStatus::Fault with a precise message. The checkers are read-only
/// observers: a fault-free run produces a bit-identical trace hash with
/// them enabled or disabled. docs/ROBUSTNESS.md lists every invariant.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SIM_CHECKER_H
#define LBP_SIM_CHECKER_H

#include <cstdint>
#include <string>
#include <vector>

namespace lbp {
namespace sim {

class Machine;
struct Delivery;

/// The invariants a machine check can report.
enum class CheckKind : uint8_t {
  LinkParity,          ///< Delivery payload does not match its parity.
  TokenLost,           ///< No ending-signal token held or in flight.
  TokenDuplicated,     ///< More than one token exists (or a hart
                       ///< received one it already holds).
  BadDeliveryTarget,   ///< Delivery aimed at a free or nonexistent hart.
  RbFillWithoutBuffer, ///< Result arrived with no result buffer waiting.
  MemAckUnderflow,     ///< Memory acknowledgement with no outstanding op.
  SlotBacklogOverflow, ///< Remote-result backlog grew beyond any legal
                       ///< producer count.
  HartLeak,            ///< Hart stuck in Reserved: its start message was
                       ///< lost.
  WheelImbalance,      ///< Scheduled/delivered accounting diverged from
                       ///< the wheel contents.
  SchedulePast,        ///< Delivery scheduled at or before the current
                       ///< cycle.
};

const char *checkKindName(CheckKind K);

/// One detected invariant violation.
struct MachineCheck {
  uint64_t Cycle = 0;
  unsigned Core = 0;
  unsigned Hart = 0;
  CheckKind Kind = CheckKind::LinkParity;
  std::string Message;

  /// "machine check [kind] at cycle C (core X, hart H): message".
  std::string format() const;
};

/// Link-level parity over every field of a delivery except the parity
/// byte itself. Computed at injection, verified at arrival: a payload
/// bit flipped in flight is detected before the delivery is applied.
uint8_t deliveryParity(const Delivery &D);

/// The checker state machine. The Machine calls the hooks; sweep() runs
/// every SimConfig::CheckInterval cycles. Any violation is recorded and
/// escalated through Machine::fault().
struct SnapshotAccess; // checkpoint serializer (sim/Snapshot.cpp)

class Checker {
  friend struct SnapshotAccess;
  std::vector<MachineCheck> Checks;

  // Conservation counters, maintained by the schedule/deliver hooks.
  uint64_t PendingDeliveries = 0; ///< Scheduled but not yet delivered.
  uint64_t TokensInFlight = 0;    ///< Token + join messages in flight
                                  ///< (a join carries the token back).
  uint64_t SweepCount = 0;

public:
  /// Validates and accounts a delivery at schedule time.
  void onScheduled(Machine &M, uint64_t At, const Delivery &D);

  /// Validates a delivery just before it is applied. Equivalent to
  /// accountDelivered() followed by validateDelivered()+reportStaged();
  /// the split exists so the parallel engine's shard workers can run
  /// the validation half in parallel (it reads only the delivery and
  /// its target hart) while the counter half replays serially at the
  /// merge, in the reference loop's delivery order.
  void onDelivered(Machine &M, const Delivery &D);

  /// One validation failure found by a shard worker, staged for the
  /// merge to report at its canonical position.
  struct Violation {
    CheckKind Kind = CheckKind::LinkParity;
    unsigned Hart = 0;
    std::string Message;
  };

  /// Counter half of onDelivered: pending-delivery and token-in-flight
  /// accounting, including the arrived-but-never-scheduled report.
  /// Serial only (the counters are global).
  void accountDelivered(Machine &M, const Delivery &D);

  /// Validation half of onDelivered: link parity plus the target-hart
  /// invariants. Reads only \p D and its target hart, touches no
  /// checker or machine state — safe to call from a shard worker whose
  /// shard owns the target. Returns true and fills \p V on the first
  /// violation (the reference loop reports at most one here).
  bool validateDelivered(const Machine &M, const Delivery &D,
                         Violation &V) const;

  /// Replays a worker-staged violation at the merge point; identical
  /// record, trace event and fault escalation as an inline report.
  void reportStaged(Machine &M, CheckKind Kind, unsigned HartId,
                    std::string Message) {
    report(M, Kind, HartId, std::move(Message));
  }

  /// Periodic invariant sweep over the whole machine.
  void sweep(Machine &M);

  /// Fast-path support: the earliest future cycle at which a periodic
  /// sweep could report something, given the machine state frozen as it
  /// is now (no deliveries, no stage actions). Quiescence fast-forward
  /// must not jump past this cycle, so a violation that the reference
  /// path's per-cycle sweeps would catch fires at the identical cycle.
  /// Returns UINT64_MAX when no frozen-state sweep can ever report.
  uint64_t nextSweepConcern(const Machine &M) const;

  /// Fast-path support: account for the sweeps that quiescence
  /// fast-forward skipped over ((FromCycle, ToCycle]; none of them would
  /// have reported, per nextSweepConcern). Keeps SweepCount — and with
  /// it the every-64th-sweep wheel-audit cadence — identical to the
  /// reference path.
  void onSkip(uint64_t FromCycle, uint64_t ToCycle, uint64_t Interval);

  const std::vector<MachineCheck> &checks() const { return Checks; }

private:
  void report(Machine &M, CheckKind Kind, unsigned HartId,
              std::string Message);
};

} // namespace sim
} // namespace lbp

#endif // LBP_SIM_CHECKER_H
