//===- sim/Exec.cpp - Functional instruction semantics ----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sim/Exec.h"
#include "support/Compiler.h"

using namespace lbp;
using namespace lbp::sim;
using isa::Opcode;

uint32_t sim::evalOp(const isa::Instr &I, uint32_t A, uint32_t B,
                     uint32_t Pc) {
  int32_t SA = static_cast<int32_t>(A);
  int32_t SB = static_cast<int32_t>(B);
  uint32_t Imm = static_cast<uint32_t>(I.Imm);
  int32_t SImm = I.Imm;

  switch (I.Op) {
  case Opcode::LUI:
    return Imm << 12;
  case Opcode::AUIPC:
    return Pc + (Imm << 12);
  case Opcode::JAL:
  case Opcode::JALR:
    return Pc + 4;

  case Opcode::ADDI:
    return A + Imm;
  case Opcode::SLTI:
    return SA < SImm ? 1 : 0;
  case Opcode::SLTIU:
    return A < Imm ? 1 : 0;
  case Opcode::XORI:
    return A ^ Imm;
  case Opcode::ORI:
    return A | Imm;
  case Opcode::ANDI:
    return A & Imm;
  case Opcode::SLLI:
    return A << (Imm & 31);
  case Opcode::SRLI:
    return A >> (Imm & 31);
  case Opcode::SRAI:
    return static_cast<uint32_t>(SA >> (Imm & 31));

  case Opcode::ADD:
    return A + B;
  case Opcode::SUB:
    return A - B;
  case Opcode::SLL:
    return A << (B & 31);
  case Opcode::SLT:
    return SA < SB ? 1 : 0;
  case Opcode::SLTU:
    return A < B ? 1 : 0;
  case Opcode::XOR:
    return A ^ B;
  case Opcode::SRL:
    return A >> (B & 31);
  case Opcode::SRA:
    return static_cast<uint32_t>(SA >> (B & 31));
  case Opcode::OR:
    return A | B;
  case Opcode::AND:
    return A & B;

  case Opcode::MUL:
    return A * B;
  case Opcode::MULH:
    return static_cast<uint32_t>(
        (static_cast<int64_t>(SA) * static_cast<int64_t>(SB)) >> 32);
  case Opcode::MULHSU:
    return static_cast<uint32_t>(
        (static_cast<int64_t>(SA) * static_cast<uint64_t>(B)) >> 32);
  case Opcode::MULHU:
    return static_cast<uint32_t>(
        (static_cast<uint64_t>(A) * static_cast<uint64_t>(B)) >> 32);

  case Opcode::DIV:
    if (B == 0)
      return 0xFFFFFFFFu;
    if (A == 0x80000000u && B == 0xFFFFFFFFu)
      return 0x80000000u; // overflow: result is the dividend
    return static_cast<uint32_t>(SA / SB);
  case Opcode::DIVU:
    if (B == 0)
      return 0xFFFFFFFFu;
    return A / B;
  case Opcode::REM:
    if (B == 0)
      return A;
    if (A == 0x80000000u && B == 0xFFFFFFFFu)
      return 0;
    return static_cast<uint32_t>(SA % SB);
  case Opcode::REMU:
    if (B == 0)
      return A;
    return A % B;

  default:
    break;
  }
  LBP_UNREACHABLE("evalOp on a non-data opcode");
}

bool sim::evalBranch(Opcode Op, uint32_t A, uint32_t B) {
  int32_t SA = static_cast<int32_t>(A);
  int32_t SB = static_cast<int32_t>(B);
  switch (Op) {
  case Opcode::BEQ:
    return A == B;
  case Opcode::BNE:
    return A != B;
  case Opcode::BLT:
    return SA < SB;
  case Opcode::BGE:
    return SA >= SB;
  case Opcode::BLTU:
    return A < B;
  case Opcode::BGEU:
    return A >= B;
  default:
    break;
  }
  LBP_UNREACHABLE("evalBranch on a non-branch opcode");
}
