//===- sim/FaultInjection.h - Deterministic transient faults ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A seeded, fully deterministic fault plan for the simulator. The plan
/// is drawn once at machine construction from a SplitMix64 stream; from
/// then on it is a pure function of the cycle counter and of the
/// (deterministic) delivery stream, so the same seed reproduces the same
/// fault at the same cycle on every run. Four fault classes exist:
///
///  * DropDelivery  — a scheduled protocol message vanishes on its link.
///  * DelayDelivery — a message arrives 1..MaxDelay cycles late. Only
///    delivery classes with at most one in-flight message per target
///    (token, join, start, rb-fill) are delayed, so lateness can never
///    reorder same-target messages and a delayed run stays correct.
///  * BitFlip       — one payload bit flips after the link parity was
///    computed, so the delivery-side parity check must catch it.
///  * StuckBank     — one global bank's router-side port stops serving
///    for a window of cycles; accesses queue behind the window.
///
/// docs/ROBUSTNESS.md describes the model and how the machine-check
/// layer (sim/Checker.h) turns each class into a detected failure.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SIM_FAULTINJECTION_H
#define LBP_SIM_FAULTINJECTION_H

#include "sim/Config.h"

#include <string>
#include <vector>

namespace lbp {
namespace sim {

/// The four injectable fault classes.
enum class FaultKind : uint8_t {
  DropDelivery,
  DelayDelivery,
  BitFlip,
  StuckBank,
};

const char *faultKindName(FaultKind K);

/// Delivery-class bits a drop/delay/flip event may target. One bit per
/// protocol delivery kind (memory bank traffic is perturbed through
/// StuckBank instead, whose timing effect is modelled at the bank port).
enum : uint8_t {
  FaultClassToken = 1 << 0,    ///< Ending-signal token.
  FaultClassJoin = 1 << 1,     ///< Join message to a team head.
  FaultClassStart = 1 << 2,    ///< Hart start message.
  FaultClassRbFill = 1 << 3,   ///< Load/remote result fill.
  FaultClassSlotFill = 1 << 4, ///< p_swre remote-result slot fill.
};

/// One planned fault. Armed from TriggerCycle on; drop/delay/flip events
/// fire on the first matching delivery scheduled at or after that cycle,
/// stuck-bank events cover [TriggerCycle, TriggerCycle + Duration).
struct FaultEvent {
  FaultKind Kind = FaultKind::DropDelivery;
  uint64_t TriggerCycle = 0;
  uint8_t ClassMask = 0; ///< Delivery classes the event may hit.
  uint32_t Param = 0;    ///< Delay cycles / payload bit index / bank id.
  uint64_t Duration = 0; ///< Stuck-bank window length.
  bool Fired = false;
  uint64_t FiredCycle = 0;

  std::string describe() const;
};

struct SnapshotAccess; // checkpoint serializer (sim/Snapshot.cpp)

/// The full, pre-drawn fault schedule of one run.
class FaultPlan {
  friend struct SnapshotAccess;
  std::vector<FaultEvent> Events;
  bool Enabled = false;

public:
  FaultPlan() = default;
  FaultPlan(const FaultPlanConfig &Config, unsigned NumCores);

  bool enabled() const { return Enabled; }

  /// Returns the first armed drop/delay/flip event whose class mask
  /// covers \p ClassBit, marking it fired at \p Now, or nullptr.
  FaultEvent *match(uint64_t Now, uint8_t ClassBit);

  /// Extra stall cycles a global-bank access to \p Bank suffers when its
  /// service cycle \p Now falls into a stuck window. \p NewlyFired is
  /// set when this call is the window's first hit.
  uint64_t stuckBankStall(unsigned Bank, uint64_t Now, bool &NewlyFired);

  const std::vector<FaultEvent> &events() const { return Events; }
  unsigned firedCount() const;
};

} // namespace sim
} // namespace lbp

#endif // LBP_SIM_FAULTINJECTION_H
