//===- sim/Snapshot.h - Deterministic machine checkpointing -----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The checkpoint format behind Machine::saveSnapshot / restoreSnapshot
/// and Interp::saveSnapshot / restoreSnapshot (docs/ROBUSTNESS.md,
/// "Checkpoint format"). A snapshot captures the *complete mutable run
/// state* of a machine between cycles, so a restored run is
/// observationally indistinguishable from an uninterrupted one: same
/// trace hash chain, same cycle count, same counter snapshot, same
/// RunStatus — on the reference loop, the fast path and the sharded
/// parallel engine alike. That property is what lets the fleet runner
/// (src/fleet/) retry a crashed or preempted worker from its last
/// checkpoint without perturbing the campaign's deterministic report.
///
/// Blob layout (all little-endian, support/Serialize.h):
///
///   u32 magic 'LBPS'   u32 format version
///   u64 config digest  — FNV over the behavior-relevant SimConfig
///                        fields (structure, latencies, checkers,
///                        collection modes, fault plan). Host-only
///                        knobs (FastPath, HostThreads, trace
///                        recording) are excluded: they cannot change
///                        the simulated state, so a snapshot moves
///                        freely between engines and thread counts.
///   sections           — memory, interconnect, cores/harts, delivery
///                        wheel + overflow heap, machine scalars,
///                        fault-plan cursor, checker accounting, trace
///                        hash, perf counters, devices
///   u32 trailer magic  — truncation guard
///
/// Versioning: SnapshotFormatVersion bumps on any layout change;
/// restore rejects a mismatched version or digest outright (no
/// cross-version migration — checkpoints are campaign-lifetime
/// artifacts, not archives).
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SIM_SNAPSHOT_H
#define LBP_SIM_SNAPSHOT_H

#include "sim/Config.h"

#include <cstdint>

namespace lbp {
namespace sim {

/// 'L' 'B' 'P' 'S' in little-endian byte order.
constexpr uint32_t SnapshotMagic = 0x5350424Cu;

/// Bumped on any change to the blob layout.
/// v2: per-hart PendingSendOps, machine SendCount, per-core sleep cycle
/// now sourced from Machine::CoreWake (SoA layout).
/// v3: interval-digest ring + PerturbForTest fired-flag section after
/// the trace hash (docs/OBSERVABILITY.md "Divergence triage").
constexpr uint32_t SnapshotFormatVersion = 3;

/// Trailer sentinel appended after the last section.
constexpr uint32_t SnapshotTrailer = 0x50414E53u; // 'S' 'N' 'A' 'P'

/// Digest of the SimConfig fields that determine simulated behavior.
/// Two configs with equal digests evolve a loaded machine through the
/// identical state sequence; restore refuses a digest mismatch.
/// Host-side observation knobs (FastPath, HostThreads, EpochOverride,
/// RecordTrace, trace line options) are deliberately not folded in.
uint64_t snapshotConfigDigest(const SimConfig &Cfg);

} // namespace sim
} // namespace lbp

#endif // LBP_SIM_SNAPSHOT_H
