//===- sim/Snapshot.cpp - Deterministic machine checkpointing ---------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Implements Machine::saveSnapshot / restoreSnapshot and the Interp
/// pair (format documented in sim/Snapshot.h). One serializer struct —
/// SnapshotAccess — is friended into every class holding run state, so
/// the complete field inventory lives in this file and nowhere else:
/// when a header grows a new mutable field, this is the one place to
/// teach about it (and SnapshotFormatVersion the one constant to bump).
///
//===----------------------------------------------------------------------===//

#include "sim/Snapshot.h"

#include "isa/Encoding.h"
#include "isa/Reg.h"
#include "sim/Interp.h"
#include "sim/Machine.h"
#include "support/EventHash.h"
#include "support/Serialize.h"

using namespace lbp;
using namespace lbp::sim;

const char *lbp::sim::runStatusName(RunStatus S) {
  switch (S) {
  case RunStatus::Exited:
    return "exited";
  case RunStatus::MaxCycles:
    return "max-cycles";
  case RunStatus::Livelock:
    return "livelock";
  case RunStatus::Fault:
    return "fault";
  case RunStatus::Deadline:
    return "deadline";
  }
  return "unknown";
}

uint64_t lbp::sim::snapshotConfigDigest(const SimConfig &Cfg) {
  // Fold every behavior-relevant field in a fixed order. Host-only
  // knobs (FastPath, HostThreads, EpochOverride, RecordTrace, trace
  // line options) are deliberately absent: they select *how* the state
  // sequence is computed, never *what* it is, so a snapshot stays
  // portable across engines and thread counts.
  EventHash H;
  H.addWord(Cfg.NumCores);
  H.addWord(Cfg.GlobalBankSizeLog2);
  H.addWord(Cfg.AluLatency);
  H.addWord(Cfg.MulLatency);
  H.addWord(Cfg.DivLatency);
  H.addWord(Cfg.LocalMemLatency);
  H.addWord(Cfg.GlobalLocalPortLatency);
  H.addWord(Cfg.RouterHopLatency);
  H.addWord(Cfg.RouterLinkCapacity);
  H.addWord(Cfg.BankServiceLatency);
  H.addWord(Cfg.ForwardLinkLatency);
  H.addWord(Cfg.BackwardHopLatency);
  H.addWord(Cfg.ProgressGuard);
  H.addWord(Cfg.CollectStallStats);
  H.addWord(Cfg.CollectCounters);
  H.addWord(Cfg.CollectMemLog);
  H.addWord(Cfg.EnableCheckers);
  H.addWord(Cfg.CheckInterval);
  H.addWord(Cfg.Faults.Seed);
  H.addWord(Cfg.Faults.Drops);
  H.addWord(Cfg.Faults.Delays);
  H.addWord(Cfg.Faults.BitFlips);
  H.addWord(Cfg.Faults.StuckBanks);
  H.addWord(Cfg.Faults.WindowBegin);
  H.addWord(Cfg.Faults.WindowEnd);
  H.addWord(Cfg.Faults.MaxDelay);
  H.addWord(Cfg.Faults.StuckDuration);
  // The digest ring and the perturb fired-flag are serialized run
  // state, so their governing knobs must match on restore; PerturbForTest
  // additionally changes the hash chain itself.
  H.addWord(Cfg.DigestInterval);
  H.addWord(Cfg.DigestRingCap);
  H.addWord(Cfg.PerturbForTest);
  return H.value();
}

namespace lbp {
namespace sim {

/// The serializer. Static member functions only; friended into every
/// state-holding class. save* and restore* are strict mirrors — keep
/// them adjacent and in the same field order.
struct SnapshotAccess {
  // -- Leaf records ----------------------------------------------------

  static void saveInstr(ByteWriter &W, const isa::Instr &I) {
    W.u16(static_cast<uint16_t>(I.Op));
    W.u8(I.Rd);
    W.u8(I.Rs1);
    W.u8(I.Rs2);
    W.u32(static_cast<uint32_t>(I.Imm));
  }
  static void restoreInstr(ByteReader &R, isa::Instr &I) {
    I.Op = static_cast<isa::Opcode>(R.u16());
    I.Rd = R.u8();
    I.Rs1 = R.u8();
    I.Rs2 = R.u8();
    I.Imm = static_cast<int32_t>(R.u32());
  }

  static void saveDelivery(ByteWriter &W, const Delivery &D) {
    W.u8(static_cast<uint8_t>(D.K));
    W.u16(D.HartId);
    W.u32(D.Value);
    W.u32(D.Addr);
    W.u64(D.RespCycle);
    W.u32(D.StoreWord);
    W.u8(D.Width);
    W.u8(D.Slot);
    W.b(D.IsWrite);
    W.b(D.SignExt);
    W.b(D.CountsMem);
    W.u8(D.Parity);
  }
  static void restoreDelivery(ByteReader &R, Delivery &D) {
    D.K = static_cast<Delivery::Kind>(R.u8());
    D.HartId = R.u16();
    D.Value = R.u32();
    D.Addr = R.u32();
    D.RespCycle = R.u64();
    D.StoreWord = R.u32();
    D.Width = R.u8();
    D.Slot = R.u8();
    D.IsWrite = R.b();
    D.SignExt = R.b();
    D.CountsMem = R.b();
    D.Parity = R.u8();
  }

  static void saveHart(ByteWriter &W, const Hart &H) {
    W.u8(static_cast<uint8_t>(H.State));
    W.u64(H.StateSince);
    W.b(H.PcValid);
    W.u32(H.Pc);
    W.u64(H.NoFetchUntil);
    W.b(H.SyncmWait);
    W.b(H.IbFull);
    W.u32(H.IbWord);
    W.u32(H.IbPc);
    for (uint32_t Reg : H.Regs)
      W.u32(Reg);
    for (int8_t P : H.RegProducer)
      W.i8(P);
    W.u64(H.NextRenameSeq);
    for (uint64_t S : H.LastRenameSeq)
      W.u64(S);
    for (const RobEntry &E : H.Rob) {
      saveInstr(W, E.I);
      W.u32(E.Pc);
      W.u8(static_cast<uint8_t>(E.State));
      for (unsigned I = 0; I != 2; ++I) {
        W.b(E.SrcReady[I]);
        W.u32(E.SrcVal[I]);
        W.i8(E.SrcProducer[I]);
      }
      W.u64(E.DoneCycle);
      W.u64(E.RenameSeq);
    }
    W.u32(H.RobHead);
    W.u32(H.RobCount);
    W.b(H.RbBusy);
    W.b(H.RbReady);
    W.u64(H.RbReadyCycle);
    W.u32(H.RbValue);
    W.u32(static_cast<uint32_t>(H.RbEntry));
    W.u32(H.OutstandingMem);
    W.vecU32(H.PendingStoreWords);
    W.b(H.Token);
    W.u8(H.PendingGateOps);
    W.u8(H.PendingSendOps);
    for (unsigned I = 0; I != ResultSlots; ++I) {
      W.b(H.SlotFull[I]);
      W.u32(H.SlotVal[I]);
    }
    W.u64(H.SlotBacklog.size());
    for (const auto &SB : H.SlotBacklog) {
      W.u8(SB.first);
      W.u32(SB.second);
    }
    W.u64(H.Retired);
  }
  static void restoreHart(ByteReader &R, Hart &H) {
    H.State = static_cast<HartState>(R.u8());
    H.StateSince = R.u64();
    H.PcValid = R.b();
    H.Pc = R.u32();
    H.NoFetchUntil = R.u64();
    H.SyncmWait = R.b();
    H.IbFull = R.b();
    H.IbWord = R.u32();
    H.IbPc = R.u32();
    for (uint32_t &Reg : H.Regs)
      Reg = R.u32();
    for (int8_t &P : H.RegProducer)
      P = R.i8();
    H.NextRenameSeq = R.u64();
    for (uint64_t &S : H.LastRenameSeq)
      S = R.u64();
    for (RobEntry &E : H.Rob) {
      restoreInstr(R, E.I);
      E.Pc = R.u32();
      E.State = static_cast<RobEntry::St>(R.u8());
      for (unsigned I = 0; I != 2; ++I) {
        E.SrcReady[I] = R.b();
        E.SrcVal[I] = R.u32();
        E.SrcProducer[I] = R.i8();
      }
      E.DoneCycle = R.u64();
      E.RenameSeq = R.u64();
    }
    H.RobHead = R.u32();
    H.RobCount = R.u32();
    H.RbBusy = R.b();
    H.RbReady = R.b();
    H.RbReadyCycle = R.u64();
    H.RbValue = R.u32();
    H.RbEntry = static_cast<int>(static_cast<int32_t>(R.u32()));
    H.OutstandingMem = R.u32();
    H.PendingStoreWords = R.vecU32();
    H.Token = R.b();
    H.PendingGateOps = R.u8();
    H.PendingSendOps = R.u8();
    for (unsigned I = 0; I != ResultSlots; ++I) {
      H.SlotFull[I] = R.b();
      H.SlotVal[I] = R.u32();
    }
    H.SlotBacklog.clear();
    uint64_t N = R.u64();
    H.SlotBacklog.reserve(R.ok() ? N : 0);
    for (uint64_t I = 0; I != N && R.ok(); ++I) {
      uint8_t Slot = R.u8();
      uint32_t Val = R.u32();
      H.SlotBacklog.emplace_back(Slot, Val);
    }
    H.Retired = R.u64();
  }

  // -- Subsystems ------------------------------------------------------

  static void saveMemory(ByteWriter &W, const MemorySystem &M) {
    W.vecU8(M.Code);
    W.u64(M.LocalBanks.size());
    for (const auto &B : M.LocalBanks)
      W.vecU8(B);
    W.u64(M.GlobalBanks.size());
    for (const auto &B : M.GlobalBanks)
      W.vecU8(B);
  }
  static bool restoreMemory(ByteReader &R, MemorySystem &M,
                            std::string &Err) {
    M.Code = R.vecU8();
    uint64_t NL = R.u64();
    if (NL != M.LocalBanks.size()) {
      Err = "snapshot: local bank count mismatch";
      return false;
    }
    for (auto &B : M.LocalBanks) {
      std::vector<uint8_t> V = R.vecU8();
      if (V.size() != B.size()) {
        Err = "snapshot: local bank size mismatch";
        return false;
      }
      B = std::move(V);
    }
    uint64_t NG = R.u64();
    if (NG != M.GlobalBanks.size()) {
      Err = "snapshot: global bank count mismatch";
      return false;
    }
    for (auto &B : M.GlobalBanks) {
      std::vector<uint8_t> V = R.vecU8();
      if (V.size() != B.size()) {
        Err = "snapshot: global bank size mismatch";
        return false;
      }
      B = std::move(V);
    }
    return R.ok();
  }

  static void saveInterconnect(ByteWriter &W, const Interconnect &N) {
    W.vecU64(N.CoreUp);
    W.vecU64(N.CoreDown);
    W.vecU64(N.BankIn);
    W.vecU64(N.BankOut);
    W.vecU64(N.BankPort);
    W.vecU64(N.R1UpReq);
    W.vecU64(N.R1UpResp);
    W.vecU64(N.R1DownReq);
    W.vecU64(N.R1DownResp);
    W.vecU64(N.R2UpReq);
    W.vecU64(N.R2UpResp);
    W.vecU64(N.R2DownReq);
    W.vecU64(N.R2DownResp);
    W.vecU64(N.Forward);
    W.vecU64(N.Backward);
    W.u64(N.IoPort);
    W.u64(N.Contention);
    W.vecU64(N.FwdCount);
    W.vecU64(N.BwdCount);
    W.vecU64(N.BankReqs);
    W.vecU64(N.BankWait);
    for (uint64_t C : N.ContByClass)
      W.u64(C);
  }
  static bool restoreVecU64(ByteReader &R, std::vector<uint64_t> &Out,
                            std::string &Err, const char *What) {
    std::vector<uint64_t> V = R.vecU64();
    if (V.size() != Out.size()) {
      Err = std::string("snapshot: size mismatch in ") + What;
      return false;
    }
    Out = std::move(V);
    return true;
  }
  static bool restoreInterconnect(ByteReader &R, Interconnect &N,
                                  std::string &Err) {
    std::vector<uint64_t> *Fields[] = {
        &N.CoreUp,     &N.CoreDown,   &N.BankIn,   &N.BankOut,
        &N.BankPort,   &N.R1UpReq,    &N.R1UpResp, &N.R1DownReq,
        &N.R1DownResp, &N.R2UpReq,    &N.R2UpResp, &N.R2DownReq,
        &N.R2DownResp, &N.Forward,    &N.Backward};
    for (std::vector<uint64_t> *F : Fields)
      if (!restoreVecU64(R, *F, Err, "interconnect reservations"))
        return false;
    N.IoPort = R.u64();
    N.Contention = R.u64();
    if (!restoreVecU64(R, N.FwdCount, Err, "interconnect counters") ||
        !restoreVecU64(R, N.BwdCount, Err, "interconnect counters") ||
        !restoreVecU64(R, N.BankReqs, Err, "interconnect counters") ||
        !restoreVecU64(R, N.BankWait, Err, "interconnect counters"))
      return false;
    for (uint64_t &C : N.ContByClass)
      C = R.u64();
    return R.ok();
  }

  static void saveChecker(ByteWriter &W, const Checker &C) {
    W.u64(C.Checks.size());
    for (const MachineCheck &MC : C.Checks) {
      W.u64(MC.Cycle);
      W.u32(MC.Core);
      W.u32(MC.Hart);
      W.u8(static_cast<uint8_t>(MC.Kind));
      W.str(MC.Message);
    }
    W.u64(C.PendingDeliveries);
    W.u64(C.TokensInFlight);
    W.u64(C.SweepCount);
  }
  static void restoreChecker(ByteReader &R, Checker &C) {
    C.Checks.clear();
    uint64_t N = R.u64();
    for (uint64_t I = 0; I != N && R.ok(); ++I) {
      MachineCheck MC;
      MC.Cycle = R.u64();
      MC.Core = R.u32();
      MC.Hart = R.u32();
      MC.Kind = static_cast<CheckKind>(R.u8());
      MC.Message = R.str();
      C.Checks.push_back(std::move(MC));
    }
    C.PendingDeliveries = R.u64();
    C.TokensInFlight = R.u64();
    C.SweepCount = R.u64();
  }

  static void saveFaultCursor(ByteWriter &W, const FaultPlan &P) {
    // The plan itself is a pure function of the config (seeded draw at
    // construction); only the fired cursor is run state.
    W.u64(P.Events.size());
    for (const FaultEvent &E : P.Events) {
      W.b(E.Fired);
      W.u64(E.FiredCycle);
    }
  }
  static bool restoreFaultCursor(ByteReader &R, FaultPlan &P,
                                 std::string &Err) {
    uint64_t N = R.u64();
    if (N != P.Events.size()) {
      Err = "snapshot: fault plan event count mismatch";
      return false;
    }
    for (FaultEvent &E : P.Events) {
      E.Fired = R.b();
      E.FiredCycle = R.u64();
    }
    return R.ok();
  }

  static void saveTraceDigests(ByteWriter &W, const Trace &T) {
    // v3 section: digest/perturb run state, adjacent to the hash it
    // extends. Interval and ring capacity are config (folded into the
    // config digest), so only the evolving state is serialized.
    W.b(T.perturbFired());
    W.u64(T.digestNextBoundary());
    W.u64(T.digestCount());
    std::vector<TraceDigest> Entries = T.digestEntries();
    W.u64(Entries.size());
    for (const TraceDigest &D : Entries) {
      W.u64(D.Boundary);
      W.u64(D.Hash);
    }
  }
  static bool restoreTraceDigests(ByteReader &R, Trace &T,
                                  std::string &Err) {
    bool Fired = R.b();
    uint64_t NextBoundary = R.u64();
    uint64_t Total = R.u64();
    uint64_t N = R.u64();
    if (N > Total || (T.digestRingCap() != 0 && N > T.digestRingCap())) {
      Err = "snapshot: digest ring larger than its declared capacity";
      return false;
    }
    std::vector<TraceDigest> Entries;
    Entries.reserve(R.ok() ? N : 0);
    for (uint64_t I = 0; I != N && R.ok(); ++I) {
      TraceDigest D;
      D.Boundary = R.u64();
      D.Hash = R.u64();
      Entries.push_back(D);
    }
    T.restoreDigestState(NextBoundary, Total, Entries, Fired);
    return R.ok();
  }

  static void saveCounters(ByteWriter &W, const obs::PerfCounters *C) {
    W.b(C != nullptr);
    if (!C)
      return;
    W.vecU64(C->CommitsPerCore);
    W.vecU64(C->CommitsPerHart);
    W.vecU64(C->BankReads);
    W.vecU64(C->BankWrites);
    W.u64(C->LocalReads);
    W.u64(C->LocalWrites);
    W.u64(C->IoReads);
    W.u64(C->IoWrites);
    W.u64(C->Forks);
    W.u64(C->HartStarts);
    W.u64(C->HartEnds);
    W.u64(C->TokenPasses);
    W.u64(C->Joins);
    for (uint64_t B : C->TokenLatency.Buckets)
      W.u64(B);
    W.u64(C->TokenLatency.Count);
    W.u64(C->TokenLatency.Sum);
    W.u64(C->TokenLatency.Max);
    W.u64(C->FaultsInjected);
    W.u64(C->MachineChecks);
    W.vecU32(C->RobHigh);
    W.vecU32(C->SlotHigh);
    W.vecU64(C->TokenSendCycle);
  }
  static bool restoreCounters(ByteReader &R, obs::PerfCounters *C,
                              std::string &Err) {
    bool Present = R.b();
    if (Present != (C != nullptr)) {
      Err = "snapshot: counter presence mismatch";
      return false;
    }
    if (!C)
      return true;
    C->CommitsPerCore = R.vecU64();
    C->CommitsPerHart = R.vecU64();
    C->BankReads = R.vecU64();
    C->BankWrites = R.vecU64();
    C->LocalReads = R.u64();
    C->LocalWrites = R.u64();
    C->IoReads = R.u64();
    C->IoWrites = R.u64();
    C->Forks = R.u64();
    C->HartStarts = R.u64();
    C->HartEnds = R.u64();
    C->TokenPasses = R.u64();
    C->Joins = R.u64();
    for (uint64_t &B : C->TokenLatency.Buckets)
      B = R.u64();
    C->TokenLatency.Count = R.u64();
    C->TokenLatency.Sum = R.u64();
    C->TokenLatency.Max = R.u64();
    C->FaultsInjected = R.u64();
    C->MachineChecks = R.u64();
    C->RobHigh = R.vecU32();
    C->SlotHigh = R.vecU32();
    C->TokenSendCycle = R.vecU64();
    return R.ok();
  }

  // -- Whole machine ---------------------------------------------------

  static void save(const Machine &M, ByteWriter &W) {
    W.u32(SnapshotMagic);
    W.u32(SnapshotFormatVersion);
    W.u64(snapshotConfigDigest(M.Cfg));

    saveMemory(W, M.Mem);
    saveInterconnect(W, M.Net);

    W.u64(M.Cores.size());
    for (size_t CoreId = 0; CoreId != M.Cores.size(); ++CoreId) {
      const Core &C = M.Cores[CoreId];
      for (const Hart &H : C.Harts)
        saveHart(W, H);
      W.u8(C.FetchRR);
      W.u8(C.DecodeRR);
      W.u8(C.IssueRR);
      W.u8(C.WbRR);
      W.u8(C.CommitRR);
      W.u8(C.AllocRR);
      W.u64(M.CoreWake[CoreId]); // per-core sleep cycle (SoA, Machine.h)
    }

    // Delivery wheel, sparse: only non-empty slots. The slot index is
    // the absolute-cycle residue; since Cycle is restored too, verbatim
    // slot contents land exactly where collectDue() will look.
    uint64_t NonEmpty = 0;
    for (const auto &Slot : M.Wheel)
      if (!Slot.empty())
        ++NonEmpty;
    W.u64(NonEmpty);
    for (uint64_t S = 0; S != Machine::WheelSize; ++S) {
      const auto &Slot = M.Wheel[S];
      if (Slot.empty())
        continue;
      W.u64(S);
      W.u64(Slot.size());
      for (const Delivery &D : Slot)
        saveDelivery(W, D);
    }
    // Overflow heap verbatim (array order preserves the heap layout and
    // with it the exact pop sequence).
    W.u64(M.Overflow.size());
    for (const Machine::OverflowEntry &E : M.Overflow) {
      W.u64(E.At);
      W.u64(E.Seq);
      saveDelivery(W, E.D);
    }
    W.u64(M.OverflowSeq);
    W.u64(M.WheelCount);

    W.u64(M.Cycle);
    W.u64(M.LastProgress);
    W.u8(static_cast<uint8_t>(M.Status));
    W.b(M.Halted);
    W.str(M.FaultMsg);
    W.u64(M.TotalRetired);
    W.u64(M.GateCount);
    W.u64(M.SendCount);
    W.u64(M.JoinEpoch);
    W.b(M.Hart0InTeam);
    W.u64(M.RemoteAccesses);
    W.u64(M.LocalAccesses);
    W.vecU64(M.StallByCore);
    W.u64(M.MemLog.size());
    for (const Machine::MemAccess &A : M.MemLog) {
      W.u64(A.Cycle);
      W.u64(A.Epoch);
      W.u16(A.Hart);
      W.u32(A.Addr);
      W.u8(A.Width);
      W.b(A.IsWrite);
      W.b(A.InTeam);
    }

    saveFaultCursor(W, M.FPlan);
    saveChecker(W, M.Ck);
    W.u64(M.Tr.hash());
    saveTraceDigests(W, M.Tr);
    saveCounters(W, M.Obs.get());

    // Devices: length-prefixed so a size-mismatched restore fails
    // cleanly instead of desynchronizing the stream.
    W.u64(M.Devices.size());
    for (const Machine::DeviceMapping &DM : M.Devices) {
      ByteWriter DevW;
      DM.Dev->saveState(DevW);
      W.vecU8(DevW.buffer());
    }

    W.u32(SnapshotTrailer);
  }

  static bool restore(Machine &M, ByteReader &R, std::string &Err) {
    if (R.u32() != SnapshotMagic) {
      Err = "snapshot: bad magic";
      return false;
    }
    uint32_t Version = R.u32();
    if (Version != SnapshotFormatVersion) {
      Err = "snapshot: format version " + std::to_string(Version) +
            " (expected " + std::to_string(SnapshotFormatVersion) + ")";
      return false;
    }
    if (R.u64() != snapshotConfigDigest(M.Cfg)) {
      Err = "snapshot: config digest mismatch (the restoring machine "
            "must be constructed with a behaviorally identical config)";
      return false;
    }

    if (!restoreMemory(R, M.Mem, Err) || !restoreInterconnect(R, M.Net, Err))
      return false;

    if (R.u64() != M.Cores.size()) {
      Err = "snapshot: core count mismatch";
      return false;
    }
    for (size_t CoreId = 0; CoreId != M.Cores.size(); ++CoreId) {
      Core &C = M.Cores[CoreId];
      for (Hart &H : C.Harts)
        restoreHart(R, H);
      C.FetchRR = R.u8();
      C.DecodeRR = R.u8();
      C.IssueRR = R.u8();
      C.WbRR = R.u8();
      C.CommitRR = R.u8();
      C.AllocRR = R.u8();
      M.CoreWake[CoreId] = R.u64();
    }

    for (auto &Slot : M.Wheel)
      Slot.clear();
    uint64_t NonEmpty = R.u64();
    for (uint64_t I = 0; I != NonEmpty && R.ok(); ++I) {
      uint64_t S = R.u64();
      if (S >= Machine::WheelSize) {
        Err = "snapshot: wheel slot index out of range";
        return false;
      }
      uint64_t N = R.u64();
      auto &Slot = M.Wheel[S];
      Slot.resize(N);
      for (Delivery &D : Slot)
        restoreDelivery(R, D);
    }
    uint64_t NOverflow = R.u64();
    M.Overflow.clear();
    M.Overflow.reserve(R.ok() ? NOverflow : 0);
    for (uint64_t I = 0; I != NOverflow && R.ok(); ++I) {
      Machine::OverflowEntry E;
      E.At = R.u64();
      E.Seq = R.u64();
      restoreDelivery(R, E.D);
      M.Overflow.push_back(E);
    }
    M.OverflowSeq = R.u64();
    M.WheelCount = R.u64();
    M.DueBuf.clear(); // per-cycle scratch, empty between cycles

    M.Cycle = R.u64();
    M.LastProgress = R.u64();
    uint8_t St = R.u8();
    if (St > static_cast<uint8_t>(RunStatus::Deadline)) {
      Err = "snapshot: invalid run status";
      return false;
    }
    M.Status = static_cast<RunStatus>(St);
    M.Halted = R.b();
    M.FaultMsg = R.str();
    M.TotalRetired = R.u64();
    M.GateCount = R.u64();
    M.SendCount = R.u64();
    M.JoinEpoch = R.u64();
    M.Hart0InTeam = R.b();
    M.RemoteAccesses = R.u64();
    M.LocalAccesses = R.u64();
    if (!restoreVecU64(R, M.StallByCore, Err, "stall tallies"))
      return false;
    uint64_t NLog = R.u64();
    M.MemLog.clear();
    M.MemLog.reserve(R.ok() ? NLog : 0);
    for (uint64_t I = 0; I != NLog && R.ok(); ++I) {
      Machine::MemAccess A;
      A.Cycle = R.u64();
      A.Epoch = R.u64();
      A.Hart = R.u16();
      A.Addr = R.u32();
      A.Width = R.u8();
      A.IsWrite = R.b();
      A.InTeam = R.b();
      M.MemLog.push_back(A);
    }

    if (!restoreFaultCursor(R, M.FPlan, Err))
      return false;
    restoreChecker(R, M.Ck);
    M.Tr.restoreHash(R.u64());
    if (!restoreTraceDigests(R, M.Tr, Err))
      return false;
    if (!restoreCounters(R, M.Obs.get(), Err))
      return false;

    uint64_t NDev = R.u64();
    if (NDev != M.Devices.size()) {
      Err = "snapshot: device count mismatch (add the same devices in "
            "the same order before restoring)";
      return false;
    }
    for (Machine::DeviceMapping &DM : M.Devices) {
      std::vector<uint8_t> Blob = R.vecU8();
      ByteReader DevR(Blob);
      DM.Dev->restoreState(DevR);
      if (!DevR.ok()) {
        Err = "snapshot: device state truncated";
        return false;
      }
    }

    if (R.u32() != SnapshotTrailer || !R.ok()) {
      Err = "snapshot: truncated or trailing-garbage blob";
      return false;
    }

    // Derived state. The pre-decoded text cache mirrors the code image
    // (load()'s decode loop, including the P_LWCV operand fixup); the
    // reference engine never reads it, so it is cleared there.
    if (M.FastRun) {
      uint32_t Words = (M.Mem.codeSize() + 3) / 4;
      M.DecodedText.resize(Words);
      for (uint32_t Word = 0; Word != Words; ++Word) {
        isa::Instr I = isa::decode(M.Mem.fetchWord(Word * 4));
        if (I.Op == isa::Opcode::P_LWCV)
          I.Rs1 = isa::RegSP;
        M.DecodedText[Word] = I;
      }
    } else {
      M.DecodedText.clear();
    }
    // The window planner's hazard-lookahead table mirrors the restored
    // code image (no-op when the parallel engine can never run).
    M.buildWindowClass();
    return true;
  }
};

} // namespace sim
} // namespace lbp

void Machine::saveSnapshot(std::vector<uint8_t> &Out) const {
  ByteWriter W;
  SnapshotAccess::save(*this, W);
  Out = W.take();
}

bool Machine::restoreSnapshot(const std::vector<uint8_t> &Blob,
                              std::string &Err) {
  ByteReader R(Blob);
  return SnapshotAccess::restore(*this, R, Err);
}

//===----------------------------------------------------------------------===//
// Interp checkpointing
//===----------------------------------------------------------------------===//

void Interp::saveSnapshot(std::vector<uint8_t> &Out) const {
  ByteWriter W;
  W.u32(SnapshotMagic);
  W.u32(SnapshotFormatVersion);
  W.u32(Pc);
  for (uint32_t Reg : Regs)
    W.u32(Reg);
  W.u64(Steps);
  for (uint32_t M : Mailbox)
    W.u32(M);
  W.u64(Pages.size());
  for (const auto &P : Pages) {
    W.u32(P->Base);
    for (uint32_t Word : P->Words)
      W.u32(Word);
    for (uint64_t B : P->Written)
      W.u64(B);
  }
  W.u32(SnapshotTrailer);
  Out = W.take();
}

bool Interp::restoreSnapshot(const std::vector<uint8_t> &Blob,
                             std::string &Err) {
  ByteReader R(Blob);
  if (R.u32() != SnapshotMagic) {
    Err = "snapshot: bad magic";
    return false;
  }
  if (R.u32() != SnapshotFormatVersion) {
    Err = "snapshot: format version mismatch";
    return false;
  }
  Pc = R.u32();
  for (uint32_t &Reg : Regs)
    Reg = R.u32();
  Steps = R.u64();
  for (uint32_t &M : Mailbox)
    M = R.u32();
  uint64_t N = R.u64();
  Pages.clear();
  LastPage = nullptr; // memoized pointer into the old page set
  Pages.reserve(R.ok() ? N : 0);
  for (uint64_t I = 0; I != N && R.ok(); ++I) {
    auto P = std::make_unique<Page>();
    P->Base = R.u32();
    for (uint32_t &Word : P->Words)
      Word = R.u32();
    for (uint64_t &B : P->Written)
      B = R.u64();
    Pages.push_back(std::move(P)); // written in sorted order
  }
  if (R.u32() != SnapshotTrailer || !R.ok()) {
    Err = "snapshot: truncated blob";
    return false;
  }
  return true;
}
