//===- sim/Memory.cpp - Banks and the hierarchical interconnect -------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sim/Memory.h"
#include "isa/AddressMap.h"
#include "support/Compiler.h"
#include <cstdio>

using namespace lbp;
using namespace lbp::sim;

unsigned lbp::sim::minCrossCoreLatency(const SimConfig &Cfg) {
  // The three ways state owned by another core can be reached, each
  // bounded below by its first link traversal:
  //  * the direct forward link (forks, p_swcv, tokens),
  //  * a backward-line hop (joins, p_swre),
  //  * the router tree to a remote bank (first hop core -> r1; the
  //    bank's service port adds BankServiceLatency on top, but the hop
  //    alone already separates the cycles).
  unsigned L = Cfg.ForwardLinkLatency;
  if (Cfg.BackwardHopLatency < L)
    L = Cfg.BackwardHopLatency;
  if (Cfg.RouterHopLatency < L)
    L = Cfg.RouterHopLatency;
  return L < 1 ? 1 : L;
}

//===----------------------------------------------------------------------===//
// MemorySystem
//===----------------------------------------------------------------------===//

MemorySystem::MemorySystem(const SimConfig &Config)
    : BankSize(Config.globalBankSize()) {
  LocalBanks.assign(Config.NumCores,
                    std::vector<uint8_t>(isa::LocalSize, 0));
  GlobalBanks.assign(Config.NumCores, std::vector<uint8_t>(BankSize, 0));
}

void MemorySystem::writeCode(uint32_t Addr, uint8_t Byte) {
  if (Addr >= Code.size())
    Code.resize(Addr + 1, 0);
  Code[Addr] = Byte;
}

uint32_t MemorySystem::fetchWord(uint32_t Addr) const {
  uint32_t Word = 0;
  for (unsigned B = 0; B != 4; ++B) {
    uint32_t A = Addr + B;
    if (A < Code.size())
      Word |= static_cast<uint32_t>(Code[A]) << (8 * B);
  }
  return Word;
}

static uint32_t readBytes(const std::vector<uint8_t> &Bank, uint32_t Offset,
                          unsigned Width) {
  if (Offset + Width > Bank.size()) {
    std::fprintf(stderr, "bank read out of range: offset %u width %u size %zu\n", Offset, Width, Bank.size());
    std::abort();
  }
  uint32_t Value = 0;
  for (unsigned B = 0; B != Width; ++B)
    Value |= static_cast<uint32_t>(Bank[Offset + B]) << (8 * B);
  return Value;
}

static void writeBytes(std::vector<uint8_t> &Bank, uint32_t Offset,
                       uint32_t Value, unsigned Width) {
  assert(Offset + Width <= Bank.size() && "bank access out of range");
  for (unsigned B = 0; B != Width; ++B)
    Bank[Offset + B] = static_cast<uint8_t>(Value >> (8 * B));
}

uint32_t MemorySystem::readLocal(unsigned Core, uint32_t Offset,
                                 unsigned Width) const {
  if (Core >= LocalBanks.size()) { std::fprintf(stderr, "readLocal core %u of %zu\n", Core, LocalBanks.size()); std::abort(); }
  return readBytes(LocalBanks[Core], Offset, Width);
}

void MemorySystem::writeLocal(unsigned Core, uint32_t Offset, uint32_t Value,
                              unsigned Width) {
  writeBytes(LocalBanks[Core], Offset, Value, Width);
}

uint32_t MemorySystem::readGlobal(unsigned Bank, uint32_t Offset,
                                  unsigned Width) const {
  if (Bank >= GlobalBanks.size()) { std::fprintf(stderr, "readGlobal bank %u of %zu\n", Bank, GlobalBanks.size()); std::abort(); }
  return readBytes(GlobalBanks[Bank], Offset, Width);
}

void MemorySystem::writeGlobal(unsigned Bank, uint32_t Offset, uint32_t Value,
                               unsigned Width) {
  writeBytes(GlobalBanks[Bank], Offset, Value, Width);
}

//===----------------------------------------------------------------------===//
// Interconnect
//===----------------------------------------------------------------------===//

Interconnect::Interconnect(const SimConfig &Config)
    : Cfg(Config), NumCores(Config.NumCores) {
  unsigned NumR1 = (NumCores + 3) / 4;
  unsigned NumR2 = (NumR1 + 3) / 4;
  CoreUp.assign(NumCores, 0);
  CoreDown.assign(NumCores, 0);
  BankIn.assign(NumCores, 0);
  BankOut.assign(NumCores, 0);
  BankPort.assign(NumCores, 0);
  R1UpReq.assign(NumR1, 0);
  R1UpResp.assign(NumR1, 0);
  R1DownReq.assign(NumR1, 0);
  R1DownResp.assign(NumR1, 0);
  R2UpReq.assign(NumR2, 0);
  R2UpResp.assign(NumR2, 0);
  R2DownReq.assign(NumR2, 0);
  R2DownResp.assign(NumR2, 0);
  Forward.assign(NumCores, 0);
  Backward.assign(NumCores, 0);
  FwdCount.assign(NumCores, 0);
  BwdCount.assign(NumCores, 0);
  BankReqs.assign(NumCores, 0);
  BankWait.assign(NumCores, 0);
}

uint64_t Interconnect::hop(std::vector<uint64_t> &Links, unsigned Slot,
                           uint64_t At, unsigned Latency, LinkClass C) {
  // Reservations are kept in sub-cycle "slots": RouterLinkCapacity
  // transactions share each cycle of the link.
  assert(Slot < Links.size() && "link index out of range");
  uint64_t Cap = Cfg.RouterLinkCapacity;
  uint64_t AtSlot = At * Cap;
  uint64_t DepartSlot = AtSlot < Links[Slot] ? Links[Slot] : AtSlot;
  Links[Slot] = DepartSlot + 1;
  uint64_t DepartCycle = DepartSlot / Cap;
  Contention += DepartCycle - At;
  ContByClass[static_cast<unsigned>(C)] += DepartCycle - At;
  return DepartCycle + Latency;
}

uint64_t Interconnect::serialHop(std::vector<uint64_t> &Links,
                                 unsigned Slot, uint64_t At,
                                 unsigned Latency, LinkClass C) {
  assert(Slot < Links.size() && "link index out of range");
  uint64_t Depart = At;
  if (Links[Slot] > Depart) {
    Contention += Links[Slot] - Depart;
    ContByClass[static_cast<unsigned>(C)] += Links[Slot] - Depart;
    Depart = Links[Slot];
  }
  Links[Slot] = Depart + 1;
  return Depart + Latency;
}

Interconnect::GlobalPath Interconnect::routeGlobal(unsigned Core,
                                                   unsigned Bank,
                                                   uint64_t Now) {
  assert(Core < NumCores && Bank < NumCores && "route out of range");

  // Own bank: dedicated local port, fixed latency, no contention with
  // router traffic (the port is private to the core and only one
  // instruction issues per core per cycle).
  if (Core == Bank) {
    uint64_t Served = Now + Cfg.GlobalLocalPortLatency;
    return {Served, Served};
  }

  unsigned HopLat = Cfg.RouterHopLatency;
  unsigned G1 = Core / 4, G2 = Bank / 4; // r1 groups
  unsigned Q1 = G1 / 4, Q2 = G2 / 4;     // r2 quads

  // Request path up to the bank (request channels).
  uint64_t T = hop(CoreUp, Core, Now, HopLat, LinkClass::CoreUp);
  if (G1 != G2) {
    T = hop(R1UpReq, G1, T, HopLat, LinkClass::R1Up);
    if (Q1 != Q2) {
      T = hop(R2UpReq, Q1, T, HopLat, LinkClass::R2Up);
      T = hop(R2DownReq, Q2, T, HopLat, LinkClass::R2Down);
    }
    T = hop(R1DownReq, G2, T, HopLat, LinkClass::R1Down);
  }
  T = hop(BankIn, Bank, T, HopLat, LinkClass::BankIn);

  // Bank service through the router-side port (one request per cycle).
  ++BankReqs[Bank];
  uint64_t Served = serialHop(BankPort, Bank, T, Cfg.BankServiceLatency, LinkClass::BankPort);
  BankWait[Bank] += Served - Cfg.BankServiceLatency - T;

  // Response path back to the core (result channels).
  T = hop(BankOut, Bank, Served, HopLat, LinkClass::BankOut);
  if (G1 != G2) {
    T = hop(R1UpResp, G2, T, HopLat, LinkClass::R1Up);
    if (Q1 != Q2) {
      T = hop(R2UpResp, Q2, T, HopLat, LinkClass::R2Up);
      T = hop(R2DownResp, Q1, T, HopLat, LinkClass::R2Down);
    }
    T = hop(R1DownResp, G1, T, HopLat, LinkClass::R1Down);
  }
  T = hop(CoreDown, Core, T, HopLat, LinkClass::CoreDown);
  return {Served, T};
}

uint64_t Interconnect::routeForward(unsigned FromCore, unsigned ToCore,
                                    uint64_t Now) {
  if (FromCore == ToCore)
    return Now + 1;
  assert(ToCore == FromCore + 1 && "forward link only reaches the next core");
  ++FwdCount[FromCore];
  return serialHop(Forward, FromCore, Now, Cfg.ForwardLinkLatency, LinkClass::Forward);
}

uint64_t Interconnect::routeBackward(unsigned FromCore, unsigned ToCore,
                                     uint64_t Now) {
  assert(ToCore <= FromCore && "backward line only reaches prior cores");
  if (FromCore == ToCore)
    return Now + 1;
  uint64_t T = Now;
  for (unsigned C = FromCore; C != ToCore; --C) {
    ++BwdCount[C];
    T = serialHop(Backward, C, T, Cfg.BackwardHopLatency, LinkClass::Backward);
  }
  return T;
}

Interconnect::GlobalPath Interconnect::routeIo(uint64_t Now) {
  // Device controllers sit behind a constant-latency path; their single
  // shared port serializes concurrent accesses.
  uint64_t Arrive = Now + Cfg.GlobalLocalPortLatency;
  uint64_t Depart = Arrive;
  if (IoPort > Depart) {
    Contention += IoPort - Depart;
    Depart = IoPort;
  }
  IoPort = Depart + 1;
  uint64_t Served = Depart + 1;
  return {Served, Served + Cfg.GlobalLocalPortLatency};
}
