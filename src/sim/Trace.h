//===- sim/Trace.h - Cycle-deterministic event stream ----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every observable machine event is folded into an order-sensitive hash;
/// two runs of the same program on the same configuration are
/// cycle-deterministic exactly when their hashes match (the paper's
/// headline property). Optionally the events are also kept as text for
/// debugging and for the examples that print "at cycle C, core X, hart H
/// ..." statements like the paper's Section 1.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SIM_TRACE_H
#define LBP_SIM_TRACE_H

#include "support/EventHash.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lbp {
namespace sim {

/// Everything the trace distinguishes.
enum class EventKind : uint8_t {
  Commit,       ///< Instruction retired: (hart, pc).
  BankRead,     ///< Shared-bank read served: (bank, addr).
  BankWrite,    ///< Shared-bank write served: (bank, addr).
  HartStart,    ///< Hart began fetching: (hart, pc).
  HartEnd,      ///< Hart was freed: (hart).
  HartReserve,  ///< Hart allocated by p_fc/p_fn: (hart, byHart).
  TokenPass,    ///< Ending-hart signal moved: (fromHart, toHart).
  Join,         ///< Join message delivered: (toHart, resumePc).
  IoRead,       ///< Device register read: (addr, value).
  IoWrite,      ///< Device register write: (addr, value).
  Exit,         ///< Process exited: (hart).
  FaultInject,  ///< Planned fault fired: (kind, target). Only emitted
                ///< on perturbed runs, so fault-free hashes are
                ///< unchanged.
  MachineCheck, ///< Invariant checker tripped: (kind, hart).
};

/// One event captured in a per-shard staging buffer by the parallel
/// engine's workers. The hash is order-sensitive, so workers never fold
/// directly; the epoch merge replays staged events in the canonical
/// (cycle, delivery-index / core, program-order) order the serial loop
/// produces, via Trace::replay().
struct StagedEvent {
  uint64_t Cycle = 0;
  uint64_t A = 0;
  uint64_t B = 0;
  EventKind Kind = EventKind::Commit;
};

/// Event sink: always hashes, optionally records formatted lines.
class Trace {
  EventHash Hash;
  bool Recording = false;
  std::vector<std::string> Lines;

public:
  void setRecording(bool R) { Recording = R; }

  void event(uint64_t Cycle, EventKind Kind, uint64_t A, uint64_t B = 0);

  /// Folds a worker-staged event at its canonical merge position;
  /// byte-identical to the event() call the serial loop would have made.
  void replay(const StagedEvent &E) { event(E.Cycle, E.Kind, E.A, E.B); }

  /// Order-sensitive fingerprint of everything seen so far.
  uint64_t hash() const { return Hash.value(); }

  const std::vector<std::string> &lines() const { return Lines; }
};

} // namespace sim
} // namespace lbp

#endif // LBP_SIM_TRACE_H
