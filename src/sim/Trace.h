//===- sim/Trace.h - Cycle-deterministic event stream ----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Every observable machine event is folded into an order-sensitive hash;
/// two runs of the same program on the same configuration are
/// cycle-deterministic exactly when their hashes match (the paper's
/// headline property). Optionally the events are also kept as text for
/// debugging and for the examples that print "at cycle C, core X, hart H
/// ..." statements like the paper's Section 1.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SIM_TRACE_H
#define LBP_SIM_TRACE_H

#include "support/EventHash.h"

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

namespace lbp {
namespace sim {

/// Everything the trace distinguishes.
enum class EventKind : uint8_t {
  Commit,       ///< Instruction retired: (hart, pc).
  BankRead,     ///< Data-bank read served: (addr, value).
  BankWrite,    ///< Data-bank write served: (addr, storedValue).
  HartStart,    ///< Hart began fetching: (hart, pc).
  HartEnd,      ///< Hart was freed: (hart).
  HartReserve,  ///< Hart allocated by p_fc/p_fn: (hart, byHart).
  TokenPass,    ///< Ending-hart signal moved: (fromHart, toHart).
  Join,         ///< Join message delivered: (toHart, resumePc).
  IoRead,       ///< Device register read: (addr, value).
  IoWrite,      ///< Device register write: (addr, value).
  Exit,         ///< Process exited: (hart).
  FaultInject,  ///< Planned fault fired: (kind, target). Only emitted
                ///< on perturbed runs, so fault-free hashes are
                ///< unchanged.
  MachineCheck, ///< Invariant checker tripped: (kind, hart).
  Perturb,      ///< SimConfig::PerturbForTest fired: (hart = 0,
                ///< engine/threads payload). Only emitted when the test
                ///< knob is armed, so normal hashes are unchanged.
};

/// One event captured in a per-shard staging buffer by the parallel
/// engine's workers. The hash is order-sensitive, so workers never fold
/// directly; the epoch merge replays staged events in the canonical
/// (cycle, delivery-index / core, program-order) order the serial loop
/// produces, via Trace::replay().
struct StagedEvent {
  uint64_t Cycle = 0;
  uint64_t A = 0;
  uint64_t B = 0;
  EventKind Kind = EventKind::Commit;
};

/// Observer of the canonical event stream (docs/OBSERVABILITY.md).
/// Sinks see exactly the sequence the hash sees — every engine funnels
/// its events (staged or direct) through Trace::event() in canonical
/// order — and they run *after* hashing, so a sink can never perturb
/// the fingerprint. Implementations: obs::PerfCounters, the Perfetto /
/// JSONL timeline exporters, obs::PhaseProfiler.
class TraceSink {
public:
  virtual ~TraceSink() = default;
  virtual void onEvent(uint64_t Cycle, EventKind Kind, uint64_t A,
                       uint64_t B) = 0;

  /// Interval digest recorded (docs/OBSERVABILITY.md "Divergence
  /// triage"): \p Hash is the accumulator value after every event with
  /// cycle < \p Boundary and before any event with cycle >= \p
  /// Boundary. The bounded ring keeps only the newest entries; a sink
  /// sees every boundary, which is how the triage replayer captures the
  /// full digest sequence of a run.
  virtual void onDigest(uint64_t Boundary, uint64_t Hash) {
    (void)Boundary;
    (void)Hash;
  }
};

/// One recorded interval digest: the running hash at an interval
/// boundary (see TraceSink::onDigest for the exact cut semantics).
struct TraceDigest {
  uint64_t Boundary = 0;
  uint64_t Hash = 0;
};

/// Event sink: always hashes, fans out to registered TraceSinks,
/// optionally records formatted lines (bounded; see setLineCap),
/// optionally records interval digests of the running hash (bounded
/// ring; see configureDigests).
class Trace {
  EventHash Hash;
  bool Recording = false;
  uint64_t LineCap = 0; ///< 0 = unlimited.
  uint64_t DroppedLines = 0;
  std::vector<std::string> Lines;
  std::FILE *LineFile = nullptr; ///< Owned; see setLineFile.
  std::vector<TraceSink *> Sinks;

  // Interval digests (configureDigests). NextBoundary is the smallest
  // boundary not yet recorded, UINT64_MAX when digesting is off;
  // invariant: every folded event's cycle is < NextBoundary, so the
  // accumulator value is always the correct digest for any unrecorded
  // boundary (which is what makes flushDigests() exact).
  uint64_t Interval = 0;
  unsigned RingCap = 0;
  std::vector<TraceDigest> Ring; ///< Preallocated; never grows hot.
  uint64_t DigestTotal = 0;      ///< Boundaries recorded, incl. evicted.
  uint64_t NextBoundary = UINT64_MAX;

  // PerturbForTest (setPerturb). UINT64_MAX when unarmed or fired.
  uint64_t PerturbAt = UINT64_MAX;
  uint64_t PerturbPayload = 0;
  bool PerturbFiredFlag = false;

  /// min(NextBoundary, PerturbAt): the hot path pays one compare per
  /// event for both features combined.
  uint64_t Watermark = UINT64_MAX;

  void updateWatermark() {
    Watermark = NextBoundary < PerturbAt ? NextBoundary : PerturbAt;
  }

  /// Cold path of event(): fires the pending perturb event and records
  /// every digest boundary <= \p Cycle, in order.
  void crossWatermark(uint64_t Cycle);

  void recordDigest(uint64_t Boundary);

public:
  Trace() = default;
  // Copying would duplicate the owned file handle and fork the sink
  // fan-out; moving transfers both (sinks outlive the Trace by
  // contract, so the registered pointers stay valid).
  Trace(const Trace &) = delete;
  Trace &operator=(const Trace &) = delete;
  Trace(Trace &&O) noexcept;
  ~Trace();

  void setRecording(bool R) { Recording = R; }

  /// Caps the number of formatted lines kept in memory; lines past the
  /// cap are dropped and counted (droppedLines()). Hashing and sinks
  /// are unaffected — the cap bounds memory, never the fingerprint.
  void setLineCap(uint64_t Cap) { LineCap = Cap; }

  /// Streams formatted lines to \p Path instead of accumulating them in
  /// lines(); returns false when the file cannot be opened.
  bool setLineFile(const std::string &Path);

  /// Registers \p S as an observer of every subsequent event. The sink
  /// must outlive the Trace; ownership stays with the caller.
  void addSink(TraceSink *S) { Sinks.push_back(S); }

  /// Enables interval digests: at every multiple of \p IntervalCycles
  /// the running hash is recorded into a ring of \p Cap entries (and
  /// offered to sinks via onDigest). \p IntervalCycles == 0 disables.
  /// Digesting only *reads* the accumulator, so it is hash-neutral by
  /// construction, like the sink fan-out.
  void configureDigests(uint64_t IntervalCycles, unsigned Cap);

  /// Arms the PerturbForTest divergence seed: the first event at cycle
  /// >= \p Cycle is preceded by a synthetic Perturb event
  /// (cycle = \p Cycle, A = 0, B = \p Payload). Fires at most once per
  /// run chain (see perturbFired()); arming with UINT64_MAX disarms.
  void setPerturb(uint64_t Cycle, uint64_t Payload);

  /// True once the armed perturb event has been emitted. Part of the
  /// checkpointed run state: a restored run must not re-fire.
  bool perturbFired() const { return PerturbFiredFlag; }

  void event(uint64_t Cycle, EventKind Kind, uint64_t A, uint64_t B = 0);

  /// Records every not-yet-recorded digest boundary <= \p FinalCycle
  /// with the current hash. Called at the end of a run: by the
  /// NextBoundary invariant every folded event's cycle is below any
  /// unrecorded boundary, so the values recorded here are exactly the
  /// ones a longer run would have recorded lazily at its next events —
  /// interrupted-and-resumed runs produce the identical digest
  /// sequence.
  void flushDigests(uint64_t FinalCycle);

  uint64_t digestInterval() const { return Interval; }
  unsigned digestRingCap() const { return RingCap; }

  /// Total digests recorded so far, including entries evicted from the
  /// bounded ring.
  uint64_t digestCount() const { return DigestTotal; }

  /// Smallest boundary not yet recorded (UINT64_MAX when digesting is
  /// off); checkpointed so a resumed run continues the same sequence.
  uint64_t digestNextBoundary() const { return NextBoundary; }

  /// The retained ring contents, oldest first (at most digestRingCap()
  /// entries — the newest ones when the ring has wrapped).
  std::vector<TraceDigest> digestEntries() const;

  /// Checkpoint restore of the digest/perturb run state
  /// (sim/Snapshot.cpp); \p Entries is a digestEntries()-shaped tail.
  void restoreDigestState(uint64_t SavedNextBoundary, uint64_t Total,
                          const std::vector<TraceDigest> &Entries,
                          bool SavedPerturbFired);

  /// Folds a worker-staged event at its canonical merge position;
  /// byte-identical to the event() call the serial loop would have made.
  void replay(const StagedEvent &E) { event(E.Cycle, E.Kind, E.A, E.B); }

  /// Order-sensitive fingerprint of everything seen so far.
  uint64_t hash() const { return Hash.value(); }

  /// Checkpoint restore (sim/Snapshot.h): resets the accumulator to a
  /// captured value so the chain continues exactly where the snapshot
  /// left it. Formatted lines recorded before the snapshot are not part
  /// of the checkpoint — the hash chain is the identity of the prefix.
  void restoreHash(uint64_t V) { Hash.restore(V); }

  const std::vector<std::string> &lines() const { return Lines; }

  /// Formatted lines discarded after the cap was hit.
  uint64_t droppedLines() const { return DroppedLines; }
};

/// Stable lower-case name of an event kind ("commit", "bank-read", ...),
/// shared by the recorded lines and the timeline exporters.
const char *eventKindName(EventKind K);

} // namespace sim
} // namespace lbp

#endif // LBP_SIM_TRACE_H
