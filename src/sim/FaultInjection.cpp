//===- sim/FaultInjection.cpp - Deterministic transient faults --------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sim/FaultInjection.h"
#include "support/SplitMix64.h"
#include "support/StringUtils.h"

#include <algorithm>

using namespace lbp;
using namespace lbp::sim;

const char *lbp::sim::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::DropDelivery:
    return "drop";
  case FaultKind::DelayDelivery:
    return "delay";
  case FaultKind::BitFlip:
    return "bit-flip";
  case FaultKind::StuckBank:
    return "stuck-bank";
  }
  return "?";
}

static const char *className(uint8_t Mask) {
  switch (Mask) {
  case FaultClassToken:
    return "token";
  case FaultClassJoin:
    return "join";
  case FaultClassStart:
    return "start";
  case FaultClassRbFill:
    return "rb-fill";
  case FaultClassSlotFill:
    return "slot-fill";
  }
  return "?";
}

std::string FaultEvent::describe() const {
  std::string S = formatString("%s", faultKindName(Kind));
  if (Kind == FaultKind::StuckBank)
    S += formatString(" bank %u for %llu cycles", Param,
                      static_cast<unsigned long long>(Duration));
  else
    S += formatString(" %s-class delivery", className(ClassMask));
  S += formatString(" armed at cycle %llu",
                    static_cast<unsigned long long>(TriggerCycle));
  if (Fired)
    S += formatString(", fired at cycle %llu",
                      static_cast<unsigned long long>(FiredCycle));
  else
    S += ", never fired";
  return S;
}

FaultPlan::FaultPlan(const FaultPlanConfig &Config, unsigned NumCores) {
  Enabled = Config.enabled();
  if (!Enabled)
    return;

  SplitMix64 Rng(Config.Seed);
  uint64_t Span = Config.WindowEnd > Config.WindowBegin
                      ? Config.WindowEnd - Config.WindowBegin
                      : 1;
  auto Trigger = [&] { return Config.WindowBegin + Rng.nextBelow(Span); };

  // Drops may hit any protocol delivery. Delays are restricted to the
  // classes with at most one in-flight message per target (a late
  // slot-fill could overtake a later one to the same slot, turning a
  // timing fault into an undetectable value reordering — real links
  // keep FIFO order, so the model does too).
  static const uint8_t DropClasses[] = {FaultClassToken, FaultClassJoin,
                                        FaultClassStart, FaultClassRbFill,
                                        FaultClassSlotFill};
  static const uint8_t DelayClasses[] = {FaultClassToken, FaultClassJoin,
                                         FaultClassStart, FaultClassRbFill};
  // Flips target the payload-carrying classes (the token's payload is
  // trace-only; corrupting it would be invisible by construction).
  static const uint8_t FlipClasses[] = {FaultClassJoin, FaultClassStart,
                                        FaultClassRbFill,
                                        FaultClassSlotFill};

  for (unsigned I = 0; I != Config.Drops; ++I) {
    FaultEvent E;
    E.Kind = FaultKind::DropDelivery;
    E.TriggerCycle = Trigger();
    E.ClassMask = DropClasses[Rng.nextBelow(5)];
    Events.push_back(E);
  }
  for (unsigned I = 0; I != Config.Delays; ++I) {
    FaultEvent E;
    E.Kind = FaultKind::DelayDelivery;
    E.TriggerCycle = Trigger();
    E.ClassMask = DelayClasses[Rng.nextBelow(4)];
    E.Param = 1 + static_cast<uint32_t>(
                      Rng.nextBelow(Config.MaxDelay ? Config.MaxDelay : 1));
    Events.push_back(E);
  }
  for (unsigned I = 0; I != Config.BitFlips; ++I) {
    FaultEvent E;
    E.Kind = FaultKind::BitFlip;
    E.TriggerCycle = Trigger();
    E.ClassMask = FlipClasses[Rng.nextBelow(4)];
    E.Param = static_cast<uint32_t>(Rng.nextBelow(32));
    Events.push_back(E);
  }
  for (unsigned I = 0; I != Config.StuckBanks; ++I) {
    FaultEvent E;
    E.Kind = FaultKind::StuckBank;
    E.TriggerCycle = Trigger();
    E.Param = static_cast<uint32_t>(Rng.nextBelow(NumCores));
    E.Duration = Config.StuckDuration;
    Events.push_back(E);
  }

  std::stable_sort(Events.begin(), Events.end(),
                   [](const FaultEvent &A, const FaultEvent &B) {
                     return A.TriggerCycle < B.TriggerCycle;
                   });
}

FaultEvent *FaultPlan::match(uint64_t Now, uint8_t ClassBit) {
  for (FaultEvent &E : Events) {
    if (E.TriggerCycle > Now)
      break; // sorted: nothing later is armed yet
    if (E.Fired || E.Kind == FaultKind::StuckBank ||
        !(E.ClassMask & ClassBit))
      continue;
    E.Fired = true;
    E.FiredCycle = Now;
    return &E;
  }
  return nullptr;
}

uint64_t FaultPlan::stuckBankStall(unsigned Bank, uint64_t Now,
                                   bool &NewlyFired) {
  NewlyFired = false;
  for (FaultEvent &E : Events) {
    if (E.TriggerCycle > Now)
      break;
    if (E.Kind != FaultKind::StuckBank || E.Param != Bank)
      continue;
    if (Now >= E.TriggerCycle + E.Duration)
      continue;
    if (!E.Fired) {
      E.Fired = true;
      E.FiredCycle = Now;
      NewlyFired = true;
    }
    return E.TriggerCycle + E.Duration - Now;
  }
  return 0;
}

unsigned FaultPlan::firedCount() const {
  unsigned N = 0;
  for (const FaultEvent &E : Events)
    N += E.Fired;
  return N;
}
