//===- sim/Trace.cpp - Cycle-deterministic event stream ---------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sim/Trace.h"
#include "support/StringUtils.h"

using namespace lbp;
using namespace lbp::sim;

const char *lbp::sim::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Commit:
    return "commit";
  case EventKind::BankRead:
    return "bank-read";
  case EventKind::BankWrite:
    return "bank-write";
  case EventKind::HartStart:
    return "hart-start";
  case EventKind::HartEnd:
    return "hart-end";
  case EventKind::HartReserve:
    return "hart-reserve";
  case EventKind::TokenPass:
    return "token-pass";
  case EventKind::Join:
    return "join";
  case EventKind::IoRead:
    return "io-read";
  case EventKind::IoWrite:
    return "io-write";
  case EventKind::Exit:
    return "exit";
  case EventKind::FaultInject:
    return "fault-inject";
  case EventKind::MachineCheck:
    return "machine-check";
  }
  return "?";
}

Trace::Trace(Trace &&O) noexcept
    : Hash(O.Hash), Recording(O.Recording), LineCap(O.LineCap),
      DroppedLines(O.DroppedLines), Lines(std::move(O.Lines)),
      LineFile(O.LineFile), Sinks(std::move(O.Sinks)) {
  O.LineFile = nullptr;
}

Trace::~Trace() {
  if (LineFile)
    std::fclose(LineFile);
}

bool Trace::setLineFile(const std::string &Path) {
  if (LineFile)
    std::fclose(LineFile);
  LineFile = std::fopen(Path.c_str(), "w");
  return LineFile != nullptr;
}

void Trace::event(uint64_t Cycle, EventKind Kind, uint64_t A, uint64_t B) {
  Hash.addEvent(Cycle, static_cast<uint64_t>(Kind), A, B);
  // Sinks observe the exact hashed sequence and never feed back into it.
  for (TraceSink *S : Sinks)
    S->onEvent(Cycle, Kind, A, B);
  if (!Recording)
    return;
  std::string Line = formatString("cycle %llu: %s %llu %llu",
                                  static_cast<unsigned long long>(Cycle),
                                  eventKindName(Kind),
                                  static_cast<unsigned long long>(A),
                                  static_cast<unsigned long long>(B));
  if (LineFile) {
    std::fputs(Line.c_str(), LineFile);
    std::fputc('\n', LineFile);
    return;
  }
  if (LineCap != 0 && Lines.size() >= LineCap) {
    ++DroppedLines;
    return;
  }
  Lines.push_back(std::move(Line));
}
