//===- sim/Trace.cpp - Cycle-deterministic event stream ---------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sim/Trace.h"
#include "support/StringUtils.h"

using namespace lbp;
using namespace lbp::sim;

const char *lbp::sim::eventKindName(EventKind K) {
  switch (K) {
  case EventKind::Commit:
    return "commit";
  case EventKind::BankRead:
    return "bank-read";
  case EventKind::BankWrite:
    return "bank-write";
  case EventKind::HartStart:
    return "hart-start";
  case EventKind::HartEnd:
    return "hart-end";
  case EventKind::HartReserve:
    return "hart-reserve";
  case EventKind::TokenPass:
    return "token-pass";
  case EventKind::Join:
    return "join";
  case EventKind::IoRead:
    return "io-read";
  case EventKind::IoWrite:
    return "io-write";
  case EventKind::Exit:
    return "exit";
  case EventKind::FaultInject:
    return "fault-inject";
  case EventKind::MachineCheck:
    return "machine-check";
  case EventKind::Perturb:
    return "perturb";
  }
  return "?";
}

Trace::Trace(Trace &&O) noexcept
    : Hash(O.Hash), Recording(O.Recording), LineCap(O.LineCap),
      DroppedLines(O.DroppedLines), Lines(std::move(O.Lines)),
      LineFile(O.LineFile), Sinks(std::move(O.Sinks)),
      Interval(O.Interval), RingCap(O.RingCap), Ring(std::move(O.Ring)),
      DigestTotal(O.DigestTotal), NextBoundary(O.NextBoundary),
      PerturbAt(O.PerturbAt), PerturbPayload(O.PerturbPayload),
      PerturbFiredFlag(O.PerturbFiredFlag), Watermark(O.Watermark) {
  O.LineFile = nullptr;
}

Trace::~Trace() {
  if (LineFile)
    std::fclose(LineFile);
}

bool Trace::setLineFile(const std::string &Path) {
  if (LineFile)
    std::fclose(LineFile);
  LineFile = std::fopen(Path.c_str(), "w");
  return LineFile != nullptr;
}

void Trace::configureDigests(uint64_t IntervalCycles, unsigned Cap) {
  Interval = IntervalCycles;
  RingCap = Interval != 0 ? Cap : 0;
  Ring.clear();
  Ring.reserve(RingCap);
  DigestTotal = 0;
  NextBoundary = Interval != 0 ? Interval : UINT64_MAX;
  updateWatermark();
}

void Trace::setPerturb(uint64_t Cycle, uint64_t Payload) {
  PerturbAt = Cycle;
  PerturbPayload = Payload;
  updateWatermark();
}

void Trace::recordDigest(uint64_t Boundary) {
  uint64_t H = Hash.value();
  if (RingCap != 0) {
    if (Ring.size() < RingCap)
      Ring.push_back({Boundary, H});
    else
      Ring[DigestTotal % RingCap] = {Boundary, H};
  }
  ++DigestTotal;
  for (TraceSink *S : Sinks)
    S->onDigest(Boundary, H);
}

void Trace::crossWatermark(uint64_t Cycle) {
  if (Cycle >= PerturbAt) {
    uint64_t At = PerturbAt;
    PerturbAt = UINT64_MAX;
    PerturbFiredFlag = true;
    updateWatermark();
    // Recurse so boundaries <= At are recorded before the synthetic
    // event is folded — exactly as if the stream really contained it.
    event(At, EventKind::Perturb, 0, PerturbPayload);
  }
  while (Cycle >= NextBoundary) {
    recordDigest(NextBoundary);
    NextBoundary += Interval;
  }
  updateWatermark();
}

void Trace::flushDigests(uint64_t FinalCycle) {
  while (NextBoundary <= FinalCycle) {
    recordDigest(NextBoundary);
    NextBoundary += Interval;
  }
  updateWatermark();
}

std::vector<TraceDigest> Trace::digestEntries() const {
  std::vector<TraceDigest> Out;
  Out.reserve(Ring.size());
  // Before wraparound the ring is in order; after, the oldest retained
  // entry sits at the next overwrite position.
  size_t Start = Ring.size() < RingCap ? 0 : DigestTotal % RingCap;
  for (size_t I = 0; I != Ring.size(); ++I)
    Out.push_back(Ring[(Start + I) % Ring.size()]);
  return Out;
}

void Trace::restoreDigestState(uint64_t SavedNextBoundary, uint64_t Total,
                               const std::vector<TraceDigest> &Entries,
                               bool SavedPerturbFired) {
  NextBoundary = SavedNextBoundary;
  DigestTotal = Total;
  Ring.clear();
  Ring.reserve(RingCap);
  // Replace the ring with the saved tail, laid out so the next
  // overwrite position (DigestTotal % RingCap) stays consistent.
  if (RingCap != 0 && !Entries.empty()) {
    size_t N = Entries.size() < RingCap ? Entries.size() : RingCap;
    if (DigestTotal <= RingCap) {
      for (size_t I = 0; I != N; ++I)
        Ring.push_back(Entries[Entries.size() - N + I]);
    } else {
      Ring.resize(RingCap);
      size_t Start = DigestTotal % RingCap;
      for (size_t I = 0; I != N; ++I)
        Ring[(Start + I) % RingCap] = Entries[Entries.size() - N + I];
    }
  }
  PerturbFiredFlag = SavedPerturbFired;
  if (SavedPerturbFired)
    PerturbAt = UINT64_MAX;
  updateWatermark();
}

void Trace::event(uint64_t Cycle, EventKind Kind, uint64_t A, uint64_t B) {
  // One compare covers both cold features (digests + perturb); with
  // neither armed the watermark is UINT64_MAX and this never takes.
  if (Cycle >= Watermark)
    crossWatermark(Cycle);
  Hash.addEvent(Cycle, static_cast<uint64_t>(Kind), A, B);
  // Sinks observe the exact hashed sequence and never feed back into it.
  for (TraceSink *S : Sinks)
    S->onEvent(Cycle, Kind, A, B);
  if (!Recording)
    return;
  std::string Line = formatString("cycle %llu: %s %llu %llu",
                                  static_cast<unsigned long long>(Cycle),
                                  eventKindName(Kind),
                                  static_cast<unsigned long long>(A),
                                  static_cast<unsigned long long>(B));
  if (LineFile) {
    std::fputs(Line.c_str(), LineFile);
    std::fputc('\n', LineFile);
    return;
  }
  if (LineCap != 0 && Lines.size() >= LineCap) {
    ++DroppedLines;
    return;
  }
  Lines.push_back(std::move(Line));
}
