//===- sim/Trace.cpp - Cycle-deterministic event stream ---------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sim/Trace.h"
#include "support/StringUtils.h"

using namespace lbp;
using namespace lbp::sim;

static const char *kindName(EventKind K) {
  switch (K) {
  case EventKind::Commit:
    return "commit";
  case EventKind::BankRead:
    return "bank-read";
  case EventKind::BankWrite:
    return "bank-write";
  case EventKind::HartStart:
    return "hart-start";
  case EventKind::HartEnd:
    return "hart-end";
  case EventKind::HartReserve:
    return "hart-reserve";
  case EventKind::TokenPass:
    return "token-pass";
  case EventKind::Join:
    return "join";
  case EventKind::IoRead:
    return "io-read";
  case EventKind::IoWrite:
    return "io-write";
  case EventKind::Exit:
    return "exit";
  case EventKind::FaultInject:
    return "fault-inject";
  case EventKind::MachineCheck:
    return "machine-check";
  }
  return "?";
}

void Trace::event(uint64_t Cycle, EventKind Kind, uint64_t A, uint64_t B) {
  Hash.addEvent(Cycle, static_cast<uint64_t>(Kind), A, B);
  if (Recording)
    Lines.push_back(formatString("cycle %llu: %s %llu %llu",
                                 static_cast<unsigned long long>(Cycle),
                                 kindName(Kind),
                                 static_cast<unsigned long long>(A),
                                 static_cast<unsigned long long>(B)));
}
