//===- sim/ParallelEngine.cpp - Sharded host-parallel engine ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third engine (after the reference loop and the fast path): the
/// core line is split into contiguous shards simulated by host worker
/// threads, with all globally ordered side effects staged per shard and
/// replayed at the epoch merge in the serial loop's canonical order
/// (cycle, delivery index / core, program order). The trace hash, cycle
/// count, retired count, RunStatus, machine checks and fault-injection
/// behavior are bit-identical for every thread count and every shard
/// partition. See docs/PERFORMANCE.md ("Parallel engine").
///
/// Epochs are adaptive and multi-cycle (planWindow): when the delivery
/// wheel and the per-hart front-end scan show no cross-shard traffic
/// possible inside a lookahead window, every shard runs the whole
/// window between two barriers, and the merge walks the window cycle by
/// cycle. When the window degenerates to one cycle the engine falls
/// back to the legacy per-cycle two-phase cadence (deliveries barrier,
/// stages barrier), which handles gates, sends, fault plans and
/// I/O-dense stretches.
///
/// The core->shard partition is itself adaptive: every
/// SimConfig::ShardRebalanceInterval cycles the engine recomputes the
/// contiguous partition from per-core retire tallies. The tallies are
/// simulated state, so the partition sequence is a pure function of the
/// program — and the staging/replay argument makes every partition
/// produce the same observables anyway (the thread-sweep tests drive
/// InitialShardSkew to prove it).
///
//===----------------------------------------------------------------------===//

#include "sim/ParallelEngine.h"
#include "isa/AddressMap.h"
#include "sim/Machine.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <chrono>
#include <thread>

using namespace lbp;
using namespace lbp::sim;

namespace {
/// Spin briefly, then yield: the barriers are sub-microsecond when the
/// workers are on their own cpus, but oversubscribed hosts (CI, laptops)
/// need the scheduler's help to make progress.
inline void spinWait(unsigned &Backoff) {
  if (++Backoff > 64) {
    std::this_thread::yield();
    Backoff = 0;
  }
}

inline uint64_t nowNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}
} // namespace

namespace lbp {
namespace sim {

struct ParEngine {
  Machine &M;
  unsigned NumShards = 1;
  unsigned NumWorkers = 0; // spawned threads; the main thread also claims
  /// Sound multi-cycle window bound from the latency table (see
  /// planWindow); 1 disables windowing.
  unsigned WindowMax = 1;

  std::vector<ShardBuf> Bufs;
  std::vector<uint16_t> CoreShard; // core id -> owning shard
  std::vector<std::vector<uint32_t>> ShardDue; // shard -> due indices
  std::vector<int32_t> DueOwner; // due index -> shard (-1: serial/devices)
  std::vector<uint32_t> Cursor;  // per-shard per-cycle merge cursor

  // Multi-cycle window state (valid between runWindow and its merge).
  uint64_t WinBase = 0;
  unsigned WinLen = 0;
  /// Canonical delivery order per window offset: one shard id per
  /// delivery unit, wheel-slot order for the epoch-seeded entries,
  /// appended at replay time for window-local insertions (LocalSched).
  std::vector<std::vector<uint16_t>> DueOrder;
  std::vector<uint32_t> DueCursor;  // per-shard window due-unit cursor
  std::vector<uint32_t> CoreCursor; // per-shard window core-unit cursor

  // Deterministic rebalancing bookkeeping.
  std::vector<uint64_t> LastRetired; // per-core retire tally at last cut
  std::vector<uint64_t> Load;        // scratch: per-core load
  std::vector<unsigned> Bounds;      // scratch: partition boundaries
  uint64_t NextRebalance = UINT64_MAX;

  // Generation barrier. Publishing a new Phase value releases the
  // merged machine state to the workers; their Arrived increments
  // release the shard results back. All cross-thread data rides on
  // these two acquire/release edges, so the engine is race-free by
  // construction (the TSan job in CI holds it to that).
  std::atomic<uint32_t> Phase{0};
  std::atomic<uint32_t> Arrived{0};
  std::atomic<uint32_t> Claim{0};
  std::atomic<bool> Quit{false};
  uint8_t PhaseKind = 0; // 0: deliveries, 1: stages, 2: window
  std::vector<std::thread> Threads;

  explicit ParEngine(Machine &Mach);
  ~ParEngine();

  void workerLoop();
  void claimShards();
  void runPhase(uint8_t Kind);
  void prepPerCycle();
  void shardDeliveries(unsigned S);
  void shardStages(unsigned S);
  void shardWindow(unsigned S);
  void classifyDue();
  int32_t windowShardOf(const Delivery &D) const;
  unsigned planWindow(uint64_t Budget, bool Sweeps) const;
  bool runWindow(unsigned W);
  void mergeWindow();
  void applyOp(unsigned S, StagedOp &Op);
  void replayRange(unsigned S, ShardBuf::Range R);
  void mergeDeliveries();
  void mergeStages();
  bool foldDeltas();
  void setPartition();
  void maybeRebalance();
};

} // namespace sim
} // namespace lbp

ParEngine::ParEngine(Machine &Mach) : M(Mach) {
  const unsigned T = M.effectiveHostThreads();
  const unsigned N = M.Cfg.NumCores;
  // More shards than threads so idle workers can steal whole un-started
  // shards; the staging is keyed by shard, never by worker, so the
  // claim order cannot affect any result.
  NumShards = std::min(N, 4 * T);
  if (NumShards == 0)
    NumShards = 1;
  Bufs.resize(NumShards);
  CoreShard.resize(N);

  // Even initial split...
  Bounds.assign(NumShards + 1, 0);
  unsigned Base = N / NumShards, Rem = N % NumShards;
  for (unsigned S = 0; S != NumShards; ++S)
    Bounds[S + 1] = Bounds[S] + Base + (S < Rem ? 1 : 0);
  // ...optionally perturbed: each skew unit nudges one boundary by one
  // core (keeping every shard non-empty). The rebalancing-determinism
  // tests sweep this to prove placement never affects observables.
  for (unsigned U = 1; U <= M.Cfg.InitialShardSkew && NumShards > 1; ++U) {
    unsigned B = 1 + (U - 1) % (NumShards - 1);
    if (Bounds[B] - Bounds[B - 1] >= 2)
      --Bounds[B];
    else if (Bounds[B + 1] - Bounds[B] >= 2)
      ++Bounds[B];
  }
  setPartition();

  for (unsigned S = 0; S != NumShards; ++S) {
    Bufs[S].Ops.reserve(64);
    Bufs[S].DueRanges.reserve(32);
    Bufs[S].CoreRanges.reserve(Bufs[S].CoreEnd - Bufs[S].CoreBegin);
    Bufs[S].WinDue.resize(MaxEpochWindow + 1);
  }
  ShardDue.resize(NumShards);
  for (std::vector<uint32_t> &V : ShardDue)
    V.reserve(32);
  DueOwner.reserve(64);
  Cursor.assign(NumShards, 0);
  DueOrder.resize(MaxEpochWindow + 1);
  DueCursor.assign(NumShards, 0);
  CoreCursor.assign(NumShards, 0);

  LastRetired.assign(N, 0);
  for (unsigned C = 0; C != N; ++C)
    for (const Hart &H : M.Cores[C].Harts)
      LastRetired[C] += H.Retired;
  Load.resize(N);
  if (M.Cfg.ShardRebalanceInterval != 0 && NumShards > 1)
    NextRebalance = (M.Cycle / M.Cfg.ShardRebalanceInterval + 1) *
                    M.Cfg.ShardRebalanceInterval;

  // The sound window bound (docs/PERFORMANCE.md "Adaptive multi-cycle
  // epochs"): every cross-shard arrival produced inside a window must
  // land strictly after it. The three binding latencies are the global
  // bank's own-core port (GlobalLocalPortLatency), the shortest router
  // path (2 hops + bank service), and the earliest send a p_ret decoded
  // inside the window can commit (2 + AluLatency; p_swre cannot issue
  // in-window at all — it is hazard-class in WinClass).
  uint64_t Wm = M.Cfg.GlobalLocalPortLatency;
  Wm = std::min<uint64_t>(
      Wm, 2 * M.Cfg.RouterHopLatency + M.Cfg.BankServiceLatency);
  Wm = std::min<uint64_t>(Wm, 2 + M.Cfg.AluLatency);
  WindowMax = static_cast<unsigned>(
      std::max<uint64_t>(1, std::min<uint64_t>(Wm, MaxEpochWindow)));
  if (M.Cfg.EpochOverride != 0)
    WindowMax = 1; // forced legacy per-cycle cadence

  NumWorkers = T - 1;
  Threads.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ParEngine::~ParEngine() {
  Quit.store(true, std::memory_order_relaxed);
  Phase.fetch_add(1, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
}

void ParEngine::setPartition() {
  for (unsigned S = 0; S != NumShards; ++S) {
    Bufs[S].CoreBegin = Bounds[S];
    Bufs[S].CoreEnd = Bounds[S + 1];
    for (unsigned C = Bounds[S]; C != Bounds[S + 1]; ++C)
      CoreShard[C] = static_cast<uint16_t>(S);
  }
}

void ParEngine::maybeRebalance() {
  if (M.Cycle < NextRebalance)
    return;
  const uint64_t Interval = M.Cfg.ShardRebalanceInterval;
  NextRebalance = (M.Cycle / Interval + 1) * Interval;

  // Per-core load since the last cut (+1 keeps an all-idle stretch on
  // the even split and every prefix strictly increasing).
  const unsigned N = M.Cfg.NumCores;
  uint64_t Total = 0;
  for (unsigned C = 0; C != N; ++C) {
    uint64_t R = 0;
    for (const Hart &H : M.Cores[C].Harts)
      R += H.Retired;
    Load[C] = R - LastRetired[C] + 1;
    LastRetired[C] = R;
    Total += Load[C];
  }

  // Greedy contiguous partition: cut after the core whose load prefix
  // reaches the next ideal share, forcing a cut early enough that every
  // remaining shard keeps at least one core. Pure function of simulated
  // state (retire tallies), so the partition sequence — and through the
  // staging argument, everything else — is host-timing independent.
  Bounds[0] = 0;
  Bounds[NumShards] = N;
  uint64_t Acc = 0;
  unsigned S = 1;
  for (unsigned C = 0; C != N && S != NumShards; ++C) {
    Acc += Load[C];
    bool Forced = C + 1 == N - (NumShards - S);
    if (Forced || Acc * NumShards >= Total * S)
      Bounds[S++] = C + 1;
  }
  setPartition();
  ++M.EStats.Rebalances;
}

void ParEngine::workerLoop() {
  uint32_t Seen = 0;
  for (;;) {
    uint32_t P;
    unsigned Backoff = 0;
    while ((P = Phase.load(std::memory_order_acquire)) == Seen)
      spinWait(Backoff);
    Seen = P;
    if (Quit.load(std::memory_order_relaxed))
      return;
    claimShards();
    Arrived.fetch_add(1, std::memory_order_release);
  }
}

void ParEngine::claimShards() {
  for (;;) {
    uint32_t S = Claim.fetch_add(1, std::memory_order_relaxed);
    if (S >= NumShards)
      return;
    if (PhaseKind == 0)
      shardDeliveries(S);
    else if (PhaseKind == 1)
      shardStages(S);
    else
      shardWindow(S);
  }
}

void ParEngine::runPhase(uint8_t Kind) {
  PhaseKind = Kind;
  Claim.store(0, std::memory_order_relaxed);
  Arrived.store(0, std::memory_order_relaxed);
  Phase.fetch_add(1, std::memory_order_release);
  claimShards(); // the main thread works too
  unsigned Backoff = 0;
  while (Arrived.load(std::memory_order_acquire) != NumWorkers)
    spinWait(Backoff);
}

void ParEngine::prepPerCycle() {
  for (ShardBuf &B : Bufs) {
    B.clearEpoch(); // leaves WindowEnd == 0: per-cycle mode
    B.Now = M.Cycle;
  }
}

//===----------------------------------------------------------------------===//
// Legacy per-cycle phases
//===----------------------------------------------------------------------===//

void ParEngine::classifyDue() {
  const std::vector<Delivery> &Due = M.DueBuf;
  for (std::vector<uint32_t> &V : ShardDue)
    V.clear();
  DueOwner.clear();
  DueOwner.resize(Due.size());
  for (uint32_t I = 0; I != Due.size(); ++I) {
    const Delivery &D = Due[I];
    int32_t Owner;
    if (D.K == Delivery::Kind::IoAccess) {
      // Devices are global objects; their accesses run at the merge.
      Owner = -1;
    } else if (D.K == Delivery::Kind::BankAccess) {
      // Applied at the serving bank: owned by the core whose local
      // scratchpad (D.Value) or global bank it touches, not by the
      // requesting hart (whose state a BankAccess never mutates).
      unsigned Core =
          isa::isLocalAddr(D.Addr)
              ? D.Value
              : (D.Addr - isa::GlobalBase) >> M.Cfg.GlobalBankSizeLog2;
      Owner = CoreShard[Core];
    } else {
      Owner = CoreShard[D.HartId / HartsPerCore];
    }
    DueOwner[I] = Owner;
    if (Owner >= 0)
      ShardDue[Owner].push_back(I);
  }
}

void ParEngine::shardDeliveries(unsigned S) {
  ShardBuf &B = Bufs[S];
  TlStage = &B;
  for (uint32_t Idx : ShardDue[S]) {
    B.beginUnit();
    M.deliver(M.DueBuf[Idx]);
    // The serial loop checks Halted after every delivery.
    if (B.Ops.size() > B.UnitBegin)
      B.Ops.back().Check = true;
    B.endDueUnit(B.Now);
    if (B.Halted)
      break;
  }
  TlStage = nullptr;
}

void ParEngine::shardStages(unsigned S) {
  ShardBuf &B = Bufs[S];
  // Serial halt checkpoints sit after the commit, issue, decode and
  // fetch stages; mark the last op staged by the finishing stage so the
  // replay stops exactly where the reference loop would.
  auto FlagCheck = [&B] {
    if (B.Ops.size() > B.UnitBegin)
      B.Ops.back().Check = true;
  };
  TlStage = &B;
  const uint64_t Now = B.Now;
  for (unsigned CoreId = B.CoreBegin; CoreId != B.CoreEnd; ++CoreId) {
    Core &C = M.Cores[CoreId];
    B.beginUnit();
    if (M.FastRun && Now < M.CoreWake[CoreId]) {
      B.endCoreUnit(Now); // empty unit keeps the merge cursors aligned
      continue;
    }
    bool CoreActed = M.stageCommit(CoreId);
    FlagCheck();
    if (B.Halted) {
      B.endCoreUnit(Now);
      break;
    }
    CoreActed |= M.stageWriteback(CoreId);
    CoreActed |= M.stageIssue(CoreId);
    FlagCheck();
    if (B.Halted) {
      B.endCoreUnit(Now);
      break;
    }
    CoreActed |= M.stageDecode(CoreId);
    FlagCheck();
    if (B.Halted) {
      B.endCoreUnit(Now);
      break;
    }
    CoreActed |= M.stageFetch(CoreId);
    FlagCheck();
    if (B.Halted) {
      B.endCoreUnit(Now);
      break;
    }
    if (M.FastRun) {
      if (CoreActed) {
        M.CoreWake[CoreId] = Now;
        B.Acted = true;
      } else {
        M.CoreWake[CoreId] = M.coreWakeCycle(C, Now);
      }
    }
    B.endCoreUnit(Now);
  }
  TlStage = nullptr;
}

//===----------------------------------------------------------------------===//
// Adaptive multi-cycle windows
//===----------------------------------------------------------------------===//

int32_t ParEngine::windowShardOf(const Delivery &D) const {
  switch (D.K) {
  case Delivery::Kind::IoAccess:
    // Devices are global objects; an in-window I/O access would need
    // the serial merge — clip instead.
    return -1;
  case Delivery::Kind::BankAccess: {
    // Applied at the serving bank, but its response (RbFill/MemAck at
    // D.RespCycle) may land back inside the window, where the worker
    // consumes it locally — sound only when the requester's harts are
    // on the same shard as the bank.
    unsigned Server =
        isa::isLocalAddr(D.Addr)
            ? D.Value
            : (D.Addr - isa::GlobalBase) >> M.Cfg.GlobalBankSizeLog2;
    unsigned Requester = D.HartId / HartsPerCore;
    if (CoreShard[Server] != CoreShard[Requester])
      return -1;
    return CoreShard[Server];
  }
  default:
    // Start/token/join/rb/ack/slot messages mutate only the target
    // hart's core.
    return CoreShard[D.HartId / HartsPerCore];
  }
}

unsigned ParEngine::planWindow(uint64_t Budget, bool Sweeps) const {
  const uint64_t C0 = M.Cycle;
  uint64_t W = WindowMax;
  if (W > Budget)
    W = Budget;

  // A checker sweep may only land on the window's last cycle (the main
  // loop runs it right after the merge, exactly where the serial loop
  // would).
  if (Sweeps) {
    uint64_t Next = (C0 / M.Cfg.CheckInterval + 1) * M.Cfg.CheckInterval;
    if (Next - C0 < W)
      W = Next - C0;
  }

  // The serial loop tests the livelock guard after every cycle; never
  // run past the cycle where it could fire. (The test at C0 already
  // passed, so FireAt > C0.)
  if (M.Cfg.ProgressGuard < UINT64_MAX - M.LastProgress) {
    uint64_t FireAt = M.LastProgress + M.Cfg.ProgressGuard + 1;
    if (FireAt - C0 < W)
      W = FireAt - C0;
  }

  // The window seeds its deliveries from the wheel only; clip before
  // any far-future (overflow-heap) arrival.
  if (!M.Overflow.empty()) {
    uint64_t At = M.Overflow.front().At; // > C0: C0's dues already ran
    if (At - C0 - 1 < W)
      W = At - C0 - 1;
  }
  if (W <= 1)
    return static_cast<unsigned>(W);

  // Per-hart front-end scan: bound the window so no hazard-class
  // instruction (gate op or p_swre, see Machine::buildWindowClass) can
  // reach its issue stage inside it. Ops already decoded are covered by
  // the caller's GateCount/SendCount test; this scan covers the ib and
  // the fetch stream. A blocked front end (no pc, empty ib) cannot
  // issue anything new before C0+4 on any resume path.
  for (const Core &C : M.Cores) {
    for (const Hart &H : C.Harts) {
      if (H.State == HartState::Free)
        continue;
      uint64_t Wh;
      if (H.IbFull)
        Wh = 1 + M.windowClassAt(H.IbPc);
      else if (H.PcValid)
        Wh = std::min<uint64_t>(3, 2 + M.windowClassAt(H.Pc));
      else
        Wh = 3;
      if (Wh < W)
        W = Wh;
      if (W <= 1)
        return 1;
    }
  }

  // Wheel scan: every arrival due inside the window must be consumable
  // by one shard alone (windowShardOf); clip the window before the
  // first one that is not. (Entries in slot (C0+K) % WheelSize are due
  // exactly at C0+K: the wheel spans WheelSize cycles and K is tiny.)
  size_t DueInWindow = 0;
  for (uint64_t K = 1; K <= W; ++K) {
    const std::vector<Delivery> &Slot =
        M.Wheel[(C0 + K) % Machine::WheelSize];
    bool Clip = false;
    for (const Delivery &D : Slot)
      if (windowShardOf(D) < 0) {
        Clip = true;
        break;
      }
    if (Clip) {
      W = K - 1;
      break;
    }
    DueInWindow += Slot.size();
  }
  if (W <= 1)
    return static_cast<unsigned>(W);

  // Worth heuristic (deterministic): a window buys one barrier for W
  // cycles, but a near-idle machine is better served by the serial
  // loop and its quiescence fast-forward.
  unsigned Awake = M.Cfg.NumCores;
  if (M.FastRun) {
    Awake = 0;
    for (uint64_t Wake : M.CoreWake)
      Awake += Wake <= C0 + W ? 1 : 0;
  }
  constexpr size_t MinParallelDue = 4;
  constexpr unsigned MinParallelCores = 2;
  if (Awake < MinParallelCores && DueInWindow < MinParallelDue)
    return 1;
  return static_cast<unsigned>(W);
}

bool ParEngine::runWindow(unsigned W) {
  const uint64_t C0 = M.Cycle;
  WinBase = C0;
  WinLen = W;

  // Seed every shard's window state and pull the window's deliveries
  // off the wheel, recording the canonical (slot-order) due sequence.
  for (ShardBuf &B : Bufs) {
    B.clearEpoch();
    B.WindowBase = C0;
    B.WindowEnd = C0 + W;
    B.Now = C0;
  }
  for (std::vector<uint16_t> &V : DueOrder)
    V.clear();
  for (uint64_t K = 1; K <= W; ++K) {
    std::vector<Delivery> &Slot = M.Wheel[(C0 + K) % Machine::WheelSize];
    for (const Delivery &D : Slot) {
      int32_t S = windowShardOf(D);
      assert(S >= 0 && "window planner admitted a serial delivery");
      Bufs[S].WinDue[K].push_back(D);
      DueOrder[K].push_back(static_cast<uint16_t>(S));
    }
    M.WheelCount -= Slot.size();
    Slot.clear();
  }

  uint64_t T0 = nowNanos();
  runPhase(2);
  uint64_t T1 = nowNanos();
  mergeWindow();
  bool Acted = foldDeltas();
  uint64_t T2 = nowNanos();

  M.EStats.ShardNanos += T1 - T0;
  M.EStats.MergeNanos += T2 - T1;
  ++M.EStats.EpochsMerged;
  M.EStats.WindowCycles += W;
  ++M.EStats.WindowHist[std::min<unsigned>(W, MaxEpochWindow)];
  return Acted;
}

void ParEngine::shardWindow(unsigned S) {
  ShardBuf &B = Bufs[S];
  auto FlagCheck = [&B] {
    if (B.Ops.size() > B.UnitBegin)
      B.Ops.back().Check = true;
  };
  TlStage = &B;
  for (uint64_t Now = B.WindowBase + 1; Now <= B.WindowEnd && !B.Halted;
       ++Now) {
    B.Now = Now;
    unsigned K = static_cast<unsigned>(Now - B.WindowBase);
    // Deliveries first, as in the serial loop. Window-local responses
    // land in later offsets only (their arrival is strictly in the
    // future), so indexing stays valid while the vector grows.
    std::vector<Delivery> &Due = B.WinDue[K];
    for (size_t I = 0; I != Due.size(); ++I) {
      B.beginUnit();
      M.deliver(Due[I]);
      FlagCheck();
      B.endDueUnit(Now);
      if (B.Halted)
        break;
    }
    if (B.Halted)
      break;
    for (unsigned CoreId = B.CoreBegin; CoreId != B.CoreEnd; ++CoreId) {
      Core &C = M.Cores[CoreId];
      B.beginUnit();
      if (M.FastRun && Now < M.CoreWake[CoreId]) {
        B.endCoreUnit(Now);
        continue;
      }
      bool CoreActed = M.stageCommit(CoreId);
      FlagCheck();
      if (B.Halted) {
        B.endCoreUnit(Now);
        break;
      }
      CoreActed |= M.stageWriteback(CoreId);
      CoreActed |= M.stageIssue(CoreId);
      FlagCheck();
      if (B.Halted) {
        B.endCoreUnit(Now);
        break;
      }
      CoreActed |= M.stageDecode(CoreId);
      FlagCheck();
      if (B.Halted) {
        B.endCoreUnit(Now);
        break;
      }
      CoreActed |= M.stageFetch(CoreId);
      FlagCheck();
      if (B.Halted) {
        B.endCoreUnit(Now);
        break;
      }
      if (M.FastRun) {
        if (CoreActed) {
          M.CoreWake[CoreId] = Now;
          B.Acted = true;
        } else {
          M.CoreWake[CoreId] = M.coreWakeCycle(C, Now);
        }
      }
      B.endCoreUnit(Now);
    }
  }
  TlStage = nullptr;
}

void ParEngine::mergeWindow() {
  std::fill(DueCursor.begin(), DueCursor.end(), 0);
  std::fill(CoreCursor.begin(), CoreCursor.end(), 0);
  const uint64_t C0 = WinBase;
  const unsigned W = WinLen;
  for (unsigned K = 1; K <= W && !M.Halted; ++K) {
    M.Cycle = C0 + K;
    // Delivery units in canonical order. DueOrder[K] may grow while we
    // walk it — LocalSched replays append — but only for offsets
    // strictly beyond the op's creation cycle, never the current one.
    std::vector<uint16_t> &Ord = DueOrder[K];
    for (size_t I = 0; I != Ord.size() && !M.Halted; ++I) {
      unsigned S = Ord[I];
      ShardBuf &B = Bufs[S];
      if (DueCursor[S] >= B.DueRanges.size())
        break; // shard stopped early (its halt already replayed)
      ShardBuf::Range R = B.DueRanges[DueCursor[S]++];
      assert(R.Cyc == C0 + K && "window due replay out of step");
      replayRange(S, R);
    }
    if (M.Halted)
      break;
    for (unsigned C = 0; C != M.Cfg.NumCores && !M.Halted; ++C) {
      unsigned S = CoreShard[C];
      ShardBuf &B = Bufs[S];
      if (CoreCursor[S] >= B.CoreRanges.size())
        break; // shard stopped early (its halt already replayed)
      ShardBuf::Range R = B.CoreRanges[CoreCursor[S]++];
      assert(R.Cyc == C0 + K && "window core replay out of step");
      replayRange(S, R);
    }
  }
  // A halt leaves Cycle at the halting cycle, exactly like the serial
  // loop; otherwise the whole window was merged.
  if (!M.Halted)
    M.Cycle = C0 + W;
}

//===----------------------------------------------------------------------===//
// Replay
//===----------------------------------------------------------------------===//

void ParEngine::applyOp(unsigned S, StagedOp &Op) {
  ShardBuf &B = Bufs[S];
  switch (Op.Kind) {
  case StagedOp::K::Event:
    M.Tr.replay({M.Cycle, Op.Ev.A, Op.Ev.B, Op.EvK});
    return;
  case StagedOp::K::Schedule:
    M.schedule(Op.At, Op.D);
    return;
  case StagedOp::K::Mem:
    M.routeAndScheduleMem(Op.MI);
    return;
  case StagedOp::K::Forward:
    M.schedule(M.Net.routeForward(Op.A, Op.B, M.Cycle), Op.D);
    return;
  case StagedOp::K::Backward:
    M.schedule(M.Net.routeBackward(Op.A, Op.B, M.Cycle), Op.D);
    return;
  case StagedOp::K::Account:
    M.Ck.accountDelivered(M, Op.D);
    if (Op.B != 0)
      M.Ck.reportStaged(M, Op.CheckK, Op.A, std::move(B.Msgs[Op.MsgIdx]));
    return;
  case StagedOp::K::Fault:
    M.fault(std::move(B.Msgs[Op.MsgIdx]));
    return;
  case StagedOp::K::Exit:
    M.Halted = true;
    M.Status = RunStatus::Exited;
    M.Tr.event(M.Cycle, EventKind::Exit, Op.A);
    return;
  case StagedOp::K::Wake:
    M.wakeCore(Op.A, Op.At);
    return;
  case StagedOp::K::Retire:
    ++M.TotalRetired;
    return;
  case StagedOp::K::Stall:
    ++M.StallByCore[Op.A * Machine::NumStallSlots + Op.B];
    return;
  case StagedOp::K::RobHigh:
    M.Obs->raiseRobHighWater(Op.A, Op.B);
    return;
  case StagedOp::K::SlotHigh:
    M.Obs->raiseSlotHighWater(Op.A, Op.B);
    return;
  case StagedOp::K::LocalSched:
    // The worker already ran the wheel insert and consumes the delivery
    // inside the window itself; replay only the checker's schedule
    // accounting and record the shard in the canonical due order at the
    // arrival offset.
    if (M.Cfg.EnableCheckers) {
      M.Ck.onScheduled(M, Op.At, Op.D);
      if (M.Halted)
        return; // like serial schedule(): the delivery never lands
    }
    DueOrder[Op.At - WinBase].push_back(static_cast<uint16_t>(S));
    return;
  }
}

void ParEngine::replayRange(unsigned S, ShardBuf::Range R) {
  ShardBuf &B = Bufs[S];
  for (uint32_t I = R.Begin; I != R.End; ++I) {
    StagedOp &Op = B.Ops[I];
    applyOp(S, Op);
    if (Op.Check && M.Halted)
      return; // a serial halt checkpoint fired
  }
}

void ParEngine::mergeDeliveries() {
  std::fill(Cursor.begin(), Cursor.end(), 0);
  const size_t N = M.DueBuf.size();
  for (size_t I = 0; I != N && !M.Halted; ++I) {
    int32_t S = DueOwner[I];
    if (S < 0) {
      M.deliver(M.DueBuf[I]); // TlStage is null: full serial delivery
      continue;
    }
    ShardBuf &B = Bufs[S];
    if (Cursor[S] >= B.DueRanges.size())
      break; // shard stopped early (its halt already replayed)
    replayRange(S, B.DueRanges[Cursor[S]++]);
  }
}

void ParEngine::mergeStages() {
  std::fill(Cursor.begin(), Cursor.end(), 0);
  for (unsigned C = 0; C != M.Cfg.NumCores && !M.Halted; ++C) {
    unsigned S = CoreShard[C];
    ShardBuf &B = Bufs[S];
    if (Cursor[S] >= B.CoreRanges.size())
      break; // shard stopped early (its halt already replayed)
    replayRange(S, B.CoreRanges[Cursor[S]++]);
  }
}

bool ParEngine::foldDeltas() {
  bool Acted = false;
  for (ShardBuf &B : Bufs) {
    M.GateCount = static_cast<uint64_t>(
        static_cast<int64_t>(M.GateCount) + B.GateDelta);
    M.SendCount = static_cast<uint64_t>(
        static_cast<int64_t>(M.SendCount) + B.SendDelta);
    M.JoinEpoch += B.JoinEpochDelta;
    M.LocalAccesses += B.LocalAcc;
    M.RemoteAccesses += B.RemoteAcc;
    // Max-fold reproduces the serial "cycle of the last progress".
    if (B.ProgressCycle > M.LastProgress)
      M.LastProgress = B.ProgressCycle;
    Acted |= B.Acted;
  }
  return Acted;
}

//===----------------------------------------------------------------------===//
// The engine loop
//===----------------------------------------------------------------------===//

RunStatus Machine::runParallel(uint64_t MaxCycles) {
  assert(parallelEligible() && "parallel engine on an ineligible config");
  Status = RunStatus::MaxCycles;
  Halted = false;
  uint64_t Budget = MaxCycles;
  const bool Sweeps = Cfg.EnableCheckers && Cfg.CheckInterval != 0;

  // Below these sizes the barrier round trip costs more than the work;
  // either path produces identical observables (the thresholds are
  // deterministic functions of machine state), so this is purely a
  // scheduling decision.
  constexpr size_t MinParallelDue = 4;
  constexpr unsigned MinParallelCores = 2;

  ParEngine E(*this);
  EStats.WorkersUsed = E.NumWorkers + 1;
  if (EngineNote.empty() && effectiveHostThreads() < Cfg.HostThreads)
    EngineNote = formatString(
        "HostThreads = %u clamped to %u (host hardware concurrency); set "
        "SimConfig::OversubscribeHost to force the full worker count",
        Cfg.HostThreads, effectiveHostThreads());

  while (!Halted && Budget != 0) {
    E.maybeRebalance();

    // Multi-cycle windows need an empty cross-shard in-flight set: no
    // decoded gate/send ops, no fault plan (its triggers key on the
    // serial schedule cycle), no forced per-cycle cadence.
    unsigned W = 0;
    if (E.WindowMax > 1 && GateCount == 0 && SendCount == 0 &&
        !FPlan.enabled())
      W = E.planWindow(Budget, Sweeps);

    bool Acted = false;
    if (W >= 2) {
      Budget -= W;
      Acted = E.runWindow(W);
      if (Halted)
        break;
    } else {
      --Budget;
      ++Cycle;

      collectDue();
      bool Merged = false;
      if (!DueBuf.empty()) {
        if (DueBuf.size() < MinParallelDue) {
          for (const Delivery &D : DueBuf) {
            deliver(D);
            if (Halted)
              break;
          }
        } else {
          uint64_t T0 = nowNanos();
          E.prepPerCycle();
          E.classifyDue();
          E.runPhase(0);
          uint64_t T1 = nowNanos();
          E.mergeDeliveries();
          E.foldDeltas();
          EStats.ShardNanos += T1 - T0;
          EStats.MergeNanos += nowNanos() - T1;
          Merged = true;
        }
        if (Halted)
          break;
      }

      unsigned Awake = Cfg.NumCores;
      if (FastRun) {
        Awake = 0;
        for (uint64_t Wake : CoreWake)
          Awake += Wake <= Cycle ? 1 : 0;
      }
      if (Awake != 0) {
        // The serial gate: while any cross-core-sensitive op (fork,
        // p_swcv, fork-call) is decoded but not yet issued, the whole
        // stage phase runs in exact reference order. Sound because
        // issue precedes decode, so an op decoded in cycle T issues at
        // T+1 at the earliest — after this gate has been merged.
        if (GateCount != 0 || Awake < MinParallelCores) {
          if (GateCount != 0)
            ++EStats.GatedCycles;
          Acted = cycleStagesSerial();
        } else {
          uint64_t T0 = nowNanos();
          E.prepPerCycle();
          E.runPhase(1);
          uint64_t T1 = nowNanos();
          E.mergeStages();
          Acted = E.foldDeltas();
          EStats.ShardNanos += T1 - T0;
          EStats.MergeNanos += nowNanos() - T1;
          Merged = true;
        }
      }
      if (Merged) {
        ++EStats.EpochsMerged;
        ++EStats.WindowHist[1];
      } else {
        ++EStats.WindowHist[0];
      }
      if (Halted)
        break;
    }

    if (Sweeps && Cycle % Cfg.CheckInterval == 0) {
      Ck.sweep(*this);
      if (Halted)
        break;
    }

    if (Cycle - LastProgress > Cfg.ProgressGuard) {
      Status = RunStatus::Livelock;
      FaultMsg = livelockReport();
      break;
    }

    // Quiescence fast-forward, identical to run(): with every core
    // asleep the machine is frozen until the earliest timer, delivery,
    // livelock-guard or sweep concern.
    if (FastRun && !Acted) {
      uint64_t Target = nextDeliveryCycle();
      for (uint64_t Wake : CoreWake)
        if (Wake < Target)
          Target = Wake;
      uint64_t LivelockAt = Cfg.ProgressGuard >= UINT64_MAX - LastProgress
                                ? UINT64_MAX
                                : LastProgress + Cfg.ProgressGuard + 1;
      if (LivelockAt < Target)
        Target = LivelockAt;
      if (Sweeps) {
        uint64_t Concern = Ck.nextSweepConcern(*this);
        if (Concern < Target)
          Target = Concern;
      }
      if (Target > Cycle + 1) {
        uint64_t Span = Target - Cycle - 1;
        if (Span > Budget)
          Span = Budget;
        if (Span != 0) {
          if (Sweeps)
            Ck.onSkip(Cycle, Cycle + Span, Cfg.CheckInterval);
          Cycle += Span;
          Budget -= Span;
          EStats.SkippedCycles += Span;
        }
      }
    }
  }
  return Status;
}
