//===- sim/ParallelEngine.cpp - Sharded host-parallel engine ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The third engine (after the reference loop and the fast path): the
/// core line is split into contiguous shards simulated by host worker
/// threads. Each cycle has two parallel phases — deliveries, then
/// pipeline stages — separated by barriers; the interval between merges
/// is the epoch, and with the machine's derived cross-shard lookahead
/// of one cycle (minCrossCoreLatency() == 1 for every shipped latency
/// table) the per-cycle merge *is* the epoch merge. All globally
/// ordered side effects are staged per shard and replayed at the merge
/// in the serial loop's canonical order (cycle, delivery index / core,
/// program order), so the trace hash, cycle count, retired count,
/// RunStatus, machine checks and fault-injection behavior are
/// bit-identical for every thread count. See docs/PERFORMANCE.md
/// ("Parallel engine") for the correctness argument.
///
//===----------------------------------------------------------------------===//

#include "sim/ParallelEngine.h"
#include "isa/AddressMap.h"
#include "sim/Machine.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>

using namespace lbp;
using namespace lbp::sim;

namespace {
/// Spin briefly, then yield: the barriers are sub-microsecond when the
/// workers are on their own cpus, but oversubscribed hosts (CI, laptops)
/// need the scheduler's help to make progress.
inline void spinWait(unsigned &Backoff) {
  if (++Backoff > 64) {
    std::this_thread::yield();
    Backoff = 0;
  }
}
} // namespace

namespace lbp {
namespace sim {

struct ParEngine {
  Machine &M;
  unsigned NumShards = 1;
  unsigned NumWorkers = 0; // spawned threads; the main thread also claims

  std::vector<ShardBuf> Bufs;
  std::vector<uint16_t> CoreShard; // core id -> owning shard
  std::vector<std::vector<uint32_t>> ShardDue; // shard -> due indices
  std::vector<int32_t> DueOwner; // due index -> shard (-1: serial/devices)
  std::vector<uint32_t> Cursor;  // per-shard merge cursor

  // Generation barrier. Publishing a new Phase value releases the
  // merged machine state to the workers; their Arrived increments
  // release the shard results back. All cross-thread data rides on
  // these two acquire/release edges, so the engine is race-free by
  // construction (the TSan job in CI holds it to that).
  std::atomic<uint32_t> Phase{0};
  std::atomic<uint32_t> Arrived{0};
  std::atomic<uint32_t> Claim{0};
  std::atomic<bool> Quit{false};
  uint8_t PhaseKind = 0; // 0: deliveries, 1: stages
  std::vector<std::thread> Threads;

  explicit ParEngine(Machine &Mach);
  ~ParEngine();

  void workerLoop();
  void claimShards();
  void runPhase(uint8_t Kind);
  void shardDeliveries(unsigned S);
  void shardStages(unsigned S);
  void classifyDue();
  void applyOp(StagedOp &Op);
  void replayRange(ShardBuf &B, ShardBuf::Range R);
  void mergeDeliveries();
  void mergeStages();
  bool foldDeltas();
};

} // namespace sim
} // namespace lbp

ParEngine::ParEngine(Machine &Mach) : M(Mach) {
  const unsigned T = M.Cfg.HostThreads;
  const unsigned N = M.Cfg.NumCores;
  // More shards than threads so idle workers can steal whole un-started
  // shards; the staging is keyed by shard, never by worker, so the
  // claim order cannot affect any result.
  NumShards = std::min(N, 4 * T);
  if (NumShards == 0)
    NumShards = 1;
  Bufs.resize(NumShards);
  CoreShard.resize(N);
  unsigned Base = N / NumShards, Rem = N % NumShards, C0 = 0;
  for (unsigned S = 0; S != NumShards; ++S) {
    unsigned Len = Base + (S < Rem ? 1 : 0);
    Bufs[S].CoreBegin = C0;
    Bufs[S].CoreEnd = C0 + Len;
    for (unsigned C = C0; C != C0 + Len; ++C)
      CoreShard[C] = static_cast<uint16_t>(S);
    C0 += Len;
    Bufs[S].Ops.reserve(64);
    Bufs[S].DueRanges.reserve(32);
    Bufs[S].CoreRanges.reserve(Len);
  }
  ShardDue.resize(NumShards);
  for (std::vector<uint32_t> &V : ShardDue)
    V.reserve(32);
  DueOwner.reserve(64);
  Cursor.assign(NumShards, 0);
  NumWorkers = T - 1;
  Threads.reserve(NumWorkers);
  for (unsigned I = 0; I != NumWorkers; ++I)
    Threads.emplace_back([this] { workerLoop(); });
}

ParEngine::~ParEngine() {
  Quit.store(true, std::memory_order_relaxed);
  Phase.fetch_add(1, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
}

void ParEngine::workerLoop() {
  uint32_t Seen = 0;
  for (;;) {
    uint32_t P;
    unsigned Backoff = 0;
    while ((P = Phase.load(std::memory_order_acquire)) == Seen)
      spinWait(Backoff);
    Seen = P;
    if (Quit.load(std::memory_order_relaxed))
      return;
    claimShards();
    Arrived.fetch_add(1, std::memory_order_release);
  }
}

void ParEngine::claimShards() {
  for (;;) {
    uint32_t S = Claim.fetch_add(1, std::memory_order_relaxed);
    if (S >= NumShards)
      return;
    if (PhaseKind == 0)
      shardDeliveries(S);
    else
      shardStages(S);
  }
}

void ParEngine::runPhase(uint8_t Kind) {
  for (ShardBuf &B : Bufs)
    B.clearPhase();
  PhaseKind = Kind;
  Claim.store(0, std::memory_order_relaxed);
  Arrived.store(0, std::memory_order_relaxed);
  Phase.fetch_add(1, std::memory_order_release);
  claimShards(); // the main thread works too
  unsigned Backoff = 0;
  while (Arrived.load(std::memory_order_acquire) != NumWorkers)
    spinWait(Backoff);
}

void ParEngine::classifyDue() {
  const std::vector<Delivery> &Due = M.DueBuf;
  for (std::vector<uint32_t> &V : ShardDue)
    V.clear();
  DueOwner.clear();
  DueOwner.resize(Due.size());
  for (uint32_t I = 0; I != Due.size(); ++I) {
    const Delivery &D = Due[I];
    int32_t Owner;
    if (D.K == Delivery::Kind::IoAccess) {
      // Devices are global objects; their accesses run at the merge.
      Owner = -1;
    } else if (D.K == Delivery::Kind::BankAccess) {
      // Applied at the serving bank: owned by the core whose local
      // scratchpad (D.Value) or global bank it touches, not by the
      // requesting hart (whose state a BankAccess never mutates).
      unsigned Core =
          isa::isLocalAddr(D.Addr)
              ? D.Value
              : (D.Addr - isa::GlobalBase) >> M.Cfg.GlobalBankSizeLog2;
      Owner = CoreShard[Core];
    } else {
      Owner = CoreShard[D.HartId / HartsPerCore];
    }
    DueOwner[I] = Owner;
    if (Owner >= 0)
      ShardDue[Owner].push_back(I);
  }
}

void ParEngine::shardDeliveries(unsigned S) {
  ShardBuf &B = Bufs[S];
  TlStage = &B;
  for (uint32_t Idx : ShardDue[S]) {
    B.beginUnit();
    M.deliver(M.DueBuf[Idx]);
    // The serial loop checks Halted after every delivery.
    if (B.Ops.size() > B.UnitBegin)
      B.Ops.back().Check = true;
    B.endDueUnit();
    if (B.Halted)
      break;
  }
  TlStage = nullptr;
}

void ParEngine::shardStages(unsigned S) {
  ShardBuf &B = Bufs[S];
  // Serial halt checkpoints sit after the commit, issue, decode and
  // fetch stages; mark the last op staged by the finishing stage so the
  // replay stops exactly where the reference loop would.
  auto FlagCheck = [&B] {
    if (B.Ops.size() > B.UnitBegin)
      B.Ops.back().Check = true;
  };
  TlStage = &B;
  for (unsigned CoreId = B.CoreBegin; CoreId != B.CoreEnd; ++CoreId) {
    Core &C = M.Cores[CoreId];
    B.beginUnit();
    if (M.FastRun && M.Cycle < C.WakeAt) {
      B.endCoreUnit(); // empty unit keeps the merge cursors aligned
      continue;
    }
    bool CoreActed = M.stageCommit(CoreId);
    FlagCheck();
    if (B.Halted) {
      B.endCoreUnit();
      break;
    }
    CoreActed |= M.stageWriteback(CoreId);
    CoreActed |= M.stageIssue(CoreId);
    FlagCheck();
    if (B.Halted) {
      B.endCoreUnit();
      break;
    }
    CoreActed |= M.stageDecode(CoreId);
    FlagCheck();
    if (B.Halted) {
      B.endCoreUnit();
      break;
    }
    CoreActed |= M.stageFetch(CoreId);
    FlagCheck();
    if (B.Halted) {
      B.endCoreUnit();
      break;
    }
    if (M.FastRun) {
      if (CoreActed) {
        C.WakeAt = M.Cycle;
        B.Acted = true;
      } else {
        C.WakeAt = M.coreWakeCycle(C);
      }
    }
    B.endCoreUnit();
  }
  TlStage = nullptr;
}

void ParEngine::applyOp(StagedOp &Op) {
  switch (Op.Kind) {
  case StagedOp::K::Event:
    M.Tr.replay(Op.Ev);
    return;
  case StagedOp::K::Schedule:
    M.schedule(Op.At, Op.D);
    return;
  case StagedOp::K::Mem:
    M.routeAndScheduleMem(Op.MI);
    return;
  case StagedOp::K::Forward:
    M.schedule(M.Net.routeForward(Op.A, Op.B, M.Cycle), Op.D);
    return;
  case StagedOp::K::Backward:
    M.schedule(M.Net.routeBackward(Op.A, Op.B, M.Cycle), Op.D);
    return;
  case StagedOp::K::Account:
    M.Ck.accountDelivered(M, Op.D);
    if (Op.B != 0)
      M.Ck.reportStaged(M, Op.CheckK, Op.A, std::move(Op.Msg));
    return;
  case StagedOp::K::Fault:
    M.fault(std::move(Op.Msg));
    return;
  case StagedOp::K::Exit:
    M.Halted = true;
    M.Status = RunStatus::Exited;
    M.Tr.event(M.Cycle, EventKind::Exit, Op.A);
    return;
  case StagedOp::K::Wake:
    M.wakeCore(Op.A, Op.At);
    return;
  case StagedOp::K::Retire:
    ++M.TotalRetired;
    return;
  case StagedOp::K::Stall:
    ++M.StallByCore[Op.A * Machine::NumStallSlots + Op.B];
    return;
  case StagedOp::K::RobHigh:
    M.Obs->raiseRobHighWater(Op.A, Op.B);
    return;
  case StagedOp::K::SlotHigh:
    M.Obs->raiseSlotHighWater(Op.A, Op.B);
    return;
  }
}

void ParEngine::replayRange(ShardBuf &B, ShardBuf::Range R) {
  for (uint32_t I = R.Begin; I != R.End; ++I) {
    StagedOp &Op = B.Ops[I];
    applyOp(Op);
    if (Op.Check && M.Halted)
      return; // a serial halt checkpoint fired
  }
}

void ParEngine::mergeDeliveries() {
  std::fill(Cursor.begin(), Cursor.end(), 0);
  const size_t N = M.DueBuf.size();
  for (size_t I = 0; I != N && !M.Halted; ++I) {
    int32_t S = DueOwner[I];
    if (S < 0) {
      M.deliver(M.DueBuf[I]); // TlStage is null: full serial delivery
      continue;
    }
    ShardBuf &B = Bufs[S];
    if (Cursor[S] >= B.DueRanges.size())
      break; // shard stopped early (its halt already replayed)
    replayRange(B, B.DueRanges[Cursor[S]++]);
  }
}

void ParEngine::mergeStages() {
  std::fill(Cursor.begin(), Cursor.end(), 0);
  for (unsigned C = 0; C != M.Cfg.NumCores && !M.Halted; ++C) {
    unsigned S = CoreShard[C];
    ShardBuf &B = Bufs[S];
    if (Cursor[S] >= B.CoreRanges.size())
      break; // shard stopped early (its halt already replayed)
    replayRange(B, B.CoreRanges[Cursor[S]++]);
  }
}

bool ParEngine::foldDeltas() {
  bool Acted = false;
  for (ShardBuf &B : Bufs) {
    M.GateCount = static_cast<uint64_t>(
        static_cast<int64_t>(M.GateCount) + B.GateDelta);
    M.JoinEpoch += B.JoinEpochDelta;
    M.LocalAccesses += B.LocalAcc;
    M.RemoteAccesses += B.RemoteAcc;
    if (B.Progress)
      M.LastProgress = M.Cycle;
    Acted |= B.Acted;
  }
  return Acted;
}

RunStatus Machine::runParallel(uint64_t MaxCycles) {
  assert(parallelEligible() && "parallel engine on an ineligible config");
  Status = RunStatus::MaxCycles;
  Halted = false;
  uint64_t Budget = MaxCycles;
  const bool Sweeps = Cfg.EnableCheckers && Cfg.CheckInterval != 0;

  // Below these sizes the barrier round trip costs more than the work;
  // either path produces identical observables (the thresholds are
  // deterministic functions of machine state), so this is purely a
  // scheduling decision.
  constexpr size_t MinParallelDue = 4;
  constexpr unsigned MinParallelCores = 2;

  ParEngine E(*this);

  while (!Halted && Budget-- != 0) {
    ++Cycle;

    collectDue();
    if (!DueBuf.empty()) {
      if (DueBuf.size() < MinParallelDue) {
        for (const Delivery &D : DueBuf) {
          deliver(D);
          if (Halted)
            break;
        }
      } else {
        E.classifyDue();
        E.runPhase(0);
        E.mergeDeliveries();
        E.foldDeltas();
      }
      if (Halted)
        break;
    }

    unsigned Awake = Cfg.NumCores;
    if (FastRun) {
      Awake = 0;
      for (const Core &C : Cores)
        Awake += C.WakeAt <= Cycle ? 1 : 0;
    }
    bool Acted = false;
    if (Awake != 0) {
      // The serial gate: while any cross-core-sensitive op (fork,
      // p_swcv, fork-call) is decoded but not yet issued, the whole
      // stage phase runs in exact reference order. Sound because issue
      // precedes decode, so an op decoded in cycle T issues at T+1 at
      // the earliest — after this gate has been merged.
      if (GateCount != 0 || Awake < MinParallelCores) {
        Acted = cycleStagesSerial();
      } else {
        E.runPhase(1);
        E.mergeStages();
        Acted = E.foldDeltas();
      }
    }
    if (Halted)
      break;

    if (Sweeps && Cycle % Cfg.CheckInterval == 0) {
      Ck.sweep(*this);
      if (Halted)
        break;
    }

    if (Cycle - LastProgress > Cfg.ProgressGuard) {
      Status = RunStatus::Livelock;
      FaultMsg = livelockReport();
      break;
    }

    // Quiescence fast-forward, identical to run(): with every core
    // asleep the machine is frozen until the earliest timer, delivery,
    // livelock-guard or sweep concern.
    if (FastRun && !Acted) {
      uint64_t Target = nextDeliveryCycle();
      for (const Core &C : Cores)
        if (C.WakeAt < Target)
          Target = C.WakeAt;
      uint64_t LivelockAt = Cfg.ProgressGuard >= UINT64_MAX - LastProgress
                                ? UINT64_MAX
                                : LastProgress + Cfg.ProgressGuard + 1;
      if (LivelockAt < Target)
        Target = LivelockAt;
      if (Sweeps) {
        uint64_t Concern = Ck.nextSweepConcern(*this);
        if (Concern < Target)
          Target = Concern;
      }
      if (Target > Cycle + 1) {
        uint64_t Span = Target - Cycle - 1;
        if (Span > Budget)
          Span = Budget;
        if (Span != 0) {
          if (Sweeps)
            Ck.onSkip(Cycle, Cycle + Span, Cfg.CheckInterval);
          Cycle += Span;
          Budget -= Span;
        }
      }
    }
  }
  return Status;
}
