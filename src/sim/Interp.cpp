//===- sim/Interp.cpp - Sequential reference interpreter ---------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sim/Interp.h"
#include "isa/AddressMap.h"
#include "isa/Encoding.h"
#include "isa/HartRef.h"
#include "isa/Reg.h"
#include "sim/Exec.h"

#include <algorithm>

using namespace lbp;
using namespace lbp::isa;
using namespace lbp::sim;

Interp::Interp(const assembler::Program &Prog) : Prog(Prog) {
  Pc = Prog.entry();
  Regs[RegSP] = hartStackTop(0);
  Regs[RegT0] = HartRefExit;
}

const Interp::Page *Interp::findPage(uint32_t Base) const {
  if (LastPage && LastPage->Base == Base)
    return LastPage;
  auto It = std::lower_bound(
      Pages.begin(), Pages.end(), Base,
      [](const std::unique_ptr<Page> &P, uint32_t B) { return P->Base < B; });
  if (It == Pages.end() || (*It)->Base != Base)
    return nullptr;
  LastPage = It->get();
  return LastPage;
}

Interp::Page &Interp::pageFor(uint32_t Base) {
  if (LastPage && LastPage->Base == Base)
    return *const_cast<Page *>(LastPage);
  auto It = std::lower_bound(
      Pages.begin(), Pages.end(), Base,
      [](const std::unique_ptr<Page> &P, uint32_t B) { return P->Base < B; });
  if (It == Pages.end() || (*It)->Base != Base) {
    It = Pages.insert(It, std::make_unique<Page>());
    (*It)->Base = Base;
  }
  LastPage = It->get();
  return **It;
}

uint32_t Interp::readWord(uint32_t Addr) const {
  uint32_t A = Addr & ~3u;
  uint32_t Idx = (A % (PageWords * 4)) / 4;
  if (const Page *P = findPage(A - Idx * 4))
    if (P->Written[Idx / 64] >> (Idx % 64) & 1)
      return P->Words[Idx];
  return Prog.readWord(A);
}

void Interp::writeWord(uint32_t Addr, uint32_t Value) {
  uint32_t A = Addr & ~3u;
  uint32_t Idx = (A % (PageWords * 4)) / 4;
  Page &P = pageFor(A - Idx * 4);
  P.Words[Idx] = Value;
  P.Written[Idx / 64] |= 1ull << (Idx % 64);
}

uint32_t Interp::readMem(uint32_t Addr, unsigned Width,
                         bool SignExt) const {
  uint32_t Word = readWord(Addr);
  uint32_t Value = Word >> (8 * (Addr & 3u));
  if (Width < 4)
    Value &= (1u << (8 * Width)) - 1u;
  if (SignExt && Width < 4) {
    unsigned Shift = 32 - 8 * Width;
    Value = static_cast<uint32_t>(static_cast<int32_t>(Value << Shift) >>
                                  Shift);
  }
  return Value;
}

void Interp::writeMem(uint32_t Addr, uint32_t Value, unsigned Width) {
  uint32_t Word = readWord(Addr);
  unsigned Shift = 8 * (Addr & 3u);
  uint32_t Mask =
      Width == 4 ? 0xFFFFFFFFu : (((1u << (8 * Width)) - 1u) << Shift);
  writeWord(Addr, (Word & ~Mask) | ((Value << Shift) & Mask));
}

InterpStatus Interp::run(uint64_t MaxSteps) {
  while (MaxSteps-- != 0) {
    Instr I = decode(Prog.readWord(Pc));
    if (!I.isValid())
      return InterpStatus::BadInstr;
    ++Steps;

    const InstrInfo &Info = instrInfo(I.Op);
    uint32_t A = Regs[I.Rs1];
    uint32_t B = Regs[I.Rs2];
    uint32_t Imm = static_cast<uint32_t>(I.Imm);
    uint32_t Next = Pc + 4;

    switch (Info.Class) {
    case ExecClass::Alu:
    case ExecClass::Mul:
    case ExecClass::Div:
      if (I.Op == Opcode::RDCYCLE || I.Op == Opcode::RDINSTRET)
        setReg(I.Rd, static_cast<uint32_t>(Steps)); // 1 "cycle"/step
      else
        setReg(I.Rd, evalOp(I, A, B, Pc));
      break;

    case ExecClass::Branch:
      if (evalBranch(I.Op, A, B))
        Next = Pc + Imm;
      break;

    case ExecClass::Jump:
      setReg(I.Rd, Pc + 4);
      Next = I.Op == Opcode::JAL ? Pc + Imm : (A + Imm) & ~1u;
      break;

    case ExecClass::Load: {
      unsigned W = I.Op == Opcode::LW                            ? 4
                   : (I.Op == Opcode::LH || I.Op == Opcode::LHU) ? 2
                                                                 : 1;
      bool S = I.Op == Opcode::LB || I.Op == Opcode::LH;
      setReg(I.Rd, readMem(A + Imm, W, S));
      break;
    }

    case ExecClass::Store: {
      unsigned W = I.Op == Opcode::SW ? 4 : I.Op == Opcode::SH ? 2 : 1;
      writeMem(A + Imm, B, W);
      break;
    }

    case ExecClass::XPar:
      switch (I.Op) {
      case Opcode::P_SYNCM:
        break; // sequential memory is already ordered
      case Opcode::P_SET:
        setReg(I.Rd, hartRefSet(A, /*CurrentHart=*/0));
        break;
      case Opcode::P_MERGE:
        setReg(I.Rd, hartRefMerge(A, B));
        break;
      case Opcode::P_FC:
      case Opcode::P_FN:
        // Sequential semantics: the "allocated hart" is this one.
        setReg(I.Rd, 0);
        break;
      case Opcode::P_SWCV:
        // The continuation frame degenerates to the current stack.
        writeMem(Regs[RegSP] + Imm, B, 4);
        break;
      case Opcode::P_LWCV:
        setReg(I.Rd, readMem(Regs[RegSP] + Imm, 4, false));
        break;
      case Opcode::P_SWRE:
        if (Imm >= 0 && static_cast<unsigned>(Imm) < MailboxSlots)
          Mailbox[Imm] = B;
        break;
      case Opcode::P_LWRE:
        if (Imm >= 0 && static_cast<unsigned>(Imm) < MailboxSlots)
          setReg(I.Rd, Mailbox[Imm]);
        break;
      case Opcode::P_JAL:
        // Sequential fork: run the function now, continuation after.
        setReg(I.Rd, 0);
        Next = Pc + Imm;
        break;
      case Opcode::P_JALR:
        if (I.Rd == 0) {
          // The ending protocol, sequentially: exit or return to ra.
          if (A == 0 && B == HartRefExit)
            return InterpStatus::Exited;
          if (A != 0) {
            Next = A;
            break;
          }
          // A hart "ending" has no sequential continuation.
          return InterpStatus::Unsupported;
        }
        // Fork-call: call the function; the continuation (pc+4) is the
        // return address, which is the sequential order by definition.
        // (Set ra last: rd is conventionally ra itself.)
        setReg(I.Rd, 0);
        setReg(RegRA, Pc + 4);
        Next = B;
        break;
      default:
        return InterpStatus::Unsupported;
      }
      break;
    }
    Pc = Next;
  }
  return InterpStatus::MaxSteps;
}
