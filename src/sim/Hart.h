//===- sim/Hart.h - Per-hart and per-core microarchitectural state ----------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The state behind paper Figs. 11-12: per hart a pc, an instruction
/// buffer (ib), a reorder buffer, Tomasulo-style source capture (the
/// renaming table + rrf collapse into value capture since at most one
/// result-producing instruction of a hart is in flight), a single result
/// buffer (rb), the remote-result slots targeted by p_swre, and the
/// ending-signal token that serializes p_ret commits.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SIM_HART_H
#define LBP_SIM_HART_H

#include "isa/Instr.h"
#include "sim/Config.h"

#include <cstdint>
#include <vector>

namespace lbp {
namespace sim {

/// Lifecycle of a hart on the core line.
enum class HartState : uint8_t {
  Free,        ///< Available to p_fc/p_fn.
  Reserved,    ///< Allocated; its continuation frame is being filled.
  Running,     ///< Fetching/executing.
  WaitingJoin, ///< Team head parked by p_ret until the join arrives.
};

/// One reorder-buffer entry.
struct RobEntry {
  isa::Instr I;
  uint32_t Pc = 0;

  enum class St : uint8_t {
    Waiting, ///< Renamed; waiting for sources or issue conditions.
    Issued,  ///< In a functional unit or awaiting a memory response.
    Done,    ///< Result written back / effect performed; committable.
  } State = St::Waiting;

  bool SrcReady[2] = {true, true};
  uint32_t SrcVal[2] = {0, 0};
  int8_t SrcProducer[2] = {-1, -1}; ///< ROB index of the pending writer.

  uint64_t DoneCycle = 0; ///< Cycle at which St::Done takes effect.

  /// Rename stamp of this entry's destination write (see
  /// Hart::LastRenameSeq): the architectural register file is only
  /// updated by the newest renamer, which is what register renaming
  /// guarantees in the real pipeline.
  uint64_t RenameSeq = 0;
};

/// One hardware thread. Cache-line aligned: neighbouring harts are hot
/// state for (possibly different) shard workers, and a hart straddling
/// a line shared with another shard's hart is exactly the false sharing
/// the parallel engine's SoA layout exists to kill.
struct alignas(64) Hart {
  HartState State = HartState::Free;
  /// Cycle of the last State transition; the machine-check layer uses it
  /// to spot harts stuck in Reserved (a lost start message).
  uint64_t StateSince = 0;

  // Fetch.
  bool PcValid = false;
  uint32_t Pc = 0;
  uint64_t NoFetchUntil = 0;
  bool SyncmWait = false;

  // Instruction buffer between fetch and decode/rename.
  bool IbFull = false;
  uint32_t IbWord = 0;
  uint32_t IbPc = 0;

  // Architectural registers, written at writeback (no speculation, so
  // no rollback is ever needed).
  uint32_t Regs[32] = {0};
  /// ROB index of the youngest pending writer per register, or -1.
  int8_t RegProducer[32];
  /// Monotone rename stamps: NextRenameSeq is assigned to each decoded
  /// writer, LastRenameSeq[r] remembers register r's newest renamer so
  /// an out-of-order older writeback cannot clobber a younger value.
  uint64_t NextRenameSeq = 1;
  uint64_t LastRenameSeq[32] = {0};

  // Reorder buffer (circular).
  RobEntry Rob[RobEntries];
  unsigned RobHead = 0;
  unsigned RobCount = 0;

  // The single write-back result buffer.
  bool RbBusy = false;
  bool RbReady = false;
  uint64_t RbReadyCycle = 0;
  uint32_t RbValue = 0;
  int RbEntry = -1;

  // p_syncm bookkeeping: in-flight memory accesses and the word
  // addresses of in-flight stores (used for the conservative
  // load-after-store stall, see DESIGN.md).
  unsigned OutstandingMem = 0;
  std::vector<uint32_t> PendingStoreWords;

  // Ending-signal token (paper: "ending hart signal").
  bool Token = false;

  /// Decoded-but-not-yet-issued ops with same-cycle cross-core effects
  /// (p_fc/p_fn allocation, p_swcv's remote sp read, fork-call's remote
  /// state read). The parallel engine sums these into its serial gate:
  /// while any such op is in flight the next cycle runs on one thread
  /// in exact reference order. Not architectural state — the serial
  /// engines maintain it but never read it.
  uint8_t PendingGateOps = 0;

  /// Decoded-but-not-yet-performed send-class ops: p_swre (sends its
  /// value backward at issue) and p_ret (sends the token / join at
  /// commit). The parallel engine sums these into Machine::SendCount —
  /// while any is in flight a multi-cycle window could see a cross-shard
  /// arrival land inside itself, so the engine stays on per-cycle
  /// epochs. Decremented when the send happens (p_swre issue, p_ret
  /// commit) and settled by freeHart. Not architectural state.
  uint8_t PendingSendOps = 0;

  // Remote-result buffers (p_swre targets) plus overflow queue.
  bool SlotFull[ResultSlots] = {false};
  uint32_t SlotVal[ResultSlots] = {0};
  std::vector<std::pair<uint8_t, uint32_t>> SlotBacklog;

  uint64_t Retired = 0;

  Hart() {
    for (int8_t &P : RegProducer)
      P = -1;
  }

  unsigned robIndex(unsigned Pos) const {
    return (RobHead + Pos) % RobEntries;
  }

  /// Resets everything except the retired-instruction counter (which is
  /// a statistic of the run, not hart state).
  void clearForFree() {
    State = HartState::Free;
    StateSince = 0;
    PcValid = false;
    IbFull = false;
    SyncmWait = false;
    NoFetchUntil = 0;
    for (uint32_t &R : Regs)
      R = 0;
    for (int8_t &P : RegProducer)
      P = -1;
    NextRenameSeq = 1;
    for (uint64_t &S : LastRenameSeq)
      S = 0;
    RobHead = 0;
    RobCount = 0;
    RbBusy = RbReady = false;
    RbEntry = -1;
    Token = false;
    PendingGateOps = 0;
    PendingSendOps = 0;
    // A hart only reaches Free through a p_ret commit, which requires
    // OutstandingMem == 0, so no store acknowledgement can be in flight.
    OutstandingMem = 0;
    for (bool &F : SlotFull)
      F = false;
    SlotBacklog.clear();
    PendingStoreWords.clear();
  }
};

/// One core: four harts plus the per-stage round-robin pointers ("each
/// stage selects one active hart at every cycle", paper Sec. 5.2).
/// The per-core sleep cycle (WakeAt) deliberately does NOT live here:
/// it is the one word of core state written from outside the owning
/// shard (wakes), so the machine keeps it in a separate SoA vector
/// (Machine::CoreWake) where a wake never dirties the core's hot line.
struct alignas(64) Core {
  Hart Harts[HartsPerCore];
  uint8_t FetchRR = 0;
  uint8_t DecodeRR = 0;
  uint8_t IssueRR = 0;
  uint8_t WbRR = 0;
  uint8_t CommitRR = 0;
  /// p_fc/p_fn allocation pointer: the scan starts after the hart
  /// allocated last, so teams fill a core's harts in order even when an
  /// earlier member has already ended (stable placement, paper Fig. 3).
  uint8_t AllocRR = 0;
};

} // namespace sim
} // namespace lbp

#endif // LBP_SIM_HART_H
