//===- sim/Interp.h - Sequential reference interpreter ----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A plain sequential interpreter over an assembled program: the
/// "referential sequential order" the paper defines LBP's semantics
/// against (Sec. 1, footnote 3). It executes RV32IM in program order
/// with flat memory and treats the X_PAR instructions by their
/// sequential meaning:
///
///   * `p_syncm` is a no-op (memory is already ordered),
///   * `p_set`/`p_merge` manipulate hart-reference words with the
///     single hart id 0,
///   * `p_jal`/`p_jalr` degenerate to calls: the "forked" continuation
///     is simply executed after the function returns — which is exactly
///     the paper's definition of the referential order ("the one
///     observed when the code is run sequentially"),
///   * `p_swcv`/`p_lwcv` become stack stores/loads, `p_swre`/`p_lwre`
///     a sequential result mailbox.
///
/// Uses: a fast functional mode for tools (run_asm --fast), the oracle
/// for the random differential tests, and executable documentation of
/// the referential order.
///
/// Scope note: programs built on the full team runtime
/// (LBP_parallel_start) depend on per-hart continuation frames that
/// alias in a single sequential stack, so they are outside this model —
/// run those on the Machine. The interpreter covers RV32IM programs
/// plus direct, simple X_PAR use.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SIM_INTERP_H
#define LBP_SIM_INTERP_H

#include "asm/Program.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace lbp {
namespace sim {

enum class InterpStatus : uint8_t {
  Exited,      ///< p_ret with ra == 0, t0 == -1.
  MaxSteps,    ///< Budget exhausted.
  BadInstr,    ///< Undecodable word reached.
  Unsupported, ///< An X_PAR form with no sequential meaning here.
};

/// Sequential reference interpreter.
class Interp {
public:
  explicit Interp(const assembler::Program &Prog);

  /// Runs up to \p MaxSteps instructions.
  InterpStatus run(uint64_t MaxSteps);

  /// Executed-instruction count so far.
  uint64_t steps() const { return Steps; }

  uint32_t reg(unsigned R) const { return Regs[R & 31]; }
  void setReg(unsigned R, uint32_t V) {
    if ((R & 31) != 0)
      Regs[R & 31] = V;
  }

  /// Word-granular memory view (initialized data falls through to the
  /// program image).
  uint32_t readWord(uint32_t Addr) const;
  void writeWord(uint32_t Addr, uint32_t Value);

  uint32_t pc() const { return Pc; }

  /// Checkpointing (sim/Snapshot.h): serializes pc, registers, step
  /// count, the result mailbox and the written-memory page overlay.
  /// restore targets an Interp constructed over the same program; on
  /// success execution continues exactly where the snapshot was taken.
  void saveSnapshot(std::vector<uint8_t> &Out) const;
  bool restoreSnapshot(const std::vector<uint8_t> &Blob, std::string &Err);

private:
  const assembler::Program &Prog;
  uint32_t Pc;
  uint32_t Regs[32] = {0};

  // Written memory, overlaying the program image. Used to be a
  // std::map<uint32_t, uint32_t> (one tree node per word); the flat
  // paged store makes the per-access cost a binary search over a
  // handful of pages plus an array index, and stops allocating once
  // the working set's pages exist. Unwritten words fall through to the
  // image, so each page tracks written words in a bitmap.
  static constexpr uint32_t PageWords = 1024; // 4 KiB pages
  struct Page {
    uint32_t Base; ///< First byte address covered (page-aligned).
    uint32_t Words[PageWords];
    uint64_t Written[PageWords / 64] = {};
  };
  std::vector<std::unique_ptr<Page>> Pages; ///< Sorted by Base.
  /// Memoized last-touched page: accesses cluster (stack frames, array
  /// sweeps), so most lookups hit here and skip the binary search.
  /// Page objects are heap-stable (unique_ptr), so inserting into Pages
  /// never invalidates it; snapshot restore rebuilds Pages and resets it.
  mutable const Page *LastPage = nullptr;
  uint64_t Steps = 0;

  const Page *findPage(uint32_t Base) const;
  Page &pageFor(uint32_t Base);

  // Sequential result mailbox for p_swre/p_lwre.
  static constexpr unsigned MailboxSlots = 8;
  uint32_t Mailbox[MailboxSlots] = {0};

  uint32_t readMem(uint32_t Addr, unsigned Width, bool SignExt) const;
  void writeMem(uint32_t Addr, uint32_t Value, unsigned Width);
};

} // namespace sim
} // namespace lbp

#endif // LBP_SIM_INTERP_H
