//===- sim/Memory.h - Banks and the hierarchical interconnect --------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The LBP memory organization of paper Figs. 13-14:
///
///  * per-core code bank (every core holds the program image; modeled as
///    one shared read-only copy since the content is identical),
///  * per-core private local bank (hart stacks + continuation frames),
///  * per-core shared global bank with a local port (own-core accesses)
///    and a router-side port reached through the r1/r2/r3 tree.
///
/// The interconnect is modeled as bandwidth-limited links: each
/// unidirectional link moves one packet per cycle. Packets reserve their
/// whole path at injection time (age-based arbitration): for each hop,
/// departure = max(arrival, link's next-free cycle), which is then
/// advanced. This preserves per-link bandwidth and FIFO order and is
/// fully deterministic; see DESIGN.md.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SIM_MEMORY_H
#define LBP_SIM_MEMORY_H

#include "sim/Config.h"

#include <cstdint>
#include <vector>

namespace lbp {
namespace sim {

/// Conservative lookahead of the interconnect (docs/PERFORMANCE.md
/// "Parallel engine"): the minimum number of cycles between a core
/// injecting any message and that message mutating state owned by a
/// *different* core. Every cross-core path goes over a latency-bearing
/// link — the forward core-to-core link, a backward-line hop, or at
/// least one router-tree hop plus the bank service port — so the result
/// is >= 1 for every legal configuration, which is what lets the
/// parallel engine advance each shard a full epoch between merges.
unsigned minCrossCoreLatency(const SimConfig &Cfg);

struct SnapshotAccess; // checkpoint serializer (sim/Snapshot.cpp)

/// Raw storage behind the address map.
class MemorySystem {
  friend struct SnapshotAccess;
  std::vector<uint8_t> Code;
  std::vector<std::vector<uint8_t>> LocalBanks;  // one per core
  std::vector<std::vector<uint8_t>> GlobalBanks; // one per core
  uint32_t BankSize;

public:
  explicit MemorySystem(const SimConfig &Config);

  uint32_t bankSize() const { return BankSize; }
  unsigned numBanks() const {
    return static_cast<unsigned>(GlobalBanks.size());
  }

  /// Code image accessors (word granularity; reads beyond the image
  /// return zero, which decodes as an invalid instruction).
  void writeCode(uint32_t Addr, uint8_t Byte);
  uint32_t fetchWord(uint32_t Addr) const;
  uint32_t codeSize() const { return static_cast<uint32_t>(Code.size()); }

  /// Local scratchpad of \p Core; \p Offset is relative to LocalBase.
  uint32_t readLocal(unsigned Core, uint32_t Offset, unsigned Width) const;
  void writeLocal(unsigned Core, uint32_t Offset, uint32_t Value,
                  unsigned Width);

  /// Shared global bank \p Bank; \p Offset is relative to the bank base.
  uint32_t readGlobal(unsigned Bank, uint32_t Offset, unsigned Width) const;
  void writeGlobal(unsigned Bank, uint32_t Offset, uint32_t Value,
                   unsigned Width);
};

/// Path timing through the router tree and the direct core-to-core
/// links. Owns every link's next-free reservation cycle.
class Interconnect {
public:
  explicit Interconnect(const SimConfig &Config);

  /// Outcome of routing one shared-memory request.
  struct GlobalPath {
    uint64_t BankCycle;    ///< Cycle the bank port serves the access.
    uint64_t ResponseCycle; ///< Cycle the response reaches the core.
  };

  /// Reserves the round trip for a request from \p Core to global bank
  /// \p Bank injected at \p Now. Handles the own-bank local-port case.
  GlobalPath routeGlobal(unsigned Core, unsigned Bank, uint64_t Now);

  /// Reserves the forward link from \p Core to \p Core + 1; returns the
  /// arrival cycle of a message injected at \p Now. Same-core messages
  /// simply take one cycle.
  uint64_t routeForward(unsigned FromCore, unsigned ToCore, uint64_t Now);

  /// Reserves backward-line segments from \p FromCore down to \p ToCore
  /// (ToCore <= FromCore); returns the arrival cycle.
  uint64_t routeBackward(unsigned FromCore, unsigned ToCore, uint64_t Now);

  /// Constant-latency device access (request + response), no contention
  /// beyond the device port itself.
  GlobalPath routeIo(uint64_t Now);

  /// Total queueing delay accumulated by all routed packets (cycles
  /// spent waiting for busy links); exposed for the ablation benches.
  uint64_t contentionCycles() const { return Contention; }

  /// Resource classes for the contention breakdown.
  enum class LinkClass : uint8_t {
    CoreUp,
    CoreDown,
    BankIn,
    BankOut,
    BankPort,
    R1Up,
    R1Down,
    R2Up,
    R2Down,
    Forward,
    Backward,
    NumClasses
  };

  /// Queueing delay accumulated on one resource class.
  uint64_t contentionOn(LinkClass C) const {
    return ContByClass[static_cast<unsigned>(C)];
  }

  // Per-resource traffic counters (docs/OBSERVABILITY.md). Routing only
  // happens on the serial engines or inside the parallel engine's
  // merges, so plain increments are already deterministic; they are
  // always on because the routing work dwarfs one add.

  /// Packets injected on the forward link out of \p FromCore (cross-core
  /// forks, p_swcv, tokens; the same-core shortcut is not link traffic).
  uint64_t forwardPackets(unsigned FromCore) const {
    return FwdCount[FromCore];
  }

  /// Backward-line hops departing \p Core (a multi-hop join counts once
  /// per segment it occupies).
  uint64_t backwardPackets(unsigned Core) const { return BwdCount[Core]; }

  /// Requests served by \p Bank's router-side port (own-core accesses
  /// use the private local port and are not counted here).
  uint64_t bankPortRequests(unsigned Bank) const { return BankReqs[Bank]; }

  /// Cycles requests spent queued at \p Bank's router-side port.
  uint64_t bankPortWaitCycles(unsigned Bank) const {
    return BankWait[Bank];
  }

private:
  friend struct SnapshotAccess;
  const SimConfig Cfg;
  unsigned NumCores;

  // One next-free reservation per unidirectional channel. The r1/r2
  // trunks carry requests and results on separate channels (the paper's
  // r2 moves "4 incoming requests" and "4 outgoing request results" per
  // cycle), which also keeps the at-send reservation model honest:
  // within a channel every packet reserves at the same leg of its
  // journey, so reservation order tracks arrival order.
  std::vector<uint64_t> CoreUp;     // core -> its r1 (requests only)
  std::vector<uint64_t> CoreDown;   // r1 -> core (results only)
  std::vector<uint64_t> BankIn;     // r1 -> bank (requests only)
  std::vector<uint64_t> BankOut;    // bank -> r1 (results only)
  std::vector<uint64_t> BankPort;   // bank router-side service port
  std::vector<uint64_t> R1UpReq;    // r1 -> r2, request channel
  std::vector<uint64_t> R1UpResp;   // r1 -> r2, result channel
  std::vector<uint64_t> R1DownReq;  // r2 -> r1, request channel
  std::vector<uint64_t> R1DownResp; // r2 -> r1, result channel
  std::vector<uint64_t> R2UpReq;    // r2 -> r3, request channel
  std::vector<uint64_t> R2UpResp;   // r2 -> r3, result channel
  std::vector<uint64_t> R2DownReq;  // r3 -> r2, request channel
  std::vector<uint64_t> R2DownResp; // r3 -> r2, result channel
  std::vector<uint64_t> Forward;    // core c -> core c+1
  std::vector<uint64_t> Backward;   // core c -> core c-1
  uint64_t IoPort = 0;
  uint64_t Contention = 0;

  // Traffic counters behind the accessors above.
  std::vector<uint64_t> FwdCount;  // per from-core
  std::vector<uint64_t> BwdCount;  // per departing core
  std::vector<uint64_t> BankReqs;  // per bank, router-side port
  std::vector<uint64_t> BankWait;  // per bank, queued cycles

  /// One hop over the tree link at \p Slot (RouterLinkCapacity
  /// transactions per cycle): returns the arrival cycle of a packet
  /// presented at \p At.
  uint64_t hop(std::vector<uint64_t> &Links, unsigned Slot, uint64_t At,
               unsigned Latency, LinkClass C);

  /// One hop over a strictly one-per-cycle resource (bank ports, the
  /// direct forward/backward core links).
  uint64_t serialHop(std::vector<uint64_t> &Links, unsigned Slot,
                     uint64_t At, unsigned Latency, LinkClass C);

  uint64_t ContByClass[static_cast<unsigned>(LinkClass::NumClasses)] = {};
};

} // namespace sim
} // namespace lbp

#endif // LBP_SIM_MEMORY_H
