//===- sim/Config.h - LBP machine configuration ----------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Structural and timing parameters of a simulated LBP machine. The
/// paper's three evaluation sizes are 4, 16 and 64 cores (16/64/256
/// harts); the router tree instantiates r1 per 4 cores, r2 per 4 r1 and
/// r3 per 4 r2 exactly as its Figs. 13-14. Latencies are our calibration
/// (the paper does not publish them); every number is a parameter so the
/// ablation benches can sweep them.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SIM_CONFIG_H
#define LBP_SIM_CONFIG_H

#include <cstdint>
#include <string>

namespace lbp {
namespace sim {

/// Harts per core is fixed by the LBP design (Fig. 11/12).
constexpr unsigned HartsPerCore = 4;

/// Per-hart reorder buffer entries (the paper keeps the out-of-order
/// window minimal; 8 entries is enough to expose distant ILP through
/// multithreading without acting like a big OoO core).
constexpr unsigned RobEntries = 8;

/// Remote-result buffer slots per hart (p_swre/p_lwre targets).
constexpr unsigned ResultSlots = 8;

/// Deterministic transient-fault injection (docs/ROBUSTNESS.md). Every
/// fault is drawn from a SplitMix64 stream seeded with \c Seed, so the
/// same seed on the same configuration reproduces the same fault at the
/// same cycle — which is what makes injected failures replayable.
struct FaultPlanConfig {
  uint64_t Seed = 0;

  // How many events of each class the plan draws.
  unsigned Drops = 0;      ///< Deliveries that vanish on a link
                           ///< (token / join / start / rb-fill /
                           ///< slot-fill).
  unsigned Delays = 0;     ///< Deliveries that arrive late (only the
                           ///< classes for which lateness cannot reorder
                           ///< same-target messages; see
                           ///< docs/ROBUSTNESS.md).
  unsigned BitFlips = 0;   ///< Single-bit payload corruptions on a link.
  unsigned StuckBanks = 0; ///< Global-bank ports that stop serving for a
                           ///< window of cycles.

  /// Trigger cycles are drawn uniformly from [WindowBegin, WindowEnd).
  uint64_t WindowBegin = 1;
  uint64_t WindowEnd = 100000;

  /// Delay faults add 1..MaxDelay cycles to the arrival.
  unsigned MaxDelay = 64;

  /// Length of a stuck-bank window in cycles.
  uint64_t StuckDuration = 64;

  bool enabled() const {
    return Drops + Delays + BitFlips + StuckBanks != 0;
  }
};

struct SimConfig {
  /// Number of cores on the line; must be a power of 4 between 1 and 64
  /// for a full router tree (other values are allowed, the tree is then
  /// partially populated).
  unsigned NumCores = 4;

  /// log2 of the per-core shared global bank size in bytes.
  unsigned GlobalBankSizeLog2 = 16; // 64 KiB

  // Functional-unit latencies (issue to result-ready), in cycles.
  unsigned AluLatency = 1;
  unsigned MulLatency = 3;
  unsigned DivLatency = 16;

  /// Local scratchpad access latency (issue to result-ready).
  unsigned LocalMemLatency = 2;

  /// Own-core shared-bank access through the bank's local port.
  unsigned GlobalLocalPortLatency = 3;

  /// Per-hop link traversal latency in the router tree.
  unsigned RouterHopLatency = 1;

  /// Transactions each router-tree link moves per cycle per direction.
  /// The calibration that reproduces the paper's Fig. 21 ratios is 2
  /// (request + response channels per link pair); the ablation bench
  /// sweeps this.
  unsigned RouterLinkCapacity = 2;

  /// Bank service occupancy per router-side request (1 request/cycle).
  unsigned BankServiceLatency = 1;

  /// Direct forward link to the next core (forks, p_swcv, tokens).
  unsigned ForwardLinkLatency = 1;

  /// Per-core-hop latency on the backward line (joins, p_swre).
  unsigned BackwardHopLatency = 1;

  /// Abort threshold: cycles without any commit, delivery or hart start
  /// before the machine reports a livelock.
  uint64_t ProgressGuard = 1000000;

  /// Fast simulation path (docs/PERFORMANCE.md): quiescence
  /// fast-forward over empty cycles, per-core sleep/wake scheduling so
  /// the pipeline stages only run on cores with in-flight work, and a
  /// pre-decoded text segment. The event stream is bit-identical with
  /// the flag on or off — same traceHash(), cycles() and RunStatus —
  /// which the differential tests enforce; the reference path survives
  /// as the oracle. Stall-cause classification (CollectStallStats)
  /// needs every core-cycle observed, so it forces the reference
  /// scheduling loop regardless of this flag.
  bool FastPath = true;

  /// Record formatted trace events (hashing is always on).
  bool RecordTrace = false;

  /// Cap on the formatted trace lines kept in memory when RecordTrace
  /// is on (docs/PERFORMANCE.md "Trace memory"). 0 means unlimited;
  /// lines past the cap are dropped and counted in
  /// Trace::droppedLines(). Hashing is unaffected — the cap bounds
  /// memory, never the fingerprint.
  uint64_t TraceLineCap = 1u << 20;

  /// When non-empty (and RecordTrace is on), formatted lines stream to
  /// this file instead of accumulating in Machine::trace().lines().
  std::string TraceLineFile;

  /// Classify why each core issued nothing in a cycle (adds a per-cycle
  /// scan; off by default). Shard-safe: the per-core tallies are staged
  /// by the parallel engine's workers and merged in canonical order, so
  /// they are bit-identical at every HostThreads value.
  bool CollectStallStats = false;

  /// Deterministic performance counters (docs/OBSERVABILITY.md):
  /// attaches the obs::PerfCounters sink to the trace and arms the
  /// staged ROB/result-slot high-water hooks. Bit-identical across
  /// engines and thread counts, and provably hash-neutral (sinks run
  /// after hashing). Off by default; the disabled guard is one inlined
  /// branch per hook site, so disabled runs pay nothing.
  bool CollectCounters = false;

  /// Record every shared-global bank access (hart, address, width,
  /// read/write, barrier epoch) in Machine::memLog(). Off by default:
  /// the log grows with every access and exists for the static
  /// analyzer's dynamic race oracle (docs/ANALYSIS.md), not for normal
  /// simulation.
  bool CollectMemLog = false;

  /// Machine-check invariant checkers (docs/ROBUSTNESS.md). They are
  /// read-only observers of the machine state: a fault-free run produces
  /// the same trace hash with them on or off.
  bool EnableCheckers = true;

  /// Cycle stride of the periodic checker sweep (0 disables the sweep
  /// but keeps the per-delivery checks).
  uint64_t CheckInterval = 64;

  /// Host worker threads for the sharded parallel engine
  /// (docs/PERFORMANCE.md "Parallel engine"). 1 selects the serial
  /// engines (reference or fast path, per FastPath); >= 2 shards the
  /// core line across this many host threads and merges per-shard
  /// staging buffers at deterministic barriers. The observable run —
  /// traceHash(), cycles(), retired(), RunStatus, machine checks,
  /// fault-injection behavior, counters — is bit-identical for every
  /// value. Only the mem-log still needs the single-threaded reference
  /// access order: CollectMemLog forces the serial engines regardless
  /// of this setting, and run() records why in Machine::engineNote().
  unsigned HostThreads = 1;

  /// Epoch (merge-cadence) override for the parallel engine, in cycles.
  /// 0 means "adaptive": the engine computes a per-epoch lookahead
  /// window from in-flight state (docs/PERFORMANCE.md "Adaptive
  /// multi-cycle epochs") and merges only at window boundaries. Any
  /// nonzero value forces the legacy fixed cadence of 1 (per-cycle
  /// merges) — merging less often than the in-flight state allows
  /// would be unsound; merging more often is always correct.
  uint64_t EpochOverride = 0;

  /// By default the parallel engine clamps its worker count to the
  /// host's hardware concurrency: running 8 shard workers on 2 cpus
  /// only adds barrier latency, and the observable run is bit-identical
  /// at every worker count anyway. Set this to force exactly
  /// HostThreads workers regardless of the host (the thread-sweep
  /// tests do, so shard interleaving is really exercised).
  bool OversubscribeHost = false;

  /// Cycle stride at which the parallel engine recomputes the
  /// core→shard partition from per-core retire tallies (deterministic
  /// shard rebalancing; docs/PERFORMANCE.md). The tallies are simulated
  /// state, so the partition sequence — and therefore every staged
  /// merge — is a pure function of the program, never of host timing.
  /// 0 disables rebalancing.
  uint64_t ShardRebalanceInterval = 4096;

  /// Test knob: deterministically perturbs the *initial* core→shard
  /// partition (each unit moves one boundary core between neighbouring
  /// shards). Exists so the rebalancing-determinism tests can prove
  /// placement never affects output; 0 keeps the even split.
  unsigned InitialShardSkew = 0;

  /// Interval-digest stride in cycles (docs/OBSERVABILITY.md
  /// "Divergence triage"): every DigestInterval cycles the running
  /// order-sensitive trace hash is recorded into a bounded ring
  /// (Trace::digestEntries()) and offered to sinks. Purely an
  /// observation of the hash accumulator — provably hash-neutral, the
  /// fingerprint and final hash are unchanged with digests on or off.
  /// 0 disables digesting.
  uint64_t DigestInterval = 4096;

  /// Capacity of the interval-digest ring; when more than this many
  /// boundaries are crossed, the ring keeps the most recent entries and
  /// Trace::digestCount() still reports the total (triage attaches a
  /// sink to capture the full sequence when it needs it).
  unsigned DigestRingCap = 64;

  /// Deliberate divergence seed for tests and CI (docs/OBSERVABILITY.md
  /// "Divergence triage"): when nonzero, the first event at or after
  /// this cycle is preceded by a synthetic EventKind::Perturb event
  /// whose payload encodes the engine and requested host-thread count —
  /// so two runs that differ only in host-side knobs produce hash
  /// chains that diverge at exactly this cycle. Never set outside
  /// divergence-triage testing: it deliberately breaks the
  /// engine-bit-identity guarantee.
  uint64_t PerturbForTest = 0;

  /// Transient-fault injection plan; inactive by default.
  FaultPlanConfig Faults;

  unsigned numHarts() const { return NumCores * HartsPerCore; }
  uint32_t globalBankSize() const { return 1u << GlobalBankSizeLog2; }

  /// The paper's machine sizes.
  static SimConfig lbp(unsigned NumCores) {
    SimConfig C;
    C.NumCores = NumCores;
    return C;
  }
};

} // namespace sim
} // namespace lbp

#endif // LBP_SIM_CONFIG_H
