//===- sim/Machine.h - The LBP manycore machine ------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level simulator: a line of cores (Fig. 9), the banked memory
/// and router tree (Figs. 13-14), the forward/backward inter-core links,
/// memory-mapped devices (Fig. 17) and the global cycle loop. Everything
/// is deterministic: rerunning the same program on the same configuration
/// reproduces the cycle-by-cycle event stream bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SIM_MACHINE_H
#define LBP_SIM_MACHINE_H

#include "asm/Program.h"
#include "obs/PerfCounters.h"
#include "sim/Checker.h"
#include "sim/Config.h"
#include "sim/Device.h"
#include "sim/FaultInjection.h"
#include "sim/Hart.h"
#include "sim/Memory.h"
#include "sim/Trace.h"

#include <memory>
#include <string>

namespace lbp {
namespace sim {

/// Why a run() returned.
enum class RunStatus : uint8_t {
  Exited,    ///< p_ret with ra == 0, t0 == -1 committed.
  MaxCycles, ///< The cycle budget ran out first.
  Livelock,  ///< No progress for SimConfig::ProgressGuard cycles; the
             ///< per-hart wait report is in faultMessage().
  Fault,     ///< Invalid instruction, protocol violation or machine
             ///< check; see faultMessage() and machineChecks().
  Deadline,  ///< A caller-imposed cycle deadline expired (the fleet
             ///< runner's deterministic timeout classification,
             ///< src/fleet/). run() itself never returns this: a run
             ///< that exhausts its budget reports MaxCycles, and the
             ///< fleet promotes that to Deadline when the budget was
             ///< the campaign's per-run deadline. Distinct from
             ///< Livelock, which means the machine itself stopped
             ///< making progress.
};

/// Stable kebab-case name of a run status ("exited", "max-cycles",
/// "livelock", "fault", "deadline"), shared by reports and fleet JSON.
const char *runStatusName(RunStatus S);

/// One in-flight message on the machine's links: memory responses,
/// fork/join protocol messages, the ending-signal token. Every field is
/// fixed at injection time, which is what makes link parity and fault
/// injection well-defined (the whole future of a delivery is decided
/// when it enters a link).
struct Delivery {
  enum class Kind : uint8_t {
    RbFill,     ///< Load/remote value lands in the hart's rb.
    MemAck,     ///< Store acknowledged; OutstandingMem--.
    BankAccess, ///< Perform the read/write at the serving bank.
    IoAccess,   ///< Perform the device register access.
    StartHart,  ///< p_jal/p_jalr start message reaches the hart.
    Token,      ///< Ending-hart signal reaches the hart.
    JoinMsg,    ///< Join address (+ token) resumes the team head.
    SlotFill,   ///< p_swre value reaches a remote-result slot.
  } K;
  uint16_t HartId = 0; ///< Requesting/target hart.
  uint32_t Value = 0;
  uint32_t Addr = 0;
  uint64_t RespCycle = 0; ///< For Bank/IoAccess: response arrival.
  uint32_t StoreWord = 0; ///< Word address a MemAck retires.
  uint8_t Width = 4;
  uint8_t Slot = 0;
  bool IsWrite = false;
  bool SignExt = false;
  bool CountsMem = false; ///< RbFill also decrements OutstandingMem.
  uint8_t Parity = 0;     ///< Link parity, set by Machine::schedule().
};

/// A shared-memory access whose interconnect routing the parallel
/// engine's shard workers defer to the epoch merge: the hart-visible
/// state transition of a memory op never depends on the route outcome
/// (routing decides only *when* the Bank/IoAccess delivery fires), so a
/// worker applies the hart effects immediately and stages this intent.
/// The merge replays intents in the canonical core order, reproducing
/// the serial loop's link-reservation and fault-injection order exactly.
struct MemIntent {
  uint32_t Addr = 0;
  uint32_t Data = 0;       ///< Store payload.
  uint16_t SelfId = 0;     ///< Requesting hart.
  uint16_t CoreId = 0;     ///< Requesting core (route source).
  uint16_t Bank = 0;       ///< Global bank (unused for I/O).
  uint8_t Width = 4;
  bool SignExt = false;
  bool IsWrite = false;
  bool IsIo = false;
};

struct ShardBuf; // per-shard staging buffer (ParallelEngine.h)
struct ParEngine;

class Machine {
public:
  explicit Machine(const SimConfig &Config);

  /// Loads a program image: text into the code banks, data into the
  /// global (or local) banks they fall into. Hart 0 of core 0 starts at
  /// the program entry holding the ending-signal token.
  void load(const assembler::Program &Prog);

  /// Maps \p Device over [Base, Base + Size) in the I/O region.
  void addDevice(uint32_t Base, uint32_t Size,
                 std::unique_ptr<IoDevice> Device);

  /// Runs until exit, fault, livelock or \p MaxCycles.
  RunStatus run(uint64_t MaxCycles = UINT64_MAX);

  // -- Checkpointing (sim/Snapshot.h; docs/ROBUSTNESS.md) --------------
  /// Serializes the complete mutable run state — memory banks and code
  /// image, every hart and core, interconnect reservations and traffic
  /// counters, the delivery wheel and overflow heap, the fault-plan
  /// cursor, checker accounting, device state, the perf-counter set and
  /// the trace hash chain — into a versioned binary blob. Taking a
  /// snapshot never perturbs the run: save, continue, and the trace
  /// hash is bit-identical to a run that never snapshotted.
  void saveSnapshot(std::vector<uint8_t> &Out) const;

  /// Restores a saveSnapshot() blob into this machine. The machine must
  /// have been constructed with a behaviorally identical SimConfig (a
  /// config digest in the blob is verified; host-only knobs — FastPath,
  /// HostThreads, trace recording — may differ) and the same devices
  /// added in the same order. On success the machine continues exactly
  /// where the snapshot was taken: running it to completion yields the
  /// same trace hash, cycle count and counter snapshot as the
  /// uninterrupted run, on every engine. Returns false and fills \p Err
  /// on a malformed or mismatched blob, leaving no guarantee about the
  /// machine's state (discard it).
  bool restoreSnapshot(const std::vector<uint8_t> &Blob, std::string &Err);

  // Observation.
  /// Outcome of the last run() (MaxCycles before the first run).
  RunStatus status() const { return Status; }
  uint64_t cycles() const { return Cycle; }
  uint64_t retired() const { return TotalRetired; }
  double ipc() const {
    return Cycle == 0 ? 0.0
                      : static_cast<double>(TotalRetired) /
                            static_cast<double>(Cycle);
  }
  uint64_t retiredOnHart(unsigned HartId) const;
  uint64_t traceHash() const { return Tr.hash(); }
  const Trace &trace() const { return Tr; }
  const std::string &faultMessage() const { return FaultMsg; }

  /// Every invariant violation the machine-check layer detected (the
  /// first one also fails the run through RunStatus::Fault).
  const std::vector<MachineCheck> &machineChecks() const {
    return Ck.checks();
  }

  /// The run's fault-injection schedule (empty unless configured).
  const FaultPlan &faultPlan() const { return FPlan; }
  uint64_t contentionCycles() const { return Net.contentionCycles(); }
  const Interconnect &interconnect() const { return Net; }

  /// The classical single-hop lookahead derived from the latency table
  /// (minCrossCoreLatency), optionally tightened by
  /// SimConfig::EpochOverride; 1 with the shipped latencies. Kept as a
  /// reported diagnostic. The parallel engine's adaptive windows use a
  /// sharper bound — the minimum latency of any cross-shard arrival a
  /// window can *produce* (bank ports, routed paths, the earliest
  /// in-window p_ret commit), refined per epoch against in-flight state
  /// (docs/PERFORMANCE.md "Adaptive multi-cycle epochs") — so merges
  /// routinely cover several cycles even though this value is 1.
  uint64_t epochLength() const {
    uint64_t L = minCrossCoreLatency(Cfg);
    if (Cfg.EpochOverride != 0 && Cfg.EpochOverride < L)
      L = Cfg.EpochOverride;
    return L;
  }

  /// Why issue slots went unused (filled when CollectStallStats is on).
  /// One count per core-cycle that issued nothing, by dominant cause.
  /// The tallies are kept per core and staged through the parallel
  /// engine's merge, so they are bit-identical at every thread count.
  enum class StallCause : uint8_t {
    NoActiveWork,    ///< No in-flight instructions on the core at all.
    WaitingResponse, ///< Everything issued, awaiting memory/results.
    RbBusy,          ///< Ready work blocked on the single result buffer.
    SlotEmpty,       ///< p_lwre waiting for a producer.
    OperandsNotReady,///< Entries waiting on in-flight producers.
    NumCauses
  };
  /// Machine-wide stall cycles with cause \p C (sum over cores).
  uint64_t stallCycles(StallCause C) const;
  /// Stall cycles with cause \p C attributed to \p Core.
  uint64_t stallCycles(StallCause C, unsigned Core) const {
    return StallByCore[Core * NumStallSlots + static_cast<unsigned>(C)];
  }
  /// Core-cycles in which an instruction issued (sum over cores).
  uint64_t issuedCoreCycles() const;
  uint64_t issuedCoreCycles(unsigned Core) const {
    return StallByCore[Core * NumStallSlots + IssuedSlot];
  }
  uint64_t remoteAccesses() const { return RemoteAccesses; }
  uint64_t localAccesses() const { return LocalAccesses; }
  const SimConfig &config() const { return Cfg; }

  /// Which cycle loop run() selected (set at the start of every run).
  enum class EngineKind : uint8_t { Reference, FastPath, Parallel };
  EngineKind engineUsed() const { return Engine; }
  /// Stable display name of engineUsed().
  const char *engineName() const;
  /// Non-empty when a configuration combination silently changed the
  /// engine choice (e.g. CollectMemLog forcing the serial engines while
  /// HostThreads > 1) — the explicit diagnostic for what used to be a
  /// silent downgrade. The note names the exact SimConfig knob to flip.
  const std::string &engineNote() const { return EngineNote; }

  /// Host-side statistics of the parallel engine's epoch machinery
  /// (docs/PERFORMANCE.md "Adaptive multi-cycle epochs"). These describe
  /// how the run was *computed*, not what it computed: wall-clock splits
  /// vary run to run, so they are reported next to the counters (lbp_prof
  /// meta, bench JSON), never inside the deterministic counter set.
  struct EngineStats {
    uint64_t EpochsMerged = 0;  ///< Barrier+merge rounds executed.
    uint64_t WindowCycles = 0;  ///< Cycles advanced inside multi-cycle
                                ///< windows.
    uint64_t GatedCycles = 0;   ///< Cycles run serially (fork-class gate
                                ///< or the sparse-work heuristic).
    uint64_t SkippedCycles = 0; ///< Cycles skipped by quiescence
                                ///< fast-forward.
    /// Epochs by window length in cycles: index W counts the merges
    /// whose window spanned W cycles (index 0 = serial/gated rounds).
    uint64_t WindowHist[9] = {0};
    uint64_t Rebalances = 0;    ///< Shard-partition recomputations.
    uint64_t ShardNanos = 0;    ///< Wall time inside parallel phases.
    uint64_t MergeNanos = 0;    ///< Wall time inside epoch merges.
    unsigned WorkersUsed = 0;   ///< Effective host worker threads.
  };
  const EngineStats &engineStats() const { return EStats; }

  /// The deterministic counter set (SimConfig::CollectCounters;
  /// docs/OBSERVABILITY.md). Disabled and empty unless configured.
  const obs::PerfCounters &counters() const {
    static const obs::PerfCounters Disabled;
    return Obs ? *Obs : Disabled;
  }

  /// Registers an observer of the canonical trace-event stream (timeline
  /// exporters, phase profilers). Must be called before load() to see
  /// the boot events; the sink must outlive the machine's last run.
  void addTraceSink(TraceSink *S) { Tr.addSink(S); }

  /// Host-side memory access for test setup and result checking (not
  /// part of the simulated timing). Local addresses refer to \p Core.
  uint32_t debugReadWord(uint32_t Addr, unsigned Core = 0) const;
  void debugWriteWord(uint32_t Addr, uint32_t Value, unsigned Core = 0);

  /// Host-side register peek for tests.
  uint32_t debugReadReg(unsigned HartId, unsigned Reg) const;
  HartState hartState(unsigned HartId) const;

  /// One logged shared-global access (SimConfig::CollectMemLog). Epoch
  /// counts the join deliveries (team barriers) seen so far, so two
  /// accesses with different epochs are ordered by a barrier and can
  /// never race. InTeam is true when the access ran on a team member:
  /// any hart other than 0, or hart 0 between forking its team (it
  /// becomes the last member) and receiving the join back.
  struct MemAccess {
    uint64_t Cycle = 0;
    uint64_t Epoch = 0;
    uint16_t Hart = 0;
    uint32_t Addr = 0;
    uint8_t Width = 4;
    bool IsWrite = false;
    bool InTeam = false;
  };
  const std::vector<MemAccess> &memLog() const { return MemLog; }

private:
  friend class Checker;   // read-only sweeps over the machine state
  friend struct ParEngine; // the epoch orchestrator (ParallelEngine.cpp)
  friend struct SnapshotAccess; // checkpoint serializer (Snapshot.cpp)

  // -- Deliveries -----------------------------------------------------
  void schedule(uint64_t At, Delivery D);
  void deliver(const Delivery &D);
  /// Moves every delivery due this cycle from the wheel/overflow heap
  /// into DueBuf, preserving wheel-before-overflow arrival order.
  void collectDue();

  // -- Pipeline stages (per core, one hart each per cycle) -------------
  // Each returns true when the stage acted (selected a hart and changed
  // state); the fast path uses this to decide whether a core may sleep.
  bool stageCommit(unsigned CoreId);
  bool stageWriteback(unsigned CoreId);
  bool stageIssue(unsigned CoreId);
  bool stageDecode(unsigned CoreId);
  bool stageFetch(unsigned CoreId);

  // -- Issue helpers ---------------------------------------------------
  bool tryIssue(unsigned CoreId, unsigned HartInCore, unsigned RobIdx);
  bool issueMemOp(unsigned CoreId, unsigned HartInCore, Hart &H,
                  RobEntry &E, unsigned RobIdx);
  bool issueXPar(unsigned CoreId, unsigned HartInCore, Hart &H, RobEntry &E,
                 unsigned RobIdx);
  void commitRet(unsigned CoreId, unsigned HartInCore, Hart &H,
                 RobEntry &E);

  // -- Plumbing ---------------------------------------------------------
  Hart &hart(unsigned HartId) {
    return Cores[HartId / HartsPerCore].Harts[HartId % HartsPerCore];
  }
  const Hart &hart(unsigned HartId) const {
    return Cores[HartId / HartsPerCore].Harts[HartId % HartsPerCore];
  }
  unsigned hartId(unsigned CoreId, unsigned HartInCore) const {
    return CoreId * HartsPerCore + HartInCore;
  }
  void fault(std::string Msg);
  /// The livelock diagnosis: one wait-state line per non-free hart.
  std::string livelockReport() const;
  /// (Re)builds WinClass from the loaded code image (load and snapshot
  /// restore).
  void buildWindowClass();

  // -- Parallel engine (ParallelEngine.cpp; docs/PERFORMANCE.md) --------
  // The sharded engine runs the delivery phase and the stage phase of a
  // cycle on worker threads, one whole shard (contiguous core range)
  // per claim. Side effects with cross-shard or global order — trace
  // events, schedule() calls, interconnect reservations, checker
  // counters — are captured in per-shard staging buffers through the
  // hooks below (no-ops on the serial engines, where TlStage is null)
  // and replayed serially at the barrier in the reference loop's
  // canonical order, making every observable bit-identical.
  RunStatus runParallel(uint64_t MaxCycles);
  /// Arms SimConfig::PerturbForTest on the trace for this run (run()
  /// calls it once the engine is selected — the payload encodes it).
  void armPerturb();
  /// Worker threads the parallel engine would actually spin up:
  /// HostThreads clamped to the host's hardware concurrency unless
  /// SimConfig::OversubscribeHost lifts the clamp (oversubscribed shard
  /// workers only add barrier latency; the observable run is identical
  /// either way). A zero hardware_concurrency() means "unknown" and
  /// disables the clamp.
  unsigned effectiveHostThreads() const;
  /// Modes whose bookkeeping needs the single-thread reference order.
  /// Only the mem-log remains: it is one globally ordered vector of
  /// every access. Stall stats and counters are shard-safe (staged).
  bool parallelEligible() const {
    return effectiveHostThreads() > 1 && !Cfg.CollectMemLog;
  }
  /// The simulated cycle as seen by the code path currently executing:
  /// Machine::Cycle on the serial engines and during merges, the shard
  /// worker's window cycle inside a multi-cycle epoch. Every stage /
  /// delivery / issue helper computes latencies, wake cycles and event
  /// stamps from this, which is what keeps them window-correct without
  /// knowing about windows. Defined in Machine.cpp (needs ShardBuf).
  uint64_t now() const;
  /// One reference-order pass over every core's stages for the current
  /// cycle (shared by run() and the parallel engine's gated cycles).
  /// Returns true when any core acted; false also on halt.
  bool cycleStagesSerial();
  /// Trace event, staged when a shard worker is running.
  void emit(EventKind K, uint64_t A, uint64_t B = 0);
  /// schedule() with a precomputed arrival, staged under a worker.
  void stageOrSchedule(uint64_t At, const Delivery &D);
  /// Link reservation + schedule, staged under a worker (the merge
  /// replays them in canonical order, so reservation order — and with
  /// it every arrival cycle — matches the serial loop's).
  void routeForwardAndSchedule(unsigned FromCore, unsigned ToCore,
                               const Delivery &D);
  void routeBackwardAndSchedule(unsigned FromCore, unsigned ToCore,
                                const Delivery &D);
  /// Serial tail of a routed global/I-O access: reserve the path, apply
  /// a stuck-bank stall, schedule the Bank/IoAccess delivery.
  void routeAndScheduleMem(const MemIntent &In);
  /// LastProgress update (per-shard progress cycle under a worker).
  void noteProgress();
  /// Serial-gate bookkeeping (see isGateOp / GateCount).
  void noteGate(int Delta);
  /// Send-class bookkeeping (see Hart::PendingSendOps / SendCount).
  void noteSend(int Delta);
  /// Local/remote access statistics (per-shard deltas under a worker).
  void noteAccess(bool Local);
  /// Stall/issue tally for \p CoreId: \p Slot is a StallCause index or
  /// IssuedSlot. Staged under a worker (the merge's stop-on-halt then
  /// truncates exactly like the serial loop's mid-cycle break).
  void noteStall(unsigned CoreId, unsigned Slot);
  /// Staged max-updates of the counters' high-water marks. Only pushed
  /// when the worker-visible depth exceeds the merged high-water (reads
  /// of the merge-written arrays are barrier-ordered), so the op volume
  /// stays bounded; replay applies max(), making stale reads harmless.
  void noteRobHigh(unsigned HartId, unsigned Depth);
  void noteSlotHigh(unsigned HartId, unsigned Depth);
  /// Halted, including the current worker's staged halt.
  bool runHalted() const;
  /// wakeCore() that stages cross-shard wakes under a worker.
  void wake(unsigned CoreId, uint64_t At);
  /// Ops with same-cycle cross-core effects or reads (p_fc/p_fn hart
  /// allocation, p_swcv's remote sp read, fork-call's remote state
  /// read). While any is decoded but not yet issued, the next cycle
  /// runs gated (exact serial order) — sound because issue precedes
  /// decode in the stage order, so a gate op decoded in cycle T cannot
  /// issue before T+1, by which time the barrier has merged the gate
  /// counter.
  static bool isGateOp(const isa::Instr &I) {
    switch (I.Op) {
    case isa::Opcode::P_FC:
    case isa::Opcode::P_FN:
    case isa::Opcode::P_SWCV:
    case isa::Opcode::P_JAL:
      return true;
    case isa::Opcode::P_JALR:
      return I.Rd != 0; // rd == x0 is the ending protocol (hart-local)
    default:
      return false;
    }
  }

  // -- Fast path (SimConfig::FastPath; docs/PERFORMANCE.md) -------------
  /// Earliest cycle strictly comparable to \p Now at which any stage of
  /// \p C could act again, assuming no further deliveries: the minimum
  /// over the core's non-free harts of their pending timer expiries
  /// (NoFetchUntil, result-buffer ready, ROB-entry done). UINT64_MAX
  /// when the core is fully event-driven (only a delivery can make it
  /// act).
  uint64_t coreWakeCycle(const Core &C, uint64_t Now) const;
  /// Pulls \p CoreId's wake cycle forward to \p At (never pushes it
  /// back). The wake cycles live in their own SoA vector (CoreWake),
  /// not in Core: they are the one word of core state written from
  /// outside the owning shard, and keeping them out of the Core block
  /// stops a wake from bouncing the core's hot cache lines between
  /// shard workers.
  void wakeCore(unsigned CoreId, uint64_t At) {
    if (At < CoreWake[CoreId])
      CoreWake[CoreId] = At;
  }
  /// Cycle of the earliest pending delivery strictly after Cycle, or
  /// UINT64_MAX when none is in flight.
  uint64_t nextDeliveryCycle() const;
  /// Deliveries on the wheel/overflow map targeting \p HartId.
  unsigned pendingDeliveriesFor(unsigned HartId) const;
  void startHart(unsigned HartId, uint32_t StartPc);
  void freeHart(unsigned HartId);
  void sendToken(unsigned FromHart, unsigned ToHart);
  int allocateHart(unsigned CoreId, unsigned ByHart);
  void fillSlot(Hart &H, unsigned Slot, uint32_t Value);
  void finishRb(Hart &H, uint32_t Value, uint64_t ReadyCycle);
  bool loadBlockedByStore(const Hart &H, uint32_t Addr) const;
  IoDevice *findDevice(uint32_t Addr, uint32_t &Offset);

  SimConfig Cfg;
  MemorySystem Mem;
  Interconnect Net;
  Trace Tr;
  FaultPlan FPlan;
  Checker Ck;
  std::vector<Core> Cores;
  /// Fast-path sleep state, one entry per core (see wakeCore): the
  /// earliest cycle at which a stage on core i could act again. The
  /// scheduling loops skip a core's stages while the cycle is below its
  /// entry; deliveries and hart frees pull it forward. Spurious wakes
  /// are harmless (the stages no-op and the core re-sleeps); the
  /// reference path ignores it.
  std::vector<uint64_t> CoreWake;

  uint64_t Cycle = 0;
  uint64_t LastProgress = 0;
  RunStatus Status = RunStatus::MaxCycles;
  bool Halted = false;
  std::string FaultMsg;

  uint64_t TotalRetired = 0;
  /// In-flight cross-core-sensitive ops (sum of Hart::PendingGateOps);
  /// the parallel engine runs gated (serial) cycles while nonzero.
  uint64_t GateCount = 0;
  /// In-flight send-class ops (sum of Hart::PendingSendOps): p_swre
  /// before its issue, p_ret before its commit. While nonzero, a
  /// multi-cycle window could see a cross-shard arrival land inside
  /// itself, so the parallel engine stays on per-cycle epochs.
  uint64_t SendCount = 0;
  // Dynamic-oracle memory log (CollectMemLog; see memLog()).
  std::vector<MemAccess> MemLog;
  uint64_t JoinEpoch = 0;
  bool Hart0InTeam = false;
  uint64_t RemoteAccesses = 0;
  uint64_t LocalAccesses = 0;
  /// Per-core stall/issue tallies, laid out [core * NumStallSlots +
  /// slot] with one slot per StallCause plus IssuedSlot at the end.
  static constexpr unsigned NumStallSlots =
      static_cast<unsigned>(StallCause::NumCauses) + 1;
  static constexpr unsigned IssuedSlot =
      static_cast<unsigned>(StallCause::NumCauses);
  std::vector<uint64_t> StallByCore;
  void classifyIssueStall(unsigned CoreId);

  /// Deterministic counters (SimConfig::CollectCounters): allocated and
  /// attached as a trace sink by the constructor when enabled. On the
  /// heap so the registered sink pointer survives Machine moves; null
  /// doubles as the disabled fast-path guard at the hook sites.
  std::unique_ptr<obs::PerfCounters> Obs;
  EngineKind Engine = EngineKind::Reference;
  std::string EngineNote;

  // Delivery wheel with a far-future overflow heap. The overflow used
  // to be a std::multimap; the flat min-heap keeps the hot path free of
  // node allocations and pointer chasing. Seq preserves the multimap's
  // insertion order among equal arrival cycles, which the event stream
  // depends on.
  static constexpr uint64_t WheelSize = 1 << 14;
  std::vector<std::vector<Delivery>> Wheel;
  struct OverflowEntry {
    uint64_t At;
    uint64_t Seq;
    Delivery D;
  };
  /// Heap comparator ("later than" on (At, Seq)): std::push_heap with
  /// this predicate builds a min-heap on arrival order.
  static bool overflowLater(const OverflowEntry &L, const OverflowEntry &R) {
    return L.At != R.At ? L.At > R.At : L.Seq > R.Seq;
  }
  /// Min-heap on (At, Seq) via std::push_heap/pop_heap.
  std::vector<OverflowEntry> Overflow;
  uint64_t OverflowSeq = 0;
  /// Entries currently on the wheel (excluding Overflow); lets the fast
  /// path and the checker audit skip full wheel scans when it is empty.
  size_t WheelCount = 0;
  /// Per-cycle delivery staging buffer: run() swaps the due wheel slot
  /// into it instead of draining in place, so slot capacity is reused
  /// across laps instead of reallocated.
  std::vector<Delivery> DueBuf;

  /// Effective fast-path switch for this run: SimConfig::FastPath minus
  /// the modes that need every core-cycle observed (stall-cause stats).
  bool FastRun = false;
  /// Text segment decoded once at load() (FastPath): the instruction at
  /// word address W is DecodedText[W]. Valid because LBP code banks are
  /// read-only after load — stores into the code region fault.
  std::vector<isa::Instr> DecodedText;

  /// Per-text-word hazard lookahead for the parallel engine's window
  /// planner, built at load() alongside DecodedText. WinClass[W] is the
  /// number of hazard-free decodes guaranteed down the straight-line
  /// path starting at word W: 0 when the instruction itself is
  /// hazard-class (a gate op or p_swre — anything whose issue or send
  /// must not happen inside a window), 1 when it is clean but its
  /// statically known successor is hazardous (or unknown beyond a
  /// control transfer that delays the next fetch), 2 when both are
  /// clean. 2 is enough: with the window bound <= 3, an instruction
  /// first decoded at window cycle 2 cannot issue before the window
  /// closes. Read-only after load, like DecodedText.
  std::vector<uint8_t> WinClass;
  /// WinClass entry for byte address \p Pc; conservative 0 for
  /// unaligned / out-of-range pcs.
  uint8_t windowClassAt(uint32_t Pc) const {
    uint32_t W = Pc / 4;
    if ((Pc & 3) != 0 || W >= WinClass.size())
      return 0;
    return WinClass[W];
  }

  /// Parallel-engine epoch statistics (see engineStats()).
  EngineStats EStats;

  struct DeviceMapping {
    uint32_t Base;
    uint32_t Size;
    std::unique_ptr<IoDevice> Dev;
  };
  std::vector<DeviceMapping> Devices;
};

/// Stable kebab-case name of a stall cause ("no-active-work", ...),
/// shared by the examples, the profiler report and the counter JSON.
const char *stallCauseName(Machine::StallCause C);

} // namespace sim
} // namespace lbp

#endif // LBP_SIM_MACHINE_H
