//===- sim/Machine.h - The LBP manycore machine ------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The top-level simulator: a line of cores (Fig. 9), the banked memory
/// and router tree (Figs. 13-14), the forward/backward inter-core links,
/// memory-mapped devices (Fig. 17) and the global cycle loop. Everything
/// is deterministic: rerunning the same program on the same configuration
/// reproduces the cycle-by-cycle event stream bit for bit.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_SIM_MACHINE_H
#define LBP_SIM_MACHINE_H

#include "asm/Program.h"
#include "sim/Checker.h"
#include "sim/Config.h"
#include "sim/Device.h"
#include "sim/FaultInjection.h"
#include "sim/Hart.h"
#include "sim/Memory.h"
#include "sim/Trace.h"

#include <map>
#include <memory>
#include <string>

namespace lbp {
namespace sim {

/// Why a run() returned.
enum class RunStatus : uint8_t {
  Exited,    ///< p_ret with ra == 0, t0 == -1 committed.
  MaxCycles, ///< The cycle budget ran out first.
  Livelock,  ///< No progress for SimConfig::ProgressGuard cycles; the
             ///< per-hart wait report is in faultMessage().
  Fault,     ///< Invalid instruction, protocol violation or machine
             ///< check; see faultMessage() and machineChecks().
};

/// One in-flight message on the machine's links: memory responses,
/// fork/join protocol messages, the ending-signal token. Every field is
/// fixed at injection time, which is what makes link parity and fault
/// injection well-defined (the whole future of a delivery is decided
/// when it enters a link).
struct Delivery {
  enum class Kind : uint8_t {
    RbFill,     ///< Load/remote value lands in the hart's rb.
    MemAck,     ///< Store acknowledged; OutstandingMem--.
    BankAccess, ///< Perform the read/write at the serving bank.
    IoAccess,   ///< Perform the device register access.
    StartHart,  ///< p_jal/p_jalr start message reaches the hart.
    Token,      ///< Ending-hart signal reaches the hart.
    JoinMsg,    ///< Join address (+ token) resumes the team head.
    SlotFill,   ///< p_swre value reaches a remote-result slot.
  } K;
  uint16_t HartId = 0; ///< Requesting/target hart.
  uint32_t Value = 0;
  uint32_t Addr = 0;
  uint64_t RespCycle = 0; ///< For Bank/IoAccess: response arrival.
  uint32_t StoreWord = 0; ///< Word address a MemAck retires.
  uint8_t Width = 4;
  uint8_t Slot = 0;
  bool IsWrite = false;
  bool SignExt = false;
  bool CountsMem = false; ///< RbFill also decrements OutstandingMem.
  uint8_t Parity = 0;     ///< Link parity, set by Machine::schedule().
};

class Machine {
public:
  explicit Machine(const SimConfig &Config);

  /// Loads a program image: text into the code banks, data into the
  /// global (or local) banks they fall into. Hart 0 of core 0 starts at
  /// the program entry holding the ending-signal token.
  void load(const assembler::Program &Prog);

  /// Maps \p Device over [Base, Base + Size) in the I/O region.
  void addDevice(uint32_t Base, uint32_t Size,
                 std::unique_ptr<IoDevice> Device);

  /// Runs until exit, fault, livelock or \p MaxCycles.
  RunStatus run(uint64_t MaxCycles = UINT64_MAX);

  // Observation.
  uint64_t cycles() const { return Cycle; }
  uint64_t retired() const { return TotalRetired; }
  double ipc() const {
    return Cycle == 0 ? 0.0
                      : static_cast<double>(TotalRetired) /
                            static_cast<double>(Cycle);
  }
  uint64_t retiredOnHart(unsigned HartId) const;
  uint64_t traceHash() const { return Tr.hash(); }
  const Trace &trace() const { return Tr; }
  const std::string &faultMessage() const { return FaultMsg; }

  /// Every invariant violation the machine-check layer detected (the
  /// first one also fails the run through RunStatus::Fault).
  const std::vector<MachineCheck> &machineChecks() const {
    return Ck.checks();
  }

  /// The run's fault-injection schedule (empty unless configured).
  const FaultPlan &faultPlan() const { return FPlan; }
  uint64_t contentionCycles() const { return Net.contentionCycles(); }
  const Interconnect &interconnect() const { return Net; }

  /// Why issue slots went unused (filled when CollectStallStats is on).
  /// One count per core-cycle that issued nothing, by dominant cause.
  enum class StallCause : uint8_t {
    NoActiveWork,    ///< No in-flight instructions on the core at all.
    WaitingResponse, ///< Everything issued, awaiting memory/results.
    RbBusy,          ///< Ready work blocked on the single result buffer.
    SlotEmpty,       ///< p_lwre waiting for a producer.
    OperandsNotReady,///< Entries waiting on in-flight producers.
    NumCauses
  };
  uint64_t stallCycles(StallCause C) const {
    return StallCounts[static_cast<unsigned>(C)];
  }
  /// Core-cycles in which an instruction issued.
  uint64_t issuedCoreCycles() const { return IssuedCoreCycles; }
  uint64_t remoteAccesses() const { return RemoteAccesses; }
  uint64_t localAccesses() const { return LocalAccesses; }
  const SimConfig &config() const { return Cfg; }

  /// Host-side memory access for test setup and result checking (not
  /// part of the simulated timing). Local addresses refer to \p Core.
  uint32_t debugReadWord(uint32_t Addr, unsigned Core = 0) const;
  void debugWriteWord(uint32_t Addr, uint32_t Value, unsigned Core = 0);

  /// Host-side register peek for tests.
  uint32_t debugReadReg(unsigned HartId, unsigned Reg) const;
  HartState hartState(unsigned HartId) const;

  /// One logged shared-global access (SimConfig::CollectMemLog). Epoch
  /// counts the join deliveries (team barriers) seen so far, so two
  /// accesses with different epochs are ordered by a barrier and can
  /// never race. InTeam is true when the access ran on a team member:
  /// any hart other than 0, or hart 0 between forking its team (it
  /// becomes the last member) and receiving the join back.
  struct MemAccess {
    uint64_t Cycle = 0;
    uint64_t Epoch = 0;
    uint16_t Hart = 0;
    uint32_t Addr = 0;
    uint8_t Width = 4;
    bool IsWrite = false;
    bool InTeam = false;
  };
  const std::vector<MemAccess> &memLog() const { return MemLog; }

private:
  friend class Checker; // read-only sweeps over the machine state

  // -- Deliveries -----------------------------------------------------
  void schedule(uint64_t At, Delivery D);
  void deliver(const Delivery &D);

  // -- Pipeline stages (per core, one hart each per cycle) -------------
  // Each returns true when the stage acted (selected a hart and changed
  // state); the fast path uses this to decide whether a core may sleep.
  bool stageCommit(unsigned CoreId);
  bool stageWriteback(unsigned CoreId);
  bool stageIssue(unsigned CoreId);
  bool stageDecode(unsigned CoreId);
  bool stageFetch(unsigned CoreId);

  // -- Issue helpers ---------------------------------------------------
  bool tryIssue(unsigned CoreId, unsigned HartInCore, unsigned RobIdx);
  bool issueMemOp(unsigned CoreId, unsigned HartInCore, Hart &H,
                  RobEntry &E, unsigned RobIdx);
  bool issueXPar(unsigned CoreId, unsigned HartInCore, Hart &H, RobEntry &E,
                 unsigned RobIdx);
  void commitRet(unsigned CoreId, unsigned HartInCore, Hart &H,
                 RobEntry &E);

  // -- Plumbing ---------------------------------------------------------
  Hart &hart(unsigned HartId) {
    return Cores[HartId / HartsPerCore].Harts[HartId % HartsPerCore];
  }
  const Hart &hart(unsigned HartId) const {
    return Cores[HartId / HartsPerCore].Harts[HartId % HartsPerCore];
  }
  unsigned hartId(unsigned CoreId, unsigned HartInCore) const {
    return CoreId * HartsPerCore + HartInCore;
  }
  void fault(const std::string &Msg);
  /// The livelock diagnosis: one wait-state line per non-free hart.
  std::string livelockReport() const;

  // -- Fast path (SimConfig::FastPath; docs/PERFORMANCE.md) -------------
  /// Earliest future cycle at which any stage of \p C could act again,
  /// assuming no further deliveries: the minimum over the core's
  /// non-free harts of their pending timer expiries (NoFetchUntil,
  /// result-buffer ready, ROB-entry done). UINT64_MAX when the core is
  /// fully event-driven (only a delivery can make it act).
  uint64_t coreWakeCycle(const Core &C) const;
  /// Pulls \p CoreId's WakeAt forward to \p At (never pushes it back).
  void wakeCore(unsigned CoreId, uint64_t At) {
    Core &C = Cores[CoreId];
    if (At < C.WakeAt)
      C.WakeAt = At;
  }
  /// Cycle of the earliest pending delivery strictly after Cycle, or
  /// UINT64_MAX when none is in flight.
  uint64_t nextDeliveryCycle() const;
  /// Deliveries on the wheel/overflow map targeting \p HartId.
  unsigned pendingDeliveriesFor(unsigned HartId) const;
  void startHart(unsigned HartId, uint32_t StartPc);
  void freeHart(unsigned HartId);
  void sendToken(unsigned FromHart, unsigned ToHart);
  int allocateHart(unsigned CoreId, unsigned ByHart);
  void fillSlot(Hart &H, unsigned Slot, uint32_t Value);
  void finishRb(Hart &H, uint32_t Value, uint64_t ReadyCycle);
  bool loadBlockedByStore(const Hart &H, uint32_t Addr) const;
  IoDevice *findDevice(uint32_t Addr, uint32_t &Offset);

  SimConfig Cfg;
  MemorySystem Mem;
  Interconnect Net;
  Trace Tr;
  FaultPlan FPlan;
  Checker Ck;
  std::vector<Core> Cores;

  uint64_t Cycle = 0;
  uint64_t LastProgress = 0;
  RunStatus Status = RunStatus::MaxCycles;
  bool Halted = false;
  std::string FaultMsg;

  uint64_t TotalRetired = 0;
  // Dynamic-oracle memory log (CollectMemLog; see memLog()).
  std::vector<MemAccess> MemLog;
  uint64_t JoinEpoch = 0;
  bool Hart0InTeam = false;
  uint64_t RemoteAccesses = 0;
  uint64_t LocalAccesses = 0;
  uint64_t StallCounts[static_cast<unsigned>(StallCause::NumCauses)] = {};
  uint64_t IssuedCoreCycles = 0;
  void classifyIssueStall(unsigned CoreId);

  // Delivery wheel with a far-future overflow map.
  static constexpr uint64_t WheelSize = 1 << 14;
  std::vector<std::vector<Delivery>> Wheel;
  std::multimap<uint64_t, Delivery> Overflow;
  /// Entries currently on the wheel (excluding Overflow); lets the fast
  /// path and the checker audit skip full wheel scans when it is empty.
  size_t WheelCount = 0;
  /// Per-cycle delivery staging buffer: run() swaps the due wheel slot
  /// into it instead of draining in place, so slot capacity is reused
  /// across laps instead of reallocated.
  std::vector<Delivery> DueBuf;

  /// Effective fast-path switch for this run: SimConfig::FastPath minus
  /// the modes that need every core-cycle observed (stall-cause stats).
  bool FastRun = false;
  /// Text segment decoded once at load() (FastPath): the instruction at
  /// word address W is DecodedText[W]. Valid because LBP code banks are
  /// read-only after load — stores into the code region fault.
  std::vector<isa::Instr> DecodedText;

  struct DeviceMapping {
    uint32_t Base;
    uint32_t Size;
    std::unique_ptr<IoDevice> Dev;
  };
  std::vector<DeviceMapping> Devices;
};

} // namespace sim
} // namespace lbp

#endif // LBP_SIM_MACHINE_H
