//===- sim/Device.cpp - Memory-mapped I/O devices ----------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "sim/Device.h"

using namespace lbp;
using namespace lbp::sim;

IoDevice::~IoDevice() = default;

//===----------------------------------------------------------------------===//
// SensorDevice
//===----------------------------------------------------------------------===//

SensorDevice::SensorDevice(std::vector<uint32_t> Samples, uint64_t Seed,
                           uint64_t MinLatency, uint64_t MaxLatency)
    : Samples(std::move(Samples)), Rng(Seed), MinLatency(MinLatency),
      MaxLatency(MaxLatency) {}

uint32_t SensorDevice::read(uint32_t Offset, uint64_t Cycle) {
  if (Offset == DevStatusReg)
    return (Armed && Cycle >= ReadyCycle) ? 1 : 0;
  if (Offset == DevDataReg)
    return Current;
  return 0;
}

void SensorDevice::write(uint32_t Offset, uint32_t Value, uint64_t Cycle) {
  (void)Value;
  if (Offset != DevStatusReg)
    return;
  // Arm: pick the next sample and a fresh pseudo-random response delay.
  if (!Samples.empty()) {
    Current = Samples[NextSample];
    if (NextSample + 1 < Samples.size())
      ++NextSample;
  }
  ReadyCycle = Cycle + Rng.nextInRange(MinLatency, MaxLatency);
  Armed = true;
}

void SensorDevice::saveState(ByteWriter &W) const {
  W.u64(NextSample);
  W.u64(Rng.state());
  W.u64(ReadyCycle);
  W.u32(Current);
  W.b(Armed);
}

void SensorDevice::restoreState(ByteReader &R) {
  NextSample = R.u64();
  Rng.setState(R.u64());
  ReadyCycle = R.u64();
  Current = R.u32();
  Armed = R.b();
}

//===----------------------------------------------------------------------===//
// ActuatorDevice
//===----------------------------------------------------------------------===//

uint32_t ActuatorDevice::read(uint32_t Offset, uint64_t Cycle) {
  (void)Cycle;
  // STATUS always reports ready; DATA reads back the last value.
  if (Offset == DevStatusReg)
    return 1;
  if (Offset == DevDataReg && !Log.empty())
    return Log.back().Value;
  return 0;
}

void ActuatorDevice::write(uint32_t Offset, uint32_t Value, uint64_t Cycle) {
  if (Offset == DevDataReg)
    Log.push_back({Cycle, Value});
}

void ActuatorDevice::saveState(ByteWriter &W) const {
  W.u64(Log.size());
  for (const Record &Rec : Log) {
    W.u64(Rec.Cycle);
    W.u32(Rec.Value);
  }
}

void ActuatorDevice::restoreState(ByteReader &R) {
  Log.clear();
  uint64_t N = R.u64();
  Log.reserve(N);
  for (uint64_t I = 0; I != N && R.ok(); ++I) {
    Record Rec;
    Rec.Cycle = R.u64();
    Rec.Value = R.u32();
    Log.push_back(Rec);
  }
}

//===----------------------------------------------------------------------===//
// TimerDevice
//===----------------------------------------------------------------------===//

uint32_t TimerDevice::read(uint32_t Offset, uint64_t Cycle) {
  if (Offset == DevStatusReg)
    return 1;
  if (Offset == DevDataReg)
    return static_cast<uint32_t>(Cycle);
  return 0;
}

void TimerDevice::write(uint32_t Offset, uint32_t Value, uint64_t Cycle) {
  (void)Offset;
  (void)Value;
  (void)Cycle;
}

//===----------------------------------------------------------------------===//
// Stream devices
//===----------------------------------------------------------------------===//

uint32_t StreamInDevice::read(uint32_t Offset, uint64_t Cycle) {
  (void)Cycle;
  if (Offset == DevStatusReg)
    return Next < Data.size() ? 1 : 0;
  if (Offset == DevDataReg && Next < Data.size())
    return Data[Next++];
  return 0;
}

void StreamInDevice::write(uint32_t Offset, uint32_t Value, uint64_t Cycle) {
  (void)Offset;
  (void)Value;
  (void)Cycle;
}

void StreamInDevice::saveState(ByteWriter &W) const { W.u64(Next); }

void StreamInDevice::restoreState(ByteReader &R) { Next = R.u64(); }

uint32_t StreamOutDevice::read(uint32_t Offset, uint64_t Cycle) {
  (void)Cycle;
  if (Offset == DevStatusReg)
    return 1;
  return 0;
}

void StreamOutDevice::write(uint32_t Offset, uint32_t Value, uint64_t Cycle) {
  (void)Cycle;
  if (Offset == DevDataReg)
    Data.push_back(Value);
}

void StreamOutDevice::saveState(ByteWriter &W) const { W.vecU32(Data); }

void StreamOutDevice::restoreState(ByteReader &R) { Data = R.vecU32(); }
