//===- fleet/Report.cpp - Canonical campaign report --------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The aggregate JSON report. Canonical by construction: fixed field
/// order, runs in queue order, integers and fixed-format hex only, no
/// wall-clock data anywhere — so a deterministic campaign (same specs,
/// same injection flags) emits byte-identical bytes on every
/// invocation, and CI can diff two repeat reports directly.
///
//===----------------------------------------------------------------------===//

#include "fleet/Fleet.h"

#include "support/StringUtils.h"

using namespace lbp;
using namespace lbp::fleet;

std::string lbp::fleet::campaignToJson(const CampaignResult &R) {
  return campaignToJson(R, std::string());
}

std::string lbp::fleet::campaignToJson(const CampaignResult &R,
                                       const std::string &ExtraJson) {
  std::string J = "{\n  \"schema\": \"lbp-fleet-report-v1\",\n";

  unsigned Counts[5] = {0, 0, 0, 0, 0};
  for (const RunResult &Run : R.Runs)
    ++Counts[static_cast<unsigned>(Run.V)];

  J += "  \"runs\": [\n";
  for (size_t I = 0; I != R.Runs.size(); ++I) {
    const RunResult &Run = R.Runs[I];
    J += "    {";
    J += formatString("\"name\": \"%s\", ", jsonEscape(Run.Name).c_str());
    J += formatString("\"verdict\": \"%s\", ", verdictName(Run.V));
    if (Run.V == Verdict::Incomplete) {
      // No completed attempt: the simulated outcome does not exist.
      J += "\"status\": null, \"cycles\": null, \"retired\": null, "
           "\"trace_hash\": null, \"engine\": null, ";
    } else {
      J += formatString("\"status\": \"%s\", ",
                        sim::runStatusName(Run.Status));
      J += formatString("\"cycles\": %llu, ",
                        static_cast<unsigned long long>(Run.Cycles));
      J += formatString("\"retired\": %llu, ",
                        static_cast<unsigned long long>(Run.Retired));
      J += formatString("\"trace_hash\": \"0x%016llx\", ",
                        static_cast<unsigned long long>(Run.TraceHash));
      J += formatString("\"engine\": \"%s\", ",
                        jsonEscape(Run.Engine).c_str());
    }
    J += formatString("\"engine_note\": \"%s\", ",
                      jsonEscape(Run.EngineNote).c_str());
    J += formatString("\"message\": \"%s\", ",
                      jsonEscape(Run.Message).c_str());
    J += formatString("\"faults_fired\": %u, ", Run.FaultsFired);
    J += formatString("\"resumed_from_checkpoint\": %s, ",
                      Run.ResumedFromCheckpoint ? "true" : "false");
    J += "\"attempts\": [";
    for (size_t A = 0; A != Run.Attempts.size(); ++A) {
      if (A != 0)
        J += ", ";
      J += formatString("\"%s\"", attemptOutcomeName(Run.Attempts[A]));
    }
    J += "]}";
    J += I + 1 != R.Runs.size() ? ",\n" : "\n";
  }
  J += "  ],\n";

  J += formatString("  \"summary\": {\"total\": %zu, \"pass\": %u, "
                    "\"fault\": %u, \"livelock\": %u, \"deadline\": %u, "
                    "\"incomplete\": %u},\n",
                    R.Runs.size(), Counts[0], Counts[1], Counts[2],
                    Counts[3], Counts[4]);
  J += ExtraJson; // pre-rendered `"key": value,\n` members, if any
  J += formatString("  \"complete\": %s\n}\n",
                    R.Complete ? "true" : "false");
  return J;
}
