//===- fleet/Fleet.cpp - Crash-isolated simulation campaigns ----------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-level half of the fleet runner. One fork()ed child per
/// attempt: the parent assembles the program images once and the
/// children inherit them copy-on-write, so an N-run campaign shares one
/// read-only image instead of N copies. The child executes the
/// simulation in checkpoint-sized chunks, streams its verdict back over
/// a pipe (support/Serialize.h wire format), and _exit()s; the parent
/// multiplexes children with poll(), reaps with waitpid(), applies the
/// wall-clock watchdog and the bounded-retry policy, and never blocks
/// on a single worker.
///
/// Failure handling invariants (docs/ROBUSTNESS.md):
///  * any child death — signal, nonzero exit, truncated result — costs
///    exactly one attempt of one run;
///  * the parent always terminates: every run ends in a verdict, with
///    Incomplete as the exhausted-retries floor;
///  * pipes are drained nonblockingly on every poll tick, so a child
///    with a large result (a long livelock report) can never deadlock
///    against a full pipe buffer.
///
//===----------------------------------------------------------------------===//

#include "fleet/Fleet.h"

#include "support/Serialize.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <fstream>

#include <fcntl.h>
#include <poll.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

using namespace lbp;
using namespace lbp::fleet;

const char *lbp::fleet::verdictName(Verdict V) {
  switch (V) {
  case Verdict::Pass:
    return "pass";
  case Verdict::Fault:
    return "fault";
  case Verdict::Livelock:
    return "livelock";
  case Verdict::Deadline:
    return "deadline";
  case Verdict::Incomplete:
    return "incomplete";
  }
  return "unknown";
}

const char *lbp::fleet::attemptOutcomeName(AttemptOutcome O) {
  switch (O) {
  case AttemptOutcome::Completed:
    return "completed";
  case AttemptOutcome::Crashed:
    return "crashed";
  case AttemptOutcome::Hung:
    return "hung";
  }
  return "unknown";
}

namespace {

using Clock = std::chrono::steady_clock;

constexpr uint32_t ResultMagic = 0x52544C46u;   // 'FLTR'
constexpr uint32_t ResultTrailer = 0x444E4C46u; // 'FLND'

/// Checkpoint files are tagged with the campaign parent's pid so that
/// concurrent campaigns sharing a checkpoint directory (parallel test
/// runners, two fleets on one box) can never clobber or reap each
/// other's checkpoints. Children receive the parent pid explicitly —
/// their own getpid() differs after fork().
std::string checkpointPath(const FleetConfig &FC, pid_t CampaignPid,
                           unsigned RunIdx) {
  return FC.CheckpointDir + "/fleet-" + std::to_string(CampaignPid) +
         "-run" + std::to_string(RunIdx) + ".ckpt";
}

bool readFileBytes(const std::string &Path, std::vector<uint8_t> &Out) {
  std::ifstream In(Path, std::ios::binary);
  if (!In)
    return false;
  Out.assign(std::istreambuf_iterator<char>(In),
             std::istreambuf_iterator<char>());
  return In.good() || In.eof();
}

/// Atomic checkpoint write: the blob lands under a temporary name and
/// is rename()d into place, so a worker killed mid-write can never
/// leave a torn checkpoint for its retry to trip over.
bool writeFileAtomic(const std::string &Path,
                     const std::vector<uint8_t> &Bytes) {
  std::string Tmp = Path + ".tmp";
  {
    std::ofstream Out(Tmp, std::ios::binary | std::ios::trunc);
    if (!Out)
      return false;
    Out.write(reinterpret_cast<const char *>(Bytes.data()),
              static_cast<std::streamsize>(Bytes.size()));
    if (!Out.good())
      return false;
  }
  return std::rename(Tmp.c_str(), Path.c_str()) == 0;
}

/// The whole child-side of one attempt. Never returns.
[[noreturn]] void childAttempt(const assembler::Program &Image,
                               const RunSpec &Spec, const FleetConfig &FC,
                               pid_t CampaignPid, unsigned RunIdx,
                               unsigned Attempt, int WriteFd) {
  // First-attempt failure injection for the CI smoke campaign.
  bool InjectCrash =
      Attempt == 0 && FC.InjectCrashRun == static_cast<int>(RunIdx);
  bool InjectHang =
      Attempt == 0 && FC.InjectHangRun == static_cast<int>(RunIdx);
  if (InjectHang)
    for (;;)
      pause(); // wedged worker; only the watchdog can end this attempt

  sim::Machine M(Spec.Cfg);
  bool Resumed = false;
  if (Attempt > 0 && FC.CheckpointInterval != 0) {
    std::vector<uint8_t> Blob;
    std::string Err;
    if (readFileBytes(checkpointPath(FC, CampaignPid, RunIdx), Blob) &&
        M.restoreSnapshot(Blob, Err))
      Resumed = true;
    // A missing or rejected checkpoint is not an error: the attempt
    // simply starts from the beginning.
  }
  if (!Resumed)
    M.load(Image);

  if (InjectCrash && FC.CheckpointInterval == 0)
    abort();

  sim::RunStatus St = sim::RunStatus::MaxCycles;
  while (true) {
    if (M.cycles() >= Spec.DeadlineCycles)
      break;
    uint64_t Remaining = Spec.DeadlineCycles - M.cycles();
    uint64_t Chunk = FC.CheckpointInterval != 0
                         ? std::min(FC.CheckpointInterval, Remaining)
                         : Remaining;
    St = M.run(Chunk);
    if (St != sim::RunStatus::MaxCycles)
      break;
    if (FC.CheckpointInterval != 0) {
      std::vector<uint8_t> Blob;
      M.saveSnapshot(Blob);
      writeFileAtomic(checkpointPath(FC, CampaignPid, RunIdx), Blob);
      if (InjectCrash)
        abort(); // after the first checkpoint: the retry must restore it
    }
  }
  // The fleet's deterministic timeout classification: exhausting the
  // cycle deadline is Deadline, not MaxCycles (Machine.h).
  if (St == sim::RunStatus::MaxCycles)
    St = sim::RunStatus::Deadline;

  ByteWriter W;
  W.u32(ResultMagic);
  W.u8(static_cast<uint8_t>(St));
  W.u64(M.cycles());
  W.u64(M.retired());
  W.u64(M.traceHash());
  W.u32(M.faultPlan().firedCount());
  W.str(M.faultMessage());
  W.str(M.engineName());
  W.str(M.engineNote());
  W.b(Resumed);
  W.u32(ResultTrailer);

  const std::vector<uint8_t> &Buf = W.buffer();
  size_t Off = 0;
  while (Off < Buf.size()) {
    ssize_t N = write(WriteFd, Buf.data() + Off, Buf.size() - Off);
    if (N < 0) {
      if (errno == EINTR)
        continue;
      _exit(3);
    }
    Off += static_cast<size_t>(N);
  }
  close(WriteFd);
  _exit(0);
}

/// Parses a child's result stream into \p R. False on any malformation
/// (the attempt then counts as crashed).
bool parseResult(const std::vector<uint8_t> &Bytes, RunResult &R) {
  ByteReader Rd(Bytes);
  if (Rd.u32() != ResultMagic)
    return false;
  uint8_t St = Rd.u8();
  if (St > static_cast<uint8_t>(sim::RunStatus::Deadline))
    return false;
  R.Status = static_cast<sim::RunStatus>(St);
  R.Cycles = Rd.u64();
  R.Retired = Rd.u64();
  R.TraceHash = Rd.u64();
  R.FaultsFired = Rd.u32();
  R.Message = Rd.str();
  R.Engine = Rd.str();
  R.EngineNote = Rd.str();
  R.ResumedFromCheckpoint = Rd.b();
  if (Rd.u32() != ResultTrailer || !Rd.ok() || Rd.remaining() != 0)
    return false;
  switch (R.Status) {
  case sim::RunStatus::Exited:
    R.V = Verdict::Pass;
    break;
  case sim::RunStatus::Fault:
    R.V = Verdict::Fault;
    break;
  case sim::RunStatus::Livelock:
    R.V = Verdict::Livelock;
    break;
  case sim::RunStatus::MaxCycles:
  case sim::RunStatus::Deadline:
    R.V = Verdict::Deadline;
    break;
  }
  return true;
}

/// One queued attempt waiting for a worker slot (and its backoff).
struct PendingAttempt {
  unsigned RunIdx;
  unsigned Attempt;
  Clock::time_point ReadyAt;
};

/// One live worker process.
struct ActiveWorker {
  pid_t Pid = -1;
  unsigned RunIdx = 0;
  unsigned Attempt = 0;
  int Fd = -1; ///< Parent's read end, O_NONBLOCK.
  std::vector<uint8_t> Buf;
  Clock::time_point Started;
  bool WatchdogKilled = false;
};

/// Drains \p W's pipe without blocking. Returns false once EOF is seen.
void drainPipe(ActiveWorker &W) {
  if (W.Fd < 0)
    return;
  uint8_t Tmp[4096];
  for (;;) {
    ssize_t N = read(W.Fd, Tmp, sizeof(Tmp));
    if (N > 0) {
      W.Buf.insert(W.Buf.end(), Tmp, Tmp + N);
      continue;
    }
    if (N == 0) { // EOF: writer side fully closed
      close(W.Fd);
      W.Fd = -1;
    }
    // N < 0: EAGAIN (nothing now) or EINTR — either way, try later.
    return;
  }
}

} // namespace

CampaignResult
lbp::fleet::runCampaign(const std::vector<assembler::Program> &Images,
                        const std::vector<RunSpec> &Specs,
                        const FleetConfig &FC) {
  CampaignResult Result;
  Result.Runs.resize(Specs.size());
  for (size_t I = 0; I != Specs.size(); ++I)
    Result.Runs[I].Name = Specs[I].Name;

  pid_t CampaignPid = getpid();
  unsigned Workers = std::max(1u, FC.Workers);
  unsigned MaxAttempts = std::max(1u, FC.MaxAttempts);

  std::vector<PendingAttempt> Pending;
  for (unsigned I = 0; I != Specs.size(); ++I)
    Pending.push_back({I, 0, Clock::now()});
  std::vector<ActiveWorker> Active;

  auto FailAttempt = [&](unsigned RunIdx, unsigned Attempt,
                         AttemptOutcome O) {
    Result.Runs[RunIdx].Attempts.push_back(O);
    if (Attempt + 1 < MaxAttempts) {
      uint64_t Shift = std::min<uint64_t>(Attempt, 62);
      uint64_t Backoff =
          std::min(FC.BackoffBaseMs << Shift, FC.BackoffCapMs);
      Pending.push_back({RunIdx, Attempt + 1,
                         Clock::now() + std::chrono::milliseconds(Backoff)});
    } else {
      // Retries exhausted: graceful degradation, explicit verdict.
      Result.Runs[RunIdx].V = Verdict::Incomplete;
      Result.Complete = false;
    }
  };

  while (!Pending.empty() || !Active.empty()) {
    // Launch every ready pending attempt into a free slot, lowest run
    // index first (stable order; the report is index-ordered anyway).
    std::sort(Pending.begin(), Pending.end(),
              [](const PendingAttempt &A, const PendingAttempt &B) {
                return A.RunIdx < B.RunIdx;
              });
    Clock::time_point Now = Clock::now();
    for (size_t I = 0; I < Pending.size() && Active.size() < Workers;) {
      if (Pending[I].ReadyAt > Now) {
        ++I;
        continue;
      }
      PendingAttempt P = Pending[I];
      Pending.erase(Pending.begin() + I);

      int Fds[2];
      if (pipe(Fds) != 0) {
        FailAttempt(P.RunIdx, P.Attempt, AttemptOutcome::Crashed);
        continue;
      }
      pid_t Pid = fork();
      if (Pid < 0) {
        close(Fds[0]);
        close(Fds[1]);
        FailAttempt(P.RunIdx, P.Attempt, AttemptOutcome::Crashed);
        continue;
      }
      if (Pid == 0) {
        close(Fds[0]);
        const RunSpec &Spec = Specs[P.RunIdx];
        childAttempt(Images[Spec.ProgramIndex], Spec, FC, CampaignPid,
                     P.RunIdx, P.Attempt, Fds[1]);
      }
      close(Fds[1]);
      fcntl(Fds[0], F_SETFL, O_NONBLOCK);
      ActiveWorker W;
      W.Pid = Pid;
      W.RunIdx = P.RunIdx;
      W.Attempt = P.Attempt;
      W.Fd = Fds[0];
      W.Started = Clock::now();
      Active.push_back(std::move(W));
    }

    if (Active.empty()) {
      // Everything pending is in backoff; sleep until the earliest.
      Clock::time_point Earliest = Clock::time_point::max();
      for (const PendingAttempt &P : Pending)
        Earliest = std::min(Earliest, P.ReadyAt);
      auto Wait = std::chrono::duration_cast<std::chrono::milliseconds>(
          Earliest - Clock::now());
      if (Wait.count() > 0)
        usleep(static_cast<useconds_t>(
            std::min<int64_t>(Wait.count(), 100) * 1000));
      continue;
    }

    // Wait for pipe activity (bounded, so the watchdog stays live).
    std::vector<pollfd> Polls;
    for (const ActiveWorker &W : Active)
      if (W.Fd >= 0)
        Polls.push_back({W.Fd, POLLIN, 0});
    if (!Polls.empty())
      poll(Polls.data(), Polls.size(), 20);
    else
      usleep(2000);

    for (ActiveWorker &W : Active)
      drainPipe(W);

    // Watchdog: SIGKILL attempts past the wall budget. A host backstop
    // only — the classification a hung run eventually gets is the
    // deterministic one, from its retry.
    if (FC.WallTimeoutMs != 0) {
      Clock::time_point T = Clock::now();
      for (ActiveWorker &W : Active) {
        if (W.WatchdogKilled)
          continue;
        auto Ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                      T - W.Started)
                      .count();
        if (static_cast<uint64_t>(Ms) > FC.WallTimeoutMs) {
          kill(W.Pid, SIGKILL);
          W.WatchdogKilled = true;
        }
      }
    }

    // Reap finished workers.
    for (size_t I = 0; I < Active.size();) {
      ActiveWorker &W = Active[I];
      int WStatus = 0;
      pid_t Got = waitpid(W.Pid, &WStatus, WNOHANG);
      if (Got == 0) {
        ++I;
        continue;
      }
      drainPipe(W); // final bytes raced the exit
      if (W.Fd >= 0) {
        close(W.Fd);
        W.Fd = -1;
      }
      unsigned RunIdx = W.RunIdx, Attempt = W.Attempt;
      bool CleanExit = Got == W.Pid && WIFEXITED(WStatus) &&
                       WEXITSTATUS(WStatus) == 0;
      RunResult Parsed;
      if (CleanExit && parseResult(W.Buf, Parsed)) {
        Parsed.Name = Result.Runs[RunIdx].Name;
        Parsed.Attempts = Result.Runs[RunIdx].Attempts;
        Parsed.Attempts.push_back(AttemptOutcome::Completed);
        Result.Runs[RunIdx] = std::move(Parsed);
        if (FC.CheckpointInterval != 0) {
          std::string Ckpt = checkpointPath(FC, CampaignPid, RunIdx);
          std::remove(Ckpt.c_str());
          std::remove((Ckpt + ".tmp").c_str());
        }
      } else {
        FailAttempt(RunIdx, Attempt,
                    W.WatchdogKilled ? AttemptOutcome::Hung
                                     : AttemptOutcome::Crashed);
      }
      Active.erase(Active.begin() + I);
    }
  }

  // Campaign-end hygiene: no checkpoint survives a resolved campaign.
  if (FC.CheckpointInterval != 0)
    for (unsigned I = 0; I != Specs.size(); ++I) {
      std::string Ckpt = checkpointPath(FC, CampaignPid, I);
      std::remove(Ckpt.c_str());
      std::remove((Ckpt + ".tmp").c_str());
    }
  return Result;
}
