//===- fleet/FleetMain.cpp - lbp_fleet command-line driver --------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// lbp_fleet: run a campaign of independent simulations across worker
/// processes and emit the canonical aggregate report.
///
///   lbp_fleet [options]
///     --workload W         phases | matmul | pipeline (default phases)
///     --asm FILE.s         assembly file instead of a workload
///     --cores N            machine size per run (default 4)
///     --runs N             queue length (default 4)
///     --seed-base N        run i uses fault seed N + i (default 1)
///     --drops/--delays/--flips/--stuck N
///                          injected faults per run (default 0)
///     --threads N          host threads per worker (default 1)
///     --engine E           reference | fast (default fast)
///     --deadline-cycles N  deterministic per-run deadline
///                          (default 10000000)
///     --workers N          concurrent worker processes (default 4)
///     --max-attempts N     attempts per run before incomplete
///                          (default 2)
///     --checkpoint-interval N
///                          checkpoint every N simulated cycles
///                          (default 0 = off)
///     --checkpoint-dir D   where checkpoints live (default ".")
///     --wall-timeout-ms N  wall-clock watchdog per attempt
///                          (default 0 = off)
///     --inject-crash I     run I's first attempt aborts (CI smoke)
///     --inject-hang I      run I's first attempt hangs (CI smoke)
///     --out FILE           report destination (default stdout)
///     --strict             exit 1 on any non-pass verdict
///
/// Exit status: 0 = campaign complete (and, with --strict, all pass);
/// 1 = degraded report (incomplete verdicts) or --strict failure;
/// 2 = usage/input error. The report is written in every case but 2.
///
//===----------------------------------------------------------------------===//

#include "fleet/Fleet.h"

#include "asm/Assembler.h"
#include "support/StringUtils.h"
#include "workloads/MatMul.h"
#include "workloads/Phases.h"
#include "workloads/Pipeline.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace lbp;

namespace {

struct Options {
  std::string Workload = "phases";
  std::string AsmFile;
  unsigned Cores = 4;
  unsigned Runs = 4;
  uint64_t SeedBase = 1;
  unsigned Drops = 0, Delays = 0, Flips = 0, Stuck = 0;
  unsigned Threads = 1;
  bool FastPath = true;
  uint64_t DeadlineCycles = 10000000;
  fleet::FleetConfig FC;
  std::string Out;
  bool Strict = false;
};

int usage() {
  std::fprintf(
      stderr,
      "usage: lbp_fleet [--workload phases|matmul|pipeline] [--asm F.s]\n"
      "  --cores N  --runs N  --seed-base N\n"
      "  --drops N  --delays N  --flips N  --stuck N\n"
      "  --threads N  --engine reference|fast  --deadline-cycles N\n"
      "  --workers N  --max-attempts N\n"
      "  --checkpoint-interval N  --checkpoint-dir D\n"
      "  --wall-timeout-ms N  --inject-crash I  --inject-hang I\n"
      "  --out FILE  --strict\n"
      "See docs/ROBUSTNESS.md (\"Fleet failure taxonomy\").\n");
  return 2;
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  auto Num = [&](int &I) -> std::optional<int64_t> {
    if (I + 1 >= Argc)
      return std::nullopt;
    return parseInteger(Argv[++I]);
  };
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    std::optional<int64_t> V;
    if (A == "--workload" && I + 1 < Argc)
      O.Workload = Argv[++I];
    else if (A == "--asm" && I + 1 < Argc)
      O.AsmFile = Argv[++I];
    else if (A == "--engine" && I + 1 < Argc) {
      std::string E = Argv[++I];
      if (E == "reference")
        O.FastPath = false;
      else if (E == "fast")
        O.FastPath = true;
      else
        return false;
    } else if (A == "--checkpoint-dir" && I + 1 < Argc)
      O.FC.CheckpointDir = Argv[++I];
    else if (A == "--out" && I + 1 < Argc)
      O.Out = Argv[++I];
    else if (A == "--strict")
      O.Strict = true;
    else if (A == "--cores" && (V = Num(I)))
      O.Cores = static_cast<unsigned>(*V);
    else if (A == "--runs" && (V = Num(I)))
      O.Runs = static_cast<unsigned>(*V);
    else if (A == "--seed-base" && (V = Num(I)))
      O.SeedBase = static_cast<uint64_t>(*V);
    else if (A == "--drops" && (V = Num(I)))
      O.Drops = static_cast<unsigned>(*V);
    else if (A == "--delays" && (V = Num(I)))
      O.Delays = static_cast<unsigned>(*V);
    else if (A == "--flips" && (V = Num(I)))
      O.Flips = static_cast<unsigned>(*V);
    else if (A == "--stuck" && (V = Num(I)))
      O.Stuck = static_cast<unsigned>(*V);
    else if (A == "--threads" && (V = Num(I)))
      O.Threads = static_cast<unsigned>(*V);
    else if (A == "--deadline-cycles" && (V = Num(I)))
      O.DeadlineCycles = static_cast<uint64_t>(*V);
    else if (A == "--workers" && (V = Num(I)))
      O.FC.Workers = static_cast<unsigned>(*V);
    else if (A == "--max-attempts" && (V = Num(I)))
      O.FC.MaxAttempts = static_cast<unsigned>(*V);
    else if (A == "--checkpoint-interval" && (V = Num(I)))
      O.FC.CheckpointInterval = static_cast<uint64_t>(*V);
    else if (A == "--wall-timeout-ms" && (V = Num(I)))
      O.FC.WallTimeoutMs = static_cast<uint64_t>(*V);
    else if (A == "--inject-crash" && (V = Num(I)))
      O.FC.InjectCrashRun = static_cast<int>(*V);
    else if (A == "--inject-hang" && (V = Num(I)))
      O.FC.InjectHangRun = static_cast<int>(*V);
    else
      return false;
  }
  return true;
}

std::string buildAsmText(const Options &O, std::string &Err) {
  if (!O.AsmFile.empty()) {
    std::ifstream In(O.AsmFile);
    if (!In) {
      Err = "cannot open '" + O.AsmFile + "'";
      return std::string();
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    return SS.str();
  }
  if (O.Workload == "phases") {
    workloads::PhasesSpec S;
    S.NumHarts = O.Cores * sim::HartsPerCore;
    return workloads::buildPhasesProgram(S);
  }
  if (O.Workload == "matmul") {
    workloads::MatMulSpec S;
    S.NumHarts = O.Cores * sim::HartsPerCore;
    S.Version = workloads::MatMulVersion::Distributed;
    return workloads::buildMatMulProgram(S);
  }
  if (O.Workload == "pipeline") {
    workloads::PipelineSpec S;
    S.Stages = std::min(O.Cores * sim::HartsPerCore, 8u);
    return workloads::buildPipelineProgram(S);
  }
  Err = "unknown workload '" + O.Workload + "'";
  return std::string();
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return usage();

  std::string Err;
  std::string Asm = buildAsmText(O, Err);
  if (Asm.empty()) {
    std::fprintf(stderr, "lbp_fleet: %s\n", Err.c_str());
    return 2;
  }
  assembler::AsmResult R = assembler::assemble(Asm);
  if (!R.succeeded()) {
    std::fprintf(stderr, "lbp_fleet: assembly failed:\n%s\n",
                 R.errorText().c_str());
    return 2;
  }

  // One shared read-only image; the workers inherit it copy-on-write.
  std::vector<assembler::Program> Images;
  Images.push_back(std::move(R.Prog));

  std::vector<fleet::RunSpec> Specs;
  for (unsigned I = 0; I != O.Runs; ++I) {
    fleet::RunSpec S;
    uint64_t Seed = O.SeedBase + I;
    S.Name = (O.AsmFile.empty() ? O.Workload : O.AsmFile) + "-seed" +
             std::to_string(Seed);
    S.Cfg = sim::SimConfig::lbp(O.Cores);
    S.Cfg.FastPath = O.FastPath;
    S.Cfg.HostThreads = O.Threads;
    S.Cfg.Faults.Seed = Seed;
    S.Cfg.Faults.Drops = O.Drops;
    S.Cfg.Faults.Delays = O.Delays;
    S.Cfg.Faults.BitFlips = O.Flips;
    S.Cfg.Faults.StuckBanks = O.Stuck;
    S.DeadlineCycles = O.DeadlineCycles;
    Specs.push_back(std::move(S));
  }

  fleet::CampaignResult Result =
      fleet::runCampaign(Images, Specs, O.FC);
  std::string Json = fleet::campaignToJson(Result);

  if (O.Out.empty()) {
    std::fwrite(Json.data(), 1, Json.size(), stdout);
  } else {
    std::ofstream Out(O.Out, std::ios::trunc);
    if (!Out) {
      std::fprintf(stderr, "lbp_fleet: cannot write '%s'\n",
                   O.Out.c_str());
      return 2;
    }
    Out << Json;
  }

  if (!Result.Complete)
    return 1;
  if (O.Strict)
    for (const fleet::RunResult &Run : Result.Runs)
      if (Run.V != fleet::Verdict::Pass)
        return 1;
  return 0;
}
