//===- fleet/FleetMain.cpp - lbp_fleet command-line driver --------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// lbp_fleet: run a campaign of independent simulations across worker
/// processes and emit the canonical aggregate report.
///
///   lbp_fleet [options]
///     --workload W         phases | matmul | pipeline (default phases)
///     --asm FILE.s         assembly file instead of a workload
///     --cores N            machine size per run (default 4)
///     --runs N             queue length (default 4)
///     --seed-base N        run i uses fault seed N + i (default 1)
///     --drops/--delays/--flips/--stuck N
///                          injected faults per run (default 0)
///     --threads N          host threads per worker (default 1)
///     --engine E           reference | fast (default fast)
///     --deadline-cycles N  deterministic per-run deadline
///                          (default 10000000)
///     --workers N          concurrent worker processes (default 4)
///     --max-attempts N     attempts per run before incomplete
///                          (default 2)
///     --checkpoint-interval N
///                          checkpoint every N simulated cycles
///                          (default 0 = off)
///     --checkpoint-dir D   where checkpoints live (default ".")
///     --wall-timeout-ms N  wall-clock watchdog per attempt
///                          (default 0 = off)
///     --inject-crash I     run I's first attempt aborts (CI smoke)
///     --inject-hang I      run I's first attempt hangs (CI smoke)
///     --cross-check LIST   run every queue entry once per engine
///                          variant (comma list of reference | fast |
///                          parallel-tN) and compare fingerprints
///                          within each group; a mismatch is triaged
///                          in-process (obs/Triage.h) and the report
///                          gains a "divergence_triage" array
///     --perturb N          arm SimConfig::PerturbForTest at cycle N on
///                          every run (seeded divergence for CI)
///     --out FILE           report destination (default stdout)
///     --strict             exit 1 on any non-pass verdict
///
/// Exit status: 0 = campaign complete (and, with --strict, all pass);
/// 1 = degraded report (incomplete verdicts), cross-check divergence,
/// or --strict failure; 2 = usage/input error. The report is written
/// in every case but 2.
///
//===----------------------------------------------------------------------===//

#include "fleet/Fleet.h"

#include "asm/Assembler.h"
#include "obs/Triage.h"
#include "support/StringUtils.h"
#include "workloads/MatMul.h"
#include "workloads/Phases.h"
#include "workloads/Pipeline.h"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

using namespace lbp;

namespace {

struct Options {
  std::string Workload = "phases";
  std::string AsmFile;
  unsigned Cores = 4;
  unsigned Runs = 4;
  uint64_t SeedBase = 1;
  unsigned Drops = 0, Delays = 0, Flips = 0, Stuck = 0;
  unsigned Threads = 1;
  bool FastPath = true;
  uint64_t DeadlineCycles = 10000000;
  fleet::FleetConfig FC;
  std::string Out;
  bool Strict = false;
  std::vector<std::string> CrossCheck;
  uint64_t Perturb = 0;
};

/// One --cross-check engine variant. FastPath/HostThreads mirror the
/// specs lbp_triage accepts, spelled with '-' ("parallel-t4") so the
/// variant can ride inside a run name.
struct EngineVariant {
  std::string Name;
  bool FastPath = false;
  unsigned Threads = 1;
};

bool parseEngineVariant(const std::string &Spec, EngineVariant &V) {
  V.Name = Spec;
  if (Spec == "reference") {
    V.FastPath = false;
    V.Threads = 1;
    return true;
  }
  if (Spec == "fast") {
    V.FastPath = true;
    V.Threads = 1;
    return true;
  }
  if (Spec.rfind("parallel", 0) == 0) {
    V.FastPath = true;
    V.Threads = 4;
    if (Spec.size() > 8) {
      if (Spec.compare(8, 2, "-t") != 0)
        return false;
      std::optional<int64_t> T = parseInteger(Spec.substr(10));
      if (!T || *T < 2 || *T > 1024)
        return false;
      V.Threads = static_cast<unsigned>(*T);
    }
    return true;
  }
  return false;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: lbp_fleet [--workload phases|matmul|pipeline] [--asm F.s]\n"
      "  --cores N  --runs N  --seed-base N\n"
      "  --drops N  --delays N  --flips N  --stuck N\n"
      "  --threads N  --engine reference|fast  --deadline-cycles N\n"
      "  --workers N  --max-attempts N\n"
      "  --checkpoint-interval N  --checkpoint-dir D\n"
      "  --wall-timeout-ms N  --inject-crash I  --inject-hang I\n"
      "  --cross-check reference,fast,parallel-tN  --perturb N\n"
      "  --out FILE  --strict\n"
      "See docs/ROBUSTNESS.md (\"Fleet failure taxonomy\").\n");
  return 2;
}

bool parseArgs(int Argc, char **Argv, Options &O) {
  auto Num = [&](int &I) -> std::optional<int64_t> {
    if (I + 1 >= Argc)
      return std::nullopt;
    return parseInteger(Argv[++I]);
  };
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    std::optional<int64_t> V;
    if (A == "--workload" && I + 1 < Argc)
      O.Workload = Argv[++I];
    else if (A == "--asm" && I + 1 < Argc)
      O.AsmFile = Argv[++I];
    else if (A == "--engine" && I + 1 < Argc) {
      std::string E = Argv[++I];
      if (E == "reference")
        O.FastPath = false;
      else if (E == "fast")
        O.FastPath = true;
      else
        return false;
    } else if (A == "--cross-check" && I + 1 < Argc) {
      std::string List = Argv[++I];
      size_t Pos = 0;
      while (Pos <= List.size()) {
        size_t Comma = List.find(',', Pos);
        O.CrossCheck.push_back(List.substr(
            Pos, Comma == std::string::npos ? Comma : Comma - Pos));
        if (Comma == std::string::npos)
          break;
        Pos = Comma + 1;
      }
      if (O.CrossCheck.size() < 2)
        return false; // a cross-check needs something to compare
    } else if (A == "--checkpoint-dir" && I + 1 < Argc)
      O.FC.CheckpointDir = Argv[++I];
    else if (A == "--out" && I + 1 < Argc)
      O.Out = Argv[++I];
    else if (A == "--strict")
      O.Strict = true;
    else if (A == "--cores" && (V = Num(I)))
      O.Cores = static_cast<unsigned>(*V);
    else if (A == "--runs" && (V = Num(I)))
      O.Runs = static_cast<unsigned>(*V);
    else if (A == "--seed-base" && (V = Num(I)))
      O.SeedBase = static_cast<uint64_t>(*V);
    else if (A == "--drops" && (V = Num(I)))
      O.Drops = static_cast<unsigned>(*V);
    else if (A == "--delays" && (V = Num(I)))
      O.Delays = static_cast<unsigned>(*V);
    else if (A == "--flips" && (V = Num(I)))
      O.Flips = static_cast<unsigned>(*V);
    else if (A == "--stuck" && (V = Num(I)))
      O.Stuck = static_cast<unsigned>(*V);
    else if (A == "--threads" && (V = Num(I)))
      O.Threads = static_cast<unsigned>(*V);
    else if (A == "--deadline-cycles" && (V = Num(I)))
      O.DeadlineCycles = static_cast<uint64_t>(*V);
    else if (A == "--perturb" && (V = Num(I)))
      O.Perturb = static_cast<uint64_t>(*V);
    else if (A == "--workers" && (V = Num(I)))
      O.FC.Workers = static_cast<unsigned>(*V);
    else if (A == "--max-attempts" && (V = Num(I)))
      O.FC.MaxAttempts = static_cast<unsigned>(*V);
    else if (A == "--checkpoint-interval" && (V = Num(I)))
      O.FC.CheckpointInterval = static_cast<uint64_t>(*V);
    else if (A == "--wall-timeout-ms" && (V = Num(I)))
      O.FC.WallTimeoutMs = static_cast<uint64_t>(*V);
    else if (A == "--inject-crash" && (V = Num(I)))
      O.FC.InjectCrashRun = static_cast<int>(*V);
    else if (A == "--inject-hang" && (V = Num(I)))
      O.FC.InjectHangRun = static_cast<int>(*V);
    else
      return false;
  }
  return true;
}

std::string buildAsmText(const Options &O, std::string &Err) {
  if (!O.AsmFile.empty()) {
    std::ifstream In(O.AsmFile);
    if (!In) {
      Err = "cannot open '" + O.AsmFile + "'";
      return std::string();
    }
    std::ostringstream SS;
    SS << In.rdbuf();
    return SS.str();
  }
  if (O.Workload == "phases") {
    workloads::PhasesSpec S;
    S.NumHarts = O.Cores * sim::HartsPerCore;
    return workloads::buildPhasesProgram(S);
  }
  if (O.Workload == "matmul") {
    workloads::MatMulSpec S;
    S.NumHarts = O.Cores * sim::HartsPerCore;
    S.Version = workloads::MatMulVersion::Distributed;
    return workloads::buildMatMulProgram(S);
  }
  if (O.Workload == "pipeline") {
    workloads::PipelineSpec S;
    S.Stages = std::min(O.Cores * sim::HartsPerCore, 8u);
    return workloads::buildPipelineProgram(S);
  }
  Err = "unknown workload '" + O.Workload + "'";
  return std::string();
}

} // namespace

int main(int Argc, char **Argv) {
  Options O;
  if (!parseArgs(Argc, Argv, O))
    return usage();

  std::string Err;
  std::string Asm = buildAsmText(O, Err);
  if (Asm.empty()) {
    std::fprintf(stderr, "lbp_fleet: %s\n", Err.c_str());
    return 2;
  }
  assembler::AsmResult R = assembler::assemble(Asm);
  if (!R.succeeded()) {
    std::fprintf(stderr, "lbp_fleet: assembly failed:\n%s\n",
                 R.errorText().c_str());
    return 2;
  }

  // One shared read-only image; the workers inherit it copy-on-write.
  std::vector<assembler::Program> Images;
  Images.push_back(std::move(R.Prog));

  // The cross-check variant list; a plain campaign is the degenerate
  // single-variant case with the --engine/--threads configuration.
  std::vector<EngineVariant> Variants;
  if (O.CrossCheck.empty()) {
    EngineVariant V;
    V.FastPath = O.FastPath;
    V.Threads = O.Threads;
    Variants.push_back(V);
  } else {
    for (const std::string &Spec : O.CrossCheck) {
      EngineVariant V;
      if (!parseEngineVariant(Spec, V)) {
        std::fprintf(stderr,
                     "lbp_fleet: bad --cross-check variant '%s' (want "
                     "reference | fast | parallel-tN)\n",
                     Spec.c_str());
        return 2;
      }
      Variants.push_back(std::move(V));
    }
  }

  // Queue order is group-major: every variant of seed i before any of
  // seed i+1, so the report reads as consecutive comparable groups.
  std::vector<fleet::RunSpec> Specs;
  for (unsigned I = 0; I != O.Runs; ++I) {
    for (const EngineVariant &V : Variants) {
      fleet::RunSpec S;
      uint64_t Seed = O.SeedBase + I;
      S.Name = (O.AsmFile.empty() ? O.Workload : O.AsmFile) + "-seed" +
               std::to_string(Seed);
      if (!O.CrossCheck.empty())
        S.Name += ":" + V.Name;
      S.Cfg = sim::SimConfig::lbp(O.Cores);
      S.Cfg.FastPath = V.FastPath;
      S.Cfg.HostThreads = V.Threads;
      S.Cfg.PerturbForTest = O.Perturb;
      S.Cfg.Faults.Seed = Seed;
      S.Cfg.Faults.Drops = O.Drops;
      S.Cfg.Faults.Delays = O.Delays;
      S.Cfg.Faults.BitFlips = O.Flips;
      S.Cfg.Faults.StuckBanks = O.Stuck;
      S.DeadlineCycles = O.DeadlineCycles;
      Specs.push_back(std::move(S));
    }
  }

  fleet::CampaignResult Result =
      fleet::runCampaign(Images, Specs, O.FC);

  // Cross-check: compare fingerprints within each group and triage
  // every mismatching pair in-process against the group's first
  // completed run. Reports are canonical, so the campaign JSON stays
  // byte-identical across repeat invocations.
  bool Diverged = false;
  std::string Extra;
  if (Variants.size() > 1) {
    std::string Reports;
    size_t G = Variants.size();
    for (size_t Base = 0; Base + G <= Result.Runs.size(); Base += G) {
      size_t Ref = Base;
      while (Ref != Base + G &&
             Result.Runs[Ref].V == fleet::Verdict::Incomplete)
        ++Ref;
      if (Ref == Base + G)
        continue; // nothing in this group completed
      for (size_t I = Ref + 1; I != Base + G; ++I) {
        const fleet::RunResult &A = Result.Runs[Ref];
        const fleet::RunResult &B = Result.Runs[I];
        if (B.V == fleet::Verdict::Incomplete)
          continue;
        if (A.Status == B.Status && A.Cycles == B.Cycles &&
            A.TraceHash == B.TraceHash)
          continue;
        Diverged = true;
        obs::TriageRunSpec SA{A.Name, Specs[Ref].Cfg};
        obs::TriageRunSpec SB{B.Name, Specs[I].Cfg};
        obs::TriageOptions TOpts;
        TOpts.MaxCycles = O.DeadlineCycles;
        obs::TriageResult TR =
            obs::triageDivergence(Images[0], SA, SB, TOpts);
        if (!Reports.empty())
          Reports += ",\n    ";
        Reports += obs::triageReportToJson(
            TR, O.AsmFile.empty() ? O.Workload : O.AsmFile);
      }
    }
    Extra = formatString("  \"divergence_triage\": [%s],\n",
                         Reports.empty()
                             ? ""
                             : ("\n    " + Reports + "\n  ").c_str());
  }
  std::string Json = fleet::campaignToJson(Result, Extra);

  if (O.Out.empty()) {
    std::fwrite(Json.data(), 1, Json.size(), stdout);
  } else {
    std::ofstream Out(O.Out, std::ios::trunc);
    if (!Out) {
      std::fprintf(stderr, "lbp_fleet: cannot write '%s'\n",
                   O.Out.c_str());
      return 2;
    }
    Out << Json;
  }

  if (Diverged) {
    std::fprintf(stderr, "lbp_fleet: cross-check divergence; see "
                         "\"divergence_triage\" in the report\n");
    return 1;
  }
  if (!Result.Complete)
    return 1;
  if (O.Strict)
    for (const fleet::RunResult &Run : Result.Runs)
      if (Run.V != fleet::Verdict::Pass)
        return 1;
  return 0;
}
