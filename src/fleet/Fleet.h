//===- fleet/Fleet.h - Crash-isolated simulation campaigns -------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The fleet runner (docs/ROBUSTNESS.md "Fleet failure taxonomy"): a
/// work queue of N independent simulations — seed sweeps, fault
/// campaigns, config sweeps — executed across host worker *processes*
/// and aggregated into one canonical JSON report. Robust by
/// construction:
///
///  * Crash isolation. Each run executes in a fork()ed child; the
///    parent-assembled program images are shared read-only through
///    copy-on-write. A SIGSEGV, SIGKILL or OOM kill takes down exactly
///    one attempt of one run, never the campaign.
///  * Deterministic timeout. Every run carries a cycle deadline; a run
///    that exhausts it is classified RunStatus::Deadline — a property
///    of the simulated machine, reproducible on every host, and
///    distinct from Livelock (the machine stopped making progress) and
///    from the wall-clock watchdog below.
///  * Watchdog. A wall-clock timeout (host backstop, e.g. against a
///    wedged worker) SIGKILLs the child. The *attempt* is recorded as
///    hung; the run itself is retried and, thanks to checkpointing,
///    classified by its deterministic outcome.
///  * Bounded retry. Crashed and hung attempts are retried up to
///    MaxAttempts with capped exponential backoff. A retried run
///    resumes from its last checkpoint (Machine::saveSnapshot) and
///    still produces the exact trace hash and counter snapshot of an
///    uninterrupted run.
///  * Graceful degradation. When retries are exhausted the run is
///    reported with Verdict::Incomplete — the campaign still
///    terminates, still emits the full report, and says exactly what
///    is missing. Never a hang, never a silent drop.
///
/// The aggregate report contains no wall-clock data and is ordered by
/// queue index, so two invocations of the same campaign emit
/// byte-identical JSON (given the same injection flags; see
/// FleetConfig::InjectCrashRun).
///
//===----------------------------------------------------------------------===//

#ifndef LBP_FLEET_FLEET_H
#define LBP_FLEET_FLEET_H

#include "asm/Program.h"
#include "sim/Config.h"
#include "sim/Machine.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lbp {
namespace fleet {

/// One queued simulation.
struct RunSpec {
  std::string Name;          ///< Stable identifier in the report.
  unsigned ProgramIndex = 0; ///< Into the shared images vector.
  sim::SimConfig Cfg;

  /// The run's deterministic deadline: a run still unfinished after
  /// this many simulated cycles is classified RunStatus::Deadline.
  uint64_t DeadlineCycles = 100000000;
};

/// Final classification of one run.
enum class Verdict : uint8_t {
  Pass,       ///< RunStatus::Exited.
  Fault,      ///< Machine check / invalid instruction / protocol fault.
  Livelock,   ///< The machine stopped making progress.
  Deadline,   ///< The cycle deadline expired (deterministic timeout).
  Incomplete, ///< Every attempt crashed or hung; no verdict exists.
};

const char *verdictName(Verdict V);

/// How one attempt of a run ended, in attempt order.
enum class AttemptOutcome : uint8_t {
  Completed, ///< The worker delivered a result.
  Crashed,   ///< The worker died (signal / nonzero exit / bad result).
  Hung,      ///< The wall-clock watchdog killed the worker.
};

const char *attemptOutcomeName(AttemptOutcome O);

/// Everything the report records about one run.
struct RunResult {
  std::string Name;
  Verdict V = Verdict::Incomplete;
  sim::RunStatus Status = sim::RunStatus::MaxCycles;
  uint64_t Cycles = 0;
  uint64_t Retired = 0;
  uint64_t TraceHash = 0;
  /// Fault message or the livelock per-hart wait report.
  std::string Message;
  std::string Engine;     ///< Engine the final attempt ran on.
  std::string EngineNote; ///< Machine::engineNote() diagnostic.
  unsigned FaultsFired = 0;
  std::vector<AttemptOutcome> Attempts;
  bool ResumedFromCheckpoint = false;
};

/// Campaign-level policy.
struct FleetConfig {
  unsigned Workers = 4;     ///< Concurrent worker processes.
  unsigned MaxAttempts = 2; ///< Attempts per run before Incomplete.

  /// Wall-clock watchdog per attempt in milliseconds; 0 disables it.
  /// A host backstop only — deterministic timeouts are cycle deadlines.
  uint64_t WallTimeoutMs = 0;

  /// Retry backoff: attempt k (k >= 1) becomes eligible
  /// min(BackoffBaseMs << (k - 1), BackoffCapMs) after the failure.
  uint64_t BackoffBaseMs = 50;
  uint64_t BackoffCapMs = 2000;

  /// Checkpoint cadence in simulated cycles (0 disables). Workers write
  /// atomically (tmp + rename) into CheckpointDir; a retry restores the
  /// newest checkpoint and resumes bit-identically.
  uint64_t CheckpointInterval = 0;
  std::string CheckpointDir = ".";

  /// Failure injection for the CI smoke campaign: the worker for run
  /// index InjectCrashRun aborts on its first attempt (after its first
  /// checkpoint when checkpointing is on); InjectHangRun sleeps forever
  /// on its first attempt until the watchdog fires. -1 disables.
  /// Retries are not injected, which keeps the campaign deterministic.
  int InjectCrashRun = -1;
  int InjectHangRun = -1;
};

struct CampaignResult {
  std::vector<RunResult> Runs; ///< In queue (spec) order.
  bool Complete = true;        ///< No Verdict::Incomplete present.
};

/// Executes \p Specs over the shared \p Images per \p FC. Blocks until
/// every run has a verdict; always returns (degraded, never hung).
CampaignResult runCampaign(const std::vector<assembler::Program> &Images,
                           const std::vector<RunSpec> &Specs,
                           const FleetConfig &FC);

/// Canonical aggregate report: fixed field order, runs in queue order,
/// no wall-clock data — byte-identical across repeat invocations of a
/// deterministic campaign.
std::string campaignToJson(const CampaignResult &R);

/// Same report with caller-supplied extra top-level members spliced in
/// before "complete". \p ExtraJson must be zero or more pre-rendered
/// `"key": value` members, each terminated by ",\n" and indented two
/// spaces — e.g. the "divergence_triage" array lbp_fleet embeds when a
/// cross-check campaign diverges. Canonical iff the extra bytes are.
std::string campaignToJson(const CampaignResult &R,
                           const std::string &ExtraJson);

} // namespace fleet
} // namespace lbp

#endif // LBP_FLEET_FLEET_H
