//===- analysis/XParVerify.h - X_PAR protocol verifier ------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Static verifier for the X_PAR fork/join protocol over assembled
/// programs (docs/ANALYSIS.md). It abstract-interprets each function's
/// instruction stream and checks the obligations the hardware imposes
/// but never diagnoses:
///
///   * every p_fc/p_fn allocation is started by exactly one fork-call
///     (p_jalr/p_jal) — a leaked allocation pins a hart forever;
///   * continuation-frame stores (p_swcv) land on 4-aligned slots
///     inside the 64-byte frame, and a p_syncm drains them before the
///     fork-call hands the frame to the new hart;
///   * the forked hart's p_lwcv run only reads slots the forker stored;
///   * p_swre/p_lwre name result slots inside the hart's buffer;
///   * LBP_parallel_start call sites pass a sane team size and a thread
///     function that ends with p_ret (not a plain ret), and the
///     reduction collect count matches the team's send count.
///
/// The walk is linear per function with constant propagation reset at
/// branch targets; it verifies the protocol shapes our code generators
/// emit rather than arbitrary control flow (docs/ANALYSIS.md lists the
/// caveats).
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ANALYSIS_XPARVERIFY_H
#define LBP_ANALYSIS_XPARVERIFY_H

#include "analysis/Diag.h"
#include "asm/Program.h"

namespace lbp {
namespace analysis {

struct XParVerifyOptions {
  /// Hart count of the machine the program targets; 0 = unknown (the
  /// architectural MaxTeamHarts bound still applies).
  unsigned MachineHarts = 0;
};

/// Runs the X_PAR protocol verifier over every function of \p Prog.
AnalysisResult verifyProgram(const assembler::Program &Prog,
                             const XParVerifyOptions &Opts = {});

} // namespace analysis
} // namespace lbp

#endif // LBP_ANALYSIS_XPARVERIFY_H
