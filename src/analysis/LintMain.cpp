//===- analysis/LintMain.cpp - lbp_lint driver --------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lbp_lint command-line driver (docs/ANALYSIS.md): runs the Det-C
/// determinism analyzer and the X_PAR protocol verifier over source
/// files, assembly files or the built-in workload generators, with an
/// optional dynamic-oracle cross-check.
///
///   lbp_lint [options] file.c ... file.s ... | -
///     --Werror            treat warnings as errors (exit 1)
///     --machine-harts N   validate team sizes against an N-hart machine
///     --cores N           simulator size for --oracle (default 4)
///     --oracle            run the program and cross-check the verdict
///     --asm               treat every input (and stdin) as assembly
///     --workloads         verify the built-in workload generators
///
/// Exit status: 0 = clean, 1 = findings, 2 = usage/input error.
///
//===----------------------------------------------------------------------===//

#include "analysis/DetRace.h"
#include "analysis/Oracle.h"
#include "analysis/XParVerify.h"
#include "asm/Assembler.h"
#include "dsl/CodeGen.h"
#include "frontend/Compiler.h"
#include "workloads/Dma.h"
#include "workloads/MatMul.h"
#include "workloads/Phases.h"
#include "workloads/Pipeline.h"
#include "workloads/SensorFusion.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace lbp;
using namespace lbp::analysis;

namespace {

struct Options {
  bool Werror = false;
  bool Oracle = false;
  bool ForceAsm = false;
  bool Workloads = false;
  unsigned MachineHarts = 0;
  unsigned Cores = 4;
  std::vector<std::string> Inputs;
};

void printDiags(const std::string &Name, const AnalysisResult &Res) {
  for (const Diag &D : Res.Diags) {
    const char *Sev = D.Sev == Severity::Error ? "error" : "warning";
    if (D.Line)
      std::printf("%s:%u: %s: [%s] %s\n", Name.c_str(), D.Line, Sev,
                  D.Rule.c_str(), D.Message.c_str());
    else
      std::printf("%s: %s: [%s] %s\n", Name.c_str(), Sev, D.Rule.c_str(),
                  D.Message.c_str());
  }
}

bool endsWith(const std::string &S, const char *Suffix) {
  std::string Suf(Suffix);
  return S.size() >= Suf.size() &&
         S.compare(S.size() - Suf.size(), Suf.size(), Suf) == 0;
}

/// 0 = clean, 1 = findings, 2 = hard input error.
int lintAsm(const std::string &Name, const std::string &Text,
            const Options &Opts, const dsl::Module *M) {
  assembler::AsmResult R = assembler::assemble(Text);
  if (!R.succeeded()) {
    std::fprintf(stderr, "%s: assembly failed:\n%s", Name.c_str(),
                 R.errorText().c_str());
    return 2;
  }
  XParVerifyOptions VOpts;
  VOpts.MachineHarts = Opts.MachineHarts;
  AnalysisResult Res = verifyProgram(R.Prog, VOpts);
  printDiags(Name, Res);
  int Status = Res.hasErrors() || (Opts.Werror && !Res.clean()) ? 1 : 0;

  if (Opts.Oracle) {
    OracleOptions OOpts;
    OOpts.Cores = Opts.Cores;
    OracleResult Dyn = runOracle(R.Prog, M, OOpts);
    if (!Dyn.Ran) {
      std::printf("%s: oracle: %s\n", Name.c_str(), Dyn.RunError.c_str());
      Status = std::max(Status, 1);
    } else {
      for (const DynamicConflict &C : Dyn.Conflicts) {
        std::string Where =
            C.Symbol.empty() ? std::string() : C.Symbol + " at ";
        std::printf("%s: oracle: harts %u and %u conflict on %s0x%x in "
                    "epoch %llu (%s)\n",
                    Name.c_str(), C.HartA, C.HartB, Where.c_str(), C.Addr,
                    static_cast<unsigned long long>(C.Epoch),
                    C.WriteWrite ? "write-write" : "read-write");
      }
      if (Dyn.dynamicallyRacy())
        Status = std::max(Status, 1);
    }
  }
  return Status;
}

int lintDetC(const std::string &Name, const std::string &Text,
             const Options &Opts) {
  frontend::FrontendResult FR = frontend::parseDetC(Text);
  if (!FR.succeeded()) {
    std::fprintf(stderr, "%s: parse failed:\n%s", Name.c_str(),
                 FR.errorText().c_str());
    return 2;
  }
  DetRaceOptions DOpts;
  DOpts.MachineHarts = Opts.MachineHarts;
  AnalysisResult Res = analyzeModule(*FR.M, DOpts);
  printDiags(Name, Res);
  int Status = Res.hasErrors() || (Opts.Werror && !Res.clean()) ? 1 : 0;

  // Region-shape errors mean codegen would refuse (fatal) or emit a
  // protocol the machine cannot run; stop at the static verdict.
  for (const Diag &D : Res.Diags)
    if (D.Sev == Severity::Error && D.Rule.rfind("region.", 0) == 0)
      return Status;

  std::string Asm = dsl::compileModule(*FR.M);
  int AsmStatus = lintAsm(Name, Asm, Opts, FR.M.get());
  return std::max(Status, AsmStatus);
}

int lintWorkloads(const Options &Opts) {
  struct Gen {
    const char *Name;
    std::string Text;
  };
  std::vector<Gen> Gens;
  Gens.push_back({"workload:dma", workloads::buildDmaStreamProgram({})});
  for (workloads::MatMulVersion V :
       {workloads::MatMulVersion::Base, workloads::MatMulVersion::Copy,
        workloads::MatMulVersion::Distributed,
        workloads::MatMulVersion::DistCopy,
        workloads::MatMulVersion::Tiled})
    Gens.push_back({"workload:matmul", workloads::buildMatMulProgram(
                                           workloads::MatMulSpec::paper(
                                               16, V))});
  Gens.push_back({"workload:phases", workloads::buildPhasesProgram({})});
  Gens.push_back(
      {"workload:pipeline", workloads::buildPipelineProgram({})});
  Gens.push_back(
      {"workload:sensor-fusion", workloads::buildSensorFusionProgram({})});
  int Status = 0;
  for (const Gen &G : Gens)
    Status = std::max(Status, lintAsm(G.Name, G.Text, Opts, nullptr));
  return Status;
}

int usage() {
  std::fprintf(
      stderr,
      "usage: lbp_lint [--Werror] [--machine-harts N] [--cores N]\n"
      "                [--oracle] [--asm] [--workloads] [file|-]...\n"
      "  .c/.detc inputs run the Det-C determinism analyzer, then the\n"
      "  X_PAR protocol verifier on the compiled assembly; .s/.asm\n"
      "  inputs run the verifier only. See docs/ANALYSIS.md.\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--Werror") {
      Opts.Werror = true;
    } else if (A == "--oracle") {
      Opts.Oracle = true;
    } else if (A == "--asm") {
      Opts.ForceAsm = true;
    } else if (A == "--workloads") {
      Opts.Workloads = true;
    } else if (A == "--machine-harts" || A == "--cores") {
      if (I + 1 >= Argc)
        return usage();
      char *End = nullptr;
      long V = std::strtol(Argv[++I], &End, 0);
      if (!End || *End || V <= 0)
        return usage();
      (A == "--cores" ? Opts.Cores : Opts.MachineHarts) =
          static_cast<unsigned>(V);
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (A.size() > 1 && A[0] == '-' && A != "-") {
      std::fprintf(stderr, "lbp_lint: unknown option '%s'\n", A.c_str());
      return usage();
    } else {
      Opts.Inputs.push_back(A);
    }
  }
  if (Opts.Inputs.empty() && !Opts.Workloads)
    return usage();

  int Status = 0;
  if (Opts.Workloads)
    Status = std::max(Status, lintWorkloads(Opts));

  for (const std::string &Input : Opts.Inputs) {
    std::string Name = Input == "-" ? "<stdin>" : Input;
    std::string Text;
    if (Input == "-") {
      std::ostringstream SS;
      SS << std::cin.rdbuf();
      Text = SS.str();
    } else {
      std::ifstream In(Input);
      if (!In) {
        std::fprintf(stderr, "lbp_lint: cannot open '%s'\n",
                     Input.c_str());
        return 2;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      Text = SS.str();
    }
    bool IsAsm = Opts.ForceAsm || endsWith(Name, ".s") ||
                 endsWith(Name, ".asm");
    int One = IsAsm ? lintAsm(Name, Text, Opts, nullptr)
                    : lintDetC(Name, Text, Opts);
    if (One == 2)
      return 2;
    Status = std::max(Status, One);
  }
  return Status;
}
