//===- analysis/LintMain.cpp - lbp_lint driver --------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The lbp_lint command-line driver (docs/ANALYSIS.md): runs the Det-C
/// determinism analyzer and the X_PAR protocol verifier over source
/// files, assembly files or the built-in workload generators, with an
/// optional dynamic-oracle cross-check.
///
///   lbp_lint [options] file.c ... file.s ... | -
///     --Werror            treat warnings as errors (exit 1)
///     --machine-harts N   validate team sizes against an N-hart machine
///     --cores N           simulator size for the oracle (default 4)
///     --bank-bits N       log2 of the global bank size for the
///                         bank-disjointness rule (default 16)
///     --oracle            run the program and cross-check the verdict
///     --oracle-refine     run the oracle and refine race.may findings:
///                         a dynamic witness upgrades them to
///                         race.confirmed errors with hart/address/cycle
///                         evidence; no witness annotates them
///                         unconfirmed-on-corpus
///     --json              emit one machine-readable JSON report on
///                         stdout instead of text diagnostics
///     --asm               treat every input (and stdin) as assembly
///     --workloads         verify the built-in workload generators
///
/// Exit status: 0 = clean, 1 = findings, 2 = usage/input error.
///
//===----------------------------------------------------------------------===//

#include "analysis/DetRace.h"
#include "analysis/Oracle.h"
#include "analysis/XParVerify.h"
#include "asm/Assembler.h"
#include "dsl/CodeGen.h"
#include "frontend/Compiler.h"
#include "support/StringUtils.h"
#include "workloads/Dma.h"
#include "workloads/MatMul.h"
#include "workloads/Phases.h"
#include "workloads/Pipeline.h"
#include "workloads/SensorFusion.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

using namespace lbp;
using namespace lbp::analysis;

namespace {

struct Options {
  bool Werror = false;
  bool Oracle = false;
  bool OracleRefine = false;
  bool Json = false;
  bool ForceAsm = false;
  bool Workloads = false;
  unsigned MachineHarts = 0;
  unsigned Cores = 4;
  unsigned BankBits = 16;
  std::vector<std::string> Inputs;
};

/// Everything lbp_lint learned about one input, kept structured so the
/// --json report is assembled from the same data the text path prints.
struct InputReport {
  std::string File;
  std::string Kind; ///< "detc", "asm" or "workload".
  AnalysisResult Res; ///< Static + X_PAR findings, oracle-refined.
  bool OracleRan = false;
  unsigned OracleConflicts = 0;
  std::string HardError; ///< Parse/assembly failure; implies Status 2.
  int Status = 0; ///< 0 = clean, 1 = findings, 2 = hard error.
};

void printDiags(const std::string &Name, const AnalysisResult &Res) {
  for (const Diag &D : Res.Diags) {
    const char *Sev = D.Sev == Severity::Error ? "error" : "warning";
    if (D.Line)
      std::printf("%s:%u: %s: [%s] %s\n", Name.c_str(), D.Line, Sev,
                  D.Rule.c_str(), D.Message.c_str());
    else
      std::printf("%s: %s: [%s] %s\n", Name.c_str(), Sev, D.Rule.c_str(),
                  D.Message.c_str());
  }
  for (const RegionCert &C : Res.Certs)
    std::printf("%s:%u: note: [region.certificate] parallel region '%s' "
                "(team %u): %u affine, %u banked, %u may accesses; "
                "discharged %u by banks, %u by residue; %u may-race "
                "finding%s; reduction %s\n",
                Name.c_str(), C.Line, C.Region.c_str(), C.Team, C.Affine,
                C.Banked, C.May, C.BankDischarged, C.ResidueDischarged,
                C.MayRaces, C.MayRaces == 1 ? "" : "s",
                C.ReductionCertified ? "certified" : "not certified");
}

std::string reportToJson(const InputReport &R) {
  return formatString(
      "{\"file\":\"%s\",\"kind\":\"%s\",\"hard_error\":\"%s\","
      "\"oracle_ran\":%s,\"oracle_conflicts\":%u,\"report\":%s}",
      jsonEscape(R.File).c_str(), jsonEscape(R.Kind).c_str(),
      jsonEscape(R.HardError).c_str(), R.OracleRan ? "true" : "false",
      R.OracleConflicts, resultToJson(R.Res).c_str());
}

bool endsWith(const std::string &S, const char *Suffix) {
  std::string Suf(Suffix);
  return S.size() >= Suf.size() &&
         S.compare(S.size() - Suf.size(), Suf.size(), Suf) == 0;
}

int statusOf(const AnalysisResult &Res, const Options &Opts) {
  return Res.hasErrors() || (Opts.Werror && !Res.clean()) ? 1 : 0;
}

/// Assembles \p Text, runs the X_PAR verifier and (when requested) the
/// dynamic oracle, accumulating into \p Rep. \p Static, when non-null,
/// receives the oracle refinement before the X_PAR findings are merged
/// into it — the race.may lifecycle belongs to the Det-C analyzer.
void lintAsmInto(const std::string &Text, const Options &Opts,
                 const dsl::Module *M, AnalysisResult *Static,
                 InputReport &Rep) {
  assembler::AsmResult R = assembler::assemble(Text);
  if (!R.succeeded()) {
    Rep.HardError = "assembly failed: " + R.errorText();
    Rep.Status = 2;
    return;
  }
  XParVerifyOptions VOpts;
  VOpts.MachineHarts = Opts.MachineHarts;
  AnalysisResult XRes = verifyProgram(R.Prog, VOpts);

  OracleResult Dyn;
  if (Opts.Oracle || Opts.OracleRefine) {
    OracleOptions OOpts;
    OOpts.Cores = Opts.Cores;
    Dyn = runOracle(R.Prog, M, OOpts);
    Rep.OracleRan = Dyn.Ran;
    Rep.OracleConflicts = static_cast<unsigned>(Dyn.Conflicts.size());
    if (!Dyn.Ran) {
      if (!Opts.Json)
        std::printf("%s: oracle: %s\n", Rep.File.c_str(),
                    Dyn.RunError.c_str());
      Rep.Res.error(0, "oracle.run-error", Dyn.RunError);
      Rep.Status = std::max(Rep.Status, 1);
    } else if (!Opts.Json) {
      for (const DynamicConflict &C : Dyn.Conflicts) {
        std::string Where =
            C.Symbol.empty() ? std::string() : C.Symbol + " at ";
        std::printf("%s: oracle: harts %u and %u conflict on %s0x%x in "
                    "epoch %llu (%s)\n",
                    Rep.File.c_str(), C.HartA, C.HartB, Where.c_str(),
                    C.Addr, static_cast<unsigned long long>(C.Epoch),
                    C.WriteWrite ? "write-write" : "read-write");
      }
    }
    if (Dyn.dynamicallyRacy())
      Rep.Status = std::max(Rep.Status, 1);
  }

  if (Static) {
    if (Opts.OracleRefine && Dyn.Ran)
      refineWithOracle(*Static, Dyn);
    Static->append(XRes);
    Rep.Res.append(*Static);
  } else {
    Rep.Res.append(XRes);
  }
  Rep.Status = std::max(Rep.Status, statusOf(Rep.Res, Opts));
}

InputReport lintAsm(const std::string &Name, const std::string &Text,
                    const std::string &Kind, const Options &Opts,
                    const dsl::Module *M) {
  InputReport Rep;
  Rep.File = Name;
  Rep.Kind = Kind;
  lintAsmInto(Text, Opts, M, nullptr, Rep);
  return Rep;
}

InputReport lintDetC(const std::string &Name, const std::string &Text,
                     const Options &Opts) {
  InputReport Rep;
  Rep.File = Name;
  Rep.Kind = "detc";
  frontend::FrontendResult FR = frontend::parseDetC(Text);
  if (!FR.succeeded()) {
    Rep.HardError = "parse failed: " + FR.errorText();
    Rep.Status = 2;
    return Rep;
  }
  DetRaceOptions DOpts;
  DOpts.MachineHarts = Opts.MachineHarts;
  DOpts.GlobalBankSizeLog2 = Opts.BankBits;
  AnalysisResult Res = analyzeModule(*FR.M, DOpts);

  // Region-shape errors mean codegen would refuse (fatal) or emit a
  // protocol the machine cannot run; stop at the static verdict.
  bool RegionErrors = false;
  for (const Diag &D : Res.Diags)
    if (D.Sev == Severity::Error && D.Rule.rfind("region.", 0) == 0)
      RegionErrors = true;
  if (RegionErrors) {
    Rep.Res = std::move(Res);
    Rep.Status = statusOf(Rep.Res, Opts);
    return Rep;
  }

  std::string Asm = dsl::compileModule(*FR.M);
  lintAsmInto(Asm, Opts, FR.M.get(), &Res, Rep);
  return Rep;
}

void lintWorkloads(const Options &Opts, std::vector<InputReport> &Out) {
  struct Gen {
    const char *Name;
    std::string Text;
  };
  std::vector<Gen> Gens;
  Gens.push_back({"workload:dma", workloads::buildDmaStreamProgram({})});
  for (workloads::MatMulVersion V :
       {workloads::MatMulVersion::Base, workloads::MatMulVersion::Copy,
        workloads::MatMulVersion::Distributed,
        workloads::MatMulVersion::DistCopy,
        workloads::MatMulVersion::Tiled})
    Gens.push_back({"workload:matmul", workloads::buildMatMulProgram(
                                           workloads::MatMulSpec::paper(
                                               16, V))});
  Gens.push_back({"workload:phases", workloads::buildPhasesProgram({})});
  Gens.push_back(
      {"workload:pipeline", workloads::buildPipelineProgram({})});
  Gens.push_back(
      {"workload:sensor-fusion", workloads::buildSensorFusionProgram({})});
  for (const Gen &G : Gens)
    Out.push_back(lintAsm(G.Name, G.Text, "workload", Opts, nullptr));
}

int usage() {
  std::fprintf(
      stderr,
      "usage: lbp_lint [--Werror] [--machine-harts N] [--cores N]\n"
      "                [--bank-bits N] [--oracle] [--oracle-refine]\n"
      "                [--json] [--asm] [--workloads] [file|-]...\n"
      "  .c/.detc inputs run the Det-C determinism analyzer, then the\n"
      "  X_PAR protocol verifier on the compiled assembly; .s/.asm\n"
      "  inputs run the verifier only. --oracle-refine upgrades\n"
      "  race.may warnings with a dynamic witness to race.confirmed\n"
      "  errors. --json prints one lbp-lint-report-v1 object on\n"
      "  stdout. See docs/ANALYSIS.md.\n");
  return 2;
}

} // namespace

int main(int Argc, char **Argv) {
  Options Opts;
  for (int I = 1; I < Argc; ++I) {
    std::string A = Argv[I];
    if (A == "--Werror") {
      Opts.Werror = true;
    } else if (A == "--oracle") {
      Opts.Oracle = true;
    } else if (A == "--oracle-refine") {
      Opts.OracleRefine = true;
    } else if (A == "--json") {
      Opts.Json = true;
    } else if (A == "--asm") {
      Opts.ForceAsm = true;
    } else if (A == "--workloads") {
      Opts.Workloads = true;
    } else if (A == "--machine-harts" || A == "--cores" ||
               A == "--bank-bits") {
      if (I + 1 >= Argc)
        return usage();
      char *End = nullptr;
      long V = std::strtol(Argv[++I], &End, 0);
      if (!End || *End || V <= 0)
        return usage();
      if (A == "--cores")
        Opts.Cores = static_cast<unsigned>(V);
      else if (A == "--bank-bits")
        Opts.BankBits = static_cast<unsigned>(V);
      else
        Opts.MachineHarts = static_cast<unsigned>(V);
    } else if (A == "--help" || A == "-h") {
      usage();
      return 0;
    } else if (A.size() > 1 && A[0] == '-' && A != "-") {
      std::fprintf(stderr, "lbp_lint: unknown option '%s'\n", A.c_str());
      return usage();
    } else {
      Opts.Inputs.push_back(A);
    }
  }
  if (Opts.Inputs.empty() && !Opts.Workloads)
    return usage();

  std::vector<InputReport> Reports;
  if (Opts.Workloads)
    lintWorkloads(Opts, Reports);

  int Status = 0;
  for (const std::string &Input : Opts.Inputs) {
    std::string Name = Input == "-" ? "<stdin>" : Input;
    std::string Text;
    if (Input == "-") {
      std::ostringstream SS;
      SS << std::cin.rdbuf();
      Text = SS.str();
    } else {
      std::ifstream In(Input);
      if (!In) {
        std::fprintf(stderr, "lbp_lint: cannot open '%s'\n",
                     Input.c_str());
        return 2;
      }
      std::ostringstream SS;
      SS << In.rdbuf();
      Text = SS.str();
    }
    bool IsAsm = Opts.ForceAsm || endsWith(Name, ".s") ||
                 endsWith(Name, ".asm");
    Reports.push_back(IsAsm ? lintAsm(Name, Text, "asm", Opts, nullptr)
                            : lintDetC(Name, Text, Opts));
  }

  for (const InputReport &R : Reports) {
    if (!Opts.Json) {
      if (!R.HardError.empty())
        std::fprintf(stderr, "%s: %s", R.File.c_str(),
                     R.HardError.c_str());
      printDiags(R.File, R.Res);
    }
    Status = std::max(Status, R.Status);
  }

  if (Opts.Json) {
    std::string S = formatString("{\"tool\":\"lbp-lint-report-v1\","
                                 "\"exit\":%d,\"inputs\":[",
                                 Status);
    for (size_t I = 0; I != Reports.size(); ++I) {
      if (I)
        S += ',';
      S += reportToJson(Reports[I]);
    }
    S += "]}";
    std::printf("%s\n", S.c_str());
  }
  return Status;
}
