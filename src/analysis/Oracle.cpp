//===- analysis/Oracle.cpp - Dynamic race oracle -----------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Oracle.h"

#include "sim/Machine.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>

using namespace lbp;
using namespace lbp::analysis;
using namespace lbp::sim;

namespace {

const char *statusName(RunStatus S) {
  switch (S) {
  case RunStatus::Exited:
    return "exited";
  case RunStatus::MaxCycles:
    return "cycle budget exhausted";
  case RunStatus::Livelock:
    return "livelock";
  case RunStatus::Fault:
    return "fault";
  case RunStatus::Deadline:
    return "deadline";
  }
  return "unknown";
}

std::string symbolAt(const dsl::Module *M, uint32_t Addr) {
  if (!M)
    return {};
  for (const dsl::Module::GlobalData &G : M->Globals)
    if (Addr >= G.Addr && Addr < G.Addr + 4 * G.SizeWords)
      return G.Name;
  return {};
}

} // namespace

OracleResult analysis::runOracle(const assembler::Program &Prog,
                                 const dsl::Module *M,
                                 const OracleOptions &Opts) {
  OracleResult R;
  SimConfig Cfg = SimConfig::lbp(Opts.Cores);
  Cfg.CollectMemLog = true;
  Machine Mach(Cfg);
  Mach.load(Prog);
  RunStatus St = Mach.run(Opts.MaxCycles);
  if (St != RunStatus::Exited) {
    R.RunError = formatString("simulation did not exit cleanly: %s (%s)",
                              statusName(St), Mach.faultMessage().c_str());
    return R;
  }
  R.Ran = true;

  // Bucket in-team accesses by (word, epoch); a bucket with at least
  // two harts and one write is a conflict the team's only ordering —
  // the join barrier — does not resolve.
  struct Bucket {
    std::vector<const Machine::MemAccess *> Writes;
    std::vector<const Machine::MemAccess *> Reads;
  };
  std::map<std::pair<uint32_t, uint64_t>, Bucket> Buckets;
  for (const Machine::MemAccess &A : Mach.memLog()) {
    if (!A.InTeam)
      continue;
    // A wider access spans every word it touches.
    for (uint32_t W = A.Addr / 4; W <= (A.Addr + A.Width - 1) / 4; ++W) {
      Bucket &B = Buckets[{W, A.Epoch}];
      (A.IsWrite ? B.Writes : B.Reads).push_back(&A);
    }
  }

  for (const auto &[Key, B] : Buckets) {
    if (B.Writes.empty())
      continue;
    const Machine::MemAccess *W0 = B.Writes.front();
    const Machine::MemAccess *Other = nullptr;
    bool WriteWrite = false;
    for (const Machine::MemAccess *W : B.Writes)
      if (W->Hart != W0->Hart) {
        Other = W;
        WriteWrite = true;
        break;
      }
    if (!Other)
      for (const Machine::MemAccess *Rd : B.Reads)
        if (Rd->Hart != W0->Hart) {
          Other = Rd;
          break;
        }
    if (!Other)
      continue;
    DynamicConflict C;
    C.Addr = Key.first * 4;
    C.HartA = W0->Hart;
    C.HartB = Other->Hart;
    C.Epoch = Key.second;
    C.WriteWrite = WriteWrite;
    C.Symbol = symbolAt(M, C.Addr);
    C.CycleA = W0->Cycle;
    C.CycleB = Other->Cycle;
    R.Conflicts.push_back(std::move(C));
  }
  return R;
}

bool analysis::verdictsAgree(const AnalysisResult &Static,
                             const OracleResult &Dyn) {
  bool StaticMust = false, StaticMay = false;
  for (const Diag &D : Static.Diags) {
    if (D.Rule.rfind("race.", 0) != 0)
      continue;
    (D.Rule == "race.may" ? StaticMay : StaticMust) = true;
  }
  if (StaticMust)
    return Dyn.dynamicallyRacy();
  if (StaticMay)
    return true; // a possibility claim agrees with either outcome
  return !Dyn.dynamicallyRacy();
}

unsigned analysis::refineWithOracle(AnalysisResult &Static,
                                    const OracleResult &Dyn) {
  if (!Dyn.Ran)
    return 0;
  auto Witness = [&](const Diag &D) -> const DynamicConflict * {
    for (const DynamicConflict &C : Dyn.Conflicts)
      if (D.Sym.empty() || C.Symbol == D.Sym)
        return &C;
    return nullptr;
  };
  unsigned Upgraded = 0;
  for (Diag &D : Static.Diags) {
    if (D.Rule.rfind("race.", 0) != 0)
      continue;
    const DynamicConflict *C = Witness(D);
    if (D.Rule == "race.may" && C) {
      D.Rule = "race.confirmed";
      D.Sev = Severity::Error;
      D.Oracle = "confirmed";
      D.Message += formatString(
          "; confirmed by the dynamic oracle: harts %u and %u %s on "
          "0x%x%s%s (cycles %llu and %llu, epoch %llu)",
          C->HartA, C->HartB,
          C->WriteWrite ? "both write" : "write and read",
          C->Addr, C->Symbol.empty() ? "" : " in ",
          C->Symbol.c_str(),
          static_cast<unsigned long long>(C->CycleA),
          static_cast<unsigned long long>(C->CycleB),
          static_cast<unsigned long long>(C->Epoch));
      ++Upgraded;
    } else if (C) {
      D.Oracle = "confirmed";
    } else {
      D.Oracle = "unconfirmed-on-corpus";
      if (D.Rule == "race.may")
        D.Message += "; the dynamic oracle observed no conflicting "
                     "access pair on this corpus run";
    }
  }
  return Upgraded;
}
