//===- analysis/Oracle.h - Dynamic race oracle -------------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The dynamic cross-check for the static determinism analyzer
/// (docs/ANALYSIS.md): runs an assembled program on the simulator with
/// the shared-global memory log enabled and looks for cross-hart
/// conflicting accesses inside a team (same join epoch, overlapping
/// bytes, at least one write, different harts). Programs the static
/// analyzer flags as racy should manifest a dynamic conflict on at
/// least one machine size; programs it certifies clean must show zero
/// dynamic conflicts on every size — that agreement is what the
/// analysis test suite asserts.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ANALYSIS_ORACLE_H
#define LBP_ANALYSIS_ORACLE_H

#include "analysis/Diag.h"
#include "asm/Program.h"
#include "dsl/Ast.h"

#include <cstdint>
#include <string>
#include <vector>

namespace lbp {
namespace analysis {

struct OracleOptions {
  unsigned Cores = 4;
  uint64_t MaxCycles = 50'000'000;
};

/// One observed cross-hart conflict inside a team epoch.
struct DynamicConflict {
  uint32_t Addr = 0;
  uint16_t HartA = 0;
  uint16_t HartB = 0;
  uint64_t Epoch = 0;
  bool WriteWrite = false;
  std::string Symbol; ///< Enclosing global, when a module is provided.
  uint64_t CycleA = 0; ///< Commit cycle of HartA's access.
  uint64_t CycleB = 0; ///< Commit cycle of HartB's access.
};

struct OracleResult {
  bool Ran = false;          ///< The program ran to a clean exit.
  std::string RunError;      ///< Simulator status when it did not.
  std::vector<DynamicConflict> Conflicts;

  bool dynamicallyRacy() const { return !Conflicts.empty(); }
};

/// Runs \p Prog with the memory log on and mines the log for in-team
/// conflicts. \p M, when given, names the globals in the report.
OracleResult runOracle(const assembler::Program &Prog,
                       const dsl::Module *M = nullptr,
                       const OracleOptions &Opts = {});

/// True when the static verdict and the dynamic observation agree:
/// a must-race diagnostic (race.ww / race.rw / race.confirmed) must
/// come with an observed conflict, a clean bill with none. race.may
/// warnings agree with either outcome — they claim possibility, not
/// inevitability on this corpus. (Only meaningful when the oracle
/// actually ran.)
bool verdictsAgree(const AnalysisResult &Static, const OracleResult &Dyn);

/// Oracle-backed counterexample refinement: every race.may warning in
/// \p Static is matched against the observed conflicts. A match on the
/// same global (or any conflict, for symbol-less findings) upgrades the
/// warning to a race.confirmed error carrying the concrete hart /
/// address / cycle witness; no match annotates it
/// "unconfirmed-on-corpus". Must-race findings (race.ww / race.rw) get
/// the same annotation without a severity change. No-op when the
/// oracle did not run. Returns the number of upgraded findings.
unsigned refineWithOracle(AnalysisResult &Static, const OracleResult &Dyn);

} // namespace analysis
} // namespace lbp

#endif // LBP_ANALYSIS_ORACLE_H
