//===- analysis/XParVerify.cpp - X_PAR protocol verifier ----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/XParVerify.h"

#include "isa/AddressMap.h"
#include "isa/Encoding.h"
#include "isa/Instr.h"
#include "isa/Reg.h"
#include "romp/Runtime.h"
#include "sim/Config.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <array>
#include <map>
#include <optional>
#include <set>
#include <vector>

using namespace lbp;
using namespace lbp::analysis;
using namespace lbp::isa;

namespace {

struct Func {
  std::string Name;
  uint32_t Begin = 0;
  uint32_t End = 0;
};

/// A p_fc/p_fn allocation the scan has not yet seen started.
struct Pending {
  uint32_t ForkAddr = 0;      ///< Address of the allocating instruction.
  size_t CreatedIdx = 0;      ///< Scan index of the allocation.
  std::set<int32_t> Slots;    ///< Continuation-frame offsets stored.
  bool NeedSync = false;      ///< Frame stores not yet drained by p_syncm.
};

class Verifier {
public:
  Verifier(const assembler::Program &Prog, const XParVerifyOptions &Opts,
           AnalysisResult &Res)
      : Prog(Prog), Opts(Opts), Res(Res) {
    for (const assembler::Segment &Seg : Prog.segments()) {
      if (!Seg.IsText)
        continue;
      for (uint32_t Off = 0; Off + 4 <= Seg.Bytes.size(); Off += 4) {
        uint32_t Addr = Seg.Base + Off;
        uint32_t Word = static_cast<uint32_t>(Seg.Bytes[Off]) |
                        (static_cast<uint32_t>(Seg.Bytes[Off + 1]) << 8) |
                        (static_cast<uint32_t>(Seg.Bytes[Off + 2]) << 16) |
                        (static_cast<uint32_t>(Seg.Bytes[Off + 3]) << 24);
        Instr I = decode(Word);
        if (I.isValid())
          Code[Addr] = I;
      }
    }

    // Function layout: every non-local symbol that points into a text
    // segment opens a function that runs to the next such symbol (or
    // the end of its segment).
    std::vector<std::pair<uint32_t, std::string>> Heads;
    for (const auto &[Name, Value] : Prog.symbols()) {
      if (!Name.empty() && Name[0] == '.')
        continue;
      if (Code.count(Value))
        Heads.emplace_back(Value, Name);
    }
    std::sort(Heads.begin(), Heads.end());
    for (size_t I = 0; I != Heads.size(); ++I) {
      Func F;
      F.Name = Heads[I].second;
      F.Begin = Heads[I].first;
      F.End = segmentEnd(F.Begin);
      if (I + 1 != Heads.size())
        F.End = std::min(F.End, Heads[I + 1].first);
      Funcs.push_back(std::move(F));
    }

    for (const auto &[Addr, I] : Code) {
      switch (I.Op) {
      case Opcode::BEQ:
      case Opcode::BNE:
      case Opcode::BLT:
      case Opcode::BGE:
      case Opcode::BLTU:
      case Opcode::BGEU:
      case Opcode::JAL:
        BranchTargets.insert(Addr + static_cast<uint32_t>(I.Imm));
        break;
      default:
        break;
      }
    }

    ParallelStart = Prog.lookup("LBP_parallel_start");
  }

  void run() {
    for (const Func &F : Funcs)
      scanFunction(F);
  }

private:
  const assembler::Program &Prog;
  const XParVerifyOptions &Opts;
  AnalysisResult &Res;
  std::map<uint32_t, Instr> Code;
  std::vector<Func> Funcs;
  std::set<uint32_t> BranchTargets;
  std::optional<uint32_t> ParallelStart;

  uint32_t segmentEnd(uint32_t Addr) const {
    for (const assembler::Segment &Seg : Prog.segments())
      if (Seg.IsText && Addr >= Seg.Base && Addr < Seg.end())
        return Seg.end();
    return Addr;
  }

  const Func *funcContaining(uint32_t Addr) const {
    for (const Func &F : Funcs)
      if (Addr >= F.Begin && Addr < F.End)
        return &F;
    return nullptr;
  }

  void diag(Severity Sev, uint32_t Addr, const Func &F,
            const std::string &Rule, const std::string &Msg) {
    std::string Full = formatString("%s (at 0x%x in '%s')", Msg.c_str(),
                                    Addr, F.Name.c_str());
    if (Sev == Severity::Error)
      Res.error(Prog.lineOf(Addr), Rule, Full);
    else
      Res.warning(Prog.lineOf(Addr), Rule, Full);
  }

  //===--------------------------------------------------------------------===//
  // Call-site checks for LBP_parallel_start
  //===--------------------------------------------------------------------===//

  /// Counts p_swre instructions targeting the reduction slot inside
  /// \p F; returns false when any of them sits inside a loop (a
  /// backward branch spans it), which makes the static count useless.
  bool countReductionSends(const Func &F, unsigned &K) const {
    K = 0;
    std::vector<uint32_t> SendAddrs;
    for (uint32_t A = F.Begin; A < F.End; A += 4) {
      auto It = Code.find(A);
      if (It == Code.end())
        continue;
      if (It->second.Op == Opcode::P_SWRE &&
          It->second.Imm == static_cast<int32_t>(romp::ReductionSlot)) {
        ++K;
        SendAddrs.push_back(A);
      }
    }
    for (uint32_t A = F.Begin; A < F.End; A += 4) {
      auto It = Code.find(A);
      if (It == Code.end())
        continue;
      const Instr &I = It->second;
      bool IsBranch = I.Op == Opcode::BEQ || I.Op == Opcode::BNE ||
                      I.Op == Opcode::BLT || I.Op == Opcode::BGE ||
                      I.Op == Opcode::BLTU || I.Op == Opcode::BGEU ||
                      I.Op == Opcode::JAL;
      if (!IsBranch)
        continue;
      uint32_t Target = A + static_cast<uint32_t>(I.Imm);
      if (Target > A)
        continue; // forward branch
      for (uint32_t S : SendAddrs)
        if (S >= Target && S <= A)
          return false; // send inside a loop body
    }
    return true;
  }

  void checkTeamLaunch(uint32_t CallAddr, const Func &Caller,
                       const std::array<std::optional<int64_t>, 32> &Consts) {
    std::optional<int64_t> N = Consts[RegA2];
    std::optional<int64_t> ThreadAddr = Consts[RegA3];

    if (N) {
      if (*N <= 0)
        diag(Severity::Error, CallAddr, Caller, "xpar.team-zero",
             "LBP_parallel_start called with a team of " +
                 std::to_string(*N) + " harts");
      else if (*N > static_cast<int64_t>(romp::MaxTeamHarts))
        diag(Severity::Error, CallAddr, Caller, "xpar.team-too-big",
             formatString("team of %lld harts exceeds the architectural "
                          "line maximum of %u",
                          static_cast<long long>(*N), romp::MaxTeamHarts));
      else if (Opts.MachineHarts &&
               *N > static_cast<int64_t>(Opts.MachineHarts))
        diag(Severity::Error, CallAddr, Caller, "xpar.team-too-big",
             formatString("team of %lld harts exceeds the target "
                          "machine's %u harts; the p_fc/p_fn allocator "
                          "would spin forever",
                          static_cast<long long>(*N), Opts.MachineHarts));
    }

    const Func *Thread =
        ThreadAddr ? funcContaining(static_cast<uint32_t>(*ThreadAddr))
                   : nullptr;
    unsigned K = 0;
    bool KExact = false;
    if (Thread) {
      if (Thread->Begin != static_cast<uint32_t>(*ThreadAddr))
        Thread = nullptr; // a3 points into the middle of a function
    }
    if (Thread) {
      bool HasPret = false, HasPlainRet = false;
      uint32_t PlainRetAddr = 0;
      for (uint32_t A = Thread->Begin; A < Thread->End; A += 4) {
        auto It = Code.find(A);
        if (It == Code.end())
          continue;
        const Instr &I = It->second;
        if (I.Op == Opcode::P_JALR && I.Rd == 0)
          HasPret = true;
        if (I.Op == Opcode::JALR && I.Rd == 0 && I.Rs1 == RegRA) {
          HasPlainRet = true;
          PlainRetAddr = A;
        }
      }
      if (!HasPret)
        diag(Severity::Error, CallAddr, Caller, "xpar.thread-missing-pret",
             "thread function '" + Thread->Name +
                 "' never executes p_ret; the team's in-order commit "
                 "barrier would wait forever");
      if (HasPlainRet)
        diag(Severity::Error, PlainRetAddr, *Thread, "xpar.thread-plain-ret",
             "thread function '" + Thread->Name +
                 "' returns with a plain ret; team members must end "
                 "with p_ret so the join propagates");
      KExact = countReductionSends(*Thread, K);
    }

    // Reduction pairing: the collect loop the generators emit is
    //   li tX, C ; loop: p_lwre tY, slot ; ... ; bnez
    // within a few instructions of the call.
    std::optional<int64_t> CollectCount;
    uint32_t CollectAddr = 0;
    std::array<std::optional<int64_t>, 32> Window{};
    Window[0] = 0;
    for (uint32_t A = CallAddr + 4; A < CallAddr + 4 + 16 * 4; A += 4) {
      auto It = Code.find(A);
      if (It == Code.end())
        break;
      const Instr &I = It->second;
      if (I.Op == Opcode::P_LWRE &&
          I.Imm == static_cast<int32_t>(romp::ReductionSlot)) {
        CollectAddr = A;
        break;
      }
      if (I.Op == Opcode::ADDI && I.Rs1 == 0 && I.Rd != 0)
        Window[I.Rd] = I.Imm;
      else if (I.Op == Opcode::JAL || I.Op == Opcode::JALR ||
               I.Op == Opcode::P_JALR)
        break; // a call/return ends the collect window
    }
    if (CollectAddr) {
      // The loop counter is the last small constant loaded before the
      // receive (the emitters use li t3, C).
      for (unsigned R = 1; R != NumRegs; ++R)
        if (Window[R] && (!CollectCount || R == RegT3))
          CollectCount = Window[R];
    }

    if (Thread && KExact && K == 0 && CollectAddr)
      diag(Severity::Error, CollectAddr, Caller, "xpar.reduce-deadlock",
           "reduction collect after the team join, but no member of '" +
               Thread->Name +
               "' ever sends to the reduction slot; the p_lwre blocks "
               "forever");
    if (Thread && KExact && K > 0 && !CollectAddr)
      diag(Severity::Warning, CallAddr, Caller, "xpar.reduce-uncollected",
           "members of '" + Thread->Name +
               "' send reduction partials that the caller never "
               "collects");
    if (Thread && KExact && K > 0 && CollectAddr && CollectCount && N) {
      int64_t C = *CollectCount;
      // Both collect conventions appear in the tree: every member sends
      // (collect N*k) or the head keeps its own partial (collect
      // (N-1)*k).
      if (C != *N * K && C != (*N - 1) * K)
        diag(Severity::Error, CollectAddr, Caller, "xpar.reduce-arity",
             formatString("reduction collects %lld partials but the team "
                          "of %lld sends %u per member (expected %lld or "
                          "%lld)",
                          static_cast<long long>(C),
                          static_cast<long long>(*N), K,
                          static_cast<long long>(*N * K),
                          static_cast<long long>((*N - 1) * K)));
    }
  }

  //===--------------------------------------------------------------------===//
  // Per-function linear scan
  //===--------------------------------------------------------------------===//

  void scanFunction(const Func &F) {
    std::array<std::optional<int64_t>, 32> Consts{};
    Consts[0] = 0;
    std::map<uint8_t, Pending> Forks;
    // Index of the last control-flow join; -1 until the first one so an
    // allocation at the very first instruction still counts as
    // straight-line.
    ptrdiff_t LastBarrier = -1;
    size_t Idx = 0;
    // Slots stored for the fork most recently started: the p_lwcv run
    // right after a fork-call reads the frame the forker just filled.
    std::optional<std::set<int32_t>> StartedSlots;

    auto ClearConsts = [&] {
      Consts.fill(std::nullopt);
      Consts[0] = 0;
    };
    auto KillConst = [&](uint8_t Rd) {
      if (Rd != 0)
        Consts[Rd] = std::nullopt;
    };
    auto NoteLeakIfStraightLine = [&](uint8_t Rd, uint32_t Addr) {
      auto It = Forks.find(Rd);
      if (It == Forks.end())
        return;
      if (static_cast<ptrdiff_t>(It->second.CreatedIdx) > LastBarrier)
        diag(Severity::Error, Addr, F, "xpar.fork-leak",
             formatString("hart allocated by p_fc/p_fn at 0x%x is "
                          "overwritten before being started; the "
                          "allocated hart is pinned forever",
                          It->second.ForkAddr));
      Forks.erase(It);
    };

    for (uint32_t Addr = F.Begin; Addr < F.End; Addr += 4, ++Idx) {
      if (BranchTargets.count(Addr)) {
        ClearConsts();
        LastBarrier = static_cast<ptrdiff_t>(Idx);
        StartedSlots.reset();
      }
      auto It = Code.find(Addr);
      if (It == Code.end())
        continue;
      const Instr &I = It->second;

      if (StartedSlots && I.Op != Opcode::P_LWCV)
        StartedSlots.reset();

      switch (I.Op) {
      case Opcode::ADDI:
        if (I.Rd != 0)
          Consts[I.Rd] = Consts[I.Rs1]
                             ? std::optional<int64_t>(*Consts[I.Rs1] + I.Imm)
                             : std::nullopt;
        continue;
      case Opcode::LUI:
        if (I.Rd != 0)
          Consts[I.Rd] = static_cast<int64_t>(
              static_cast<int32_t>(static_cast<uint32_t>(I.Imm) << 12));
        continue;

      case Opcode::P_FC:
      case Opcode::P_FN: {
        NoteLeakIfStraightLine(I.Rd, Addr);
        Pending P;
        P.ForkAddr = Addr;
        P.CreatedIdx = Idx;
        Forks[I.Rd] = std::move(P);
        KillConst(I.Rd);
        continue;
      }

      case Opcode::P_SET:
        NoteLeakIfStraightLine(I.Rd, Addr);
        KillConst(I.Rd);
        continue;

      case Opcode::P_MERGE: {
        auto From = Forks.find(I.Rs2);
        if (From != Forks.end()) {
          Pending P = std::move(From->second);
          Forks.erase(From);
          if (I.Rd != I.Rs2)
            NoteLeakIfStraightLine(I.Rd, Addr);
          Forks[I.Rd] = std::move(P);
        }
        KillConst(I.Rd);
        continue;
      }

      case Opcode::P_SYNCM:
        for (auto &[Reg, P] : Forks)
          P.NeedSync = false;
        continue;

      case Opcode::P_SWCV: {
        if (I.Imm < 0 || I.Imm % 4 != 0 ||
            I.Imm >= static_cast<int32_t>(ContFrameSize)) {
          diag(Severity::Error, Addr, F, "xpar.cv-slot-range",
               formatString("p_swcv offset %d is outside the %u-byte "
                            "4-aligned continuation frame",
                            I.Imm, ContFrameSize));
          continue;
        }
        auto PIt = Forks.find(I.Rs1);
        if (PIt == Forks.end()) {
          diag(Severity::Warning, Addr, F, "xpar.swcv-no-alloc",
               "p_swcv targets a hart reference with no p_fc/p_fn "
               "allocation in sight; the verifier cannot match the "
               "store to a fork");
        } else {
          PIt->second.Slots.insert(I.Imm);
          PIt->second.NeedSync = true;
        }
        continue;
      }

      case Opcode::P_LWCV:
        if (I.Imm < 0 || I.Imm % 4 != 0 ||
            I.Imm >= static_cast<int32_t>(ContFrameSize))
          diag(Severity::Error, Addr, F, "xpar.cv-slot-range",
               formatString("p_lwcv offset %d is outside the %u-byte "
                            "4-aligned continuation frame",
                            I.Imm, ContFrameSize));
        else if (StartedSlots && !StartedSlots->count(I.Imm))
          diag(Severity::Error, Addr, F, "xpar.lwcv-not-stored",
               formatString("p_lwcv reads frame offset %d, which the "
                            "forking hart never stored (p_swcv wrote "
                            "%zu slot(s))",
                            I.Imm, StartedSlots->size()));
        KillConst(I.Rd);
        continue;

      case Opcode::P_SWRE:
        if (I.Imm < 0 || I.Imm >= static_cast<int32_t>(sim::ResultSlots))
          diag(Severity::Error, Addr, F, "xpar.re-slot-range",
               formatString("p_swre result slot %d is outside the "
                            "hart's %u slots",
                            I.Imm, sim::ResultSlots));
        continue;

      case Opcode::P_LWRE:
        if (I.Imm < 0 || I.Imm >= static_cast<int32_t>(sim::ResultSlots))
          diag(Severity::Error, Addr, F, "xpar.re-slot-range",
               formatString("p_lwre result slot %d is outside the "
                            "hart's %u slots",
                            I.Imm, sim::ResultSlots));
        KillConst(I.Rd);
        continue;

      case Opcode::P_JALR:
        if (I.Rd == 0) {
          // p_ret: parallel return. The hart ends here.
          LastBarrier = static_cast<ptrdiff_t>(Idx);
          ClearConsts();
        } else {
          // Fork-call: starts the allocated hart named by rs1.
          auto PIt = Forks.find(I.Rs1);
          if (PIt != Forks.end()) {
            if (PIt->second.NeedSync)
              diag(Severity::Error, Addr, F, "xpar.fork-before-syncm",
                   formatString("fork-call hands the continuation frame "
                                "to the new hart, but the p_swcv stores "
                                "since 0x%x were not drained by p_syncm; "
                                "the hart can start before its frame is "
                                "complete",
                                PIt->second.ForkAddr));
            StartedSlots = std::move(PIt->second.Slots);
            Forks.erase(PIt);
          }
          ClearConsts();
        }
        continue;

      case Opcode::P_JAL: {
        auto PIt = Forks.find(I.Rs1);
        if (PIt != Forks.end()) {
          if (PIt->second.NeedSync)
            diag(Severity::Error, Addr, F, "xpar.fork-before-syncm",
                 "p_jal starts the allocated hart before p_syncm "
                 "drained its continuation frame");
          StartedSlots = std::move(PIt->second.Slots);
          Forks.erase(PIt);
        }
        continue;
      }

      case Opcode::JAL:
        if (ParallelStart &&
            Addr + static_cast<uint32_t>(I.Imm) == *ParallelStart &&
            I.Rd == RegRA)
          checkTeamLaunch(Addr, F, Consts);
        if (I.Rd == 0) {
          LastBarrier = static_cast<ptrdiff_t>(Idx);
          StartedSlots.reset();
        }
        ClearConsts();
        continue;

      case Opcode::JALR:
        if (I.Rd == 0) {
          LastBarrier = static_cast<ptrdiff_t>(Idx);
          StartedSlots.reset();
        }
        ClearConsts();
        continue;

      default:
        if (I.writesReg())
          KillConst(I.Rd);
        continue;
      }
    }

    for (const auto &[Reg, P] : Forks)
      diag(Severity::Error, P.ForkAddr, F, "xpar.fork-leak",
           "hart allocated by p_fc/p_fn is never started by a "
           "fork-call before the function ends; the allocation is "
           "lost and the hart pinned forever");
  }
};

} // namespace

AnalysisResult analysis::verifyProgram(const assembler::Program &Prog,
                                       const XParVerifyOptions &Opts) {
  AnalysisResult Res;
  Verifier V(Prog, Opts, Res);
  V.run();
  return Res;
}
