//===- analysis/Diag.h - Static-analysis diagnostics -------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostic currency of the lbp_lint passes (docs/ANALYSIS.md).
/// Each finding carries a severity, a rule tag, a source line (Det-C
/// line for the determinism analyzer, assembly line for the X_PAR
/// verifier, 0 when unknown), a message, and two structured fields the
/// tooling layers use: the global symbol the finding is about (when it
/// is about one) and the dynamic oracle's verdict after --oracle-refine
/// ("confirmed" / "unconfirmed-on-corpus", empty before refinement).
/// The shape mirrors frontend::FrontendError so the frontend can
/// forward findings as compile warnings with their rule ids intact.
///
/// Besides findings, a pass can emit region certificates: per parallel
/// region, how every recorded shared access was classified (affine /
/// banked / may) and how many potentially-conflicting pairs each
/// discharge rule cleared. Certificates are positive evidence — they
/// never affect clean()/hasErrors() — and are what makes "zero
/// silently-skipped addresses" checkable from the outside.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ANALYSIS_DIAG_H
#define LBP_ANALYSIS_DIAG_H

#include <cstdint>
#include <string>
#include <vector>

namespace lbp {
namespace analysis {

enum class Severity : uint8_t {
  Warning, ///< Suspicious but not a proven contract violation.
  Error,   ///< Breaks the determinism contract or the X_PAR protocol.
};

/// One finding.
struct Diag {
  Severity Sev = Severity::Error;
  unsigned Line = 0;     ///< Source line (0 = no location).
  std::string Rule;      ///< Stable rule tag, e.g. "race.ww".
  std::string Message;
  std::string Sym;       ///< Global the finding is about (may be empty).
  std::string Oracle;    ///< Oracle verdict after refinement; empty before.
};

/// Per-region access-classification certificate: every shared access a
/// team member can perform falls in exactly one class, so
/// Affine + Banked + May is the total access count of the region.
struct RegionCert {
  std::string Region;    ///< Thread function of the parallel region.
  unsigned Line = 0;     ///< Line of the region launch.
  unsigned Team = 0;     ///< Team size the region was analyzed at.
  unsigned Affine = 0;   ///< Exact affine addresses (sym + A*t + [lo,hi]).
  unsigned Banked = 0;   ///< Imprecise but confined to member-private banks.
  unsigned May = 0;      ///< Imprecise and not provably member-private.
  unsigned BankDischarged = 0;    ///< Pairs cleared by bank-disjointness.
  unsigned ResidueDischarged = 0; ///< Pairs cleared by residue/interval.
  unsigned MayRaces = 0;          ///< Pairs that became race.may findings.
  bool ReductionCertified = false; ///< reduce.pattern: privatize-then-send OK.
};

/// The outcome of one analysis pass.
struct AnalysisResult {
  std::vector<Diag> Diags;
  std::vector<RegionCert> Certs;

  bool hasErrors() const {
    for (const Diag &D : Diags)
      if (D.Sev == Severity::Error)
        return true;
    return false;
  }
  bool clean() const { return Diags.empty(); }

  Diag &error(unsigned Line, const std::string &Rule,
              const std::string &Message) {
    Diags.push_back({Severity::Error, Line, Rule, Message, {}, {}});
    return Diags.back();
  }
  Diag &warning(unsigned Line, const std::string &Rule,
                const std::string &Message) {
    Diags.push_back({Severity::Warning, Line, Rule, Message, {}, {}});
    return Diags.back();
  }
  void append(const AnalysisResult &Other) {
    Diags.insert(Diags.end(), Other.Diags.begin(), Other.Diags.end());
    Certs.insert(Certs.end(), Other.Certs.begin(), Other.Certs.end());
  }

  /// "line N: error: [rule] message" lines, one per finding.
  std::string text() const;
};

/// Canonical JSON for the machine-readable lint report (lbp_lint
/// --json): fixed key set in a fixed order, strings escaped with
/// lbp::jsonEscape, no whitespace — byte-identical for identical
/// findings so reports can be diffed across runs.
std::string diagToJson(const Diag &D);
std::string certToJson(const RegionCert &C);

/// {"diagnostics":[...],"certificates":[...]} for one analysis result.
std::string resultToJson(const AnalysisResult &Res);

} // namespace analysis
} // namespace lbp

#endif // LBP_ANALYSIS_DIAG_H
