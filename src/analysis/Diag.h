//===- analysis/Diag.h - Static-analysis diagnostics -------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The diagnostic currency of the lbp_lint passes (docs/ANALYSIS.md).
/// Each finding carries a severity, a rule tag, a source line (Det-C
/// line for the determinism analyzer, assembly line for the X_PAR
/// verifier, 0 when unknown) and a message; the shape mirrors
/// frontend::FrontendError so the frontend can forward findings as
/// compile warnings unchanged.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ANALYSIS_DIAG_H
#define LBP_ANALYSIS_DIAG_H

#include <cstdint>
#include <string>
#include <vector>

namespace lbp {
namespace analysis {

enum class Severity : uint8_t {
  Warning, ///< Suspicious but not a proven contract violation.
  Error,   ///< Breaks the determinism contract or the X_PAR protocol.
};

/// One finding.
struct Diag {
  Severity Sev = Severity::Error;
  unsigned Line = 0;     ///< Source line (0 = no location).
  std::string Rule;      ///< Stable rule tag, e.g. "race.ww".
  std::string Message;
};

/// The outcome of one analysis pass.
struct AnalysisResult {
  std::vector<Diag> Diags;

  bool hasErrors() const {
    for (const Diag &D : Diags)
      if (D.Sev == Severity::Error)
        return true;
    return false;
  }
  bool clean() const { return Diags.empty(); }

  void error(unsigned Line, const std::string &Rule,
             const std::string &Message) {
    Diags.push_back({Severity::Error, Line, Rule, Message});
  }
  void warning(unsigned Line, const std::string &Rule,
               const std::string &Message) {
    Diags.push_back({Severity::Warning, Line, Rule, Message});
  }
  void append(const AnalysisResult &Other) {
    Diags.insert(Diags.end(), Other.Diags.begin(), Other.Diags.end());
  }

  /// "line N: error: [rule] message" lines, one per finding.
  std::string text() const;
};

} // namespace analysis
} // namespace lbp

#endif // LBP_ANALYSIS_DIAG_H
