//===- analysis/Diag.cpp - Static-analysis diagnostics -----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Diag.h"

#include "support/StringUtils.h"

using namespace lbp;
using namespace lbp::analysis;

std::string AnalysisResult::text() const {
  std::string Text;
  for (const Diag &D : Diags) {
    const char *Sev = D.Sev == Severity::Error ? "error" : "warning";
    if (D.Line)
      Text += formatString("line %u: %s: [%s] %s\n", D.Line, Sev,
                           D.Rule.c_str(), D.Message.c_str());
    else
      Text += formatString("%s: [%s] %s\n", Sev, D.Rule.c_str(),
                           D.Message.c_str());
  }
  return Text;
}

std::string analysis::diagToJson(const Diag &D) {
  return formatString(
      "{\"rule\":\"%s\",\"severity\":\"%s\",\"line\":%u,"
      "\"symbol\":\"%s\",\"oracle\":\"%s\",\"message\":\"%s\"}",
      jsonEscape(D.Rule).c_str(),
      D.Sev == Severity::Error ? "error" : "warning", D.Line,
      jsonEscape(D.Sym).c_str(), jsonEscape(D.Oracle).c_str(),
      jsonEscape(D.Message).c_str());
}

std::string analysis::certToJson(const RegionCert &C) {
  return formatString(
      "{\"region\":\"%s\",\"line\":%u,\"team\":%u,"
      "\"accesses\":{\"affine\":%u,\"banked\":%u,\"may\":%u},"
      "\"discharged\":{\"bank\":%u,\"residue\":%u},"
      "\"may_races\":%u,\"reduction_certified\":%s}",
      jsonEscape(C.Region).c_str(), C.Line, C.Team, C.Affine, C.Banked,
      C.May, C.BankDischarged, C.ResidueDischarged, C.MayRaces,
      C.ReductionCertified ? "true" : "false");
}

std::string analysis::resultToJson(const AnalysisResult &Res) {
  std::string S = "{\"diagnostics\":[";
  for (size_t I = 0; I != Res.Diags.size(); ++I) {
    if (I)
      S += ',';
    S += diagToJson(Res.Diags[I]);
  }
  S += "],\"certificates\":[";
  for (size_t I = 0; I != Res.Certs.size(); ++I) {
    if (I)
      S += ',';
    S += certToJson(Res.Certs[I]);
  }
  S += "]}";
  return S;
}
