//===- analysis/Diag.cpp - Static-analysis diagnostics -----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "analysis/Diag.h"

#include "support/StringUtils.h"

using namespace lbp;
using namespace lbp::analysis;

std::string AnalysisResult::text() const {
  std::string Text;
  for (const Diag &D : Diags) {
    const char *Sev = D.Sev == Severity::Error ? "error" : "warning";
    if (D.Line)
      Text += formatString("line %u: %s: [%s] %s\n", D.Line, Sev,
                           D.Rule.c_str(), D.Message.c_str());
    else
      Text += formatString("%s: [%s] %s\n", Sev, D.Rule.c_str(),
                           D.Message.c_str());
  }
  return Text;
}
