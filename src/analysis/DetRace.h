//===- analysis/DetRace.h - Det-C determinism analyzer ------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static determinism analyzer over the kernel-language AST
/// (docs/ANALYSIS.md). For every parallel region it computes, per team
/// member t, the read and write sets of shared globals as affine
/// intervals `symbol + A*t + [lo,hi]` (which captures the canonical
/// `v[t]` and `v[t*stride+k]` access shapes plus `if (t == k)` section
/// dispatchers) and reports:
///
///   * write-write and read-write conflicts between different members
///     that are not provably index-disjoint (rules race.ww / race.rw);
///   * reduction misuse: __reduce_send arity vs. the collect count,
///     collects outside the team head, collects that would block
///     forever (rules reduce.*);
///   * region-shape errors: unknown or non-thread callees, zero or
///     oversized teams, team sizes that contradict the source's
///     omp_set_num_threads call (rules region.*).
///
/// The analysis is intentionally unsound-but-useful in the LLOV
/// tradition: accesses whose address falls outside the affine domain
/// are skipped (documented caveat), so a clean verdict is evidence, not
/// proof — the dynamic oracle (Oracle.h) exists to keep the verdicts
/// honest on the test corpus.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ANALYSIS_DETRACE_H
#define LBP_ANALYSIS_DETRACE_H

#include "analysis/Diag.h"
#include "dsl/Ast.h"

namespace lbp {
namespace analysis {

struct DetRaceOptions {
  /// Hart count of the machine the program targets; 0 = unknown (the
  /// architectural MaxTeamHarts bound still applies).
  unsigned MachineHarts = 0;
};

/// Runs the determinism analyzer over every parallel region of \p M.
AnalysisResult analyzeModule(const dsl::Module &M,
                             const DetRaceOptions &Opts = {});

} // namespace analysis
} // namespace lbp

#endif // LBP_ANALYSIS_DETRACE_H
