//===- analysis/DetRace.h - Det-C determinism analyzer ------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The static determinism analyzer over the kernel-language AST
/// (docs/ANALYSIS.md). For every parallel region it computes, per team
/// member t, the read and write sets of shared globals in a layered
/// may-race lattice and reports:
///
///   * write-write and read-write conflicts between different members
///     that are provably reachable through exact affine addresses
///     `symbol + A*t + [lo,hi]` (rules race.ww / race.rw);
///   * possible conflicts through imprecise (non-affine) addresses that
///     neither bank-disjointness nor residue/interval reasoning can
///     discharge (rule race.may; upgraded to race.confirmed by the
///     dynamic oracle, see Oracle.h);
///   * reduction misuse and reduction-pattern violations: arity vs. the
///     collect count, collects outside the team head, partials computed
///     from state other members touch concurrently, merge-order-
///     sensitive combinators (rules reduce.*, reduce.pattern.*);
///   * region-shape errors: unknown or non-thread callees, zero or
///     oversized teams, team sizes that contradict the source's
///     omp_set_num_threads call (rules region.*).
///
/// Every shared access is recorded and classified — affine, banked
/// (imprecise index but provably confined to member-private global
/// banks) or may — and the per-region classification is returned as a
/// RegionCert, so there are no silently-skipped addresses: a clean
/// verdict is a proof over the abstraction, not an artifact of the
/// analyzer's domain (the LLOV-style unsound skipping of earlier
/// versions is gone; remaining caveats are in docs/ANALYSIS.md).
///
//===----------------------------------------------------------------------===//

#ifndef LBP_ANALYSIS_DETRACE_H
#define LBP_ANALYSIS_DETRACE_H

#include "analysis/Diag.h"
#include "dsl/Ast.h"

namespace lbp {
namespace analysis {

struct DetRaceOptions {
  /// Hart count of the machine the program targets; 0 = unknown (the
  /// architectural MaxTeamHarts bound still applies).
  unsigned MachineHarts = 0;

  /// log2 of the shared global bank size in bytes, matching
  /// sim::SimConfig::GlobalBankSizeLog2 (bank b spans
  /// [GlobalBase + b<<Log2, GlobalBase + (b+1)<<Log2)). The
  /// bank-disjointness rule discharges imprecise accesses confined to
  /// member-private banks under this geometry.
  unsigned GlobalBankSizeLog2 = 16;
};

/// Runs the determinism analyzer over every parallel region of \p M.
AnalysisResult analyzeModule(const dsl::Module &M,
                             const DetRaceOptions &Opts = {});

} // namespace analysis
} // namespace lbp

#endif // LBP_ANALYSIS_DETRACE_H
