//===- analysis/DetRace.cpp - Det-C determinism analyzer ----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Abstract domain: every 32-bit value is approximated by an affine form
//
//     Sym + A*t + [Lo, Hi]
//
// where t is the team index of the executing member, Sym is an optional
// global symbol base and [Lo, Hi] a constant interval. The form is
// closed under the address arithmetic the frontend emits (base + index
// * stride + constant) and under the widening of recognized
// constant-step loops, which is exactly what the canonical Det-C access
// shapes v[t] and v[t*stride+k] need. Anything else falls to "top" and
// the affected access is skipped (documented unsoundness, see
// docs/ANALYSIS.md).
//
//===----------------------------------------------------------------------===//

#include "analysis/DetRace.h"

#include "romp/Runtime.h"
#include "sim/Config.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>

using namespace lbp;
using namespace lbp::analysis;
using namespace lbp::dsl;

namespace {

/// Saturation bound for reduction-send counting.
constexpr uint64_t SendCap = 1ull << 30;

uint64_t satAdd(uint64_t A, uint64_t B) {
  return std::min(SendCap, A + std::min(B, SendCap));
}
uint64_t satMul(uint64_t A, uint64_t B) {
  if (A == 0 || B == 0)
    return 0;
  if (A > SendCap / B)
    return SendCap;
  return A * B;
}

/// The affine abstract value.
struct AV {
  bool Valid = false;
  std::string Sym; ///< Empty = pure numeric value.
  int64_t A = 0;   ///< Coefficient of the team index t.
  int64_t Lo = 0, Hi = 0;

  static AV top() { return {}; }
  static AV cst(int64_t V) { return {true, "", 0, V, V}; }
  static AV teamIndex() { return {true, "", 1, 0, 0}; }

  bool isSingleton() const { return Valid && Sym.empty() && Lo == Hi; }
  bool operator==(const AV &O) const {
    if (Valid != O.Valid)
      return false;
    if (!Valid)
      return true;
    return Sym == O.Sym && A == O.A && Lo == O.Lo && Hi == O.Hi;
  }
};

AV avAdd(const AV &L, const AV &R) {
  if (!L.Valid || !R.Valid || (!L.Sym.empty() && !R.Sym.empty()))
    return AV::top();
  return {true, L.Sym.empty() ? R.Sym : L.Sym, L.A + R.A, L.Lo + R.Lo,
          L.Hi + R.Hi};
}

AV avSub(const AV &L, const AV &R) {
  if (!L.Valid || !R.Valid || !R.Sym.empty())
    return AV::top();
  return {true, L.Sym, L.A - R.A, L.Lo - R.Hi, L.Hi - R.Lo};
}

/// V scaled by the compile-time constant C (addresses don't scale).
AV avScale(const AV &V, int64_t C) {
  if (!V.Valid || !V.Sym.empty())
    return AV::top();
  int64_t A = V.Lo * C, B = V.Hi * C;
  return {true, "", V.A * C, std::min(A, B), std::max(A, B)};
}

AV avMul(const AV &L, const AV &R) {
  if (L.isSingleton() && L.A == 0)
    return avScale(R, L.Lo);
  if (R.isSingleton() && R.A == 0)
    return avScale(L, R.Lo);
  return AV::top();
}

bool cmpHolds(CmpOp Op, int64_t L, int64_t R) {
  switch (Op) {
  case CmpOp::Eq:
    return L == R;
  case CmpOp::Ne:
    return L != R;
  case CmpOp::Lt:
    return L < R;
  case CmpOp::Ge:
    return L >= R;
  case CmpOp::Gt:
    return L > R;
  case CmpOp::Le:
    return L <= R;
  case CmpOp::Ltu:
    return static_cast<uint32_t>(L) < static_cast<uint32_t>(R);
  case CmpOp::Geu:
    return static_cast<uint32_t>(L) >= static_cast<uint32_t>(R);
  }
  return false;
}

/// One recorded shared-memory access of a team member.
struct Access {
  bool IsWrite = false;
  bool Abs = false;  ///< Base resolved to an absolute address.
  std::string Sym;   ///< Original symbol (for messages; may be empty).
  int64_t Base = 0;  ///< Absolute base when Abs.
  int64_t A = 0, Lo = 0, Hi = 0;
  unsigned Width = 4;
  unsigned Line = 0;
  std::vector<char> Allow; ///< Team indices that can perform it.
};

struct GlobalRange {
  int64_t Addr = 0;
  int64_t SizeBytes = 0;
};

/// Per-region analysis of one thread function: walks the body with the
/// affine environment and collects accesses plus reduction-send counts.
class RegionAnalyzer {
public:
  RegionAnalyzer(AnalysisResult &Res, unsigned N,
                 const std::map<std::string, const Function *> &Fns,
                 const std::map<std::string, GlobalRange> &Globals)
      : SendMin(N, 0), SendMax(N, 0), Res(Res), N(N), Fns(Fns),
        Globals(Globals), Allow(N, 1) {}

  void run(const Function &ThreadFn, const std::string &DataSymbol) {
    Env.clear();
    const auto &Params = ThreadFn.params();
    if (!Params.empty())
      Env[Params[0]] = AV::teamIndex();
    if (Params.size() > 1 && !DataSymbol.empty())
      Env[Params[1]] = AV{true, DataSymbol, 0, 0, 0};
    if (Params.size() > 2)
      Env[Params[2]] = AV::cst(static_cast<int64_t>(N));
    InlineStack.insert(&ThreadFn);
    walkStmts(ThreadFn.body());
    InlineStack.erase(&ThreadFn);
  }

  std::vector<Access> Accesses;
  std::vector<uint64_t> SendMin, SendMax; ///< Per team index t.
  bool SawRawAsm = false;
  bool SawNestedRegion = false;
  unsigned NestedRegionLine = 0;
  bool SawCollect = false;
  unsigned CollectLine = 0;

private:
  AnalysisResult &Res;
  unsigned N;
  const std::map<std::string, const Function *> &Fns;
  const std::map<std::string, GlobalRange> &Globals;

  std::map<const Local *, AV> Env;
  std::vector<char> Allow;
  uint64_t MulMin = 1, MulMax = 1;
  bool Record = true;
  std::set<const Function *> InlineStack;

  AV envOf(const Local *L) const {
    auto It = Env.find(L);
    return It == Env.end() ? AV::top() : It->second;
  }

  void recordAccess(bool IsWrite, const AV &Addr, unsigned Width,
                    unsigned Line) {
    if (!Record || !Addr.Valid)
      return;
    Access Acc;
    Acc.IsWrite = IsWrite;
    Acc.Sym = Addr.Sym;
    Acc.A = Addr.A;
    Acc.Lo = Addr.Lo;
    Acc.Hi = Addr.Hi;
    Acc.Width = Width;
    Acc.Line = Line;
    Acc.Allow = Allow;
    if (Addr.Sym.empty()) {
      Acc.Abs = true;
    } else if (auto It = Globals.find(Addr.Sym); It != Globals.end()) {
      Acc.Abs = true;
      Acc.Base = It->second.Addr;
    }
    Accesses.push_back(std::move(Acc));
  }

  /// Evaluates \p E, recording every Load it contains as a read.
  AV evalExpr(const Expr *E, unsigned Line) {
    if (!E)
      return AV::top();
    switch (E->K) {
    case Expr::Kind::Const:
      return AV::cst(E->IVal);
    case Expr::Kind::LocalRef:
      return envOf(E->L);
    case Expr::Kind::AddrOf:
      return {true, E->Symbol, 0, E->IVal, E->IVal};
    case Expr::Kind::Load: {
      AV Base = evalExpr(E->Lhs, Line);
      recordAccess(false, avAdd(Base, AV::cst(E->IVal)), E->Width, Line);
      return AV::top();
    }
    case Expr::Kind::Bin: {
      AV L = evalExpr(E->Lhs, Line);
      AV R = evalExpr(E->Rhs, Line);
      switch (E->Op) {
      case BinOp::Add:
        return avAdd(L, R);
      case BinOp::Sub:
        return avSub(L, R);
      case BinOp::Mul:
        return avMul(L, R);
      case BinOp::Shl:
        if (R.isSingleton() && R.A == 0 && R.Lo >= 0 && R.Lo < 31)
          return avScale(L, int64_t(1) << R.Lo);
        return AV::top();
      default:
        return AV::top();
      }
    }
    case Expr::Kind::HartId:
    case Expr::Kind::CycleCount:
    case Expr::Kind::InstretCount:
    case Expr::Kind::RecvResult:
      return AV::top();
    }
    return AV::top();
  }

  /// Intersection join: keep only bindings equal on both paths.
  void joinEnv(std::map<const Local *, AV> &Into,
               const std::map<const Local *, AV> &Other) {
    for (auto It = Into.begin(); It != Into.end();) {
      auto OIt = Other.find(It->first);
      if (OIt == Other.end() || !(OIt->second == It->second))
        It = Into.erase(It);
      else
        ++It;
    }
  }

  /// Splits the current Allow mask by the comparison when both sides
  /// are affine singletons of t. Returns false (masks untouched) when
  /// the condition is not expressible over t.
  bool maskFromCmp(CmpOp Op, const AV &L, const AV &R,
                   std::vector<char> &ThenMask,
                   std::vector<char> &ElseMask) const {
    if (!L.isSingleton() || !R.isSingleton())
      return false;
    if (L.A == 0 && R.A == 0)
      return false; // constant condition: not worth splitting
    for (unsigned T = 0; T != N; ++T) {
      bool Holds = cmpHolds(Op, L.A * int64_t(T) + L.Lo,
                            R.A * int64_t(T) + R.Lo);
      ThenMask[T] = Allow[T] && Holds;
      ElseMask[T] = Allow[T] && !Holds;
    }
    return true;
  }

  void collectAssigned(const std::vector<const Stmt *> &L,
                       std::set<const Local *> &Out) const {
    for (const Stmt *S : L) {
      if (S->K == Stmt::Kind::Assign || S->K == Stmt::Kind::ReduceCollect)
        Out.insert(S->Dst);
      if (S->K == Stmt::Kind::Call && S->Dst)
        Out.insert(S->Dst);
      collectAssigned(S->Then, Out);
      collectAssigned(S->Else, Out);
    }
  }

  void countAssigns(const std::vector<const Stmt *> &L, const Local *LV,
                    unsigned &Count) const {
    for (const Stmt *S : L) {
      if ((S->K == Stmt::Kind::Assign || S->K == Stmt::Kind::Call ||
           S->K == Stmt::Kind::ReduceCollect) &&
          S->Dst == LV)
        ++Count;
      countAssigns(S->Then, LV, Count);
      countAssigns(S->Else, LV, Count);
    }
  }

  /// Finds the loop variable's constant step in \p Step (or, for
  /// while-shaped loops, the tail of \p Body). 0 = not recognized; any
  /// second assignment to the variable anywhere in the loop defeats it.
  int64_t findStep(const Local *LV, const std::vector<const Stmt *> &Body,
                   const std::vector<const Stmt *> &Step) const {
    const std::vector<const Stmt *> &Src = !Step.empty() ? Step : Body;
    int64_t Found = 0;
    for (const Stmt *S : Src) {
      if (S->K != Stmt::Kind::Assign || S->Dst != LV)
        continue;
      const Expr *V = S->Value;
      Found = 0;
      if (V && V->K == Expr::Kind::Bin && V->Lhs &&
          V->Lhs->K == Expr::Kind::LocalRef && V->Lhs->L == LV &&
          V->Rhs && V->Rhs->K == Expr::Kind::Const) {
        if (V->Op == BinOp::Add)
          Found = V->Rhs->IVal;
        else if (V->Op == BinOp::Sub)
          Found = -V->Rhs->IVal;
      }
    }
    unsigned Count = 0;
    countAssigns(Body, LV, Count);
    countAssigns(Step, LV, Count);
    return Count == 1 ? Found : 0;
  }

  /// Range of the loop variable inside the body of a recognized loop.
  AV widen(const AV &Init, const AV &Bound, CmpOp Op, int64_t Step) const {
    if (!Init.Valid || !Bound.Valid || Step == 0)
      return AV::top();
    if (Init.Sym != Bound.Sym || Init.A != Bound.A)
      return AV::top();
    AV R;
    R.Valid = true;
    R.Sym = Init.Sym;
    R.A = Init.A;
    switch (Op) {
    case CmpOp::Lt:
      if (Step <= 0)
        return AV::top();
      R.Lo = Init.Lo;
      R.Hi = std::max(Init.Lo, Bound.Hi - 1);
      return R;
    case CmpOp::Ne:
      if (Step != 1)
        return AV::top();
      R.Lo = Init.Lo;
      R.Hi = std::max(Init.Lo, Bound.Hi - 1);
      return R;
    case CmpOp::Le:
      if (Step <= 0)
        return AV::top();
      R.Lo = Init.Lo;
      R.Hi = std::max(Init.Lo, Bound.Hi);
      return R;
    case CmpOp::Gt:
      if (Step >= 0)
        return AV::top();
      R.Lo = std::min(Init.Hi, Bound.Lo + 1);
      R.Hi = Init.Hi;
      return R;
    case CmpOp::Ge:
      if (Step >= 0)
        return AV::top();
      R.Lo = std::min(Init.Hi, Bound.Lo);
      R.Hi = Init.Hi;
      return R;
    default:
      return AV::top();
    }
  }

  /// Iteration-count interval of a recognized loop; false = unknown.
  bool tripCount(const AV &Init, const AV &Bound, CmpOp Op, int64_t Step,
                 uint64_t &TMin, uint64_t &TMax) const {
    if (!Init.Valid || !Bound.Valid || Step == 0 ||
        Init.Sym != Bound.Sym || Init.A != Bound.A)
      return false;
    int64_t DLo = Bound.Lo - Init.Hi, DHi = Bound.Hi - Init.Lo;
    int64_t S = Step;
    if (Op == CmpOp::Le)
      DLo += 1, DHi += 1;
    if (Op == CmpOp::Gt || Op == CmpOp::Ge) {
      DLo = Init.Lo - Bound.Hi;
      DHi = Init.Hi - Bound.Lo;
      if (Op == CmpOp::Ge)
        DLo += 1, DHi += 1;
      S = -Step;
    } else if (Op != CmpOp::Lt && Op != CmpOp::Le && Op != CmpOp::Ne) {
      return false;
    }
    if (S <= 0)
      return false;
    auto Ceil = [S](int64_t D) -> uint64_t {
      if (D <= 0)
        return 0;
      return static_cast<uint64_t>((D + S - 1) / S);
    };
    TMin = Ceil(DLo);
    TMax = Ceil(DHi);
    return true;
  }

  void walkLoop(const Stmt *S) {
    const Local *LV =
        S->CmpLhs && S->CmpLhs->K == Expr::Kind::LocalRef ? S->CmpLhs->L
                                                          : nullptr;
    AV Init = LV ? envOf(LV) : AV::top();
    Record = false;
    AV Bound = evalExpr(S->CmpRhs, S->Line);
    Record = true;
    int64_t Step = LV ? findStep(LV, S->Then, S->Else) : 0;

    std::set<const Local *> Assigned;
    collectAssigned(S->Then, Assigned);
    collectAssigned(S->Else, Assigned);
    for (const Local *L : Assigned)
      Env.erase(L);

    AV Widened = Step ? widen(Init, Bound, S->Cmp, Step) : AV::top();
    if (LV && Widened.Valid)
      Env[LV] = Widened;

    uint64_t TMin = 0, TMax = SendCap;
    bool TripKnown =
        Step && tripCount(Init, Bound, S->Cmp, Step, TMin, TMax);
    if (S->K == Stmt::Kind::DoWhile) {
      TMin = std::max<uint64_t>(TMin, 1);
      TMax = std::max<uint64_t>(TMax, 1);
    }
    if (!TripKnown) {
      TMin = S->K == Stmt::Kind::DoWhile ? 1 : 0;
      TMax = SendCap;
    }

    uint64_t SvMin = MulMin, SvMax = MulMax;
    MulMin = satMul(MulMin, TMin);
    MulMax = satMul(MulMax, TMax);
    walkStmts(S->Then);
    walkStmts(S->Else);
    MulMin = SvMin;
    MulMax = SvMax;

    // Record the condition's own loads with the widened environment.
    evalExpr(S->CmpLhs, S->Line);
    evalExpr(S->CmpRhs, S->Line);

    // Values carried out of the loop are whatever the last iteration
    // left; our single-pass walk cannot represent that, so drop them.
    for (const Local *L : Assigned)
      Env.erase(L);
    if (LV)
      Env.erase(LV);
  }

  void walkCall(const Stmt *S) {
    std::vector<AV> ArgVals;
    for (const Expr *A : S->Args)
      ArgVals.push_back(evalExpr(A, S->Line));
    auto It = Fns.find(S->Callee);
    const Function *Callee = It == Fns.end() ? nullptr : It->second;
    if (Callee && Callee->kind() == FnKind::Thread) {
      Res.error(S->Line, "region.thread-called",
                "thread function '" + S->Callee +
                    "' called directly; it ends with p_ret and would "
                    "tear down the calling hart");
      return;
    }
    if (Callee && Callee->kind() == FnKind::Normal &&
        !InlineStack.count(Callee) && InlineStack.size() < 5) {
      // One-level-per-frame inlining so helper functions like the FIR
      // chunk kernels contribute their accesses with argument binding.
      std::map<const Local *, AV> Saved = std::move(Env);
      Env.clear();
      const auto &Params = Callee->params();
      for (size_t I = 0; I != Params.size() && I != ArgVals.size(); ++I)
        Env[Params[I]] = ArgVals[I];
      InlineStack.insert(Callee);
      walkStmts(Callee->body());
      InlineStack.erase(Callee);
      Env = std::move(Saved);
    }
    if (S->Dst)
      Env.erase(S->Dst);
  }

  void walkStmts(const std::vector<const Stmt *> &List) {
    for (const Stmt *S : List)
      walkStmt(S);
  }

  void walkStmt(const Stmt *S) {
    switch (S->K) {
    case Stmt::Kind::Assign:
      Env[S->Dst] = evalExpr(S->Value, S->Line);
      return;

    case Stmt::Kind::Store: {
      AV Base = evalExpr(S->Base, S->Line);
      evalExpr(S->Value, S->Line);
      recordAccess(true, avAdd(Base, AV::cst(S->Offset)), S->Width,
                   S->Line);
      return;
    }

    case Stmt::Kind::If: {
      AV L = evalExpr(S->CmpLhs, S->Line);
      AV R = evalExpr(S->CmpRhs, S->Line);
      std::vector<char> ThenMask = Allow, ElseMask = Allow;
      bool Guarded = maskFromCmp(S->Cmp, L, R, ThenMask, ElseMask);

      std::map<const Local *, AV> Saved = Env;
      std::vector<char> SvAllow = Allow;
      uint64_t SvMin = MulMin;
      Allow = ThenMask;
      if (!Guarded)
        MulMin = 0; // data-dependent branch: sends become optional
      walkStmts(S->Then);
      std::map<const Local *, AV> ThenEnv = std::move(Env);

      Env = std::move(Saved);
      Allow = ElseMask;
      walkStmts(S->Else);
      joinEnv(Env, ThenEnv);
      Allow = std::move(SvAllow);
      MulMin = SvMin;
      return;
    }

    case Stmt::Kind::While:
    case Stmt::Kind::DoWhile:
      walkLoop(S);
      return;

    case Stmt::Kind::Call:
      walkCall(S);
      return;

    case Stmt::Kind::Return:
      evalExpr(S->Value, S->Line);
      return;

    case Stmt::Kind::ParallelFor:
      SawNestedRegion = true;
      NestedRegionLine = S->Line;
      return;

    case Stmt::Kind::ReduceSend:
      evalExpr(S->Value, S->Line);
      for (unsigned T = 0; T != N; ++T) {
        if (!Allow[T])
          continue;
        SendMin[T] = satAdd(SendMin[T], MulMin);
        SendMax[T] = satAdd(SendMax[T], MulMax);
      }
      return;

    case Stmt::Kind::ReduceCollect:
      SawCollect = true;
      CollectLine = S->Line;
      if (S->Dst)
        Env.erase(S->Dst);
      return;

    case Stmt::Kind::SendResult:
      evalExpr(S->Base, S->Line);
      evalExpr(S->Value, S->Line);
      if (S->Offset < 0 ||
          S->Offset >= static_cast<int32_t>(sim::ResultSlots))
        Res.error(S->Line, "xpar.slot-range",
                  formatString("p_swre result slot %d is outside the "
                               "hart's %u slots",
                               S->Offset, sim::ResultSlots));
      return;

    case Stmt::Kind::RawAsm:
      SawRawAsm = true;
      return;

    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
    case Stmt::Kind::Syncm:
      // p_syncm drains the executing hart's own memory operations; it
      // is not a cross-member barrier and justifies nothing here.
      return;
    }
  }
};

//===----------------------------------------------------------------------===//
// Conflict detection
//===----------------------------------------------------------------------===//

/// True when members t1 != t2 can touch overlapping bytes through
/// accesses \p X (as t1) and \p Y (as t2).
bool conflictExists(const Access &X, const Access &Y, unsigned N,
                    unsigned &T1Out, unsigned &T2Out) {
  // Comparable only when both resolve into the same address space.
  if (X.Abs != Y.Abs)
    return false;
  if (!X.Abs && X.Sym != Y.Sym)
    return false;
  int64_t BX = X.Abs ? X.Base : 0, BY = Y.Abs ? Y.Base : 0;
  for (unsigned T1 = 0; T1 != N; ++T1) {
    if (!X.Allow[T1])
      continue;
    // Overlap over t2: Lo <= A_y*t2 <= Hi.
    int64_t Lo = BX + X.A * int64_t(T1) + X.Lo -
                 (BY + Y.Hi + int64_t(Y.Width) - 1);
    int64_t Hi = BX + X.A * int64_t(T1) + X.Hi + int64_t(X.Width) - 1 -
                 (BY + Y.Lo);
    if (Lo > Hi)
      continue;
    // Exact ceil/floor for possibly-negative operands (B > 0).
    auto CeilDiv = [](int64_t A, int64_t B) {
      return A >= 0 ? (A + B - 1) / B : -((-A) / B);
    };
    auto FloorDiv = [](int64_t A, int64_t B) {
      return A >= 0 ? A / B : -((-A + B - 1) / B);
    };
    int64_t T2Lo = 0, T2Hi = int64_t(N) - 1;
    if (Y.A > 0) {
      T2Lo = std::max<int64_t>(0, CeilDiv(Lo, Y.A));
      T2Hi = std::min<int64_t>(int64_t(N) - 1, FloorDiv(Hi, Y.A));
    } else if (Y.A < 0) {
      T2Lo = std::max<int64_t>(0, CeilDiv(-Hi, -Y.A));
      T2Hi = std::min<int64_t>(int64_t(N) - 1, FloorDiv(-Lo, -Y.A));
    } else if (Lo > 0 || Hi < 0) {
      continue; // constant-address access that never overlaps
    }
    for (int64_t T2 = T2Lo; T2 <= T2Hi; ++T2) {
      if (T2 == int64_t(T1) || !Y.Allow[T2])
        continue;
      T1Out = T1;
      T2Out = static_cast<unsigned>(T2);
      return true;
    }
  }
  return false;
}

void reportRaces(AnalysisResult &Res, const std::string &RegionFn,
                 unsigned N, const std::vector<Access> &Accesses) {
  if (N < 2)
    return;
  if (N > 8192) {
    Res.warning(0, "analysis.team-too-large",
                "team of " + std::to_string(N) +
                    " members exceeds the race analysis bound; region '" +
                    RegionFn + "' not checked");
    return;
  }
  std::set<std::string> Seen;
  for (size_t I = 0; I != Accesses.size(); ++I) {
    for (size_t J = I; J != Accesses.size(); ++J) {
      const Access &X = Accesses[I], &Y = Accesses[J];
      if (!X.IsWrite && !Y.IsWrite)
        continue;
      unsigned T1 = 0, T2 = 0;
      if (!conflictExists(X, Y, N, T1, T2))
        continue;
      std::string Sym = !X.Sym.empty() ? X.Sym : Y.Sym;
      std::string Key = Sym + ":" + std::to_string(std::min(X.Line, Y.Line)) +
                        ":" + std::to_string(std::max(X.Line, Y.Line)) +
                        (X.IsWrite && Y.IsWrite ? "ww" : "rw");
      if (!Seen.insert(Key).second)
        continue;
      const char *Rule = X.IsWrite && Y.IsWrite ? "race.ww" : "race.rw";
      const Access &W = X.IsWrite ? X : Y;
      const Access &O = X.IsWrite ? Y : X;
      Res.error(
          W.Line, Rule,
          formatString("parallel region '%s': members %u and %u of the "
                       "%u-member team can touch overlapping elements of "
                       "'%s' (%s at line %u, %s at line %u); the paper's "
                       "determinism contract requires per-member disjoint "
                       "writes or a reduction",
                       RegionFn.c_str(), T1, T2, N,
                       Sym.empty() ? "an absolute address" : Sym.c_str(),
                       "write", W.Line, O.IsWrite ? "write" : "read",
                       O.Line));
    }
  }
}

//===----------------------------------------------------------------------===//
// Module walk
//===----------------------------------------------------------------------===//

class ModuleAnalyzer {
public:
  ModuleAnalyzer(const Module &M, const DetRaceOptions &Opts,
                 AnalysisResult &Res)
      : M(M), Opts(Opts), Res(Res) {
    for (const auto &F : M.functions())
      Fns[F->name()] = F.get();
    for (const Module::GlobalData &G : M.Globals)
      Globals[G.Name] = {static_cast<int64_t>(G.Addr),
                         int64_t(4) * G.SizeWords};
  }

  void run() {
    for (const auto &F : M.functions())
      if (F->kind() == FnKind::Main || F->kind() == FnKind::Normal)
        scanSeq(F->body(), F->kind() == FnKind::Main);
  }

private:
  const Module &M;
  const DetRaceOptions &Opts;
  AnalysisResult &Res;
  std::map<std::string, const Function *> Fns;
  std::map<std::string, GlobalRange> Globals;

  void scanSeq(const std::vector<const Stmt *> &List, bool InMain) {
    for (size_t I = 0; I != List.size(); ++I) {
      const Stmt *S = List[I];
      switch (S->K) {
      case Stmt::Kind::ParallelFor: {
        const Stmt *Collect = nullptr;
        if (I + 1 != List.size() &&
            List[I + 1]->K == Stmt::Kind::ReduceCollect) {
          Collect = List[I + 1];
          ++I;
        }
        analyzeRegion(S, Collect);
        break;
      }
      case Stmt::Kind::ReduceCollect:
        Res.warning(S->Line, "reduce.collect-unpaired",
                    "__reduce_collect does not directly follow a "
                    "parallel region; the p_lwre loop blocks until "
                    "something fills the reduction slot");
        break;
      case Stmt::Kind::ReduceSend:
        Res.error(S->Line, "reduce.send-outside-team",
                  InMain
                      ? "__reduce_send in main: only team members have "
                        "a head to send to"
                      : "__reduce_send outside a thread function");
        break;
      case Stmt::Kind::If:
      case Stmt::Kind::While:
      case Stmt::Kind::DoWhile:
        scanSeq(S->Then, InMain);
        scanSeq(S->Else, InMain);
        break;
      default:
        break;
      }
    }
  }

  void analyzeRegion(const Stmt *S, const Stmt *Collect) {
    unsigned N = S->NumHarts;
    if (N == 0) {
      Res.error(S->Line, "region.zero-team",
                "parallel region '" + S->Callee + "' launches zero harts");
      return;
    }
    if (N > romp::MaxTeamHarts) {
      Res.error(S->Line, "region.team-too-big",
                formatString("team of %u harts exceeds the architectural "
                             "line maximum of %u",
                             N, romp::MaxTeamHarts));
      return;
    }
    if (Opts.MachineHarts && N > Opts.MachineHarts)
      Res.error(S->Line, "region.team-too-big",
                formatString("team of %u harts exceeds the target "
                             "machine's %u harts; the p_fc/p_fn allocator "
                             "would spin forever",
                             N, Opts.MachineHarts));
    if (S->DeclaredHarts && S->DeclaredHarts != N)
      Res.warning(S->Line, "region.num-threads-mismatch",
                  formatString("parallel loop bound %u disagrees with "
                               "omp_set_num_threads(%u); the team size is "
                               "the loop bound",
                               N, S->DeclaredHarts));

    auto It = Fns.find(S->Callee);
    if (It == Fns.end()) {
      Res.error(S->Line, "region.unknown-callee",
                "parallel region launches unknown function '" + S->Callee +
                    "'");
      return;
    }
    const Function *Thread = It->second;
    if (Thread->kind() != FnKind::Thread) {
      Res.error(S->Line, "region.callee-not-thread",
                "parallel region launches '" + S->Callee +
                    "', which is not compiled as a thread function; it "
                    "would end with ret instead of p_ret and break the "
                    "team's in-order commit barrier");
      return;
    }

    RegionAnalyzer RA(Res, N, Fns, Globals);
    RA.run(*Thread, S->DataSymbol);

    if (RA.SawNestedRegion)
      Res.error(RA.NestedRegionLine ? RA.NestedRegionLine : S->Line,
                "region.nested",
                "thread function '" + S->Callee +
                    "' opens a nested parallel region; the runtime "
                    "supports one team at a time");
    if (RA.SawCollect)
      Res.error(RA.CollectLine ? RA.CollectLine : S->Line,
                "reduce.collect-in-thread",
                "'" + S->Callee +
                    "' collects reduction partials inside the team; only "
                    "the team head (after the join) may collect");
    if (RA.SawRawAsm)
      Res.warning(S->Line, "analysis.rawasm",
                  "thread function '" + S->Callee +
                      "' contains raw assembly the analyzer cannot see");

    reportRaces(Res, S->Callee, N, RA.Accesses);

    // Reduction arity: the collect count must equal what the team
    // provably sends (the frontend convention is one send per member,
    // collect count == team size).
    uint64_t TotalMin = 0, TotalMax = 0;
    for (unsigned T = 0; T != N; ++T) {
      TotalMin = satAdd(TotalMin, RA.SendMin[T]);
      TotalMax = satAdd(TotalMax, RA.SendMax[T]);
    }
    if (Collect) {
      uint64_t C = Collect->NumHarts;
      if (TotalMax == 0) {
        Res.error(Collect->Line, "reduce.deadlock",
                  formatString("reduction collects %llu partials but no "
                               "member of '%s' ever sends one; the p_lwre "
                               "loop blocks forever",
                               static_cast<unsigned long long>(C),
                               S->Callee.c_str()));
      } else if (TotalMin == TotalMax && C != TotalMin) {
        Res.error(Collect->Line, "reduce.arity",
                  formatString("reduction collects %llu partials but the "
                               "team of %u sends exactly %llu; the "
                               "mismatch %s",
                               static_cast<unsigned long long>(C), N,
                               static_cast<unsigned long long>(TotalMin),
                               C < TotalMin
                                   ? "leaves slots full and corrupts the "
                                     "next reduction"
                                   : "blocks the head forever"));
      } else if (TotalMin != TotalMax) {
        Res.warning(Collect->Line, "reduce.varying",
                    formatString("members of '%s' send between %llu and "
                                 "%llu partials depending on data; the "
                                 "collect count %llu cannot be validated",
                                 S->Callee.c_str(),
                                 static_cast<unsigned long long>(TotalMin),
                                 static_cast<unsigned long long>(TotalMax),
                                 static_cast<unsigned long long>(
                                     Collect->NumHarts)));
      }
    } else if (TotalMax > 0) {
      Res.warning(S->Line, "reduce.uncollected",
                  "members of '" + S->Callee +
                      "' send reduction partials that are never "
                      "collected; the values sit in the head's result "
                      "slot and corrupt the next reduction");
    }
  }
};

} // namespace

AnalysisResult analysis::analyzeModule(const Module &M,
                                       const DetRaceOptions &Opts) {
  AnalysisResult Res;
  ModuleAnalyzer MA(M, Opts, Res);
  MA.run();
  return Res;
}
