//===- analysis/DetRace.cpp - Det-C determinism analyzer ----------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
//
// Layered may-race abstract domain. Every 32-bit value is approximated
// by the form
//
//     Sym + A*t + [Lo, Hi] + M*Z
//
// where t is the team index of the executing member, Sym is an optional
// global symbol base, [Lo, Hi] a constant interval and M*Z an optional
// "any multiple" term that keeps the residue class of values built by
// scaling an unknown quantity (an indirect index, a loaded bound). A
// value is *exact* when it is fully affine (M = 0 and every operation
// that produced it stayed in the affine fragment) and *may* otherwise.
//
// Addresses are recorded for every load and store — there is no
// silently-skipped case. Conflicts are then layered:
//
//   1. exact x exact pairs use the precise affine overlap solver and
//      yield race.ww / race.rw errors (the original domain);
//   2. pairs with an imprecise side first try bank-disjointness — both
//      footprints confined to member-private global banks under the
//      machine's bank geometry discharges the pair even when the word
//      index is unknown (privatized histograms);
//   3. then residue/interval disjointness — the difference set must
//      contain a multiple of gcd(Mx, My) inside the overlap window
//      (cyclic distributions, masked chunk indices);
//   4. what survives is a race.may warning with the imprecise-address
//      note, which --oracle-refine either upgrades to race.confirmed
//      with a dynamic witness or annotates unconfirmed-on-corpus.
//
// Residues are truncated to their power-of-two part so they stay sound
// under the machine's mod-2^32 arithmetic (gcd(M, 2^32) divides every
// wrapped multiple of M).
//
//===----------------------------------------------------------------------===//

#include "analysis/DetRace.h"

#include "isa/AddressMap.h"
#include "romp/Runtime.h"
#include "sim/Config.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <string>

using namespace lbp;
using namespace lbp::analysis;
using namespace lbp::dsl;

namespace {

/// Saturation bound for reduction-send counting.
constexpr uint64_t SendCap = 1ull << 30;

/// Interval bound of the value domain: beyond this the interval term is
/// dropped in favor of the M*Z term (see AV::norm).
constexpr int64_t RangeCap = int64_t(1) << 45;

/// Pair-enumeration budget shared by one region's conflict detection;
/// exhausting it is a conservative may-conflict, never a discharge.
constexpr uint64_t PairBudget = 1ull << 22;

uint64_t satAdd(uint64_t A, uint64_t B) {
  return std::min(SendCap, A + std::min(B, SendCap));
}
uint64_t satMul(uint64_t A, uint64_t B) {
  if (A == 0 || B == 0)
    return 0;
  if (A > SendCap / B)
    return SendCap;
  return A * B;
}

/// The abstract value: Sym + A*t + [Lo, Hi] (+ M*Z when !Exact).
struct AV {
  bool Exact = true;
  std::string Sym; ///< Empty = pure numeric value.
  int64_t A = 0;   ///< Coefficient of the team index t.
  int64_t Lo = 0, Hi = 0;
  int64_t M = 0;   ///< Residue term; only meaningful when !Exact.

  static AV cst(int64_t V) { return {true, "", 0, V, V, 0}; }
  static AV teamIndex() { return {true, "", 1, 0, 0, 0}; }
  static AV sym(const std::string &S, int64_t Off) {
    return {true, S, 0, Off, Off, 0};
  }
  /// No information at all: any value (0 + 1*Z).
  static AV unknown() { return {false, "", 0, 0, 0, 1}; }
  /// A bounded but imprecise value.
  static AV mayRange(int64_t Lo, int64_t Hi) {
    return {false, "", 0, Lo, Hi, 0};
  }

  bool isSingleton() const { return Exact && Sym.empty() && Lo == Hi; }
  bool operator==(const AV &O) const {
    return Exact == O.Exact && Sym == O.Sym && A == O.A && Lo == O.Lo &&
           Hi == O.Hi && M == O.M;
  }
};

/// Keeps the domain sound under the machine's mod-2^32 arithmetic and
/// the int64 carrier: residues fall to their power-of-two part (only
/// gcd(M, 2^32) survives wraparound) and intervals that leave the cap
/// degrade to a pure residue term.
AV norm(AV V) {
  if (V.Exact) {
    V.M = 0;
    if (V.Lo < -RangeCap || V.Hi > RangeCap) {
      V.Exact = false;
      V.Sym.clear();
      V.A = 0;
      V.Lo = V.Hi = 0;
      V.M = 1;
    }
    return V;
  }
  if (V.M < 0)
    V.M = -V.M;
  if (V.M)
    V.M = std::min<int64_t>(V.M & -V.M, int64_t(1) << 32);
  if (V.Lo < -RangeCap || V.Hi > RangeCap) {
    V.Lo = V.Hi = 0;
    if (!V.M)
      V.M = 1;
  }
  return V;
}

AV avAdd(const AV &L, const AV &R) {
  if (!L.Sym.empty() && !R.Sym.empty())
    return AV::unknown();
  AV V;
  V.Exact = L.Exact && R.Exact;
  V.Sym = L.Sym.empty() ? R.Sym : L.Sym;
  V.A = L.A + R.A;
  V.Lo = L.Lo + R.Lo;
  V.Hi = L.Hi + R.Hi;
  V.M = std::gcd(L.M, R.M);
  return norm(V);
}

AV avSub(const AV &L, const AV &R) {
  if (!R.Sym.empty())
    return AV::unknown();
  AV V;
  V.Exact = L.Exact && R.Exact;
  V.Sym = L.Sym;
  V.A = L.A - R.A;
  V.Lo = L.Lo - R.Hi;
  V.Hi = L.Hi - R.Lo;
  V.M = std::gcd(L.M, R.M);
  return norm(V);
}

/// V scaled by the compile-time constant C (addresses don't scale).
AV avScale(const AV &V, int64_t C) {
  if (C == 0)
    return AV::cst(0);
  if (!V.Sym.empty())
    return AV::unknown();
  if (C < -(int64_t(1) << 31) || C > int64_t(1) << 31)
    return AV::unknown();
  const int64_t AbsC = C < 0 ? -C : C;
  const __int128 Cap = RangeCap;
  __int128 MA = __int128(V.A) * C;
  if (MA < -Cap || MA > Cap)
    return AV::unknown();
  auto ScaleM = [&](int64_t M) -> int64_t {
    __int128 MM = __int128(M) * AbsC;
    return MM > (__int128(1) << 32) ? int64_t(1) << 32 : int64_t(MM);
  };
  AV R;
  R.A = int64_t(MA);
  __int128 P1 = __int128(V.Lo) * C, P2 = __int128(V.Hi) * C;
  if (P1 > P2)
    std::swap(P1, P2);
  if (P1 < -Cap || P2 > Cap) {
    // Interval term blown: C*x is still a multiple of C (and of C*M),
    // so keep the affine part and fall back to a residue offset.
    R.Exact = false;
    R.Lo = R.Hi = 0;
    R.M = ScaleM(V.M ? V.M : 1);
  } else {
    R.Exact = V.Exact;
    R.Lo = int64_t(P1);
    R.Hi = int64_t(P2);
    R.M = V.M ? ScaleM(V.M) : 0;
  }
  return norm(R);
}

AV avMul(const AV &L, const AV &R) {
  if (L.isSingleton() && L.A == 0)
    return avScale(R, L.Lo);
  if (R.isSingleton() && R.A == 0)
    return avScale(L, R.Lo);
  // The product of two imprecise-but-scaled values: an unknown times
  // anything keeps only the unknown side's residue as a divisor of the
  // result when the other side is a pure multiple; too subtle to pay
  // for — give up the structure.
  return AV::unknown();
}

bool cmpHolds(CmpOp Op, int64_t L, int64_t R) {
  switch (Op) {
  case CmpOp::Eq:
    return L == R;
  case CmpOp::Ne:
    return L != R;
  case CmpOp::Lt:
    return L < R;
  case CmpOp::Ge:
    return L >= R;
  case CmpOp::Gt:
    return L > R;
  case CmpOp::Le:
    return L <= R;
  case CmpOp::Ltu:
    return static_cast<uint32_t>(L) < static_cast<uint32_t>(R);
  case CmpOp::Geu:
    return static_cast<uint32_t>(L) >= static_cast<uint32_t>(R);
  }
  return false;
}

/// One recorded shared-memory access of a team member.
struct Access {
  bool IsWrite = false;
  bool Exact = false; ///< Address stayed in the affine fragment.
  bool Abs = false;   ///< Base resolved to an absolute address.
  bool InSend = false; ///< Read feeding a __reduce_send value.
  std::string Sym;    ///< Original symbol (for messages; may be empty).
  int64_t Base = 0;   ///< Absolute base when Abs.
  int64_t A = 0, Lo = 0, Hi = 0;
  int64_t M = 0;      ///< Residue term of the address (0 = bounded).
  unsigned Width = 4;
  unsigned Line = 0;
  std::vector<char> Allow; ///< Team indices that can perform it.
};

struct GlobalRange {
  int64_t Addr = 0;
  int64_t SizeBytes = 0;
};

/// Per-region analysis of one thread function: walks the body with the
/// abstract environment and collects accesses plus reduction-send
/// counts.
class RegionAnalyzer {
public:
  RegionAnalyzer(AnalysisResult &Res, unsigned N,
                 const std::map<std::string, const Function *> &Fns,
                 const std::map<std::string, GlobalRange> &Globals)
      : SendMin(N, 0), SendMax(N, 0), Res(Res), N(N), Fns(Fns),
        Globals(Globals), Allow(N, 1) {}

  void run(const Function &ThreadFn, const std::string &DataSymbol) {
    Env.clear();
    const auto &Params = ThreadFn.params();
    if (!Params.empty())
      Env[Params[0]] = AV::teamIndex();
    if (Params.size() > 1 && !DataSymbol.empty())
      Env[Params[1]] = AV::sym(DataSymbol, 0);
    if (Params.size() > 2)
      Env[Params[2]] = AV::cst(static_cast<int64_t>(N));
    InlineStack.insert(&ThreadFn);
    walkStmts(ThreadFn.body());
    InlineStack.erase(&ThreadFn);
  }

  std::vector<Access> Accesses;
  std::vector<uint64_t> SendMin, SendMax; ///< Per team index t.
  bool SawRawAsm = false;
  bool SawNestedRegion = false;
  unsigned NestedRegionLine = 0;
  bool SawCollect = false;
  unsigned CollectLine = 0;

private:
  AnalysisResult &Res;
  unsigned N;
  const std::map<std::string, const Function *> &Fns;
  const std::map<std::string, GlobalRange> &Globals;

  std::map<const Local *, AV> Env;
  std::vector<char> Allow;
  uint64_t MulMin = 1, MulMax = 1;
  bool Record = true;
  bool InSendValue = false;
  std::set<const Function *> InlineStack;

  AV envOf(const Local *L) const {
    auto It = Env.find(L);
    return It == Env.end() ? AV::unknown() : It->second;
  }

  void recordAccess(bool IsWrite, const AV &Addr, unsigned Width,
                    unsigned Line) {
    if (!Record)
      return;
    Access Acc;
    Acc.IsWrite = IsWrite;
    Acc.Exact = Addr.Exact;
    Acc.InSend = InSendValue && !IsWrite;
    Acc.Sym = Addr.Sym;
    Acc.A = Addr.A;
    Acc.Lo = Addr.Lo;
    Acc.Hi = Addr.Hi;
    Acc.M = Addr.M;
    Acc.Width = Width;
    Acc.Line = Line;
    Acc.Allow = Allow;
    if (Addr.Sym.empty()) {
      Acc.Abs = true;
    } else if (auto It = Globals.find(Addr.Sym); It != Globals.end()) {
      Acc.Abs = true;
      Acc.Base = It->second.Addr;
    }
    Accesses.push_back(std::move(Acc));
  }

  /// The smallest value A*t + Lo can take for t in [0, N).
  int64_t minOverTeam(const AV &V) const {
    int64_t TMax = int64_t(N) - 1;
    return (V.A >= 0 ? 0 : V.A * TMax) + V.Lo;
  }

  /// Non-affine binary operations: bounded may-values instead of a
  /// blanket give-up. Every bound below holds for the machine's 32-bit
  /// two's-complement result regardless of the operand abstraction.
  AV evalBinMay(BinOp Op, const AV &L, const AV &R) {
    const bool RConst = R.isSingleton() && R.A == 0;
    switch (Op) {
    case BinOp::And:
      if (RConst) {
        if (R.Lo >= 0)
          return AV::mayRange(0, R.Lo); // x & mask is within the mask
        // Negative mask: low zero bits survive — the result is a
        // multiple of the mask's lowest set bit.
        return norm(AV{false, "", 0, 0, 0, R.Lo & -R.Lo});
      }
      if (L.isSingleton() && L.A == 0 && L.Lo >= 0)
        return AV::mayRange(0, L.Lo);
      return AV::unknown();
    case BinOp::Rem:
      if (RConst && R.Lo != 0) {
        int64_t C = R.Lo < 0 ? -R.Lo : R.Lo;
        if (C > int64_t(1) << 31)
          return AV::unknown();
        // rem follows the dividend's sign; a provably non-negative
        // dividend tightens the range to [0, C).
        if (L.Sym.empty() && L.M == 0 && minOverTeam(L) >= 0)
          return AV::mayRange(0, C - 1);
        return AV::mayRange(-(C - 1), C - 1);
      }
      return AV::unknown();
    case BinOp::Div:
      if (RConst && R.Lo > 0 && L.Sym.empty() && L.A == 0 && L.M == 0) {
        int64_t A = L.Lo / R.Lo, B = L.Hi / R.Lo; // trunc, monotone
        AV V = AV::mayRange(std::min(A, B), std::max(A, B));
        return V;
      }
      return AV::unknown();
    case BinOp::Shr:
      if (RConst && R.Lo > 0 && R.Lo < 32)
        return AV::mayRange(0, int64_t(0xFFFFFFFFu >> R.Lo));
      return AV::unknown();
    case BinOp::Sra:
      if (RConst && R.Lo > 0 && R.Lo < 32)
        return AV::mayRange(INT32_MIN >> R.Lo, INT32_MAX >> R.Lo);
      return AV::unknown();
    case BinOp::Slt:
    case BinOp::Sltu:
      return AV::mayRange(0, 1);
    default:
      return AV::unknown();
    }
  }

  /// Evaluates \p E, recording every Load it contains as a read.
  AV evalExpr(const Expr *E, unsigned Line) {
    if (!E)
      return AV::unknown();
    switch (E->K) {
    case Expr::Kind::Const:
      return AV::cst(E->IVal);
    case Expr::Kind::LocalRef:
      return envOf(E->L);
    case Expr::Kind::AddrOf:
      return AV::sym(E->Symbol, E->IVal);
    case Expr::Kind::Load: {
      AV Base = evalExpr(E->Lhs, Line);
      recordAccess(false, avAdd(Base, AV::cst(E->IVal)), E->Width, Line);
      return AV::unknown(); // the loaded value itself is data-dependent
    }
    case Expr::Kind::Bin: {
      AV L = evalExpr(E->Lhs, Line);
      AV R = evalExpr(E->Rhs, Line);
      switch (E->Op) {
      case BinOp::Add:
        return avAdd(L, R);
      case BinOp::Sub:
        return avSub(L, R);
      case BinOp::Mul:
        return avMul(L, R);
      case BinOp::Shl:
        if (R.isSingleton() && R.A == 0 && R.Lo >= 0 && R.Lo < 31)
          return avScale(L, int64_t(1) << R.Lo);
        return AV::unknown();
      default:
        return evalBinMay(E->Op, L, R);
      }
    }
    case Expr::Kind::HartId:
    case Expr::Kind::CycleCount:
    case Expr::Kind::InstretCount:
    case Expr::Kind::RecvResult:
      return AV::unknown();
    }
    return AV::unknown();
  }

  /// Intersection join: keep only bindings equal on both paths.
  void joinEnv(std::map<const Local *, AV> &Into,
               const std::map<const Local *, AV> &Other) {
    for (auto It = Into.begin(); It != Into.end();) {
      auto OIt = Other.find(It->first);
      if (OIt == Other.end() || !(OIt->second == It->second))
        It = Into.erase(It);
      else
        ++It;
    }
  }

  /// Splits the current Allow mask by the comparison when both sides
  /// are affine singletons of t. Returns false (masks untouched) when
  /// the condition is not expressible over t.
  bool maskFromCmp(CmpOp Op, const AV &L, const AV &R,
                   std::vector<char> &ThenMask,
                   std::vector<char> &ElseMask) const {
    if (!L.isSingleton() || !R.isSingleton())
      return false;
    if (L.A == 0 && R.A == 0)
      return false; // constant condition: not worth splitting
    for (unsigned T = 0; T != N; ++T) {
      bool Holds = cmpHolds(Op, L.A * int64_t(T) + L.Lo,
                            R.A * int64_t(T) + R.Lo);
      ThenMask[T] = Allow[T] && Holds;
      ElseMask[T] = Allow[T] && !Holds;
    }
    return true;
  }

  void collectAssigned(const std::vector<const Stmt *> &L,
                       std::set<const Local *> &Out) const {
    for (const Stmt *S : L) {
      if (S->K == Stmt::Kind::Assign || S->K == Stmt::Kind::ReduceCollect)
        Out.insert(S->Dst);
      if (S->K == Stmt::Kind::Call && S->Dst)
        Out.insert(S->Dst);
      collectAssigned(S->Then, Out);
      collectAssigned(S->Else, Out);
    }
  }

  void countAssigns(const std::vector<const Stmt *> &L, const Local *LV,
                    unsigned &Count) const {
    for (const Stmt *S : L) {
      if ((S->K == Stmt::Kind::Assign || S->K == Stmt::Kind::Call ||
           S->K == Stmt::Kind::ReduceCollect) &&
          S->Dst == LV)
        ++Count;
      countAssigns(S->Then, LV, Count);
      countAssigns(S->Else, LV, Count);
    }
  }

  /// Finds the loop variable's constant step in \p Step (or, for
  /// while-shaped loops, the tail of \p Body). 0 = not recognized; any
  /// second assignment to the variable anywhere in the loop defeats it.
  int64_t findStep(const Local *LV, const std::vector<const Stmt *> &Body,
                   const std::vector<const Stmt *> &Step) const {
    const std::vector<const Stmt *> &Src = !Step.empty() ? Step : Body;
    int64_t Found = 0;
    for (const Stmt *S : Src) {
      if (S->K != Stmt::Kind::Assign || S->Dst != LV)
        continue;
      const Expr *V = S->Value;
      Found = 0;
      if (V && V->K == Expr::Kind::Bin && V->Lhs &&
          V->Lhs->K == Expr::Kind::LocalRef && V->Lhs->L == LV &&
          V->Rhs && V->Rhs->K == Expr::Kind::Const) {
        if (V->Op == BinOp::Add)
          Found = V->Rhs->IVal;
        else if (V->Op == BinOp::Sub)
          Found = -V->Rhs->IVal;
      }
    }
    unsigned Count = 0;
    countAssigns(Body, LV, Count);
    countAssigns(Step, LV, Count);
    return Count == 1 ? Found : 0;
  }

  /// True when \p V is usable as a loop boundary: a bounded value with
  /// no residue term (imprecise is fine — the widened range is just a
  /// may-range then).
  static bool boundedBoundary(const AV &V) { return V.M == 0; }

  /// Range of the loop variable inside the body of a recognized loop.
  AV widen(const AV &Init, const AV &Bound, CmpOp Op, int64_t Step) const {
    if (Step == 0 || !boundedBoundary(Init) || !boundedBoundary(Bound))
      return AV::unknown();
    if (Init.Sym != Bound.Sym || Init.A != Bound.A)
      return AV::unknown();
    AV R;
    R.Exact = Init.Exact && Bound.Exact;
    R.Sym = Init.Sym;
    R.A = Init.A;
    switch (Op) {
    case CmpOp::Lt:
      if (Step <= 0)
        return AV::unknown();
      R.Lo = Init.Lo;
      R.Hi = std::max(Init.Lo, Bound.Hi - 1);
      return norm(R);
    case CmpOp::Ne:
      if (Step != 1)
        return AV::unknown();
      R.Lo = Init.Lo;
      R.Hi = std::max(Init.Lo, Bound.Hi - 1);
      return norm(R);
    case CmpOp::Le:
      if (Step <= 0)
        return AV::unknown();
      R.Lo = Init.Lo;
      R.Hi = std::max(Init.Lo, Bound.Hi);
      return norm(R);
    case CmpOp::Gt:
      if (Step >= 0)
        return AV::unknown();
      R.Lo = std::min(Init.Hi, Bound.Lo + 1);
      R.Hi = Init.Hi;
      return norm(R);
    case CmpOp::Ge:
      if (Step >= 0)
        return AV::unknown();
      R.Lo = std::min(Init.Hi, Bound.Lo);
      R.Hi = Init.Hi;
      return norm(R);
    default:
      return AV::unknown();
    }
  }

  /// Iteration-count interval of a recognized loop; false = unknown.
  bool tripCount(const AV &Init, const AV &Bound, CmpOp Op, int64_t Step,
                 uint64_t &TMin, uint64_t &TMax) const {
    if (!Init.Exact || !Bound.Exact || Step == 0 ||
        Init.Sym != Bound.Sym || Init.A != Bound.A)
      return false;
    int64_t DLo = Bound.Lo - Init.Hi, DHi = Bound.Hi - Init.Lo;
    int64_t S = Step;
    if (Op == CmpOp::Le)
      DLo += 1, DHi += 1;
    if (Op == CmpOp::Gt || Op == CmpOp::Ge) {
      DLo = Init.Lo - Bound.Hi;
      DHi = Init.Hi - Bound.Lo;
      if (Op == CmpOp::Ge)
        DLo += 1, DHi += 1;
      S = -Step;
    } else if (Op != CmpOp::Lt && Op != CmpOp::Le && Op != CmpOp::Ne) {
      return false;
    }
    if (S <= 0)
      return false;
    auto Ceil = [S](int64_t D) -> uint64_t {
      if (D <= 0)
        return 0;
      return static_cast<uint64_t>((D + S - 1) / S);
    };
    TMin = Ceil(DLo);
    TMax = Ceil(DHi);
    return true;
  }

  void walkLoop(const Stmt *S) {
    const Local *LV =
        S->CmpLhs && S->CmpLhs->K == Expr::Kind::LocalRef ? S->CmpLhs->L
                                                          : nullptr;
    AV Init = LV ? envOf(LV) : AV::unknown();
    Record = false;
    AV Bound = evalExpr(S->CmpRhs, S->Line);
    Record = true;
    int64_t Step = LV ? findStep(LV, S->Then, S->Else) : 0;

    std::set<const Local *> Assigned;
    collectAssigned(S->Then, Assigned);
    collectAssigned(S->Else, Assigned);
    for (const Local *L : Assigned)
      Env.erase(L);

    AV Widened = Step ? widen(Init, Bound, S->Cmp, Step) : AV::unknown();
    if (LV)
      Env[LV] = Widened;

    uint64_t TMin = 0, TMax = SendCap;
    bool TripKnown =
        Step && tripCount(Init, Bound, S->Cmp, Step, TMin, TMax);
    if (S->K == Stmt::Kind::DoWhile) {
      TMin = std::max<uint64_t>(TMin, 1);
      TMax = std::max<uint64_t>(TMax, 1);
    }
    if (!TripKnown) {
      TMin = S->K == Stmt::Kind::DoWhile ? 1 : 0;
      TMax = SendCap;
    }

    uint64_t SvMin = MulMin, SvMax = MulMax;
    MulMin = satMul(MulMin, TMin);
    MulMax = satMul(MulMax, TMax);
    walkStmts(S->Then);
    walkStmts(S->Else);
    MulMin = SvMin;
    MulMax = SvMax;

    // Record the condition's own loads with the widened environment.
    evalExpr(S->CmpLhs, S->Line);
    evalExpr(S->CmpRhs, S->Line);

    // Values carried out of the loop are whatever the last iteration
    // left; our single-pass walk cannot represent that, so drop them.
    for (const Local *L : Assigned)
      Env.erase(L);
    if (LV)
      Env.erase(LV);
  }

  void walkCall(const Stmt *S) {
    std::vector<AV> ArgVals;
    for (const Expr *A : S->Args)
      ArgVals.push_back(evalExpr(A, S->Line));
    auto It = Fns.find(S->Callee);
    const Function *Callee = It == Fns.end() ? nullptr : It->second;
    if (Callee && Callee->kind() == FnKind::Thread) {
      Res.error(S->Line, "region.thread-called",
                "thread function '" + S->Callee +
                    "' called directly; it ends with p_ret and would "
                    "tear down the calling hart");
      return;
    }
    if (Callee && Callee->kind() == FnKind::Normal &&
        !InlineStack.count(Callee) && InlineStack.size() < 5) {
      // One-level-per-frame inlining so helper functions like the FIR
      // chunk kernels contribute their accesses with argument binding.
      std::map<const Local *, AV> Saved = std::move(Env);
      Env.clear();
      const auto &Params = Callee->params();
      for (size_t I = 0; I != Params.size() && I != ArgVals.size(); ++I)
        Env[Params[I]] = ArgVals[I];
      InlineStack.insert(Callee);
      walkStmts(Callee->body());
      InlineStack.erase(Callee);
      Env = std::move(Saved);
    }
    if (S->Dst)
      Env.erase(S->Dst);
  }

  void walkStmts(const std::vector<const Stmt *> &List) {
    for (const Stmt *S : List)
      walkStmt(S);
  }

  void walkStmt(const Stmt *S) {
    switch (S->K) {
    case Stmt::Kind::Assign:
      Env[S->Dst] = evalExpr(S->Value, S->Line);
      return;

    case Stmt::Kind::Store: {
      AV Base = evalExpr(S->Base, S->Line);
      evalExpr(S->Value, S->Line);
      recordAccess(true, avAdd(Base, AV::cst(S->Offset)), S->Width,
                   S->Line);
      return;
    }

    case Stmt::Kind::If: {
      AV L = evalExpr(S->CmpLhs, S->Line);
      AV R = evalExpr(S->CmpRhs, S->Line);
      std::vector<char> ThenMask = Allow, ElseMask = Allow;
      bool Guarded = maskFromCmp(S->Cmp, L, R, ThenMask, ElseMask);

      std::map<const Local *, AV> Saved = Env;
      std::vector<char> SvAllow = Allow;
      uint64_t SvMin = MulMin;
      Allow = ThenMask;
      if (!Guarded)
        MulMin = 0; // data-dependent branch: sends become optional
      walkStmts(S->Then);
      std::map<const Local *, AV> ThenEnv = std::move(Env);

      Env = std::move(Saved);
      Allow = ElseMask;
      walkStmts(S->Else);
      joinEnv(Env, ThenEnv);
      Allow = std::move(SvAllow);
      MulMin = SvMin;
      return;
    }

    case Stmt::Kind::While:
    case Stmt::Kind::DoWhile:
      walkLoop(S);
      return;

    case Stmt::Kind::Call:
      walkCall(S);
      return;

    case Stmt::Kind::Return:
      evalExpr(S->Value, S->Line);
      return;

    case Stmt::Kind::ParallelFor:
      SawNestedRegion = true;
      NestedRegionLine = S->Line;
      return;

    case Stmt::Kind::ReduceSend: {
      InSendValue = true;
      evalExpr(S->Value, S->Line);
      InSendValue = false;
      for (unsigned T = 0; T != N; ++T) {
        if (!Allow[T])
          continue;
        SendMin[T] = satAdd(SendMin[T], MulMin);
        SendMax[T] = satAdd(SendMax[T], MulMax);
      }
      return;
    }

    case Stmt::Kind::ReduceCollect:
      SawCollect = true;
      CollectLine = S->Line;
      if (S->Dst)
        Env.erase(S->Dst);
      return;

    case Stmt::Kind::SendResult:
      evalExpr(S->Base, S->Line);
      evalExpr(S->Value, S->Line);
      if (S->Offset < 0 ||
          S->Offset >= static_cast<int32_t>(sim::ResultSlots))
        Res.error(S->Line, "xpar.slot-range",
                  formatString("p_swre result slot %d is outside the "
                               "hart's %u slots",
                               S->Offset, sim::ResultSlots));
      return;

    case Stmt::Kind::RawAsm:
      SawRawAsm = true;
      return;

    case Stmt::Kind::Break:
    case Stmt::Kind::Continue:
    case Stmt::Kind::Syncm:
      // p_syncm drains the executing hart's own memory operations; it
      // is not a cross-member barrier and justifies nothing here.
      return;
    }
  }
};

//===----------------------------------------------------------------------===//
// Conflict detection
//===----------------------------------------------------------------------===//

int64_t ceilDiv(int64_t A, int64_t B) {
  return A >= 0 ? (A + B - 1) / B : -((-A) / B);
}
int64_t floorDiv(int64_t A, int64_t B) {
  return A >= 0 ? A / B : -((-A + B - 1) / B);
}

/// True when members t1 != t2 can touch overlapping bytes through the
/// exact affine accesses \p X (as t1) and \p Y (as t2).
bool conflictExists(const Access &X, const Access &Y, unsigned N,
                    unsigned &T1Out, unsigned &T2Out) {
  // Comparable only when both resolve into the same address space.
  if (X.Abs != Y.Abs)
    return false;
  if (!X.Abs && X.Sym != Y.Sym)
    return false;
  int64_t BX = X.Abs ? X.Base : 0, BY = Y.Abs ? Y.Base : 0;
  for (unsigned T1 = 0; T1 != N; ++T1) {
    if (!X.Allow[T1])
      continue;
    // Overlap over t2: Lo <= A_y*t2 <= Hi.
    int64_t Lo = BX + X.A * int64_t(T1) + X.Lo -
                 (BY + Y.Hi + int64_t(Y.Width) - 1);
    int64_t Hi = BX + X.A * int64_t(T1) + X.Hi + int64_t(X.Width) - 1 -
                 (BY + Y.Lo);
    if (Lo > Hi)
      continue;
    int64_t T2Lo = 0, T2Hi = int64_t(N) - 1;
    if (Y.A > 0) {
      T2Lo = std::max<int64_t>(0, ceilDiv(Lo, Y.A));
      T2Hi = std::min<int64_t>(int64_t(N) - 1, floorDiv(Hi, Y.A));
    } else if (Y.A < 0) {
      T2Lo = std::max<int64_t>(0, ceilDiv(-Hi, -Y.A));
      T2Hi = std::min<int64_t>(int64_t(N) - 1, floorDiv(-Lo, -Y.A));
    } else if (Lo > 0 || Hi < 0) {
      continue; // constant-address access that never overlaps
    }
    for (int64_t T2 = T2Lo; T2 <= T2Hi; ++T2) {
      if (T2 == int64_t(T1) || !Y.Allow[T2])
        continue;
      T1Out = T1;
      T2Out = static_cast<unsigned>(T2);
      return true;
    }
  }
  return false;
}

/// Byte span of access \p A as member \p T: [Lo, Hi], valid only when
/// the address has no residue term.
void spanAt(const Access &A, unsigned T, int64_t &Lo, int64_t &Hi) {
  Lo = A.Base + A.A * int64_t(T) + A.Lo;
  Hi = A.Base + A.A * int64_t(T) + A.Hi + int64_t(A.Width) - 1;
}

/// True when every allowed member's footprint of \p A is confined to
/// the shared-global region and the footprints of distinct members land
/// in disjoint banks — the access is "banked": member-private by the
/// machine's bank geometry even though the word index is unknown.
bool bankSelfDisjoint(const Access &A, unsigned N, unsigned BankLog2) {
  if (!A.Abs || A.M != 0)
    return false;
  std::vector<std::pair<int64_t, int64_t>> Banks;
  for (unsigned T = 0; T != N; ++T) {
    if (!A.Allow[T])
      continue;
    int64_t SLo, SHi;
    spanAt(A, T, SLo, SHi);
    if (SLo < int64_t(isa::GlobalBase) || SHi >= int64_t(isa::GlobalLimit))
      return false;
    Banks.push_back({(SLo - isa::GlobalBase) >> BankLog2,
                     (SHi - isa::GlobalBase) >> BankLog2});
  }
  std::sort(Banks.begin(), Banks.end());
  for (size_t I = 1; I < Banks.size(); ++I)
    if (Banks[I].first <= Banks[I - 1].second)
      return false;
  return true;
}

/// Bank-disjointness discharge for a pair: every (t1, t2), t1 != t2,
/// has X's t1-footprint and Y's t2-footprint in disjoint global banks.
bool bankPairDisjoint(const Access &X, const Access &Y, unsigned N,
                      unsigned BankLog2, uint64_t &Budget) {
  if (!X.Abs || !Y.Abs || X.M != 0 || Y.M != 0)
    return false;
  for (unsigned T1 = 0; T1 != N; ++T1) {
    if (!X.Allow[T1])
      continue;
    int64_t XLo, XHi;
    spanAt(X, T1, XLo, XHi);
    if (XLo < int64_t(isa::GlobalBase) || XHi >= int64_t(isa::GlobalLimit))
      return false;
    int64_t BXLo = (XLo - isa::GlobalBase) >> BankLog2;
    int64_t BXHi = (XHi - isa::GlobalBase) >> BankLog2;
    for (unsigned T2 = 0; T2 != N; ++T2) {
      if (T2 == T1 || !Y.Allow[T2])
        continue;
      if (Budget == 0 || --Budget == 0)
        return false;
      int64_t YLo, YHi;
      spanAt(Y, T2, YLo, YHi);
      if (YLo < int64_t(isa::GlobalBase) ||
          YHi >= int64_t(isa::GlobalLimit))
        return false;
      int64_t BYLo = (YLo - isa::GlobalBase) >> BankLog2;
      int64_t BYHi = (YHi - isa::GlobalBase) >> BankLog2;
      if (BXLo <= BYHi && BYLo <= BXHi)
        return false;
    }
  }
  return true;
}

/// May-overlap test for pairs with an imprecise side: the difference
/// set (an interval widened by both widths plus gcd(Mx, My)*Z) must
/// contain zero. Conservative (returns true) when the bases are
/// incomparable or the enumeration budget runs out.
bool mayOverlap(const Access &X, const Access &Y, unsigned N,
                unsigned &T1Out, unsigned &T2Out, uint64_t &Budget) {
  T1Out = 0;
  T2Out = N > 1 ? 1 : 0;
  int64_t BX = 0, BY = 0;
  if (X.Abs && Y.Abs) {
    BX = X.Base;
    BY = Y.Base;
  } else if (!(!X.Abs && !Y.Abs && X.Sym == Y.Sym)) {
    // Incomparable bases with an imprecise side: cannot prove
    // disjointness, so a shared-state conflict is possible.
    return true;
  }
  int64_t Mg = std::gcd(X.M, Y.M);
  for (unsigned T1 = 0; T1 != N; ++T1) {
    if (!X.Allow[T1])
      continue;
    for (unsigned T2 = 0; T2 != N; ++T2) {
      if (T2 == T1 || !Y.Allow[T2])
        continue;
      if (Budget == 0 || --Budget == 0)
        return true; // budget exhausted: conservative may-conflict
      int64_t BaseD =
          BX + X.A * int64_t(T1) - (BY + Y.A * int64_t(T2));
      int64_t DLo = BaseD + X.Lo - (Y.Hi + int64_t(Y.Width) - 1);
      int64_t DHi = BaseD + X.Hi + int64_t(X.Width) - 1 - Y.Lo;
      bool Hit = Mg == 0 ? (DLo <= 0 && 0 <= DHi)
                         : floorDiv(DHi, Mg) >= ceilDiv(DLo, Mg);
      if (Hit) {
        T1Out = T1;
        T2Out = T2;
        return true;
      }
    }
  }
  return false;
}

void reportRaces(AnalysisResult &Res, const std::string &RegionFn,
                 unsigned N, const std::vector<Access> &Accesses,
                 unsigned BankLog2, RegionCert &Cert,
                 std::vector<char> &Conflicting) {
  Conflicting.assign(Accesses.size(), 0);
  if (N < 2)
    return;
  if (N > 8192) {
    Res.warning(0, "analysis.team-too-large",
                "team of " + std::to_string(N) +
                    " members exceeds the race analysis bound; region '" +
                    RegionFn + "' not checked");
    return;
  }
  uint64_t Budget = PairBudget;
  std::set<std::string> Seen;
  for (size_t I = 0; I != Accesses.size(); ++I) {
    for (size_t J = I; J != Accesses.size(); ++J) {
      const Access &X = Accesses[I], &Y = Accesses[J];
      if (!X.IsWrite && !Y.IsWrite)
        continue;
      unsigned T1 = 0, T2 = 0;
      bool Exact = X.Exact && Y.Exact;
      if (Exact) {
        if (!conflictExists(X, Y, N, T1, T2))
          continue;
      } else {
        if (bankPairDisjoint(X, Y, N, BankLog2, Budget)) {
          ++Cert.BankDischarged;
          continue;
        }
        if (!mayOverlap(X, Y, N, T1, T2, Budget)) {
          ++Cert.ResidueDischarged;
          continue;
        }
      }
      Conflicting[I] = Conflicting[J] = 1;
      std::string Sym = !X.Sym.empty() ? X.Sym : Y.Sym;
      std::string Key = Sym + ":" + std::to_string(std::min(X.Line, Y.Line)) +
                        ":" + std::to_string(std::max(X.Line, Y.Line)) +
                        (Exact ? (X.IsWrite && Y.IsWrite ? "ww" : "rw")
                               : "may");
      if (!Seen.insert(Key).second)
        continue;
      const Access &W = X.IsWrite ? X : Y;
      const Access &O = X.IsWrite ? Y : X;
      const char *SymName =
          Sym.empty() ? "an absolute address" : Sym.c_str();
      if (Exact) {
        const char *Rule = X.IsWrite && Y.IsWrite ? "race.ww" : "race.rw";
        Res.error(
               W.Line, Rule,
               formatString(
                   "parallel region '%s': members %u and %u of the "
                   "%u-member team can touch overlapping elements of "
                   "'%s' (%s at line %u, %s at line %u); the paper's "
                   "determinism contract requires per-member disjoint "
                   "writes or a reduction",
                   RegionFn.c_str(), T1, T2, N, SymName, "write", W.Line,
                   O.IsWrite ? "write" : "read", O.Line))
            .Sym = Sym;
      } else {
        ++Cert.MayRaces;
        Res.warning(
               W.Line, "race.may",
               formatString(
                   "parallel region '%s': members %u and %u of the "
                   "%u-member team may touch overlapping elements of "
                   "'%s' (%s at line %u, %s at line %u); the address is "
                   "imprecise (non-affine) and neither bank-disjointness "
                   "nor residue reasoning discharges the pair — run "
                   "--oracle-refine for a dynamic verdict",
                   RegionFn.c_str(), T1, T2, N, SymName, "write", W.Line,
                   O.IsWrite ? "write" : "read", O.Line))
            .Sym = Sym;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Module walk
//===----------------------------------------------------------------------===//

class ModuleAnalyzer {
public:
  ModuleAnalyzer(const Module &M, const DetRaceOptions &Opts,
                 AnalysisResult &Res)
      : M(M), Opts(Opts), Res(Res) {
    for (const auto &F : M.functions())
      Fns[F->name()] = F.get();
    for (const Module::GlobalData &G : M.Globals)
      Globals[G.Name] = {static_cast<int64_t>(G.Addr),
                         int64_t(4) * G.SizeWords};
  }

  void run() {
    for (const auto &F : M.functions())
      if (F->kind() == FnKind::Main || F->kind() == FnKind::Normal)
        scanSeq(F->body(), F->kind() == FnKind::Main);
  }

private:
  const Module &M;
  const DetRaceOptions &Opts;
  AnalysisResult &Res;
  std::map<std::string, const Function *> Fns;
  std::map<std::string, GlobalRange> Globals;
  std::set<unsigned> OrderSensitiveLines;

  static bool containsRecv(const Expr *E) {
    if (!E)
      return false;
    if (E->K == Expr::Kind::RecvResult)
      return true;
    return containsRecv(E->Lhs) || containsRecv(E->Rhs);
  }

  /// Reduction partials must be merged with a commutative+associative
  /// combinator, or the merged value depends on arrival order and stops
  /// being portable across machine sizes. Flags any RecvResult under a
  /// non-commutative operator.
  void scanMergeExpr(const Expr *E, unsigned Line) {
    if (!E)
      return;
    if (E->K == Expr::Kind::Bin) {
      bool Sensitive = false;
      switch (E->Op) {
      case BinOp::Sub:
      case BinOp::Div:
      case BinOp::Rem:
      case BinOp::Shl:
      case BinOp::Shr:
      case BinOp::Sra:
      case BinOp::Slt:
      case BinOp::Sltu:
        Sensitive = containsRecv(E->Lhs) || containsRecv(E->Rhs);
        break;
      default:
        break; // add/mul/and/or/xor merge the same regardless of order
      }
      if (Sensitive && OrderSensitiveLines.insert(Line).second) {
        Res.error(Line, "reduce.pattern.order-sensitive",
                  "reduction partials are merged with a non-commutative "
                  "combinator; the result depends on the members' "
                  "arrival order and is not portable across machine "
                  "sizes — merge with a commutative+associative "
                  "operation (the __reduce_collect sum) or collect into "
                  "per-member slots");
        return;
      }
    }
    scanMergeExpr(E->Lhs, Line);
    scanMergeExpr(E->Rhs, Line);
  }

  void scanMergeStmt(const Stmt *S) {
    scanMergeExpr(S->Value, S->Line);
    scanMergeExpr(S->Base, S->Line);
    scanMergeExpr(S->CmpLhs, S->Line);
    scanMergeExpr(S->CmpRhs, S->Line);
    for (const Expr *A : S->Args)
      scanMergeExpr(A, S->Line);
  }

  void scanSeq(const std::vector<const Stmt *> &List, bool InMain) {
    for (size_t I = 0; I != List.size(); ++I) {
      const Stmt *S = List[I];
      scanMergeStmt(S);
      switch (S->K) {
      case Stmt::Kind::ParallelFor: {
        const Stmt *Collect = nullptr;
        if (I + 1 != List.size() &&
            List[I + 1]->K == Stmt::Kind::ReduceCollect) {
          Collect = List[I + 1];
          ++I;
        }
        analyzeRegion(S, Collect);
        break;
      }
      case Stmt::Kind::ReduceCollect:
        Res.warning(S->Line, "reduce.collect-unpaired",
                    "__reduce_collect does not directly follow a "
                    "parallel region; the p_lwre loop blocks until "
                    "something fills the reduction slot");
        break;
      case Stmt::Kind::ReduceSend:
        Res.error(S->Line, "reduce.send-outside-team",
                  InMain
                      ? "__reduce_send in main: only team members have "
                        "a head to send to"
                      : "__reduce_send outside a thread function");
        break;
      case Stmt::Kind::If:
      case Stmt::Kind::While:
      case Stmt::Kind::DoWhile:
        scanSeq(S->Then, InMain);
        scanSeq(S->Else, InMain);
        break;
      default:
        break;
      }
    }
  }

  void analyzeRegion(const Stmt *S, const Stmt *Collect) {
    unsigned N = S->NumHarts;
    if (N == 0) {
      Res.error(S->Line, "region.zero-team",
                "parallel region '" + S->Callee + "' launches zero harts");
      return;
    }
    if (N > romp::MaxTeamHarts) {
      Res.error(S->Line, "region.team-too-big",
                formatString("team of %u harts exceeds the architectural "
                             "line maximum of %u",
                             N, romp::MaxTeamHarts));
      return;
    }
    if (Opts.MachineHarts && N > Opts.MachineHarts)
      Res.error(S->Line, "region.team-too-big",
                formatString("team of %u harts exceeds the target "
                             "machine's %u harts; the p_fc/p_fn allocator "
                             "would spin forever",
                             N, Opts.MachineHarts));
    if (S->DeclaredHarts && S->DeclaredHarts != N)
      Res.warning(S->Line, "region.num-threads-mismatch",
                  formatString("parallel loop bound %u disagrees with "
                               "omp_set_num_threads(%u); the team size is "
                               "the loop bound",
                               N, S->DeclaredHarts));

    auto It = Fns.find(S->Callee);
    if (It == Fns.end()) {
      Res.error(S->Line, "region.unknown-callee",
                "parallel region launches unknown function '" + S->Callee +
                    "'");
      return;
    }
    const Function *Thread = It->second;
    if (Thread->kind() != FnKind::Thread) {
      Res.error(S->Line, "region.callee-not-thread",
                "parallel region launches '" + S->Callee +
                    "', which is not compiled as a thread function; it "
                    "would end with ret instead of p_ret and break the "
                    "team's in-order commit barrier");
      return;
    }

    RegionAnalyzer RA(Res, N, Fns, Globals);
    RA.run(*Thread, S->DataSymbol);

    if (RA.SawNestedRegion)
      Res.error(RA.NestedRegionLine ? RA.NestedRegionLine : S->Line,
                "region.nested",
                "thread function '" + S->Callee +
                    "' opens a nested parallel region; the runtime "
                    "supports one team at a time");
    if (RA.SawCollect)
      Res.error(RA.CollectLine ? RA.CollectLine : S->Line,
                "reduce.collect-in-thread",
                "'" + S->Callee +
                    "' collects reduction partials inside the team; only "
                    "the team head (after the join) may collect");
    if (RA.SawRawAsm)
      Res.warning(S->Line, "analysis.rawasm",
                  "thread function '" + S->Callee +
                      "' contains raw assembly the analyzer cannot see");

    // Classify every recorded access: affine (exact), banked (imprecise
    // but member-private under the bank geometry), or may. The counts
    // are the region's certificate — the sum is the total number of
    // shared accesses, so nothing is silently skipped.
    RegionCert Cert;
    Cert.Region = S->Callee;
    Cert.Line = S->Line;
    Cert.Team = N;
    for (const Access &A : RA.Accesses) {
      if (A.Exact)
        ++Cert.Affine;
      else if (bankSelfDisjoint(A, N, Opts.GlobalBankSizeLog2))
        ++Cert.Banked;
      else
        ++Cert.May;
    }

    std::vector<char> Conflicting;
    reportRaces(Res, S->Callee, N, RA.Accesses, Opts.GlobalBankSizeLog2,
                Cert, Conflicting);

    // Partial privatization: a reduction partial computed from state
    // other members touch concurrently is ordered by the race, not by
    // the reduction protocol.
    bool Partial = false;
    std::set<unsigned> PartialLines;
    for (size_t I = 0; I != RA.Accesses.size(); ++I) {
      const Access &A = RA.Accesses[I];
      if (!A.InSend || A.IsWrite || !Conflicting[I])
        continue;
      Partial = true;
      if (PartialLines.insert(A.Line).second)
        Res.error(A.Line, "reduce.pattern.partial",
                  formatString(
                      "reduction partial sent at line %u is computed "
                      "from '%s', which other members of '%s' access "
                      "concurrently (partial privatization); privatize "
                      "the accumulator fully before __reduce_send",
                      A.Line,
                      A.Sym.empty() ? "shared memory" : A.Sym.c_str(),
                      S->Callee.c_str()))
            .Sym = A.Sym;
    }

    // Reduction arity: the collect count must equal what the team
    // provably sends (the frontend convention is one send per member,
    // collect count == team size).
    uint64_t TotalMin = 0, TotalMax = 0;
    for (unsigned T = 0; T != N; ++T) {
      TotalMin = satAdd(TotalMin, RA.SendMin[T]);
      TotalMax = satAdd(TotalMax, RA.SendMax[T]);
    }
    if (Collect) {
      uint64_t C = Collect->NumHarts;
      if (TotalMax == 0) {
        Res.error(Collect->Line, "reduce.deadlock",
                  formatString("reduction collects %llu partials but no "
                               "member of '%s' ever sends one; the p_lwre "
                               "loop blocks forever",
                               static_cast<unsigned long long>(C),
                               S->Callee.c_str()));
      } else if (TotalMin == TotalMax && C != TotalMin) {
        Res.error(Collect->Line, "reduce.arity",
                  formatString("reduction collects %llu partials but the "
                               "team of %u sends exactly %llu; the "
                               "mismatch %s",
                               static_cast<unsigned long long>(C), N,
                               static_cast<unsigned long long>(TotalMin),
                               C < TotalMin
                                   ? "leaves slots full and corrupts the "
                                     "next reduction"
                                   : "blocks the head forever"));
      } else if (TotalMin != TotalMax) {
        Res.warning(Collect->Line, "reduce.varying",
                    formatString("members of '%s' send between %llu and "
                                 "%llu partials depending on data; the "
                                 "collect count %llu cannot be validated",
                                 S->Callee.c_str(),
                                 static_cast<unsigned long long>(TotalMin),
                                 static_cast<unsigned long long>(TotalMax),
                                 static_cast<unsigned long long>(
                                     Collect->NumHarts)));
      } else if (!Partial) {
        // The canonical privatize-then-send shape: every member sends
        // exactly once from fully private state and the head collects
        // with the commutative builtin sum (reduce.pattern.certified).
        Cert.ReductionCertified = true;
      }
    } else if (TotalMax > 0) {
      Res.warning(S->Line, "reduce.uncollected",
                  "members of '" + S->Callee +
                      "' send reduction partials that are never "
                      "collected; the values sit in the head's result "
                      "slot and corrupt the next reduction");
    }

    Res.Certs.push_back(std::move(Cert));
  }
};

} // namespace

AnalysisResult analysis::analyzeModule(const Module &M,
                                       const DetRaceOptions &Opts) {
  AnalysisResult Res;
  ModuleAnalyzer MA(M, Opts, Res);
  MA.run();
  return Res;
}
