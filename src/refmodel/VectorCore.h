//===- refmodel/VectorCore.h - Wide vector-core reference model ---------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An analytic timing model standing in for the paper's Xeon Phi 7210
/// measurements (Fig. 21 compares the 64-core LBP against the Phi's best
/// of 1000 runs of the tiled matmul). We do not model Knights Landing
/// microarchitecture; we model the *structure* of the comparison the
/// paper draws:
///
///   * the Phi executes ~2.28x fewer instructions because of its 16-lane
///     int32 vector units (LBP has none),
///   * it sustains ~1.28 IPC per core against a 6-wide issue peak (21%),
///     while LBP sustains 96% of its 1-IPC peak,
///   * netting ~3x fewer cycles on the 64-core tiled run.
///
/// The two calibration constants (instructions per 16-element vector
/// chunk, pipeline efficiency) are fitted to the paper's PAPI
/// measurements (32M instructions, 391K cycles at h = 256) and
/// documented here; everything else is derived. See DESIGN.md for the
/// substitution rationale.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_REFMODEL_VECTORCORE_H
#define LBP_REFMODEL_VECTORCORE_H

#include <cstdint>

namespace lbp {
namespace refmodel {

/// Machine parameters of the reference manycore (Xeon Phi 7210-like).
struct VectorCoreConfig {
  unsigned Cores = 64;          ///< Tiles used for the 256-thread run.
  unsigned ThreadsPerCore = 4;
  unsigned VectorLanes = 16;    ///< int32 lanes per AVX-512 operation.
  unsigned IssueWidth = 6;      ///< 2 int + 2 mem + 2 vector per cycle.

  /// Instructions retired per 16-MAC vector chunk of the tiled kernel
  /// (vector load, broadcast, FMA, address updates, loop control and
  /// the imperfectly vectorized remainder). Fitted to the paper's 32M
  /// retired instructions at h = 256.
  double InstrPerVectorChunk = 56.5;

  /// Instructions per word moved by the tile-copy phases.
  double InstrPerCopyWord = 3.0;

  /// Sustained fraction of the issue-width peak (the paper reports
  /// 1.28 IPC/core = 21% of the 6-wide peak).
  double PipelineEfficiency = 0.213;
};

/// Predicted execution of the tiled matmul (X: h x h/2, Y: h/2 x h).
struct VectorCoreResult {
  uint64_t Instructions;
  uint64_t Cycles;
  double Ipc;        ///< Whole-machine IPC.
  double IpcPerCore;
};

/// Evaluates the model for matrix dimension parameter \p H (the paper's
/// h = number of LBP harts; the Phi runs the same 256-thread job).
VectorCoreResult evaluateTiledMatMul(const VectorCoreConfig &Config,
                                     unsigned H);

} // namespace refmodel
} // namespace lbp

#endif // LBP_REFMODEL_VECTORCORE_H
