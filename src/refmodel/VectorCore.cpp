//===- refmodel/VectorCore.cpp - Wide vector-core reference model --------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "refmodel/VectorCore.h"

#include <cmath>

using namespace lbp;
using namespace lbp::refmodel;

VectorCoreResult
refmodel::evaluateTiledMatMul(const VectorCoreConfig &Config, unsigned H) {
  // Work decomposition of the tiled kernel (same algorithm the LBP
  // workload runs): h^3/2 multiply-accumulates plus the tile traffic.
  double Macs = 0.5 * std::pow(static_cast<double>(H), 3);
  double Chunks = Macs / Config.VectorLanes;

  // Tile copies: each of the h threads copies an X and a Y tile (h/2
  // words each) per k-tile pass, sqrt(h) passes, plus the h^2-word Z
  // write-back.
  double Sqrt = std::sqrt(static_cast<double>(H));
  double CopyWords = static_cast<double>(H) * Sqrt * H // h * sqrt(h) * h
                     + static_cast<double>(H) * H;     // Z write-back

  double Instr = Chunks * Config.InstrPerVectorChunk +
                 CopyWords * Config.InstrPerCopyWord;

  double PeakIpc = static_cast<double>(Config.IssueWidth) * Config.Cores *
                   Config.PipelineEfficiency;
  double Cycles = Instr / PeakIpc;

  VectorCoreResult R;
  R.Instructions = static_cast<uint64_t>(Instr);
  R.Cycles = static_cast<uint64_t>(Cycles);
  R.Ipc = Instr / Cycles;
  R.IpcPerCore = R.Ipc / Config.Cores;
  return R;
}
