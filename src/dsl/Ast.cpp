//===- dsl/Ast.cpp - Kernel-language abstract syntax ---------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "dsl/Ast.h"
#include "support/Error.h"

using namespace lbp;
using namespace lbp::dsl;

const Local *Function::param(const std::string &Name) {
  if (!Body.empty() || Params.size() != Locals.size())
    reportFatalError("parameters of '" + this->Name +
                     "' must be declared first");
  if (Params.size() == 4)
    reportFatalError("function '" + this->Name +
                     "' has more than four parameters");
  Locals.push_back(std::make_unique<Local>(
      Local{Name, static_cast<unsigned>(Locals.size())}));
  Params.push_back(Locals.back().get());
  return Locals.back().get();
}

const Local *Function::local(const std::string &Name) {
  Locals.push_back(std::make_unique<Local>(
      Local{Name, static_cast<unsigned>(Locals.size())}));
  return Locals.back().get();
}
