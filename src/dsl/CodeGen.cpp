//===- dsl/CodeGen.cpp - Kernel-language code generation ------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//

#include "dsl/CodeGen.h"
#include "isa/Reg.h"
#include "romp/Runtime.h"
#include "support/Compiler.h"
#include "support/Error.h"

#include <algorithm>
#include <functional>

using namespace lbp;
using namespace lbp::dsl;
using namespace lbp::isa;

namespace {

/// A value produced by expression evaluation: a register plus whether
/// the evaluator owns (and must release) it.
struct Val {
  uint8_t Reg;
  bool Owned;
};

const char *rn(uint8_t Reg) { return regName(Reg).data(); }

/// Walks every statement in a tree.
void forEachStmt(const std::vector<const Stmt *> &Body,
                 const std::function<void(const Stmt *)> &Fn) {
  for (const Stmt *S : Body) {
    Fn(S);
    forEachStmt(S->Then, Fn);
    forEachStmt(S->Else, Fn);
  }
}

class FnCodeGen {
public:
  FnCodeGen(romp::AsmText &Out, const Function &F) : Out(Out), F(F) {}
  void run();

private:
  romp::AsmText &Out;
  const Function &F;

  static constexpr uint8_t Scratch[4] = {RegT1, RegT2, RegT3, 29 /*t4*/};
  bool ScratchBusy[4] = {false, false, false, false};

  std::vector<uint8_t> LocalReg; // local index -> register
  std::vector<uint8_t> SavedS;   // callee-saved registers to spill
  bool HasCalls = false;
  bool SaveRa = false;
  std::string EpilogueLabel;
  /// Innermost-first (continue-label, break-label) pairs.
  std::vector<std::pair<std::string, std::string>> LoopStack;
  /// The function's final top-level statement: a Return here falls
  /// through to the epilogue instead of jumping to it.
  const Stmt *LastTopLevel = nullptr;

  void allocateRegisters();
  void emitPrologue();
  void emitEpilogue();
  void genBody(const std::vector<const Stmt *> &Body);
  void genStmt(const Stmt *S);

  Val eval(const Expr *E, int FixedDest = -1);
  void release(const Val &V) {
    if (V.Owned)
      freeScratch(V.Reg);
  }
  uint8_t allocScratch();
  void freeScratch(uint8_t Reg);

  uint8_t regOf(const Local *L) const {
    assert(L && L->Index < LocalReg.size() && "unknown local");
    return LocalReg[L->Index];
  }

  void branchOn(CmpOp Cmp, const Expr *L, const Expr *R,
                const std::string &Target, bool WhenTrue);
};

uint8_t FnCodeGen::allocScratch() {
  for (unsigned I = 0; I != 4; ++I) {
    if (!ScratchBusy[I]) {
      ScratchBusy[I] = true;
      return Scratch[I];
    }
  }
  reportFatalError("expression too deep in function '" + F.name() +
                   "' (out of scratch registers)");
}

void FnCodeGen::freeScratch(uint8_t Reg) {
  for (unsigned I = 0; I != 4; ++I) {
    if (Scratch[I] == Reg) {
      assert(ScratchBusy[I] && "double release of a scratch register");
      ScratchBusy[I] = false;
      return;
    }
  }
  LBP_UNREACHABLE("released register is not a scratch");
}

void FnCodeGen::allocateRegisters() {
  forEachStmt(F.body(), [&](const Stmt *S) {
    if (S->K == Stmt::Kind::Call || S->K == Stmt::Kind::ParallelFor)
      HasCalls = true;
  });

  unsigned NumParams = static_cast<unsigned>(F.params().size());
  unsigned NumLocals = F.numLocals();
  LocalReg.assign(NumLocals, 0);

  std::vector<uint8_t> Pool;
  if (HasCalls) {
    // Calls clobber a/t registers: everything lives in s-registers.
    for (uint8_t R = RegS0; R <= RegS1; ++R)
      Pool.push_back(R);
    for (uint8_t R = RegS2; R <= RegS11; ++R)
      Pool.push_back(R);
  } else {
    // Leaf function: params stay in their argument registers, other
    // locals prefer caller-saved registers, s-registers (which force a
    // spill) come last.
    for (unsigned P = 0; P != NumParams; ++P)
      LocalReg[P] = static_cast<uint8_t>(RegA0 + P);
    for (uint8_t R = static_cast<uint8_t>(RegA0 + NumParams); R <= RegA7;
         ++R)
      Pool.push_back(R);
    Pool.push_back(RegT5);
    for (uint8_t R = RegS0; R <= RegS1; ++R)
      Pool.push_back(R);
    for (uint8_t R = RegS2; R <= RegS11; ++R)
      Pool.push_back(R);
  }

  unsigned Next = 0;
  unsigned First = HasCalls ? 0 : NumParams;
  for (unsigned L = First; L != NumLocals; ++L) {
    if (Next == Pool.size())
      reportFatalError("function '" + F.name() +
                       "' needs more registers than the pool provides");
    LocalReg[L] = Pool[Next++];
  }

  // Which callee-saved registers does the allocation touch?
  for (uint8_t R : LocalReg)
    if ((R >= RegS0 && R <= RegS1) || (R >= RegS2 && R <= RegS11))
      SavedS.push_back(R);
  std::sort(SavedS.begin(), SavedS.end());
  SavedS.erase(std::unique(SavedS.begin(), SavedS.end()), SavedS.end());

  SaveRa = HasCalls && F.kind() != FnKind::Main;
}

void FnCodeGen::emitPrologue() {
  Out.blank();
  Out.label(F.name() == "main" ? "main" : F.name());

  if (F.kind() == FnKind::Main) {
    // The romp convention: main saves the boot ra/t0 (0 / -1) and exits
    // through p_ret after restoring them.
    Out.line("addi sp, sp, -8");
    Out.line("sw ra, 0(sp)");
    Out.line("sw t0, 4(sp)");
  }

  unsigned FrameWords =
      static_cast<unsigned>(SavedS.size()) + (SaveRa ? 1 : 0);
  if (FrameWords != 0) {
    Out.line("addi sp, sp, -%u", 4 * FrameWords);
    unsigned Off = 0;
    if (SaveRa)
      Out.line("sw ra, %u(sp)", 4 * Off++);
    for (uint8_t R : SavedS)
      Out.line("sw %s, %u(sp)", rn(R), 4 * Off++);
  }

  // Copy parameters into their allocated homes.
  for (unsigned P = 0; P != F.params().size(); ++P) {
    uint8_t Home = LocalReg[P];
    uint8_t Arg = static_cast<uint8_t>(RegA0 + P);
    if (Home != Arg)
      Out.line("mv %s, %s", rn(Home), rn(Arg));
  }
}

void FnCodeGen::emitEpilogue() {
  Out.label(EpilogueLabel);
  unsigned FrameWords =
      static_cast<unsigned>(SavedS.size()) + (SaveRa ? 1 : 0);
  if (FrameWords != 0) {
    unsigned Off = 0;
    if (SaveRa)
      Out.line("lw ra, %u(sp)", 4 * Off++);
    for (uint8_t R : SavedS)
      Out.line("lw %s, %u(sp)", rn(R), 4 * Off++);
    Out.line("addi sp, sp, %u", 4 * FrameWords);
  }

  switch (F.kind()) {
  case FnKind::Normal:
    Out.line("ret");
    break;
  case FnKind::Thread:
    Out.line("p_ret");
    break;
  case FnKind::Main:
    Out.line("lw ra, 0(sp)");
    Out.line("lw t0, 4(sp)");
    Out.line("addi sp, sp, 8");
    Out.line("p_ret");
    break;
  }
}

void FnCodeGen::run() {
  allocateRegisters();
  EpilogueLabel = Out.freshLabel("epi");
  if (!F.body().empty())
    LastTopLevel = F.body().back();
  emitPrologue();
  genBody(F.body());
  emitEpilogue();
}

//===----------------------------------------------------------------------===//
// Expressions
//===----------------------------------------------------------------------===//

static bool fitsImm(int64_t V) { return V >= -2048 && V <= 2047; }

/// Immediate-form mnemonic for ops that have one, else nullptr.
static const char *immMnemonic(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "addi";
  case BinOp::And:
    return "andi";
  case BinOp::Or:
    return "ori";
  case BinOp::Xor:
    return "xori";
  case BinOp::Shl:
    return "slli";
  case BinOp::Shr:
    return "srli";
  case BinOp::Sra:
    return "srai";
  case BinOp::Slt:
    return "slti";
  case BinOp::Sltu:
    return "sltiu";
  default:
    return nullptr;
  }
}

static const char *regMnemonic(BinOp Op) {
  switch (Op) {
  case BinOp::Add:
    return "add";
  case BinOp::Sub:
    return "sub";
  case BinOp::Mul:
    return "mul";
  case BinOp::Div:
    return "div";
  case BinOp::Rem:
    return "rem";
  case BinOp::And:
    return "and";
  case BinOp::Or:
    return "or";
  case BinOp::Xor:
    return "xor";
  case BinOp::Shl:
    return "sll";
  case BinOp::Shr:
    return "srl";
  case BinOp::Sra:
    return "sra";
  case BinOp::Slt:
    return "slt";
  case BinOp::Sltu:
    return "sltu";
  }
  LBP_UNREACHABLE("unknown binary operator");
}

Val FnCodeGen::eval(const Expr *E, int FixedDest) {
  switch (E->K) {
  case Expr::Kind::Const: {
    if (E->IVal == 0 && FixedDest < 0)
      return {RegZero, false};
    uint8_t Dest = FixedDest >= 0 ? static_cast<uint8_t>(FixedDest)
                                  : allocScratch();
    Out.line("li %s, %d", rn(Dest), E->IVal);
    return {Dest, FixedDest < 0};
  }

  case Expr::Kind::LocalRef: {
    uint8_t Home = regOf(E->L);
    if (FixedDest >= 0 && FixedDest != Home) {
      Out.line("mv %s, %s", rn(static_cast<uint8_t>(FixedDest)), rn(Home));
      return {static_cast<uint8_t>(FixedDest), false};
    }
    return {Home, false};
  }

  case Expr::Kind::AddrOf: {
    uint8_t Dest = FixedDest >= 0 ? static_cast<uint8_t>(FixedDest)
                                  : allocScratch();
    if (E->IVal == 0)
      Out.line("la %s, %s", rn(Dest), E->Symbol.c_str());
    else
      Out.line("la %s, %s+%d", rn(Dest), E->Symbol.c_str(), E->IVal);
    return {Dest, FixedDest < 0};
  }

  case Expr::Kind::Load: {
    Val Base = eval(E->Lhs);
    uint8_t Dest = FixedDest >= 0 ? static_cast<uint8_t>(FixedDest)
                                  : (Base.Owned ? Base.Reg
                                                : allocScratch());
    const char *M = E->Width == 4   ? "lw"
                    : E->Width == 2 ? (E->SignExtend ? "lh" : "lhu")
                                    : (E->SignExtend ? "lb" : "lbu");
    Out.line("%s %s, %d(%s)", M, rn(Dest), E->IVal, rn(Base.Reg));
    if (Base.Owned && Base.Reg != Dest)
      freeScratch(Base.Reg);
    return {Dest, FixedDest < 0 && (Base.Owned ? Base.Reg == Dest : true)};
  }

  case Expr::Kind::HartId: {
    uint8_t Dest = FixedDest >= 0 ? static_cast<uint8_t>(FixedDest)
                                  : allocScratch();
    Out.line("p_set %s, zero", rn(Dest));
    Out.line("slli %s, %s, 1", rn(Dest), rn(Dest));
    Out.line("srli %s, %s, 17", rn(Dest), rn(Dest));
    return {Dest, FixedDest < 0};
  }

  case Expr::Kind::CycleCount:
  case Expr::Kind::InstretCount: {
    uint8_t Dest = FixedDest >= 0 ? static_cast<uint8_t>(FixedDest)
                                  : allocScratch();
    Out.line("%s %s",
             E->K == Expr::Kind::CycleCount ? "rdcycle" : "rdinstret",
             rn(Dest));
    return {Dest, FixedDest < 0};
  }

  case Expr::Kind::RecvResult: {
    uint8_t Dest = FixedDest >= 0 ? static_cast<uint8_t>(FixedDest)
                                  : allocScratch();
    Out.line("p_lwre %s, %d", rn(Dest), E->IVal);
    return {Dest, FixedDest < 0};
  }

  case Expr::Kind::Bin: {
    // Canonicalize constants to the right for commutative operators.
    const Expr *L = E->Lhs;
    const Expr *R = E->Rhs;
    bool Commutes = E->Op == BinOp::Add || E->Op == BinOp::And ||
                    E->Op == BinOp::Or || E->Op == BinOp::Xor ||
                    E->Op == BinOp::Mul;
    if (Commutes && L->K == Expr::Kind::Const &&
        R->K != Expr::Kind::Const)
      std::swap(L, R);

    // Immediate form when the right side is a fitting constant.
    if (R->K == Expr::Kind::Const) {
      int64_t C = R->IVal;
      BinOp Op = E->Op;
      if (Op == BinOp::Sub && fitsImm(-C)) {
        Op = BinOp::Add;
        C = -C;
      }
      const char *M = immMnemonic(Op);
      bool ShiftOp = Op == BinOp::Shl || Op == BinOp::Shr ||
                     Op == BinOp::Sra;
      bool Fits = ShiftOp ? (C >= 0 && C < 32) : fitsImm(C);
      if (M && Fits) {
        Val LV = eval(L);
        uint8_t Dest = FixedDest >= 0 ? static_cast<uint8_t>(FixedDest)
                                      : (LV.Owned ? LV.Reg
                                                  : allocScratch());
        Out.line("%s %s, %s, %d", M, rn(Dest), rn(LV.Reg),
                 static_cast<int32_t>(C));
        if (LV.Owned && LV.Reg != Dest)
          freeScratch(LV.Reg);
        return {Dest,
                FixedDest < 0 && (LV.Owned ? LV.Reg == Dest : true)};
      }
    }

    Val LV = eval(L);
    Val RV = eval(R);
    uint8_t Dest;
    if (FixedDest >= 0)
      Dest = static_cast<uint8_t>(FixedDest);
    else if (LV.Owned)
      Dest = LV.Reg;
    else if (RV.Owned)
      Dest = RV.Reg;
    else
      Dest = allocScratch();
    Out.line("%s %s, %s, %s", regMnemonic(E->Op), rn(Dest), rn(LV.Reg),
             rn(RV.Reg));
    bool Owned = FixedDest < 0 &&
                 ((LV.Owned && LV.Reg == Dest) ||
                  (RV.Owned && RV.Reg == Dest) ||
                  (!LV.Owned && !RV.Owned));
    if (LV.Owned && LV.Reg != Dest)
      freeScratch(LV.Reg);
    if (RV.Owned && RV.Reg != Dest)
      freeScratch(RV.Reg);
    return {Dest, Owned};
  }
  }
  LBP_UNREACHABLE("unknown expression kind");
}

//===----------------------------------------------------------------------===//
// Control flow
//===----------------------------------------------------------------------===//

/// Branch mnemonic and operand order for "branch when Cmp holds".
static void cmpBranch(CmpOp Cmp, const char *&Mnemonic, bool &Swap) {
  Swap = false;
  switch (Cmp) {
  case CmpOp::Eq:
    Mnemonic = "beq";
    return;
  case CmpOp::Ne:
    Mnemonic = "bne";
    return;
  case CmpOp::Lt:
    Mnemonic = "blt";
    return;
  case CmpOp::Ge:
    Mnemonic = "bge";
    return;
  case CmpOp::Ltu:
    Mnemonic = "bltu";
    return;
  case CmpOp::Geu:
    Mnemonic = "bgeu";
    return;
  case CmpOp::Gt:
    Mnemonic = "blt";
    Swap = true;
    return;
  case CmpOp::Le:
    Mnemonic = "bge";
    Swap = true;
    return;
  }
  LBP_UNREACHABLE("unknown comparison");
}

static CmpOp negateCmp(CmpOp Cmp) {
  switch (Cmp) {
  case CmpOp::Eq:
    return CmpOp::Ne;
  case CmpOp::Ne:
    return CmpOp::Eq;
  case CmpOp::Lt:
    return CmpOp::Ge;
  case CmpOp::Ge:
    return CmpOp::Lt;
  case CmpOp::Ltu:
    return CmpOp::Geu;
  case CmpOp::Geu:
    return CmpOp::Ltu;
  case CmpOp::Gt:
    return CmpOp::Le;
  case CmpOp::Le:
    return CmpOp::Gt;
  }
  LBP_UNREACHABLE("unknown comparison");
}

void FnCodeGen::branchOn(CmpOp Cmp, const Expr *L, const Expr *R,
                         const std::string &Target, bool WhenTrue) {
  if (!WhenTrue)
    Cmp = negateCmp(Cmp);
  const char *M;
  bool Swap;
  cmpBranch(Cmp, M, Swap);
  Val LV = eval(L);
  Val RV = eval(R);
  const char *A = rn(Swap ? RV.Reg : LV.Reg);
  const char *B = rn(Swap ? LV.Reg : RV.Reg);
  Out.line("%s %s, %s, %s", M, A, B, Target.c_str());
  release(LV);
  release(RV);
}

//===----------------------------------------------------------------------===//
// Statements
//===----------------------------------------------------------------------===//

void FnCodeGen::genBody(const std::vector<const Stmt *> &Body) {
  for (const Stmt *S : Body)
    genStmt(S);
}

void FnCodeGen::genStmt(const Stmt *S) {
  switch (S->K) {
  case Stmt::Kind::Assign: {
    Val V = eval(S->Value, regOf(S->Dst));
    release(V);
    return;
  }

  case Stmt::Kind::Store: {
    Val V = eval(S->Value);
    Val B = eval(S->Base);
    const char *M = S->Width == 4 ? "sw" : S->Width == 2 ? "sh" : "sb";
    Out.line("%s %s, %d(%s)", M, rn(V.Reg), S->Offset, rn(B.Reg));
    release(V);
    release(B);
    return;
  }

  case Stmt::Kind::If: {
    std::string EndL = Out.freshLabel("endif");
    std::string ElseL = S->Else.empty() ? EndL : Out.freshLabel("else");
    branchOn(S->Cmp, S->CmpLhs, S->CmpRhs, ElseL, /*WhenTrue=*/false);
    genBody(S->Then);
    if (!S->Else.empty()) {
      Out.line("j %s", EndL.c_str());
      Out.label(ElseL);
      genBody(S->Else);
    }
    Out.label(EndL);
    return;
  }

  case Stmt::Kind::While: {
    std::string TestL = Out.freshLabel("wt");
    std::string BodyL = Out.freshLabel("wb");
    std::string StepL = S->Else.empty() ? TestL : Out.freshLabel("ws");
    std::string EndL = Out.freshLabel("we");
    Out.line("j %s", TestL.c_str());
    Out.label(BodyL);
    LoopStack.emplace_back(StepL, EndL);
    genBody(S->Then);
    LoopStack.pop_back();
    if (!S->Else.empty()) {
      Out.label(StepL);
      genBody(S->Else);
    }
    Out.label(TestL);
    branchOn(S->Cmp, S->CmpLhs, S->CmpRhs, BodyL, /*WhenTrue=*/true);
    Out.label(EndL);
    return;
  }

  case Stmt::Kind::DoWhile: {
    std::string BodyL = Out.freshLabel("dw");
    std::string StepL = Out.freshLabel("ds");
    std::string EndL = Out.freshLabel("de");
    Out.label(BodyL);
    LoopStack.emplace_back(StepL, EndL);
    genBody(S->Then);
    LoopStack.pop_back();
    Out.label(StepL);
    genBody(S->Else);
    branchOn(S->Cmp, S->CmpLhs, S->CmpRhs, BodyL, /*WhenTrue=*/true);
    Out.label(EndL);
    return;
  }

  case Stmt::Kind::Break:
  case Stmt::Kind::Continue: {
    if (LoopStack.empty())
      reportFatalError("break/continue outside a loop in function '" +
                       F.name() + "'");
    const auto &[StepL, EndL] = LoopStack.back();
    Out.line("j %s",
             (S->K == Stmt::Kind::Break ? EndL : StepL).c_str());
    return;
  }

  case Stmt::Kind::Call: {
    for (unsigned A = 0; A != S->Args.size(); ++A) {
      Val V = eval(S->Args[A], RegA0 + static_cast<int>(A));
      release(V);
    }
    Out.line("jal %s", S->Callee.c_str());
    if (S->Dst)
      Out.line("mv %s, a0", rn(regOf(S->Dst)));
    return;
  }

  case Stmt::Kind::Return: {
    if (S->Value) {
      Val V = eval(S->Value, RegA0);
      release(V);
    }
    if (S != LastTopLevel)
      Out.line("j %s", EpilogueLabel.c_str());
    return;
  }

  case Stmt::Kind::ParallelFor: {
    Out.comment("omp parallel for: %u harts of %s", S->NumHarts,
                S->Callee.c_str());
    romp::emitParallelCall(
        Out, S->Callee, S->NumHarts,
        S->DataSymbol.empty() ? std::string("0") : S->DataSymbol);
    return;
  }

  case Stmt::Kind::ReduceSend: {
    Val V = eval(S->Value);
    Out.line("p_swre %s, tp, %u", rn(V.Reg), romp::ReductionSlot);
    release(V);
    return;
  }

  case Stmt::Kind::ReduceCollect:
    romp::emitReduceCollect(Out, rn(regOf(S->Dst)), S->NumHarts);
    return;

  case Stmt::Kind::SendResult: {
    Val V = eval(S->Value);
    Val T = eval(S->Base);
    Out.line("p_swre %s, %s, %d", rn(V.Reg), rn(T.Reg), S->Offset);
    release(V);
    release(T);
    return;
  }

  case Stmt::Kind::Syncm:
    Out.line("p_syncm");
    return;

  case Stmt::Kind::RawAsm:
    Out.line("%s", S->Text.c_str());
    return;
  }
  LBP_UNREACHABLE("unknown statement kind");
}

} // namespace

//===----------------------------------------------------------------------===//
// Module compilation
//===----------------------------------------------------------------------===//

std::string dsl::compileModule(const Module &M) {
  romp::AsmText Out;
  Out.comment("generated by the LBP kernel compiler");
  Out.line(".text");

  bool HasMain = false;
  for (const auto &F : M.functions()) {
    if (F->kind() == FnKind::Main)
      HasMain = true;
    FnCodeGen(Out, *F).run();
  }
  if (!HasMain)
    reportFatalError("module has no main function");

  romp::emitParallelStart(Out);

  for (const Module::GlobalData &G : M.Globals) {
    Out.blank();
    Out.line(".data 0x%x", G.Addr);
    Out.label(G.Name);
    if (!G.Init.empty()) {
      for (uint32_t W : G.Init)
        Out.line(".word %d", static_cast<int32_t>(W));
    } else if (G.Filled) {
      Out.line(".fill %u, %d", G.SizeWords, G.FillValue);
    } else {
      Out.line(".space %u", 4 * G.SizeWords);
    }
  }

  return Out.str();
}
