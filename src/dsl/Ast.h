//===- dsl/Ast.h - Kernel-language abstract syntax ----------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The AST of the kernel language the workloads are written in: a small,
/// explicitly register-resident C subset with Deterministic OpenMP
/// parallel constructs. Programs are built through the Module/Function
/// builder API and compiled by dsl::compileModule (CodeGen.h) into LBP
/// assembly (RV32IM + X_PAR through the romp runtime).
///
/// Design notes:
///  * every local variable lives in a register for its whole lifetime
///    (the compiler rejects functions with more locals than the pool);
///  * loops are bottom-tested (`while` costs one branch per iteration),
///    which is what gives the paper's exact 7-instruction matmul inner
///    loop;
///  * the thread-function ABI matches romp::emitParallelStart:
///    a0 = team index, a1 = data pointer, a2 = team size.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_DSL_AST_H
#define LBP_DSL_AST_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

namespace lbp {
namespace dsl {

class Function;
class Module;

/// A named register-resident variable.
struct Local {
  std::string Name;
  unsigned Index; ///< Ordinal within its function.
};

/// Binary operators on 32-bit values.
enum class BinOp : uint8_t {
  Add,
  Sub,
  Mul,
  Div,  ///< Signed.
  Rem,  ///< Signed.
  And,
  Or,
  Xor,
  Shl,
  Shr, ///< Logical right shift.
  Sra, ///< Arithmetic right shift.
  Slt, ///< Signed set-less-than (0/1).
  Sltu,
};

/// Comparison operators for control flow.
enum class CmpOp : uint8_t { Eq, Ne, Lt, Ge, Ltu, Geu, Gt, Le };

/// Expression node. Nodes are arena-owned by the Module; treat pointers
/// as non-owning references.
struct Expr {
  enum class Kind : uint8_t {
    Const,   ///< 32-bit literal.
    LocalRef,///< Value of a local.
    AddrOf,  ///< Address of a module global (+ constant addend).
    Load,    ///< *(base + offset), 1/2/4 bytes.
    Bin,     ///< Binary operation.
    HartId,  ///< The executing hart's global id (via p_set).
    CycleCount,   ///< rdcycle: the machine's current cycle.
    InstretCount, ///< rdinstret: instructions retired by this hart.
    RecvResult, ///< Blocking p_lwre from the hart's result slot IVal.
  } K;

  int32_t IVal = 0;            // Const value / Load offset / AddrOf addend
  const Local *L = nullptr;    // LocalRef
  std::string Symbol;          // AddrOf
  const Expr *Lhs = nullptr;   // Bin / Load base
  const Expr *Rhs = nullptr;   // Bin
  BinOp Op = BinOp::Add;       // Bin
  uint8_t Width = 4;           // Load
  bool SignExtend = true;      // Load (for widths < 4)
};

/// Statement node (arena-owned by the Module).
struct Stmt {
  enum class Kind : uint8_t {
    Assign,        ///< local = expr
    Store,         ///< *(base + offset) = expr
    If,            ///< if (cmp) then [else]
    While,         ///< bottom-tested while (cmp)
    DoWhile,       ///< body; while (cmp) — no entry test
    Call,          ///< [local =] fn(args...)
    Return,        ///< return [expr]
    ParallelFor,   ///< omp parallel for: launch a team (main only)
    ReduceSend,    ///< send a partial to the team head (threads only)
    ReduceCollect, ///< local = local + sum of N member partials (main)
    SendResult,    ///< p_swre Value to hart Base's result slot Offset
    Break,         ///< exit the innermost loop
    Continue,      ///< next iteration (runs the loop's step first)
    Syncm,         ///< p_syncm
    RawAsm,        ///< escape hatch: verbatim assembly lines
  } K;

  // Assign / ReduceSend / Return / Store value.
  const Local *Dst = nullptr;
  const Expr *Value = nullptr;

  // Store.
  const Expr *Base = nullptr;
  int32_t Offset = 0;
  uint8_t Width = 4;

  // If / While / DoWhile.
  CmpOp Cmp = CmpOp::Eq;
  const Expr *CmpLhs = nullptr;
  const Expr *CmpRhs = nullptr;
  std::vector<const Stmt *> Then; // also loop/Call-arg-free bodies
  std::vector<const Stmt *> Else; // loops: the step (continue target)

  // Call / ParallelFor.
  std::string Callee;
  std::vector<const Expr *> Args;
  unsigned NumHarts = 0;       // ParallelFor / ReduceCollect count
  std::string DataSymbol;      // ParallelFor ("" = null pointer)

  // RawAsm.
  std::string Text;

  /// Source line the statement came from (0 = synthesized / unknown).
  /// Frontends that build the AST from text set it so analyses can emit
  /// line-accurate diagnostics; the builder API leaves it at 0.
  unsigned Line = 0;

  /// ParallelFor only: team size the source declared through
  /// omp_set_num_threads (0 = never declared). The determinism analyzer
  /// compares it against NumHarts.
  unsigned DeclaredHarts = 0;
};

/// How a function terminates / is invoked.
enum class FnKind : uint8_t {
  Normal, ///< Standard call/ret function.
  Thread, ///< Team member: ends with p_ret (Deterministic OpenMP ABI).
  Main,   ///< Program entry: wrapped in the romp prologue/epilogue.
};

/// A function under construction.
class Function {
  friend class Module;
  friend class CodeGenTester;

  Module *Parent;
  std::string Name;
  FnKind Kind;
  std::vector<std::unique_ptr<Local>> Locals;
  std::vector<const Local *> Params;
  std::vector<const Stmt *> Body;

  Function(Module *Parent, std::string Name, FnKind Kind)
      : Parent(Parent), Name(std::move(Name)), Kind(Kind) {}

public:
  /// Declares a parameter (parameters are locals bound to a0..a3 on
  /// entry; declare them before any plain local, at most four).
  const Local *param(const std::string &Name);

  /// Declares a register-resident local variable.
  const Local *local(const std::string &Name);

  /// Appends a statement to the function body.
  void append(const Stmt *S) { Body.push_back(S); }

  const std::string &name() const { return Name; }
  FnKind kind() const { return Kind; }
  const std::vector<const Local *> &params() const { return Params; }
  const std::vector<const Stmt *> &body() const { return Body; }
  unsigned numLocals() const {
    return static_cast<unsigned>(Locals.size());
  }
};

/// A module: globals with explicit placement plus functions. Owns every
/// AST node created through its factory methods.
class Module {
  friend class Function;

  std::vector<std::unique_ptr<Expr>> Exprs;
  std::vector<std::unique_ptr<Stmt>> Stmts;
  std::vector<std::unique_ptr<Function>> Functions;

  Expr *newExpr(Expr::Kind K) {
    Exprs.push_back(std::make_unique<Expr>());
    Exprs.back()->K = K;
    return Exprs.back().get();
  }
  Stmt *newStmt(Stmt::Kind K) {
    Stmts.push_back(std::make_unique<Stmt>());
    Stmts.back()->K = K;
    return Stmts.back().get();
  }

public:
  /// One placed global data object.
  struct GlobalData {
    std::string Name;
    uint32_t Addr;                ///< Absolute address (global region).
    uint32_t SizeWords;           ///< Zero-filled size when Init empty.
    std::vector<uint32_t> Init;   ///< Explicit words (optional).
    int32_t FillValue = 0;        ///< Used when Init is empty.
    bool Filled = false;          ///< Emit .fill instead of .space.
  };
  std::vector<GlobalData> Globals;

  // -- Functions -------------------------------------------------------
  Function *function(const std::string &Name,
                     FnKind Kind = FnKind::Normal) {
    Functions.push_back(
        std::unique_ptr<Function>(new Function(this, Name, Kind)));
    return Functions.back().get();
  }
  const std::vector<std::unique_ptr<Function>> &functions() const {
    return Functions;
  }

  // -- Globals ---------------------------------------------------------
  /// A zero-initialized global of \p SizeWords words at \p Addr.
  void global(const std::string &Name, uint32_t Addr, uint32_t SizeWords) {
    Globals.push_back({Name, Addr, SizeWords, {}, 0, false});
  }
  /// A global of \p SizeWords words all holding \p Fill.
  void globalFilled(const std::string &Name, uint32_t Addr,
                    uint32_t SizeWords, int32_t Fill) {
    Globals.push_back({Name, Addr, SizeWords, {}, Fill, true});
  }
  /// A global with explicit initial words.
  void globalData(const std::string &Name, uint32_t Addr,
                  std::vector<uint32_t> Words) {
    uint32_t Size = static_cast<uint32_t>(Words.size());
    Globals.push_back({Name, Addr, Size, std::move(Words), 0, false});
  }

  // -- Expression factories ---------------------------------------------
  const Expr *c(int32_t V) {
    Expr *E = newExpr(Expr::Kind::Const);
    E->IVal = V;
    return E;
  }
  const Expr *v(const Local *L) {
    Expr *E = newExpr(Expr::Kind::LocalRef);
    E->L = L;
    return E;
  }
  const Expr *addrOf(const std::string &Symbol, int32_t Addend = 0) {
    Expr *E = newExpr(Expr::Kind::AddrOf);
    E->Symbol = Symbol;
    E->IVal = Addend;
    return E;
  }
  const Expr *load(const Expr *Base, int32_t Offset = 0,
                   uint8_t Width = 4, bool SignExtend = true) {
    Expr *E = newExpr(Expr::Kind::Load);
    E->Lhs = Base;
    E->IVal = Offset;
    E->Width = Width;
    E->SignExtend = SignExtend;
    return E;
  }
  const Expr *bin(BinOp Op, const Expr *L, const Expr *R) {
    // Fold constant operands at build time (division by zero keeps its
    // runtime RISC-V semantics and is not folded).
    if (L->K == Expr::Kind::Const && R->K == Expr::Kind::Const) {
      int64_t A = L->IVal, B = R->IVal;
      bool Folded = true;
      int64_t V = 0;
      switch (Op) {
      case BinOp::Add:
        V = A + B;
        break;
      case BinOp::Sub:
        V = A - B;
        break;
      case BinOp::Mul:
        V = static_cast<int32_t>(A) * static_cast<int32_t>(B);
        break;
      case BinOp::And:
        V = A & B;
        break;
      case BinOp::Or:
        V = A | B;
        break;
      case BinOp::Xor:
        V = A ^ B;
        break;
      case BinOp::Shl:
        V = static_cast<int32_t>(static_cast<uint32_t>(A) << (B & 31));
        break;
      case BinOp::Shr:
        V = static_cast<int32_t>(static_cast<uint32_t>(A) >> (B & 31));
        break;
      case BinOp::Sra:
        V = static_cast<int32_t>(A) >> (B & 31);
        break;
      case BinOp::Slt:
        V = static_cast<int32_t>(A) < static_cast<int32_t>(B) ? 1 : 0;
        break;
      case BinOp::Sltu:
        V = static_cast<uint32_t>(A) < static_cast<uint32_t>(B) ? 1 : 0;
        break;
      default:
        Folded = false;
        break;
      }
      if (Folded)
        return c(static_cast<int32_t>(V));
    }
    // x + 0, x - 0, x | 0, x ^ 0, x << 0 keep the left operand.
    if (R->K == Expr::Kind::Const && R->IVal == 0 &&
        (Op == BinOp::Add || Op == BinOp::Sub || Op == BinOp::Or ||
         Op == BinOp::Xor || Op == BinOp::Shl || Op == BinOp::Shr ||
         Op == BinOp::Sra))
      return L;
    Expr *E = newExpr(Expr::Kind::Bin);
    E->Op = Op;
    E->Lhs = L;
    E->Rhs = R;
    return E;
  }
  const Expr *add(const Expr *L, const Expr *R) {
    return bin(BinOp::Add, L, R);
  }
  const Expr *sub(const Expr *L, const Expr *R) {
    return bin(BinOp::Sub, L, R);
  }
  const Expr *mul(const Expr *L, const Expr *R) {
    return bin(BinOp::Mul, L, R);
  }
  const Expr *shl(const Expr *L, int32_t Amount) {
    return bin(BinOp::Shl, L, c(Amount));
  }
  /// The executing hart's global id (4*core + hart, paper p_set).
  const Expr *hartId() { return newExpr(Expr::Kind::HartId); }
  /// The machine cycle counter (the paper's precise internal timer).
  const Expr *cycles() { return newExpr(Expr::Kind::CycleCount); }
  /// Instructions retired by the executing hart.
  const Expr *instret() { return newExpr(Expr::Kind::InstretCount); }

  /// Blocking receive from the hart's own remote-result slot \p Slot
  /// (p_lwre): the paper's hardware producer/consumer synchronization.
  const Expr *recvResult(int32_t Slot) {
    Expr *E = newExpr(Expr::Kind::RecvResult);
    E->IVal = Slot;
    return E;
  }

  // -- Statement factories ----------------------------------------------
  const Stmt *assign(const Local *Dst, const Expr *Value) {
    Stmt *S = newStmt(Stmt::Kind::Assign);
    S->Dst = Dst;
    S->Value = Value;
    return S;
  }
  const Stmt *store(const Expr *Base, int32_t Offset, const Expr *Value,
                    uint8_t Width = 4) {
    Stmt *S = newStmt(Stmt::Kind::Store);
    S->Base = Base;
    S->Offset = Offset;
    S->Value = Value;
    S->Width = Width;
    return S;
  }
  const Stmt *ifStmt(CmpOp Cmp, const Expr *L, const Expr *R,
                     std::vector<const Stmt *> Then,
                     std::vector<const Stmt *> Else = {}) {
    Stmt *S = newStmt(Stmt::Kind::If);
    S->Cmp = Cmp;
    S->CmpLhs = L;
    S->CmpRhs = R;
    S->Then = std::move(Then);
    S->Else = std::move(Else);
    return S;
  }
  const Stmt *whileStmt(CmpOp Cmp, const Expr *L, const Expr *R,
                        std::vector<const Stmt *> Body,
                        std::vector<const Stmt *> Step = {}) {
    Stmt *S = newStmt(Stmt::Kind::While);
    S->Cmp = Cmp;
    S->CmpLhs = L;
    S->CmpRhs = R;
    S->Then = std::move(Body);
    S->Else = std::move(Step);
    return S;
  }
  const Stmt *breakStmt() { return newStmt(Stmt::Kind::Break); }
  const Stmt *continueStmt() { return newStmt(Stmt::Kind::Continue); }
  const Stmt *doWhile(std::vector<const Stmt *> Body, CmpOp Cmp,
                      const Expr *L, const Expr *R) {
    Stmt *S = newStmt(Stmt::Kind::DoWhile);
    S->Cmp = Cmp;
    S->CmpLhs = L;
    S->CmpRhs = R;
    S->Then = std::move(Body);
    return S;
  }
  const Stmt *call(const std::string &Callee,
                   std::vector<const Expr *> Args,
                   const Local *Result = nullptr) {
    Stmt *S = newStmt(Stmt::Kind::Call);
    S->Callee = Callee;
    S->Args = std::move(Args);
    S->Dst = Result;
    return S;
  }
  const Stmt *ret(const Expr *Value = nullptr) {
    Stmt *S = newStmt(Stmt::Kind::Return);
    S->Value = Value;
    return S;
  }
  const Stmt *parallelFor(const std::string &ThreadFn, unsigned NumHarts,
                          const std::string &DataSymbol = "") {
    Stmt *S = newStmt(Stmt::Kind::ParallelFor);
    S->Callee = ThreadFn;
    S->NumHarts = NumHarts;
    S->DataSymbol = DataSymbol;
    return S;
  }
  const Stmt *reduceSend(const Expr *Value) {
    Stmt *S = newStmt(Stmt::Kind::ReduceSend);
    S->Value = Value;
    return S;
  }
  const Stmt *reduceCollect(const Local *Acc, unsigned Count) {
    Stmt *S = newStmt(Stmt::Kind::ReduceCollect);
    S->Dst = Acc;
    S->NumHarts = Count;
    return S;
  }
  /// Sends \p Value to hart \p Target's result slot \p Slot (p_swre;
  /// the target must be a prior hart on the core line).
  const Stmt *sendResult(const Expr *Target, const Expr *Value,
                         int32_t Slot) {
    Stmt *S = newStmt(Stmt::Kind::SendResult);
    S->Base = Target;
    S->Value = Value;
    S->Offset = Slot;
    return S;
  }
  const Stmt *syncm() { return newStmt(Stmt::Kind::Syncm); }
  const Stmt *rawAsm(const std::string &Text) {
    Stmt *S = newStmt(Stmt::Kind::RawAsm);
    S->Text = Text;
    return S;
  }
};

} // namespace dsl
} // namespace lbp

#endif // LBP_DSL_AST_H
