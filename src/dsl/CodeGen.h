//===- dsl/CodeGen.h - Kernel-language code generation -------------------------===//
//
// Part of the LBP reproduction project.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compiles a dsl::Module into LBP assembly source: register allocation
/// (register-resident locals), expression evaluation over a small
/// scratch set, bottom-tested loops, the Deterministic OpenMP call
/// protocol, and the module's placed globals as .data directives.
///
//===----------------------------------------------------------------------===//

#ifndef LBP_DSL_CODEGEN_H
#define LBP_DSL_CODEGEN_H

#include "dsl/Ast.h"

#include <string>

namespace lbp {
namespace dsl {

/// Compiles \p M to assembly accepted by assembler::assemble. Reports a
/// fatal error on malformed modules (too many locals, missing main).
std::string compileModule(const Module &M);

} // namespace dsl
} // namespace lbp

#endif // LBP_DSL_CODEGEN_H
